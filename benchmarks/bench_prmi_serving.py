"""A11 (ablation): high-throughput PRMI serving — batched pipeline vs
request-at-a-time invocations.

The classic independent-invocation path (E10/E11 era) pays one framed
transport message and one blocking round trip per call: the caller
pickles a header, sends, and sleeps until the reply lands.  The serving
tier amortizes all of that — an :class:`~repro.prmi.serving.
InvocationPipeline` coalesces up to ``batch_max`` invocations into one
frame (one header pickle + aligned packed arrays, the redistribution
packing idiom applied to RMI), keeps a window of ``inflight_max``
requests outstanding instead of stalling per call, and the callee-side
:class:`~repro.prmi.serving.ServerLoop` greedily drains whole frames per
wake.

This experiment drives the same request stream through both paths
against the same :class:`ServerLoop` cohort and compares sustained
invocations/sec, batch occupancy (requests per frame), the caller-side
latency distribution (p50/p99 from ``PRMI_LATENCY``), and the peak
in-flight window.

The >= 5x throughput acceptance holds where round trips are genuinely
expensive and cores exist to overlap caller and callee work; on fewer
than 4 cores the ratio is reported but not enforced (same convention as
A8/A9).  Result identity between the two paths is exact and enforced
everywhere, on both backends.

``python benchmarks/bench_prmi_serving.py [--json PATH] [--smoke]``
— ``--smoke`` replays a short stream on both backends, checks batched
vs unbatched result identity, zero overloads/errors, and the
throughput-floor / p99-ceiling baselines in BENCH_schedule.json.
"""

import json
import os
import pathlib
import sys
import time

import numpy as np

from _common import banner, fmt_table
from repro.cca.sidl import arg, method, port
from repro.prmi import (
    Batched,
    CalleeEndpoint,
    CallerEndpoint,
    InvocationPipeline,
    PolicyTable,
    ServerLoop,
)
from repro.simmpi import run_coupled
from repro.simmpi.intercomm import default_nameservice
from repro.util.counters import PRMI_LATENCY, PRMI_STATS

M, N = 2, 2                     # caller x callee ranks
REQUESTS = 2000                 # independent invocations per caller rank
SMOKE_REQUESTS = 250
VEC = 64                        # float64 elements per request payload
BATCH_MAX = 32
DELAY_US = 1000
INFLIGHT_MAX = 256
RATIO_FLOOR = 5.0
MIN_CORES = 4
P99_CEILING_US = 200_000.0      # per-request batched latency ceiling

BASELINE_PATH = pathlib.Path(__file__).resolve().parent.parent / \
    "BENCH_schedule.json"

PORT = port(
    "ThroughputPort",
    method("work", arg("i"), arg("v"), invocation="independent"),
)


class _Impl:
    def __init__(self, comm):
        self.comm = comm

    def work(self, i, v):
        return float(v.sum()) + i


# -- rank programs (module level: fork-safe on the procs backend) ------------

def _callee(comm, service, queue_max=None):
    inter = default_nameservice.accept(service, comm)
    ep = CalleeEndpoint(comm, inter, PORT, _Impl(comm))
    return ServerLoop(ep, queue_max=queue_max).serve_forever()


def _vec(rank):
    return np.arange(VEC, dtype=np.float64) + rank


def _baseline_caller(comm, service, n, requests):
    """Request-at-a-time: one message and one blocking round trip per
    invocation, through the same ServerLoop."""
    inter = default_nameservice.connect(service, comm)
    ep = CallerEndpoint(comm, inter, PORT)
    pipe = InvocationPipeline(ep)          # sync default policy + shutdown
    callee, v = comm.rank % n, _vec(comm.rank)
    results = [pipe.caller.invoke_independent("work", callee, i=i, v=v)
               for i in range(10)]                      # warm-up
    comm.barrier()
    t0 = time.perf_counter()
    for i in range(requests):
        results.append(
            pipe.caller.invoke_independent("work", callee, i=i, v=v))
    elapsed = time.perf_counter() - t0
    pipe.close()
    return {"elapsed": elapsed, "results": results[10:]}


def _pipelined_caller(comm, service, n, requests):
    """The serving tier: adaptive batching + pipelined futures."""
    table = PolicyTable(default=Batched(batch_max=BATCH_MAX,
                                        delay_us=DELAY_US))
    inter = default_nameservice.connect(service, comm)
    ep = CallerEndpoint(comm, inter, PORT)
    pipe = InvocationPipeline(ep, policies=table, inflight_max=INFLIGHT_MAX,
                              overflow="block")
    callee, v = comm.rank % n, _vec(comm.rank)
    warm = [pipe.submit("work", callee, i=i, v=v) for i in range(10)]
    warm = [f.result() for f in warm]
    PRMI_STATS.reset()
    PRMI_LATENCY.reset()
    comm.barrier()
    t0 = time.perf_counter()
    futs = [pipe.submit("work", callee, i=i, v=v) for i in range(requests)]
    results = [f.result() for f in futs]
    elapsed = time.perf_counter() - t0
    stats = PRMI_STATS.snapshot()
    lat = PRMI_LATENCY.snapshot()
    pipe.close()
    return {"elapsed": elapsed, "results": results, "stats": stats,
            "latency": lat}


# -- measurement -------------------------------------------------------------

def _measure(backend, requests):
    base = run_coupled(
        [("callee", N, _callee, ("prmi-serving-base",)),
         ("caller", M, _baseline_caller, ("prmi-serving-base", N, requests))],
        deadlock_timeout=180.0, backend=backend)
    piped = run_coupled(
        [("callee", N, _callee, ("prmi-serving-pipe",)),
         ("caller", M, _pipelined_caller, ("prmi-serving-pipe", N,
                                           requests))],
        deadlock_timeout=180.0, backend=backend)

    b_elapsed = max(r["elapsed"] for r in base["caller"])
    p_elapsed = max(r["elapsed"] for r in piped["caller"])
    stats = [r["stats"] for r in piped["caller"]]
    frames = sum(s.get("frames_sent", 0) for s in stats)
    framed = sum(s.get("frame_requests", 0) for s in stats)
    lat = piped["caller"][0]["latency"]
    row = {
        "backend": backend,
        "requests": requests * M,
        "base_ips": requests * M / b_elapsed,
        "piped_ips": requests * M / p_elapsed,
        "ratio": b_elapsed / p_elapsed if p_elapsed else 0.0,
        "frames": frames,
        "occupancy": framed / frames if frames else 0.0,
        "p50_us": lat.get("p50_us", 0.0),
        "p99_us": lat.get("p99_us", 0.0),
        "peak_inflight": max(s.get("peak_inflight", 0) for s in stats),
        "overloads": sum(s.get("overloads", 0) for s in stats),
        "errors": sum(t.get("errors", 0) for t in piped["callee"]),
        "identical": all(
            b["results"] == p["results"]
            for b, p in zip(base["caller"], piped["caller"])),
    }
    return row


def sweep(requests=REQUESTS):
    return [_measure(b, requests) for b in ("threads", "procs")]


def report(json_path=None):
    print(banner("A11 (ablation): PRMI serving throughput — batched "
                 "pipeline vs request-at-a-time"))
    cores = os.cpu_count() or 1
    rows = sweep()
    print(f"{M}x{N} independent invocations, {REQUESTS}/caller, "
          f"{VEC} float64 elements each, batch_max={BATCH_MAX}, "
          f"delay={DELAY_US} us, window={INFLIGHT_MAX}, {cores} core(s)\n")
    print(fmt_table(
        ["backend", "base inv/s", "piped inv/s", "ratio", "req/frame",
         "p50 us", "p99 us", "peak win", "identical"],
        [[r["backend"], f"{r['base_ips']:.0f}", f"{r['piped_ips']:.0f}",
          f"{r['ratio']:.2f}x", f"{r['occupancy']:.1f}",
          f"{r['p50_us']:.0f}", f"{r['p99_us']:.0f}", r["peak_inflight"],
          "yes" if r["identical"] else "NO"] for r in rows]))

    procs = rows[1]
    enforced = cores >= MIN_CORES
    passed = (all(r["identical"] and not r["overloads"] and not r["errors"]
                  for r in rows)
              and (not enforced or procs["ratio"] >= RATIO_FLOOR))
    print(f"\nprocs batched/unbatched invocation rate: {procs['ratio']:.2f}x "
          f"(floor {RATIO_FLOOR}x on >= {MIN_CORES} cores: "
          f"{'ENFORCED' if enforced else f'not enforced, {cores} core(s)'}); "
          f"occupancy {procs['occupancy']:.1f} requests/frame, "
          f"p99 {procs['p99_us']:.0f} us (ceiling {P99_CEILING_US:.0f}).")

    payload = {
        "m": M, "n": N, "requests": REQUESTS, "vec": VEC,
        "batch_max": BATCH_MAX, "delay_us": DELAY_US,
        "inflight_max": INFLIGHT_MAX, "cores": cores, "rows": rows,
        "ratio_floor": RATIO_FLOOR, "min_cores": MIN_CORES,
        "p99_ceiling_us": P99_CEILING_US,
        "ratio_enforced": enforced, "passed": passed,
    }
    if json_path:
        with open(json_path, "w") as fh:
            json.dump(payload, fh, indent=2)
        print(f"\nwrote {json_path}")
    return payload


def smoke():
    """CI gate: short stream, both backends.  Result identity between
    the batched pipeline and the request-at-a-time baseline, zero
    overloads/errors, and occupancy > 1 are exact and deterministic;
    the throughput floor and p99 ceiling are enforced only on hosts
    with enough cores for the comparison to be meaningful."""
    with open(BASELINE_PATH) as fh:
        base = json.load(fh)["prmi_serving"]
    cores = os.cpu_count() or 1
    for row in sweep(SMOKE_REQUESTS):
        b = row["backend"]
        if not row["identical"]:
            raise SystemExit(f"{b}: batched results differ from the "
                             f"request-at-a-time baseline")
        if row["overloads"] or row["errors"]:
            raise SystemExit(f"{b}: {row['overloads']} overloads / "
                             f"{row['errors']} errors on an uncontended run")
        if row["occupancy"] <= 1.0:
            raise SystemExit(f"{b}: batch occupancy {row['occupancy']:.2f} "
                             f"requests/frame — coalescing is not happening")
        if cores >= base["min_cores"]:
            if b == "procs" and row["ratio"] < base["ratio_floor"]:
                raise SystemExit(
                    f"throughput regression: batched/unbatched "
                    f"{row['ratio']:.2f}x < floor {base['ratio_floor']}x "
                    f"on {cores} cores")
            if row["p99_us"] > base["p99_ceiling_us"]:
                raise SystemExit(
                    f"{b}: batched p99 {row['p99_us']:.0f} us over the "
                    f"{base['p99_ceiling_us']:.0f} us ceiling")
        print(f"bench_prmi_serving smoke [{b}]: OK (identical results, "
              f"{row['occupancy']:.1f} req/frame, ratio {row['ratio']:.2f}x "
              f"on {cores} core(s))")


# -- pytest hooks ------------------------------------------------------------

def test_acceptance_prmi_serving():
    rows = sweep(SMOKE_REQUESTS)
    for r in rows:
        assert r["identical"]
        assert r["overloads"] == 0 and r["errors"] == 0
        assert r["occupancy"] > 1.0
    if (os.cpu_count() or 1) >= MIN_CORES:
        assert rows[1]["ratio"] >= RATIO_FLOOR
        assert rows[1]["p99_us"] <= P99_CEILING_US


if __name__ == "__main__":
    if "--smoke" in sys.argv:
        smoke()
    else:
        path = None
        if "--json" in sys.argv:
            path = sys.argv[sys.argv.index("--json") + 1]
        report(json_path=path)
