"""A10: memory-bounded collective redistribution — peak bytes resident
vs point-to-point, at bounded wall-time cost.

The packed p2p executors post every pair's buffer before the receive
side drains any of them, so on a buffered transport peak transfer
memory is the **whole wire volume at once** — O(pairs).  The collective
planner (:mod:`repro.schedule.collplan`) rewrites the same schedule
into acknowledged ``alltoallv``-shaped rounds capped at ``round_bytes``
per rank per round, with a *statically computed* ceiling
(:meth:`~repro.schedule.collplan.CollectivePlan.resident_ceiling`) that
the measured high-water gauges must stay under.

Both paths run through the real simulated transport, single-threaded
(``couple_jobs`` + explicit round ordering), so the peak-residency
gauges (``peak_resident_bytes`` — pool loans + queued wire bytes, see
``TRANSPORT_STATS``) are exact and deterministic, not thread-scheduler
noise.  The gates:

* measured collective peak <= the plan's static ceiling (+ a small
  fixed allowance for round-acknowledgement envelopes),
* collective peak well below the p2p peak (the O(pairs) -> O(round)
  claim, on >=16-rank cyclic/block-cyclic fan-outs),
* collective wall time within 1.5x of p2p on the acceptance pair
  (payloads sized so copies dominate per-message overhead),
* the ``auto`` cost model picks p2p on the small A7-style workload and
  collective on the fan-out sweep.

``python benchmarks/bench_collective_memory.py [--json PATH] [--smoke]``
— ``--smoke`` re-measures the acceptance pair at a reduced extent and
gates peaks/ceiling/cost-model against the committed baseline in
BENCH_schedule.json (for CI).
"""

import gc
import json
import pathlib
import sys
import time

import numpy as np

from _common import banner, fmt_table
from repro.dad import (
    BlockCyclic,
    CartesianTemplate,
    Cyclic,
    DistArrayDescriptor,
    DistributedArray,
)
from repro.schedule import build_region_schedule
from repro.schedule.collplan import CollectiveReceiver, CollectiveSender
from repro.schedule.costmodel import estimate
from repro.schedule.executor import execute_inter
from repro.simmpi.intercomm import couple_jobs
from repro.simmpi.runner import Job
from repro.util.counters import TRANSPORT_STATS

REPS = 5
STEPS = 4

KINDS = {
    "cyclic": lambda p, e: CartesianTemplate([Cyclic(e, p)]),
    "blockcyclic4": lambda p, e: CartesianTemplate([BlockCyclic(e, p, 4)]),
}

#: Fan-out sweep: (kind, src ranks, dst ranks, extent, round_bytes).
#: Extents are sized so each round chunk carries >=128 KiB — copies
#: dominate the per-message constant (data + ack), which is what the
#: 1.5x wall gate assumes.  Smaller chunks keep the memory bound but
#: pay round-synchronization latency instead.
SWEEP = [
    ("cyclic", 8, 12, 768_000, 1 << 17),
    ("cyclic", 16, 24, 1_536_000, 1 << 17),
    ("blockcyclic4", 8, 12, 768_000, 1 << 17),
    ("blockcyclic4", 16, 24, 1_536_000, 1 << 17),
]

#: The acceptance pair from the issue: >=16-rank cyclic fan-out.
ACCEPTANCE = ("cyclic", 16, 24)
ACCEPTANCE_EXTENT = 1_536_000
ACCEPTANCE_ROUND_BYTES = 1 << 17
WALL_RATIO_CEIL = 1.5
PEAK_IMPROVEMENT_FLOOR = 2.0

#: Per-pair allowance for round-acknowledgement envelopes queued at the
#: senders while a round's data is still resident (acks are tiny pickled
#: ``None`` messages; 512 B/pair is generous).
ACK_SLACK_PER_PAIR = 512

BASELINE_PATH = pathlib.Path(__file__).resolve().parent.parent / \
    "BENCH_schedule.json"


def _pair(kind, m, n, extent):
    make = KINDS[kind]
    return (DistArrayDescriptor(make(m, extent)),
            DistArrayDescriptor(make(n, extent)))


def _arrays(src_desc, dst_desc, extent):
    g = np.arange(float(extent)).reshape(src_desc.shape)
    srcs = [DistributedArray.from_global(src_desc, r, g)
            for r in range(src_desc.nranks)]
    dsts = [DistributedArray.allocate(dst_desc, r)
            for r in range(dst_desc.nranks)]
    return srcs, dsts


def _p2p_step(sched, src_inters, dst_inters, srcs, dsts, tag):
    """One one-shot p2p transfer, single-threaded: every pair's buffer
    is posted (and resident) before the receive side drains any —
    the O(pairs) peak this report quantifies."""
    for r, arr in enumerate(srcs):
        execute_inter(sched, src_inters[r], "src", arr, tag=tag)
    return sum(execute_inter(sched, dst_inters[r], "dst", arr, tag=tag)
               for r, arr in enumerate(dsts))


def _collective_step(senders, receivers, nrounds):
    """One collective transfer, single-threaded: rounds in lockstep
    (every sender posts round r, every receiver drains and acks it)
    so at most one round's bytes are ever resident."""
    received = 0
    for rnd in range(nrounds):
        for tx in senders:
            tx.send_round(rnd)
        for rx in receivers:
            received += rx.recv_round(rnd)
    for tx in senders:
        tx.finish()
    return received


def _measure(kind, m, n, extent, round_bytes, steps=STEPS, sched=None):
    """Peak-residency gauges and wall times for both planners on one
    fan-out pair, plus the static plan facts the gates compare against.

    The peaks come from dedicated single steps bracketed by
    ``TRANSPORT_STATS.reset()`` — exact integers.  The wall times are
    measured *paired*: each rep times a p2p burst then a collective
    burst back to back, and the gated ratio is the median of the
    per-rep ratios, so clock-frequency drift between phases cancels
    instead of landing entirely on one side.

    Pass a prebuilt ``sched`` to amortize the O(regions) schedule
    construction across callers (cyclic templates at these extents
    enumerate one region per element)."""
    src_desc, dst_desc = _pair(kind, m, n, extent)
    if sched is None:
        sched = build_region_schedule(src_desc, dst_desc)
    itemsize = np.dtype(src_desc.dtype).itemsize
    coll = sched.collective_plan(itemsize, round_bytes)
    wire_bytes = sched.nbytes(src_desc.dtype)

    # --- p2p setup: all pairs posted, then drained ----------------------
    src_job, dst_job = Job(src_desc.nranks), Job(dst_desc.nranks)
    p_src_inters, p_dst_inters = couple_jobs(src_job, dst_job)
    p_srcs, p_dsts = _arrays(src_desc, dst_desc, extent)
    _p2p_step(sched, p_src_inters, p_dst_inters, p_srcs, p_dsts, tag=720)
    TRANSPORT_STATS.reset()  # all buffers drained; gauges level at 0
    _p2p_step(sched, p_src_inters, p_dst_inters, p_srcs, p_dsts, tag=720)
    p2p_peak = TRANSPORT_STATS.get("peak_resident_bytes")

    # --- collective setup: acknowledged bounded rounds -------------------
    src_job, dst_job = Job(src_desc.nranks), Job(dst_desc.nranks)
    c_src_inters, c_dst_inters = couple_jobs(src_job, dst_job)
    c_srcs, c_dsts = _arrays(src_desc, dst_desc, extent)
    senders = [CollectiveSender(sched, coll, c_src_inters[r], c_srcs[r],
                                tag=720) for r in range(src_desc.nranks)]
    receivers = [CollectiveReceiver(sched, coll, c_dst_inters[r], c_dsts[r],
                                    tag=720) for r in range(dst_desc.nranks)]
    _collective_step(senders, receivers, coll.nrounds)  # warm pools
    TRANSPORT_STATS.reset()
    p0 = sum(tx.pool.stats.get("allocations") for tx in senders)
    _collective_step(senders, receivers, coll.nrounds)
    coll_peak = TRANSPORT_STATS.get("peak_resident_bytes")
    pool_allocs = sum(tx.pool.stats.get("allocations")
                      for tx in senders) - p0

    # --- paired timing ----------------------------------------------------
    t_p2p = t_coll = float("inf")
    ratios = []
    gc.collect()
    gc_was_on = gc.isenabled()
    gc.disable()  # the collective path churns 4x the envelope objects
    try:
        for _ in range(REPS):
            t0 = time.perf_counter()
            for _ in range(steps):
                moved = _p2p_step(sched, p_src_inters, p_dst_inters,
                                  p_srcs, p_dsts, tag=720)
            tp = (time.perf_counter() - t0) / steps
            assert moved == extent
            t0 = time.perf_counter()
            for _ in range(steps):
                moved = _collective_step(senders, receivers, coll.nrounds)
            tc = (time.perf_counter() - t0) / steps
            assert moved == extent
            t_p2p, t_coll = min(t_p2p, tp), min(t_coll, tc)
            ratios.append(tc / tp)
    finally:
        if gc_was_on:
            gc.enable()
    ratios.sort()

    ceiling = coll.resident_ceiling() + ACK_SLACK_PER_PAIR * sched.pair_count
    return {
        "kind": kind, "m": m, "n": n, "extent": extent,
        "round_bytes": round_bytes, "wire_bytes": wire_bytes,
        "pairs": sched.pair_count, "rounds": coll.nrounds,
        "p2p_peak_bytes": p2p_peak,
        "collective_peak_bytes": coll_peak,
        "static_ceiling_bytes": ceiling,
        "peak_improvement": p2p_peak / coll_peak if coll_peak
        else float("inf"),
        "within_ceiling": coll_peak <= ceiling,
        "steady_pool_allocs": pool_allocs,
        "p2p_ms": t_p2p * 1e3, "collective_ms": t_coll * 1e3,
        # median for reporting; min (the best back-to-back rep, i.e.
        # least perturbed by transient machine load) for the CI gate
        "wall_ratio": ratios[len(ratios) // 2],
        "wall_ratio_best": ratios[0],
    }


def cost_model_decisions(fanout_sched=None):
    """The ``auto`` rule on both canonical workloads: the small
    A7-style pair must stay p2p (latency-optimal, fits the ceiling);
    the fan-out sweep must switch to collective.  Pass the fan-out
    schedule if a caller already built it."""
    small_src, small_dst = _pair("cyclic", 32, 48, 4800)  # A7 acceptance
    small = estimate(build_region_schedule(small_src, small_dst), 8)
    if fanout_sched is None:
        big_src, big_dst = _pair(*ACCEPTANCE, ACCEPTANCE_EXTENT)
        fanout_sched = build_region_schedule(big_src, big_dst)
    big = estimate(fanout_sched, 8, round_bytes=ACCEPTANCE_ROUND_BYTES)
    return {
        "small_workload": {"total_bytes": small.total_bytes,
                           "chosen": small.chosen},
        "fanout_workload": {"total_bytes": big.total_bytes,
                            "chosen": big.chosen},
        "passed": small.chosen == "p2p" and big.chosen == "collective",
    }


def _acceptance_schedule():
    src_desc, dst_desc = _pair(*ACCEPTANCE, ACCEPTANCE_EXTENT)
    return build_region_schedule(src_desc, dst_desc)


def sweep_rows(acc_sched=None):
    acc_cfg = (*ACCEPTANCE, ACCEPTANCE_EXTENT, ACCEPTANCE_ROUND_BYTES)
    return [_measure(*cfg, sched=acc_sched if cfg == acc_cfg else None)
            for cfg in SWEEP]


def report(json_path=None):
    print(banner("A10: memory-bounded collective redistribution — "
                 "peak residency vs p2p"))
    acc_sched = _acceptance_schedule()
    rows = sweep_rows(acc_sched)
    acc = next(r for r in rows
               if (r["kind"], r["m"], r["n"]) == ACCEPTANCE
               and r["extent"] == ACCEPTANCE_EXTENT)
    print(fmt_table(
        ["kind", "M x N", "wire MiB", "rounds", "p2p peak", "coll peak",
         "ceiling", "gain", "wall"],
        [[r["kind"], f"{r['m']}x{r['n']}",
          f"{r['wire_bytes'] / 2**20:.1f}", r["rounds"],
          f"{r['p2p_peak_bytes'] / 2**20:.2f}M",
          f"{r['collective_peak_bytes'] / 2**20:.2f}M",
          f"{r['static_ceiling_bytes'] / 2**20:.2f}M",
          f"{r['peak_improvement']:.1f}x",
          f"{r['wall_ratio']:.2f}x"]
         for r in rows]))

    print(f"\nAcceptance pair ({acc['kind']} {acc['m']}x{acc['n']}, "
          f"{acc['wire_bytes'] / 2**20:.0f} MiB wire, "
          f"{acc['pairs']} pairs, {acc['rounds']} rounds of "
          f"{acc['round_bytes'] // 1024} KiB): peak resident "
          f"{acc['collective_peak_bytes'] / 2**20:.2f} MiB vs static "
          f"ceiling {acc['static_ceiling_bytes'] / 2**20:.2f} MiB "
          f"(within: {acc['within_ceiling']}), "
          f"{acc['peak_improvement']:.1f}x below the p2p peak of "
          f"{acc['p2p_peak_bytes'] / 2**20:.2f} MiB "
          f"(floor: {PEAK_IMPROVEMENT_FLOOR}x), wall "
          f"{acc['wall_ratio']:.2f}x p2p median / "
          f"{acc['wall_ratio_best']:.2f}x best paired rep "
          f"(gate: best <= {WALL_RATIO_CEIL}x), "
          f"{acc['steady_pool_allocs']} steady-state pool allocations.")

    decisions = cost_model_decisions(acc_sched)
    print(f"\nCost model (auto): small A7 workload "
          f"({decisions['small_workload']['total_bytes']} B) -> "
          f"{decisions['small_workload']['chosen']}; fan-out sweep "
          f"({decisions['fanout_workload']['total_bytes']} B) -> "
          f"{decisions['fanout_workload']['chosen']}  "
          f"[{'OK' if decisions['passed'] else 'MISMATCH'}]")

    payload = {
        "reps": REPS, "steps": STEPS, "rows": rows,
        "cost_model": decisions,
        "acceptance": {
            **{k: acc[k] for k in (
                "kind", "m", "n", "extent", "round_bytes", "wire_bytes",
                "pairs", "rounds", "p2p_peak_bytes",
                "collective_peak_bytes", "static_ceiling_bytes",
                "peak_improvement", "within_ceiling", "wall_ratio",
                "wall_ratio_best")},
            "wall_ratio_ceiling": WALL_RATIO_CEIL,
            "peak_improvement_floor": PEAK_IMPROVEMENT_FLOOR,
            "passed": (acc["within_ceiling"]
                       and acc["peak_improvement"] >= PEAK_IMPROVEMENT_FLOOR
                       and acc["wall_ratio_best"] <= WALL_RATIO_CEIL
                       and decisions["passed"]),
        },
    }
    if json_path:
        with open(json_path, "w") as fh:
            json.dump(payload, fh, indent=2)
        print(f"\nwrote {json_path}")
    return payload


def smoke():
    """CI gate: re-measure the acceptance pair at a reduced extent.
    The residency gauges are exact integers, the static ceiling is pure
    arithmetic, and the cost-model decisions are deterministic — none
    of these can flake.  The wall-ratio check keeps the committed 1.5x
    headroom but measures best-of, on a copies-dominated payload."""
    with open(BASELINE_PATH) as fh:
        baseline = json.load(fh)["collective_memory"]
    kind, m, n = ACCEPTANCE
    sched = _acceptance_schedule()
    r = _measure(kind, m, n, ACCEPTANCE_EXTENT, ACCEPTANCE_ROUND_BYTES,
                 sched=sched)
    if not r["within_ceiling"]:
        raise SystemExit(
            f"peak-residency gate: measured collective peak "
            f"{r['collective_peak_bytes']} B exceeds the static ceiling "
            f"{r['static_ceiling_bytes']} B")
    if r["peak_improvement"] < baseline["peak_improvement_floor"]:
        raise SystemExit(
            f"peak-improvement regression: collective peak only "
            f"{r['peak_improvement']:.2f}x below p2p, committed floor "
            f"{baseline['peak_improvement_floor']}x")
    if r["steady_pool_allocs"] != 0:
        raise SystemExit(
            f"steady-state allocation regression: {r['steady_pool_allocs']}"
            f" pool allocations after warm-up (must be 0)")
    if r["wall_ratio_best"] > baseline["wall_ratio_ceiling"]:
        raise SystemExit(
            f"wall-time regression: collective rounds at "
            f"{r['wall_ratio_best']}x p2p in the best paired rep "
            f"(median {r['wall_ratio']:.2f}x), ceiling "
            f"{baseline['wall_ratio_ceiling']}x")
    decisions = cost_model_decisions(sched)
    if not decisions["passed"]:
        raise SystemExit(
            f"cost-model regression: small workload chose "
            f"{decisions['small_workload']['chosen']} (want p2p), "
            f"fan-out chose {decisions['fanout_workload']['chosen']} "
            f"(want collective)")
    print("bench_collective_memory smoke: OK "
          f"(peak {r['collective_peak_bytes'] / 2**20:.2f} MiB <= ceiling "
          f"{r['static_ceiling_bytes'] / 2**20:.2f} MiB, "
          f"{r['peak_improvement']:.1f}x below p2p, wall "
          f"{r['wall_ratio']:.2f}x, auto model OK)")


# --- pytest hooks ------------------------------------------------------------

def test_acceptance_memory_bound():
    # Reduced extent for test latency: the residency gates are exact
    # and hold at any scale; only the wall-ratio gate (checked by
    # --smoke at copies-dominant sizing) needs the large payload.
    kind, m, n = ACCEPTANCE
    r = _measure(kind, m, n, extent=384_000, round_bytes=1 << 15,
                 steps=1)
    assert r["within_ceiling"]
    assert r["peak_improvement"] >= PEAK_IMPROVEMENT_FLOOR
    assert r["steady_pool_allocs"] == 0


def test_cost_model_decisions():
    # A reduced-extent fan-out schedule still crosses the ceiling: the
    # auto rule compares 2x wire bytes against REPRO_MEM_CEILING.
    src_desc, dst_desc = _pair(*ACCEPTANCE, 384_000)
    sched = build_region_schedule(src_desc, dst_desc)
    assert cost_model_decisions(sched)["passed"]


if __name__ == "__main__":
    if "--smoke" in sys.argv:
        smoke()
    else:
        path = None
        if "--json" in sys.argv:
            path = sys.argv[sys.argv.index("--json") + 1]
        report(json_path=path)
