"""A6 (ablation): packed-copy throughput — compiled index plans vs the
region-loop pack/unpack path.

The packed executor's copy phase used to walk every region of every
(src, dst) rank pair in Python (``pack_regions``/``unpack_regions``),
touching one region per iteration.  The compiled-plan path flattens each
pair to one ``np.int64`` gather-index array at first use — or, when the
pair's regions chain into a single ascending range, to a slice whose
send-side gather is a zero-copy view — so the copy phase is one
``take``/fancy-assignment per pair regardless of region count.  Cyclic
templates are the stress case: every owned element is its own region, so
the loop path pays one Python iteration per element while the plan path
stays a single vectorized gather.

This report sweeps template kinds and M×N rank pairs and times both copy
paths directly (single-threaded, per source/destination rank in turn —
no simulated runtime in the loop, so the numbers are deterministic
copy-phase costs, not thread-scheduler noise).

``python benchmarks/bench_pack_throughput.py [--json PATH] [--smoke]``
— ``--smoke`` runs a fast correctness + fast-path-detection check (for
CI) instead of the timing sweep.
"""

import json
import sys
import time

import numpy as np

from _common import banner, fmt_table
from repro.dad import (
    BlockCyclic,
    CartesianTemplate,
    Cyclic,
    DistArrayDescriptor,
    DistributedArray,
)
from repro.dad.template import block_template
from repro.schedule import (
    build_region_schedule,
    pack_regions,
    region_offsets,
    unpack_regions,
)

EXTENT = 4800
SIZES = [(4, 6), (8, 12), (16, 24), (32, 48)]
REPS = 3

KINDS = {
    "block": lambda p, e: block_template((e,), (p,)),
    "cyclic": lambda p, e: CartesianTemplate([Cyclic(e, p)]),
    "blockcyclic4": lambda p, e: CartesianTemplate([BlockCyclic(e, p, 4)]),
}

# the acceptance pair from the issue: cyclic 32 -> 48 ranks
ACCEPTANCE = ("cyclic", 32, 48)


def _pair(kind, m, n, extent=EXTENT):
    make = KINDS[kind]
    return (DistArrayDescriptor(make(m, extent)),
            DistArrayDescriptor(make(n, extent)))


def _setup(src_desc, dst_desc):
    """Schedule, per-src-rank arrays, and per-dst-rank arrays."""
    sched = build_region_schedule(src_desc, dst_desc)
    g = np.arange(float(np.prod(src_desc.shape))).reshape(src_desc.shape)
    srcs = [DistributedArray.from_global(src_desc, r, g)
            for r in range(src_desc.nranks)]
    dsts = [DistributedArray.allocate(dst_desc, r)
            for r in range(dst_desc.nranks)]
    return sched, srcs, dsts


def _loop_copy_phase(sched, src_desc, dst_desc, srcs, dsts):
    """The PR 1 copy phase: region-loop pack on every source rank, then
    region-loop unpack on every destination rank."""
    wires = {}
    for s, arr in enumerate(srcs):
        for d, regions, offsets in sched.send_groups(s):
            wires[s, d] = pack_regions(arr, regions, offsets)
    moved = 0
    for d, arr in enumerate(dsts):
        for s, regions, offsets in sched.recv_groups(d):
            moved += unpack_regions(arr, regions, wires[s, d], offsets)
    return moved


def _plan_copy_phase(sched, src_desc, dst_desc, srcs, dsts):
    """The compiled copy phase: one gather / one scatter per pair."""
    wires = {}
    for s, arr in enumerate(srcs):
        flat = arr.flat_local()
        plan = sched.send_plan(s, src_desc.local_regions(s))
        for pp in plan.pairs:
            wires[s, pp.peer] = pp.gather(flat)
    moved = 0
    for d, arr in enumerate(dsts):
        flat = arr.flat_local()
        plan = sched.recv_plan(d, dst_desc.local_regions(d))
        for pp in plan.pairs:
            moved += pp.scatter(flat, wires[pp.peer, d])
    return moved


def _time_phase(fn, *args, reps=REPS):
    best = float("inf")
    for _ in range(reps):
        t0 = time.perf_counter()
        fn(*args)
        best = min(best, time.perf_counter() - t0)
    return best


def _plan_shape(sched, src_desc, dst_desc):
    pairs = contiguous = 0
    for side, desc in (("send", src_desc), ("recv", dst_desc)):
        for r in range(desc.nranks):
            plan = (sched.send_plan(r, desc.local_regions(r)) if side == "send"
                    else sched.recv_plan(r, desc.local_regions(r)))
            pairs += len(plan.pairs)
            contiguous += plan.contiguous_pairs
    return pairs, contiguous


def sweep_rows(extent=EXTENT):
    rows = []
    for kind in KINDS:
        for m, n in SIZES:
            src_desc, dst_desc = _pair(kind, m, n, extent)
            sched, srcs, dsts = _setup(src_desc, dst_desc)
            # compile plans outside the timed region
            moved = _plan_copy_phase(sched, src_desc, dst_desc, srcs, dsts)
            assert moved == extent
            t_plan = _time_phase(_plan_copy_phase, sched, src_desc,
                                 dst_desc, srcs, dsts)
            # the region loop costs seconds per rep on cyclic pairs:
            # time it once (variance is dwarfed by the gap anyway)
            t_loop = _time_phase(_loop_copy_phase, sched, src_desc,
                                 dst_desc, srcs, dsts, reps=1)
            pairs, contiguous = _plan_shape(sched, src_desc, dst_desc)
            rows.append({
                "kind": kind, "m": m, "n": n,
                "pairs": pairs, "contiguous_pairs": contiguous,
                "elements": extent,
                "loop_ms": t_loop * 1e3, "plan_ms": t_plan * 1e3,
                "speedup": t_loop / t_plan if t_plan > 0 else float("inf"),
            })
    return rows


def report(json_path=None):
    print(banner("A6 (ablation): packed-copy throughput — "
                 "compiled plans vs region loop"))
    rows = sweep_rows()
    print(fmt_table(
        ["kind", "M x N", "pairs", "contig", "loop ms", "plan ms",
         "speedup"],
        [[r["kind"], f"{r['m']}x{r['n']}", r["pairs"],
          r["contiguous_pairs"], f"{r['loop_ms']:.2f}",
          f"{r['plan_ms']:.2f}", f"{r['speedup']:.1f}x"] for r in rows]))

    kind, m, n = ACCEPTANCE
    acc = next(r for r in rows if (r["kind"], r["m"], r["n"]) == (kind, m, n))
    print(f"\nAcceptance pair ({kind} {m}x{n}, extent {EXTENT}): "
          f"{acc['speedup']:.0f}x copy-phase speedup over the region "
          f"loop (floor: 5x).\nBlock rows compile entirely to slices "
          f"(contig == pairs): the send-side gather is a zero-copy view.")

    payload = {"extent": EXTENT, "reps": REPS, "rows": rows,
               "acceptance": {"kind": kind, "m": m, "n": n,
                              "speedup": acc["speedup"],
                              "floor": 5.0,
                              "passed": acc["speedup"] >= 5.0}}
    if json_path:
        with open(json_path, "w") as fh:
            json.dump(payload, fh, indent=2)
        print(f"\nwrote {json_path}")
    return payload


def smoke():
    """CI gate: plan/loop equivalence and fast-path detection on a small
    extent — correctness, not timing, so it cannot flake."""
    extent = 240
    for kind in KINDS:
        src_desc, dst_desc = _pair(kind, 4, 6, extent)
        sched, srcs, dsts_plan = _setup(src_desc, dst_desc)
        _, _, dsts_loop = _setup(src_desc, dst_desc)
        assert _plan_copy_phase(sched, src_desc, dst_desc,
                                srcs, dsts_plan) == extent
        assert _loop_copy_phase(sched, src_desc, dst_desc,
                                srcs, dsts_loop) == extent
        for a, b in zip(dsts_plan, dsts_loop):
            if a.flat_local().tobytes() != b.flat_local().tobytes():
                raise SystemExit(f"plan/loop mismatch for {kind}")
        pairs, contiguous = _plan_shape(sched, src_desc, dst_desc)
        if kind == "block" and contiguous != pairs:
            raise SystemExit("block pairs did not compile to slices")
        if kind == "cyclic" and contiguous == pairs:
            raise SystemExit("cyclic pairs unexpectedly all contiguous")
    # offsets stay int64 cumsum arrays
    regions = list(_pair("cyclic", 4, 6, extent)[0].local_regions(0))
    offs = region_offsets(regions)
    assert offs.dtype == np.int64 and offs[-1] == \
        sum(r.volume for r in regions)
    print("bench_pack_throughput smoke: OK")


# --- pytest-benchmark hooks -------------------------------------------------

def _acc_setup():
    kind, m, n = ACCEPTANCE
    src_desc, dst_desc = _pair(kind, m, n)
    sched, srcs, dsts = _setup(src_desc, dst_desc)
    _plan_copy_phase(sched, src_desc, dst_desc, srcs, dsts)  # compile
    return sched, src_desc, dst_desc, srcs, dsts


def test_plan_copy_phase(benchmark):
    args = _acc_setup()
    benchmark(lambda: _plan_copy_phase(*args))


def test_loop_copy_phase_baseline(benchmark):
    args = _acc_setup()
    benchmark(lambda: _loop_copy_phase(*args))


def test_acceptance_speedup():
    sched, src_desc, dst_desc, srcs, dsts = _acc_setup()
    t_plan = _time_phase(_plan_copy_phase, sched, src_desc, dst_desc,
                         srcs, dsts)
    t_loop = _time_phase(_loop_copy_phase, sched, src_desc, dst_desc,
                         srcs, dsts)
    assert t_loop >= 5 * t_plan


if __name__ == "__main__":
    if "--smoke" in sys.argv:
        smoke()
    else:
        path = None
        if "--json" in sys.argv:
            path = sys.argv[sys.argv.index("--json") + 1]
        report(json_path=path)
