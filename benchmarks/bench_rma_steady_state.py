"""A9 (ablation): one-sided RMA tier vs two-sided procs channels.

The two-sided persistent channel already has a zero-copy steady state,
but every step still pays per-message *transport* costs: each pair's
payload is packed, copied through a shared slot ring, matched in the
consumer's mailbox, and scattered — one envelope per pair per step,
plus ack tokens to keep producers and consumers in lockstep.  The
one-sided tier (``Coupler.open(..., one_sided=True)``) deletes all of
it: the consumer's destination array lives inside a shared RMA window,
each producer executes the receiver's compiled scatter plan directly
into that window, and one epoch fence per step replaces per-message
rendezvous (which also makes the channel lockstep for free — no ack
side-channel at all).

This experiment drives the same persistent coupled-field channel as A8
(cyclic 8 -> 12 with block-cyclic interleave, 4 KiB blocks, >= 64 MiB
float64 snapshots) over the procs backend in both modes and compares:

* aggregate steady-state redistribution throughput,
* **messages matched per step** — the headline metric: two-sided
  matches one envelope per pair (+ acks) per step, one-sided matches
  *zero* after the bootstrap handshake,
* **bytes copied per step** — two-sided moves every payload byte at
  least twice (pack/slot-ring + scatter), one-sided exactly once
  (scatter straight into the window),
* steady-state allocations (must be zero in both modes).

``python benchmarks/bench_rma_steady_state.py [--json PATH] [--smoke]``
— ``--smoke`` replays a small extent, checks byte-identity on both
modes and the message/copy/allocation floors against the committed
baseline in BENCH_schedule.json (for CI); the throughput floor is
enforced only on hosts with enough cores for the comparison to mean
anything.
"""

import json
import os
import pathlib
import sys
import time

import numpy as np

from _common import banner, fmt_table
from repro.dad import (
    BlockCyclic,
    CartesianTemplate,
    DistArrayDescriptor,
    DistributedArray,
)
from repro.highlevel import Coupler, _cache
from repro.simmpi import run_coupled
from repro.simmpi.intercomm import default_nameservice
from repro.simmpi.procs import slot_stats
from repro.util.counters import TRANSPORT_STATS

M, N = 8, 12                    # producer x consumer ranks (cyclic 8 -> 12)
BLOCK = 4096                    # interleave block (elements)
EXTENT = 8 * 1024 * 1024        # 64 MiB of float64 per snapshot
SMOKE_EXTENT = 96_000
STEPS = 3
MIN_CORES = 4

_FIELD, _ACK, _ACK_TAG = "rma-field", "rma-ack", 9

#: Counters that together are "bytes moved by the data plane".
_COPY_KEYS = ("bytes_copied", "shm_slot_bytes", "shm_inline_bytes")

BASELINE_PATH = pathlib.Path(__file__).resolve().parent.parent / \
    "BENCH_schedule.json"

_GLOBALS: dict[int, np.ndarray] = {}


def _global(extent):
    if extent not in _GLOBALS:
        _GLOBALS[extent] = np.arange(float(extent))
    return _GLOBALS[extent]


def _descs(extent):
    return (DistArrayDescriptor(CartesianTemplate([BlockCyclic(extent, M,
                                                               BLOCK)])),
            DistArrayDescriptor(CartesianTemplate([BlockCyclic(extent, N,
                                                               BLOCK)])))


def _deltas(snap0):
    snap1 = TRANSPORT_STATS.snapshot()
    return {k: snap1.get(k, 0) - snap0.get(k, 0)
            for k in set(snap0) | set(snap1)}


# -- rank programs (module level: fork-safe on the procs backend) ------------

def _producer(comm, extent, steps, dst_of, one_sided):
    src_desc, _ = _descs(extent)
    da = DistributedArray.from_global(src_desc, comm.rank, _global(extent))
    chan = Coupler(_FIELD, default_nameservice).open(
        comm, "source", da, one_sided=one_sided)
    # Two-sided needs an ack side-channel to stay in lockstep (slot
    # rings must not overfill); one-sided is lockstep by construction —
    # each put waits for the consumer's exposure epoch.
    ack = None if one_sided else default_nameservice.accept(_ACK, comm)
    mine = dst_of.get(comm.rank, ())

    def step():
        chan.push()
        if ack is not None:
            for d in mine:
                ack.recv(d, tag=_ACK_TAG)
    step()                                 # warm-up: pools/windows settle
    s0 = slot_stats()
    p0 = chan.pool_stats.get("allocations", 0)
    comm.barrier()                         # intra-job sync traffic stays
    c0 = TRANSPORT_STATS.snapshot()        # out of the steady-state deltas
    t0 = time.perf_counter()
    for _ in range(steps):
        step()
    elapsed = time.perf_counter() - t0
    d = _deltas(c0)
    s1 = slot_stats()
    mode = chan.mode
    chan.close()
    return {
        "mode": mode,
        "elapsed": elapsed,
        "matched": d.get("messages_matched", 0),
        "copied": sum(d.get(k, 0) for k in _COPY_KEYS),
        "rma_puts": d.get("rma_puts", 0),
        "pool_allocs": chan.pool_stats.get("allocations", 0) - p0,
        "slot_allocs": s1.get("allocations", 0) - s0.get("allocations", 0),
    }


def _consumer(comm, extent, steps, src_of, collect, one_sided):
    _, dst_desc = _descs(extent)
    chan = Coupler(_FIELD, default_nameservice).open(
        comm, "destination", dst_desc, one_sided=one_sided)
    ack = None if one_sided else default_nameservice.connect(_ACK, comm)
    mine = src_of.get(comm.rank, ())

    def step():
        out = chan.pull()
        if ack is not None:
            for s in mine:
                ack.send(None, s, tag=_ACK_TAG)
        return out
    step()                                 # warm-up
    comm.barrier()
    c0 = TRANSPORT_STATS.snapshot()
    t0 = time.perf_counter()
    for _ in range(steps):
        out = step()
    elapsed = time.perf_counter() - t0
    d = _deltas(c0)
    mode = chan.mode
    chan.close()                           # evacuates the array
    return {
        "mode": mode,
        "elapsed": elapsed,
        "matched": d.get("messages_matched", 0),
        "copied": sum(d.get(k, 0) for k in _COPY_KEYS),
        "fences": d.get("rma_fences", 0),
        "array": out if collect else None,
    }


# -- measurement -------------------------------------------------------------

def _measure(one_sided, extent=EXTENT, steps=STEPS, *, collect=False,
             transport_opts=None):
    src_desc, dst_desc = _descs(extent)
    sched = _cache.get(src_desc, dst_desc)   # pre-warm: forked ranks inherit
    wire_bytes = sched.nbytes(np.float64)
    pairs = {(it.src, it.dst) for it in sched.items}
    dst_of = {r: sorted(d for s, d in pairs if s == r) for r in range(M)}
    src_of = {r: sorted(s for s, d in pairs if d == r) for r in range(N)}
    _global(extent)

    res = run_coupled(
        [("prod", M, _producer, (extent, steps, dst_of, one_sided)),
         ("cons", N, _consumer, (extent, steps, src_of, collect,
                                 one_sided))],
        deadlock_timeout=180.0, backend="procs",
        transport_opts=transport_opts)
    prods, cons = res["prod"], res["cons"]
    elapsed = max(r["elapsed"] for r in prods + cons)
    modes = {r["mode"] for r in prods + cons}
    assert len(modes) == 1, f"mixed channel modes: {modes}"
    return {
        "mode": modes.pop(),
        "wire_bytes": wire_bytes,
        "pairs": len(pairs),
        "step_ms": elapsed / steps * 1e3,
        "gbps": wire_bytes * steps / elapsed / 1e9,
        "matched_per_step": sum(r["matched"] for r in prods + cons) / steps,
        "copied_per_byte": (sum(r["copied"] for r in prods + cons)
                            / (wire_bytes * steps)),
        "rma_puts": sum(r["rma_puts"] for r in prods),
        "pool_allocs": sum(r["pool_allocs"] for r in prods),
        "slot_allocs": sum(r["slot_allocs"] for r in prods),
        "parts": [r["array"] for r in cons] if collect else None,
    }


def _full_opts():
    """Two-sided slot geometry for the 64 MiB snapshot (as in A8); the
    one-sided run carries only tiny bootstrap traffic through the
    rings, so the same opts are safely shared."""
    return {"slot_bytes": 4 << 20, "slots_per_endpoint": 6}


def sweep(extent=EXTENT, steps=STEPS, *, collect=False, opts=None):
    two = _measure(False, extent, steps, collect=collect,
                   transport_opts=opts)
    rma = _measure(True, extent, steps, collect=collect,
                   transport_opts=opts)
    ratio = rma["gbps"] / two["gbps"] if two["gbps"] else 0.0
    return [two, rma], ratio


def report(json_path=None):
    print(banner("A9 (ablation): one-sided RMA execution tier vs "
                 "two-sided procs channels"))
    cores = os.cpu_count() or 1
    rows, ratio = sweep(opts=_full_opts())
    mb = rows[0]["wire_bytes"] / 2 ** 20
    print(f"cyclic {M}x{N} (block-cyclic interleave, {BLOCK} el blocks), "
          f"{mb:.0f} MiB/snapshot, {STEPS} steps, procs backend, "
          f"{cores} core(s)\n")
    print(fmt_table(
        ["mode", "ms/step", "GB/s", "msgs matched/step", "copies/byte",
         "rma puts", "allocs"],
        [[r["mode"], f"{r['step_ms']:.1f}", f"{r['gbps']:.3f}",
          f"{r['matched_per_step']:.1f}", f"{r['copied_per_byte']:.2f}",
          r["rma_puts"], r["pool_allocs"] + r["slot_allocs"]]
         for r in rows]))

    two, rma = rows
    enforced = cores >= MIN_CORES
    passed = (rma["matched_per_step"] == 0
              and rma["matched_per_step"] < two["matched_per_step"]
              and rma["copied_per_byte"] <= two["copied_per_byte"]
              and rma["pool_allocs"] == 0 and rma["slot_allocs"] == 0
              and (not enforced or ratio >= 1.0))
    print(f"\nrma / two-sided throughput: {ratio:.2f}x (floor 1.0x on "
          f">= {MIN_CORES} cores: "
          f"{'ENFORCED' if enforced else f'not enforced, {cores} core(s)'}); "
          f"matched messages per steady-state step: "
          f"{two['matched_per_step']:.0f} -> {rma['matched_per_step']:.0f}; "
          f"copies per wire byte: {two['copied_per_byte']:.2f} -> "
          f"{rma['copied_per_byte']:.2f}.")

    payload = {
        "kind": "blockcyclic", "block": BLOCK, "m": M, "n": N,
        "extent": EXTENT, "payload_mb": mb, "steps": STEPS, "cores": cores,
        "rows": [{k: v for k, v in r.items() if k != "parts"}
                 for r in rows],
        "ratio": ratio, "min_cores": MIN_CORES, "passed": passed,
    }
    if json_path:
        with open(json_path, "w") as fh:
            json.dump(payload, fh, indent=2)
        print(f"\nwrote {json_path}")
    return payload


def smoke():
    """CI gate: small extent, both modes.  Byte-identity, the zero
    matched-messages property, the copy advantage and the
    zero-allocation counters are exact and deterministic; the
    throughput floor needs real cores."""
    with open(BASELINE_PATH) as fh:
        base = json.load(fh)["rma_steady_state"]
    rows, ratio = sweep(SMOKE_EXTENT, steps=3, collect=True)
    g = _global(SMOKE_EXTENT)
    for r in rows:
        got = DistributedArray.assemble(
            [p for p in r["parts"] if p is not None])
        if not np.array_equal(got, g):
            raise SystemExit(f"{r['mode']}: reassembled snapshot is not "
                             f"byte-identical to the ground truth")
    two, rma = rows
    if rma["matched_per_step"] > base["rma_matched_per_step"]:
        raise SystemExit(
            f"rma: {rma['matched_per_step']:.1f} matched messages per "
            f"steady-state step, baseline {base['rma_matched_per_step']} — "
            f"the data plane is leaking through the mailbox")
    if rma["matched_per_step"] >= two["matched_per_step"]:
        raise SystemExit(
            f"rma matches as many messages as two-sided "
            f"({rma['matched_per_step']:.1f} vs "
            f"{two['matched_per_step']:.1f}) — no one-sided advantage")
    if rma["copied_per_byte"] > two["copied_per_byte"]:
        raise SystemExit(
            f"rma copies {rma['copied_per_byte']:.2f} bytes per wire byte, "
            f"two-sided {two['copied_per_byte']:.2f} — the direct-write "
            f"path is staging somewhere")
    if rma["copied_per_byte"] > base["rma_copies_per_byte"]:
        raise SystemExit(
            f"rma copies {rma['copied_per_byte']:.2f} per wire byte, "
            f"baseline {base['rma_copies_per_byte']}")
    if rma["pool_allocs"] > base["allocs_per_step"] or \
            rma["slot_allocs"] > base["allocs_per_step"]:
        raise SystemExit(
            f"rma steady state allocated (pool {rma['pool_allocs']}, "
            f"slots {rma['slot_allocs']}), baseline "
            f"{base['allocs_per_step']}")
    if rma["rma_puts"] <= 0:
        raise SystemExit("rma mode moved no data through puts")
    cores = os.cpu_count() or 1
    if cores >= base["min_cores"] and ratio < base["ratio_floor"]:
        raise SystemExit(f"throughput regression: rma/two-sided "
                         f"{ratio:.2f}x < floor {base['ratio_floor']}x "
                         f"on {cores} cores")
    print(f"bench_rma_steady_state smoke: OK (identical bytes in both "
          f"modes, {two['matched_per_step']:.0f} -> "
          f"{rma['matched_per_step']:.0f} matched msgs/step, "
          f"{two['copied_per_byte']:.2f} -> {rma['copied_per_byte']:.2f} "
          f"copies/byte, 0 steady-state allocs, ratio {ratio:.2f}x on "
          f"{cores} core(s))")


# -- pytest hooks ------------------------------------------------------------

def test_acceptance_rma_steady_state():
    rows, ratio = sweep(SMOKE_EXTENT, steps=3, collect=True)
    g = _global(SMOKE_EXTENT)
    for r in rows:
        np.testing.assert_array_equal(
            DistributedArray.assemble(
                [p for p in r["parts"] if p is not None]), g)
    two, rma = rows
    assert rma["matched_per_step"] == 0
    assert two["matched_per_step"] > 0
    assert rma["copied_per_byte"] <= two["copied_per_byte"]
    assert rma["pool_allocs"] == 0 and rma["slot_allocs"] == 0
    assert rma["rma_puts"] > 0
    if (os.cpu_count() or 1) >= MIN_CORES:
        assert ratio >= 1.0


if __name__ == "__main__":
    if "--smoke" in sys.argv:
        smoke()
    else:
        path = None
        if "--json" in sys.argv:
            path = sys.argv[sys.argv.index("--json") + 1]
        report(json_path=path)
