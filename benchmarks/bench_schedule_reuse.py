"""E6 / §2.3: communication schedules are reusable.

"This schedule is computed prior to the transfer operation, and can be
reused in consecutive transfers, and even for different arrays as long
as they conform to the same distribution template."

Uses a block-cyclic pair (many ownership regions, so the build is
non-trivial) and compares per-transfer cost when the schedule is
rebuilt every time vs. fetched from the template-keyed cache, with
different actual arrays on every transfer.
"""

import numpy as np

from _common import banner, fmt_table, redistribute_once, timed
from repro.dad import BlockCyclic, CartesianTemplate, DistArrayDescriptor
from repro.schedule import ScheduleCache, build_region_schedule

SHAPE = (32, 32)
REPEATS = 5


def make_pair():
    src = DistArrayDescriptor(CartesianTemplate(
        [BlockCyclic(SHAPE[0], 4, 2), BlockCyclic(SHAPE[1], 2, 2)]))
    dst = DistArrayDescriptor(CartesianTemplate(
        [BlockCyclic(SHAPE[0], 2, 4), BlockCyclic(SHAPE[1], 4, 2)]))
    return src, dst


def report():
    print(banner("E6 (§2.3): schedule reuse — block-cyclic pair over "
                 f"{SHAPE}"))
    src, dst = make_pair()
    t_build, sched = timed(lambda: build_region_schedule(src, dst))

    # Rebuild every transfer.
    rebuild_times = []
    for k in range(REPEATS):
        g = np.random.default_rng(k).random(SHAPE)
        t, _ = timed(lambda: redistribute_once(
            src, dst, g, schedule=build_region_schedule(src, dst)))
        rebuild_times.append(t)

    # Cached schedule, different arrays each transfer (§2.3's point).
    cache = ScheduleCache()
    cached_times = []
    for k in range(REPEATS):
        g = np.random.default_rng(100 + k).random(SHAPE)
        t, _ = timed(lambda: redistribute_once(
            src, dst, g, schedule=cache.get(src, dst)))
        cached_times.append(t)

    rows = [
        ["schedule build alone", f"{t_build * 1e3:.2f}"],
        [f"transfer, rebuilding each time (avg of {REPEATS})",
         f"{np.mean(rebuild_times) * 1e3:.2f}"],
        [f"transfer, cached schedule (avg of {REPEATS})",
         f"{np.mean(cached_times) * 1e3:.2f}"],
    ]
    print(fmt_table(["phase", "ms"], rows))
    print(f"\nschedule: {sched.message_count} messages, "
          f"{sched.entries()} bookkeeping entries")
    print(f"cache stats: hits={cache.hits} misses={cache.misses} "
          f"(different arrays, same template pair -> hits)")
    assert cache.hits == REPEATS - 1 and cache.misses == 1


def test_schedule_build(benchmark):
    src, dst = make_pair()
    sched = benchmark(lambda: build_region_schedule(src, dst))
    assert sched.element_count == SHAPE[0] * SHAPE[1]


def test_cached_transfer(benchmark):
    src, dst = make_pair()
    g = np.random.default_rng(0).random(SHAPE)
    sched = build_region_schedule(src, dst)
    out, _ = benchmark.pedantic(
        lambda: redistribute_once(src, dst, g, schedule=sched),
        rounds=3, iterations=1)
    assert np.array_equal(out, g)


def test_rebuilt_transfer(benchmark):
    src, dst = make_pair()
    g = np.random.default_rng(0).random(SHAPE)
    out, _ = benchmark.pedantic(
        lambda: redistribute_once(
            src, dst, g, schedule=build_region_schedule(src, dst)),
        rounds=3, iterations=1)
    assert np.array_equal(out, g)


if __name__ == "__main__":
    report()
