"""A7 (ablation): zero-copy transport — persistent-channel steady state
vs one-shot transfers.

The one-shot executor pays two copies for every wire byte: the transport
snapshots each borrowed send-side view (value semantics for a sender
that may mutate right after ``send`` returns), and the receiver scatters
the queued wire buffer into its local array.  The persistent engines
remove the first copy and the steady-state allocations:

* the receiver preposts recv-into-destination slots, so a borrowed
  strided view is written straight into the destination's consolidated
  local base — one strided-to-strided copy per pair, no wire buffer;
* index-array pairs gather into buffers loaned from a per-engine
  :class:`~repro.schedule.bufpool.BufferPool` and move them with
  :class:`~repro.simmpi.payload.OwnedBuffer`; the loan is released on
  delivery, so after warm-up no step allocates anything.

This report drives both paths through the real simulated transport, but
single-threaded (``couple_jobs`` + explicit arm/send/complete ordering),
so the copy and allocation counters are exact and deterministic — not
thread-scheduler noise.  Copies and allocations come from
``TRANSPORT_STATS`` and the pool counters, normalized per wire byte and
per step.

``python benchmarks/bench_persistent_steady_state.py [--json PATH]
[--smoke]`` — ``--smoke`` checks the counters against the committed
baseline in BENCH_schedule.json (for CI) instead of the timing sweep.
"""

import json
import pathlib
import sys
import time

import numpy as np

from _common import banner, fmt_table
from repro.dad import (
    BlockCyclic,
    CartesianTemplate,
    Cyclic,
    DistArrayDescriptor,
    DistributedArray,
)
from repro.dad.template import block_template
from repro.schedule import build_region_schedule
from repro.schedule.executor import execute_inter
from repro.simmpi.intercomm import couple_jobs
from repro.simmpi.runner import Job
from repro.util.counters import TRANSPORT_STATS

EXTENT = 4800
SIZES = [(4, 6), (8, 12), (16, 24), (32, 48)]
REPS = 3
STEPS = 8

KINDS = {
    "block": lambda p, e: block_template((e,), (p,)),
    "cyclic": lambda p, e: CartesianTemplate([Cyclic(e, p)]),
    "blockcyclic4": lambda p, e: CartesianTemplate([BlockCyclic(e, p, 4)]),
}

# the acceptance pair from the issue: cyclic 32 -> 48 ranks
ACCEPTANCE = ("cyclic", 32, 48)
COPY_RATIO_FLOOR = 2.0

BASELINE_PATH = pathlib.Path(__file__).resolve().parent.parent / \
    "BENCH_schedule.json"


def _pair(kind, m, n, extent=EXTENT):
    make = KINDS[kind]
    return (DistArrayDescriptor(make(m, extent)),
            DistArrayDescriptor(make(n, extent)))


def _arrays(src_desc, dst_desc, extent):
    g = np.arange(float(extent)).reshape(src_desc.shape)
    srcs = [DistributedArray.from_global(src_desc, r, g)
            for r in range(src_desc.nranks)]
    dsts = [DistributedArray.allocate(dst_desc, r)
            for r in range(dst_desc.nranks)]
    return srcs, dsts


def _oneshot_step(sched, src_inters, dst_inters, srcs, dsts, tag):
    """One one-shot transfer, single-threaded: buffered sends first,
    then the receive side drains the queued wire buffers."""
    for r, arr in enumerate(srcs):
        execute_inter(sched, src_inters[r], "src", arr, tag=tag)
    return sum(execute_inter(sched, dst_inters[r], "dst", arr, tag=tag)
               for r, arr in enumerate(dsts))


def _persistent_step(senders, receivers):
    """One armed steady-state step: prepost, send, complete."""
    for rx in receivers:
        rx.arm()
    for tx in senders:
        tx.step()
    return sum(rx.complete(timeout=60) for rx in receivers)


def _measure(kind, m, n, extent=EXTENT, steps=STEPS):
    """Exact per-byte copy and per-step allocation counts, plus best-of
    wall times, for both transfer styles on one template pair."""
    src_desc, dst_desc = _pair(kind, m, n, extent)
    sched = build_region_schedule(src_desc, dst_desc)
    wire_bytes = sched.nbytes(src_desc.dtype)

    # --- one-shot: fresh transfers, every step pays full freight -------
    src_job, dst_job = Job(src_desc.nranks), Job(dst_desc.nranks)
    src_inters, dst_inters = couple_jobs(src_job, dst_job)
    srcs, dsts = _arrays(src_desc, dst_desc, extent)
    _oneshot_step(sched, src_inters, dst_inters, srcs, dsts, tag=700)
    c0 = TRANSPORT_STATS.get("bytes_copied")
    a0 = TRANSPORT_STATS.get("alloc_bytes")
    t_one = float("inf")
    for _ in range(REPS):
        t0 = time.perf_counter()
        for _ in range(steps):
            moved = _oneshot_step(sched, src_inters, dst_inters,
                                  srcs, dsts, tag=700)
        t_one = min(t_one, (time.perf_counter() - t0) / steps)
        assert moved == extent
    one_copies = (TRANSPORT_STATS.get("bytes_copied") - c0) / \
        (wire_bytes * steps * REPS)
    one_allocs = (TRANSPORT_STATS.get("alloc_bytes") - a0) / \
        (wire_bytes * steps * REPS)

    # --- persistent: warmed engines, pooled buffers, preposted recvs ---
    src_job, dst_job = Job(src_desc.nranks), Job(dst_desc.nranks)
    src_inters, dst_inters = couple_jobs(src_job, dst_job)
    srcs, dsts = _arrays(src_desc, dst_desc, extent)
    senders = [sched.persistent_sender(src_inters[r], srcs[r])
               for r in range(src_desc.nranks)]
    receivers = [sched.persistent_receiver(dst_inters[r], dsts[r])
                 for r in range(dst_desc.nranks)]
    _persistent_step(senders, receivers)  # warm-up: pools fill here
    c0 = TRANSPORT_STATS.get("bytes_copied")
    a0 = TRANSPORT_STATS.get("alloc_bytes")
    p0 = sum(tx.pool.stats.get("allocations") for tx in senders)
    t_per = float("inf")
    for _ in range(REPS):
        t0 = time.perf_counter()
        for _ in range(steps):
            moved = _persistent_step(senders, receivers)
        t_per = min(t_per, (time.perf_counter() - t0) / steps)
        assert moved == extent
    per_copies = (TRANSPORT_STATS.get("bytes_copied") - c0) / \
        (wire_bytes * steps * REPS)
    per_allocs = (TRANSPORT_STATS.get("alloc_bytes") - a0) + \
        sum(tx.pool.stats.get("allocations") for tx in senders) - p0

    return {
        "kind": kind, "m": m, "n": n, "wire_bytes": wire_bytes,
        "oneshot_copies_per_byte": one_copies,
        "oneshot_allocs_per_byte": one_allocs,
        "persistent_copies_per_byte": per_copies,
        "persistent_allocs_per_step": per_allocs,
        "copy_ratio": one_copies / per_copies if per_copies else float("inf"),
        "oneshot_ms": t_one * 1e3, "persistent_ms": t_per * 1e3,
    }


def sweep_rows(extent=EXTENT, steps=STEPS):
    return [_measure(kind, m, n, extent, steps)
            for kind in KINDS for m, n in SIZES]


def verify_hook_guard(extent=480, steps=6):
    """Prove the ``REPRO_VERIFY`` assertion hook costs nothing in the
    steady state: disabled, it does no work anywhere; enabled, all
    verification happens at engine construction and a steady-state
    step performs zero hook calls.  Counter deltas are exact integers."""
    from repro.verify import hook as verify_hook

    kind, m, n = ACCEPTANCE
    src_desc, dst_desc = _pair(kind, m, n, extent)

    def build_engines(sched):
        src_job, dst_job = Job(src_desc.nranks), Job(dst_desc.nranks)
        src_inters, dst_inters = couple_jobs(src_job, dst_job)
        srcs, dsts = _arrays(src_desc, dst_desc, extent)
        senders = [sched.persistent_sender(src_inters[r], srcs[r])
                   for r in range(src_desc.nranks)]
        receivers = [sched.persistent_receiver(dst_inters[r], dsts[r])
                     for r in range(dst_desc.nranks)]
        return senders, receivers

    was_enabled = verify_hook.verify_enabled()
    try:
        # --- disabled (the default): the hook is one boolean test ------
        verify_hook.set_verify(False)
        verify_hook.VERIFY_STATS.reset()
        senders, receivers = build_engines(
            build_region_schedule(src_desc, dst_desc))
        for _ in range(steps):
            _persistent_step(senders, receivers)
        disabled_total = sum(verify_hook.VERIFY_STATS.snapshot().values())

        # --- enabled: proofs run once at construction, never in step ---
        verify_hook.set_verify(True)
        verify_hook.VERIFY_STATS.reset()
        senders, receivers = build_engines(
            build_region_schedule(src_desc, dst_desc))
        construction = verify_hook.VERIFY_STATS.snapshot()
        for _ in range(steps):
            _persistent_step(senders, receivers)
        after = verify_hook.VERIFY_STATS.snapshot()
        step_calls = (after.get("hook_calls", 0)
                      - construction.get("hook_calls", 0))
        step_checks = (after.get("rank_checks", 0)
                       - construction.get("rank_checks", 0))
    finally:
        verify_hook.set_verify(was_enabled)
        verify_hook.VERIFY_STATS.reset()

    return {
        "kind": kind, "m": m, "n": n, "steps": steps,
        "disabled_hook_work_total": disabled_total,
        "construction_rank_checks": construction.get("rank_checks", 0),
        "steady_hook_calls_per_step": step_calls / steps,
        "steady_verifications_per_step": step_checks / steps,
        "passed": (disabled_total == 0 and step_calls == 0
                   and step_checks == 0
                   and construction.get("rank_checks", 0) == m + n),
    }


def report(json_path=None):
    print(banner("A7 (ablation): zero-copy transport — persistent "
                 "steady state vs one-shot"))
    rows = sweep_rows()
    print(fmt_table(
        ["kind", "M x N", "1shot cp/B", "persist cp/B", "ratio",
         "allocs/step", "1shot ms", "persist ms"],
        [[r["kind"], f"{r['m']}x{r['n']}",
          f"{r['oneshot_copies_per_byte']:.2f}",
          f"{r['persistent_copies_per_byte']:.2f}",
          f"{r['copy_ratio']:.2f}x", r["persistent_allocs_per_step"],
          f"{r['oneshot_ms']:.2f}", f"{r['persistent_ms']:.2f}"]
         for r in rows]))

    kind, m, n = ACCEPTANCE
    acc = next(r for r in rows if (r["kind"], r["m"], r["n"]) == (kind, m, n))
    print(f"\nAcceptance pair ({kind} {m}x{n}, extent {EXTENT}): "
          f"{acc['copy_ratio']:.1f}x fewer bytes copied per steady-state "
          f"step than one-shot (floor: {COPY_RATIO_FLOOR}x), "
          f"{acc['persistent_allocs_per_step']} buffer allocations per "
          f"step (floor: 0).\nStrided pairs land via one direct "
          f"strided-to-strided write; index pairs gather into pooled "
          f"buffers and move them.")

    guard = verify_hook_guard()
    print(f"\nVerifier hook guard ({guard['kind']} {guard['m']}x"
          f"{guard['n']}): disabled hook work "
          f"{guard['disabled_hook_work_total']} (floor: 0); enabled, "
          f"{guard['construction_rank_checks']} rank proofs at engine "
          f"construction and {guard['steady_hook_calls_per_step']:.0f} "
          f"hook calls per steady-state step (floor: 0).")

    payload = {
        "extent": EXTENT, "reps": REPS, "steps": STEPS, "rows": rows,
        "verify_hook": guard,
        "acceptance": {
            "kind": kind, "m": m, "n": n,
            "copy_ratio": acc["copy_ratio"],
            "copy_ratio_floor": COPY_RATIO_FLOOR,
            "oneshot_copies_per_byte": acc["oneshot_copies_per_byte"],
            "persistent_copies_per_byte": acc["persistent_copies_per_byte"],
            "persistent_allocs_per_step": acc["persistent_allocs_per_step"],
            "passed": (acc["copy_ratio"] >= COPY_RATIO_FLOOR
                       and acc["persistent_allocs_per_step"] == 0),
        },
    }
    if json_path:
        with open(json_path, "w") as fh:
            json.dump(payload, fh, indent=2)
        print(f"\nwrote {json_path}")
    return payload


def smoke():
    """CI gate: re-measure the counters on a small extent and fail if
    copies-per-byte or allocations-per-step regress past the committed
    baseline.  Counter deltas are exact integers — this cannot flake."""
    with open(BASELINE_PATH) as fh:
        baseline = json.load(fh)["persistent_steady_state"]
    kind, m, n = ACCEPTANCE
    r = _measure(kind, m, n, extent=480, steps=4)
    base_copies = baseline["persistent_copies_per_byte"]
    if r["persistent_copies_per_byte"] > base_copies + 1e-9:
        raise SystemExit(
            f"copies-per-byte regression: persistent steady state copies "
            f"{r['persistent_copies_per_byte']:.3f} B/B, committed "
            f"baseline {base_copies:.3f} B/B")
    if r["persistent_allocs_per_step"] > baseline["allocs_per_step"]:
        raise SystemExit(
            f"allocation regression: {r['persistent_allocs_per_step']} "
            f"buffer allocations per steady-state step, committed "
            f"baseline {baseline['allocs_per_step']}")
    if r["copy_ratio"] < baseline["copy_ratio_floor"]:
        raise SystemExit(
            f"copy-ratio regression: {r['copy_ratio']:.2f}x < floor "
            f"{baseline['copy_ratio_floor']}x")
    # index-array kinds must hold the zero-allocation property too
    r2 = _measure("blockcyclic4", 4, 6, extent=480, steps=4)
    if r2["persistent_allocs_per_step"] != 0:
        raise SystemExit(
            f"pooled path allocates: {r2['persistent_allocs_per_step']} "
            f"allocations per steady-state step on blockcyclic4")
    guard = verify_hook_guard()
    if not guard["passed"]:
        raise SystemExit(
            f"verify-hook overhead regression: disabled work "
            f"{guard['disabled_hook_work_total']}, "
            f"{guard['steady_hook_calls_per_step']} hook calls per "
            f"steady-state step (both must be 0, with "
            f"{guard['m'] + guard['n']} construction-time rank proofs)")
    print("bench_persistent_steady_state smoke: OK "
          f"(ratio {r['copy_ratio']:.1f}x, 0 allocs/step, "
          f"verify hook zero-cost)")


# --- pytest-benchmark hooks -------------------------------------------------

def test_acceptance_copy_ratio():
    kind, m, n = ACCEPTANCE
    r = _measure(kind, m, n, extent=480, steps=4)
    assert r["copy_ratio"] >= COPY_RATIO_FLOOR
    assert r["persistent_allocs_per_step"] == 0


if __name__ == "__main__":
    if "--smoke" in sys.argv:
        smoke()
    else:
        path = None
        if "--json" in sys.argv:
            path = sys.argv[sys.argv.index("--json") + 1]
        report(json_path=path)
