"""E5 / Figure 5: the PRMI synchronization problem.

Runs the paper's three-process intersecting-collectives scenario under
both delivery policies and prints the event outcome:

* EAGER (deliver at first arrival): the provider commits to call 1 at
  t1 and deadlocks — detected and reported by the watchdog;
* BARRIER (delay delivery until all participants reach the call): the
  provider services call 2 first, then call 1 — completion with a
  consistent order.
"""

import pytest

from _common import banner, fmt_table, timed
from repro.dca import DeliveryPolicy
from repro.dca.fig5 import run_fig5
from repro.errors import DeadlockError, SpmdError


def eager_outcome():
    try:
        run_fig5(DeliveryPolicy.EAGER, deadlock_timeout=1.0)
        return "COMPLETED (unexpected!)"
    except SpmdError as exc:
        kinds = {type(e).__name__ for e in exc.failures.values()}
        if "DeadlockError" in kinds:
            return f"DEADLOCK detected ({len(exc.failures)} ranks blocked)"
        return f"failed otherwise: {kinds}"


def barrier_outcome():
    out = run_fig5(DeliveryPolicy.BARRIER)
    return "COMPLETED, service order " + " then ".join(out["timeline"])


def report():
    print(banner("E5 (Fig. 5): the synchronization problem"))
    t_eager, eager = timed(eager_outcome)
    t_barrier, barrier = timed(barrier_outcome)
    rows = [
        ["EAGER (deliver at first arrival)", eager, f"{t_eager:.2f}"],
        ["BARRIER (delay until all ready)", barrier, f"{t_barrier:.2f}"],
    ]
    print(fmt_table(["delivery policy", "outcome", "s"], rows))
    print("\n'The solution is to delay PRMI delivery until all processes"
          "\nare ready' — the BARRIER policy reproduces exactly that.")


def test_barrier_policy_completes(benchmark):
    out = benchmark.pedantic(
        lambda: run_fig5(DeliveryPolicy.BARRIER), rounds=3, iterations=1)
    assert out["timeline"] == ["call2", "call1"]


def test_eager_policy_deadlock_detection(benchmark):
    def run():
        with pytest.raises(SpmdError) as exc_info:
            run_fig5(DeliveryPolicy.EAGER, deadlock_timeout=0.8)
        assert any(isinstance(e, DeadlockError)
                   for e in exc_info.value.failures.values())
    benchmark.pedantic(run, rounds=3, iterations=1)


if __name__ == "__main__":
    report()
