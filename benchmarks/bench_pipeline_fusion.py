"""Ablation A3 / §6: pipeline composition and the super-component.

"An important pragmatic issue that arises with such pipelining is how
efficiently redistribution functions compose with one another.
Techniques must be explored to operate on data in place and avoid
unnecessary data copies.  Super-component solutions could also be
explored ... by combining several successive redistribution and
translation components into a single optimized component."

A representative coupling pipeline (unit conversion → redistribution →
clamp → redistribution) is executed stage-by-stage and as the fused
super-component; work metrics show where the savings come from.
"""

import numpy as np

from _common import banner, fmt_table, timed
from repro.dad import DistArrayDescriptor, DistributedArray
from repro.dad.template import block_template
from repro.pipeline import (
    ClampFilter,
    FilterStage,
    Pipeline,
    PipelineMetrics,
    RedistributeStage,
    UnitConversion,
)
from repro.simmpi import run_spmd

SHAPE = (64, 64)


def build_pipeline():
    a = DistArrayDescriptor(block_template(SHAPE, (4, 1)))
    b = DistArrayDescriptor(block_template(SHAPE, (1, 4)))
    c = DistArrayDescriptor(block_template(SHAPE, (2, 2)))
    return Pipeline(a, [
        FilterStage(UnitConversion("celsius", "kelvin")),
        RedistributeStage(b),
        FilterStage(UnitConversion("kelvin", "celsius")),
        FilterStage(UnitConversion("celsius", "fahrenheit")),
        FilterStage(ClampFilter(lo=-100.0, hi=200.0)),
        RedistributeStage(c),
    ])


def run(pipeline_like, src_desc, g):
    box = {}

    def main(comm):
        src = (DistributedArray.from_global(src_desc, comm.rank, g)
               if comm.rank < src_desc.nranks else None)
        metrics = PipelineMetrics()
        out = pipeline_like.run(comm, src, metrics)
        box[comm.rank] = metrics
        return out

    parts = [p for p in run_spmd(pipeline_like.max_nranks, main)
             if p is not None]
    return DistributedArray.assemble(parts), box[0]


def report():
    print(banner(f"A3 (§6): pipeline fusion, {SHAPE} field, "
                 "4 filters + 2 redistributions"))
    pipe = build_pipeline()
    fused = pipe.fuse()
    g = np.random.default_rng(0).random(SHAPE) * 60 - 20
    t_naive, (out_naive, m_naive) = timed(
        lambda: run(pipe, pipe.src_descriptor, g))
    t_fused, (out_fused, m_fused) = timed(
        lambda: run(fused, pipe.src_descriptor, g))
    np.testing.assert_allclose(out_naive, out_fused)
    rows = [
        ["schedules executed", m_naive.schedules_executed,
         m_fused.schedules_executed],
        ["elements moved", m_naive.elements_moved, m_fused.elements_moved],
        ["filter passes", m_naive.filter_passes, m_fused.filter_passes],
        ["arrays allocated", m_naive.arrays_allocated,
         m_fused.arrays_allocated],
        ["wall time (ms)", f"{t_naive * 1e3:.0f}", f"{t_fused * 1e3:.0f}"],
    ]
    print(fmt_table(["metric", "stage-by-stage", "super-component"], rows))
    print(f"\nfused filter chain length: {len(fused.filters)} "
          "(3 affine conversions composed into 1, clamp kept)")
    print("The super-component moves the field once instead of twice,"
          "\napplies filters in place, and composes affine conversions in"
          "\nclosed form — results are bit-identical.")
    assert m_fused.elements_moved == g.size
    assert m_naive.elements_moved == 2 * g.size


def test_naive_pipeline(benchmark):
    pipe = build_pipeline()
    g = np.random.default_rng(0).random(SHAPE)
    benchmark.pedantic(lambda: run(pipe, pipe.src_descriptor, g),
                       rounds=3, iterations=1)


def test_fused_pipeline(benchmark):
    pipe = build_pipeline()
    fused = pipe.fuse()
    g = np.random.default_rng(0).random(SHAPE)
    benchmark.pedantic(lambda: run(fused, pipe.src_descriptor, g),
                       rounds=3, iterations=1)


if __name__ == "__main__":
    report()
