"""E16 / §2.2.1: receiver-driven requests vs precomputed schedules.

"In this system, each process on the receiver side broadcasts to the
senders which chunks of data it requires, referencing them to the
linearization.  At the expense of this small communication overhead, no
communication schedule is required."

Compares the Indiana-device receiver-driven protocol against the
precomputed-schedule executor, for a single transfer (where skipping
the schedule build helps) and for repeated transfers (where the
per-transfer request overhead loses to schedule reuse).
"""

import numpy as np

from _common import banner, fmt_table, timed
from repro.dad import DistArrayDescriptor, DistributedArray
from repro.dad.template import block_template
from repro.linearize import DenseLinearization, receiver_driven_transfer
from repro.schedule import build_region_schedule, execute_inter
from repro.simmpi import NameService, run_coupled

SHAPE = (96, 96)
M, N = 3, 2


def descs():
    src = DistArrayDescriptor(block_template(SHAPE, (M, 1)))
    dst = DistArrayDescriptor(block_template(SHAPE, (1, N)))
    return src, dst


def run_receiver_driven(repeats):
    src_desc, dst_desc = descs()
    src_lin = DenseLinearization(src_desc)
    dst_lin = DenseLinearization(dst_desc)
    g = np.random.default_rng(0).random(SHAPE)
    ns = NameService()

    def sender(comm):
        inter = ns.accept("rd", comm)
        da = DistributedArray.from_global(src_desc, comm.rank, g)
        for _ in range(repeats):
            receiver_driven_transfer(inter, "send", src_lin, da)
        comm.barrier()
        return comm.counters.snapshot()

    def receiver(comm):
        inter = ns.connect("rd", comm)
        da = DistributedArray.allocate(dst_desc, comm.rank)
        for _ in range(repeats):
            receiver_driven_transfer(inter, "recv", dst_lin, da)
        comm.barrier()
        return da, comm.counters.snapshot()

    out = run_coupled([("send", M, sender, ()), ("recv", N, receiver, ())])
    assembled = DistributedArray.assemble([r[0] for r in out["recv"]])
    assert np.array_equal(assembled, g)
    return (out["recv"][0][1].get("inter_msgs", 0)
            + out["send"][0].get("inter_msgs", 0))


def run_scheduled(repeats, *, prebuilt=None):
    src_desc, dst_desc = descs()
    g = np.random.default_rng(0).random(SHAPE)
    ns = NameService()

    def sender(comm):
        inter = ns.accept("sc", comm)
        sched = prebuilt if prebuilt is not None else \
            build_region_schedule(src_desc, dst_desc)
        da = DistributedArray.from_global(src_desc, comm.rank, g)
        for _ in range(repeats):
            execute_inter(sched, inter, "src", da)
        comm.barrier()
        return comm.counters.snapshot()

    def receiver(comm):
        inter = ns.connect("sc", comm)
        sched = prebuilt if prebuilt is not None else \
            build_region_schedule(src_desc, dst_desc)
        da = DistributedArray.allocate(dst_desc, comm.rank)
        for _ in range(repeats):
            execute_inter(sched, inter, "dst", da)
        comm.barrier()
        return da, comm.counters.snapshot()

    out = run_coupled([("send", M, sender, ()), ("recv", N, receiver, ())])
    assembled = DistributedArray.assemble([r[0] for r in out["recv"]])
    assert np.array_equal(assembled, g)
    return (out["recv"][0][1].get("inter_msgs", 0)
            + out["send"][0].get("inter_msgs", 0))


def report():
    print(banner(f"E16 (§2.2.1): receiver-driven vs schedule, {SHAPE} "
                 f"array, M={M} N={N}"))
    rows = []
    for repeats in (1, 10):
        t_rd, msgs_rd = timed(lambda repeats=repeats: run_receiver_driven(repeats))
        t_sc, msgs_sc = timed(lambda repeats=repeats: run_scheduled(repeats))
        rows.append([repeats, "receiver-driven", msgs_rd,
                     f"{t_rd * 1e3:.0f}"])
        rows.append([repeats, "schedule (built per run)", msgs_sc,
                     f"{t_sc * 1e3:.0f}"])
    print(fmt_table(["transfers", "protocol", "inter-job msgs", "ms"],
                    rows))
    print(f"\nreceiver-driven adds {N}x{M} request + {N}x{M} reply envelopes"
          "\nPER TRANSFER (no schedule needed); the precomputed schedule"
          "\npays its build once and then moves only data messages.")


def test_receiver_driven_single(benchmark):
    benchmark.pedantic(lambda: run_receiver_driven(1), rounds=3,
                       iterations=1)


def test_scheduled_single(benchmark):
    benchmark.pedantic(lambda: run_scheduled(1), rounds=3, iterations=1)


def test_message_overhead_shape():
    msgs_rd = run_receiver_driven(1)
    msgs_sc = run_scheduled(1)
    assert msgs_rd > msgs_sc  # request/reply overhead exists


if __name__ == "__main__":
    report()
