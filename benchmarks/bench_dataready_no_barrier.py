"""E9 / §4.1: pairwise dataReady needs no synchronization barriers.

"By breaking down the overall M×N transfer into these independent
asynchronous point-to-point transfers, no additional synchronization
barriers are required on either side of the transfer."

Producers become ready at staggered times.  With the pairwise protocol,
early destinations finish as soon as *their* sources are ready; a
barrier-synchronized variant makes everyone wait for the slowest
producer.  Reported: barrier count and per-destination completion
times.
"""

import time

import numpy as np

from _common import banner, fmt_table
from repro.dad import AccessMode, DistArrayDescriptor, DistributedArray
from repro.dad.template import block_template
from repro.mxn import ConnectionKind, MxNComponent
from repro.simmpi import NameService, run_coupled

SHAPE = (32, 32)
M, N = 4, 4
SKEW = 0.10  # seconds between successive producers becoming ready


def run_mxn(synchronized):
    src_desc = DistArrayDescriptor(block_template(SHAPE, (M, 1)))
    dst_desc = DistArrayDescriptor(block_template(SHAPE, (N, 1)))
    g = np.random.default_rng(2).random(SHAPE)
    ns = NameService()
    t0 = time.perf_counter()

    def producer(comm):
        inter = ns.accept("e9", comm)
        mxn = MxNComponent(comm)
        da = DistributedArray.from_global(src_desc, comm.rank, g)
        mxn.register("f", da, AccessMode.READ)
        conn = mxn.connect(inter, "source", "f", ConnectionKind.ONE_SHOT)
        time.sleep(SKEW * comm.rank)  # staggered readiness
        if synchronized:
            comm.barrier()  # wait for the slowest producer
        conn.data_ready()
        return comm.counters.snapshot().get("barriers", 0)

    def consumer(comm):
        inter = ns.connect("e9", comm)
        mxn = MxNComponent(comm)
        da = DistributedArray.allocate(dst_desc, comm.rank)
        mxn.register("f", da, AccessMode.WRITE)
        conn = mxn.connect(inter, "destination", "f",
                           ConnectionKind.ONE_SHOT)
        conn.data_ready()
        return time.perf_counter() - t0, da

    out = run_coupled([
        ("producer", M, producer, ()),
        ("consumer", N, consumer, ()),
    ])
    assembled = DistributedArray.assemble([r[1] for r in out["consumer"]])
    assert np.array_equal(assembled, g)
    completion = [r[0] for r in out["consumer"]]
    barriers = sum(out["producer"])
    return completion, barriers


def report():
    print(banner("E9 (§4.1): dataReady without barriers, "
                 f"{M} producers staggered by {SKEW * 1e3:.0f} ms"))
    pair_completion, pair_barriers = run_mxn(synchronized=False)
    sync_completion, sync_barriers = run_mxn(synchronized=True)
    rows = []
    for d in range(N):
        rows.append([f"dest {d} (src ready at "
                     f"{d * SKEW * 1e3:.0f} ms)",
                     f"{pair_completion[d] * 1e3:.0f}",
                     f"{sync_completion[d] * 1e3:.0f}"])
    rows.append(["barriers executed", pair_barriers, sync_barriers])
    print(fmt_table(["destination", "pairwise ms", "barrier-sync ms"],
                    rows))
    print("\nPairwise: dest d completes when ITS source is ready;"
          "\nbarrier-synchronized: every destination waits for the slowest.")
    # Shape assertions: fastest pairwise destination beats its
    # barrier-synchronized counterpart, and no barriers were used.
    assert pair_barriers == 0
    assert min(pair_completion) < min(sync_completion)


def test_pairwise_transfer(benchmark):
    benchmark.pedantic(lambda: run_mxn(False), rounds=3, iterations=1)


def test_barrier_synchronized_transfer(benchmark):
    benchmark.pedantic(lambda: run_mxn(True), rounds=3, iterations=1)


if __name__ == "__main__":
    report()
