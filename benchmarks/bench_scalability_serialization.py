"""E8 / §3: no serialization through a single data management process.

The paper's scalability criterion: "communications between the
components is not serialized through a single data management process".
Compares the pairwise schedule executor with the gather-to-root
baseline (and the per-element baseline as the degenerate case) on bytes
through the hottest rank, total messages, and wall time.
"""

import numpy as np
import pytest

from _common import banner, fmt_table, make_block_pair, timed
from repro.baselines import redistribute_elementwise, redistribute_via_root
from repro.dad import DistributedArray
from repro.schedule import build_region_schedule, execute_intra
from repro.simmpi import run_spmd

SHAPE = (32, 32)
CASES = [((2, 2), (4, 1)), ((4, 2), (2, 4))]


def run_strategy(strategy, src_desc, dst_desc, g):
    n = max(src_desc.nranks, dst_desc.nranks)
    sched = build_region_schedule(src_desc, dst_desc) \
        if strategy == "schedule" else None

    def main(comm):
        src = (DistributedArray.from_global(src_desc, comm.rank, g)
               if comm.rank < src_desc.nranks else None)
        dst = (DistributedArray.allocate(dst_desc, comm.rank)
               if comm.rank < dst_desc.nranks else None)
        kwargs = {"src_array": src, "dst_array": dst,
                  "src_ranks": range(src_desc.nranks),
                  "dst_ranks": range(dst_desc.nranks)}
        if strategy == "schedule":
            execute_intra(sched, comm, **kwargs)
        elif strategy == "via_root":
            redistribute_via_root(comm, src_desc, dst_desc, **kwargs)
        else:
            redistribute_elementwise(comm, src_desc, dst_desc, **kwargs)
        comm.barrier()
        return dst, comm.counters.snapshot()

    results = run_spmd(n, main)
    out = DistributedArray.assemble(
        [r[0] for r in results if r[0] is not None])
    assert np.array_equal(out, g)
    counters = results[0][1]
    hottest = max(counters.get(f"rank{r}.rx_bytes", 0) for r in range(n))
    return counters.get("msgs", 0), hottest


def report():
    print(banner(f"E8 (§3): serialization hotspots, {SHAPE} array "
                 f"({SHAPE[0] * SHAPE[1] * 8 // 1024} KiB)"))
    rows = []
    for src_grid, dst_grid in CASES:
        src, dst = make_block_pair(SHAPE, src_grid, dst_grid)
        g = np.random.default_rng(0).random(SHAPE)
        for strategy in ("schedule", "via_root", "elementwise"):
            t, (msgs, hottest) = timed(
                lambda strategy=strategy: run_strategy(strategy, src, dst, g))
            rows.append([
                f"{np.prod(src_grid)}x{np.prod(dst_grid)}", strategy,
                msgs, f"{hottest / 1024:.0f}", f"{t * 1e3:.0f}"])
    print(fmt_table(["M x N", "strategy", "messages",
                     "hottest-rank KiB in", "ms"], rows))
    print("\nThe root baseline funnels ~the whole array through one rank;"
          "\nthe pairwise schedule spreads it, and the per-element baseline"
          "\nexplodes the message count.")


@pytest.mark.parametrize("strategy", ["schedule", "via_root"])
def test_strategy(benchmark, strategy):
    src, dst = make_block_pair(SHAPE, *CASES[0])
    g = np.random.default_rng(0).random(SHAPE)
    benchmark.pedantic(lambda: run_strategy(strategy, src, dst, g),
                       rounds=3, iterations=1)


if __name__ == "__main__":
    report()
