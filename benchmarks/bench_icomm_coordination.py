"""E15 / §4.4: third-party timestamp coordination.

"Separation of control issues from data transfers enables InterComm to
potentially hide the cost of data transfers behind other program
activities" and lets a third party decide when transfers happen.

Measures coupling throughput when the importer consumes every k-th
export under a REGULAR rule (the exporter never blocks), against a
hand-coded variant where the producer synchronously pushes every step.
"""


from _common import banner, fmt_table, timed
from repro.dad import DistArrayDescriptor, DistributedArray
from repro.dad.template import block_template
from repro.icomm import CoordinationSpec, Exporter, Importer, MatchRule, Matching
from repro.schedule import build_region_schedule, execute_inter
from repro.simmpi import NameService, run_coupled

POINTS = (512,)
M, N = 2, 2
STEPS = 20
INTERVAL = 4


def run_coordinated():
    src = DistArrayDescriptor(block_template(POINTS, (M,)))
    dst = DistArrayDescriptor(block_template(POINTS, (N,)))
    fields = {"f": (src, dst)}
    spec = CoordinationSpec(
        [MatchRule("f", Matching.REGULAR, interval=INTERVAL)])
    n_imports = STEPS // INTERVAL
    ns = NameService()

    def producer(comm):
        inter = ns.accept("e15", comm)
        exp = Exporter(comm, inter, spec, fields,
                       total_imports=n_imports)
        for ts in range(STEPS):
            snap = DistributedArray.from_function(
                src, comm.rank, lambda i, ts=ts: ts + 0.0 * i)
            exp.export("f", ts, snap)
        exp.finalize()
        return exp.transfers

    def consumer(comm):
        inter = ns.connect("e15", comm)
        imp = Importer(comm, inter, spec, fields)
        matched = []
        for k in range(n_imports):
            buf = DistributedArray.allocate(dst, comm.rank)
            matched.append(imp.import_("f", k * INTERVAL + 1, buf))
        return matched

    out = run_coupled([("producer", M, producer, ()),
                       ("consumer", N, consumer, ())])
    return out["producer"][0], out["consumer"][0]


def run_hand_coded():
    """Producer pushes EVERY step synchronously; consumer must keep up."""
    src = DistArrayDescriptor(block_template(POINTS, (M,)))
    dst = DistArrayDescriptor(block_template(POINTS, (N,)))
    sched = build_region_schedule(src, dst)
    ns = NameService()

    def producer(comm):
        inter = ns.accept("hc", comm)
        for ts in range(STEPS):
            snap = DistributedArray.from_function(
                src, comm.rank, lambda i, ts=ts: ts + 0.0 * i)
            execute_inter(sched, inter, "src", snap)
        return STEPS

    def consumer(comm):
        inter = ns.connect("hc", comm)
        for _ts in range(STEPS):
            buf = DistributedArray.allocate(dst, comm.rank)
            execute_inter(sched, inter, "dst", buf)
        return STEPS

    out = run_coupled([("producer", M, producer, ()),
                       ("consumer", N, consumer, ())])
    return out["producer"][0]


def report():
    print(banner(f"E15 (§4.4): coordination spec vs hand-coded pushes, "
                 f"{STEPS} producer steps, consumer wants every "
                 f"{INTERVAL}th"))
    t_coord, (transfers, matched) = timed(run_coordinated)
    t_hand, pushes = timed(run_hand_coded)
    rows = [
        ["coordinated (REGULAR rule)", transfers, f"{t_coord * 1e3:.0f}"],
        ["hand-coded push-every-step", pushes, f"{t_hand * 1e3:.0f}"],
    ]
    print(fmt_table(["strategy", "transfers", "ms"], rows))
    print(f"\nmatched export timestamps: {matched}")
    print("The rule book moves only the data the consumer will use"
          f"\n({transfers} of {STEPS} snapshots); the hand-coded version "
          "ships all of them\nand welds the programs' time loops together.")
    assert transfers == STEPS // INTERVAL
    assert matched == [k * INTERVAL for k in range(STEPS // INTERVAL)]


def test_coordinated_coupling(benchmark):
    benchmark.pedantic(run_coordinated, rounds=3, iterations=1)


def test_hand_coded_coupling(benchmark):
    benchmark.pedantic(run_hand_coded, rounds=3, iterations=1)


if __name__ == "__main__":
    report()
