"""A8 (ablation): multicore scaling — procs backend vs threads.

The threads backend simulates ranks as Python threads, so the GIL
serializes every pack/unpack/copy no matter how many cores the host
has.  The procs backend forks each rank into a real process and moves
payloads through shared-memory slot rings, so the per-rank copy work
runs on real cores in parallel.  This experiment drives the same
persistent coupled-field channel (``Coupler.open`` + ``push``/``pull``)
over both backends and compares aggregate steady-state redistribution
throughput.

Configuration: cyclic 8 -> 12 redistribution (block-cyclic interleave,
4 KiB blocks — the same all-pairs communication structure as
element-cyclic, 24 cross pairs, but with schedule size independent of
the payload) of a >= 64 MiB float64 array.  Producers and consumers run
in lockstep via tiny ack tokens so the slot rings can never overfill:
zero steady-state slot-pool (and pack-pool) allocations is asserted, on
top of the throughput ratio.

The >= 2x throughput acceptance only holds where there are cores to
scale onto; on fewer than 4 cores the ratio is reported but not
enforced (process transport pays fork + queue overhead that only pays
off with real parallelism).

``python benchmarks/bench_multicore_scaling.py [--json PATH] [--smoke]``
— ``--smoke`` replays a small extent, checks byte-identity against the
ground truth on both backends and the zero-allocation counters against
the committed baseline in BENCH_schedule.json (for CI).
"""

import json
import os
import pathlib
import sys
import time

import numpy as np

from _common import banner, fmt_table
from repro.dad import (
    BlockCyclic,
    CartesianTemplate,
    DistArrayDescriptor,
    DistributedArray,
)
from repro.highlevel import Coupler, _cache
from repro.simmpi import run_coupled
from repro.simmpi.intercomm import default_nameservice
from repro.simmpi.procs import slot_stats
from repro.util.counters import TRANSPORT_STATS

M, N = 8, 12                    # producer x consumer ranks (cyclic 8 -> 12)
BLOCK = 4096                    # interleave block (elements)
EXTENT = 8 * 1024 * 1024        # 64 MiB of float64 per snapshot
SMOKE_EXTENT = 96_000
STEPS = 3
RATIO_FLOOR = 2.0
MIN_CORES = 4

_FIELD, _ACK, _ACK_TAG = "mcs-field", "mcs-ack", 7

BASELINE_PATH = pathlib.Path(__file__).resolve().parent.parent / \
    "BENCH_schedule.json"

#: Ground-truth arrays, built once in the parent so forked procs-backend
#: ranks read them through copy-on-write instead of rebuilding 64 MiB each.
_GLOBALS: dict[int, np.ndarray] = {}


def _global(extent):
    if extent not in _GLOBALS:
        _GLOBALS[extent] = np.arange(float(extent))
    return _GLOBALS[extent]


def _descs(extent):
    return (DistArrayDescriptor(CartesianTemplate([BlockCyclic(extent, M,
                                                               BLOCK)])),
            DistArrayDescriptor(CartesianTemplate([BlockCyclic(extent, N,
                                                               BLOCK)])))


# -- rank programs (module level: fork-safe on the procs backend) ------------

def _producer(comm, extent, steps, dst_of):
    src_desc, _ = _descs(extent)
    da = DistributedArray.from_global(src_desc, comm.rank, _global(extent))
    chan = Coupler(_FIELD, default_nameservice).open(comm, "source", da)
    ack = default_nameservice.accept(_ACK, comm)
    mine = dst_of.get(comm.rank, ())

    def step():
        chan.push()
        for d in mine:                     # lockstep: wait until every
            ack.recv(d, tag=_ACK_TAG)      # consumer of ours has pulled
    step()                                 # warm-up: pools fill here
    s0 = slot_stats()
    p0 = chan.pool_stats.get("allocations", 0)
    comm.barrier()
    t0 = time.perf_counter()
    for _ in range(steps):
        step()
    elapsed = time.perf_counter() - t0
    s1 = slot_stats()
    return {
        "elapsed": elapsed,
        "pool_allocs": chan.pool_stats.get("allocations", 0) - p0,
        "slot_allocs": s1.get("allocations", 0) - s0.get("allocations", 0),
        "ring_full": s1.get("ring_full", 0) - s0.get("ring_full", 0),
        "slot_loans": s1.get("loans", 0) - s0.get("loans", 0),
    }


def _consumer(comm, extent, steps, src_of, collect):
    _, dst_desc = _descs(extent)
    chan = Coupler(_FIELD, default_nameservice).open(
        comm, "destination", dst_desc)
    ack = default_nameservice.connect(_ACK, comm)
    mine = src_of.get(comm.rank, ())

    def step():
        out = chan.pull()
        for s in mine:
            ack.send(None, s, tag=_ACK_TAG)
        return out
    step()                                 # warm-up
    d0 = TRANSPORT_STATS.get("direct_deliveries")
    comm.barrier()
    t0 = time.perf_counter()
    for _ in range(steps):
        out = step()
    elapsed = time.perf_counter() - t0
    return {
        "elapsed": elapsed,
        "sum": sum(float(v.sum()) for v in out.patches.values()),
        "direct": TRANSPORT_STATS.get("direct_deliveries") - d0,
        "array": out if collect else None,
    }


# -- measurement -------------------------------------------------------------

def _measure(backend, extent=EXTENT, steps=STEPS, *, collect=False,
             transport_opts=None):
    """One backend's steady-state throughput plus the exact allocation
    counters, all from the same persistent-channel rank program."""
    src_desc, dst_desc = _descs(extent)
    sched = _cache.get(src_desc, dst_desc)   # pre-warm: forked ranks inherit
    wire_bytes = sched.nbytes(np.float64)
    pairs = {(it.src, it.dst) for it in sched.items}
    dst_of = {r: sorted(d for s, d in pairs if s == r) for r in range(M)}
    src_of = {r: sorted(s for s, d in pairs if d == r) for r in range(N)}
    _global(extent)                          # ditto for the ground truth

    res = run_coupled(
        [("prod", M, _producer, (extent, steps, dst_of)),
         ("cons", N, _consumer, (extent, steps, src_of, collect))],
        deadlock_timeout=180.0, backend=backend,
        transport_opts=transport_opts)
    prods, cons = res["prod"], res["cons"]
    elapsed = max(r["elapsed"] for r in prods + cons)
    return {
        "backend": backend,
        "wire_bytes": wire_bytes,
        "pairs": len(pairs),
        "step_ms": elapsed / steps * 1e3,
        "gbps": wire_bytes * steps / elapsed / 1e9,
        "pool_allocs": sum(r["pool_allocs"] for r in prods),
        "slot_allocs": sum(r["slot_allocs"] for r in prods),
        "ring_full": sum(r["ring_full"] for r in prods),
        "slot_loans": sum(r["slot_loans"] for r in prods),
        "direct": sum(r["direct"] for r in cons),
        "sum": sum(r["sum"] for r in cons),
        "parts": [r["array"] for r in cons] if collect else None,
    }


def _full_opts():
    """Slot geometry for the 64 MiB snapshot: the largest pair message is
    wire_bytes / 24 ~= 2.8 MiB, and lockstep keeps at most |dst_of| = 3
    messages in any sender's ring."""
    return {"slot_bytes": 4 << 20, "slots_per_endpoint": 6}


def sweep(extent=EXTENT, steps=STEPS, *, collect=False, opts=None):
    rows = [_measure(b, extent, steps, collect=collect,
                     transport_opts=opts if b == "procs" else None)
            for b in ("threads", "procs")]
    ratio = rows[1]["gbps"] / rows[0]["gbps"] if rows[0]["gbps"] else 0.0
    return rows, ratio


def report(json_path=None):
    print(banner("A8 (ablation): multicore scaling — procs (shared-memory "
                 "processes) vs threads"))
    cores = os.cpu_count() or 1
    rows, ratio = sweep(opts=_full_opts())
    mb = rows[0]["wire_bytes"] / 2 ** 20
    print(f"cyclic {M}x{N} (block-cyclic interleave, {BLOCK} el blocks), "
          f"{mb:.0f} MiB/snapshot, {STEPS} steps, {cores} core(s)\n")
    print(fmt_table(
        ["backend", "ms/step", "GB/s", "slot allocs", "ring full",
         "pool allocs", "direct dlv"],
        [[r["backend"], f"{r['step_ms']:.1f}", f"{r['gbps']:.3f}",
          r["slot_allocs"], r["ring_full"], r["pool_allocs"], r["direct"]]
         for r in rows]))

    enforced = cores >= MIN_CORES
    passed = (rows[1]["slot_allocs"] == 0 and rows[1]["pool_allocs"] == 0
              and (not enforced or ratio >= RATIO_FLOOR))
    print(f"\nprocs / threads aggregate throughput: {ratio:.2f}x "
          f"(floor {RATIO_FLOOR}x on >= {MIN_CORES} cores: "
          f"{'ENFORCED' if enforced else f'not enforced, {cores} core(s)'}); "
          f"{rows[1]['slot_allocs']} steady-state slot allocations "
          f"(floor: 0).")

    payload = {
        "kind": "blockcyclic", "block": BLOCK, "m": M, "n": N,
        "extent": EXTENT, "payload_mb": mb, "steps": STEPS, "cores": cores,
        "rows": [{k: v for k, v in r.items() if k not in ("parts",)}
                 for r in rows],
        "ratio": ratio, "ratio_floor": RATIO_FLOOR, "min_cores": MIN_CORES,
        "ratio_enforced": enforced, "passed": passed,
    }
    if json_path:
        with open(json_path, "w") as fh:
            json.dump(payload, fh, indent=2)
        print(f"\nwrote {json_path}")
    return payload


def smoke():
    """CI gate: small extent, both backends.  Byte-identity against the
    ground truth and the zero-allocation counters are exact and
    deterministic; the throughput ratio is only enforced on hosts with
    enough cores for the comparison to be meaningful."""
    with open(BASELINE_PATH) as fh:
        base = json.load(fh)["multicore_scaling"]
    rows, ratio = sweep(SMOKE_EXTENT, steps=3, collect=True)
    g = _global(SMOKE_EXTENT)
    for r in rows:
        got = DistributedArray.assemble([p for p in r["parts"] if p is not None])
        if not np.array_equal(got, g):
            raise SystemExit(f"{r['backend']}: reassembled snapshot is not "
                             f"byte-identical to the ground truth")
        if r["pool_allocs"] > base["pool_allocs_per_step"]:
            raise SystemExit(
                f"{r['backend']}: {r['pool_allocs']} pack-pool allocations "
                f"in steady state, baseline {base['pool_allocs_per_step']}")
    procs = rows[1]
    if procs["slot_allocs"] > base["slot_allocs_per_step"]:
        raise SystemExit(
            f"procs: {procs['slot_allocs']} slot-pool allocations in steady "
            f"state, baseline {base['slot_allocs_per_step']}")
    if procs["direct"] <= 0:
        raise SystemExit("procs: no direct deliveries — preposted receives "
                         "are not landing in destination memory")
    cores = os.cpu_count() or 1
    if cores >= base["min_cores"] and ratio < base["ratio_floor"]:
        raise SystemExit(f"throughput regression: procs/threads {ratio:.2f}x "
                         f"< floor {base['ratio_floor']}x on {cores} cores")
    print(f"bench_multicore_scaling smoke: OK (identical bytes on both "
          f"backends, 0 steady-state slot allocs, ratio {ratio:.2f}x on "
          f"{cores} core(s))")


# -- pytest hooks ------------------------------------------------------------

def test_acceptance_multicore_scaling():
    rows, ratio = sweep(SMOKE_EXTENT, steps=3, collect=True)
    g = _global(SMOKE_EXTENT)
    for r in rows:
        np.testing.assert_array_equal(
            DistributedArray.assemble([p for p in r["parts"] if p is not None]), g)
        assert r["pool_allocs"] == 0
    assert rows[1]["slot_allocs"] == 0
    assert rows[1]["direct"] > 0
    if (os.cpu_count() or 1) >= MIN_CORES:
        assert ratio >= RATIO_FLOOR


if __name__ == "__main__":
    if "--smoke" in sys.argv:
        smoke()
    else:
        path = None
        if "--json" in sys.argv:
            path = sys.argv[sys.argv.index("--json") + 1]
        report(json_path=path)
