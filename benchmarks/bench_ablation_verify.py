"""Ablation A2: the cost of verifying simple-argument consistency.

Paper §2.4: "some frameworks may not actively enforce this policy
because checking that the actual values match might incur in a
performance penalty."  This ablation quantifies the penalty: collective
PRMI calls with and without ``verify_simple``, over caller counts and
argument sizes.

It also carries the race-sanitizer analogue (:func:`tsan_guard`): with
``REPRO_TSAN`` off the slot-ring hot path must do *zero* sanitizer
work — the guard is one global load per verb — proven by exact counter
deltas, with the per-op wall cost of the enabled sanitizer alongside
for scale (``tsan_guard`` section of ``BENCH_schedule.json``).
"""

import time

import numpy as np
import pytest

from _common import banner, fmt_table
from repro.cca.sidl import arg, method, port
from repro.prmi import CalleeEndpoint, CallerEndpoint
from repro.simmpi import NameService, run_coupled
from repro.simmpi import sanitize
from repro.simmpi.shm import SegmentPool
from repro.util.counters import RACE_STATS

PORT = port("P", method("take", arg("blob")))
CALLS = 10


class Impl:
    def take(self, blob):
        return 0


def run_calls(m, blob_elems, verify):
    ns = NameService()
    blob = np.ones(blob_elems)

    def caller(comm):
        inter = ns.connect("v", comm)
        ep = CallerEndpoint(comm, inter, PORT, verify_simple=verify)
        import time
        t0 = time.perf_counter()
        for _ in range(CALLS):
            ep.invoke("take", blob=blob)
        return time.perf_counter() - t0

    def callee(comm):
        inter = ns.accept("v", comm)
        ep = CalleeEndpoint(comm, inter, PORT, Impl())
        for _ in range(CALLS):
            ep.serve_one()
        return True

    out = run_coupled([("callee", 1, callee, ()), ("caller", m, caller, ())])
    return max(out["caller"])


def tsan_guard(rounds=20_000):
    """Prove the ``REPRO_TSAN`` hooks cost nothing when disabled: a
    slot-ring acquire/release hot loop must record *zero* sanitizer
    work (exact counter total), with the enabled sanitizer's per-op
    cost measured alongside for scale."""

    def loop(pool, n):
        t0 = time.perf_counter()
        for _ in range(n):
            s = pool.acquire(0)
            pool.release(s)
        return time.perf_counter() - t0

    was = sanitize.enabled()
    try:
        # --- disabled (the default): one global load per verb ----------
        sanitize.set_tsan(False)
        RACE_STATS.reset()
        pool = SegmentPool(1, slot_bytes=256, slots_per_endpoint=2)
        try:
            loop(pool, rounds // 10)            # warm the ring
            t_off = loop(pool, rounds)
        finally:
            pool.close()
            pool.unlink()
        disabled_work = sum(RACE_STATS.snapshot().values())

        # --- enabled: vector clocks + shadow plane per verb ------------
        sanitize.set_tsan(True)
        pool = SegmentPool(1, slot_bytes=256, slots_per_endpoint=2)
        try:
            loop(pool, rounds // 10)
            RACE_STATS.reset()
            sanitize.clear_reports()
            t_on = loop(pool, rounds)
        finally:
            pool.close()
            pool.unlink()
        snap = RACE_STATS.snapshot()
    finally:
        sanitize.set_tsan(was)
        sanitize.clear_reports()
        RACE_STATS.reset()

    ops = 2 * rounds                            # acquire + release
    return {
        "rounds": rounds,
        "disabled_sanitizer_work_total": disabled_work,
        "disabled_ns_per_op": t_off / ops * 1e9,
        "enabled_ns_per_op": t_on / ops * 1e9,
        "enabled_sync_ops": snap.get("sync_ops", 0),
        "enabled_reports": snap.get("reports", 0),
        "passed": (disabled_work == 0 and snap.get("sync_ops", 0) > 0
                   and snap.get("reports", 0) == 0),
    }


def report():
    print(banner("A2 (ablation): simple-argument verification cost "
                 f"({CALLS} calls)"))
    rows = []
    for m in (2, 4, 8):
        for elems in (8, 8192):
            t_off = run_calls(m, elems, verify=False)
            t_on = run_calls(m, elems, verify=True)
            rows.append([m, f"{elems * 8 // 1024 or '<1'} KiB",
                         f"{t_off / CALLS * 1e3:.2f}",
                         f"{t_on / CALLS * 1e3:.2f}",
                         f"{(t_on - t_off) / CALLS * 1e3:+.2f}"])
    print(fmt_table(["callers", "arg size", "unchecked ms/call",
                     "verified ms/call", "penalty"], rows))
    print("\nVerification allgathers and compares the simple args across"
          "\nall callers on every invocation — the penalty grows with both"
          "\ncaller count and argument size, which is exactly why the CCA"
          "\nleaves enforcement optional.")

    guard = tsan_guard()
    print(f"\nRace-sanitizer guard ({guard['rounds']} slot rounds): "
          f"disabled sanitizer work {guard['disabled_sanitizer_work_total']}"
          f" (floor: 0) at {guard['disabled_ns_per_op']:.0f} ns/op; "
          f"enabled, {guard['enabled_sync_ops']} sync ops and "
          f"{guard['enabled_reports']} reports (floor: 0) at "
          f"{guard['enabled_ns_per_op']:.0f} ns/op.")


@pytest.mark.parametrize("verify", [False, True], ids=["off", "on"])
def test_verification_cost(benchmark, verify):
    benchmark.pedantic(lambda: run_calls(4, 8192, verify),
                       rounds=3, iterations=1)


if __name__ == "__main__":
    report()
