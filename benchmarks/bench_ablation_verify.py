"""Ablation A2: the cost of verifying simple-argument consistency.

Paper §2.4: "some frameworks may not actively enforce this policy
because checking that the actual values match might incur in a
performance penalty."  This ablation quantifies the penalty: collective
PRMI calls with and without ``verify_simple``, over caller counts and
argument sizes.
"""

import numpy as np
import pytest

from _common import banner, fmt_table
from repro.cca.sidl import arg, method, port
from repro.prmi import CalleeEndpoint, CallerEndpoint
from repro.simmpi import NameService, run_coupled

PORT = port("P", method("take", arg("blob")))
CALLS = 10


class Impl:
    def take(self, blob):
        return 0


def run_calls(m, blob_elems, verify):
    ns = NameService()
    blob = np.ones(blob_elems)

    def caller(comm):
        inter = ns.connect("v", comm)
        ep = CallerEndpoint(comm, inter, PORT, verify_simple=verify)
        import time
        t0 = time.perf_counter()
        for _ in range(CALLS):
            ep.invoke("take", blob=blob)
        return time.perf_counter() - t0

    def callee(comm):
        inter = ns.accept("v", comm)
        ep = CalleeEndpoint(comm, inter, PORT, Impl())
        for _ in range(CALLS):
            ep.serve_one()
        return True

    out = run_coupled([("callee", 1, callee, ()), ("caller", m, caller, ())])
    return max(out["caller"])


def report():
    print(banner("A2 (ablation): simple-argument verification cost "
                 f"({CALLS} calls)"))
    rows = []
    for m in (2, 4, 8):
        for elems in (8, 8192):
            t_off = run_calls(m, elems, verify=False)
            t_on = run_calls(m, elems, verify=True)
            rows.append([m, f"{elems * 8 // 1024 or '<1'} KiB",
                         f"{t_off / CALLS * 1e3:.2f}",
                         f"{t_on / CALLS * 1e3:.2f}",
                         f"{(t_on - t_off) / CALLS * 1e3:+.2f}"])
    print(fmt_table(["callers", "arg size", "unchecked ms/call",
                     "verified ms/call", "penalty"], rows))
    print("\nVerification allgathers and compares the simple args across"
          "\nall callers on every invocation — the penalty grows with both"
          "\ncaller count and argument size, which is exactly why the CCA"
          "\nleaves enforcement optional.")


@pytest.mark.parametrize("verify", [False, True], ids=["off", "on"])
def test_verification_cost(benchmark, verify):
    benchmark.pedantic(lambda: run_calls(4, 8192, verify),
                       rounds=3, iterations=1)


if __name__ == "__main__":
    report()
