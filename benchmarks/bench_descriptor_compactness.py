"""E7 / §2.2.2: compact descriptors beat structureless linearization.

"Using the most compact descriptor appropriate for a given distribution
usually allows a DA package to provide better performance than is
possible for a completely general, structureless linearization, such as
the DAD's implicit distribution type."

For a column-block distribution over growing array sizes, compares the
descriptor encoding size and schedule-build time of:

* the compact block DAD (O(1) entries per axis),
* the implicit per-element DAD (O(n) entries),
* the row-major linearization (runs fragment per row).
"""

import numpy as np
import pytest

from _common import banner, fmt_table, timed
from repro.dad import CartesianTemplate, DistArrayDescriptor, Implicit
from repro.dad.axis import Block
from repro.dad.template import block_template
from repro.linearize import DenseLinearization
from repro.schedule import build_linear_schedule, build_region_schedule

SIZES = [16, 32, 64, 128]
P = 4


def make_descs(n):
    """Column-block layout of an n x n array over P ranks, three ways."""
    compact = DistArrayDescriptor(block_template((n, n), (1, P)))
    owners = np.repeat(np.arange(P), -(-n // P))[:n]
    implicit = DistArrayDescriptor(
        CartesianTemplate([Block(n, 1), Implicit(owners, nprocs=P)]))
    # implicit template: rows collapsed? Block(n,1) gives one row-group;
    # grid = (1, P) like compact, same ownership.
    return compact, implicit


def report():
    print(banner("E7 (§2.2.2): descriptor compactness vs linearization"))
    rows = []
    for n in SIZES:
        compact, implicit = make_descs(n)
        dst = DistArrayDescriptor(block_template((n, n), (P, 1)))
        t_block, s_block = timed(
            lambda: build_region_schedule(compact, dst))
        t_impl, s_impl = timed(
            lambda: build_region_schedule(implicit, dst,
                                          force_general=True))
        lin_src = DenseLinearization(compact)
        lin_dst = DenseLinearization(dst)
        t_lin, s_lin = timed(
            lambda: build_linear_schedule(lin_src, lin_dst))
        rows.append([
            f"{n}x{n}",
            compact.descriptor_entries(),
            implicit.descriptor_entries(),
            lin_src.descriptor_entries(),
            f"{t_block * 1e3:.2f}",
            f"{t_impl * 1e3:.2f}",
            f"{t_lin * 1e3:.2f}",
            s_block.message_count,
            s_lin.message_count,
        ])
    print(fmt_table(
        ["array", "DAD ents", "implicit ents", "linear ents",
         "DAD ms", "implicit ms", "linear ms", "DAD msgs", "linear msgs"],
        rows))
    print("\nThe compact DAD's descriptor stays O(1) and its schedule moves"
          "\nwhole rectangles; the structureless forms grow with the array"
          "\nand fragment the transfer into per-row runs.")


@pytest.mark.parametrize("n", [64])
def test_compact_schedule_build(benchmark, n):
    compact, _ = make_descs(n)
    dst = DistArrayDescriptor(block_template((n, n), (P, 1)))
    benchmark(lambda: build_region_schedule(compact, dst))


@pytest.mark.parametrize("n", [64])
def test_linearized_schedule_build(benchmark, n):
    compact, _ = make_descs(n)
    dst = DistArrayDescriptor(block_template((n, n), (P, 1)))
    lin_src = DenseLinearization(compact)
    lin_dst = DenseLinearization(dst)
    benchmark(lambda: build_linear_schedule(lin_src, lin_dst))


def test_entry_scaling_shape():
    """The crossover shape: compact stays flat, the others grow."""
    small_c, small_i = make_descs(SIZES[0])
    large_c, large_i = make_descs(SIZES[-1])
    assert small_c.descriptor_entries() == large_c.descriptor_entries()
    assert large_i.descriptor_entries() > small_i.descriptor_entries()
    assert (DenseLinearization(large_c).descriptor_entries()
            > DenseLinearization(small_c).descriptor_entries())


if __name__ == "__main__":
    report()
