"""E14 / §4.4: replicated block vs partitioned explicit descriptors.

"For block distributions, the data structure required to describe the
distribution is relatively small, so can be replicated on each of the
processes ...  For explicit distributions, there is a one-to-one
correspondence between the elements of the array and the number of
entries in the data descriptor, therefore, the descriptor itself is
rather large and must be partitioned across the participating
processes."

Sweeps array size and reports per-rank descriptor storage for both
classes, plus schedule-build time from each.
"""

import numpy as np
import pytest

from _common import banner, fmt_table, timed
from repro.dad import DistArrayDescriptor
from repro.dad.template import block_template
from repro.icomm import ICBlockDescriptor, ICExplicitDescriptor
from repro.schedule import build_region_schedule

SIZES = [256, 1024, 4096, 16384]
RANKS = 4


def make_pair(n):
    block = ICBlockDescriptor.from_template(block_template((n,), (RANKS,)))
    rng = np.random.default_rng(0)
    owners = rng.integers(0, RANKS, size=n)
    explicit = ICExplicitDescriptor(owners, nranks=RANKS)
    return block, explicit


def report():
    print(banner(f"E14 (§4.4): descriptor storage, {RANKS} ranks"))
    rows = []
    for n in SIZES:
        block, explicit = make_pair(n)
        dst = DistArrayDescriptor(block_template((n,), (2,)))
        t_block, _ = timed(
            lambda: build_region_schedule(block.descriptor(), dst))
        t_expl, _ = timed(
            lambda: build_region_schedule(explicit.descriptor(), dst,
                                          force_general=True))
        rows.append([
            n,
            block.per_rank_entries(0),
            max(explicit.per_rank_entries(r) for r in range(RANKS)),
            f"{t_block * 1e3:.2f}", f"{t_expl * 1e3:.2f}",
        ])
    print(fmt_table(["elements", "block entries/rank (replicated)",
                     "explicit entries/rank (partitioned)",
                     "block sched ms", "explicit sched ms"], rows))
    print("\nBlock descriptors stay O(ranks) per rank regardless of array"
          "\nsize; explicit descriptors carry ~elements/ranks entries each,"
          "\nwhich is why InterComm partitions them.")
    small_b, small_e = make_pair(SIZES[0])
    large_b, large_e = make_pair(SIZES[-1])
    assert large_b.per_rank_entries(0) == small_b.per_rank_entries(0)
    assert large_e.per_rank_entries(0) > small_e.per_rank_entries(0)


@pytest.mark.parametrize("n", [4096])
def test_block_descriptor_schedule(benchmark, n):
    block, _ = make_pair(n)
    dst = DistArrayDescriptor(block_template((n,), (2,)))
    benchmark(lambda: build_region_schedule(block.descriptor(), dst))


@pytest.mark.parametrize("n", [4096])
def test_explicit_descriptor_schedule(benchmark, n):
    _, explicit = make_pair(n)
    dst = DistArrayDescriptor(block_template((n,), (2,)))
    benchmark(lambda: build_region_schedule(explicit.descriptor(), dst,
                                            force_general=True))


if __name__ == "__main__":
    report()
