"""A4: the coupling styles of §4/§5, measured side by side.

One producer cohort (M=2) streams the same field to one consumer cohort
(N=2) for several steps, through each coupling style this repository
implements:

* the generalized M×N component's persistent channel (§4.1),
* the high-level Coupler channel (§6 simplification of the same),
* InterComm export/import under an EXACT timestamp rule (§4.4),
* XChange-style publish/subscribe (§5),
* the receiver-driven linearization protocol (§2.2.1).

All deliver identical bytes; the differences are per-step control
overhead and flexibility.  This is the cross-system synthesis the
paper's Fig. 4 gestures at, as numbers.
"""

import pytest

from _common import banner, fmt_table, timed
from repro.dad import AccessMode, DistArrayDescriptor, DistributedArray
from repro.dad.template import block_template
from repro.highlevel import Coupler
from repro.icomm import CoordinationSpec, Exporter, Importer, MatchRule, Matching
from repro.linearize import DenseLinearization, receiver_driven_transfer
from repro.mxn import ConnectionKind, MxNComponent
from repro.pubsub import Publisher, Subscriber, SubscriptionBoard
from repro.simmpi import NameService, run_coupled

SHAPE = (48, 48)
M = N = 2
STEPS = 8


def _descs():
    return (DistArrayDescriptor(block_template(SHAPE, (M, 1))),
            DistArrayDescriptor(block_template(SHAPE, (1, N))))


def _field(desc, rank, step):
    return DistributedArray.from_function(
        desc, rank, lambda i, j, s=step: 1.0 * s + 0 * i)


def _checks(out):
    frames = out["consumer"][0]
    assert len(frames) == STEPS
    total = (out["producer"][0] or {}).get("inter_msgs", 0) + \
        (out["consumer"][1] or {}).get("inter_msgs", 0)
    return frames, total


def style_mxn():
    src_desc, dst_desc = _descs()
    ns = NameService()

    def producer(comm):
        inter = ns.accept("s", comm)
        mxn = MxNComponent(comm)
        da = DistributedArray.allocate(src_desc, comm.rank)
        mxn.register("f", da, AccessMode.READ)
        conn = mxn.connect(inter, "source", "f", ConnectionKind.PERSISTENT)
        for step in range(STEPS):
            da.fill(float(step))
            conn.data_ready()
        comm.barrier()
        return comm.counters.snapshot()

    def consumer(comm):
        inter = ns.connect("s", comm)
        mxn = MxNComponent(comm)
        da = DistributedArray.allocate(dst_desc, comm.rank)
        mxn.register("f", da, AccessMode.WRITE)
        conn = mxn.connect(inter, "destination", "f",
                           ConnectionKind.PERSISTENT)
        frames = []
        for _ in range(STEPS):
            conn.data_ready()
            frames.append(float(next(iter(da.patches.values()))[0, 0]))
        comm.barrier()
        return frames if comm.rank == 0 else comm.counters.snapshot()

    return run_coupled([("producer", M, producer, ()),
                        ("consumer", N, consumer, ())])


def style_coupler():
    src_desc, dst_desc = _descs()
    ns = NameService()

    def producer(comm):
        da = DistributedArray.allocate(src_desc, comm.rank)
        chan = Coupler("f", ns).open(comm, "source", da)
        for step in range(STEPS):
            da.fill(float(step))
            chan.push()
        comm.barrier()
        return comm.counters.snapshot()

    def consumer(comm):
        chan = Coupler("f", ns).open(comm, "destination", dst_desc)
        frames = []
        for _ in range(STEPS):
            da = chan.pull()
            frames.append(float(next(iter(da.patches.values()))[0, 0]))
        comm.barrier()
        return frames if comm.rank == 0 else comm.counters.snapshot()

    return run_coupled([("producer", M, producer, ()),
                        ("consumer", N, consumer, ())])


def style_icomm():
    src_desc, dst_desc = _descs()
    fields = {"f": (src_desc, dst_desc)}
    spec = CoordinationSpec([MatchRule("f", Matching.EXACT)])
    ns = NameService()

    def producer(comm):
        inter = ns.accept("s", comm)
        exp = Exporter(comm, inter, spec, fields, total_imports=STEPS)
        for step in range(STEPS):
            exp.export("f", step, _field(src_desc, comm.rank, step))
        exp.finalize()
        comm.barrier()
        return comm.counters.snapshot()

    def consumer(comm):
        inter = ns.connect("s", comm)
        imp = Importer(comm, inter, spec, fields)
        frames = []
        for step in range(STEPS):
            da = DistributedArray.allocate(dst_desc, comm.rank)
            imp.import_("f", step, da)
            frames.append(float(next(iter(da.patches.values()))[0, 0]))
        comm.barrier()
        return frames if comm.rank == 0 else comm.counters.snapshot()

    return run_coupled([("producer", M, producer, ()),
                        ("consumer", N, consumer, ())])


def style_pubsub():
    src_desc, dst_desc = _descs()
    ns = NameService()
    board = SubscriptionBoard()

    def producer(comm):
        import time
        pub = Publisher(comm, ns, board, "f", src_desc)
        while comm.rank == 0 and not board.active("f"):
            time.sleep(0.005)
        comm.barrier()
        for step in range(STEPS):
            pub.publish(_field(src_desc, comm.rank, step))
        pub.close()
        comm.barrier()
        return comm.counters.snapshot()

    def consumer(comm):
        sub = Subscriber(comm, ns, board, "f", dst_desc)
        frames = []
        while True:
            da = sub.receive()
            if da is None:
                break
            frames.append(float(next(iter(da.patches.values()))[0, 0]))
        comm.barrier()
        return frames if comm.rank == 0 else comm.counters.snapshot()

    return run_coupled([("producer", M, producer, ()),
                        ("consumer", N, consumer, ())])


def style_receiver_driven():
    src_desc, dst_desc = _descs()
    src_lin = DenseLinearization(src_desc)
    dst_lin = DenseLinearization(dst_desc)
    ns = NameService()

    def producer(comm):
        inter = ns.accept("s", comm)
        for step in range(STEPS):
            da = _field(src_desc, comm.rank, step)
            receiver_driven_transfer(inter, "send", src_lin, da)
        comm.barrier()
        return comm.counters.snapshot()

    def consumer(comm):
        inter = ns.connect("s", comm)
        frames = []
        for _ in range(STEPS):
            da = DistributedArray.allocate(dst_desc, comm.rank)
            receiver_driven_transfer(inter, "recv", dst_lin, da)
            frames.append(float(next(iter(da.patches.values()))[0, 0]))
        comm.barrier()
        return frames if comm.rank == 0 else comm.counters.snapshot()

    return run_coupled([("producer", M, producer, ()),
                        ("consumer", N, consumer, ())])


STYLES = [
    ("MxN component (persistent)", style_mxn),
    ("high-level Coupler channel", style_coupler),
    ("InterComm EXACT timestamps", style_icomm),
    ("XChange publish/subscribe", style_pubsub),
    ("receiver-driven (no schedule)", style_receiver_driven),
]


def report():
    print(banner(f"A4: coupling styles side by side, {SHAPE} field, "
                 f"{STEPS} steps, M=N={M}"))
    rows = []
    for name, fn in STYLES:
        t, out = timed(fn)
        frames, msgs = _checks(out)
        assert frames == [float(s) for s in range(STEPS)], name
        rows.append([name, msgs, f"{t * 1e3:.0f}"])
    print(fmt_table(["style", "inter-job msgs", "ms"], rows))
    print(f"\nAll five styles delivered the identical {STEPS}-frame stream;"
          "\nschedule-based styles move only data messages, the receiver-"
          "\ndriven protocol pays request/reply control per step, and the"
          "\ntimestamp/pub-sub styles add their control planes' messages.")


@pytest.mark.parametrize("style", [s[0] for s in STYLES])
def test_style(benchmark, style):
    fn = dict(STYLES)[style]
    out = benchmark.pedantic(fn, rounds=3, iterations=1)
    frames, _ = _checks(out)
    assert frames == [float(s) for s in range(STEPS)]


if __name__ == "__main__":
    report()
