#!/usr/bin/env python
"""Run every experiment report in DESIGN.md's index and print the
paper-shaped tables.  EXPERIMENTS.md is produced from this output.

Usage:  python benchmarks/run_all.py [E1 E5 ...]
        python benchmarks/run_all.py --smoke

``--smoke`` imports every experiment module and checks it still
exposes a callable ``report`` without running anything — the CI guard
that keeps new benchmarks from rotting unimported.
"""

import importlib.util
import pathlib
import sys
import time

HERE = pathlib.Path(__file__).parent

EXPERIMENTS = [
    ("E1", "bench_fig1_mxn_problem"),
    ("E2", "bench_fig2_frameworks"),
    ("E3", "bench_fig3_paired_mxn"),
    ("E4", "bench_fig4_feature_table"),
    ("E5", "bench_fig5_sync_deadlock"),
    ("E6", "bench_schedule_reuse"),
    ("E7", "bench_descriptor_compactness"),
    ("E8", "bench_scalability_serialization"),
    ("E9", "bench_dataready_no_barrier"),
    ("E10", "bench_prmi_ghosts"),
    ("E11", "bench_oneway_overlap"),
    ("E12", "bench_converters_2n"),
    ("E13", "bench_mct_interpolation"),
    ("E14", "bench_icomm_descriptors"),
    ("E15", "bench_icomm_coordination"),
    ("E16", "bench_receiver_driven"),
    ("A1", "bench_ablation_fastpath"),
    ("A2", "bench_ablation_verify"),
    ("A3", "bench_pipeline_fusion"),
    ("A4", "bench_coupling_styles"),
    ("A5", "bench_schedule_scaling"),
    ("A6", "bench_pack_throughput"),
    ("A7", "bench_persistent_steady_state"),
    ("A8", "bench_multicore_scaling"),
    ("A9", "bench_rma_steady_state"),
    ("A10", "bench_collective_memory"),
    ("A11", "bench_prmi_serving"),
    ("A12", "bench_reconfigure"),
]


def load(module_name):
    spec = importlib.util.spec_from_file_location(
        module_name, HERE / f"{module_name}.py")
    module = importlib.util.module_from_spec(spec)
    sys.modules[module_name] = module
    spec.loader.exec_module(module)
    return module


def smoke():
    sys.path.insert(0, str(HERE))
    t0 = time.perf_counter()
    for exp_id, module_name in EXPERIMENTS:
        module = load(module_name)
        if not callable(getattr(module, "report", None)):
            print(f"{exp_id}: {module_name} has no callable report()")
            return 1
        print(f"{exp_id}: {module_name} imports, report() present")
    print(f"\n{len(EXPERIMENTS)} experiment modules import cleanly in "
          f"{time.perf_counter() - t0:.1f} s")
    return 0


def main():
    if "--smoke" in sys.argv[1:]:
        sys.exit(smoke())
    sys.path.insert(0, str(HERE))
    selected = set(sys.argv[1:])
    t0 = time.perf_counter()
    for exp_id, module_name in EXPERIMENTS:
        if selected and exp_id not in selected:
            continue
        module = load(module_name)
        module.report()
    print(f"\nall experiments completed in "
          f"{time.perf_counter() - t0:.1f} s")


if __name__ == "__main__":
    main()
