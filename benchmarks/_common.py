"""Shared helpers for the benchmark/experiment harness.

Every ``bench_*.py`` file regenerates one experiment from DESIGN.md's
index.  Each file exposes:

* pytest-benchmark test functions (timing of the hot path), and
* a ``report()`` function printing the paper-shaped rows — run either
  via ``python benchmarks/bench_X.py`` or all at once via
  ``python benchmarks/run_all.py`` (which is how EXPERIMENTS.md is
  produced).

Wall-clock on a thread-simulated runtime is indicative only; the
deterministic counters (messages, bytes, barriers, schedule entries)
carry the comparisons' shape.
"""

from __future__ import annotations

import time
from typing import Callable

import numpy as np

from repro.dad import DistArrayDescriptor, DistributedArray
from repro.dad.template import block_template
from repro.schedule import build_region_schedule, execute_intra
from repro.simmpi import run_spmd


def make_block_pair(shape, src_grid, dst_grid, dtype=np.float64):
    src = DistArrayDescriptor(block_template(shape, src_grid), dtype)
    dst = DistArrayDescriptor(block_template(shape, dst_grid), dtype)
    return src, dst


def redistribute_once(src_desc, dst_desc, global_arr, *, schedule=None):
    """One in-job redistribution; returns (assembled, counters)."""
    sched = schedule if schedule is not None else \
        build_region_schedule(src_desc, dst_desc)
    n = max(src_desc.nranks, dst_desc.nranks)

    def main(comm):
        src = (DistributedArray.from_global(src_desc, comm.rank, global_arr)
               if comm.rank < src_desc.nranks else None)
        dst = (DistributedArray.allocate(dst_desc, comm.rank)
               if comm.rank < dst_desc.nranks else None)
        execute_intra(sched, comm, src_array=src, dst_array=dst,
                      src_ranks=range(src_desc.nranks),
                      dst_ranks=range(dst_desc.nranks))
        comm.barrier()
        return dst, comm.counters.snapshot()

    results = run_spmd(n, main)
    parts = [r[0] for r in results if r[0] is not None]
    return DistributedArray.assemble(parts), results[0][1]


def timed(fn: Callable[[], object]) -> tuple[float, object]:
    """(elapsed_seconds, result) of one call."""
    t0 = time.perf_counter()
    out = fn()
    return time.perf_counter() - t0, out


def fmt_table(headers: list[str], rows: list[list]) -> str:
    """Monospace table for experiment reports."""
    cols = [headers] + [[str(c) for c in row] for row in rows]
    widths = [max(len(r[i]) for r in cols) for i in range(len(headers))]
    def line(cells):
        return "  ".join(c.rjust(w) for c, w in zip(cells, widths))
    sep = "  ".join("-" * w for w in widths)
    return "\n".join([line(headers), sep] + [line(r) for r in cols[1:]])


def banner(title: str) -> str:
    return f"\n=== {title} ===\n"
