"""E13 / §4.5: interpolation as multi-field, cache-friendly sparse matvec.

"... communication schedulers used in performing interpolation as
parallel sparse matrix-vector multiplication in a multi-field,
cache-friendly fashion."

Sweeps the number of coupled fields and compares the fused path (one
halo message per peer, one SpMM for all fields) against the per-field
path (one message and one SpMV per field).
"""

import numpy as np
import pytest

from _common import banner, fmt_table, timed
from repro.mct import (
    AttrVect,
    GlobalSegMap,
    InterpolationScheduler,
    SparseMatrix,
)
from repro.simmpi import run_spmd

N_SRC, N_DST = 4096, 6144
RANKS = 3
FIELD_SWEEP = [1, 4, 16, 32]
REPEATS = 5


def interp_matrix(n_src, n_dst):
    rows, cols, vals = [], [], []
    xs = np.linspace(0.0, 1.0, n_src)
    xd = np.linspace(0.0, 1.0, n_dst)
    for i, x in enumerate(xd):
        j = min(int(x * (n_src - 1)), n_src - 2)
        t = (x - xs[j]) / (xs[j + 1] - xs[j])
        rows += [i, i]
        cols += [j, j + 1]
        vals += [1.0 - t, t]
    return np.array(rows), np.array(cols), np.array(vals)


ROWS, COLS, VALS = interp_matrix(N_SRC, N_DST)


def run_interp(nfields, fused, repeats=REPEATS):
    fields = [f"f{k}" for k in range(nfields)]

    def main(comm):
        src_gsmap = GlobalSegMap.block(N_SRC, comm.size)
        dst_gsmap = GlobalSegMap.block(N_DST, comm.size)
        pe = comm.rank
        mine = np.isin(ROWS, dst_gsmap.global_indices(pe))
        matrix = SparseMatrix(N_DST, N_SRC, ROWS[mine], COLS[mine],
                              VALS[mine], dst_gsmap, pe)
        sched = InterpolationScheduler(comm, matrix, src_gsmap)
        gidx = src_gsmap.global_indices(pe)
        x_av = AttrVect(fields, len(gidx))
        for k, name in enumerate(fields):
            x_av[name] = np.sin((k + 1) * gidx / N_SRC)
        y_av = AttrVect(fields, matrix.local.shape[0])
        for _ in range(repeats):
            sched.apply(comm, x_av, y_av, fused=fused)
        comm.barrier()
        return float(y_av.data.sum()), comm.counters.snapshot()

    results = run_spmd(RANKS, main)
    checksum = sum(r[0] for r in results)
    msgs = results[0][1].get("msgs", 0)
    return checksum, msgs


def report():
    print(banner(f"E13 (§4.5): multi-field interpolation, {N_SRC}->{N_DST} "
                 f"points on {RANKS} ranks, {REPEATS} applications"))
    rows = []
    for nf in FIELD_SWEEP:
        t_fused, (sum_f, msgs_f) = timed(lambda nf=nf: run_interp(nf, True))
        t_field, (sum_p, msgs_p) = timed(lambda nf=nf: run_interp(nf, False))
        assert abs(sum_f - sum_p) < 1e-9
        rows.append([nf, msgs_f, msgs_p,
                     f"{t_fused * 1e3:.0f}", f"{t_field * 1e3:.0f}",
                     f"{t_field / t_fused:.1f}x"])
    print(fmt_table(["fields", "fused msgs", "per-field msgs",
                     "fused ms", "per-field ms", "speedup"], rows))
    print("\nFused halo + SpMM keeps the message count flat as fields grow;"
          "\nthe per-field path multiplies both messages and matvec passes.")


@pytest.mark.parametrize("fused", [True, False], ids=["fused", "per-field"])
def test_interpolation_8_fields(benchmark, fused):
    benchmark.pedantic(lambda: run_interp(8, fused, repeats=2),
                       rounds=3, iterations=1)


def test_message_scaling_shape():
    _, msgs_fused_1 = run_interp(1, True, repeats=1)
    _, msgs_fused_8 = run_interp(8, True, repeats=1)
    _, msgs_field_8 = run_interp(8, False, repeats=1)
    # fused message count independent of field count; per-field scales
    assert msgs_fused_8 == msgs_fused_1
    assert msgs_field_8 > msgs_fused_8


if __name__ == "__main__":
    report()
