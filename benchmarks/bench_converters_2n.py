"""E12 / §2.2.2: 2N converters via the DAD hub instead of N².

"Such a descriptor can be used to facilitate the conversion between DA
representations, allowing the use of 2N distinct converters to/from the
DAD's intermediate representation rather than N² converters directly
coupling individual DA representations or packages."

Models N distributed-array packages; counts the converters each
strategy must implement and times an all-pairs conversion workload.
"""

import pytest

from _common import banner, fmt_table, timed
from repro.dad.converters import ConverterRegistry, DARepresentation
from repro.dad import DistArrayDescriptor
from repro.dad.template import block_template

N_SWEEP = [2, 4, 8, 16]
TEMPLATE = block_template((32, 32), (2, 2))


def build_registries(n):
    """Direct pairwise registry and DAD-hub registry for n packages."""
    packages = [f"pkg{i}" for i in range(n)]
    direct = ConverterRegistry()
    for a in packages:
        for b in packages:
            if a != b:
                direct.register_direct(a, b, lambda payload: payload)
    hub = ConverterRegistry()
    for name in packages:
        hub.register_package(
            name,
            to_dad=lambda payload: DistArrayDescriptor(TEMPLATE),
            from_dad=lambda desc: desc)
    return packages, direct, hub


def all_pairs_workload(packages, registry, via_hub):
    convert = registry.convert_via_dad if via_hub else registry.convert_direct
    for a in packages:
        rep = DARepresentation(a, payload=None)
        for b in packages:
            if a != b:
                convert(rep, b)
    return registry.hops_executed


def report():
    print(banner("E12 (§2.2.2): 2N hub converters vs N² direct"))
    rows = []
    for n in N_SWEEP:
        packages, direct, hub = build_registries(n)
        t_direct, hops_d = timed(
            lambda: all_pairs_workload(packages, direct, via_hub=False))
        t_hub, hops_h = timed(
            lambda: all_pairs_workload(packages, hub, via_hub=True))
        rows.append([
            n,
            direct.direct_converter_count,   # N(N-1) to implement
            hub.hub_converter_count,         # 2N to implement
            hops_d, hops_h,
            f"{t_direct * 1e3:.2f}", f"{t_hub * 1e3:.2f}",
        ])
    print(fmt_table(
        ["N pkgs", "direct converters", "hub converters",
         "direct hops", "hub hops", "direct ms", "hub ms"], rows))
    print("\nThe hub needs 2N converters (engineering cost) at the price of"
          "\n2 hops per conversion instead of 1 (runtime cost) — the"
          "\npaper's 'highly pragmatic' trade.")
    # Shape assertion: implementation burden crosses over immediately.
    for n, direct_cnt, hub_cnt, *_ in rows:
        if n > 3:
            assert hub_cnt < direct_cnt


@pytest.mark.parametrize("n", [8])
def test_hub_conversion_workload(benchmark, n):
    packages, _, hub = build_registries(n)
    benchmark(lambda: all_pairs_workload(packages, hub, via_hub=True))


@pytest.mark.parametrize("n", [8])
def test_direct_conversion_workload(benchmark, n):
    packages, direct, _ = build_registries(n)
    benchmark(lambda: all_pairs_workload(packages, direct, via_hub=False))


if __name__ == "__main__":
    report()
