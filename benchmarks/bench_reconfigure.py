"""A12: elastic re-decomposition — delta resize vs full rebuild.

A component cohort that resizes (m → m′ ranks) with only the static
machinery pays the full M×N price every time: rebuild the region
schedule, recompile every index plan, ship every byte.  The delta
pipeline (:func:`repro.schedule.delta.compile_delta` +
:func:`repro.highlevel.reconfigure`) diffs the two decompositions,
ships only changed-owner bytes, repacks kept bytes locally, and
warm-starts all compiled artifacts out of the shared
:class:`~repro.schedule.builder.ScheduleCache` — so a *repeated*
resize (the elastic steady state: shrink on idle, grow on load) is a
pure replay.

Measured per case, on the threads backend under one SPMD cohort:

* **full rebuild** — per rep: build the old→new schedule from scratch,
  allocate the destination, transfer *all* bytes (plans recompiled
  each rep, like every static coupling would after a cohort change);
* **delta resize** — per rep: one warm :func:`reconfigure` call
  (cached schedule, memoized delta, seeded plans, delta bytes on the
  wire, vectorized local repack), measured over A→B/B→A cycles so
  every timed resize is live.

The gates (CI ``--smoke`` re-measures at reduced extent against the
committed baseline in BENCH_schedule.json):

* warm resize wall time >= ``wall_ratio_floor`` (3x) below the full
  rebuild on the modest-resize acceptance rows (cyclic and
  block-cyclic 8 -> 10),
* migrated bytes *strictly* fewer than the full rebuild's wire bytes
  on every case (minimality is proved exactly in
  ``python -m repro.verify schedule``; here it is the measured
  counter),
* ``pairs_reused`` > 0 under ``REDIST_STATS`` — the resize-back leg
  of each cycle must warm-start its migration plans from the
  forward leg's compiled artifacts.

``python benchmarks/bench_reconfigure.py [--json PATH] [--smoke]``
"""

import json
import pathlib
import sys
import time

import numpy as np

from _common import banner, fmt_table
from repro.dad import (
    BlockCyclic,
    CartesianTemplate,
    Cyclic,
    DistArrayDescriptor,
    DistributedArray,
    GeneralizedBlock,
)
from repro.dad.template import block_template
from repro.highlevel import reconfigure
from repro.schedule import ScheduleCache, build_region_schedule
from repro.schedule.executor import execute_intra
from repro.simmpi import run_spmd
from repro.util.counters import REDIST_STATS

REPS = 3

#: name -> (old template, new template) factories over one extent.
#: The acceptance rows are the issue's modest resizes: 8 -> 10 ranks,
#: cyclic and block-cyclic.  The generalized-block tail split is the
#: delta's best case (7 identity ranks); plain block its worst
#: (contiguous regions make even the full rebuild cheap to compile).
KINDS = {
    "cyclic": (lambda e: CartesianTemplate([Cyclic(e, 8)]),
               lambda e: CartesianTemplate([Cyclic(e, 10)])),
    "blockcyclic4": (lambda e: CartesianTemplate([BlockCyclic(e, 8, 4)]),
                     lambda e: CartesianTemplate([BlockCyclic(e, 10, 4)])),
    "gb-tailsplit": (
        lambda e: CartesianTemplate([GeneralizedBlock(e, [e // 8] * 8)]),
        lambda e: CartesianTemplate([GeneralizedBlock(
            e, [e // 8] * 7 + [e // 8 - 2 * (e // 24),
                               e // 24, e // 24])])),
    "block": (lambda e: block_template((e,), (8,)),
              lambda e: block_template((e,), (10,))),
}

#: (kind, extent, gated) sweep rows.  Cyclic/block-cyclic extents are
#: sized so the full rebuild's compile cost is what a real fine-grained
#: resize pays (one region per element / per 4-block); the gated 3x
#: must hold there and at the reduced --smoke extents below.
SWEEP = [
    ("cyclic", 24_000, True),
    ("blockcyclic4", 48_000, True),
    ("gb-tailsplit", 48_000, False),
    ("block", 48_000, False),
]

SMOKE_EXTENTS = {"cyclic": 8_000, "blockcyclic4": 16_000}
WALL_RATIO_FLOOR = 3.0

BASELINE_PATH = pathlib.Path(__file__).resolve().parent.parent / \
    "BENCH_schedule.json"


def _descs(kind, extent):
    make_old, make_new = KINDS[kind]
    return (DistArrayDescriptor(make_old(extent)),
            DistArrayDescriptor(make_new(extent)))


def _measure(kind, extent, reps=REPS):
    """Wall time per resize, both ways, plus the byte/reuse counters.

    One SPMD cohort runs both phases so thread-spawn cost cancels.
    The full-rebuild phase is deliberately cold (fresh schedule every
    rep, rank 0 builds and broadcasts, per-rank plans recompiled on
    execute); the delta phase is the warm steady state, timed over
    A→B/B→A cycles on the live array after one untimed warm-up cycle
    populates the cache.  Walls are the cohort maximum, bracketed by
    barriers.
    """
    old_desc, new_desc = _descs(kind, extent)
    old_n, new_n = old_desc.nranks, new_desc.nranks
    n = max(old_n, new_n)
    g = np.arange(float(extent)).reshape(old_desc.shape)
    cache = ScheduleCache()

    def main(comm):
        me = comm.rank
        src = (DistributedArray.from_global(old_desc, me, g)
               if me < old_n else None)

        def full_once():
            sched = comm.bcast(build_region_schedule(old_desc, new_desc)
                               if me == 0 else None, root=0)
            dst = (DistributedArray.allocate(new_desc, me)
                   if me < new_n else None)
            execute_intra(sched, comm, src_array=src, dst_array=dst,
                          src_ranks=range(old_n), dst_ranks=range(new_n),
                          tag=730, planner="p2p")
            comm.barrier()
            return dst

        dst = full_once()  # untimed: transport + allocator warm-up
        comm.barrier()
        t0 = time.perf_counter()
        for _ in range(reps):
            dst = full_once()
        full_s = (time.perf_counter() - t0) / reps

        da = src
        da = reconfigure(comm, da, new_desc, cache=cache, planner="p2p")
        da = reconfigure(comm, da, old_desc, cache=cache, planner="p2p")
        comm.barrier()
        t0 = time.perf_counter()
        for _ in range(reps):
            da = reconfigure(comm, da, new_desc, cache=cache, planner="p2p")
            da = reconfigure(comm, da, old_desc, cache=cache, planner="p2p")
        delta_s = (time.perf_counter() - t0) / (2 * reps)
        # Finish on the new decomposition so assembly checks the
        # direction the gates describe.
        da = reconfigure(comm, da, new_desc, cache=cache, planner="p2p")
        return full_s, delta_s, dst, da

    REDIST_STATS.reset()
    results = run_spmd(n, main, backend="threads")
    stats = REDIST_STATS.snapshot()

    for arrays in (2, 3):  # both phases must have moved the data right
        parts = [r[arrays] for r in results if r[arrays] is not None]
        np.testing.assert_array_equal(DistributedArray.assemble(parts), g)

    full_s = max(r[0] for r in results)
    delta_s = max(r[1] for r in results)
    itemsize = old_desc.dtype.itemsize
    resizes = stats.get("resizes", 0) or 1
    migrated = stats.get("migrated_bytes", 0) // resizes
    kept = stats.get("kept_bytes", 0) // resizes
    full_wire = extent * itemsize
    return {
        "kind": kind, "extent": extent, "old_nranks": old_n,
        "new_nranks": new_n, "reps": reps,
        "full_ms": full_s * 1e3, "delta_ms": delta_s * 1e3,
        "wall_ratio": full_s / delta_s,
        "full_wire_bytes": full_wire,
        "migrated_bytes": migrated, "kept_bytes": kept,
        "fewer_bytes": migrated < full_wire,
        "identity_ranks": stats.get("identity_ranks", 0) // resizes,
        "pairs_reused": stats.get("pairs_reused", 0),
        "pairs_recompiled": stats.get("pairs_recompiled", 0),
    }


def _gate(row, floor=WALL_RATIO_FLOOR):
    """The three acceptance properties on one measured row."""
    failures = []
    if row["wall_ratio"] < floor:
        failures.append(
            f"{row['kind']}: warm resize only {row['wall_ratio']:.2f}x "
            f"faster than the full rebuild (floor {floor}x)")
    if not row["fewer_bytes"]:
        failures.append(
            f"{row['kind']}: migrated {row['migrated_bytes']} B not "
            f"strictly below the full rebuild's {row['full_wire_bytes']} B")
    if row["pairs_reused"] <= 0:
        failures.append(
            f"{row['kind']}: no pair plans warm-started across the "
            f"resize cycle (pairs_reused == 0)")
    return failures


def sweep_rows(extents=None):
    rows = []
    for kind, extent, gated in SWEEP:
        if extents is not None:
            if kind not in extents:
                continue
            extent = extents[kind]
        rows.append({**_measure(kind, extent), "gated": gated})
    return rows


def report(json_path=None):
    print(banner("A12: elastic re-decomposition — delta resize vs "
                 "full rebuild"))
    rows = sweep_rows()
    print(fmt_table(
        ["kind", "m->m'", "extent", "full ms", "delta ms", "speedup",
         "wire KiB", "migrated KiB", "ident", "reused"],
        [[r["kind"], f"{r['old_nranks']}->{r['new_nranks']}", r["extent"],
          f"{r['full_ms']:.2f}", f"{r['delta_ms']:.2f}",
          f"{r['wall_ratio']:.1f}x",
          f"{r['full_wire_bytes'] / 1024:.0f}",
          f"{r['migrated_bytes'] / 1024:.0f}",
          r["identity_ranks"], r["pairs_reused"]]
         for r in rows]))

    failures = [f for r in rows if r["gated"]
                for f in _gate(r)]
    gated = [r for r in rows if r["gated"]]
    print(f"\nAcceptance (modest 8->10 resizes, cyclic + block-cyclic): "
          f"warm resize "
          + ", ".join(f"{r['wall_ratio']:.1f}x" for r in gated)
          + f" below the full rebuild (floor {WALL_RATIO_FLOOR}x); "
          f"every case migrates strictly fewer bytes than the "
          f"{'full wire volume' if all(r['fewer_bytes'] for r in rows) else 'FULL VOLUME — REGRESSION'}; "
          f"pairs_reused "
          + ", ".join(str(r["pairs_reused"]) for r in rows)
          + f"  [{'OK' if not failures else '; '.join(failures)}]")

    payload = {
        "reps": REPS, "rows": rows,
        "wall_ratio_floor": WALL_RATIO_FLOOR,
        "smoke_extents": SMOKE_EXTENTS,
        "passed": not failures,
    }
    if json_path:
        with open(json_path, "w") as fh:
            json.dump(payload, fh, indent=2)
        print(f"\nwrote {json_path}")
    return payload


def smoke():
    """CI gate: re-measure the two acceptance rows at reduced extent
    and hold them to the committed floor.  The byte and reuse counters
    are deterministic integers; only the wall ratio is a measurement,
    and the compile-versus-replay gap it gates is far wider than
    scheduler noise at these extents."""
    with open(BASELINE_PATH) as fh:
        baseline = json.load(fh)["reconfigure"]
    floor = baseline["wall_ratio_floor"]
    for kind, extent in sorted(baseline["smoke_extents"].items()):
        row = _measure(kind, extent)
        failures = _gate(row, floor)
        if failures:
            raise SystemExit("resize-latency regression: "
                             + "; ".join(failures))
        print(f"bench_reconfigure smoke: {kind} OK "
              f"({row['wall_ratio']:.1f}x >= {floor}x, "
              f"{row['migrated_bytes']} B migrated of "
              f"{row['full_wire_bytes']} B, "
              f"{row['pairs_reused']} pairs reused)")


# --- pytest hooks ------------------------------------------------------------

def test_delta_resize_beats_full_rebuild():
    # Tiny extent for test latency: the byte/reuse gates are exact at
    # any scale; the 3x wall gate runs at smoke sizing in CI.
    row = _measure("cyclic", 2_000, reps=1)
    assert row["fewer_bytes"]
    assert row["pairs_reused"] > 0
    assert row["wall_ratio"] > 1.0


def test_identity_ranks_skip_the_wire():
    row = _measure("gb-tailsplit", 4_800, reps=1)
    assert row["identity_ranks"] == 7
    assert row["migrated_bytes"] < row["full_wire_bytes"] // 4


if __name__ == "__main__":
    if "--smoke" in sys.argv:
        smoke()
    else:
        path = None
        if "--json" in sys.argv:
            path = sys.argv[sys.argv.index("--json") + 1]
        report(json_path=path)
