"""E10 / §4.2: collective PRMI with ghost invocations for M ≠ N.

"Collective calls are capable of supporting differing numbers of
processes on the uses and provides side of the call by creating ghost
invocations and/or return values."

Sweeps the callee count N around a fixed caller count M and reports the
ghost bookkeeping plus per-call latency; also compares collective vs.
independent invocation cost at M = N.
"""


from _common import banner, fmt_table, timed
from repro.cca.sidl import arg, method, port
from repro.prmi import CalleeEndpoint, CallerEndpoint
from repro.simmpi import NameService, run_coupled

PORT = port("P",
            method("bump", arg("x")),
            method("poke", arg("x"), invocation="independent"))
M = 4
N_SWEEP = [1, 2, 4, 6, 8]
CALLS = 10


class Impl:
    def bump(self, x):
        return x + 1

    def poke(self, x):
        return x + 1


def run_collective(m, n, calls=CALLS):
    ns = NameService()

    def caller(comm):
        inter = ns.connect("p", comm)
        ep = CallerEndpoint(comm, inter, PORT)
        for k in range(calls):
            assert ep.invoke("bump", x=k) == k + 1
        return ep.stats

    def callee(comm):
        inter = ns.accept("p", comm)
        ep = CalleeEndpoint(comm, inter, PORT, Impl())
        for _ in range(calls):
            ep.serve_one()
        return ep.stats

    out = run_coupled([("callee", n, callee, ()), ("caller", m, caller, ())])
    ghosts_out = sum(s.ghost_invocations for s in out["caller"])
    merged = sum(s.merged_invocations for s in out["callee"])
    ghost_returns = sum(s.ghost_returns for s in out["callee"])
    return ghosts_out, merged, ghost_returns


def run_independent(m, n, calls=CALLS):
    ns = NameService()

    def caller(comm):
        inter = ns.connect("pi", comm)
        ep = CallerEndpoint(comm, inter, PORT)
        for k in range(calls):
            ep.invoke_independent("poke", comm.rank % n, x=k)
        return True

    def callee(comm):
        inter = ns.accept("pi", comm)
        ep = CalleeEndpoint(comm, inter, PORT, Impl())
        servings = len([mm for mm in range(m) if mm % n == comm.rank])
        for _ in range(calls * servings):
            ep.serve_independent()
        return True

    run_coupled([("callee", n, callee, ()), ("caller", m, caller, ())])


def report():
    print(banner(f"E10 (§4.2): ghost invocations, M={M} callers, "
                 f"{CALLS} collective calls"))
    rows = []
    for n in N_SWEEP:
        t, (ghosts, merged, ghost_returns) = timed(
            lambda n=n: run_collective(M, n))
        rows.append([f"{M}x{n}", ghosts, merged, ghost_returns,
                     f"{t / CALLS * 1e3:.1f}"])
    print(fmt_table(["M x N", "ghost invocations", "merged at callee",
                     "ghost returns", "ms/call"], rows))

    t_coll, _ = timed(lambda: run_collective(M, M))
    t_ind, _ = timed(lambda: run_independent(M, M))
    print(f"\nM=N={M}: collective {t_coll / CALLS * 1e3:.1f} ms/call vs "
          f"independent {t_ind / CALLS * 1e3:.1f} ms/call")
    print("Ghost traffic appears exactly when M != N and scales with the"
          "\nimbalance |N - M|; at M = N the collective path is ghost-free.")


def test_collective_equal(benchmark):
    benchmark.pedantic(lambda: run_collective(M, M, calls=5),
                       rounds=3, iterations=1)


def test_collective_n_twice_m(benchmark):
    benchmark.pedantic(lambda: run_collective(M, 2 * M, calls=5),
                       rounds=3, iterations=1)


def test_ghost_accounting_shape():
    ghosts, merged, ghost_returns = run_collective(M, 8, calls=2)
    assert ghosts == 2 * (8 - M)      # fan-out ghosts per call
    assert merged == 0
    ghosts, merged, ghost_returns = run_collective(M, 2, calls=2)
    assert ghosts == 0
    assert merged == 2 * (M - 2)
    assert ghost_returns == 2 * (M - 2)


if __name__ == "__main__":
    report()
