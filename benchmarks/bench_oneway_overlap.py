"""E11 / §2.4: one-way methods overlap computation and communication.

"In one-way methods the calling component continues execution
immediately, without waiting for the remote invocation to complete."

A producer streams work items to a slow consumer.  With blocking RMI
the producer's loop runs at the consumer's pace; with one-way methods
the producer finishes its loop at its own pace (the pipeline drains in
the background).
"""

import time


from _common import banner, fmt_table, timed
from repro.cca.sidl import arg, method, port
from repro.prmi import CalleeEndpoint, CallerEndpoint
from repro.simmpi import NameService, run_coupled

PORT = port(
    "Sink",
    method("process_blocking", arg("item")),
    method("process_oneway", arg("item"), oneway=True, returns=False),
)
ITEMS = 8
SERVICE_TIME = 0.03   # consumer's per-item cost
PRODUCE_TIME = 0.005  # producer's per-item cost


class SlowConsumer:
    def __init__(self):
        self.seen = []

    def _work(self, item):
        time.sleep(SERVICE_TIME)
        self.seen.append(item)
        return item

    def process_blocking(self, item):
        return self._work(item)

    def process_oneway(self, item):
        self._work(item)


def run_stream(oneway):
    ns = NameService()
    method_name = "process_oneway" if oneway else "process_blocking"
    producer_loop_time = {}

    def producer(comm):
        inter = ns.connect("sink", comm)
        ep = CallerEndpoint(comm, inter, PORT)
        t0 = time.perf_counter()
        for k in range(ITEMS):
            time.sleep(PRODUCE_TIME)  # compute the next item
            ep.invoke(method_name, item=k)
        loop = time.perf_counter() - t0
        producer_loop_time[0] = loop
        return loop

    def consumer(comm):
        inter = ns.accept("sink", comm)
        impl = SlowConsumer()
        ep = CalleeEndpoint(comm, inter, PORT, impl)
        for _ in range(ITEMS):
            ep.serve_one()
        return impl.seen

    out = run_coupled([("consumer", 1, consumer, ()),
                       ("producer", 1, producer, ())])
    assert out["consumer"][0] == list(range(ITEMS))  # order preserved
    return out["producer"][0]


def report():
    print(banner(f"E11 (§2.4): one-way overlap, {ITEMS} items, "
                 f"consumer {SERVICE_TIME * 1e3:.0f} ms/item, "
                 f"producer {PRODUCE_TIME * 1e3:.0f} ms/item"))
    t_block_total, block_loop = timed(lambda: run_stream(oneway=False))
    t_oneway_total, oneway_loop = timed(lambda: run_stream(oneway=True))
    rows = [
        ["blocking RMI", f"{block_loop * 1e3:.0f}",
         f"{t_block_total * 1e3:.0f}"],
        ["one-way methods", f"{oneway_loop * 1e3:.0f}",
         f"{t_oneway_total * 1e3:.0f}"],
    ]
    print(fmt_table(["invocation style", "producer loop ms",
                     "end-to-end ms"], rows))
    ideal_block = ITEMS * (SERVICE_TIME + PRODUCE_TIME)
    ideal_oneway = ITEMS * PRODUCE_TIME
    print(f"\nexpected shape: blocking loop ~{ideal_block * 1e3:.0f} ms "
          f"(serialized), one-way loop ~{ideal_oneway * 1e3:.0f} ms "
          f"(producer-bound)")
    assert oneway_loop < block_loop / 2


def test_blocking_stream(benchmark):
    benchmark.pedantic(lambda: run_stream(False), rounds=3, iterations=1)


def test_oneway_stream(benchmark):
    benchmark.pedantic(lambda: run_stream(True), rounds=3, iterations=1)


if __name__ == "__main__":
    report()
