"""E4 / Figure 4: the M×N project feature table, regenerated.

The paper's Fig. 4 tabulates five projects against four features.  Here
each of our implementations self-reports its capabilities, and the
bench both prints the same table and asserts it matches the paper's
rows (adapted: "Language" becomes the implementation's argument model,
since everything here is Python; "Prod. Level" becomes whether the
paper marked the original production-grade).
"""


from _common import banner, fmt_table


def project_features():
    """Capability declarations introspected from the implementations."""
    from repro.dca.engine import DCACallerPort
    from repro.icomm.coupling import Exporter
    from repro.mct.router import Router
    from repro.mxn.connection import MxNConnection
    from repro.prmi.endpoint import CallerEndpoint

    rows = {}
    rows["Dist. CCA Arch. (DCA)"] = {
        "parallel_data": "MPI-based arrays (counts/displs)",
        "prmi": hasattr(DCACallerPort, "invoke"),
        "paper_prod_level": False,
        "impl": "repro.dca",
    }
    rows["InterComm"] = {
        "parallel_data": "Dense arrays",
        "prmi": hasattr(Exporter, "invoke"),
        "paper_prod_level": True,
        "impl": "repro.icomm",
    }
    rows["Model Coupling Toolkit (MCT)"] = {
        "parallel_data": "Dense/sparse arrays, grids",
        "prmi": hasattr(Router, "invoke"),
        "paper_prod_level": True,
        "impl": "repro.mct",
    }
    rows["MxN Component"] = {
        "parallel_data": "SIDL (DAD descriptors)",
        "prmi": hasattr(MxNConnection, "invoke"),
        "paper_prod_level": True,
        "impl": "repro.mxn",
    }
    rows["SciRun2"] = {
        "parallel_data": "SIDL (distributed array args)",
        "prmi": hasattr(CallerEndpoint, "invoke"),
        "paper_prod_level": True,
        "impl": "repro.prmi",
    }
    return rows


#: The paper's Fig. 4 PRMI column, which our implementations must match.
PAPER_PRMI = {
    "Dist. CCA Arch. (DCA)": True,
    "InterComm": False,
    "Model Coupling Toolkit (MCT)": False,
    "MxN Component": False,
    "SciRun2": True,
}


def report():
    print(banner("E4 (Fig. 4): M×N projects and features"))
    features = project_features()
    rows = []
    for name in sorted(features):
        f = features[name]
        rows.append([name, f["parallel_data"],
                     "Yes" if f["prmi"] else "No",
                     "Yes" if f["paper_prod_level"] else "No",
                     f["impl"]])
    print(fmt_table(["Project", "Parallel Data", "PRMI",
                     "Prod. Level (paper)", "our module"], rows))
    for name, expect in PAPER_PRMI.items():
        got = features[name]["prmi"]
        status = "ok" if got == expect else "MISMATCH"
        if got != expect:
            print(f"  !! {name}: paper says PRMI={expect}, impl says {got} "
                  f"({status})")
    print("\nPRMI column matches the paper's Fig. 4 for all five projects.")


def test_feature_table_matches_paper(benchmark):
    features = benchmark(project_features)
    for name, expect in PAPER_PRMI.items():
        assert features[name]["prmi"] == expect, name
    assert len(features) == 5


if __name__ == "__main__":
    report()
