"""E2 / Figure 2: direct-connected vs. distributed frameworks.

The same uses/provides port pair is exercised both ways: co-located in
one address space (invocation = function call) and split across two
jobs (invocation = PRMI through the bridge).  The series over payload
size shows the RMI marshalling cost the paper's Fig. 2 distinction
implies — and that it amortizes as payloads grow.
"""

import numpy as np

from _common import banner, fmt_table
from repro.cca import Component, DirectFramework
from repro.cca.distributed import DistributedFramework
from repro.cca.sidl import arg, method, port
from repro.simmpi import NameService, run_coupled, run_spmd

ECHO_PORT = port("EchoPort", method("echo", arg("data")))
PAYLOAD_SIZES = [1, 1024, 65536, 1048576 // 8]
CALLS = 20


class EchoComponent(Component):
    def set_services(self, services):
        super().set_services(services)
        services.add_provides_port("echo", ECHO_PORT, self)

    def echo(self, data):
        return data


class UserComponent(Component):
    def set_services(self, services):
        super().set_services(services)
        services.register_uses_port("echo", ECHO_PORT)


def direct_calls(n_elements, calls=CALLS):
    """Returns the measured in-job seconds for ``calls`` invocations."""
    import time

    def main(comm):
        fw = DirectFramework(comm)
        fw.create_component("echo", EchoComponent)
        fw.create_component("user", UserComponent)
        fw.connect("user", "echo", "echo", "echo")
        bound = fw._services["user"].get_port("echo")
        payload = np.ones(n_elements)
        t0 = time.perf_counter()
        for _ in range(calls):
            out = bound.echo(data=payload)
        elapsed = time.perf_counter() - t0
        assert out is payload  # direct connection: no copy, same object
        return elapsed

    return run_spmd(1, main)[0]


def distributed_calls(n_elements, calls=CALLS):
    """Returns the measured in-job seconds for ``calls`` invocations."""
    import time

    ns = NameService()

    def server(comm):
        fw = DistributedFramework(comm, ns)
        fw.create_component("echo", EchoComponent)
        ep = fw.serve_connection("echo", "echo", "svc")
        for _ in range(calls):
            ep.serve_one()
        return True

    def client(comm):
        fw = DistributedFramework(comm, ns)
        fw.create_component("user", UserComponent)
        fw.connect_remote("user", "echo", "svc")
        proxy = fw._services["user"].get_port("echo")
        payload = np.ones(n_elements)
        t0 = time.perf_counter()
        for _ in range(calls):
            out = proxy.echo(data=payload)
        elapsed = time.perf_counter() - t0
        assert out is not payload  # RMI: the wire copies the data
        assert float(out.sum()) == float(n_elements)
        return elapsed

    out = run_coupled([("server", 1, server, ()), ("client", 1, client, ())])
    return out["client"][0]


def report():
    print(banner("E2 (Fig. 2): port invocation cost, direct vs distributed"))
    rows = []
    for n in PAYLOAD_SIZES:
        t_direct = direct_calls(n, calls=200)
        t_dist = distributed_calls(n)
        per_direct = t_direct / 200 * 1e6
        per_dist = t_dist / CALLS * 1e6
        rows.append([f"{n * 8 // 1024} KiB" if n >= 128 else f"{n * 8} B",
                     f"{per_direct:.1f}", f"{per_dist:.1f}",
                     f"{per_dist / per_direct:.0f}x"])
    print(fmt_table(["payload", "direct us/call", "distributed us/call",
                     "RMI penalty"], rows))
    print("\nDirect connection is a function call; the distributed port pays"
          "\nmarshalling + transport, shrinking in relative terms with size.")


def test_direct_invocation(benchmark):
    benchmark.pedantic(lambda: direct_calls(1024), rounds=3, iterations=1)


def test_distributed_invocation(benchmark):
    benchmark.pedantic(lambda: distributed_calls(1024), rounds=3,
                       iterations=1)


if __name__ == "__main__":
    report()
