"""Ablation A1: the block×block schedule fast path.

The general builder intersects every source region with every
destination region — O(Rs·Rd).  For pure block templates the fast path
enumerates only the overlapping blocks by index arithmetic, so its cost
is proportional to the number of actual transfers.  This ablation
sweeps the rank count and shows when the fast path starts to matter.
"""

import numpy as np
import pytest

from _common import banner, fmt_table, timed
from repro.dad import DistArrayDescriptor
from repro.dad.template import block_template
from repro.schedule import build_block_schedule, build_region_schedule

SHAPE = (128, 128)
GRIDS = [((2, 2), (4, 1)), ((4, 4), (8, 2)), ((8, 8), (16, 4)),
         ((16, 16), (32, 8))]


def report():
    print(banner("A1 (ablation): block fast path vs general intersection"))
    rows = []
    for src_grid, dst_grid in GRIDS:
        src = DistArrayDescriptor(block_template(SHAPE, src_grid))
        dst = DistArrayDescriptor(block_template(SHAPE, dst_grid))
        t_fast, s_fast = timed(lambda: build_block_schedule(src, dst))
        t_gen, s_gen = timed(
            lambda: build_region_schedule(src, dst, force_general=True))
        assert s_fast.items == s_gen.items
        m, n = src.nranks, dst.nranks
        rows.append([f"{m}x{n}", s_fast.message_count,
                     f"{t_fast * 1e3:.2f}", f"{t_gen * 1e3:.2f}",
                     f"{t_gen / t_fast:.1f}x"])
    print(fmt_table(["M x N", "transfers", "fast ms", "general ms",
                     "speedup"], rows))
    print("\nThe general path's all-pairs cost grows with M·N; the fast"
          "\npath tracks the transfer count, so the gap widens with scale"
          "\n— this is why the dispatcher picks it automatically.")


@pytest.mark.parametrize("grids", [GRIDS[2]], ids=["64x64ranks"])
def test_fast_path(benchmark, grids):
    src = DistArrayDescriptor(block_template(SHAPE, grids[0]))
    dst = DistArrayDescriptor(block_template(SHAPE, grids[1]))
    benchmark(lambda: build_block_schedule(src, dst))


@pytest.mark.parametrize("grids", [GRIDS[2]], ids=["64x64ranks"])
def test_general_path(benchmark, grids):
    src = DistArrayDescriptor(block_template(SHAPE, grids[0]))
    dst = DistArrayDescriptor(block_template(SHAPE, grids[1]))
    benchmark(lambda: build_region_schedule(src, dst, force_general=True))


if __name__ == "__main__":
    report()
