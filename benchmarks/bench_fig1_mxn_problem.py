"""E1 / Figure 1: the M×N problem — M=8 cohort feeding N=27.

Regenerates the paper's motivating picture as numbers: for (M, N)
pairs around the figure's 8→27, the parallel redistribution's message
count, bytes moved, and wall time, with correctness asserted on every
run.
"""

import numpy as np
import pytest

from _common import banner, fmt_table, make_block_pair, redistribute_once, timed
from repro.schedule import build_region_schedule

SHAPE = (24, 24, 24)
PAIRS = [
    ((2, 2, 2), (3, 3, 3)),   # the figure's M=8 -> N=27
    ((1, 1, 1), (3, 3, 3)),   # serial -> 27
    ((2, 2, 2), (1, 1, 1)),   # 8 -> serial (gather-like)
    ((2, 2, 1), (2, 2, 2)),   # mild growth 4 -> 8
    ((3, 3, 3), (2, 2, 2)),   # 27 -> 8 (reverse)
]


def _run_pair(src_grid, dst_grid):
    src, dst = make_block_pair(SHAPE, src_grid, dst_grid)
    g = np.arange(np.prod(SHAPE), dtype=np.float64).reshape(SHAPE)
    sched = build_region_schedule(src, dst)
    elapsed, (out, counters) = timed(
        lambda: redistribute_once(src, dst, g, schedule=sched))
    assert np.array_equal(out, g)
    return sched, counters, elapsed


def report():
    print(banner("E1 (Fig. 1): the M×N problem, shape "
                 f"{SHAPE} ({np.prod(SHAPE)} elements)"))
    rows = []
    for src_grid, dst_grid in PAIRS:
        sched, counters, elapsed = _run_pair(src_grid, dst_grid)
        m = int(np.prod(src_grid))
        n = int(np.prod(dst_grid))
        rows.append([f"{m}x{n}", sched.message_count,
                     f"{sched.nbytes() / 1024:.0f}",
                     f"{elapsed * 1e3:.1f}"])
    print(fmt_table(["M x N", "messages", "KiB moved", "ms"], rows))
    print("\nEvery destination element arrives exactly once; message count"
          "\ngrows with decomposition mismatch, not with a global gather.")


@pytest.mark.parametrize("src_grid,dst_grid", PAIRS[:2],
                         ids=["8to27", "1to27"])
def test_fig1_redistribution(benchmark, src_grid, dst_grid):
    src, dst = make_block_pair(SHAPE, src_grid, dst_grid)
    g = np.random.default_rng(0).random(SHAPE)
    sched = build_region_schedule(src, dst)
    out, _ = benchmark.pedantic(
        lambda: redistribute_once(src, dst, g, schedule=sched),
        rounds=3, iterations=1)
    assert np.array_equal(out, g)
    benchmark.extra_info["messages"] = sched.message_count
    benchmark.extra_info["bytes"] = sched.nbytes()


if __name__ == "__main__":
    report()
