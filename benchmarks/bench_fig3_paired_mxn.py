"""E3 / Figure 3: paired M×N components between framework instances.

Two direct-connected framework instances (separate jobs), each hosting
an application component plus its co-located M×N component; the pair
mediates the inter-framework transfer.  One-shot connection setup cost
is compared with the steady-state per-transfer cost of a persistent
channel — the schedule is built once at connect time and reused.
"""

import numpy as np

from _common import banner, fmt_table, timed
from repro.dad import AccessMode, DistArrayDescriptor, DistributedArray
from repro.dad.template import block_template
from repro.mxn import ConnectionKind, MxNComponent
from repro.simmpi import NameService, run_coupled

SHAPE = (64, 64)
M_GRID, N_GRID = (2, 2), (3, 1)


def run_paired(kind, cycles):
    src_desc = DistArrayDescriptor(block_template(SHAPE, M_GRID))
    dst_desc = DistArrayDescriptor(block_template(SHAPE, N_GRID))
    g = np.random.default_rng(1).random(SHAPE)
    ns = NameService()

    def left(comm):
        inter = ns.accept("pair", comm)
        mxn = MxNComponent(comm)
        da = DistributedArray.from_global(src_desc, comm.rank, g)
        mxn.register("field", da, AccessMode.READ)
        conn = mxn.connect(inter, "source", "field", kind)
        for _ in range(cycles):
            conn.data_ready()
        return conn.transfers_completed

    def right(comm):
        inter = ns.connect("pair", comm)
        mxn = MxNComponent(comm)
        da = DistributedArray.allocate(dst_desc, comm.rank)
        mxn.register("field", da, AccessMode.WRITE)
        conn = mxn.connect(inter, "destination", "field", kind)
        for _ in range(cycles):
            conn.data_ready()
        return da

    out = run_coupled([
        ("left", src_desc.nranks, left, ()),
        ("right", dst_desc.nranks, right, ()),
    ])
    assembled = DistributedArray.assemble(out["right"])
    assert np.array_equal(assembled, g)
    return out


def report():
    print(banner("E3 (Fig. 3): paired M×N components, "
                 f"{SHAPE} field, M={np.prod(M_GRID)} N={np.prod(N_GRID)}"))
    t_oneshot, _ = timed(lambda: run_paired(ConnectionKind.ONE_SHOT, 1))
    cycles = 10
    t_persist, _ = timed(lambda: run_paired(ConnectionKind.PERSISTENT,
                                            cycles))
    setup_plus_one = t_oneshot
    steady = t_persist / cycles
    rows = [
        ["one-shot (connect + 1 transfer)", f"{setup_plus_one * 1e3:.1f}"],
        [f"persistent, {cycles} transfers (per transfer)",
         f"{steady * 1e3:.1f}"],
    ]
    print(fmt_table(["configuration", "ms"], rows))
    print("\nThe persistent channel amortizes connection + schedule build"
          "\nacross transfers; steady-state cost is data movement only.")


def test_one_shot_pair(benchmark):
    benchmark.pedantic(lambda: run_paired(ConnectionKind.ONE_SHOT, 1),
                       rounds=3, iterations=1)


def test_persistent_pair_10_cycles(benchmark):
    benchmark.pedantic(lambda: run_paired(ConnectionKind.PERSISTENT, 10),
                       rounds=3, iterations=1)


if __name__ == "__main__":
    report()
