"""A5 (ablation): schedule-engine scaling — sweep/structured vs all-pairs.

The seed builder intersected every source region with every destination
region: O(Rs·Rd) even when almost no pairs overlap.  Cyclic templates
are the worst case — a 1-D Cyclic axis over E elements owns E unit
regions, so an M→N cyclic redistribution costs Rs·Rd = E² candidate
intersections while only O(E) transfers exist.  The rewritten engine
dispatches to a closed-form structured enumerator (block / cyclic /
block-cyclic / generalized-block) or, for irregular ownership, to an
output-sensitive sweep-line join, so build cost tracks the transfer
count.

This report sweeps M×N and template kinds and prints, per pair:

* build time of the retained all-pairs baseline vs the dispatcher,
* schedule shape (messages, communicating rank pairs, elements), and
* executed message/byte counters packed vs unpacked.

``python benchmarks/bench_schedule_scaling.py [--json PATH]`` emits the
same numbers as machine-readable JSON (default: stdout summary only).
"""

import json
import sys

import numpy as np
import pytest

from _common import banner, fmt_table, timed
from repro.dad import (
    BlockCyclic,
    CartesianTemplate,
    Cyclic,
    DistArrayDescriptor,
    DistributedArray,
)
from repro.dad.template import block_template
from repro.schedule import (
    build_allpairs_schedule,
    build_region_schedule,
    execute_intra,
)
from repro.simmpi import run_spmd

EXTENT = 960
SIZES = [(4, 6), (8, 12), (16, 24), (32, 48)]

KINDS = {
    "block": lambda p: block_template((EXTENT,), (p,)),
    "cyclic": lambda p: CartesianTemplate([Cyclic(EXTENT, p)]),
    "blockcyclic4": lambda p: CartesianTemplate([BlockCyclic(EXTENT, p, 4)]),
}

# the acceptance pair from the issue: cyclic 32 -> 48 ranks
ACCEPTANCE = ("cyclic", 32, 48)


def _pair(kind, m, n):
    make = KINDS[kind]
    return (DistArrayDescriptor(make(m)), DistArrayDescriptor(make(n)))


def _region_counts(desc):
    return sum(len(list(desc.local_regions(r))) for r in range(desc.nranks))


def build_rows():
    rows = []
    for kind in KINDS:
        for m, n in SIZES:
            src, dst = _pair(kind, m, n)
            t_fast, s_fast = timed(lambda: build_region_schedule(src, dst))
            t_all, s_all = timed(lambda: build_allpairs_schedule(src, dst))
            assert s_fast.items == s_all.items
            rows.append({
                "kind": kind, "m": m, "n": n,
                "src_regions": _region_counts(src),
                "dst_regions": _region_counts(dst),
                "messages": s_fast.message_count,
                "pairs": s_fast.pair_count,
                "elements": s_fast.element_count,
                "fast_ms": t_fast * 1e3,
                "allpairs_ms": t_all * 1e3,
                "speedup": t_all / t_fast if t_fast > 0 else float("inf"),
            })
    return rows


def _execute_counters(src_desc, dst_desc, *, packed):
    sched = build_region_schedule(src_desc, dst_desc)
    g = np.arange(float(np.prod(src_desc.shape))).reshape(src_desc.shape)
    n = max(src_desc.nranks, dst_desc.nranks)

    def main(comm):
        src = (DistributedArray.from_global(src_desc, comm.rank, g)
               if comm.rank < src_desc.nranks else None)
        dst = (DistributedArray.allocate(dst_desc, comm.rank)
               if comm.rank < dst_desc.nranks else None)
        execute_intra(sched, comm, src_array=src, dst_array=dst,
                      src_ranks=range(src_desc.nranks),
                      dst_ranks=range(dst_desc.nranks), packed=packed)
        return comm.counters  # shared per job; read after all threads join

    counters = run_spmd(n, main)[0]
    return {"msgs": counters.get("msgs"), "bytes": counters.get("bytes"),
            "schedule_messages": sched.message_count,
            "schedule_pairs": sched.pair_count}


def exec_rows():
    rows = []
    for kind in KINDS:
        m, n = 4, 6  # thread-simulated ranks: keep the world small
        src, dst = _pair(kind, m, n)
        for packed in (True, False):
            c = _execute_counters(src, dst, packed=packed)
            rows.append({"kind": kind, "m": m, "n": n,
                         "mode": "packed" if packed else "per-region", **c})
    return rows


def report(json_path=None):
    print(banner("A5 (ablation): schedule-engine scaling and coalescing"))
    build = build_rows()
    print(fmt_table(
        ["kind", "M x N", "Rs", "Rd", "msgs", "pairs",
         "fast ms", "all-pairs ms", "speedup"],
        [[r["kind"], f"{r['m']}x{r['n']}", r["src_regions"],
          r["dst_regions"], r["messages"], r["pairs"],
          f"{r['fast_ms']:.2f}", f"{r['allpairs_ms']:.2f}",
          f"{r['speedup']:.1f}x"] for r in build]))

    execu = exec_rows()
    print()
    print(fmt_table(
        ["kind", "M x N", "mode", "msgs", "bytes", "sched msgs", "pairs"],
        [[r["kind"], f"{r['m']}x{r['n']}", r["mode"], r["msgs"],
          r["bytes"], r["schedule_messages"], r["schedule_pairs"]]
         for r in execu]))

    kind, m, n = ACCEPTANCE
    acc = next(r for r in build if (r["kind"], r["m"], r["n"]) == (kind, m, n))
    print(f"\nAcceptance pair ({kind} {m}x{n}): {acc['speedup']:.0f}x build"
          f" speedup over all-pairs (floor: 5x); packed execution sends"
          f"\nexactly one message per communicating rank pair"
          f" (sched msgs -> pairs column above).")

    payload = {"extent": EXTENT, "build": build, "execution": execu}
    if json_path:
        with open(json_path, "w") as fh:
            json.dump(payload, fh, indent=2)
        print(f"\nwrote {json_path}")
    return payload


# --- pytest-benchmark hooks -------------------------------------------------

def _acc_pair():
    kind, m, n = ACCEPTANCE
    return _pair(kind, m, n)


def test_build_dispatch(benchmark):
    src, dst = _acc_pair()
    benchmark(lambda: build_region_schedule(src, dst))


def test_build_allpairs_baseline(benchmark):
    # a quarter-extent pair: the full 960-element cyclic baseline costs
    # seconds per round, too slow for a benchmark loop
    src = DistArrayDescriptor(CartesianTemplate([Cyclic(240, 8)]))
    dst = DistArrayDescriptor(CartesianTemplate([Cyclic(240, 12)]))
    benchmark(lambda: build_allpairs_schedule(src, dst))


def test_acceptance_speedup():
    src, dst = _acc_pair()
    t_fast, s_fast = timed(lambda: build_region_schedule(src, dst))
    t_all, s_all = timed(lambda: build_allpairs_schedule(src, dst))
    assert s_fast.items == s_all.items
    assert t_all >= 5 * t_fast


if __name__ == "__main__":
    path = None
    if "--json" in sys.argv:
        path = sys.argv[sys.argv.index("--json") + 1]
    report(json_path=path)
