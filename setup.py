"""Legacy setup shim: the offline environment's setuptools lacks wheel
support, so editable installs go through ``--no-use-pep517``."""

from setuptools import setup

setup()
