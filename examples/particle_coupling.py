#!/usr/bin/env python
"""Particle-field M×N coupling (paper §4.1's particle container).

A particle-in-cell plasma simulation on M = 3 ranks pushes particles
each step and migrates them to keep spatial ownership consistent; every
few steps it hands the full particle population to an N = 2 analysis
program with a *different* spatial decomposition (the M×N problem, for
particles instead of arrays).  The analysis side bins charge density on
its own decomposition and verifies global charge conservation.

Run:  python examples/particle_coupling.py
"""

import numpy as np

from repro.particles import (
    ParticleField,
    SpatialDecomposition,
    exchange_mxn,
    migrate,
)
from repro.simmpi import NameService, run_coupled

SIM_RANKS = 3
ANA_RANKS = 2
PARTICLES_PER_RANK = 200
STEPS = 6
HANDOFF_EVERY = 3

# Simulation decomposes the unit square into 6x6 cells over a 3x1 grid;
# analysis uses a 1x2 grid — deliberately mismatched.
SIM_DECOMP = SpatialDecomposition.block(
    [0.0, 0.0], [1.0, 1.0], cells=(6, 6), grid=(SIM_RANKS, 1))
ANA_DECOMP = SpatialDecomposition.block(
    [0.0, 0.0], [1.0, 1.0], cells=(6, 6), grid=(1, ANA_RANKS))


def main():
    ns = NameService()

    def simulation(comm):
        rng = np.random.default_rng(comm.rank)
        n = PARTICLES_PER_RANK
        field = ParticleField(
            ids=np.arange(comm.rank * n, comm.rank * n + n),
            positions=rng.random((n, 2)),
            attributes={"charge": rng.choice([-1.0, 1.0], size=n),
                        "velocity": rng.normal(0, 0.05, size=(n, 2))})
        field = migrate(comm, field, SIM_DECOMP)
        inter = ns.accept("handoff", comm)
        handoffs = 0
        for step in range(1, STEPS + 1):
            # push: drift + reflective walls
            field.positions += field.attributes["velocity"]
            for ax in range(2):
                low = field.positions[:, ax] < 0.0
                high = field.positions[:, ax] > 1.0
                field.positions[low, ax] *= -1.0
                field.positions[high, ax] = 2.0 - field.positions[high, ax]
                field.attributes["velocity"][low | high, ax] *= -1.0
            # restore ownership after movement
            field = migrate(comm, field, SIM_DECOMP)
            if step % HANDOFF_EVERY == 0:
                exchange_mxn(inter, "src", field, ANA_DECOMP)
                handoffs += 1
        total_charge = comm.allreduce(
            float(field.attributes["charge"].sum()), op="sum")
        return handoffs, field.count, total_charge

    def analysis(comm):
        inter = ns.connect("handoff", comm)
        densities = []
        for _ in range(STEPS // HANDOFF_EVERY):
            field = exchange_mxn(
                inter, "dst", decomp=ANA_DECOMP, ndim=2,
                attribute_shapes={"charge": (), "velocity": (2,)})
            # bin local charge onto this rank's cells
            cells = ANA_DECOMP.cell_of(field.positions)
            density = {}
            for (i, j), q in zip(map(tuple, cells),
                                 field.attributes["charge"]):
                density[(i, j)] = density.get((i, j), 0.0) + q
            local_q = float(field.attributes["charge"].sum())
            densities.append((field.count, local_q, len(density)))
        return densities

    out = run_coupled([
        ("simulation", SIM_RANKS, simulation, ()),
        ("analysis", ANA_RANKS, analysis, ()),
    ])

    total = SIM_RANKS * PARTICLES_PER_RANK
    sim_charge = out["simulation"][0][2]
    print(f"{total} particles simulated on {SIM_RANKS} ranks, "
          f"handed to {ANA_RANKS} analysis ranks every "
          f"{HANDOFF_EVERY} steps:")
    for k, (count0, q0, cells0) in enumerate(out["analysis"][0]):
        count1, q1, cells1 = out["analysis"][1][k]
        print(f"  handoff {k}: analysis holds {count0 + count1} particles, "
              f"net charge {q0 + q1:+.0f}, "
              f"{cells0 + cells1} occupied cell bins")
        assert count0 + count1 == total
        assert q0 + q1 == sim_charge
    print("particle count and net charge conserved across every "
          "M×N handoff.")


if __name__ == "__main__":
    main()
