#!/usr/bin/env python
"""CUMULVS-style visualization and steering (paper §4.1).

A running simulation (M = 4 processes) is monitored by a serial viewer
(N = 1) through the generalized M×N component:

* a **persistent periodic** connection samples the simulation's
  temperature field into the viewer every ``PERIOD`` time steps — the
  viewer is just another M×N destination with a collapsed (serial)
  decomposition;
* a **steering parameter** (the heater power) travels the other way
  over a second connection, from the viewer back into the simulation.

Neither side blocks the other beyond the point-to-point messages of the
transfer itself, and the simulation code never learns the viewer's
decomposition — it only calls ``data_ready()``.

Run:  python examples/viz_steering.py
"""

import numpy as np

from repro.dad import AccessMode, DistArrayDescriptor, DistributedArray
from repro.dad.template import block_template
from repro.mxn import ConnectionKind, MxNComponent
from repro.simmpi import NameService, run_coupled

GRID = (16, 16)
SIM_RANKS = 4
STEPS = 9
PERIOD = 3


def main():
    sim_desc = DistArrayDescriptor(block_template(GRID, (2, 2)),
                                   np.float64, name="temperature")
    viz_desc = DistArrayDescriptor(block_template(GRID, (1, 1)),
                                   np.float64, name="temperature")
    knob_sim = DistArrayDescriptor(block_template((1,), (1,)), np.float64)

    ns = NameService()

    def simulation(comm):
        inter = ns.accept("viz", comm)
        mxn = MxNComponent(comm)
        field = DistributedArray.allocate(sim_desc, comm.rank)
        mxn.register("temperature", field, AccessMode.READ)
        conn = mxn.connect(inter, "source", "temperature",
                           ConnectionKind.PERSISTENT, PERIOD)

        # Steering channel: the knob lives on sim rank 0 only.
        steer_inter = ns.accept("steer", comm)
        knob = DistributedArray.allocate(knob_sim, 0) \
            if comm.rank == 0 else None
        power = 1.0
        fired = 0
        for _step in range(STEPS):
            # Toy heat source: power-scaled hot spot plus decay.
            for region, arr in field.iter_patches():
                i0 = region.lo[0]
                arr *= 0.9
                arr += power * (1.0 + i0 / GRID[0])
            if conn.data_ready():
                fired += 1
                # After each sample the viewer may push a new power level
                # to rank 0, which broadcasts it to the cohort.
                if comm.rank == 0:
                    new_power = steer_inter.recv(source=0, tag=1)
                else:
                    new_power = None
                power = comm.bcast(new_power, root=0)
        return fired, power

    def viewer(comm):
        inter = ns.connect("viz", comm)
        mxn = MxNComponent(comm)
        frame = DistributedArray.allocate(viz_desc, 0)
        mxn.register("temperature", frame, AccessMode.WRITE)
        conn = mxn.connect(inter, "destination", "temperature",
                           ConnectionKind.PERSISTENT, PERIOD)
        steer_inter = ns.connect("steer", comm)

        frames = []
        power = 1.0
        for step in range(STEPS):
            if conn.data_ready():
                snapshot = frame.local_view(
                    next(iter(frame.patches))).copy()
                frames.append((step, float(snapshot.mean())))
                # Steering: crank the heater up after every frame.
                power *= 1.5
                steer_inter.send(power, dest=0, tag=1)
        return frames

    out = run_coupled([
        ("simulation", SIM_RANKS, simulation, ()),
        ("viewer", 1, viewer, ()),
    ])

    frames = out["viewer"][0]
    fired, final_power = out["simulation"][0]
    print(f"viewer captured {len(frames)} frames "
          f"(every {PERIOD} of {STEPS} steps):")
    for step, mean in frames:
        print(f"  step {step}: mean temperature {mean:8.4f}")
    print(f"steering pushed heater power to {final_power:.3f} "
          f"on all {SIM_RANKS} simulation ranks")
    assert fired == len(frames) == (STEPS + PERIOD - 1) // PERIOD
    # Steering raises power, so later frames must be warmer.
    assert frames[-1][1] > frames[0][1]
    print("persistent periodic sampling and steering verified.")


if __name__ == "__main__":
    main()
