#!/usr/bin/env python
"""Live sensor data inserted into a running simulation (paper §6).

"M×N connections are needed for more than just computations:
dynamically inserting data from large sensor arrays into a running
computation (such as weather modeling) ... will mean connecting
non-computational components with computational ones."

A 2-rank "sensor network" (a non-computational component) streams
sparse observations of a temperature field into a 4-rank weather
simulation every assimilation cycle.  The sensor side knows nothing
about the simulation's decomposition: it publishes its observation
field (with a coverage mask) through the high-level Coupler, and each
simulation rank nudges its state toward the observations where coverage
exists.

Run:  python examples/sensor_assimilation.py
"""

import numpy as np

from repro.dad import DistArrayDescriptor, DistributedArray
from repro.dad.template import block_template
from repro.highlevel import Coupler
from repro.simmpi import NameService, run_coupled

GRID = (16, 16)
SIM_RANKS = 4
SENSOR_RANKS = 2
CYCLES = 5
NUDGE = 0.5           # assimilation strength
TRUTH_MEAN = 25.0     # the "real atmosphere" the sensors observe


def main():
    sim_desc = DistArrayDescriptor(block_template(GRID, (2, 2)),
                                   name="temperature")
    mask_desc = DistArrayDescriptor(block_template(GRID, (2, 2)),
                                    name="coverage")
    sensor_desc = DistArrayDescriptor(block_template(GRID, (SENSOR_RANKS, 1)))
    ns = NameService()

    def sensors(comm):
        """Non-computational component: observes the 'true' field at a
        few hundred scattered stations."""
        rng = np.random.default_rng(100 + comm.rank)
        truth = TRUTH_MEAN + 3.0 * np.sin(
            np.linspace(0, np.pi, GRID[0]))[:, None] * np.ones(GRID)
        for cycle in range(CYCLES):
            obs = np.zeros(GRID)
            cover = np.zeros(GRID)
            # each cycle a different random subset of stations reports
            stations = rng.integers(0, GRID[0], size=(60, 2))
            for i, j in stations:
                obs[i, j] = truth[i, j] + rng.normal(0, 0.1)
                cover[i, j] = 1.0
            Coupler(f"obs.{cycle}", ns).publish(
                comm, DistributedArray.from_global(
                    sensor_desc, comm.rank, obs))
            Coupler(f"cover.{cycle}", ns).publish(
                comm, DistributedArray.from_global(
                    sensor_desc, comm.rank, cover))
        return "streamed"

    def simulation(comm):
        """The running computation: a toy diffusion model that drifts
        cold, corrected by assimilating observations."""
        state = DistributedArray.allocate(sim_desc, comm.rank)
        state.fill(15.0)  # biased initial condition
        errors = []
        for cycle in range(CYCLES):
            # model step: slight cooling drift
            for _, arr in state.iter_patches():
                arr -= 0.3
            # assimilation: pull this cycle's observations, M×N
            # redistributed straight into our decomposition
            obs = Coupler(f"obs.{cycle}", ns).subscribe(comm, sim_desc)
            cover = Coupler(f"cover.{cycle}", ns).subscribe(comm, mask_desc)
            for region, arr in state.iter_patches():
                o = obs.local_view(region)
                c = cover.local_view(region)
                arr += NUDGE * c * (o - arr)
            # track error against the sensor-truth mean
            local_err = sum(float(np.abs(a - TRUTH_MEAN).sum())
                            for _, a in state.iter_patches())
            errors.append(comm.allreduce(local_err, op="sum")
                          / (GRID[0] * GRID[1]))
        return errors

    out = run_coupled([
        ("sensors", SENSOR_RANKS, sensors, ()),
        ("simulation", SIM_RANKS, simulation, ()),
    ])

    errors = out["simulation"][0]
    print("mean |state - truth| per assimilation cycle:")
    for cycle, err in enumerate(errors):
        print(f"  cycle {cycle}: {err:7.3f}")
    assert errors[-1] < errors[0], "assimilation failed to reduce error"
    print(f"sensor stream reduced model error {errors[0]:.2f} -> "
          f"{errors[-1]:.2f} across {CYCLES} cycles "
          f"({SENSOR_RANKS}-rank sensors into {SIM_RANKS}-rank model).")


if __name__ == "__main__":
    main()
