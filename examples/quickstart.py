#!/usr/bin/env python
"""Quickstart: the paper's Figure 1 — the M×N problem.

One parallel program computes a 3-D field on M = 8 processes (a 2×2×2
block decomposition); a second program wants the same field on N = 27
processes (3×3×3).  The M×N middleware computes the communication
schedule from the two Distributed Array Descriptors and moves every
element to its destination with point-to-point messages — no gather, no
barrier, no global bottleneck.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    DistArrayDescriptor,
    DistributedArray,
    NameService,
    block_template,
    build_region_schedule,
    execute_inter,
    run_coupled,
)

SHAPE = (24, 24, 24)
M_GRID = (2, 2, 2)   # M = 8  (Fig. 1 left)
N_GRID = (3, 3, 3)   # N = 27 (Fig. 1 right)


def main():
    src_desc = DistArrayDescriptor(block_template(SHAPE, M_GRID),
                                   np.float64, name="pressure")
    dst_desc = DistArrayDescriptor(block_template(SHAPE, N_GRID),
                                   np.float64, name="pressure")

    # The schedule is computed once, from descriptors alone, and is
    # reusable for any array conforming to the same templates.
    schedule = build_region_schedule(src_desc, dst_desc)
    print(f"schedule: {schedule.message_count} point-to-point messages, "
          f"{schedule.element_count} elements "
          f"({schedule.nbytes() / 1024:.0f} KiB)")

    # The "truth" we expect to arrive intact on the N side.
    rng = np.random.default_rng(42)
    field = rng.random(SHAPE)

    ns = NameService()

    def simulation(comm):
        """The M = 8 producer: computes its block of the field."""
        inter = ns.accept("coupling", comm)
        local = DistributedArray.from_global(src_desc, comm.rank, field)
        sent = execute_inter(schedule, inter, "src", local)
        return sent

    def analysis(comm):
        """The N = 27 consumer: receives its (smaller) block."""
        inter = ns.connect("coupling", comm)
        local = DistributedArray.allocate(dst_desc, comm.rank)
        execute_inter(schedule, inter, "dst", local)
        return local

    out = run_coupled([
        ("simulation", src_desc.nranks, simulation, ()),
        ("analysis", dst_desc.nranks, analysis, ()),
    ])

    reassembled = DistributedArray.assemble(out["analysis"])
    assert np.array_equal(reassembled, field), "redistribution corrupted data"
    print(f"moved {sum(out['simulation'])} elements "
          f"from M={src_desc.nranks} to N={dst_desc.nranks} processes; "
          f"destination field verified bit-exact.")


if __name__ == "__main__":
    main()
