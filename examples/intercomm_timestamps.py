#!/usr/bin/env python
"""InterComm-style coupling with third-party coordination (paper §4.4).

A solid-earth model exports surface stress every step; a slower
magnetosphere-style consumer imports it only occasionally, and on
timestamps that never exactly match the exporter's.  Neither program
contains any logic about *when* transfers occur — a third-party
coordination spec decides, per field:

* ``stress``  — GREATEST_LOWER_BOUND matching (take the freshest export
  not newer than the import time);
* ``energy``  — REGULAR(4) matching (only every 4th export is eligible,
  imports snap down to the last multiple of 4).

Run:  python examples/intercomm_timestamps.py
"""


from repro.dad import DistArrayDescriptor, DistributedArray
from repro.dad.template import block_template
from repro.icomm import (
    CoordinationSpec,
    Exporter,
    Importer,
    MatchRule,
    Matching,
)
from repro.simmpi import NameService, run_coupled

POINTS = (32,)
PRODUCER_RANKS = 3
CONSUMER_RANKS = 2
PRODUCER_STEPS = 12
IMPORTS = [(("stress"), 5), (("energy"), 7), (("stress"), 11)]


def main():
    src = DistArrayDescriptor(block_template(POINTS, (PRODUCER_RANKS,)))
    dst = DistArrayDescriptor(block_template(POINTS, (CONSUMER_RANKS,)))
    fields = {"stress": (src, dst), "energy": (src, dst)}

    # The third party writes the rule book; both programs just obey it.
    spec = CoordinationSpec([
        MatchRule("stress", Matching.GREATEST_LOWER_BOUND),
        MatchRule("energy", Matching.REGULAR, interval=4),
    ])

    ns = NameService()

    def producer(comm):
        inter = ns.accept("geo", comm)
        exporter = Exporter(comm, inter, spec, fields,
                            total_imports=len(IMPORTS))
        for ts in range(PRODUCER_STEPS):
            snap = DistributedArray.from_function(
                src, comm.rank, lambda i, ts=ts: 100.0 * ts + i)
            # Export both fields; the rules decide which ever move.
            exporter.export("stress", ts, snap)
            exporter.export("energy", ts, snap)
        exporter.finalize()
        return exporter.transfers

    def consumer(comm):
        inter = ns.connect("geo", comm)
        importer = Importer(comm, inter, spec, fields)
        results = []
        for field, ts in IMPORTS:
            buf = DistributedArray.allocate(dst, comm.rank)
            matched = importer.import_(field, ts, buf)
            first = float(buf.local_view(
                next(iter(buf.patches))).reshape(-1)[0])
            results.append((field, ts, matched, first))
        return results

    out = run_coupled([
        ("producer", PRODUCER_RANKS, producer, ()),
        ("consumer", CONSUMER_RANKS, consumer, ()),
    ])

    print(f"producer performed {out['producer'][0]} transfers "
          f"out of {PRODUCER_STEPS * 2} exports")
    print("imports (field, asked-for ts -> matched export ts):")
    for field, ts, matched, first in out["consumer"][0]:
        print(f"  {field:7s} t={ts:2d} -> export t={matched:2d} "
              f"(rank-0 first value {first:6.1f})")
    got = [(f, t, m) for f, t, m, _ in out["consumer"][0]]
    assert got == [("stress", 5, 5), ("energy", 7, 4), ("stress", 11, 11)]
    print("timestamp rules (GLB and REGULAR/4) matched as specified.")


if __name__ == "__main__":
    main()
