#!/usr/bin/env python
"""Climate coupling with the MCT substrate (paper §4.5).

An atmosphere model on 3 processes (coarse 1-D latitude grid) couples to
an ocean model on 2 processes (finer grid) the way the Community
Climate System Model uses MCT:

1. the atmosphere accumulates its surface heat flux over several fast
   time steps in an :class:`Accumulator` (the models "do not share a
   common time-step");
2. the time-averaged flux crosses to the ocean grid via sparse-matrix
   interpolation executed as a parallel, multi-field SpMM;
3. a land/ocean mask confines the flux to wet cells, and a merge blends
   an ice-covered fraction in;
4. paired global integrals check flux conservation across the regrid.

Run:  python examples/climate_coupling.py
"""

import numpy as np

from repro.mct import (
    Accumulator,
    AttrVect,
    GeneralGrid,
    GlobalSegMap,
    InterpolationScheduler,
    MCTWorld,
    Router,
    SparseMatrix,
    global_average,
    merge,
)
from repro.simmpi import run_spmd

N_ATM = 24          # atmosphere latitude points
N_OCN = 48          # ocean latitude points (finer)
ATM_RANKS = 3
OCN_RANKS = 2
FAST_STEPS = 6      # atmosphere steps per coupling interval


def conservative_matrix(n_src, n_dst):
    """First-order conservative remap src -> dst on [0, 1] (1-D cells).

    Each destination cell integrates the overlapping source cells
    weighted by overlap fraction — row sums are 1 after area weighting.
    """
    rows, cols, vals = [], [], []
    src_edges = np.linspace(0.0, 1.0, n_src + 1)
    dst_edges = np.linspace(0.0, 1.0, n_dst + 1)
    for i in range(n_dst):
        lo, hi = dst_edges[i], dst_edges[i + 1]
        j0 = np.searchsorted(src_edges, lo, "right") - 1
        j1 = np.searchsorted(src_edges, hi, "left")
        for j in range(j0, j1):
            overlap = min(hi, src_edges[j + 1]) - max(lo, src_edges[j])
            if overlap > 0:
                rows.append(i)
                cols.append(j)
                vals.append(overlap / (hi - lo))
    return np.array(rows), np.array(cols), np.array(vals)


def main():
    rows, cols, vals = conservative_matrix(N_ATM, N_OCN)

    def model(comm):
        name = "atm" if comm.rank < ATM_RANKS else "ocn"
        world = MCTWorld(comm, name)
        mcomm = world.model_comm
        atm_gsmap = GlobalSegMap.block(N_ATM, ATM_RANKS)
        ocn_gsmap = GlobalSegMap.block(N_OCN, OCN_RANKS)
        # The coupler-side router ships atmosphere fields to the ocean
        # decomposition's *source-grid* representation: here the ocean
        # model itself holds the interpolation matrix, so the router
        # carries the atm grid decomposed over ocean ranks.
        atm_on_ocn = GlobalSegMap.block(N_ATM, OCN_RANKS)
        router = Router(world, "atm", "ocn", atm_gsmap, atm_on_ocn)

        if name == "atm":
            pe = world.my_model_rank
            lat = np.linspace(0.0, 1.0, N_ATM)[atm_gsmap.global_indices(pe)]
            acc = Accumulator(["heat_flux", "wind"], len(lat),
                              actions={"heat_flux": "average"})
            # Fast physics loop: flux varies per step; the accumulator
            # integrates it over the coupling interval.
            for step in range(FAST_STEPS):
                sample = AttrVect.from_arrays({
                    "heat_flux": 100.0 * np.sin(np.pi * lat) + step,
                    "wind": np.full(len(lat), 5.0 + step),
                })
                acc.accumulate(sample)
            averaged = acc.value()
            router.transfer(av_send=averaged)
            # Atmosphere-side integral for the conservation check.
            atm_weights = np.full(len(lat), 1.0 / N_ATM)
            local_int = float(np.dot(atm_weights, averaged["heat_flux"]))
            return ("atm", mcomm.allreduce(local_int, op="sum"))

        # --- ocean side -------------------------------------------------
        pe = world.my_model_rank
        incoming = AttrVect(["heat_flux", "wind"],
                            atm_on_ocn.local_size(pe))
        router.transfer(av_recv=incoming)

        # Interpolate atm -> ocn grid: one SpMM for both fields.
        mine = np.isin(rows, ocn_gsmap.global_indices(pe))
        matrix = SparseMatrix(N_OCN, N_ATM, rows[mine], cols[mine],
                              vals[mine], ocn_gsmap, pe)
        sched = InterpolationScheduler(mcomm, matrix, atm_on_ocn)
        on_ocean_grid = sched.apply(mcomm, incoming)

        # Land/ocean mask: first eighth of the domain is land.
        gidx = ocn_gsmap.global_indices(pe)
        ocean_mask = (gidx >= N_OCN // 8).astype(int)
        grid = GeneralGrid(
            coords={"lat": np.linspace(0.0, 1.0, N_OCN)[gidx]},
            weights={"area": np.full(len(gidx), 1.0 / N_OCN)},
            masks={"ocean": ocean_mask})

        # Blend with a 20%-ice-covered polar fraction (paper's merge).
        ice = AttrVect.from_arrays({
            "heat_flux": np.zeros(len(gidx)),
            "wind": np.zeros(len(gidx)),
        })
        ice_frac = np.where(gidx > 0.9 * N_OCN, 0.2, 0.0)
        blended = merge([(on_ocean_grid, 1.0 - ice_frac), (ice, ice_frac)])

        # Conservation check on the unblended field (regrid only).
        ocn_weights = np.full(len(gidx), 1.0 / N_OCN)
        local_int = float(np.dot(ocn_weights, on_ocean_grid["heat_flux"]))
        total = mcomm.allreduce(local_int, op="sum")
        avg = global_average(mcomm, blended,
                             grid.masked_weight("area", "ocean"))
        return ("ocn", total, avg["heat_flux"])

    results = run_spmd(ATM_RANKS + OCN_RANKS, model)
    atm_int = results[0][1]
    ocn_int = results[ATM_RANKS][1]
    sst_avg = results[ATM_RANKS][2]
    print(f"atmosphere flux integral : {atm_int:10.4f}")
    print(f"ocean flux integral      : {ocn_int:10.4f}")
    drift = abs(atm_int - ocn_int) / abs(atm_int)
    print(f"conservation drift       : {drift:.2e}")
    print(f"masked ocean-average flux: {sst_avg:10.4f}")
    assert drift < 1e-12, "conservative remap leaked flux"
    print("flux conserved across the atm->ocn regrid.")


if __name__ == "__main__":
    main()
