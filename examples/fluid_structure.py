#!/usr/bin/env python
"""Fluid-structure coupling through PRMI (paper §2.4 / §4.2).

A fluid solver on M = 4 processes drives a structure solver on N = 2
processes through a distributed CCA framework:

* each coupling step, the fluid makes a **collective** invocation
  ``apply_load`` whose traction field is a **parallel argument** — the
  framework redistributes it from the fluid's 4-way decomposition to
  the structure's 2-way decomposition automatically;
* the structure returns the maximum displacement (every fluid rank gets
  the return value, with ghost invocations bridging M ≠ N);
* the fluid also sends one-way ``progress`` notifications that never
  block its time loop.

Run:  python examples/fluid_structure.py
"""

import numpy as np

from repro.cca import Component
from repro.cca.distributed import DistributedFramework
from repro.cca.sidl import arg, method, port
from repro.dad import DistArrayDescriptor, DistributedArray
from repro.dad.template import block_template
from repro.prmi import ParallelArg
from repro.simmpi import NameService, run_coupled

INTERFACE_POINTS = (64,)    # the shared wet surface, as a 1-D field
FLUID_RANKS = 4
STRUCT_RANKS = 2
STEPS = 3

STRUCTURE_PORT = port(
    "StructurePort",
    method("apply_load", arg("step"), arg("traction", kind="parallel")),
    method("progress", arg("step"), oneway=True, returns=False),
)


class StructureSolver(Component):
    """Linear 'structure': displacement = compliance * traction."""

    COMPLIANCE = 0.01

    def __init__(self):
        self.progress_log = []

    def set_services(self, services):
        super().set_services(services)
        services.add_provides_port("structure", STRUCTURE_PORT, self)
        comm = services.comm
        # Our preferred layout for the incoming traction field.
        self.layout = DistArrayDescriptor(
            block_template(INTERFACE_POINTS, (comm.size,)), np.float64)

    def apply_load(self, step, traction):
        comm = self.services.comm
        # Lazy parallel argument: transfer happens right here, into OUR
        # decomposition (the paper's delayed-transfer strategy).
        field = traction.materialize(self.layout)
        local_max = max((float(np.abs(a).max())
                         for _, a in field.iter_patches()), default=0.0)
        displacement = self.COMPLIANCE * comm.allreduce(local_max, op="max")
        return displacement

    def progress(self, step):
        self.progress_log.append(step)


def main():
    ns = NameService()
    fluid_desc = DistArrayDescriptor(
        block_template(INTERFACE_POINTS, (FLUID_RANKS,)), np.float64)

    def structure_job(comm):
        fw = DistributedFramework(comm, ns)
        solver = fw.create_component("structure", StructureSolver)
        endpoint = fw.serve_connection("structure", "structure", "fsi")
        # Each coupling step: one load application + one progress ping.
        for _ in range(STEPS):
            endpoint.serve_one()   # apply_load
            endpoint.serve_one()   # progress (one-way)
        return solver.progress_log

    def fluid_job(comm):
        fw = DistributedFramework(comm, ns)

        class FluidSolver(Component):
            def set_services(self, services):
                Component.set_services(self, services)
                services.register_uses_port("structure", STRUCTURE_PORT)

        fw.create_component("fluid", FluidSolver)
        fw.connect_remote("fluid", "structure", "fsi")
        structure = fw._services["fluid"].get_port("structure")

        x = np.linspace(0.0, 1.0, INTERFACE_POINTS[0])
        displacements = []
        for step in range(STEPS):
            # Pressure wave travelling along the interface.
            global_traction = 1000.0 * np.sin(
                2 * np.pi * (x - 0.1 * step)) ** 2
            local = DistributedArray.from_global(
                fluid_desc, comm.rank, global_traction)
            d = structure.apply_load(
                step=step, traction=ParallelArg(local))
            structure.progress(step=step)   # returns immediately
            displacements.append(d)
        return displacements

    out = run_coupled([
        ("structure", STRUCT_RANKS, structure_job, ()),
        ("fluid", FLUID_RANKS, fluid_job, ()),
    ])

    print("per-step max displacement (same value on every fluid rank):")
    for step in range(STEPS):
        per_rank = [out["fluid"][r][step] for r in range(FLUID_RANKS)]
        assert len(set(per_rank)) == 1, "ghost returns disagreed"
        print(f"  step {step}: {per_rank[0]:.4f}")
    print(f"structure progress log: {out['structure'][0]}")
    assert out["structure"][0] == list(range(STEPS))
    print("fluid (M=4) and structure (N=2) coupled via collective PRMI "
          "with a parallel traction argument.")


if __name__ == "__main__":
    main()
