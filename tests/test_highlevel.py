"""High-level convenience API tests (§6 simplifications)."""

import numpy as np
import pytest

from repro.dad import DistArrayDescriptor, DistributedArray
from repro.dad.template import block_template
from repro.errors import ConnectionError_
from repro.highlevel import Coupler, redistribute
from repro.simmpi import NameService, run_coupled


class TestRedistribute:
    def test_roundtrip(self):
        g = np.arange(60.0).reshape(6, 10)
        out = redistribute(g, (2, 1), (1, 5))
        np.testing.assert_array_equal(out, g)

    def test_3d_fig1(self):
        g = np.random.default_rng(0).random((6, 6, 6))
        out = redistribute(g, (2, 2, 2), (3, 3, 3))
        np.testing.assert_array_equal(out, g)

    def test_dtype_preserved(self):
        g = np.arange(12, dtype=np.int64).reshape(3, 4)
        out = redistribute(g, (3, 1), (1, 2))
        assert out.dtype == np.int64
        np.testing.assert_array_equal(out, g)


class TestCoupler:
    def test_publish_subscribe(self):
        g = np.arange(48.0).reshape(8, 6)
        src_desc = DistArrayDescriptor(block_template((8, 6), (2, 1)))
        dst_desc = DistArrayDescriptor(block_template((8, 6), (1, 3)))
        ns = NameService()

        def producer(comm):
            coupler = Coupler("temp", ns)
            da = DistributedArray.from_global(src_desc, comm.rank, g)
            return coupler.publish(comm, da)

        def consumer(comm):
            coupler = Coupler("temp", ns)
            return coupler.subscribe(comm, dst_desc)

        out = run_coupled([("p", 2, producer, ()), ("c", 3, consumer, ())])
        np.testing.assert_array_equal(
            DistributedArray.assemble(out["c"]), g)
        assert sum(out["p"]) == 48

    def test_persistent_channel(self):
        src_desc = DistArrayDescriptor(block_template((6,), (2,)))
        dst_desc = DistArrayDescriptor(block_template((6,), (3,)))
        ns = NameService()
        steps = 4

        def producer(comm):
            coupler = Coupler("wave", ns)
            da = DistributedArray.allocate(src_desc, comm.rank)
            chan = coupler.open(comm, "source", da)
            for step in range(steps):
                da.fill(float(step))
                chan.push()
            return chan.transfers

        def consumer(comm):
            coupler = Coupler("wave", ns)
            chan = coupler.open(comm, "destination", dst_desc)
            seen = []
            for _ in range(steps):
                da = chan.pull()
                seen.append(float(next(iter(da.patches.values()))[0]))
            return seen

        out = run_coupled([("p", 2, producer, ()), ("c", 3, consumer, ())])
        assert out["p"] == [steps, steps]
        assert out["c"][0] == [0.0, 1.0, 2.0, 3.0]

    def test_channel_role_enforcement(self):
        src_desc = DistArrayDescriptor(block_template((4,), (1,)))
        ns = NameService()

        def producer(comm):
            coupler = Coupler("x", ns)
            da = DistributedArray.allocate(src_desc, comm.rank)
            chan = coupler.open(comm, "source", da)
            with pytest.raises(ConnectionError_):
                chan.pull()
            chan.push()
            return True

        def consumer(comm):
            coupler = Coupler("x", ns)
            chan = coupler.open(comm, "destination", src_desc)
            with pytest.raises(ConnectionError_):
                chan.push()
            chan.pull()
            return True

        out = run_coupled([("p", 1, producer, ()), ("c", 1, consumer, ())])
        assert all(out["p"]) and all(out["c"])

    def test_bad_role(self):
        ns = NameService()

        def one(comm):
            with pytest.raises(ConnectionError_):
                Coupler("y", ns).open(comm, "middle", None)
            return True

        from repro.simmpi import run_spmd
        assert all(run_spmd(1, one))
