"""Baseline redistribution strategies: correctness and serialization shape."""

import numpy as np

from repro.baselines import redistribute_elementwise, redistribute_via_root
from repro.dad import DistArrayDescriptor, DistributedArray
from repro.dad.template import block_template
from repro.schedule import build_region_schedule, execute_intra
from repro.simmpi import run_spmd


def _run(fn, src_desc, dst_desc, g, n):
    def main(comm):
        src = (DistributedArray.from_global(src_desc, comm.rank, g)
               if comm.rank < src_desc.nranks else None)
        dst = (DistributedArray.allocate(dst_desc, comm.rank)
               if comm.rank < dst_desc.nranks else None)
        fn(comm, src_desc, dst_desc, src_array=src, dst_array=dst,
           src_ranks=range(src_desc.nranks),
           dst_ranks=range(dst_desc.nranks))
        return dst, comm.counters.snapshot()

    results = run_spmd(n, main)
    parts = [r[0] for r in results if r[0] is not None]
    return DistributedArray.assemble(parts), results[0][1]


def test_via_root_correct():
    g = np.arange(48.0).reshape(8, 6)
    src = DistArrayDescriptor(block_template((8, 6), (2, 2)), g.dtype)
    dst = DistArrayDescriptor(block_template((8, 6), (4, 1)), g.dtype)
    out, _ = _run(redistribute_via_root, src, dst, g, 4)
    np.testing.assert_array_equal(out, g)


def test_elementwise_correct():
    g = np.arange(24.0).reshape(4, 6)
    src = DistArrayDescriptor(block_template((4, 6), (2, 1)), g.dtype)
    dst = DistArrayDescriptor(block_template((4, 6), (1, 3)), g.dtype)
    out, _ = _run(redistribute_elementwise, src, dst, g, 3)
    np.testing.assert_array_equal(out, g)


def test_root_is_hotspot_vs_schedule():
    """The serialized baseline funnels ~2x the array through rank 0; the
    schedule executor spreads traffic across rank pairs."""
    g = np.arange(16.0 * 16).reshape(16, 16)
    src = DistArrayDescriptor(block_template((16, 16), (2, 2)), g.dtype)
    dst = DistArrayDescriptor(block_template((16, 16), (4, 1)), g.dtype)

    _, root_counters = _run(redistribute_via_root, src, dst, g, 4)

    sched = build_region_schedule(src, dst)

    def sched_main(comm):
        s = DistributedArray.from_global(src, comm.rank, g)
        d = DistributedArray.allocate(dst, comm.rank)
        execute_intra(sched, comm, src_array=s, dst_array=d)
        return comm.counters.snapshot()

    sched_counters = run_spmd(4, sched_main)[0]

    total_bytes = g.nbytes
    root_rx = root_counters.get("rank0.rx_bytes", 0)
    sched_rx_max = max(sched_counters.get(f"rank{r}.rx_bytes", 0)
                       for r in range(4))
    # Root baseline: rank 0 receives the whole array (minus its own part)
    assert root_rx >= total_bytes * 0.5
    # Schedule: the hottest rank receives about 1/nranks of the array
    assert sched_rx_max <= total_bytes * 0.5
    assert sched_rx_max < root_rx


def test_elementwise_message_explosion():
    g = np.arange(36.0).reshape(6, 6)
    src = DistArrayDescriptor(block_template((6, 6), (2, 1)), g.dtype)
    dst = DistArrayDescriptor(block_template((6, 6), (1, 2)), g.dtype)

    _, elem_counters = _run(redistribute_elementwise, src, dst, g, 2)

    sched = build_region_schedule(src, dst)
    assert elem_counters["msgs"] >= g.size            # one per element
    assert sched.message_count <= 4                   # four region messages
