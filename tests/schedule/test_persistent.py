"""Persistent-channel engines: zero-allocation steady state, preposted
recv-into-destination correctness, and byte-identity of the zero-copy
transport (move/borrow semantics) with the copy-semantics reference
across all distribution kinds."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.dad import (
    Block,
    BlockCyclic,
    CartesianTemplate,
    Cyclic,
    DistArrayDescriptor,
    DistributedArray,
    GeneralizedBlock,
)
from repro.dad.template import block_template
from repro.schedule import build_region_schedule
from repro.simmpi import payload
from repro.simmpi.intercomm import couple_jobs
from repro.simmpi.runner import Job
from repro.simmpi.transport import ThreadTransport
from repro.util.counters import TRANSPORT_STATS


class RmaThreadTransport(ThreadTransport):
    """In-process harness for the one-sided tier: ranks are threads of
    one process, so every rank can map every window — the engines run
    the real RMA protocol without forked processes."""

    rma_capable = True


def _rma_job(n):
    return Job(n, transport_factory=lambda n_, abort, progress, block_state:
               RmaThreadTransport(n_, abort, progress=progress,
                                  block_state=block_state))


@pytest.fixture(autouse=True)
def debug_off():
    payload.set_transport_debug(False)
    yield
    payload.set_transport_debug(False)


@st.composite
def axis_for(draw, extent):
    kind = draw(st.sampled_from(
        ["block", "cyclic", "block_cyclic", "genblock"]))
    nprocs = draw(st.integers(1, min(3, extent)))
    if kind == "block":
        return Block(extent, nprocs)
    if kind == "cyclic":
        return Cyclic(extent, nprocs)
    if kind == "block_cyclic":
        return BlockCyclic(extent, nprocs, draw(st.integers(1, extent)))
    cuts = sorted(draw(st.lists(st.integers(0, extent),
                                min_size=nprocs - 1, max_size=nprocs - 1)))
    bounds = [0] + cuts + [extent]
    return GeneralizedBlock(extent, [b - a for a, b in zip(bounds, bounds[1:])])


@st.composite
def template_pairs(draw):
    ndim = draw(st.integers(1, 2))
    shape = tuple(draw(st.integers(2, 9)) for _ in range(ndim))
    src = CartesianTemplate([draw(axis_for(e)) for e in shape])
    dst = CartesianTemplate([draw(axis_for(e)) for e in shape])
    return src, dst


def _engines(src_desc, dst_desc, g):
    """Single-threaded persistent channel: jobs, arrays, and engines."""
    sched = build_region_schedule(src_desc, dst_desc)
    src_job, dst_job = Job(src_desc.nranks), Job(dst_desc.nranks)
    src_inters, dst_inters = couple_jobs(src_job, dst_job)
    src_arrays = [DistributedArray.from_global(src_desc, r, g)
                  for r in range(src_desc.nranks)]
    dst_arrays = [DistributedArray.allocate(dst_desc, r)
                  for r in range(dst_desc.nranks)]
    senders = [sched.persistent_sender(src_inters[r], src_arrays[r])
               for r in range(src_desc.nranks)]
    receivers = [sched.persistent_receiver(dst_inters[r], dst_arrays[r])
                 for r in range(dst_desc.nranks)]
    return src_arrays, dst_arrays, senders, receivers


def _rma_engines(src_desc, dst_desc, g):
    """Single-threaded one-sided channel.  Receivers are constructed
    *first*: their bootstrap window handles are buffered sends the
    sender constructors then drain (the reverse order would block a
    single thread on a recv with nothing in flight)."""
    sched = build_region_schedule(src_desc, dst_desc)
    src_job, dst_job = _rma_job(src_desc.nranks), _rma_job(dst_desc.nranks)
    src_inters, dst_inters = couple_jobs(src_job, dst_job)
    src_arrays = [DistributedArray.from_global(src_desc, r, g)
                  for r in range(src_desc.nranks)]
    dst_arrays = [DistributedArray.allocate(dst_desc, r)
                  for r in range(dst_desc.nranks)]
    receivers = [sched.persistent_receiver(dst_inters[r], dst_arrays[r],
                                           mode="rma")
                 for r in range(dst_desc.nranks)]
    senders = [sched.persistent_sender(src_inters[r], src_arrays[r],
                                       mode="rma")
               for r in range(src_desc.nranks)]
    return src_arrays, dst_arrays, senders, receivers


def _step(senders, receivers, *, armed=True):
    """One deterministic steady-state step: arm, send, complete."""
    if armed:
        for rx in receivers:
            rx.arm()
    for tx in senders:
        tx.step()
    return sum(rx.complete(timeout=30) for rx in receivers)


class TestPersistentEquivalence:
    @settings(max_examples=30, deadline=None)
    @given(template_pairs(), st.integers(0, 2 ** 31 - 1))
    def test_steady_state_matches_ground_truth(self, pair, seed):
        """Multiple persistent steps (changing data every step) must be
        byte-identical to the copy-semantics ground truth on every
        destination rank, for every distribution kind."""
        src_t, dst_t = pair
        src_desc = DistArrayDescriptor(src_t, np.float64)
        dst_desc = DistArrayDescriptor(dst_t, np.float64)
        rng = np.random.default_rng(seed)
        g = np.asarray(rng.integers(0, 1000, size=src_t.shape),
                       dtype=np.float64)
        src_arrays, dst_arrays, senders, receivers = _engines(
            src_desc, dst_desc, g)
        total = int(np.prod(src_t.shape))
        for _i in range(3):
            got = _step(senders, receivers)
            assert got == total
            for d, arr in enumerate(dst_arrays):
                expect = DistributedArray.from_global(dst_desc, d, g)
                assert arr.flat_local().tobytes() == \
                    expect.flat_local().tobytes()
            # mutate the source for the next step
            g = g + 1.0
            for s, arr in enumerate(src_arrays):
                arr.flat_local()[:] = DistributedArray.from_global(
                    src_desc, s, g).flat_local()

    @settings(max_examples=15, deadline=None)
    @given(template_pairs(), st.integers(0, 2 ** 31 - 1))
    def test_unarmed_receiver_still_correct(self, pair, seed):
        """Producer running ahead of the consumer (nothing preposted):
        borrows degrade to snapshots, owned buffers queue — results must
        still be exact."""
        src_t, dst_t = pair
        src_desc = DistArrayDescriptor(src_t, np.float64)
        dst_desc = DistArrayDescriptor(dst_t, np.float64)
        g = np.asarray(
            np.random.default_rng(seed).integers(0, 1000, size=src_t.shape),
            dtype=np.float64)
        _, dst_arrays, senders, receivers = _engines(src_desc, dst_desc, g)
        for tx in senders:          # sends fire before any slot is armed
            tx.step()
        got = sum(rx.complete(timeout=30) for rx in receivers)
        assert got == int(np.prod(src_t.shape))
        for d, arr in enumerate(dst_arrays):
            expect = DistributedArray.from_global(dst_desc, d, g)
            assert arr.flat_local().tobytes() == expect.flat_local().tobytes()


class TestZeroAllocationSteadyState:
    def test_pool_stops_allocating_after_warmup(self):
        """The acceptance property: armed steady-state steps perform
        zero pack/recv buffer allocations and zero snapshot copies —
        every byte lands via a pooled buffer or a direct strided write."""
        # 2-D column split fragments into index-array pairs (pooled
        # path) — the hard case; cyclic pairs are pure strided views.
        src_desc = DistArrayDescriptor(block_template((6, 8), (1, 2)))
        dst_desc = DistArrayDescriptor(block_template((6, 8), (1, 4)))
        g = np.arange(48.0).reshape(6, 8)
        _, _, senders, receivers = _engines(src_desc, dst_desc, g)
        _step(senders, receivers)  # warm-up: pools fill, plans compile
        pools = [tx.pool for tx in senders]
        allocs = [p.stats.get("allocations") for p in pools]
        snaps = TRANSPORT_STATS.get("borrow_snapshots")
        wire_allocs = TRANSPORT_STATS.get("alloc_bytes")
        for _ in range(5):
            _step(senders, receivers)
        assert [p.stats.get("allocations") for p in pools] == allocs
        assert TRANSPORT_STATS.get("borrow_snapshots") == snaps
        assert TRANSPORT_STATS.get("alloc_bytes") == wire_allocs
        assert all(p.stats.get("reuses") >= 5 for p in pools
                   if p.stats.get("loans"))

    def test_direct_deliveries_cover_all_pairs(self):
        src_desc = DistArrayDescriptor(CartesianTemplate([Cyclic(48, 2)]))
        dst_desc = DistArrayDescriptor(CartesianTemplate([Cyclic(48, 3)]))
        sched = build_region_schedule(src_desc, dst_desc)
        pairs = sched.pair_count
        g = np.arange(48.0)
        _, _, senders, receivers = _engines(src_desc, dst_desc, g)
        _step(senders, receivers)  # warm-up
        before = TRANSPORT_STATS.get("direct_deliveries")
        _step(senders, receivers)
        assert TRANSPORT_STATS.get("direct_deliveries") == before + pairs


class TestPoisonMode:
    def test_poison_catches_engine_aliasing(self):
        """With REPRO_TRANSPORT_DEBUG the pooled buffers an engine moves
        are poisoned at send time, so any aliasing bug inside the
        transport (or a sender reusing a loaned buffer) surfaces as the
        pattern — while the wire contents stay correct."""
        payload.set_transport_debug(True)
        src_desc = DistArrayDescriptor(block_template((6, 8), (1, 2)))
        dst_desc = DistArrayDescriptor(block_template((6, 8), (1, 4)))
        g = np.arange(48.0).reshape(6, 8)
        _, dst_arrays, senders, receivers = _engines(src_desc, dst_desc, g)
        got = _step(senders, receivers)
        assert got == 48
        for d, arr in enumerate(dst_arrays):
            expect = DistributedArray.from_global(dst_desc, d, g)
            assert arr.flat_local().tobytes() == expect.flat_local().tobytes()
        # the loaned buffers returned to the pools carry the poison
        poisoned = 0
        for tx in senders:
            for bufs in tx.pool._free.values():
                for buf in bufs:
                    assert payload.is_poisoned(buf)
                    poisoned += 1
        assert poisoned > 0


def _close_all(senders, receivers):
    for tx in senders:
        tx.close()
    for rx in receivers:
        rx.close()


class TestRmaEquivalence:
    """One-sided execution tier: the same compiled schedules executed
    as direct window writes must be byte-identical to the two-sided
    ground truth, for every distribution kind."""

    @settings(max_examples=25, deadline=None)
    @given(template_pairs(), st.integers(0, 2 ** 31 - 1))
    def test_rma_steady_state_matches_ground_truth(self, pair, seed):
        src_t, dst_t = pair
        src_desc = DistArrayDescriptor(src_t, np.float64)
        dst_desc = DistArrayDescriptor(dst_t, np.float64)
        rng = np.random.default_rng(seed)
        g = np.asarray(rng.integers(0, 1000, size=src_t.shape),
                       dtype=np.float64)
        src_arrays, dst_arrays, senders, receivers = _rma_engines(
            src_desc, dst_desc, g)
        assert all(tx.mode == "rma" for tx in senders)
        assert all(rx.mode == "rma" for rx in receivers)
        total = int(np.prod(src_t.shape))
        for _i in range(3):
            got = _step(senders, receivers)
            assert got == total
            for d, arr in enumerate(dst_arrays):
                expect = DistributedArray.from_global(dst_desc, d, g)
                assert arr.flat_local().tobytes() == \
                    expect.flat_local().tobytes()
            g = g + 1.0
            for s, arr in enumerate(src_arrays):
                arr.flat_local()[:] = DistributedArray.from_global(
                    src_desc, s, g).flat_local()
        _close_all(senders, receivers)

    def test_rma_steady_state_matches_no_messages(self):
        """The headline property: after bootstrap, RMA steps move data
        with *zero* mailbox matching — the messages_matched counter
        freezes while puts and fences keep counting."""
        src_desc = DistArrayDescriptor(CartesianTemplate([Cyclic(48, 3)]))
        dst_desc = DistArrayDescriptor(CartesianTemplate([Block(48, 4)]))
        g = np.arange(48.0)
        _, _, senders, receivers = _rma_engines(src_desc, dst_desc, g)
        _step(senders, receivers)  # warm-up (bootstrap already drained)
        matched = TRANSPORT_STATS.get("messages_matched")
        puts = TRANSPORT_STATS.get("rma_puts")
        fences = TRANSPORT_STATS.get("rma_fences")
        for _ in range(4):
            _step(senders, receivers)
        assert TRANSPORT_STATS.get("messages_matched") == matched
        assert TRANSPORT_STATS.get("rma_puts") > puts
        assert TRANSPORT_STATS.get("rma_fences") == fences + 4 * 4
        _close_all(senders, receivers)

    def test_rma_zero_steady_state_allocations(self):
        """Index-fragmenting redistributions gather through the pool;
        armed RMA steps must allocate nothing after warm-up."""
        src_desc = DistArrayDescriptor(block_template((6, 8), (1, 2)))
        dst_desc = DistArrayDescriptor(block_template((6, 8), (1, 4)))
        g = np.arange(48.0).reshape(6, 8)
        _, _, senders, receivers = _rma_engines(src_desc, dst_desc, g)
        _step(senders, receivers)
        allocs = [tx.pool.stats.get("allocations") for tx in senders]
        for _ in range(5):
            _step(senders, receivers)
        assert [tx.pool.stats.get("allocations") for tx in senders] == allocs
        _close_all(senders, receivers)

    def test_receiver_array_evacuated_on_close(self):
        """After Channel/engine close the destination array must be
        ordinary private memory again — intact contents, and writes to
        it cannot be observed through the (closed) window."""
        src_desc = DistArrayDescriptor(CartesianTemplate([Cyclic(24, 2)]))
        dst_desc = DistArrayDescriptor(CartesianTemplate([Block(24, 2)]))
        g = np.arange(24.0)
        _, dst_arrays, senders, receivers = _rma_engines(
            src_desc, dst_desc, g)
        _step(senders, receivers)
        wins = [rx._win for rx in receivers]
        _close_all(senders, receivers)
        for d, arr in enumerate(dst_arrays):
            expect = DistributedArray.from_global(dst_desc, d, g)
            assert arr.flat_local().tobytes() == expect.flat_local().tobytes()
        assert all(w is None for w in (rx._win for rx in receivers))
        assert all(w is not None for w in wins)

    def test_rma_falls_back_on_incapable_transport(self):
        """mode="rma" on the plain threads transport (no shared windows
        across real processes to model) degrades to two-sided,
        counted as a fallback — results stay correct."""
        src_desc = DistArrayDescriptor(CartesianTemplate([Cyclic(24, 2)]))
        dst_desc = DistArrayDescriptor(CartesianTemplate([Block(24, 3)]))
        g = np.arange(24.0)
        sched = build_region_schedule(src_desc, dst_desc)
        src_job, dst_job = Job(src_desc.nranks), Job(dst_desc.nranks)
        src_inters, dst_inters = couple_jobs(src_job, dst_job)
        src_arrays = [DistributedArray.from_global(src_desc, r, g)
                      for r in range(src_desc.nranks)]
        dst_arrays = [DistributedArray.allocate(dst_desc, r)
                      for r in range(dst_desc.nranks)]
        before = TRANSPORT_STATS.get("rma_fallbacks")
        receivers = [sched.persistent_receiver(dst_inters[r], dst_arrays[r],
                                               mode="rma")
                     for r in range(dst_desc.nranks)]
        senders = [sched.persistent_sender(src_inters[r], src_arrays[r],
                                           mode="rma")
                   for r in range(src_desc.nranks)]
        assert TRANSPORT_STATS.get("rma_fallbacks") > before
        assert all(e.mode == "two_sided" for e in senders + receivers)
        got = _step(senders, receivers)
        assert got == 24
        for d, arr in enumerate(dst_arrays):
            expect = DistributedArray.from_global(dst_desc, d, g)
            assert arr.flat_local().tobytes() == expect.flat_local().tobytes()

    def test_rma_env_var_selects_mode(self, monkeypatch):
        """REPRO_RMA=1 turns the one-sided tier on without code
        changes; explicit mode always wins."""
        monkeypatch.setenv("REPRO_RMA", "1")
        src_desc = DistArrayDescriptor(CartesianTemplate([Block(12, 2)]))
        dst_desc = DistArrayDescriptor(CartesianTemplate([Block(12, 3)]))
        g = np.arange(12.0)
        sched = build_region_schedule(src_desc, dst_desc)
        src_job, dst_job = _rma_job(2), _rma_job(3)
        src_inters, dst_inters = couple_jobs(src_job, dst_job)
        src_arrays = [DistributedArray.from_global(src_desc, r, g)
                      for r in range(2)]
        dst_arrays = [DistributedArray.allocate(dst_desc, r)
                      for r in range(3)]
        receivers = [sched.persistent_receiver(dst_inters[r], dst_arrays[r])
                     for r in range(3)]
        senders = [sched.persistent_sender(src_inters[r], src_arrays[r])
                   for r in range(2)]
        assert all(e.mode == "rma" for e in senders + receivers)
        assert _step(senders, receivers) == 12
        _close_all(senders, receivers)
