"""Shared fixtures for the schedule test package."""

import pytest

from repro.schedule.indexplan import PLAN_STATS
from repro.util.counters import TRANSPORT_STATS


@pytest.fixture(autouse=True)
def transport_stats():
    """Reset the process-wide transport and plan-compilation counters
    around every test so absolute-value assertions cannot bleed between
    tests under xdist or reordering.  Yields the transport counters."""
    TRANSPORT_STATS.reset()
    PLAN_STATS.reset()
    yield TRANSPORT_STATS
    TRANSPORT_STATS.reset()
    PLAN_STATS.reset()
