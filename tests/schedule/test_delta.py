"""Delta-schedule compiler unit tests: partition/minimality of the
diff, verbatim plan reuse on warm starts, the bounded LRU schedule
cache, and the DRI reorg routing through it."""

import numpy as np
import pytest

from repro.dad import (
    BlockCyclic,
    CartesianTemplate,
    Cyclic,
    DistArrayDescriptor,
    GeneralizedBlock,
)
from repro.dad.template import block_template
from repro.errors import ScheduleError, VerificationError
from repro.schedule import (
    GLOBAL_CACHE,
    ScheduleCache,
    build_region_schedule,
    compile_delta,
    resolve_cache_max,
)
from repro.schedule.delta import DeltaSchedule
from repro.util.counters import REDIST_STATS
from repro.verify.schedule import verify_delta_equivalence


def _gb(sizes):
    return DistArrayDescriptor(
        CartesianTemplate([GeneralizedBlock(sum(sizes), list(sizes))]))


B8 = DistArrayDescriptor(block_template((64,), (8,)))
B10 = DistArrayDescriptor(block_template((64,), (10,)))
GB8 = _gb([10] * 8)
GB10 = _gb([10] * 7 + [4, 3, 3])


# -- the diff ---------------------------------------------------------------


def test_delta_partitions_the_full_schedule():
    full = build_region_schedule(B8, B10)
    delta = compile_delta(B8, B10, full=full)
    assert all(it.src != it.dst for it in delta.migration.items)
    assert all(it.src == it.dst for it in delta.kept_items)
    assert (set(delta.migration.items) | set(delta.kept_items)
            == set(full.items))
    assert delta.moved_elements + delta.kept_elements == 64
    assert delta.migrated_bytes() < full.nbytes(np.float64)


def test_delta_moves_exactly_the_changed_owner_elements():
    old = DistArrayDescriptor(CartesianTemplate([Cyclic(40, 8)]))
    new = DistArrayDescriptor(CartesianTemplate([Cyclic(40, 10)]))
    delta = compile_delta(old, new)
    # k keeps its owner iff k mod 8 == k mod 10, i.e. k mod 40 < 8.
    assert delta.kept_elements == 8
    assert delta.moved_elements == 32


def test_identity_ranks_detected_on_tail_split():
    delta = compile_delta(GB8, GB10)
    assert delta.identity_ranks == frozenset(range(7))
    assert delta.local_plan(0) is None  # identity: no repack at all
    touched = {it.src for it in delta.migration.items} | \
              {it.dst for it in delta.migration.items}
    assert touched.isdisjoint(delta.identity_ranks)


def test_degenerate_resize_moves_nothing():
    delta = compile_delta(B8, DistArrayDescriptor(
        block_template((64,), (8,))))
    assert delta.moved_elements == 0
    assert delta.identity_ranks == frozenset(range(8))


def test_local_repack_round_trips():
    old = DistArrayDescriptor(block_template((64,), (8,)))
    new = DistArrayDescriptor(CartesianTemplate([Cyclic(64, 8)]))
    delta = compile_delta(old, new)
    g = np.arange(64, dtype=np.float64)
    for rank in range(8):
        old_flat = np.concatenate(
            [g[r.to_slices()].reshape(-1) for r in old.local_regions(rank)])
        new_flat = np.full(new.local_volume(rank), -1.0)
        delta.apply_local(rank, old_flat, new_flat)
        # every kept element landed at its new-layout position.
        regions = delta.kept_by_rank.get(rank, [])
        expect = np.full(new.local_volume(rank), -1.0)
        from repro.schedule.indexplan import LocalIndexer
        ix = LocalIndexer(list(new.local_regions(rank)))
        for r in regions:
            expect[ix.region_indices(r)] = g[r.to_slices()].reshape(-1)
        np.testing.assert_array_equal(new_flat, expect)


def test_delta_rejects_shape_and_dtype_mismatch():
    with pytest.raises(ScheduleError):
        compile_delta(B8, DistArrayDescriptor(block_template((32,), (8,))))
    with pytest.raises(ScheduleError):
        compile_delta(B8, DistArrayDescriptor(
            block_template((64,), (8,)), np.float32))


def test_delta_memoized_on_cached_schedule():
    cache = ScheduleCache()
    d1 = compile_delta(B8, B10, cache=cache)
    d2 = compile_delta(B8, B10, cache=cache)
    assert d1 is d2
    assert cache.hits == 1 and cache.misses == 1


# -- the equivalence proof --------------------------------------------------


def test_verify_delta_equivalence_passes():
    proof = verify_delta_equivalence(GB8, GB10)
    assert any("minimality" in c for c in proof.checks)
    assert any("partition" in c for c in proof.checks)


def test_verify_delta_equivalence_catches_tampering():
    full = build_region_schedule(B8, B10)
    delta = compile_delta(B8, B10, full=full)
    # Misclassify: pretend a genuinely-moved item can stay home.
    bad = DeltaSchedule(
        B8, B10,
        type(full)(list(delta.migration.items[1:]),
                   full.src_nranks, full.dst_nranks),
        delta.kept_items + [delta.migration.items[0]])
    with pytest.raises(VerificationError) as exc:
        verify_delta_equivalence(B8, B10, delta=bad)
    assert "minimality" in str(exc.value)


# -- warm starts ------------------------------------------------------------


def _compile_all(sched, src, dst):
    for r in range(src.nranks):
        sched.send_plan(r, src.local_regions(r))
    for r in range(dst.nranks):
        sched.recv_plan(r, dst.local_regions(r))


def test_warm_start_reuses_pairs_verbatim():
    src = DistArrayDescriptor(block_template((80,), (4,)))
    cache = ScheduleCache()
    s1 = cache.get(src, GB8)
    _compile_all(s1, src, GB8)
    REDIST_STATS.reset()
    s2 = cache.get(src, GB10)
    stats = REDIST_STATS.snapshot()
    assert stats["pairs_reused"] > 0
    fresh = build_region_schedule(src, GB10)
    for r in range(src.nranks):
        seeded = s2.plan_if_compiled("send", r)
        if seeded is None:
            continue
        ref = fresh.send_plan(r, src.local_regions(r))
        for a, b in zip(seeded.pairs, ref.pairs):
            assert (a.peer, a.size, a.lo, a.step) == \
                   (b.peer, b.size, b.lo, b.step)
            assert (a.idx is None) == (b.idx is None)
            if a.idx is not None:
                np.testing.assert_array_equal(a.idx, b.idx)


def test_warm_start_chains_across_resizes():
    """8→10→12: the (8→10) entry seeds the (10→12) miss even though
    the shared descriptor sits on opposite sides of the two keys."""
    gb12 = _gb([10] * 7 + [4, 3, 2, 1])
    cache = ScheduleCache()
    s1 = cache.get(GB8, GB10)
    _compile_all(s1, GB8, GB10)
    REDIST_STATS.reset()
    cache.get(GB10, gb12)
    assert REDIST_STATS.get("pairs_reused") > 0


def test_warm_start_never_reuses_across_changed_layouts():
    """A cyclic resize changes every rank's layout: nothing may be
    seeded, and the schedule must still verify."""
    c8 = DistArrayDescriptor(CartesianTemplate([Cyclic(40, 8)]))
    c10 = DistArrayDescriptor(CartesianTemplate([Cyclic(40, 10)]))
    src = DistArrayDescriptor(block_template((40,), (4,)))
    cache = ScheduleCache()
    s1 = cache.get(src, c8)
    _compile_all(s1, src, c8)
    REDIST_STATS.reset()
    s2 = cache.get(src, c10)
    # src-side layouts unchanged -> send pairs with identical wire
    # regions may be reused; recv side (all layouts changed) may not.
    for r in range(c10.nranks):
        assert s2.plan_if_compiled("recv", r) is None
    from repro.verify.schedule import verify_schedule
    verify_schedule(s2, src, c10)


# -- the bounded cache ------------------------------------------------------


def test_cache_lru_eviction_and_counters():
    cache = ScheduleCache(max_entries=2)
    cache.get(B8, B10)
    cache.get(GB8, GB10)
    cache.get(B8, B10)  # refresh recency
    cache.get(B10, B8)  # evicts (GB8, GB10), the least recently used
    assert cache.stats() == {"hits": 1, "misses": 3,
                             "evictions": 1, "entries": 2}
    cache.get(B8, B10)
    assert cache.hits == 2
    cache.get(GB8, GB10)
    assert cache.misses == 4  # was evicted, so a miss again
    cache.clear()
    assert cache.stats() == {"hits": 0, "misses": 0,
                             "evictions": 0, "entries": 0}


def test_cache_max_env_knob(monkeypatch):
    monkeypatch.setenv("REPRO_SCHEDULE_CACHE_MAX", "1")
    cache = ScheduleCache()
    assert cache.max_entries == 1
    cache.get(B8, B10)
    cache.get(GB8, GB10)
    assert len(cache) == 1 and cache.evictions == 1
    monkeypatch.setenv("REPRO_SCHEDULE_CACHE_MAX", "0")  # unbounded
    cache.get(B8, B10)
    cache.get(B10, B8)
    assert len(cache) == 3
    monkeypatch.setenv("REPRO_SCHEDULE_CACHE_MAX", "-3")
    with pytest.raises(ScheduleError):
        resolve_cache_max()
    monkeypatch.setenv("REPRO_SCHEDULE_CACHE_MAX", "lots")
    with pytest.raises(ScheduleError):
        resolve_cache_max()


def test_resolve_cache_max_explicit_overrides_env(monkeypatch):
    monkeypatch.setenv("REPRO_SCHEDULE_CACHE_MAX", "7")
    assert resolve_cache_max() == 7
    assert resolve_cache_max(3) == 3
    monkeypatch.delenv("REPRO_SCHEDULE_CACHE_MAX")
    from repro.schedule.builder import DEFAULT_SCHEDULE_CACHE_MAX
    assert resolve_cache_max() == DEFAULT_SCHEDULE_CACHE_MAX


# -- DRI reorg routing ------------------------------------------------------


def test_dri_reorg_shares_the_schedule_cache():
    from repro.dri.dataset import BLOCK, DRIDataset
    from repro.dri.reorg import DRIReorg

    cache = ScheduleCache()
    src = DRIDataset((64,), [BLOCK(8)])
    dst = DRIDataset((64,), [BLOCK(10)])
    r1 = DRIReorg(src, dst, cache=cache)
    r2 = DRIReorg(src, dst, cache=cache)
    assert r1.schedule is r2.schedule
    assert cache.stats()["hits"] == 1 and cache.stats()["misses"] == 1


def test_dri_reorg_defaults_to_global_cache():
    from repro.dri.dataset import BLOCK, DRIDataset
    from repro.dri.reorg import DRIReorg

    src = DRIDataset((48,), [BLOCK(6)])
    dst = DRIDataset((48,), [BLOCK(8)])
    before = len(GLOBAL_CACHE)
    hits0 = GLOBAL_CACHE.hits
    DRIReorg(src, dst)
    DRIReorg(src, dst)
    assert GLOBAL_CACHE.hits == hits0 + 1
    assert len(GLOBAL_CACHE) >= before
