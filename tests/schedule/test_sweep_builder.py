"""Equivalence of the schedule engines: sweep, structured, all-pairs.

Property-style guarantees behind the fast-path rewrite: every engine
must produce *element-identical* schedules (same (src, dst, region)
triples in the same deterministic order) for random template pairs over
block / cyclic / block-cyclic / generalized-block / collapsed /
explicit distributions, so dispatching between them can never change
what moves on the wire.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.dad import (
    Block,
    BlockCyclic,
    CartesianTemplate,
    Collapsed,
    Cyclic,
    DistArrayDescriptor,
    GeneralizedBlock,
)
from repro.dad.template import ExplicitTemplate, block_template
from repro.schedule import (
    ScheduleCache,
    build_allpairs_schedule,
    build_block_schedule,
    build_region_schedule,
    build_structured_schedule,
    build_sweep_schedule,
)
from repro.schedule.builder import _is_structured, _overlap_pairs_1d
from repro.util.regions import Region


def desc(template):
    return DistArrayDescriptor(template, np.float64)


def triples(sched):
    return [(it.src, it.dst, it.region) for it in sched.items]


@st.composite
def axis_for(draw, extent):
    kind = draw(st.sampled_from(
        ["collapsed", "block", "cyclic", "block_cyclic", "genblock"]))
    if kind == "collapsed":
        return Collapsed(extent)
    nprocs = draw(st.integers(1, min(4, extent)))
    if kind == "block":
        return Block(extent, nprocs)
    if kind == "cyclic":
        return Cyclic(extent, nprocs)
    if kind == "block_cyclic":
        return BlockCyclic(extent, nprocs, draw(st.integers(1, extent)))
    cuts = sorted(draw(st.lists(st.integers(0, extent),
                                min_size=nprocs - 1, max_size=nprocs - 1)))
    bounds = [0] + cuts + [extent]
    return GeneralizedBlock(extent, [b - a for a, b in zip(bounds, bounds[1:])])


@st.composite
def template_pairs(draw):
    ndim = draw(st.integers(1, 3))
    shape = tuple(draw(st.integers(2, 9)) for _ in range(ndim))
    src = CartesianTemplate([draw(axis_for(e)) for e in shape])
    dst = CartesianTemplate([draw(axis_for(e)) for e in shape])
    return src, dst


class TestEngineEquivalence:
    @settings(max_examples=60, deadline=None)
    @given(template_pairs())
    def test_all_engines_identical_on_cartesian_pairs(self, pair):
        src, dst = desc(pair[0]), desc(pair[1])
        reference = build_allpairs_schedule(src, dst)
        assert triples(build_sweep_schedule(src, dst)) == triples(reference)
        assert triples(build_structured_schedule(src, dst)) == triples(reference)
        dispatched = build_region_schedule(src, dst)
        assert triples(dispatched) == triples(reference)
        dispatched.validate(src, dst)

    @settings(max_examples=25, deadline=None)
    @given(template_pairs())
    def test_force_general_identical(self, pair):
        src, dst = desc(pair[0]), desc(pair[1])
        assert (triples(build_region_schedule(src, dst, force_general=True))
                == triples(build_allpairs_schedule(src, dst)))

    def test_explicit_pair_uses_sweep(self):
        src = desc(ExplicitTemplate((6, 6), [
            (0, Region((0, 0), (2, 6))),
            (1, Region((2, 0), (6, 3))),
            (2, Region((2, 3), (6, 6))),
        ]))
        dst = desc(ExplicitTemplate((6, 6), [
            (0, Region((0, 0), (6, 1))),
            (1, Region((0, 1), (6, 6))),
        ]))
        assert not _is_structured(src) and not _is_structured(dst)
        sched = build_region_schedule(src, dst)
        assert triples(sched) == triples(build_allpairs_schedule(src, dst))
        sched.validate(src, dst)

    def test_explicit_to_cyclic_uses_structured_side(self):
        src = desc(ExplicitTemplate((8,), [
            (0, Region((0,), (5,))),
            (1, Region((5,), (8,))),
        ]))
        dst = desc(CartesianTemplate([Cyclic(8, 3)]))
        sched = build_region_schedule(src, dst)
        assert triples(sched) == triples(build_allpairs_schedule(src, dst))
        sched.validate(src, dst)

    def test_block_fast_path_delegates(self):
        src = desc(block_template((12, 12), (2, 2)))
        dst = desc(block_template((12, 12), (3, 3)))
        assert (triples(build_block_schedule(src, dst))
                == triples(build_allpairs_schedule(src, dst)))


class TestSweepPrimitive:
    def test_overlap_pairs_basic(self):
        a = [(0, 4), (4, 8)]
        b = [(2, 6)]
        assert sorted(_overlap_pairs_1d(a, b)) == [(0, 0), (1, 0)]

    def test_touching_intervals_do_not_overlap(self):
        assert _overlap_pairs_1d([(0, 4)], [(4, 8)]) == []

    def test_empty_intervals_skipped(self):
        assert _overlap_pairs_1d([(3, 3)], [(0, 9)]) == []

    def test_identical_los(self):
        assert sorted(_overlap_pairs_1d([(2, 5)], [(2, 3)])) == [(0, 0)]

    def test_output_sensitive_pair_count(self):
        # n disjoint unit intervals on each side, aligned: n pairs, not n².
        n = 50
        iv = [(i, i + 1) for i in range(n)]
        assert sorted(_overlap_pairs_1d(iv, iv)) == [(i, i) for i in range(n)]


class TestScheduleCacheKwargsKey:
    def test_force_general_not_served_fast_path_schedule(self):
        cache = ScheduleCache()
        src = desc(block_template((8, 8), (2, 2)))
        dst = desc(block_template((8, 8), (4, 1)))
        plain = cache.get(src, dst)
        general = cache.get(src, dst, force_general=True)
        assert plain is not general
        assert cache.misses == 2
        # each variant still hits its own entry
        assert cache.get(src, dst) is plain
        assert cache.get(src, dst, force_general=True) is general
        assert cache.hits == 2

    def test_kwarg_order_insensitive(self):
        calls = []

        def builder(src, dst, **kwargs):
            calls.append(kwargs)
            return build_region_schedule(src, dst)

        cache = ScheduleCache(builder)
        src = desc(block_template((4,), (2,)))
        dst = desc(block_template((4,), (4,)))
        cache.get(src, dst, force_general=False)
        cache.get(src, dst, force_general=False)
        assert len(calls) == 1


class TestStructuredRejects:
    def test_requires_one_structured_side(self):
        from repro.errors import ScheduleError
        exp = desc(ExplicitTemplate((4,), [(0, Region((0,), (4,)))]))
        with pytest.raises(ScheduleError):
            build_structured_schedule(exp, exp)
