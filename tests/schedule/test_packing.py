"""Message coalescing: packed execution must match unpacked byte-for-byte
and collapse the wire traffic to one message per communicating pair."""

import numpy as np
import pytest

from repro.dad import (
    BlockCyclic,
    CartesianTemplate,
    Cyclic,
    DistArrayDescriptor,
    DistributedArray,
)
from repro.dad.template import block_template
from repro.errors import ScheduleError
from repro.schedule import (
    build_region_schedule,
    execute_inter,
    execute_intra,
    pack_regions,
    region_offsets,
    unpack_regions,
)
from repro.simmpi import NameService, run_coupled, run_spmd


def _pairs(schedule):
    """Distinct (src, dst) rank pairs the schedule communicates over."""
    return {(it.src, it.dst) for it in schedule.items}


def _redistribute(src_desc, dst_desc, g, *, packed):
    sched = build_region_schedule(src_desc, dst_desc)
    n = max(src_desc.nranks, dst_desc.nranks)

    def main(comm):
        src = (DistributedArray.from_global(src_desc, comm.rank, g)
               if comm.rank < src_desc.nranks else None)
        dst = (DistributedArray.allocate(dst_desc, comm.rank)
               if comm.rank < dst_desc.nranks else None)
        execute_intra(sched, comm, src_array=src, dst_array=dst,
                      src_ranks=range(src_desc.nranks),
                      dst_ranks=range(dst_desc.nranks), packed=packed)
        # counters are shared per job; snapshot after all threads join
        return dst, comm.counters

    results = run_spmd(n, main)
    parts = [r[0] for r in results if r[0] is not None]
    return DistributedArray.assemble(parts), results[0][1].snapshot(), sched


CASES = [
    (block_template((12, 10), (2, 2)), block_template((12, 10), (4, 1))),
    (CartesianTemplate([BlockCyclic(12, 2, 3), Cyclic(10, 2)]),
     CartesianTemplate([Cyclic(12, 3), BlockCyclic(10, 2, 4)])),
    (CartesianTemplate([Cyclic(16, 4)]), block_template((16,), (2,))),
]


class TestPackedExecution:
    @pytest.mark.parametrize("src_t,dst_t", CASES)
    def test_packed_matches_unpacked_byte_for_byte(self, src_t, dst_t):
        g = np.random.default_rng(7).random(src_t.shape)
        src_desc = DistArrayDescriptor(src_t, g.dtype)
        dst_desc = DistArrayDescriptor(dst_t, g.dtype)
        out_packed, _, _ = _redistribute(src_desc, dst_desc, g, packed=True)
        out_plain, _, _ = _redistribute(src_desc, dst_desc, g, packed=False)
        assert out_packed.tobytes() == out_plain.tobytes()
        assert out_packed.tobytes() == g.tobytes()

    @pytest.mark.parametrize("src_t,dst_t", CASES)
    def test_packed_message_count_is_pair_count(self, src_t, dst_t):
        g = np.arange(np.prod(src_t.shape), dtype=np.float64).reshape(
            src_t.shape)
        src_desc = DistArrayDescriptor(src_t, g.dtype)
        dst_desc = DistArrayDescriptor(dst_t, g.dtype)
        _, packed_counters, sched = _redistribute(
            src_desc, dst_desc, g, packed=True)
        _, plain_counters, _ = _redistribute(
            src_desc, dst_desc, g, packed=False)
        assert packed_counters["msgs"] == len(_pairs(sched))
        assert packed_counters["msgs"] == sched.pair_count
        assert plain_counters["msgs"] == sched.message_count
        # data bytes on the wire are identical — packing adds no padding
        assert packed_counters["bytes"] == plain_counters["bytes"]

    def test_packed_inter_job(self):
        g = np.arange(60.0).reshape(6, 10)
        src_desc = DistArrayDescriptor(
            CartesianTemplate([Cyclic(6, 3), Cyclic(10, 1)]), g.dtype)
        dst_desc = DistArrayDescriptor(block_template((6, 10), (1, 2)),
                                       g.dtype)
        sched = build_region_schedule(src_desc, dst_desc)
        ns = NameService()

        def producer(comm):
            inter = ns.accept("packed-xfer", comm)
            src = DistributedArray.from_global(src_desc, comm.rank, g)
            sent = execute_inter(sched, inter, "src", src)
            return sent, comm.counters  # shared per job; read after join

        def consumer(comm):
            inter = ns.connect("packed-xfer", comm)
            dst = DistributedArray.allocate(dst_desc, comm.rank)
            execute_inter(sched, inter, "dst", dst)
            return dst

        out = run_coupled([
            ("producer", 3, producer, ()),
            ("consumer", 2, consumer, ()),
        ])
        np.testing.assert_array_equal(
            DistributedArray.assemble(list(out["consumer"])), g)
        assert sum(r[0] for r in out["producer"]) == g.size
        # inter_msgs is counted on the sending job: one per communicating pair
        inter_msgs = out["producer"][0][1].get("inter_msgs")
        assert inter_msgs == len(_pairs(sched))
        assert inter_msgs <= sched.message_count


class TestPackPrimitives:
    def test_roundtrip(self):
        desc = DistArrayDescriptor(
            CartesianTemplate([Cyclic(9, 3), BlockCyclic(8, 2, 3)]))
        g = np.random.default_rng(1).random((9, 8))
        src = DistributedArray.from_global(desc, 0, g)
        dst = DistributedArray.allocate(desc, 0)
        regions = list(desc.local_regions(0))
        buf = pack_regions(src, regions)
        assert buf.ndim == 1 and buf.size == sum(r.volume for r in regions)
        assert unpack_regions(dst, regions, buf) == buf.size
        for r in regions:
            np.testing.assert_array_equal(dst.local_view(r),
                                          src.local_view(r))

    def test_offsets(self):
        desc = DistArrayDescriptor(CartesianTemplate([Cyclic(6, 2)]))
        regions = list(desc.local_regions(0))
        offs = region_offsets(regions)
        assert offs[0] == 0 and offs[-1] == sum(r.volume for r in regions)
        assert len(offs) == len(regions) + 1

    def test_size_mismatch_rejected(self):
        desc = DistArrayDescriptor(block_template((4,), (1,)))
        dst = DistributedArray.allocate(desc, 0)
        regions = list(desc.local_regions(0))
        with pytest.raises(ScheduleError):
            unpack_regions(dst, regions, np.zeros(3))
