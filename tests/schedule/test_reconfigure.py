"""Elastic re-decomposition: ``reconfigure`` moves only changed bytes
and is byte-identical to a full redistribute.

The property test is the satellite acceptance gate: across random
m→m′ resizes (grow, shrink, same-size redistribution) on both
execution backends, migrating the delta over a live array must
reassemble to exactly the original — i.e. exactly what tearing down
and fully redistributing would produce.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.dad import (
    Block,
    BlockCyclic,
    CartesianTemplate,
    Collapsed,
    Cyclic,
    DistArrayDescriptor,
    DistributedArray,
    GeneralizedBlock,
)
from repro.dad.template import block_template
from repro.errors import ScheduleError
from repro.highlevel import reconfigure
from repro.schedule import ScheduleCache
from repro.simmpi import run_spmd
from repro.util.counters import REDIST_STATS


@st.composite
def axis_for(draw, extent):
    kind = draw(st.sampled_from(
        ["collapsed", "block", "cyclic", "block_cyclic", "genblock"]))
    if kind == "collapsed":
        return Collapsed(extent)
    nprocs = draw(st.integers(1, min(3, extent)))
    if kind == "block":
        return Block(extent, nprocs)
    if kind == "cyclic":
        return Cyclic(extent, nprocs)
    if kind == "block_cyclic":
        return BlockCyclic(extent, nprocs, draw(st.integers(1, extent)))
    cuts = sorted(draw(st.lists(st.integers(0, extent),
                                min_size=nprocs - 1, max_size=nprocs - 1)))
    bounds = [0] + cuts + [extent]
    return GeneralizedBlock(extent, [b - a for a, b in zip(bounds, bounds[1:])])


@st.composite
def resize_pairs(draw):
    """Old/new decompositions of one shape: grow, shrink and same-size
    redistributions all arise from independent axis draws."""
    ndim = draw(st.integers(1, 2))
    shape = tuple(draw(st.integers(2, 8)) for _ in range(ndim))
    old = CartesianTemplate([draw(axis_for(e)) for e in shape])
    new = CartesianTemplate([draw(axis_for(e)) for e in shape])
    return old, new


def _resize(old_desc, new_desc, g, backend, planner=None):
    n = max(old_desc.nranks, new_desc.nranks)

    def main(comm):
        da = (DistributedArray.from_global(old_desc, comm.rank, g)
              if comm.rank < old_desc.nranks else None)
        return reconfigure(comm, da, new_desc, planner=planner,
                           cache=ScheduleCache())

    return [p for p in run_spmd(n, main, backend=backend) if p is not None]


@pytest.mark.parametrize(
    "backend", ["threads", "procs"],
    ids=["backend-threads", "backend-procs"])
@settings(max_examples=8, deadline=None)
@given(resize_pairs(), st.integers(0, 2 ** 31 - 1))
def test_delta_migration_matches_full_redistribute(backend, pair, seed):
    old_t, new_t = pair
    g = np.asarray(
        np.random.default_rng(seed).integers(0, 1000, size=old_t.shape),
        dtype=np.float64)
    old_desc = DistArrayDescriptor(old_t, np.float64)
    new_desc = DistArrayDescriptor(new_t, np.float64)
    parts = _resize(old_desc, new_desc, g, backend)
    assert len(parts) == new_desc.nranks
    for p in parts:
        assert p.descriptor.cache_key() == new_desc.cache_key()
    np.testing.assert_array_equal(DistributedArray.assemble(parts), g)


def test_surviving_rank_keeps_its_handle():
    """The resize is *live*: a rank inside both decompositions gets the
    same object back, rebound in place, so references stay valid."""
    old = DistArrayDescriptor(block_template((64,), (8,)))
    new = DistArrayDescriptor(block_template((64,), (10,)))
    g = np.arange(64, dtype=np.float64)

    def main(comm):
        da = (DistributedArray.from_global(old, comm.rank, g)
              if comm.rank < 8 else None)
        before = da
        out = reconfigure(comm, da, new)
        if before is not None:
            assert out is before
            assert out.descriptor is not old
        return out

    parts = [p for p in run_spmd(10, main, backend="threads")
             if p is not None]
    np.testing.assert_array_equal(DistributedArray.assemble(parts), g)


def test_identity_ranks_keep_their_buffer():
    """A generalized-block tail split leaves leading ranks' ownership
    untouched: their base buffer must not even be reallocated."""
    old = DistArrayDescriptor(
        CartesianTemplate([GeneralizedBlock(80, [10] * 8)]))
    new = DistArrayDescriptor(
        CartesianTemplate([GeneralizedBlock(80, [10] * 7 + [4, 3, 3])]))
    g = np.arange(80, dtype=np.float64)

    def main(comm):
        da = (DistributedArray.from_global(old, comm.rank, g)
              if comm.rank < 8 else None)
        base_before = da.flat_local() if da is not None else None
        out = reconfigure(comm, da, new)
        if comm.rank < 7:
            assert out.flat_local() is base_before
        return out

    parts = [p for p in run_spmd(10, main, backend="threads")
             if p is not None]
    np.testing.assert_array_equal(DistributedArray.assemble(parts), g)


def test_shrink_drops_trailing_ranks():
    old = DistArrayDescriptor(block_template((60,), (10,)))
    new = DistArrayDescriptor(block_template((60,), (6,)))
    g = np.arange(60, dtype=np.float64)

    def main(comm):
        da = DistributedArray.from_global(old, comm.rank, g)
        return reconfigure(comm, da, new)

    results = run_spmd(10, main, backend="threads")
    assert all(r is None for r in results[6:])
    parts = [p for p in results if p is not None]
    assert len(parts) == 6
    np.testing.assert_array_equal(DistributedArray.assemble(parts), g)


def test_grid_and_nranks_arguments():
    """``new_dist`` may be a plain process grid; ``new_nranks``
    cross-checks it."""
    old = DistArrayDescriptor(block_template((8, 12), (2, 2)))
    g = np.arange(96, dtype=np.float64).reshape(8, 12)

    def main(comm):
        da = (DistributedArray.from_global(old, comm.rank, g)
              if comm.rank < 4 else None)
        return reconfigure(comm, da, (3, 2), 6)

    parts = [p for p in run_spmd(6, main, backend="threads")
             if p is not None]
    np.testing.assert_array_equal(DistributedArray.assemble(parts), g)

    def bad(comm):
        da = (DistributedArray.from_global(old, comm.rank, g)
              if comm.rank < 4 else None)
        with pytest.raises(ScheduleError):
            reconfigure(comm, da, (3, 2), 7)

    run_spmd(6, bad, backend="threads")


def test_collective_planner_resize():
    old = DistArrayDescriptor(
        CartesianTemplate([BlockCyclic(96, 8, 4)]))
    new = DistArrayDescriptor(
        CartesianTemplate([BlockCyclic(96, 10, 4)]))
    g = np.arange(96, dtype=np.float64)
    parts = _resize(old, new, g, "threads", planner="collective")
    np.testing.assert_array_equal(DistributedArray.assemble(parts), g)


def test_redist_stats_account_the_resize():
    old = DistArrayDescriptor(
        CartesianTemplate([Cyclic(40, 8)]))
    new = DistArrayDescriptor(
        CartesianTemplate([Cyclic(40, 10)]))
    g = np.arange(40, dtype=np.float64)
    REDIST_STATS.reset()
    _resize(old, new, g, "threads")
    stats = REDIST_STATS.snapshot()
    assert stats["resizes"] == 1
    # cyclic 8->10: k stays home iff k mod 40 < 8 -> 8 of 40 elements.
    assert stats["migrated_bytes"] == 32 * 8
    assert stats["kept_bytes"] == 8 * 8
    assert stats["resize_wall_us"] > 0
    # strictly fewer bytes than the 40-element full redistribute.
    assert stats["migrated_bytes"] < 40 * 8
