"""Compiled index plans: plan-based pack/unpack must be byte-identical
to the region-loop reference path, the contiguity fast path must engage
exactly when a pair's regions flatten to one slice, and compilation must
happen once per schedule under repeated transfers."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.dad import (
    Block,
    BlockCyclic,
    CartesianTemplate,
    Cyclic,
    DistArrayDescriptor,
    DistributedArray,
    GeneralizedBlock,
)
from repro.dad.template import block_template
from repro.errors import ScheduleError
from repro.linearize import DenseLinearization
from repro.schedule import (
    PLAN_STATS,
    build_linear_schedule,
    build_region_schedule,
    execute_intra,
    pack_regions,
    region_offsets,
    unpack_regions,
)
from repro.simmpi import run_spmd


@st.composite
def axis_for(draw, extent):
    kind = draw(st.sampled_from(
        ["block", "cyclic", "block_cyclic", "genblock"]))
    nprocs = draw(st.integers(1, min(3, extent)))
    if kind == "block":
        return Block(extent, nprocs)
    if kind == "cyclic":
        return Cyclic(extent, nprocs)
    if kind == "block_cyclic":
        return BlockCyclic(extent, nprocs, draw(st.integers(1, extent)))
    cuts = sorted(draw(st.lists(st.integers(0, extent),
                                min_size=nprocs - 1, max_size=nprocs - 1)))
    bounds = [0] + cuts + [extent]
    return GeneralizedBlock(extent, [b - a for a, b in zip(bounds, bounds[1:])])


@st.composite
def template_pairs(draw):
    ndim = draw(st.integers(1, 2))
    shape = tuple(draw(st.integers(2, 9)) for _ in range(ndim))
    src = CartesianTemplate([draw(axis_for(e)) for e in shape])
    dst = CartesianTemplate([draw(axis_for(e)) for e in shape])
    return src, dst


class TestPlanLoopEquivalence:
    """Plan gather/scatter vs the region-loop pack/unpack reference."""

    @settings(max_examples=40, deadline=None)
    @given(template_pairs(), st.integers(0, 2 ** 31 - 1))
    def test_gather_matches_pack_regions(self, pair, seed):
        src_t, dst_t = pair
        g = np.asarray(
            np.random.default_rng(seed).integers(0, 1000, size=src_t.shape),
            dtype=np.float64)
        src_desc = DistArrayDescriptor(src_t, np.float64)
        dst_desc = DistArrayDescriptor(dst_t, np.float64)
        sched = build_region_schedule(src_desc, dst_desc)
        for s in range(src_desc.nranks):
            arr = DistributedArray.from_global(src_desc, s, g)
            flat = arr.flat_local()
            plan = sched.send_plan(s, src_desc.local_regions(s))
            groups = sched.send_groups(s)
            assert len(plan.pairs) == len(groups)
            for pp, (d, regions, offsets) in zip(plan.pairs, groups):
                assert pp.peer == d
                loop_buf = pack_regions(arr, regions, offsets)
                np.testing.assert_array_equal(pp.gather(flat), loop_buf)

    @settings(max_examples=40, deadline=None)
    @given(template_pairs(), st.integers(0, 2 ** 31 - 1))
    def test_scatter_matches_unpack_regions(self, pair, seed):
        src_t, dst_t = pair
        g = np.asarray(
            np.random.default_rng(seed).integers(0, 1000, size=src_t.shape),
            dtype=np.float64)
        src_desc = DistArrayDescriptor(src_t, np.float64)
        dst_desc = DistArrayDescriptor(dst_t, np.float64)
        sched = build_region_schedule(src_desc, dst_desc)
        src_full = DistributedArray.from_global(
            DistArrayDescriptor(src_t, np.float64), 0, g) \
            if src_desc.nranks == 1 else None
        for d in range(dst_desc.nranks):
            via_plan = DistributedArray.allocate(dst_desc, d)
            via_loop = DistributedArray.allocate(dst_desc, d)
            plan = sched.recv_plan(d, dst_desc.local_regions(d))
            flat = via_plan.flat_local()
            for pp, (s, regions, offsets) in zip(plan.pairs,
                                                 sched.recv_groups(d)):
                # the wire buffer the source side would produce
                src_arr = src_full if src_full is not None and s == 0 else \
                    DistributedArray.from_global(src_desc, s, g)
                send_groups = {
                    dd: (rr, oo)
                    for dd, rr, oo in sched.send_groups(s)}
                s_regions, s_offsets = send_groups[d]
                buf = pack_regions(src_arr, s_regions, s_offsets)
                assert pp.scatter(flat, buf) == buf.size
                unpack_regions(via_loop, regions, buf, offsets)
            assert via_plan.flat_local().tobytes() == \
                via_loop.flat_local().tobytes()

    @settings(max_examples=25, deadline=None)
    @given(template_pairs(), st.integers(0, 2 ** 31 - 1))
    def test_dense_linearization_extract_inject(self, pair, seed):
        """extract(run) must equal the global row-major slice, and
        inject must invert it — across random linearization runs."""
        src_t, dst_t = pair
        g = np.asarray(
            np.random.default_rng(seed).integers(0, 1000, size=src_t.shape),
            dtype=np.float64)
        desc = DistArrayDescriptor(src_t, np.float64)
        lin = DenseLinearization(desc)
        dst_lin = DenseLinearization(DistArrayDescriptor(dst_t, np.float64))
        sched = build_linear_schedule(lin, dst_lin)
        gflat = g.reshape(-1)
        arrays = {r: DistributedArray.from_global(desc, r, g)
                  for r in range(desc.nranks)}
        back = {r: DistributedArray.allocate(desc, r)
                for r in range(desc.nranks)}
        for it in sched.items:
            values = lin.extract(it.src, it.run, arrays[it.src])
            np.testing.assert_array_equal(
                values, gflat[it.run.lo:it.run.hi])
            lin.inject(it.src, it.run, values, back[it.src])
        for r in range(desc.nranks):
            assert back[r].flat_local().tobytes() == \
                arrays[r].flat_local().tobytes()


class TestContiguityFastPath:
    def test_block_templates_compile_to_slices(self):
        """1-D block → block: every pair's regions flatten to one
        ascending range, so no plan materializes an index array."""
        src = DistArrayDescriptor(block_template((24,), (3,)))
        dst = DistArrayDescriptor(block_template((24,), (4,)))
        sched = build_region_schedule(src, dst)
        for s in range(src.nranks):
            plan = sched.send_plan(s, src.local_regions(s))
            assert plan.contiguous_pairs == len(plan.pairs)
            assert all(p.idx is None for p in plan.pairs)
        for d in range(dst.nranks):
            plan = sched.recv_plan(d, dst.local_regions(d))
            assert plan.contiguous_pairs == len(plan.pairs)

    def test_contiguous_gather_is_zero_copy_view(self):
        src = DistArrayDescriptor(block_template((24,), (3,)))
        dst = DistArrayDescriptor(block_template((24,), (4,)))
        sched = build_region_schedule(src, dst)
        arr = DistributedArray.from_global(
            src, 0, np.arange(24.0))
        flat = arr.flat_local()
        plan = sched.send_plan(0, src.local_regions(0))
        buf = plan.pairs[0].gather(flat)
        assert buf.base is not None and np.shares_memory(buf, flat)

    def test_cyclic_pairs_compile_to_strided_slices(self):
        """Block → cyclic: each destination picks every other element
        out of the source's contiguous patch — an arithmetic progression
        that compresses to a strided ``(lo, size, step)`` slice, so the
        gather stays a zero-copy view (and still packs the same bytes
        as the loop)."""
        src = DistArrayDescriptor(block_template((12,), (2,)))
        dst = DistArrayDescriptor(CartesianTemplate([Cyclic(12, 2)]))
        sched = build_region_schedule(src, dst)
        plan = sched.send_plan(0, src.local_regions(0))
        assert any(p.strided for p in plan.pairs)
        assert all(not p.contiguous for p in plan.pairs if p.strided)
        arr = DistributedArray.from_global(src, 0, np.arange(12.0))
        flat = arr.flat_local()
        for pp, (_d, regions, offsets) in zip(plan.pairs,
                                              sched.send_groups(0)):
            np.testing.assert_array_equal(
                pp.gather(flat),
                pack_regions(arr, regions, offsets))
            if pp.idx is None:
                assert np.shares_memory(pp.gather(flat), flat)

    def test_2d_row_block_is_contiguous(self):
        """Full-width row blocks of a 2-D array are contiguous in the
        row-major local buffer even though they are 2-D regions."""
        src = DistArrayDescriptor(block_template((8, 6), (2, 1)))
        dst = DistArrayDescriptor(block_template((8, 6), (4, 1)))
        sched = build_region_schedule(src, dst)
        for s in range(src.nranks):
            plan = sched.send_plan(s, src.local_regions(s))
            assert plan.contiguous_pairs == len(plan.pairs)

    def test_2d_column_split_is_not_contiguous(self):
        src = DistArrayDescriptor(block_template((6, 8), (1, 2)))
        dst = DistArrayDescriptor(block_template((6, 8), (1, 4)))
        sched = build_region_schedule(src, dst)
        plan = sched.send_plan(0, src.local_regions(0))
        # each destination's columns stride across the local rows
        assert any(p.idx is not None for p in plan.pairs)

    def test_scatter_size_mismatch_rejected(self):
        src = DistArrayDescriptor(block_template((8,), (2,)))
        sched = build_region_schedule(src, src)
        plan = sched.send_plan(0, src.local_regions(0))
        arr = DistributedArray.allocate(src, 0)
        with pytest.raises(ScheduleError):
            plan.pairs[0].scatter(arr.flat_local(), np.zeros(3))


class TestCompileOnce:
    def test_plans_compile_once_per_schedule(self):
        """Repeated packed transfers over a reused schedule must not
        recompile plans (the persistent-channel case)."""
        src_desc = DistArrayDescriptor(CartesianTemplate([Cyclic(24, 3)]))
        dst_desc = DistArrayDescriptor(block_template((24,), (4,)))
        sched = build_region_schedule(src_desc, dst_desc)
        g = np.arange(24.0)

        def main(comm):
            src = (DistributedArray.from_global(src_desc, comm.rank, g)
                   if comm.rank < src_desc.nranks else None)
            dst = (DistributedArray.allocate(dst_desc, comm.rank)
                   if comm.rank < dst_desc.nranks else None)
            execute_intra(sched, comm, src_array=src, dst_array=dst,
                          src_ranks=range(src_desc.nranks),
                          dst_ranks=range(dst_desc.nranks))
            return dst

        n = max(src_desc.nranks, dst_desc.nranks)
        run_spmd(n, main)
        after_first = PLAN_STATS.get("rank_plans")
        for _ in range(3):
            parts = [p for p in run_spmd(n, main) if p is not None]
        assert PLAN_STATS.get("rank_plans") == after_first
        np.testing.assert_array_equal(DistributedArray.assemble(parts), g)

    def test_offsets_are_int64_arrays(self):
        src = DistArrayDescriptor(CartesianTemplate([Cyclic(10, 2)]))
        sched = build_region_schedule(src, src)
        offs = region_offsets(list(src.local_regions(0)))
        assert isinstance(offs, np.ndarray) and offs.dtype == np.int64
        for _, regions, offsets in sched.send_groups(0):
            assert isinstance(offsets, np.ndarray)
            assert offsets.dtype == np.int64
            assert offsets[0] == 0
            assert offsets[-1] == sum(r.volume for r in regions)
