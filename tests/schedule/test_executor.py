"""End-to-end schedule execution over the simulated runtime."""

import numpy as np
import pytest

from repro.dad import (
    BlockCyclic,
    CartesianTemplate,
    Cyclic,
    DistArrayDescriptor,
    DistributedArray,
)
from repro.dad.template import ExplicitTemplate, block_template
from repro.linearize import DenseLinearization, GraphLinearization
from repro.schedule import (
    build_linear_schedule,
    build_region_schedule,
    execute_inter,
    execute_intra,
    execute_linear_inter,
)
from repro.simmpi import NameService, run_coupled, run_spmd
from repro.util.regions import Region


def redistribute_intra(src_t, dst_t, global_arr, nranks=None):
    """Run an in-job redistribution and return the reassembled result."""
    src_desc = DistArrayDescriptor(src_t, global_arr.dtype)
    dst_desc = DistArrayDescriptor(dst_t, global_arr.dtype)
    sched = build_region_schedule(src_desc, dst_desc)
    n = nranks or max(src_desc.nranks, dst_desc.nranks)

    def main(comm):
        src = (DistributedArray.from_global(src_desc, comm.rank, global_arr)
               if comm.rank < src_desc.nranks else None)
        dst = (DistributedArray.allocate(dst_desc, comm.rank)
               if comm.rank < dst_desc.nranks else None)
        execute_intra(sched, comm, src_array=src, dst_array=dst,
                      src_ranks=range(src_desc.nranks),
                      dst_ranks=range(dst_desc.nranks))
        return dst

    parts = [p for p in run_spmd(n, main) if p is not None]
    return DistributedArray.assemble(parts)


class TestExecuteIntra:
    def test_block_to_block(self):
        g = np.arange(64.0).reshape(8, 8)
        out = redistribute_intra(block_template((8, 8), (2, 2)),
                                 block_template((8, 8), (4, 1)), g)
        np.testing.assert_array_equal(out, g)

    def test_fig1_8_to_27(self):
        g = np.arange(12.0 ** 3).reshape(12, 12, 12)
        out = redistribute_intra(block_template((12, 12, 12), (2, 2, 2)),
                                 block_template((12, 12, 12), (3, 3, 3)), g)
        np.testing.assert_array_equal(out, g)

    def test_block_cyclic_both_sides(self):
        g = np.random.default_rng(3).random((12, 10))
        src_t = CartesianTemplate([BlockCyclic(12, 2, 3), Cyclic(10, 2)])
        dst_t = CartesianTemplate([Cyclic(12, 3), BlockCyclic(10, 2, 4)])
        out = redistribute_intra(src_t, dst_t, g, nranks=6)
        np.testing.assert_array_equal(out, g)

    def test_explicit_distribution(self):
        g = np.arange(16.0).reshape(4, 4)
        src_t = ExplicitTemplate((4, 4), [
            (0, Region((0, 0), (3, 4))),
            (1, Region((3, 0), (4, 4))),
        ])
        out = redistribute_intra(src_t, block_template((4, 4), (2, 2)), g)
        np.testing.assert_array_equal(out, g)

    def test_self_redistribution_same_cohort(self):
        """Same ranks act as both source and destination (transpose-like)."""
        g = np.arange(36.0).reshape(6, 6)
        src_desc = DistArrayDescriptor(block_template((6, 6), (3, 1)), g.dtype)
        dst_desc = DistArrayDescriptor(block_template((6, 6), (1, 3)), g.dtype)
        sched = build_region_schedule(src_desc, dst_desc)

        def main(comm):
            src = DistributedArray.from_global(src_desc, comm.rank, g)
            dst = DistributedArray.allocate(dst_desc, comm.rank)
            execute_intra(sched, comm, src_array=src, dst_array=dst)
            return dst

        parts = run_spmd(3, main)
        np.testing.assert_array_equal(DistributedArray.assemble(parts), g)

    def test_disjoint_cohorts_in_one_job(self):
        """Sources on ranks 0-1, destinations on ranks 2-4."""
        g = np.arange(40.0).reshape(8, 5)
        src_desc = DistArrayDescriptor(block_template((8, 5), (2, 1)), g.dtype)
        dst_desc = DistArrayDescriptor(block_template((8, 5), (3, 1)), g.dtype)
        sched = build_region_schedule(src_desc, dst_desc)

        def main(comm):
            is_src = comm.rank < 2
            src = (DistributedArray.from_global(src_desc, comm.rank, g)
                   if is_src else None)
            dst = (DistributedArray.allocate(dst_desc, comm.rank - 2)
                   if not is_src else None)
            execute_intra(sched, comm, src_array=src, dst_array=dst,
                          src_ranks=[0, 1], dst_ranks=[2, 3, 4])
            return dst

        parts = [p for p in run_spmd(5, main) if p is not None]
        np.testing.assert_array_equal(DistributedArray.assemble(parts), g)

    def test_repeated_execution_schedule_reuse(self):
        src_desc = DistArrayDescriptor(block_template((6,), (2,)))
        dst_desc = DistArrayDescriptor(block_template((6,), (3,)))
        sched = build_region_schedule(src_desc, dst_desc)

        def main(comm):
            outs = []
            for k in range(3):
                g = np.arange(6.0) * (k + 1)
                src = (DistributedArray.from_global(src_desc, comm.rank, g)
                       if comm.rank < 2 else None)
                dst = DistributedArray.allocate(dst_desc, comm.rank)
                execute_intra(sched, comm, src_array=src, dst_array=dst,
                              src_ranks=[0, 1], dst_ranks=[0, 1, 2])
                outs.append(dst)
            return outs

        results = run_spmd(3, main)
        for k in range(3):
            parts = [results[r][k] for r in range(3)]
            np.testing.assert_array_equal(
                DistributedArray.assemble(parts), np.arange(6.0) * (k + 1))


class TestExecuteInter:
    def test_coupled_jobs_m3_to_n2(self):
        g = np.arange(60.0).reshape(6, 10)
        src_desc = DistArrayDescriptor(block_template((6, 10), (3, 1)), g.dtype)
        dst_desc = DistArrayDescriptor(block_template((6, 10), (1, 2)), g.dtype)
        sched = build_region_schedule(src_desc, dst_desc)
        ns = NameService()

        def producer(comm):
            inter = ns.accept("xfer", comm)
            src = DistributedArray.from_global(src_desc, comm.rank, g)
            return execute_inter(sched, inter, "src", src)

        def consumer(comm):
            inter = ns.connect("xfer", comm)
            dst = DistributedArray.allocate(dst_desc, comm.rank)
            execute_inter(sched, inter, "dst", dst)
            return dst

        out = run_coupled([
            ("producer", 3, producer, ()),
            ("consumer", 2, consumer, ()),
        ])
        np.testing.assert_array_equal(
            DistributedArray.assemble(out["consumer"]), g)
        assert sum(out["producer"]) == 60

    def test_linear_schedule_graph_to_array(self):
        """Couple a graph-distributed field to a dense array through the
        shared linear space (the Meta-Chaos generality argument)."""
        import networkx as nx

        graph = nx.path_graph(12)
        owners = {n: 0 if n < 7 else 1 for n in graph}
        glin = GraphLinearization(graph, owners)
        arr_desc = DistArrayDescriptor(block_template((12,), (3,)))
        alin = DenseLinearization(arr_desc)
        sched = build_linear_schedule(glin, alin)
        values = {n: float(n) ** 2 for n in graph}
        ns = NameService()

        def graph_side(comm):
            inter = ns.accept("g2a", comm)
            store = glin.make_storage(comm.rank, values)
            return execute_linear_inter(sched, inter, "src", glin, store)

        def array_side(comm):
            inter = ns.connect("g2a", comm)
            dst = DistributedArray.allocate(arr_desc, comm.rank)
            execute_linear_inter(sched, inter, "dst", alin, dst)
            return dst

        out = run_coupled([
            ("graph", 2, graph_side, ()),
            ("array", 3, array_side, ()),
        ])
        assembled = DistributedArray.assemble(out["array"])
        np.testing.assert_array_equal(assembled,
                                      np.arange(12.0) ** 2)

    def test_bad_side_rejected(self):
        src_desc = DistArrayDescriptor(block_template((4,), (2,)))
        sched = build_region_schedule(src_desc, src_desc)
        ns = NameService()

        def a(comm):
            inter = ns.accept("bad", comm)
            da = DistributedArray.allocate(src_desc, comm.rank)
            with pytest.raises(ValueError):
                execute_inter(sched, inter, "sideways", da)
            return True

        def b(comm):
            ns.connect("bad", comm)
            return True

        out = run_coupled([("a", 2, a, ()), ("b", 2, b, ())])
        assert all(out["a"])
