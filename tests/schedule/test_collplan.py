"""Memory-bounded collective round planner: static plan invariants,
cost-model dispatch, cache keying, and byte-identity with ground truth
on both execution backends."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.dad import (
    Block,
    BlockCyclic,
    CartesianTemplate,
    Collapsed,
    Cyclic,
    DistArrayDescriptor,
    DistributedArray,
    GeneralizedBlock,
)
from repro.errors import ScheduleError
from repro.schedule import (
    PLAN_STATS,
    ScheduleCache,
    build_region_schedule,
    choose_planner,
    estimate,
    execute_intra,
    plan_collective_rounds,
    resolve_planner,
    resolve_round_bytes,
)
from repro.schedule.collplan import (
    ACK_TAG_OFFSET,
    CollectiveReceiver,
    CollectiveSender,
)
from repro.simmpi import run_spmd
from repro.simmpi.intercomm import couple_jobs
from repro.simmpi.runner import Job
from repro.util.counters import TRANSPORT_STATS


def _cart(*axes):
    return DistArrayDescriptor(CartesianTemplate(list(axes)))


def _fanout_pair(extent=96, m=4, n=3):
    return _cart(Cyclic(extent, m)), _cart(Block(extent, n))


# -- static plan invariants ----------------------------------------------------


def test_chunks_tile_every_pair_exactly():
    src, dst = _fanout_pair()
    sched = build_region_schedule(src, dst)
    coll = plan_collective_rounds(sched, itemsize=8, round_bytes=64)
    by_pair = {}
    for rnd, chunks in enumerate(coll.rounds):
        for c in chunks:
            by_pair.setdefault((c.src, c.dst), []).append((c.lo, c.hi, rnd))
    for s in range(sched.src_nranks):
        for d, _items, offsets in sched.send_groups(s):
            spans = sorted(by_pair.pop((s, d)))
            assert spans[0][0] == 0
            assert spans[-1][1] == int(offsets[-1])
            for (alo, ahi, ar), (blo, bhi, br) in zip(spans, spans[1:]):
                assert ahi == blo, "chunks must tile without gap/overlap"
                assert ar < br, "a pair's chunks must stay in round order"
    assert not by_pair, "planner invented pairs the schedule doesn't have"


def test_per_round_caps_hold_both_directions():
    src, dst = _fanout_pair(extent=120, m=5, n=4)
    sched = build_region_schedule(src, dst)
    cap_elems = 128 // 8
    coll = plan_collective_rounds(sched, itemsize=8, round_bytes=128)
    for rnd, chunks in enumerate(coll.rounds):
        sent, recvd = {}, {}
        for c in chunks:
            sent[c.src] = sent.get(c.src, 0) + c.size
            recvd[c.dst] = recvd.get(c.dst, 0) + c.size
        assert all(v <= cap_elems for v in sent.values())
        assert all(v <= cap_elems for v in recvd.values())
    assert coll.peak_send_bytes <= 128
    assert coll.peak_recv_bytes <= 128


def test_plan_is_deterministic_and_conserves_bytes():
    src, dst = _fanout_pair()
    sched = build_region_schedule(src, dst)
    a = plan_collective_rounds(sched, itemsize=8, round_bytes=96)
    b = plan_collective_rounds(sched, itemsize=8, round_bytes=96)
    assert a.rounds == b.rounds
    assert a.element_count == sched.element_count
    assert a.nbytes == sched.nbytes(np.float64)


def test_resident_ceiling_is_twice_the_inflight_bound():
    src, dst = _fanout_pair()
    sched = build_region_schedule(src, dst)
    coll = plan_collective_rounds(sched, itemsize=8, round_bytes=64)
    assert coll.resident_ceiling() == 2 * coll.inflight_bound()
    # the in-flight bound is independent of the pair count: one round's
    # send load per source, so at most src_nranks * round_bytes.
    assert coll.inflight_bound() <= sched.src_nranks * 64


def test_oversized_element_still_moves():
    src, dst = _fanout_pair(extent=8, m=2, n=2)
    sched = build_region_schedule(src, dst)
    coll = plan_collective_rounds(sched, itemsize=8, round_bytes=4)
    assert coll.element_count == sched.element_count
    assert all(c.size == 1 for r in coll.rounds for c in r)


def test_plan_rejects_nonpositive_parameters():
    src, dst = _fanout_pair()
    sched = build_region_schedule(src, dst)
    with pytest.raises(ScheduleError):
        plan_collective_rounds(sched, itemsize=0, round_bytes=64)
    with pytest.raises(ScheduleError):
        plan_collective_rounds(sched, itemsize=8, round_bytes=0)


def test_collective_plan_memoized_on_schedule():
    src, dst = _fanout_pair()
    sched = build_region_schedule(src, dst)
    assert sched.collective_plan(8, 64) is sched.collective_plan(8, 64)
    assert sched.collective_plan(8, 64) is not sched.collective_plan(8, 128)


# -- planner resolution and the cost model -------------------------------------


def test_resolve_planner_precedence(monkeypatch):
    monkeypatch.delenv("REPRO_PLANNER", raising=False)
    assert resolve_planner() == "p2p"
    monkeypatch.setenv("REPRO_PLANNER", "collective")
    assert resolve_planner() == "collective"
    assert resolve_planner("p2p") == "p2p", "explicit arg wins over env"
    monkeypatch.setenv("REPRO_PLANNER", "bogus")
    with pytest.raises(ScheduleError):
        resolve_planner()


def test_resolve_round_bytes(monkeypatch):
    monkeypatch.delenv("REPRO_ROUND_BYTES", raising=False)
    assert resolve_round_bytes() == 1 << 16
    monkeypatch.setenv("REPRO_ROUND_BYTES", "4096")
    assert resolve_round_bytes() == 4096
    assert resolve_round_bytes(512) == 512
    with pytest.raises(ScheduleError):
        resolve_round_bytes(-1)


def test_auto_picks_p2p_on_small_and_collective_on_fanout(monkeypatch):
    monkeypatch.delenv("REPRO_PLANNER", raising=False)
    monkeypatch.delenv("REPRO_MEM_CEILING", raising=False)
    small = build_region_schedule(*_fanout_pair(extent=96, m=4, n=3))
    assert choose_planner(small, 8, planner="auto") == "p2p"
    # a wire volume past the 1 MiB default ceiling, cheap to build
    big_src = _cart(BlockCyclic(400_000, 4, 64))
    big_dst = _cart(Block(400_000, 6))
    big = build_region_schedule(big_src, big_dst)
    est = estimate(big, 8)
    assert est.p2p_peak_bytes == 2 * big.nbytes(np.float64)
    assert est.coll_peak_bytes < est.p2p_peak_bytes
    assert est.chosen == "collective"
    assert choose_planner(big, 8, planner="auto") == "collective"
    # explicit planner bypasses the estimate entirely
    assert choose_planner(big, 8, planner="p2p") == "p2p"


def test_auto_respects_mem_ceiling_override():
    big = build_region_schedule(_cart(BlockCyclic(400_000, 4, 64)),
                                _cart(Block(400_000, 6)))
    huge = 1 << 40
    assert choose_planner(big, 8, planner="auto",
                          mem_ceiling=huge) == "p2p"


# -- schedule-cache keying ------------------------------------------------------


def test_cache_keys_on_planner_dimension():
    src, dst = _fanout_pair()
    cache = ScheduleCache()
    p2p = cache.get(src, dst, planner="p2p")
    coll = cache.get(src, dst, planner="collective")
    assert p2p is not coll, "planners must not share memoized state"
    assert cache.get(src, dst, planner="p2p") is p2p
    assert cache.get(src, dst, planner="collective") is coll


def test_cached_schedule_compiles_plans_once_per_key():
    src, dst = _fanout_pair()
    cache = ScheduleCache()
    sched = cache.get(src, dst, planner="collective")
    PLAN_STATS.reset()
    first = sched.send_plan(0, src.local_regions(0))
    compiled = PLAN_STATS.get("rank_plans")
    assert compiled == 1
    again = sched.send_plan(0, src.local_regions(0))
    assert again is first
    assert PLAN_STATS.get("rank_plans") == compiled
    # the same descriptor pair under the other planner key compiles its
    # own plans — distinct state, no cross-key reuse
    other = cache.get(src, dst, planner="p2p")
    other.send_plan(0, src.local_regions(0))
    assert PLAN_STATS.get("rank_plans") == compiled + 1


# -- intra-communicator execution ------------------------------------------------


@st.composite
def axis_for(draw, extent):
    kind = draw(st.sampled_from(
        ["collapsed", "block", "cyclic", "block_cyclic", "genblock"]))
    if kind == "collapsed":
        return Collapsed(extent)
    nprocs = draw(st.integers(1, min(3, extent)))
    if kind == "block":
        return Block(extent, nprocs)
    if kind == "cyclic":
        return Cyclic(extent, nprocs)
    if kind == "block_cyclic":
        return BlockCyclic(extent, nprocs, draw(st.integers(1, extent)))
    cuts = sorted(draw(st.lists(st.integers(0, extent),
                                min_size=nprocs - 1, max_size=nprocs - 1)))
    bounds = [0] + cuts + [extent]
    return GeneralizedBlock(extent, [b - a for a, b in zip(bounds, bounds[1:])])


@st.composite
def template_pairs(draw):
    ndim = draw(st.integers(1, 2))
    shape = tuple(draw(st.integers(2, 8)) for _ in range(ndim))
    src = CartesianTemplate([draw(axis_for(e)) for e in shape])
    dst = CartesianTemplate([draw(axis_for(e)) for e in shape])
    return src, dst


@pytest.mark.parametrize(
    "backend", ["threads", "procs"],
    ids=["backend-threads", "backend-procs"])
@settings(max_examples=6, deadline=None)
@given(template_pairs(), st.integers(0, 2 ** 31 - 1))
def test_collective_redistribution_is_lossless(backend, pair, seed):
    """Byte-identity with ground truth for the collective planner on
    both backends, with a tiny round size so every case actually
    decomposes into multiple rounds."""
    src_t, dst_t = pair
    g = np.asarray(
        np.random.default_rng(seed).integers(0, 1000, size=src_t.shape),
        dtype=np.float64)
    src_desc = DistArrayDescriptor(src_t, np.float64)
    dst_desc = DistArrayDescriptor(dst_t, np.float64)
    sched = build_region_schedule(src_desc, dst_desc)
    n = max(src_desc.nranks, dst_desc.nranks)

    def main(comm):
        src = (DistributedArray.from_global(src_desc, comm.rank, g)
               if comm.rank < src_desc.nranks else None)
        dst = (DistributedArray.allocate(dst_desc, comm.rank)
               if comm.rank < dst_desc.nranks else None)
        execute_intra(sched, comm, src_array=src, dst_array=dst,
                      src_ranks=range(src_desc.nranks),
                      dst_ranks=range(dst_desc.nranks),
                      planner="collective", round_bytes=64)
        return dst

    parts = [p for p in run_spmd(n, main, backend=backend)
             if p is not None]
    np.testing.assert_array_equal(DistributedArray.assemble(parts), g)


def test_intra_collective_matches_p2p_exactly():
    src_desc, dst_desc = _fanout_pair(extent=96, m=4, n=4)
    g = np.arange(96.0)
    sched = build_region_schedule(src_desc, dst_desc)

    def run(planner):
        def main(comm):
            src = DistributedArray.from_global(src_desc, comm.rank, g)
            dst = DistributedArray.allocate(dst_desc, comm.rank)
            execute_intra(sched, comm, src_array=src, dst_array=dst,
                          src_ranks=range(4), dst_ranks=range(4),
                          planner=planner, round_bytes=64)
            return dst
        return DistributedArray.assemble(run_spmd(4, main))

    np.testing.assert_array_equal(run("p2p"), run("collective"))


# -- inter-communicator engines ---------------------------------------------------


def _build_engines(src_desc, dst_desc, g, round_bytes, tag=610):
    sched = build_region_schedule(src_desc, dst_desc)
    itemsize = np.dtype(src_desc.dtype).itemsize
    coll = sched.collective_plan(itemsize, round_bytes)
    src_job, dst_job = Job(src_desc.nranks), Job(dst_desc.nranks)
    src_inters, dst_inters = couple_jobs(src_job, dst_job)
    srcs = [DistributedArray.from_global(src_desc, r, g)
            for r in range(src_desc.nranks)]
    dsts = [DistributedArray.allocate(dst_desc, r)
            for r in range(dst_desc.nranks)]
    senders = [CollectiveSender(sched, coll, src_inters[r], srcs[r], tag=tag)
               for r in range(src_desc.nranks)]
    receivers = [CollectiveReceiver(sched, coll, dst_inters[r], dsts[r],
                                    tag=tag)
                 for r in range(dst_desc.nranks)]
    return sched, coll, senders, receivers, dsts


def _step_engines(coll, senders, receivers):
    """One full snapshot, single-threaded lockstep: round 0 sends need
    no acks; recv_round queues the acks that the next send_round (or
    finish) drains."""
    received = 0
    for rnd in range(coll.nrounds):
        for tx in senders:
            tx.send_round(rnd)
        for rx in receivers:
            received += rx.recv_round(rnd)
    for tx in senders:
        tx.finish()
    return received


def test_inter_engines_byte_identity_and_round_count():
    src_desc, dst_desc = _fanout_pair(extent=480, m=4, n=3)
    g = np.arange(480.0)
    _sched, coll, senders, receivers, dsts = _build_engines(
        src_desc, dst_desc, g, round_bytes=256)
    received = _step_engines(coll, senders, receivers)
    assert coll.nrounds > 1
    assert received == 480
    np.testing.assert_array_equal(DistributedArray.assemble(dsts), g)
    assert ACK_TAG_OFFSET == 1  # ack stream stays clear of the data tag


def test_inter_engines_peak_resident_within_static_ceiling():
    src_desc, dst_desc = _fanout_pair(extent=480, m=4, n=3)
    g = np.arange(480.0)
    sched, coll, senders, receivers, _dsts = _build_engines(
        src_desc, dst_desc, g, round_bytes=256)
    _step_engines(coll, senders, receivers)  # warm the pools
    TRANSPORT_STATS.reset()  # fully drained: gauges level at zero
    _step_engines(coll, senders, receivers)
    peak = TRANSPORT_STATS.get("peak_resident_bytes")
    ack_slack = 512 * sched.pair_count
    assert 0 < peak <= coll.resident_ceiling() + ack_slack


def test_inter_engines_reuse_pools_after_warmup():
    src_desc, dst_desc = _fanout_pair(extent=480, m=4, n=3)
    g = np.arange(480.0)
    _sched, coll, senders, receivers, _dsts = _build_engines(
        src_desc, dst_desc, g, round_bytes=256)
    _step_engines(coll, senders, receivers)
    allocs0 = sum(tx.pool.stats.get("allocations") for tx in senders)
    assert allocs0 > 0
    _step_engines(coll, senders, receivers)
    assert sum(tx.pool.stats.get("allocations")
               for tx in senders) == allocs0


def test_coupler_collective_round_trip():
    from repro.highlevel import Coupler
    from repro.simmpi import NameService, run_coupled

    src_desc, dst_desc = _fanout_pair(extent=480, m=3, n=4)
    g = np.arange(480.0)
    ns = NameService()

    def producer(comm):
        coupler = Coupler("field", ns)
        darray = DistributedArray.from_global(src_desc, comm.rank, g)
        ch = coupler.open(comm, "source", darray, planner="collective")
        assert ch.planner == "collective"
        for _ in range(2):
            ch.push()
        return ch.transfers

    def consumer(comm):
        coupler = Coupler("field", ns)
        ch = coupler.open(comm, "destination", dst_desc,
                          planner="collective")
        assert ch.planner == "collective"
        for _ in range(2):
            out = ch.pull()
        return out

    out = run_coupled([("p", 3, producer, ()), ("c", 4, consumer, ())])
    assert out["p"] == [2, 2, 2]
    np.testing.assert_array_equal(
        DistributedArray.assemble(out["c"]), g)
