"""Property-based end-to-end invariant: redistribution is lossless.

For random template pairs over the same array shape, scattering a random
array onto the source decomposition, executing the schedule, and
reassembling from the destination decomposition must reproduce the
original array exactly.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.dad import (
    Block,
    BlockCyclic,
    CartesianTemplate,
    Collapsed,
    Cyclic,
    DistArrayDescriptor,
    DistributedArray,
    GeneralizedBlock,
)
from repro.schedule import build_region_schedule, execute_intra
from repro.simmpi import run_spmd


@st.composite
def axis_for(draw, extent):
    kind = draw(st.sampled_from(
        ["collapsed", "block", "cyclic", "block_cyclic", "genblock"]))
    if kind == "collapsed":
        return Collapsed(extent)
    nprocs = draw(st.integers(1, min(3, extent)))
    if kind == "block":
        return Block(extent, nprocs)
    if kind == "cyclic":
        return Cyclic(extent, nprocs)
    if kind == "block_cyclic":
        return BlockCyclic(extent, nprocs, draw(st.integers(1, extent)))
    cuts = sorted(draw(st.lists(st.integers(0, extent),
                                min_size=nprocs - 1, max_size=nprocs - 1)))
    bounds = [0] + cuts + [extent]
    return GeneralizedBlock(extent, [b - a for a, b in zip(bounds, bounds[1:])])


@st.composite
def template_pairs(draw):
    ndim = draw(st.integers(1, 2))
    shape = tuple(draw(st.integers(2, 8)) for _ in range(ndim))
    src = CartesianTemplate([draw(axis_for(e)) for e in shape])
    dst = CartesianTemplate([draw(axis_for(e)) for e in shape])
    return src, dst


@pytest.mark.parametrize(
    "backend", ["threads", "procs"],
    ids=["backend-threads", "backend-procs"])
@settings(max_examples=10, deadline=None)
@given(template_pairs(), st.integers(0, 2 ** 31 - 1))
def test_redistribution_is_lossless(backend, pair, seed):
    """Ground truth on both execution backends: the procs backend must
    produce byte-identical reassembled arrays to the threads backend
    (both must equal the original)."""
    src_t, dst_t = pair
    g = np.asarray(
        np.random.default_rng(seed).integers(0, 1000, size=src_t.shape),
        dtype=np.float64)
    src_desc = DistArrayDescriptor(src_t, np.float64)
    dst_desc = DistArrayDescriptor(dst_t, np.float64)
    sched = build_region_schedule(src_desc, dst_desc)
    sched.validate(src_desc, dst_desc)
    n = max(src_desc.nranks, dst_desc.nranks)

    def main(comm):
        src = (DistributedArray.from_global(src_desc, comm.rank, g)
               if comm.rank < src_desc.nranks else None)
        dst = (DistributedArray.allocate(dst_desc, comm.rank)
               if comm.rank < dst_desc.nranks else None)
        execute_intra(sched, comm, src_array=src, dst_array=dst,
                      src_ranks=range(src_desc.nranks),
                      dst_ranks=range(dst_desc.nranks))
        return dst

    parts = [p for p in run_spmd(n, main, backend=backend)
             if p is not None]
    np.testing.assert_array_equal(DistributedArray.assemble(parts), g)


@settings(max_examples=25, deadline=None)
@given(template_pairs())
def test_schedule_moves_every_element_once(pair):
    src_t, dst_t = pair
    src_desc = DistArrayDescriptor(src_t)
    dst_desc = DistArrayDescriptor(dst_t)
    sched = build_region_schedule(src_desc, dst_desc)
    total = 1
    for s in src_t.shape:
        total *= s
    assert sched.element_count == total
    sched.validate(src_desc, dst_desc)
