"""Schedule construction tests: general path, block fast path, caching."""

import numpy as np
import pytest

from repro.dad import (
    BlockCyclic,
    CartesianTemplate,
    Cyclic,
    DistArrayDescriptor,
)
from repro.dad.template import ExplicitTemplate, block_template
from repro.errors import ScheduleError
from repro.linearize import DenseLinearization
from repro.schedule import (
    ScheduleCache,
    build_block_schedule,
    build_linear_schedule,
    build_region_schedule,
)
from repro.util.regions import Region


def desc(template, dtype=np.float64):
    return DistArrayDescriptor(template, dtype)


class TestRegionSchedule:
    def test_identity_redistribution(self):
        d = desc(block_template((8, 8), (2, 2)))
        sched = build_region_schedule(d, d)
        sched.validate(d, d)
        # identical templates: every rank sends its own block to itself
        assert sched.message_count == 4
        assert all(it.src == it.dst for it in sched.items)

    def test_row_to_col_blocks(self):
        src = desc(block_template((4, 4), (2, 1)))
        dst = desc(block_template((4, 4), (1, 2)))
        sched = build_region_schedule(src, dst)
        sched.validate(src, dst)
        assert sched.message_count == 4  # every src block splits in two
        assert sched.element_count == 16

    def test_m8_to_n27_fig1(self):
        """The paper's Fig. 1 shape: 8 sources feeding 27 destinations."""
        shape = (12, 12, 12)
        src = desc(block_template(shape, (2, 2, 2)))
        dst = desc(block_template(shape, (3, 3, 3)))
        sched = build_region_schedule(src, dst)
        sched.validate(src, dst)
        assert sched.element_count == 12 ** 3
        # every dst block (4x4x4) overlaps 1..8 src blocks (6x6x6)
        assert sched.message_count >= 27

    def test_block_cyclic_to_block(self):
        src = desc(CartesianTemplate([BlockCyclic(12, 3, 2)]))
        dst = desc(block_template((12,), (2,)))
        sched = build_region_schedule(src, dst)
        sched.validate(src, dst)

    def test_explicit_to_block(self):
        src = desc(ExplicitTemplate((4, 4), [
            (0, Region((0, 0), (4, 1))),
            (1, Region((0, 1), (4, 4))),
        ]))
        dst = desc(block_template((4, 4), (2, 2)))
        sched = build_region_schedule(src, dst)
        sched.validate(src, dst)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ScheduleError):
            build_region_schedule(desc(block_template((4,), (2,))),
                                  desc(block_template((5,), (2,))))

    def test_metrics(self):
        src = desc(block_template((8,), (2,)))
        dst = desc(block_template((8,), (4,)))
        sched = build_region_schedule(src, dst)
        assert sched.nbytes(np.float64) == 8 * 8
        assert sched.entries() > 0


class TestBlockFastPath:
    @pytest.mark.parametrize("shape,g1,g2", [
        ((12, 12), (2, 2), (3, 3)),
        ((10, 6), (2, 3), (5, 1)),
        ((7, 9), (3, 2), (2, 3)),       # uneven blocks
        ((12, 12, 12), (2, 2, 2), (3, 3, 3)),
    ])
    def test_matches_general_path(self, shape, g1, g2):
        src = desc(block_template(shape, g1))
        dst = desc(block_template(shape, g2))
        fast = build_block_schedule(src, dst)
        general = build_region_schedule(src, dst, force_general=True)
        assert ([(i.src, i.dst, i.region) for i in fast.items]
                == [(i.src, i.dst, i.region) for i in general.items])

    def test_dispatch_uses_fast_path(self):
        src = desc(block_template((8, 8), (2, 2)))
        dst = desc(block_template((8, 8), (4, 2)))
        assert (build_region_schedule(src, dst).items
                == build_block_schedule(src, dst).items)

    def test_fast_path_rejects_non_block(self):
        src = desc(CartesianTemplate([Cyclic(8, 2)]))
        dst = desc(block_template((8,), (2,)))
        with pytest.raises(ScheduleError):
            build_block_schedule(src, dst)

    def test_fast_path_with_empty_trailing_blocks(self):
        # extent 5 over 4 procs: block=2 -> rank 3 owns nothing
        src = desc(block_template((5,), (4,)))
        dst = desc(block_template((5,), (2,)))
        sched = build_block_schedule(src, dst)
        sched.validate(src, dst)


class TestLinearSchedule:
    def test_dense_to_dense(self):
        src = desc(block_template((6, 6), (3, 1)))
        dst = desc(block_template((6, 6), (1, 2)))
        ls = build_linear_schedule(DenseLinearization(src),
                                   DenseLinearization(dst))
        ls.validate(DenseLinearization(src), DenseLinearization(dst))
        assert ls.element_count == 36

    def test_fragmentation_increases_messages(self):
        """Linearization fragments column blocks into per-row runs, so it
        moves more (smaller) messages than the region schedule."""
        src = desc(block_template((8, 8), (1, 4)))
        dst = desc(block_template((8, 8), (4, 1)))
        region_sched = build_region_schedule(src, dst)
        linear_sched = build_linear_schedule(DenseLinearization(src),
                                             DenseLinearization(dst))
        assert linear_sched.message_count > region_sched.message_count
        assert linear_sched.element_count == region_sched.element_count

    def test_total_mismatch_rejected(self):
        a = DenseLinearization(desc(block_template((4,), (2,))))
        b = DenseLinearization(desc(block_template((5,), (2,))))
        with pytest.raises(ScheduleError):
            build_linear_schedule(a, b)


class TestScheduleCache:
    def test_hit_on_same_templates(self):
        cache = ScheduleCache()
        src = desc(block_template((8, 8), (2, 2)))
        dst = desc(block_template((8, 8), (4, 1)))
        s1 = cache.get(src, dst)
        s2 = cache.get(src, dst)
        assert s1 is s2
        assert (cache.hits, cache.misses) == (1, 1)

    def test_hit_for_different_arrays_same_template(self):
        """§2.3: reuse 'even for different arrays as long as they conform
        to the same distribution template'."""
        cache = ScheduleCache()
        t1 = block_template((8, 8), (2, 2))
        t2 = block_template((8, 8), (4, 1))
        a_src, b_src = desc(t1), desc(block_template((8, 8), (2, 2)))
        a_dst, b_dst = desc(t2), desc(block_template((8, 8), (4, 1)))
        s1 = cache.get(a_src, a_dst)
        s2 = cache.get(b_src, b_dst)  # distinct descriptor objects
        assert s1 is s2

    def test_miss_on_different_dtype(self):
        cache = ScheduleCache()
        t = block_template((8,), (2,))
        cache.get(desc(t, np.float64), desc(t, np.float64))
        cache.get(desc(t, np.float32), desc(t, np.float32))
        assert cache.misses == 2

    def test_clear(self):
        cache = ScheduleCache()
        t = block_template((8,), (2,))
        cache.get(desc(t), desc(t))
        cache.clear()
        assert len(cache) == 0 and cache.hits == 0
