"""Shared fixtures for the simmpi test package."""

import pytest

from repro.util.counters import TRANSPORT_STATS


@pytest.fixture(autouse=True)
def transport_stats():
    """Reset the process-wide transport counters around every test so
    absolute-value assertions cannot bleed between tests under xdist or
    reordering.  Yields the live counters for convenience."""
    TRANSPORT_STATS.reset()
    yield TRANSPORT_STATS
    TRANSPORT_STATS.reset()
