"""Deadlock watchdog tests: stuck jobs raise instead of hanging."""

import pytest

from repro.errors import DeadlockError, SpmdError
from repro.simmpi import run_spmd


def test_recv_from_nobody_detected():
    def main(comm):
        comm.recv(source=1 - comm.rank, tag=99)  # nobody ever sends

    with pytest.raises(SpmdError) as exc_info:
        run_spmd(2, main, deadlock_timeout=0.5)
    failures = exc_info.value.failures
    assert failures
    assert all(isinstance(e, DeadlockError) for e in failures.values())


def test_deadlock_dump_names_blocked_ranks():
    def main(comm):
        if comm.rank == 0:
            comm.recv(source=1, tag=42)
        # rank 1 returns immediately; rank 0 can never complete

    with pytest.raises(SpmdError) as exc_info:
        run_spmd(2, main, deadlock_timeout=0.5)
    err = next(iter(exc_info.value.failures.values()))
    assert isinstance(err, DeadlockError)
    assert "tag=42" in str(err.blocked) or "tag=42" in str(err)


def test_cyclic_recv_deadlock():
    """Classic head-to-head recv cycle (sends buffered, so only recv-recv
    cycles deadlock)."""
    def main(comm):
        nxt = (comm.rank + 1) % comm.size
        comm.recv(source=nxt)  # everyone waits on the next rank

    with pytest.raises(SpmdError):
        run_spmd(3, main, deadlock_timeout=0.5)


def test_no_false_positive_under_load():
    """A busy but progressing job must not trip the watchdog."""
    def main(comm):
        token = 0
        for _ in range(200):
            if comm.rank == 0:
                comm.send(token, dest=1)
                token = comm.recv(source=1) + 1
            else:
                comm.send(comm.recv(source=0), dest=0)
        return token

    results = run_spmd(2, main, deadlock_timeout=0.3)
    assert results[0] == 200
