"""Tree vs. flat collectives: identical values, identical message totals.

The binomial algorithms change the *shape* of the communication (log-P
critical path instead of a root-serialized loop) but not its semantics:
every rooted collective still moves exactly P-1 messages and a barrier
2(P-1), so the flat implementations serve as an executable oracle.
"""

import numpy as np
import pytest

from repro.simmpi import NameService, run_coupled, run_spmd


def _run_both(n, body):
    """Run ``body(comm)`` once under tree and once under flat collectives;
    returns ((tree_results, tree_msgs), (flat_results, flat_msgs))."""
    out = []
    for algo in ("tree", "flat"):
        def main(comm, algo=algo):
            comm.coll_algo = algo
            # counters are shared per job; snapshot after all threads join
            return body(comm), comm.counters

        results = run_spmd(n, main)
        out.append(([r[0] for r in results],
                    results[0][1].get("internal_msgs")))
    return out


@pytest.mark.parametrize("n", [2, 3, 4, 5, 8])
def test_bcast_tree_equals_flat(n):
    def body(comm):
        data = {"v": list(range(10)), "r": "root"} if comm.rank == 1 else None
        return comm.bcast(data, root=1)

    (tree_vals, tree_msgs), (flat_vals, flat_msgs) = _run_both(n, body)
    assert tree_vals == flat_vals
    assert tree_msgs == flat_msgs  # both: n-1 messages per bcast


@pytest.mark.parametrize("n", [2, 3, 4, 7])
def test_gather_tree_equals_flat(n):
    def body(comm):
        return comm.gather(np.full(comm.rank + 1, comm.rank), root=0)

    (tree_vals, tree_msgs), (flat_vals, flat_msgs) = _run_both(n, body)
    assert tree_msgs == flat_msgs
    assert tree_vals[1:] == flat_vals[1:]  # non-roots return None
    for a, b in zip(tree_vals[0], flat_vals[0]):
        np.testing.assert_array_equal(a, b)


@pytest.mark.parametrize("n", [2, 3, 6])
def test_allgather_and_reductions(n):
    def body(comm):
        return (comm.allgather(comm.rank * 3),
                comm.allreduce(comm.rank + 1, op="sum"),
                comm.scan(comm.rank + 1, op="sum"))

    (tree_vals, tree_msgs), (flat_vals, flat_msgs) = _run_both(n, body)
    assert tree_vals == flat_vals
    assert tree_msgs == flat_msgs


@pytest.mark.parametrize("n", [1, 2, 5, 8])
def test_barrier_message_accounting(n):
    def main(comm):
        for _ in range(3):
            comm.barrier()
        return comm.counters

    counters = run_spmd(n, main)[0]
    assert counters.get("barriers") == 3 * n
    if n > 1:
        # 2(n-1) internal messages per barrier, same total as the flat
        # central-counter barrier — only the depth differs.
        assert counters.get("internal_msgs") == 3 * 2 * (n - 1)


def test_bcast_isolation_under_tree():
    """Multi-hop forwarding must still hand every rank its own copy."""
    def main(comm):
        data = [1, 2] if comm.rank == 0 else None
        got = comm.bcast(data, root=0)
        got.append(comm.rank)
        return got

    assert run_spmd(5, main) == [[1, 2, r] for r in range(5)]


def test_raw_handles_survive_multi_hop_bcast():
    """NameService handshakes bcast process-local (unpicklable) handles;
    the tree must forward them zero-copy through intermediate ranks."""
    ns = NameService()

    def a(comm):
        inter = ns.accept("tree-raw", comm)
        if comm.rank == 0:
            inter.send(("hello", comm.rank), dest=0)
        return inter.remote_size

    def b(comm):
        inter = ns.connect("tree-raw", comm)
        if comm.rank == 0:
            assert inter.recv(source=0) == ("hello", 0)
        return inter.remote_size

    # 5 and 6 ranks force multi-level trees on both sides of the bridge.
    out = run_coupled([("a", 5, a, ()), ("b", 6, b, ())])
    assert out["a"] == [6] * 5 and out["b"] == [5] * 6


def test_nonzero_root_tree_gather_order():
    def main(comm):
        return comm.gather(comm.rank ** 2, root=2)

    results = run_spmd(6, main)
    assert results[2] == [r ** 2 for r in range(6)]
    assert all(results[i] is None for i in range(6) if i != 2)


def test_split_and_dup_still_work_at_depth():
    """split/dup ride on bcast/allgather; exercise them at sizes that
    need multi-hop trees."""
    def main(comm):
        sub = comm.split(comm.rank % 2, key=-comm.rank)
        val = sub.allreduce(comm.rank, op="sum")
        dup = comm.dup()
        return val, dup.bcast(comm.rank, root=0)

    results = run_spmd(7, main)
    evens = sum(r for r in range(7) if r % 2 == 0)
    odds = sum(r for r in range(7) if r % 2 == 1)
    for rank, (val, b) in enumerate(results):
        assert val == (evens if rank % 2 == 0 else odds)
        assert b == 0
