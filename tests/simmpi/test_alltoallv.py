"""Edge-case and property tests for Communicator.alltoallv.

The collective round planner leans on alltoallv semantics that MPI
guarantees but are easy to get wrong in a simulated runtime: zero-count
segments exchange no message, non-contiguous views are canonicalized
before hitting the wire, and a 1-rank world degenerates to a local copy.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import CommunicatorError
from repro.simmpi import run_spmd


def _exchange(nranks, counts, dtype=np.float64, recv_known=False):
    """Run one alltoallv over a counts matrix; counts[i][j] goes i->j.

    Each rank fills its segment for rank j with ``rank * 10 + j``
    (small enough to fit uint8) so the receiver can verify both the
    source and the intended destination of every element.
    """

    def main(comm):
        me = comm.rank
        sendcounts = counts[me]
        buf = np.concatenate(
            [np.full(c, me * 10 + j, dtype=dtype)
             for j, c in enumerate(sendcounts)] or
            [np.empty(0, dtype=dtype)])
        recvcounts = [counts[j][me] for j in range(nranks)]
        out = comm.alltoallv(
            buf, sendcounts,
            recvcounts=recvcounts if recv_known else None)
        expected = np.concatenate(
            [np.full(counts[j][me], j * 10 + me, dtype=dtype)
             for j in range(nranks)] or [np.empty(0, dtype=dtype)])
        np.testing.assert_array_equal(out, expected)
        assert out.dtype == np.dtype(dtype)
        return out.shape[0]

    return run_spmd(nranks, main)


@settings(max_examples=25, deadline=None)
@given(st.data())
def test_random_counts_with_zeros_round_trip(data):
    nranks = data.draw(st.integers(min_value=1, max_value=5))
    counts = data.draw(st.lists(
        st.lists(st.integers(min_value=0, max_value=6),
                 min_size=nranks, max_size=nranks),
        min_size=nranks, max_size=nranks))
    recv_known = data.draw(st.booleans())
    dtype = data.draw(st.sampled_from([np.float64, np.int64, np.float32,
                                       np.uint8]))
    got = _exchange(nranks, counts, dtype=dtype, recv_known=recv_known)
    assert got == [sum(counts[j][me] for j in range(nranks))
                   for me in range(nranks)]


def test_all_zero_counts_move_nothing():
    zeros = [[0, 0, 0]] * 3
    assert _exchange(3, zeros) == [0, 0, 0]


def test_single_rank_world_is_local_copy():
    def main(comm):
        buf = np.arange(7.0)
        out = comm.alltoallv(buf, [7])
        buf[:] = -1.0  # result must not alias the send buffer
        np.testing.assert_array_equal(out, np.arange(7.0))
        return True

    assert run_spmd(1, main) == [True]


def test_noncontiguous_strided_sendbuf():
    def main(comm):
        base = np.arange(12.0) + comm.rank * 100
        view = base[::2]  # stride-2 view, 6 elements
        assert not view.flags["C_CONTIGUOUS"]
        out = comm.alltoallv(view, [3, 3])
        # rank r receives segment r from every rank, in rank order
        seg = np.arange(12.0)[::2]
        want = np.concatenate([seg[3 * comm.rank:3 * comm.rank + 3] + s * 100
                               for s in range(2)])
        np.testing.assert_array_equal(out, want)
        return True

    assert all(run_spmd(2, main))


def test_explicit_displacements_can_reorder_and_overlap():
    def main(comm):
        buf = np.arange(10.0)
        # send buf[4:7] to rank 0 and buf[0:3] to rank 1, out of order
        out = comm.alltoallv(buf, [3, 3], sdispls=[4, 0])
        seg = [np.arange(4.0, 7.0), np.arange(0.0, 3.0)][comm.rank]
        np.testing.assert_array_equal(out, np.concatenate([seg, seg]))
        return True

    assert all(run_spmd(2, main))


def test_recvcounts_none_matches_explicit():
    counts = [[2, 0, 1], [0, 0, 4], [3, 1, 0]]
    assert (_exchange(3, counts, recv_known=False)
            == _exchange(3, counts, recv_known=True))


class TestValidation:
    @staticmethod
    def _expect_error(nranks, fn):
        def main(comm):
            with pytest.raises(CommunicatorError):
                fn(comm)
            return True

        assert all(run_spmd(nranks, main))

    def test_rejects_2d_sendbuf(self):
        self._expect_error(
            1, lambda c: c.alltoallv(np.zeros((2, 2)), [4]))

    def test_rejects_wrong_sendcounts_length(self):
        self._expect_error(
            2, lambda c: c.alltoallv(np.zeros(4), [2, 1, 1]))

    def test_rejects_negative_counts(self):
        self._expect_error(
            2, lambda c: c.alltoallv(np.zeros(4), [-1, 2]))

    def test_rejects_wrong_sdispls_length(self):
        self._expect_error(
            2, lambda c: c.alltoallv(np.zeros(4), [2, 2], sdispls=[0]))

    def test_rejects_segment_overrun(self):
        self._expect_error(
            2, lambda c: c.alltoallv(np.zeros(4), [2, 3]))

    def test_rejects_wrong_recvcounts_length(self):
        self._expect_error(
            2, lambda c: c.alltoallv(np.zeros(4), [2, 2],
                                     recvcounts=[2, 2, 2]))
