"""Intercommunicator / name-service tests: coupling two SPMD jobs."""

import numpy as np
import pytest

from repro.errors import SpmdError
from repro.simmpi import NameService, run_coupled


def test_connect_accept_basic_exchange():
    ns = NameService()

    def server(comm):
        inter = ns.accept("svc", comm)
        assert inter.remote_size == 3
        data = inter.recv(source=0, tag=1)
        inter.send(data * 2, dest=0, tag=2)
        return "served"

    def client(comm):
        inter = ns.connect("svc", comm)
        assert inter.remote_size == 2
        if comm.rank == 0:
            inter.send(21, dest=0, tag=1)
            return inter.recv(source=0, tag=2)
        return None

    # client rank 0 talks to server rank 0 only; other server rank must
    # not block on recv from nobody
    def server_fixed(comm):
        inter = ns.accept("svc", comm) if comm.rank >= 0 else None
        if comm.rank == 0:
            data = inter.recv(source=0, tag=1)
            inter.send(data * 2, dest=0, tag=2)
        return "served"

    out = run_coupled([
        ("server", 2, server_fixed, ()),
        ("client", 3, client, ()),
    ])
    assert out["client"][0] == 42
    assert out["server"] == ["served", "served"]


def test_mxn_pairwise_exchange():
    """Every rank of an M=3 job sends to its (rank % N) peer in an N=2 job."""
    ns = NameService()

    def left(comm):
        inter = ns.accept("pair", comm)
        inter.send(np.full(4, comm.rank, dtype=np.int64),
                   dest=comm.rank % inter.remote_size, tag=5)
        return None

    def right(comm):
        inter = ns.connect("pair", comm)
        sources = [m for m in range(inter.remote_size)
                   if m % comm.size == comm.rank]
        got = {}
        for _ in sources:
            data, st = inter.recv(tag=5, return_status=True)
            got[st.source] = int(data[0])
        return got

    out = run_coupled([
        ("left", 3, left, ()),
        ("right", 2, right, ()),
    ])
    assert out["right"][0] == {0: 0, 2: 2}
    assert out["right"][1] == {1: 1}


def test_sequential_connections_reuse_name():
    ns = NameService()

    def a(comm):
        i1 = ns.accept("chan", comm)
        i1.send("first", dest=0)
        i2 = ns.accept("chan", comm)
        i2.send("second", dest=0)
        return None

    def b(comm):
        i1 = ns.connect("chan", comm)
        first = i1.recv(source=0)
        i2 = ns.connect("chan", comm)
        second = i2.recv(source=0)
        return (first, second)

    out = run_coupled([("a", 1, a, ()), ("b", 1, b, ())])
    assert out["b"][0] == ("first", "second")


def test_intercomm_contexts_isolated_from_local():
    """Intercomm traffic must not be matched by local-comm receives."""
    ns = NameService()

    def a(comm):
        inter = ns.accept("iso", comm)
        inter.send("remote-msg", dest=0, tag=0)
        comm.send("local-msg", dest=0, tag=0)  # self-size-1: rank 0
        local = comm.recv(source=0, tag=0)
        remote = inter.recv(source=0, tag=0)
        return (local, remote)

    def b(comm):
        inter = ns.connect("iso", comm)
        got = inter.recv(source=0, tag=0)
        inter.send("reply", dest=0, tag=0)
        return got

    out = run_coupled([("a", 1, a, ()), ("b", 1, b, ())])
    assert out["a"][0] == ("local-msg", "reply")
    assert out["b"][0] == "remote-msg"


def test_cross_job_deadlock_detected():
    ns = NameService()

    def a(comm):
        inter = ns.accept("dl", comm)
        inter.recv(source=0, tag=1)  # b never sends tag 1

    def b(comm):
        inter = ns.connect("dl", comm)
        inter.recv(source=0, tag=1)  # a never sends either

    with pytest.raises(SpmdError):
        run_coupled([("a", 1, a, ()), ("b", 1, b, ())],
                    deadlock_timeout=0.5)
