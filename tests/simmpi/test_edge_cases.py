"""simmpi edge cases and stress tests."""

import numpy as np
import pytest

from repro.errors import CommunicatorError
from repro.simmpi import run_spmd
from repro.simmpi.ops import resolve_op
from repro.simmpi.request import wait_all


def test_single_rank_collectives():
    def main(comm):
        assert comm.bcast("x") == "x"
        assert comm.gather(5) == [5]
        assert comm.allgather(5) == [5]
        assert comm.scatter([7]) == 7
        assert comm.alltoall(["a"]) == ["a"]
        assert comm.reduce(3) == 3
        assert comm.scan(3) == 3
        comm.barrier()
        return True

    assert all(run_spmd(1, main))


def test_reduce_nonzero_root():
    def main(comm):
        return comm.reduce(comm.rank, op="sum", root=2)

    results = run_spmd(4, main)
    assert results[2] == 6
    assert results[0] is None and results[3] is None


@pytest.mark.parametrize("root", [0, 1, 2])
def test_bcast_any_root(root):
    def main(comm):
        return comm.bcast(f"from{comm.rank}" if comm.rank == root else None,
                          root=root)

    assert run_spmd(3, main) == [f"from{root}"] * 3


def test_logical_reduce_ops():
    def main(comm):
        flags = comm.rank > 0
        return (comm.allreduce(flags, op="land"),
                comm.allreduce(flags, op="lor"))

    for r in run_spmd(3, main):
        assert r == (False, True)


def test_unknown_op_rejected():
    def main(comm):
        comm.allreduce(1, op="median")

    from repro.errors import SpmdError
    with pytest.raises(SpmdError):
        run_spmd(2, main)


def test_resolve_op_passthrough():
    fn = resolve_op(lambda a, b: a - b)
    assert fn(5, 3) == 2
    with pytest.raises(CommunicatorError):
        resolve_op("mystery")


def test_wait_all():
    def main(comm):
        if comm.rank == 0:
            reqs = [comm.isend(i, dest=1, tag=i) for i in range(5)]
            wait_all(reqs)
            return None
        reqs = [comm.irecv(source=0, tag=i) for i in range(5)]
        return wait_all(reqs)

    assert run_spmd(2, main)[1] == [0, 1, 2, 3, 4]


def test_dup_chain_isolation():
    def main(comm):
        d1 = comm.dup()
        d2 = d1.dup()
        contexts = {comm.context, d1.context, d2.context}
        assert len(contexts) == 3
        # a message on d2 is invisible to comm and d1
        if comm.rank == 0:
            d2.send("deep", dest=1, tag=0)
            comm.send("shallow", dest=1, tag=0)
        else:
            assert comm.recv(source=0, tag=0) == "shallow"
            assert d2.recv(source=0, tag=0) == "deep"
        return True

    assert all(run_spmd(2, main))


def test_sendrecv_self():
    def main(comm):
        return comm.sendrecv("me", dest=comm.rank, source=comm.rank)

    assert run_spmd(2, main) == ["me", "me"]


def test_status_fields():
    def main(comm):
        if comm.rank == 0:
            comm.send(np.zeros(10, dtype=np.float64), dest=1, tag=42)
            return None
        _, st = comm.recv(return_status=True)
        return (st.source, st.tag, st.nbytes)

    assert run_spmd(2, main)[1] == (0, 42, 80)


def test_ring_stress_16_ranks():
    """Token ring over 16 ranks, 20 laps: ordering and progress under
    load."""
    laps = 20

    def main(comm):
        nxt = (comm.rank + 1) % comm.size
        prev = (comm.rank - 1) % comm.size
        if comm.rank == 0:
            comm.send(0, dest=nxt)
            for _ in range(laps - 1):
                token = comm.recv(source=prev)
                comm.send(token + 1, dest=nxt)
            return comm.recv(source=prev)
        for _ in range(laps):
            token = comm.recv(source=prev)
            comm.send(token + 1, dest=nxt)
        return None

    result = run_spmd(16, main, deadlock_timeout=10.0)
    assert result[0] == laps * 16 - 1


def test_many_outstanding_messages():
    """A flood of tagged messages consumed out of order."""
    def main(comm):
        if comm.rank == 0:
            for i in range(100):
                comm.send(i, dest=1, tag=i)
            return None
        # consume in reverse tag order
        return [comm.recv(source=0, tag=t) for t in reversed(range(100))]

    assert run_spmd(2, main)[1] == list(reversed(range(100)))


def test_allgather_object_isolation():
    """allgather results must be private copies per rank."""
    def main(comm):
        data = comm.allgather([comm.rank])
        data[0].append(99)  # mutate; must not leak to other ranks
        return data[1]

    results = run_spmd(2, main)
    assert results == [[1], [1]]


def test_scan_on_arrays():
    def main(comm):
        return comm.scan(np.full(3, comm.rank + 1.0), op="sum")

    results = run_spmd(3, main)
    np.testing.assert_array_equal(results[0], [1.0, 1.0, 1.0])
    np.testing.assert_array_equal(results[2], [6.0, 6.0, 6.0])


def test_alltoallv_empty_contributions():
    def main(comm):
        # rank 0 sends nothing at all; rank 1 sends 2 items to each
        if comm.rank == 0:
            buf = np.empty(0, dtype=np.float64)
            counts = [0, 0]
        else:
            buf = np.arange(4, dtype=np.float64)
            counts = [2, 2]
        return comm.alltoallv(buf, counts)

    results = run_spmd(2, main)
    np.testing.assert_array_equal(results[0], [0.0, 1.0])
    np.testing.assert_array_equal(results[1], [2.0, 3.0])


def test_intercomm_bad_remote_rank():
    from repro.simmpi import NameService, run_coupled

    ns = NameService()

    def a(comm):
        inter = ns.accept("bad", comm)
        with pytest.raises(CommunicatorError):
            inter.send("x", dest=5)
        return True

    def b(comm):
        ns.connect("bad", comm)
        return True

    out = run_coupled([("a", 1, a, ()), ("b", 1, b, ())])
    assert all(out["a"])
