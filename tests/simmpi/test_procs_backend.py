"""The procs execution backend: ranks as processes, payloads in shared
memory.

Everything here runs the *same* rank functions the threads backend runs
— the point of the Transport abstraction is that matching semantics,
collectives, intercommunicators and the persistent engines are backend
invariants.  The procs-only mechanics (slot rings, inline fallbacks,
cross-process watchdog and abort propagation, broker rendezvous) get
targeted coverage.
"""

import os
import pickle

import numpy as np
import pytest

from repro.dad import (
    CartesianTemplate,
    Cyclic,
    DistArrayDescriptor,
    DistributedArray,
)
from repro.errors import CommunicatorError, DeadlockError, SpmdError
from repro.highlevel import Coupler
from repro.schedule import build_region_schedule
from repro.simmpi import run_coupled, run_spmd
from repro.simmpi import payload
from repro.simmpi.intercomm import default_nameservice
from repro.simmpi.transport import resolve_backend
from repro.util.counters import TRANSPORT_STATS

BACKENDS = ["threads", "procs"]


def _ring(comm):
    right = (comm.rank + 1) % comm.size
    left = (comm.rank - 1) % comm.size
    data = np.arange(5000, dtype=np.float64) * (comm.rank + 1)
    comm.send(data, right, tag=3)
    got = comm.recv(left, tag=3)
    return float(got.sum()) + comm.allreduce(comm.rank)


@pytest.mark.parametrize("backend", BACKENDS,
                         ids=[f"backend-{b}" for b in BACKENDS])
def test_ring_exchange_identical_across_backends(backend):
    assert run_spmd(3, _ring, backend=backend) == run_spmd(3, _ring)


def test_procs_ranks_are_real_processes():
    pids = run_spmd(3, lambda comm: os.getpid(), backend="procs")
    assert len(set(pids)) == 3
    assert os.getpid() not in pids


def test_backend_env_var_selects_procs(monkeypatch):
    monkeypatch.setenv("REPRO_BACKEND", "procs")
    assert resolve_backend(None) == "procs"
    pids = run_spmd(2, lambda comm: os.getpid())
    assert os.getpid() not in pids
    with pytest.raises(ValueError, match="unknown backend"):
        resolve_backend("fibers")


def _collectives(comm):
    root_val = comm.bcast({"shape": (4, 5)} if comm.rank == 0 else None)
    gathered = comm.gather(comm.rank * 10)
    counts = [comm.rank + 1] * comm.size
    buf = np.full(sum(counts), float(comm.rank))
    swapped = comm.alltoallv(buf, counts)
    total = comm.allreduce(float(swapped.sum()))
    return root_val, gathered, total


@pytest.mark.parametrize("backend", BACKENDS,
                         ids=[f"backend-{b}" for b in BACKENDS])
def test_collectives_identical_across_backends(backend):
    assert (run_spmd(3, _collectives, backend=backend)
            == run_spmd(3, _collectives))


def _value_semantics(comm):
    if comm.rank == 0:
        arr = np.ones(4000)          # > inline threshold: slot path
        comm.send(arr, 1, tag=1)
        arr[:] = -1.0                # mutate after send
        small = np.ones(4)           # <= inline threshold
        comm.send(small, 1, tag=2)
        small[:] = -1.0
        obj = {"k": [1, 2]}
        comm.send(obj, 1, tag=3)
        obj["k"].append(3)
        return None
    a = comm.recv(0, tag=1)
    b = comm.recv(0, tag=2)
    c = comm.recv(0, tag=3)
    return float(a.sum()), float(b.sum()), c


@pytest.mark.parametrize("backend", BACKENDS,
                         ids=[f"backend-{b}" for b in BACKENDS])
def test_send_isolates_payloads(backend):
    """Mutating any payload after send must never reach the receiver —
    on procs the slot/pickle write is the isolating copy, on threads the
    defensive copy is."""
    out = run_spmd(2, _value_semantics, backend=backend)
    assert out[1] == (4000.0, 4.0, {"k": [1, 2]})


def _oversize(comm):
    peer = 1 - comm.rank
    data = np.arange(4096, dtype=np.float64) + comm.rank  # 32 KB > slot
    comm.send(data, peer, tag=9)
    got = comm.recv(peer, tag=9)
    from repro.simmpi.procs import slot_stats
    return float(got.sum()), slot_stats()


def test_procs_oversize_payload_falls_back_inline():
    """A payload larger than a slot degrades to the control queue —
    correct, never wrong, and counted as an allocation."""
    out = run_spmd(2, _oversize, backend="procs",
                   transport_opts={"slot_bytes": 4096})
    base = float(np.arange(4096).sum())
    assert out[0][0] == base + 4096 and out[1][0] == base
    for _, stats in out:
        assert stats["oversize"] >= 1
        assert stats["allocations"] >= 1


def test_segment_pool_ring_exhaustion_and_reuse():
    from repro.simmpi.shm import SegmentPool
    pool = SegmentPool(1, slot_bytes=128, slots_per_endpoint=2)
    try:
        a = pool.acquire(0)
        b = pool.acquire(0)
        assert a is not None and b is not None and a != b
        assert pool.acquire(0) is None          # ring full -> fallback
        assert pool.stats.get("ring_full") == 1
        pool.release(a)
        assert pool.acquire(0) == a             # slots recycle in place
        view = pool.slot_view(a, 16)
        view[:] = 42
        assert (pool.slot_view(a, 16) == 42).all()
    finally:
        pool.close()
        pool.unlink()


def _steady_state(comm):
    from repro.simmpi.procs import slot_stats
    peer = 1 - comm.rank
    data = np.arange(8192, dtype=np.float64)  # 64 KB: slot-ring path
    for _ in range(2):                         # warm-up
        comm.send(data, peer, tag=4)
        comm.recv(peer, tag=4)
    before = slot_stats()
    for _ in range(10):
        comm.send(data, peer, tag=4)
        comm.recv(peer, tag=4)
    after = slot_stats()
    return (after["allocations"] - before.get("allocations", 0),
            after["reuses"] - before["reuses"])


def test_procs_zero_steady_state_slot_allocations():
    """The PR 3 guarantee, ported: once the ring is warm, a steady
    send/recv loop draws every payload from recycled slots."""
    for allocs, reuses in run_spmd(2, _steady_state, backend="procs"):
        assert allocs == 0
        assert reuses == 10


def _crasher(comm):
    if comm.rank == 1:
        raise ValueError("rank 1 exploded")
    comm.recv(1, tag=99)  # would block forever without abort propagation


@pytest.mark.parametrize("backend", BACKENDS,
                         ids=[f"backend-{b}" for b in BACKENDS])
def test_crash_aborts_blocked_peers(backend):
    with pytest.raises(SpmdError) as ei:
        run_spmd(3, _crasher, backend=backend, deadlock_timeout=3.0)
    failures = ei.value.failures
    assert isinstance(failures[1], ValueError)
    assert "exploded" in str(failures[1])
    for r in (0, 2):  # aborted, not hung
        assert isinstance(failures[r], DeadlockError)


def _mutual_deadlock(comm):
    comm.recv((comm.rank + 1) % comm.size, tag=1)


@pytest.mark.parametrize("backend", BACKENDS,
                         ids=[f"backend-{b}" for b in BACKENDS])
def test_watchdog_detects_cross_process_deadlock(backend):
    with pytest.raises(SpmdError) as ei:
        run_spmd(2, _mutual_deadlock, backend=backend,
                 deadlock_timeout=1.0)
    for exc in ei.value.failures.values():
        assert isinstance(exc, DeadlockError)
        assert "watchdog" in str(exc)


def _raw_sender(comm):
    comm.send(payload.Raw(object()), 1 - comm.rank, tag=1)


def test_procs_rejects_raw_payloads_across_processes():
    with pytest.raises(SpmdError) as ei:
        run_spmd(2, _raw_sender, backend="procs", deadlock_timeout=3.0)
    assert any(isinstance(e, CommunicatorError)
               and "process-local" in str(e)
               for e in ei.value.failures.values())


# -- run_coupled failure paths (both backends) -------------------------------


def _coupled_crasher(comm):
    raise ValueError("producer died before coupling")


def _coupled_blocker(comm):
    comm.recv(0, tag=5, timeout=30)


@pytest.mark.parametrize("backend", BACKENDS,
                         ids=[f"backend-{b}" for b in BACKENDS])
def test_coupled_crash_aborts_peer_job_and_names_ranks(backend):
    """One job crashing while its peer blocks in a receive must abort
    both jobs, and the SpmdError must name failures '{job} rank {r}'
    with the originating exception surfaced."""
    with pytest.raises(SpmdError) as ei:
        run_coupled([("alpha", 1, _coupled_crasher, ()),
                     ("beta", 1, _coupled_blocker, ())],
                    deadlock_timeout=3.0, backend=backend)
    failures = ei.value.failures
    assert set(failures) == {"alpha rank 0", "beta rank 0"}
    assert isinstance(failures["alpha rank 0"], ValueError)
    assert "producer died" in str(failures["alpha rank 0"])
    assert isinstance(failures["beta rank 0"], DeadlockError)
    assert "alpha rank 0" in str(ei.value)


@pytest.mark.parametrize("backend", BACKENDS,
                         ids=[f"backend-{b}" for b in BACKENDS])
def test_coupled_cross_job_deadlock_dump_names_jobs(backend):
    def stuck(comm):
        comm.recv(0, tag=1)

    with pytest.raises(SpmdError) as ei:
        run_coupled([("left", 1, stuck, ()), ("right", 1, stuck, ())],
                    deadlock_timeout=1.0, backend=backend)
    dumps = [e.blocked for e in ei.value.failures.values()
             if isinstance(e, DeadlockError)]
    assert dumps
    for blocked in dumps:
        assert set(blocked) == {"left rank 0", "right rank 0"}


def test_spmd_error_formats_string_and_int_keys():
    err = SpmdError({"alpha rank 1": ValueError("x"), 0: KeyError("y")})
    msg = str(err)
    assert "alpha rank 1: ValueError" in msg
    assert "rank 0: KeyError" in msg


# -- coupled persistent channels over the procs backend ----------------------

_EXT = 3600
_SRC_DESC = DistArrayDescriptor(CartesianTemplate([Cyclic(_EXT, 2)]))
_DST_DESC = DistArrayDescriptor(CartesianTemplate([Cyclic(_EXT, 3)]))
_GLOBAL = np.arange(float(_EXT))


def _producer(comm):
    coupler = Coupler("procs-chan", default_nameservice)
    da = DistributedArray.from_global(_SRC_DESC, comm.rank, _GLOBAL)
    chan = coupler.open(comm, "source", da)
    for _ in range(3):
        chan.push()
    return chan.pool_stats.get("allocations", 0)


def _consumer(comm):
    coupler = Coupler("procs-chan", default_nameservice)
    chan = coupler.open(comm, "destination", _DST_DESC)
    for _ in range(3):
        out = chan.pull()
    return out


@pytest.mark.parametrize("backend", BACKENDS,
                         ids=[f"backend-{b}" for b in BACKENDS])
def test_persistent_channel_byte_identical_across_backends(backend):
    """highlevel.Channel selects the backend transparently: rendezvous
    through the broker, payloads through the slot rings, pooled packs
    stay allocation-free."""
    res = run_coupled([("prod", 2, _producer, ()),
                       ("cons", 3, _consumer, ())],
                      deadlock_timeout=30.0, backend=backend)
    np.testing.assert_array_equal(
        DistributedArray.assemble(res["cons"]), _GLOBAL)
    assert res["prod"] == [0, 0]               # zero pool allocations


def _engine_producer(comm, steps):
    inter = default_nameservice.accept("procs-direct", comm)
    da = DistributedArray.from_global(_SRC_DESC, comm.rank, _GLOBAL)
    tx = build_region_schedule(_SRC_DESC, _DST_DESC).persistent_sender(
        inter, da, tag=61)
    for _ in range(steps):
        for d in range(_DST_DESC.nranks):      # wait until every consumer
            inter.recv(d, tag=62)              # has preposted its slots
        tx.step()


def _engine_consumer(comm, steps):
    inter = default_nameservice.connect("procs-direct", comm)
    da = DistributedArray.allocate(_DST_DESC, comm.rank)
    rx = build_region_schedule(_SRC_DESC, _DST_DESC).persistent_receiver(
        inter, da, tag=61)
    d0 = TRANSPORT_STATS.get("direct_deliveries")
    for _ in range(steps):
        rx.arm()
        for s in range(_SRC_DESC.nranks):
            inter.send(None, s, tag=62)
        rx.complete(timeout=30)
    return da, TRANSPORT_STATS.get("direct_deliveries") - d0


@pytest.mark.parametrize("backend", BACKENDS,
                         ids=[f"backend-{b}" for b in BACKENDS])
def test_prepost_direct_delivery_across_backends(backend):
    """With arm-before-send ordering made explicit (consumers signal
    after preposting), every payload must land straight in destination
    memory — on procs that means scattering directly out of the shared
    slot, never staging through the mailbox queue."""
    res = run_coupled([("prod", 2, _engine_producer, (2,)),
                       ("cons", 3, _engine_consumer, (2,))],
                      deadlock_timeout=30.0, backend=backend)
    parts = [p for p, _ in res["cons"]]
    np.testing.assert_array_equal(
        DistributedArray.assemble(parts), _GLOBAL)
    for _, direct in res["cons"]:
        assert direct > 0                      # preposts actually hit


def test_distributed_array_pickle_preserves_consolidation():
    """The procs backend ships DistributedArrays between processes;
    pickling must rebuild patch views aliasing one consolidated base."""
    da = DistributedArray.from_global(_SRC_DESC, 0, _GLOBAL)
    clone = pickle.loads(pickle.dumps(da))
    np.testing.assert_array_equal(clone.flat_local(), da.flat_local())
    base = clone.flat_local()
    base[:] = -7.0
    for view in clone.patches.values():
        assert (view == -7.0).all()            # views alias the base


def _rendezvous_pair(comm, side):
    if side == "acc":
        inter = default_nameservice.accept("procs-rdv", comm)
        inter.send(np.full(100, float(comm.rank)), comm.rank, tag=2)
        return float(inter.recv(comm.rank, tag=3).sum())
    inter = default_nameservice.connect("procs-rdv", comm)
    got = inter.recv(comm.rank, tag=2)
    inter.send(got * 2, comm.rank, tag=3)
    return float(got.sum())


def test_procs_nameservice_rendezvous_both_directions():
    res = run_coupled(
        [("acc", 2, _rendezvous_pair, ("acc",)),
         ("conn", 2, _rendezvous_pair, ("conn",))],
        deadlock_timeout=10.0, backend="procs")
    assert res["conn"] == [0.0, 100.0]
    assert res["acc"] == [0.0, 200.0]


# -- one-sided RMA tier over the procs backend -------------------------------


def _rma_producer(comm, steps, crash_rank=None):
    coupler = Coupler("procs-rma", default_nameservice)
    da = DistributedArray.from_global(_SRC_DESC, comm.rank, _GLOBAL)
    chan = coupler.open(comm, "source", da, one_sided=True)
    stats0 = dict(TRANSPORT_STATS.snapshot())
    for s in range(1, steps + 1):
        if crash_rank is not None and comm.rank == crash_rank:
            raise RuntimeError("producer died mid-epoch")
        da.fill(float(s))
        chan.push()
    mode = chan.mode
    chan.close()
    delta = {k: v - stats0.get(k, 0)
             for k, v in TRANSPORT_STATS.snapshot().items()}
    return mode, delta


def _rma_consumer(comm, steps):
    coupler = Coupler("procs-rma", default_nameservice)
    chan = coupler.open(comm, "destination", _DST_DESC, one_sided=True)
    generations = []
    for _ in range(steps):
        da = chan.pull()
        values = da.flat_local()
        # seqlock property: between fence(k) and epoch_open(k+1) the
        # array is generation k in full — never a mix of generations.
        assert np.all(values == values[0]), "torn read across epochs"
        generations.append(float(values[0]))
    mode = chan.mode
    chan.close()
    return mode, generations, chan.array


def test_rma_channel_byte_identical_and_message_free():
    """The tentpole acceptance path: a one-sided persistent channel on
    real processes — every pull observes exactly one generation (no
    torn reads), steady-state steps match zero messages, and the data
    plane is carried entirely by puts."""
    steps = 3
    res = run_coupled([("prod", 2, _rma_producer, (steps,)),
                       ("cons", 3, _rma_consumer, (steps,))],
                      deadlock_timeout=30.0, backend="procs")
    assert [m for m, _ in res["prod"]] == ["rma", "rma"]
    assert [m for m, _, _ in res["cons"]] == ["rma"] * 3
    # lockstep epochs: pull s observes exactly generation s
    for _, generations, _ in res["cons"]:
        assert generations == [float(s) for s in range(1, steps + 1)]
    # the evacuated arrays still assemble to the final generation
    parts = [arr for _, _, arr in res["cons"]]
    np.testing.assert_array_equal(
        DistributedArray.assemble(parts), np.full(_EXT, float(steps)))
    for _, delta in res["prod"]:
        pairs = sum(1 for _ in range(_DST_DESC.nranks))  # 3 peers/rank
        assert delta.get("rma_puts", 0) == steps * pairs
        # after the bootstrap handles, the data plane matches nothing:
        # per steady-state step the producer matches 0 messages
        assert delta.get("messages_matched", 0) <= pairs + 1


def test_rma_crash_mid_epoch_propagates_abort():
    """A producer dying before its put must not hang the consumers'
    fences: the domain abort reaches the spinning ranks and surfaces
    as the watchdog's deadlock report, not a silent stall."""
    with pytest.raises(SpmdError) as ei:
        run_coupled([("prod", 2, _rma_producer, (2, 1)),
                     ("cons", 3, _rma_consumer, (2,))],
                    deadlock_timeout=8.0, backend="procs")
    failures = ei.value.failures
    assert any("producer died mid-epoch" in str(e)
               for e in failures.values())
    # every consumer unblocked with an error instead of spinning forever
    cons_keys = [k for k in failures if str(k).startswith("cons")]
    assert cons_keys


# -- transport counters and tunables -----------------------------------------


def test_matching_counters_track_rendezvous_cost():
    """messages_matched counts every envelope hand-off; rendezvous_waits
    counts only receives that actually blocked — the two-sided costs the
    one-sided tier exists to delete."""
    from repro.simmpi import run_spmd as _run

    def main(comm):
        m0 = TRANSPORT_STATS.get("messages_matched")
        w0 = TRANSPORT_STATS.get("rendezvous_waits")
        if comm.rank == 0:
            comm.recv(source=1)                 # blocks: nothing in flight
        else:
            comm.send(np.zeros(8), dest=0)
        comm.barrier()
        return (TRANSPORT_STATS.get("messages_matched") - m0,
                TRANSPORT_STATS.get("rendezvous_waits") - w0)

    matched, waited = _run(2, main)[0]          # rank 0: the receiver
    assert matched >= 1
    assert waited >= 1


def test_inline_max_env_validation(monkeypatch):
    from repro.simmpi.shm import _inline_max_from_env

    assert _inline_max_from_env() == 2048       # documented default
    monkeypatch.setenv("REPRO_SHM_INLINE_MAX", "4096")
    assert _inline_max_from_env() == 4096
    monkeypatch.setenv("REPRO_SHM_INLINE_MAX", "0")
    assert _inline_max_from_env() == 0          # 0 = never inline
    monkeypatch.setenv("REPRO_SHM_INLINE_MAX", "-1")
    with pytest.raises(ValueError):
        _inline_max_from_env()
    monkeypatch.setenv("REPRO_SHM_INLINE_MAX", "lots")
    with pytest.raises(ValueError):
        _inline_max_from_env()


def test_slot_view_rejects_oversized_payload():
    from repro.simmpi.shm import SegmentPool

    pool = SegmentPool(1, slot_bytes=128, slots_per_endpoint=2)
    try:
        slot = pool.acquire(0)
        with pytest.raises(ValueError, match="does not fit"):
            pool.slot_view(slot, 129)
        assert pool.slot_view(slot, 128).nbytes == 128
    finally:
        pool.close()
        pool.unlink()


def test_window_segment_geometry_checks():
    from repro.simmpi.shm import WindowSegment

    seg = WindowSegment(256, 2)
    try:
        with pytest.raises(ValueError, match="writers"):
            WindowSegment.attach(seg.name, 256, 3).close()
        with pytest.raises(ValueError, match="geometry"):
            WindowSegment.attach(seg.name, 10_000, 2).close()
        peer = WindowSegment.attach(seg.name, 256, 2)
        peer.data[:] = 7
        assert (seg.data == 7).all()            # same physical pages
        seg.set_epoch(3)
        assert peer.epoch() == 3
        peer.set_done(1, 3)
        assert seg.done(1) == 3 and seg.min_done() == 0
        peer.close()
    finally:
        seg.close()
        seg.unlink()
