"""The ``REPRO_TSAN=1`` happens-before race sanitizer.

Three layers of evidence, mirroring the PR's proof obligation:

* **accessor hooks** — the real :class:`~repro.simmpi.shm.SegmentPool`
  and :class:`~repro.simmpi.rma.ExposedWindow` verbs run clean under
  the sanitizer, and every seeded protocol corruption (the same bug
  classes :mod:`repro.verify.race` model-checks) records exactly the
  expected :class:`~repro.simmpi.sanitize.RaceReport` class;
* **concurrency stress** — a hypothesis-driven multi-threaded
  producer/consumer storm over one slot ring stays report-free at
  every drawn shape (the dynamic twin of the bounded-model clean
  proof);
* **procs backend** — a full forked-rank job runs report-free with
  the sanitizer on (the per-rank exit gate enforces it), a rank
  SIGKILLed mid-epoch aborts the domain without fabricating reports,
  and a rank that breaks the slot discipline through the *real*
  accessors fails its exit gate with the race report in the message.

Plus the two satellites that live in :mod:`repro.simmpi.shm`: the
generation-counted retired-window free list and ``slot_view`` dtype
validation.
"""

import os
import queue
import signal
import threading

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SpmdError
from repro.simmpi import rma, run_spmd, sanitize, shm
from repro.simmpi import transport
from repro.util.counters import RACE_STATS, TRANSPORT_STATS


@pytest.fixture
def tsan():
    """Enable the sanitizer for one test; restore and clear after."""
    was = sanitize.set_tsan(True)
    san = sanitize.ACTIVE
    san.clear()
    yield san
    san.clear()
    sanitize.set_tsan(was)


def _pool(**kw):
    kw.setdefault("slot_bytes", 256)
    kw.setdefault("slots_per_endpoint", 2)
    return shm.SegmentPool(1, **kw)


# -- accessor hooks: clean rounds and seeded corruptions ----------------------


def test_clean_slot_round_is_report_free(tsan):
    pool = _pool()
    try:
        s = pool.acquire(0)
        assert s is not None
        token = tsan.slot_publish(pool, s)
        tsan.slot_consume(pool, s, token)
        pool.release(s)
        assert tsan.race_reports == []
        assert RACE_STATS.snapshot().get("reports", 0) == 0
        assert RACE_STATS.snapshot().get("sync_ops", 0) > 0
    finally:
        pool.close()
        pool.unlink()


def test_early_release_mutant_fires_aba(tsan):
    """The ``release_before_consume`` mutant of the bounded model,
    executed live through the real pool verbs: releasing before the
    consume lets the slot re-acquire, and the stale-generation consume
    is reported as ABA reuse."""
    pool = _pool()
    try:
        s = pool.acquire(0)
        token = tsan.slot_publish(pool, s)
        pool.release(s)                    # seeded bug: free before read
        s2 = pool.acquire(0)               # ring hands the slot out again
        assert s2 == s
        tsan.slot_consume(pool, s, token)  # stale generation
        kinds = [r.kind for r in tsan.race_reports]
        assert kinds == [sanitize.SLOT_REUSE]
        assert RACE_STATS.snapshot().get("reports_slot_reuse", 0) == 1
    finally:
        pool.close()
        pool.unlink()


def test_double_release_mutant_fires(tsan):
    pool = _pool()
    try:
        s = pool.acquire(0)
        pool.release(s)
        pool.release(s)                    # seeded bug: double release
        kinds = [r.kind for r in tsan.race_reports]
        assert kinds == [sanitize.SLOT_REUSE]
    finally:
        pool.close()
        pool.unlink()


def test_publish_without_acquire_fires_unsync(tsan):
    pool = _pool()
    try:
        tsan.slot_publish(pool, 0)         # seeded bug: no acquire
        kinds = [r.kind for r in tsan.race_reports]
        assert kinds == [sanitize.UNSYNC_WRITE]
        assert RACE_STATS.snapshot().get(
            "reports_unsynchronized_write", 0) == 1
    finally:
        pool.close()
        pool.unlink()


def test_window_epoch_round_clean_and_torn_read_fires(tsan):
    """Real :class:`rma.ExposedWindow` verbs: a full open/put/commit/
    fence/read round is clean; a ``check_read`` inside the open epoch
    (the ``read_before_fence`` mutant) reports a torn seqlock read."""
    win = rma.ExposedWindow(64, np.float64, 1, mailbox=None)
    try:
        seg = win._seg
        win.epoch_open()
        tsan.win_put(seg, 0)               # exposed epoch: clean
        tsan.win_commit(seg, 0, 1)
        seg.set_done(0, 1)
        win.fence()                        # min(done) == 1: fast path
        win.check_read()
        assert tsan.race_reports == []

        win.epoch_open()                   # epoch 2 now open
        win.check_read()                   # seeded bug: read pre-fence
        kinds = [r.kind for r in tsan.race_reports]
        assert kinds == [sanitize.TORN_READ]
        assert RACE_STATS.snapshot().get(
            "reports_torn_seqlock_read", 0) == 1
    finally:
        tsan.clear()
        win.close()


def test_unexposed_put_and_repeat_commit_fire(tsan):
    win = rma.ExposedWindow(64, np.float64, 1, mailbox=None)
    try:
        seg = win._seg
        tsan.win_put(seg, 0)               # no epoch open yet
        win.epoch_open()
        tsan.win_commit(seg, 0, 1)
        seg.set_done(0, 1)
        tsan.win_commit(seg, 0, 1)         # seeded bug: repeat commit
        kinds = [r.kind for r in tsan.race_reports]
        assert kinds == [sanitize.UNSYNC_WRITE, sanitize.UNSYNC_WRITE]
        assert "unexposed epoch" in tsan.race_reports[0].detail
    finally:
        tsan.clear()
        win.close()


def test_state_single_writer_claims(tsan):
    """Watchdog fields: writes from the supervisor (no runtime bound)
    are clean for endpoint fields and abort; a rank process writing a
    peer endpoint's field or the abort record is reported."""
    state = shm.SharedState(2)

    class _FakeRuntime:
        endpoint = 1

    try:
        state.bump(0)
        state.set_abort("supervisor abort")
        assert tsan.race_reports == []
        transport.set_current_runtime(_FakeRuntime())
        state.bump(1)                      # own endpoint: clean
        assert tsan.race_reports == []
        state.bump(0)                      # peer endpoint: unsync
        state.set_abort("rank abort")      # supervisor-only field
        kinds = [r.kind for r in tsan.race_reports]
        assert kinds == [sanitize.UNSYNC_WRITE, sanitize.UNSYNC_WRITE]
    finally:
        transport.set_current_runtime(None)
        state.close()
        state.unlink()


# -- hypothesis stress: concurrent ring exhaustion and reuse ------------------


@settings(max_examples=10, deadline=None)
@given(writers=st.integers(1, 3), messages=st.integers(1, 8),
       slots=st.integers(1, 3))
def test_slot_ring_thread_storm_is_report_free(writers, messages, slots):
    """Threads hammer one shared ring through the real accessors —
    acquire (spinning through exhaustion), publish, consume, release —
    at hypothesis-drawn shapes.  The sanitizer must stay silent: the
    dynamic analogue of the bounded model's clean proof."""
    was = sanitize.set_tsan(True)
    san = sanitize.ACTIVE
    san.clear()
    pool = shm.SegmentPool(writers, slot_bytes=128,
                           slots_per_endpoint=slots)
    control: queue.Queue = queue.Queue()
    errors: list = []

    def produce(ep):
        try:
            san.register_actor(f"producer{ep}")
            for i in range(messages):
                slot = None
                while slot is None:        # ring exhaustion: spin
                    slot = pool.acquire(ep)
                token = san.slot_publish(pool, slot)
                control.put((slot, token))
        except BaseException as exc:  # noqa: BLE001 - surfaced below
            errors.append(exc)

    def consume():
        try:
            san.register_actor("consumer")
            for _ in range(writers * messages):
                slot, token = control.get(timeout=10)
                san.slot_consume(pool, slot, token)
                pool.release(slot)
        except BaseException as exc:  # noqa: BLE001 - surfaced below
            errors.append(exc)

    try:
        threads = [threading.Thread(target=produce, args=(ep,))
                   for ep in range(writers)]
        threads.append(threading.Thread(target=consume))
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)
        assert not errors, errors
        assert san.race_reports == []
        assert pool.stats.snapshot().get("releases") == writers * messages
    finally:
        san.clear()
        pool.close()
        pool.unlink()
        sanitize.set_tsan(was)


# -- procs backend: whole-job cleanliness, kill -9, seeded rank bug -----------


def _tsan_exchange(comm):
    peer = 1 - comm.rank
    data = np.arange(1200, dtype=np.float64) * (comm.rank + 1)  # slot path
    comm.send(data, peer, tag=5)
    got = comm.recv(peer, tag=5)
    return float(got.sum())


def test_procs_job_clean_under_tsan():
    """A forked-rank job with real slot traffic runs report-free: each
    rank's exit gate raises if its process accumulated any report, so a
    plain pass is the cleanliness proof."""
    was = sanitize.set_tsan(True)
    try:
        out = run_spmd(2, _tsan_exchange, backend="procs")
        assert out[0] == float(np.arange(1200).sum() * 2)
        assert sanitize.reports() == []
    finally:
        sanitize.set_tsan(was)


def _kill9_mid_epoch(comm):
    if comm.rank == 1:
        os.kill(os.getpid(), signal.SIGKILL)  # vanish mid-protocol
    data = np.arange(1200, dtype=np.float64)
    comm.send(data, 1 - comm.rank, tag=6)
    got = comm.recv(1 - comm.rank, tag=6)
    return float(got.sum())


def test_procs_kill9_mid_epoch_sanitizer_stays_clean():
    """A rank SIGKILLed mid-protocol must surface as a dead-process
    abort — not as fabricated race reports in the survivors or the
    supervisor."""
    was = sanitize.set_tsan(True)
    try:
        with pytest.raises(SpmdError) as ei:
            run_spmd(2, _kill9_mid_epoch, backend="procs",
                     deadlock_timeout=8.0)
        assert any("exited without reporting" in str(e)
                   for e in ei.value.failures.values())
        assert sanitize.reports() == []
    finally:
        sanitize.set_tsan(was)


def _seeded_double_release_rank(comm):
    rt = transport.current_runtime()
    slot = rt.pool.acquire(rt.endpoint)
    rt.pool.release(slot)
    rt.pool.release(slot)                  # seeded bug through real verbs
    return "survived"


def test_procs_exit_gate_fails_rank_on_seeded_report():
    """A rank that breaks the slot discipline through the *real*
    accessors must fail its exit gate — the report travels in the
    SpmdError message, proving the REPRO_TSAN CI shard would catch it."""
    was = sanitize.set_tsan(True)
    try:
        with pytest.raises(SpmdError) as ei:
            run_spmd(1, _seeded_double_release_rank, backend="procs")
        blob = " ".join(str(e) for e in ei.value.failures.values())
        assert "race sanitizer recorded" in blob
        assert sanitize.SLOT_REUSE in blob
    finally:
        sanitize.set_tsan(was)


# -- satellites: retired-window free list, slot_view validation ---------------


def test_retired_window_free_list_reclaims_on_refcount_decay():
    """close() parks the mapping while any payload view is live (the
    PR-6 segfault guard), but the generation-counted free list reclaims
    it as soon as the last view dies — no unbounded retirement."""
    seg = shm.WindowSegment(1 << 12, 1)
    view = seg.data.view(np.float64)
    view[:] = 7.0
    pending0 = shm.RETIRED_WINDOWS.pending()
    gauges0 = TRANSPORT_STATS.snapshot()
    seg.close()
    assert shm.RETIRED_WINDOWS.pending() == pending0 + 1
    snap = TRANSPORT_STATS.snapshot()
    assert (snap.get("retired_segments", 0)
            - gauges0.get("retired_segments", 0)) == 1
    assert (snap.get("retired_bytes", 0)
            - gauges0.get("retired_bytes", 0)) > 0
    assert float(view.sum()) == 7.0 * view.size   # pages still mapped
    del view
    assert shm.RETIRED_WINDOWS.sweep() >= 1
    assert shm.RETIRED_WINDOWS.pending() == pending0
    snap = TRANSPORT_STATS.snapshot()
    assert (snap.get("retired_segments", 0)
            - gauges0.get("retired_segments", 0)) == 0
    assert (snap.get("retired_bytes", 0)
            - gauges0.get("retired_bytes", 0)) == 0
    seg.unlink()


def test_new_window_construction_sweeps_free_list():
    seg = shm.WindowSegment(1 << 10, 1)
    seg.close()                            # no outside views: reclaimable
    seg.unlink()
    fresh = shm.WindowSegment(1 << 10, 1)  # construction sweeps
    try:
        assert shm.RETIRED_WINDOWS.pending() == 0
    finally:
        fresh.close()
        fresh.unlink()


def test_slot_view_validates_dtype_and_alignment():
    pool = _pool()
    try:
        ok = pool.slot_view(0, 16, dtype=np.float64)
        assert ok.size == 16
        with pytest.raises(ValueError, match="dtype mismatch"):
            pool.slot_view(0, 13, dtype=np.float64)
        with pytest.raises(ValueError, match="does not fit"):
            pool.slot_view(0, pool.slot_bytes + 1)
    finally:
        pool.close()
        pool.unlink()


def test_disabled_sanitizer_records_nothing():
    """With the sanitizer off every RACE_STATS name stays exactly zero
    across real slot traffic — the invariant the A2 ablation benchmark
    gates on.  Forces the sanitizer off for its scope so the invariant
    also holds when the suite itself runs under ``REPRO_TSAN=1``."""
    was = sanitize.set_tsan(False)
    try:
        assert sanitize.ACTIVE is None
        RACE_STATS.reset()
        pool = _pool()
        try:
            s = pool.acquire(0)
            pool.release(s)
            assert RACE_STATS.snapshot() == {}
            assert sanitize.reports() == []
        finally:
            pool.close()
            pool.unlink()
    finally:
        sanitize.set_tsan(was)
