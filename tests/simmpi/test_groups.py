"""Communicator construction: dup, split, subcommunicators."""


from repro.simmpi import run_spmd


def test_dup_isolated_context():
    """Messages on the dup must not match receives on the parent."""
    def main(comm):
        dup = comm.dup()
        assert dup.context != comm.context
        assert (dup.rank, dup.size) == (comm.rank, comm.size)
        if comm.rank == 0:
            dup.send("on-dup", dest=1, tag=7)
            comm.send("on-parent", dest=1, tag=7)
            return None
        first = comm.recv(source=0, tag=7)
        second = dup.recv(source=0, tag=7)
        return (first, second)

    assert run_spmd(2, main)[1] == ("on-parent", "on-dup")


def test_split_even_odd():
    def main(comm):
        sub = comm.split(color=comm.rank % 2)
        # even ranks: 0,2,4 -> subranks 0,1,2 ; odd: 1,3 -> 0,1
        total = sub.allreduce(comm.rank, op="sum")
        return (sub.rank, sub.size, total)

    results = run_spmd(5, main)
    assert results[0] == (0, 3, 6)   # evens: 0+2+4
    assert results[2] == (1, 3, 6)
    assert results[1] == (0, 2, 4)   # odds: 1+3
    assert results[3] == (1, 2, 4)


def test_split_key_reorders():
    def main(comm):
        # reverse rank order inside one color
        sub = comm.split(color=0, key=-comm.rank)
        return sub.rank

    assert run_spmd(3, main) == [2, 1, 0]


def test_split_nonparticipant_gets_none():
    def main(comm):
        sub = comm.split(color=0 if comm.rank < 2 else -1)
        return None if sub is None else sub.size

    assert run_spmd(4, main) == [2, 2, None, None]


def test_create_subcomm():
    def main(comm):
        sub = comm.create_subcomm([1, 3])
        if comm.rank in (1, 3):
            assert sub is not None
            return sub.allgather(comm.rank)
        assert sub is None
        return None

    results = run_spmd(4, main)
    assert results[1] == [1, 3]
    assert results[3] == [1, 3]
    assert results[0] is None


def test_nested_split():
    def main(comm):
        half = comm.split(color=comm.rank // 2)
        quarter = half.split(color=half.rank % 2)
        return quarter.size

    assert run_spmd(4, main) == [1, 1, 1, 1]


def test_split_subcomm_isolation():
    """Collectives on sibling subcommunicators must not interfere."""
    def main(comm):
        sub = comm.split(color=comm.rank % 2)
        # different collective sequences on each color simultaneously
        for _ in range(5):
            sub.barrier()
        return sub.allreduce(1, op="sum")

    results = run_spmd(6, main)
    assert results == [3, 3, 3, 3, 3, 3]
