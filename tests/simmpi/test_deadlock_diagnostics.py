"""DeadlockError diagnostics: the blocked-rank dump and abort reason
carry the same information on both execution backends."""

import re

import pytest

from repro.errors import DeadlockError, SpmdError
from repro.simmpi import run_coupled, run_spmd

BACKENDS = ["threads", "procs"]


@pytest.mark.parametrize("backend", BACKENDS)
def test_coupled_dump_names_jobs_and_reason(backend):
    """Coupled launches key the dump ``"{job} rank {r}"`` and the error
    text names the watchdog's abort reason and the blocked receive."""
    def stuck_left(comm):
        comm.recv(0, tag=7)

    def stuck_right(comm):
        comm.recv(0, tag=9)

    with pytest.raises(SpmdError) as ei:
        run_coupled([("alpha", 1, stuck_left, ()),
                     ("beta", 1, stuck_right, ())],
                    deadlock_timeout=1.0, backend=backend)
    errs = [e for e in ei.value.failures.values()
            if isinstance(e, DeadlockError)]
    assert errs, "every deadlocked rank reports a DeadlockError"
    for err in errs:
        assert set(err.blocked) == {"alpha rank 0", "beta rank 0"}
        for key, desc in err.blocked.items():
            assert re.fullmatch(r"\w+ rank \d+", key)
            assert desc.startswith("recv("), desc
        assert "deadlock detected by watchdog" in str(err)
        assert "aborted while blocked in recv(" in str(err)
    # tag visibility: the dump says *what* each rank was waiting for
    merged = errs[0].blocked
    assert "tag=7" in merged["alpha rank 0"]
    assert "tag=9" in merged["beta rank 0"]


@pytest.mark.parametrize("backend", BACKENDS)
def test_single_job_dump_uses_plain_ranks(backend):
    """Single-job launches key the dump by plain integer rank."""
    def stuck(comm):
        if comm.rank == 0:
            comm.recv(1, tag=3)
        else:
            comm.recv(0, tag=4)

    with pytest.raises(SpmdError) as ei:
        run_spmd(2, stuck, deadlock_timeout=1.0, backend=backend)
    errs = [e for e in ei.value.failures.values()
            if isinstance(e, DeadlockError)]
    assert errs
    for err in errs:
        assert set(err.blocked) == {0, 1}
        assert "deadlock detected by watchdog" in str(err)
