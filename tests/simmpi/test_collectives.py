"""Collective operation tests for the simulated MPI runtime."""

import numpy as np
import pytest

from repro.errors import SpmdError
from repro.simmpi import run_spmd


@pytest.mark.parametrize("n", [1, 2, 5])
def test_barrier_completes(n):
    def main(comm):
        for _ in range(3):
            comm.barrier()
        return True

    assert all(run_spmd(n, main))


def test_bcast_object():
    def main(comm):
        data = {"k": [1, 2, 3]} if comm.rank == 0 else None
        return comm.bcast(data, root=0)

    results = run_spmd(4, main)
    assert all(r == {"k": [1, 2, 3]} for r in results)


def test_bcast_nonzero_root():
    def main(comm):
        data = "hello" if comm.rank == 2 else None
        return comm.bcast(data, root=2)

    assert run_spmd(4, main) == ["hello"] * 4


def test_bcast_isolates_payload():
    def main(comm):
        data = [1, 2] if comm.rank == 0 else None
        got = comm.bcast(data, root=0)
        got.append(comm.rank)  # must not leak across ranks
        return got

    results = run_spmd(3, main)
    assert results == [[1, 2, 0], [1, 2, 1], [1, 2, 2]]


def test_scatter_gather_roundtrip():
    def main(comm):
        seq = [i * i for i in range(comm.size)] if comm.rank == 0 else None
        mine = comm.scatter(seq, root=0)
        assert mine == comm.rank ** 2
        return comm.gather(mine + 1, root=0)

    results = run_spmd(4, main)
    assert results[0] == [i * i + 1 for i in range(4)]
    assert results[1] is None


def test_gather_numpy_variable_sizes():
    """gather handles per-rank arrays of different lengths (gatherv)."""
    def main(comm):
        data = np.full(comm.rank + 1, comm.rank, dtype=np.int64)
        return comm.gather(data, root=0)

    parts = run_spmd(3, main)[0]
    assert [p.shape[0] for p in parts] == [1, 2, 3]
    np.testing.assert_array_equal(parts[2], [2, 2, 2])


def test_allgather():
    def main(comm):
        return comm.allgather(comm.rank * 2)

    results = run_spmd(4, main)
    assert all(r == [0, 2, 4, 6] for r in results)


def test_alltoall():
    def main(comm):
        out = [f"{comm.rank}->{j}" for j in range(comm.size)]
        return comm.alltoall(out)

    results = run_spmd(3, main)
    for j, got in enumerate(results):
        assert got == [f"{i}->{j}" for i in range(3)]


def test_alltoallv_counts_exchanged():
    """rank i sends i+1 items to every rank; recv order is by source."""
    def main(comm):
        counts = [comm.rank + 1] * comm.size
        buf = np.repeat(np.int64(comm.rank), (comm.rank + 1) * comm.size)
        return comm.alltoallv(buf, counts)

    results = run_spmd(3, main)
    for got in results:
        expected = np.concatenate(
            [np.repeat(np.int64(i), i + 1) for i in range(3)])
        np.testing.assert_array_equal(got, expected)


def test_alltoallv_with_displacements():
    def main(comm):
        n = comm.size
        buf = np.arange(n * 2, dtype=np.float64) + 100 * comm.rank
        counts = [2] * n
        displs = [2 * j for j in range(n)]
        return comm.alltoallv(buf, counts, displs)

    results = run_spmd(2, main)
    np.testing.assert_array_equal(results[0], [0, 1, 100, 101])
    np.testing.assert_array_equal(results[1], [2, 3, 102, 103])


def test_reduce_sum_scalar():
    def main(comm):
        return comm.reduce(comm.rank + 1, op="sum", root=0)

    results = run_spmd(4, main)
    assert results[0] == 10
    assert results[1] is None


def test_allreduce_ops():
    def main(comm):
        return (
            comm.allreduce(comm.rank, op="max"),
            comm.allreduce(comm.rank + 1, op="prod"),
            comm.allreduce(comm.rank, op="min"),
        )

    for r in run_spmd(3, main):
        assert r == (2, 6, 0)


def test_allreduce_numpy_elementwise():
    def main(comm):
        vec = np.full(4, float(comm.rank))
        return comm.allreduce(vec, op="sum")

    for r in run_spmd(3, main):
        np.testing.assert_array_equal(r, np.full(4, 3.0))


def test_scan_inclusive_prefix():
    def main(comm):
        return comm.scan(comm.rank + 1, op="sum")

    assert run_spmd(4, main) == [1, 3, 6, 10]


def test_reduce_custom_callable():
    def main(comm):
        return comm.allreduce((comm.rank,), op=lambda a, b: a + b)

    for r in run_spmd(3, main):
        assert r == (0, 1, 2)


def test_scatter_wrong_length_raises():
    def main(comm):
        comm.scatter([1], root=0)

    with pytest.raises(SpmdError):
        run_spmd(2, main)
