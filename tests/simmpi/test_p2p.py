"""Point-to-point messaging tests for the simulated MPI runtime."""

import numpy as np
import pytest

from repro.errors import CommunicatorError, SpmdError
from repro.simmpi import ANY_SOURCE, ANY_TAG, run_spmd


def test_send_recv_object():
    def main(comm):
        if comm.rank == 0:
            comm.send({"a": 7, "b": 3.14}, dest=1, tag=11)
            return None
        return comm.recv(source=0, tag=11)

    results = run_spmd(2, main)
    assert results[1] == {"a": 7, "b": 3.14}


def test_send_recv_numpy_roundtrip():
    def main(comm):
        if comm.rank == 0:
            comm.send(np.arange(100, dtype=np.float64), dest=1)
            return None
        return comm.recv(source=0)

    results = run_spmd(2, main)
    np.testing.assert_array_equal(results[1], np.arange(100.0))


def test_send_copies_payload():
    """Mutating the sent array after send must not affect the receiver."""
    def main(comm):
        if comm.rank == 0:
            data = np.ones(10)
            comm.send(data, dest=1)
            data[:] = -1  # mutate after send
            comm.barrier()
            return None
        comm.barrier()
        return comm.recv(source=0)

    # barrier after recv would be cleaner; ensure recv happens after mutation
    def main2(comm):
        if comm.rank == 0:
            data = np.ones(10)
            comm.send(data, dest=1)
            data[:] = -1
            comm.send("mutated", dest=1, tag=9)
            return None
        assert comm.recv(source=0, tag=9) == "mutated"
        return comm.recv(source=0, tag=0)

    results = run_spmd(2, main2)
    np.testing.assert_array_equal(results[1], np.ones(10))


def test_tag_matching_out_of_order():
    def main(comm):
        if comm.rank == 0:
            comm.send("first", dest=1, tag=1)
            comm.send("second", dest=1, tag=2)
            return None
        second = comm.recv(source=0, tag=2)
        first = comm.recv(source=0, tag=1)
        return (first, second)

    assert run_spmd(2, main)[1] == ("first", "second")


def test_fifo_per_source_and_tag():
    def main(comm):
        if comm.rank == 0:
            for i in range(20):
                comm.send(i, dest=1, tag=5)
            return None
        return [comm.recv(source=0, tag=5) for _ in range(20)]

    assert run_spmd(2, main)[1] == list(range(20))


def test_any_source_any_tag():
    def main(comm):
        if comm.rank == 0:
            got = set()
            for _ in range(comm.size - 1):
                val, st = comm.recv(ANY_SOURCE, ANY_TAG, return_status=True)
                assert val == st.source * 10
                got.add(st.source)
            return got
        comm.send(comm.rank * 10, dest=0, tag=comm.rank)
        return None

    assert run_spmd(4, main)[0] == {1, 2, 3}


def test_isend_irecv():
    def main(comm):
        if comm.rank == 0:
            req = comm.isend(np.arange(5), dest=1)
            req.wait()
            return None
        req = comm.irecv(source=0)
        assert not req.test() or True  # test() may race; wait() is the API
        data = req.wait()
        assert req.test()
        return data

    np.testing.assert_array_equal(run_spmd(2, main)[1], np.arange(5))


def test_sendrecv_exchange():
    def main(comm):
        other = 1 - comm.rank
        return comm.sendrecv(f"from{comm.rank}", dest=other, source=other)

    res = run_spmd(2, main)
    assert res == ["from1", "from0"]


def test_iprobe():
    def main(comm):
        if comm.rank == 0:
            assert comm.iprobe() is None
            comm.send("x", dest=1, tag=3)
            comm.recv(source=1, tag=4)  # sync
            return None
        comm.recv(source=0, tag=3)
        comm.send("done", dest=0, tag=4)
        return None

    run_spmd(2, main)


def test_bad_rank_raises():
    def main(comm):
        comm.send(1, dest=5)

    with pytest.raises(SpmdError) as exc_info:
        run_spmd(2, main)
    assert all(isinstance(e, CommunicatorError)
               for e in exc_info.value.failures.values())


def test_rank_exception_propagates():
    def main(comm):
        if comm.rank == 1:
            raise ValueError("boom on rank 1")
        return comm.rank

    with pytest.raises(SpmdError) as exc_info:
        run_spmd(3, main)
    assert 1 in exc_info.value.failures
    assert "boom" in str(exc_info.value.failures[1])


def test_recv_timeout():
    def main(comm):
        if comm.rank == 0:
            with pytest.raises(TimeoutError):
                comm.recv(source=1, timeout=0.2)
        return None

    run_spmd(2, main)


def test_counters_track_messages():
    def main(comm):
        if comm.rank == 0:
            comm.send(np.zeros(128, dtype=np.float64), dest=1)
        else:
            comm.recv(source=0)
        comm.barrier()
        return comm.counters.snapshot()

    counters = run_spmd(2, main)[0]
    assert counters["msgs"] >= 1
    assert counters["bytes"] >= 128 * 8
    assert counters["barriers"] == 2  # one per rank
