"""Zero-copy transport: move/borrow payload semantics, preposted
recv-into-destination slots, loaned-buffer release, poison-on-move debug
mode, and event-driven abort wakeups."""

import threading
import time

import numpy as np
import pytest

from repro.errors import DeadlockError
from repro.simmpi import payload
from repro.simmpi.constants import ANY_SOURCE, ANY_TAG
from repro.simmpi.matching import AbortFlag, Envelope, Mailbox
from repro.simmpi.intercomm import couple_jobs
from repro.simmpi.runner import Job
from repro.util.counters import TRANSPORT_STATS


@pytest.fixture
def debug_off():
    payload.set_transport_debug(False)
    yield
    payload.set_transport_debug(False)


@pytest.fixture
def debug_on():
    payload.set_transport_debug(True)
    yield
    payload.set_transport_debug(False)


def _mailbox():
    return Mailbox(0, AbortFlag())


class TestOwnedBuffer:
    def test_moves_without_copy(self, debug_off):
        buf = np.arange(8.0)
        data, nbytes = payload.pack(payload.OwnedBuffer(buf))
        assert data is buf
        assert nbytes == buf.nbytes

    def test_send_delivers_same_object(self, debug_off):
        job = Job(2)
        src, dst = couple_jobs(job, job)
        buf = np.arange(6.0)
        src[0].send(payload.OwnedBuffer(buf), dest=1, tag=7)
        got = dst[1].recv(source=0, tag=7)
        assert got is buf

    def test_requires_contiguous(self):
        with pytest.raises(ValueError):
            payload.OwnedBuffer(np.arange(10.0)[::2])

    def test_debug_mode_poisons_original(self, debug_on):
        buf = np.arange(8.0)
        keep = buf.copy()
        data, _ = payload.pack(payload.OwnedBuffer(buf))
        assert data is not buf
        np.testing.assert_array_equal(data, keep)
        assert payload.is_poisoned(buf)
        assert not payload.is_poisoned(data)

    def test_debug_mode_catches_sender_side_aliasing(self, debug_on):
        """A buggy sender that keeps using its moved buffer reads the
        poison pattern instead of silently aliasing the wire."""
        job = Job(2)
        src, dst = couple_jobs(job, job)
        buf = np.arange(8.0)
        src[0].send(payload.OwnedBuffer(buf), dest=1, tag=3)
        # deliberate use-after-move: the debug tripwire must fire
        assert payload.is_poisoned(buf)
        got = dst[1].recv(source=0, tag=3)
        np.testing.assert_array_equal(got, np.arange(8.0))
        assert not payload.is_poisoned(got)


class TestBorrowed:
    def test_snapshot_isolates_without_prepost(self, debug_off):
        job = Job(2)
        src, dst = couple_jobs(job, job)
        store = np.arange(10.0)
        src[0].send(payload.Borrowed(store[::2]), dest=1, tag=1)
        store[:] = -1.0  # sender may mutate right after send returns
        got = dst[1].recv(source=0, tag=1)
        np.testing.assert_array_equal(got, [0.0, 2.0, 4.0, 6.0, 8.0])
        assert not np.shares_memory(got, store)

    def test_prepost_writes_directly_into_destination(self, debug_off):
        job = Job(2)
        src, dst = couple_jobs(job, job)
        dest = np.zeros(4)

        def sink(values):
            dest[:] = values
            return dest.size

        before = TRANSPORT_STATS.get("direct_deliveries")
        slot = dst[1].prepost_recv(sink, source=0, tag=9)
        src[0].send(payload.Borrowed(np.arange(4.0)), dest=1, tag=9)
        assert slot.wait(timeout=5) == 4
        np.testing.assert_array_equal(dest, np.arange(4.0))
        assert TRANSPORT_STATS.get("direct_deliveries") == before + 1
        # nothing was queued: the bytes went straight through the sink
        assert job.mailboxes[1].pending_count() == 0


class TestPrepost:
    def test_queued_message_consumed_at_arm_time_fifo(self):
        mbox = _mailbox()
        mbox.deliver(Envelope(1, 0, 5, np.array([1.0]), 8))
        mbox.deliver(Envelope(1, 0, 5, np.array([2.0]), 8))
        got = []
        slot = mbox.prepost(1, 0, 5, lambda v: got.append(v) or 1)
        assert slot.done and slot.wait(timeout=1) == 1
        assert got[0][0] == 1.0  # the older message, not the newer
        assert mbox.pending_count() == 1

    def test_release_fires_on_direct_consumption(self):
        mbox = _mailbox()
        released = []
        mbox.prepost(1, 0, 5, lambda v: 1)
        mbox.deliver(Envelope(1, 0, 5, np.array([3.0]), 8,
                              release=lambda: released.append(True)))
        assert released == [True]

    def test_release_fires_when_prepost_drains_queue(self):
        mbox = _mailbox()
        released = []
        mbox.deliver(Envelope(1, 0, 5, np.array([3.0]), 8,
                              release=lambda: released.append(True)))
        mbox.prepost(1, 0, 5, lambda v: 1)
        assert released == [True]

    def test_unmatched_tag_stays_queued(self):
        mbox = _mailbox()
        mbox.prepost(1, 0, 5, lambda v: 1)
        mbox.deliver(Envelope(1, 0, 6, np.array([3.0]), 8))  # other tag
        assert mbox.pending_count() == 1

    def test_slot_wait_timeout(self):
        mbox = _mailbox()
        slot = mbox.prepost(1, 0, 5, lambda v: 1)
        with pytest.raises(TimeoutError):
            slot.wait(timeout=0.05)


class TestAbortNotification:
    def test_blocked_recv_wakes_immediately_on_abort(self):
        """No poll loop: a blocked receive must raise within
        notification latency of AbortFlag.set, not a poll tick."""
        abort = AbortFlag()
        mbox = Mailbox(0, abort)
        woke = {}

        def blocked():
            t0 = time.monotonic()
            try:
                mbox.wait_match(1, ANY_SOURCE, ANY_TAG)
            except DeadlockError:
                woke["latency"] = time.monotonic() - t0

        t = threading.Thread(target=blocked)
        t.start()
        time.sleep(0.05)  # let the receiver block
        t0 = time.monotonic()
        abort.set("test abort", {0: "recv"})
        t.join(timeout=5)
        assert not t.is_alive()
        assert "latency" in woke
        assert time.monotonic() - t0 < 0.5

    def test_blocked_prepost_wait_wakes_on_abort(self):
        abort = AbortFlag()
        mbox = Mailbox(0, abort)
        slot = mbox.prepost(1, 0, 5, lambda v: 1)
        err = {}

        def blocked():
            try:
                slot.wait()
            except DeadlockError as e:
                err["e"] = e

        t = threading.Thread(target=blocked)
        t.start()
        time.sleep(0.05)
        abort.set("test abort", {0: "prepost"})
        t.join(timeout=5)
        assert not t.is_alive()
        assert "e" in err
