"""ParticleField and SpatialDecomposition unit tests."""

import numpy as np
import pytest

from repro.dad.template import ExplicitTemplate, block_template
from repro.errors import DistributionError
from repro.particles import ParticleField, SpatialDecomposition
from repro.util.regions import Region


class TestParticleField:
    def _field(self):
        return ParticleField(
            ids=[10, 11, 12],
            positions=np.array([[0.1, 0.2], [0.5, 0.5], [0.9, 0.1]]),
            attributes={"mass": [1.0, 2.0, 3.0],
                        "vel": np.zeros((3, 2))})

    def test_basics(self):
        f = self._field()
        assert f.count == 3
        assert f.ndim == 2
        assert f.attribute_names() == ["mass", "vel"]

    def test_select(self):
        f = self._field()
        sub = f.select(f.attributes["mass"][:] > 1.5)
        assert sub.count == 2
        np.testing.assert_array_equal(sub.ids, [11, 12])
        np.testing.assert_array_equal(sub.attributes["mass"], [2.0, 3.0])

    def test_concatenate(self):
        f = self._field()
        a = f.select(np.array([True, False, True]))
        b = f.select(np.array([False, True, False]))
        merged = ParticleField.concatenate([a, b])
        assert merged.count == 3
        assert set(merged.ids) == {10, 11, 12}

    def test_concatenate_attribute_mismatch(self):
        a = ParticleField([1], np.zeros((1, 2)), {"m": [1.0]})
        b = ParticleField([2], np.zeros((1, 2)), {"q": [1.0]})
        with pytest.raises(DistributionError):
            ParticleField.concatenate([a, b])

    def test_duplicate_ids_rejected(self):
        with pytest.raises(DistributionError):
            ParticleField([1, 1], np.zeros((2, 2)))

    def test_attribute_length_checked(self):
        with pytest.raises(DistributionError):
            ParticleField([1, 2], np.zeros((2, 2)), {"m": [1.0]})

    def test_empty(self):
        f = ParticleField.empty(3, {"mass": (), "vel": (3,)})
        assert f.count == 0
        assert f.ndim == 3
        assert f.attributes["vel"].shape == (0, 3)

    def test_move(self):
        f = self._field()
        f.move(np.array([0.1, 0.0]))
        assert f.positions[0, 0] == pytest.approx(0.2)


class TestSpatialDecomposition:
    def test_block_cells(self):
        d = SpatialDecomposition.block([0.0, 0.0], [1.0, 1.0],
                                       cells=(4, 4), grid=(2, 2))
        assert d.nranks == 4
        # quadrant ownership
        assert d.owner_of(np.array([[0.1, 0.1]]))[0] == 0
        assert d.owner_of(np.array([[0.1, 0.9]]))[0] == 1
        assert d.owner_of(np.array([[0.9, 0.1]]))[0] == 2
        assert d.owner_of(np.array([[0.9, 0.9]]))[0] == 3

    def test_boundary_clamping(self):
        d = SpatialDecomposition.block([0.0], [1.0], cells=(4,), grid=(2,))
        owners = d.owner_of(np.array([[0.0], [1.0], [1.5], [-0.5]]))
        assert owners[0] == 0
        assert owners[1] == 1   # hi edge clamps into the last cell
        assert owners[2] == 1   # outside -> clamped
        assert owners[3] == 0

    def test_explicit_template_ownership(self):
        t = ExplicitTemplate((4, 4), [
            (0, Region((0, 0), (4, 1))),   # thin strip to rank 0
            (1, Region((0, 1), (4, 4))),
        ])
        d = SpatialDecomposition([0.0, 0.0], [1.0, 1.0], t)
        assert d.owner_of(np.array([[0.5, 0.1]]))[0] == 0
        assert d.owner_of(np.array([[0.5, 0.6]]))[0] == 1

    def test_contains(self):
        d = SpatialDecomposition.block([0.0, 0.0], [2.0, 1.0],
                                       cells=(2, 2), grid=(1, 1))
        mask = d.contains(np.array([[1.0, 0.5], [3.0, 0.5]]))
        np.testing.assert_array_equal(mask, [True, False])

    def test_validation(self):
        with pytest.raises(DistributionError):
            SpatialDecomposition.block([0.0], [0.0], cells=(2,), grid=(1,))
        with pytest.raises(DistributionError):
            SpatialDecomposition([0.0, 0.0], [1.0, 1.0],
                                 block_template((4,), (2,)))

    def test_dimension_mismatch_in_query(self):
        d = SpatialDecomposition.block([0.0], [1.0], cells=(2,), grid=(1,))
        with pytest.raises(DistributionError):
            d.owner_of(np.zeros((3, 2)))
