"""Particle migration and M×N exchange tests."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.particles import (
    ParticleField,
    SpatialDecomposition,
    exchange_mxn,
    migrate,
)
from repro.simmpi import NameService, run_coupled, run_spmd


def make_particles(rank, n, ndim, seed=0):
    """n particles with globally unique ids and random positions."""
    rng = np.random.default_rng(seed + rank)
    return ParticleField(
        ids=np.arange(rank * n, rank * n + n),
        positions=rng.random((n, ndim)),
        attributes={"mass": rng.random(n) + 1.0})


class TestMigrate:
    def test_ownership_restored(self):
        decomp = SpatialDecomposition.block(
            [0.0, 0.0], [1.0, 1.0], cells=(4, 4), grid=(2, 2))

        def main(comm):
            field = make_particles(comm.rank, 20, 2)
            owned = migrate(comm, field, decomp)
            owners = decomp.owner_of(owned.positions)
            assert np.all(owners == comm.rank)
            return owned

        results = run_spmd(4, main)
        total = sum(f.count for f in results)
        assert total == 80
        all_ids = np.concatenate([f.ids for f in results])
        assert len(np.unique(all_ids)) == 80

    def test_attributes_travel_with_particles(self):
        decomp = SpatialDecomposition.block(
            [0.0], [1.0], cells=(8,), grid=(4,))

        def main(comm):
            field = make_particles(comm.rank, 10, 1, seed=7)
            before = {int(i): float(m) for i, m in
                      zip(field.ids, field.attributes["mass"])}
            owned = migrate(comm, field, decomp)
            after = {int(i): float(m) for i, m in
                     zip(owned.ids, owned.attributes["mass"])}
            return before, after

        results = run_spmd(4, main)
        sent = {}
        received = {}
        for before, after in results:
            sent.update(before)
            received.update(after)
        assert sent == received  # every particle's mass intact

    def test_repeated_migration_after_movement(self):
        decomp = SpatialDecomposition.block(
            [0.0, 0.0], [1.0, 1.0], cells=(4, 4), grid=(2, 2))

        def main(comm):
            rng = np.random.default_rng(comm.rank)
            field = make_particles(comm.rank, 15, 2, seed=3)
            field = migrate(comm, field, decomp)
            for _ in range(3):
                field.move(rng.normal(0, 0.2, size=(field.count, 2)))
                field.positions[:] = np.clip(field.positions, 0.0, 1.0)
                field = migrate(comm, field, decomp)
                assert np.all(
                    decomp.owner_of(field.positions) == comm.rank)
            return field.count

        assert sum(run_spmd(4, main)) == 60

    def test_empty_ranks_ok(self):
        decomp = SpatialDecomposition.block(
            [0.0], [1.0], cells=(4,), grid=(4,))

        def main(comm):
            if comm.rank == 0:
                # all particles clustered in rank 3's territory
                field = ParticleField(
                    ids=[0, 1], positions=np.array([[0.95], [0.99]]),
                    attributes={"mass": [1.0, 2.0]})
            else:
                field = ParticleField.empty(1, {"mass": ()})
            owned = migrate(comm, field, decomp)
            return owned.count

        assert run_spmd(4, main) == [0, 0, 0, 2]

    def test_size_mismatch_rejected(self):
        decomp = SpatialDecomposition.block(
            [0.0], [1.0], cells=(4,), grid=(2,))

        def main(comm):
            from repro.errors import DistributionError
            with pytest.raises(DistributionError):
                migrate(comm, ParticleField.empty(1), decomp)
            return True

        assert all(run_spmd(3, main))


class TestExchangeMxN:
    def test_m3_to_n2(self):
        dst_decomp = SpatialDecomposition.block(
            [0.0, 0.0], [1.0, 1.0], cells=(4, 4), grid=(2, 1))
        ns = NameService()

        def producer(comm):
            inter = ns.accept("px", comm)
            field = make_particles(comm.rank, 12, 2, seed=5)
            exchange_mxn(inter, "src", field, dst_decomp)
            return field.count

        def consumer(comm):
            inter = ns.connect("px", comm)
            owned = exchange_mxn(inter, "dst", decomp=dst_decomp,
                                 ndim=2, attribute_shapes={"mass": ()})
            assert np.all(
                dst_decomp.owner_of(owned.positions) == comm.rank)
            return owned

        out = run_coupled([
            ("producer", 3, producer, ()),
            ("consumer", 2, consumer, ()),
        ])
        assert sum(out["producer"]) == 36
        received = sum(f.count for f in out["consumer"])
        assert received == 36
        ids = np.concatenate([f.ids for f in out["consumer"]])
        assert len(np.unique(ids)) == 36

    def test_bad_side(self):
        ns = NameService()

        def a(comm):
            inter = ns.accept("bx", comm)
            with pytest.raises(ValueError):
                exchange_mxn(inter, "upward")
            return True

        def b(comm):
            ns.connect("bx", comm)
            return True

        out = run_coupled([("a", 1, a, ()), ("b", 1, b, ())])
        assert all(out["a"])


@settings(max_examples=15, deadline=None)
@given(st.integers(0, 2 ** 31 - 1), st.integers(1, 30))
def test_migration_conserves_everything(seed, n_per_rank):
    """Property: migration preserves particle count, ids and attribute
    values for random particle sets."""
    decomp = SpatialDecomposition.block(
        [0.0, 0.0], [1.0, 1.0], cells=(6, 6), grid=(2, 2))

    def main(comm):
        field = make_particles(comm.rank, n_per_rank, 2, seed=seed)
        checksum = float(field.attributes["mass"].sum())
        owned = migrate(comm, field, decomp)
        assert np.all(decomp.owner_of(owned.positions) == comm.rank)
        return checksum, float(owned.attributes["mass"].sum()), owned.count

    results = run_spmd(4, main)
    sent = sum(r[0] for r in results)
    received = sum(r[1] for r in results)
    count = sum(r[2] for r in results)
    assert count == 4 * n_per_rank
    assert received == pytest.approx(sent)
