"""Bounded model checker for the lock-free protocols (repro.verify.race).

Three layers: the generic explicit-state search engine
(``explore_states``), the two protocol models (clean proofs at every
bounded scope, every seeded mutant firing with a witness trace), and
the dynamic-half selfcheck that replays the same corruptions through
the live sanitizer hooks.
"""

import pytest

from repro.simmpi import sanitize
from repro.verify.commgraph import explore_states
from repro.verify.race import (
    EPOCH_MUTANTS,
    SLOT_MUTANTS,
    check_protocols,
    epoch_model,
    sanitizer_selfcheck,
    slot_ring_model,
)

# -- explore_states engine ----------------------------------------------------


def test_explore_states_clean_run():
    # counter 0..3, one transition per step: clean, no violation/stuck
    ex = explore_states(
        0,
        lambda s: [(f"inc->{s + 1}", s + 1)] if s < 3 else [],
        lambda s: s == 3,
    )
    assert ex.ok
    assert ex.stuck is None and ex.violation is None
    assert ex.states == 4


def test_explore_states_reports_stuck_with_trace():
    # state 2 has no successors and is not final -> stuck
    ex = explore_states(
        0,
        lambda s: [(f"inc->{s + 1}", s + 1)] if s < 2 else [],
        lambda s: s == 3,
    )
    assert not ex.ok
    assert ex.stuck == 2
    assert ex.trace == ["inc->1", "inc->2"]
    assert "inc->1" in ex.witness()


def test_explore_states_check_fires_violation():
    ex = explore_states(
        0,
        lambda s: [(f"inc->{s + 1}", s + 1)] if s < 3 else [],
        lambda s: s == 3,
        check=lambda s: "boom: state two" if s == 2 else "",
    )
    assert not ex.ok
    assert ex.violation == 2
    assert ex.message == "boom: state two"
    assert len(ex.trace) == 2


def test_explore_states_state_cap():
    with pytest.raises(RuntimeError, match="state"):
        explore_states(
            0,
            lambda s: [("inc", s + 1)],
            lambda s: False,
            max_states=16,
        )


# -- slot-ring model ----------------------------------------------------------


def test_slot_ring_clean_at_bounded_scopes():
    for writers, depth, messages in ((2, 2, 2), (2, 2, 3), (3, 2, 2)):
        ex = slot_ring_model(writers, depth, messages)
        assert ex.ok, ex.witness()
        assert ex.states > 10


@pytest.mark.parametrize("mutant,expect", sorted(SLOT_MUTANTS.items()))
def test_slot_ring_mutants_fire(mutant, expect):
    ex = slot_ring_model(2, 2, 2, mutant=mutant)
    assert not ex.ok
    if expect == "stuck":
        assert ex.stuck is not None
    else:
        kind = expect.split(":", 1)[1]
        assert ex.violation is not None
        assert ex.message.startswith(kind)
    # every counterexample carries a non-empty transition witness
    assert ex.trace
    assert ex.witness()


def test_slot_ring_rejects_unknown_mutant():
    with pytest.raises(ValueError, match="unknown slot-ring mutant"):
        slot_ring_model(mutant="off_by_one")


# -- epoch model --------------------------------------------------------------


def test_epoch_clean_at_bounded_scopes():
    for writers, epochs in ((1, 1), (2, 2), (3, 2)):
        ex = epoch_model(writers, epochs)
        assert ex.ok, ex.witness()


@pytest.mark.parametrize("mutant,expect", sorted(EPOCH_MUTANTS.items()))
def test_epoch_mutants_fire(mutant, expect):
    ex = epoch_model(2, 2, mutant=mutant)
    assert not ex.ok
    if expect == "stuck":
        assert ex.stuck is not None
    else:
        kind = expect.split(":", 1)[1]
        assert ex.violation is not None
        assert ex.message.startswith(kind)
    assert ex.trace


def test_epoch_rejects_unknown_mutant():
    with pytest.raises(ValueError, match="unknown epoch mutant"):
        epoch_model(mutant="fence_twice")


# -- the full matrix ----------------------------------------------------------


def test_check_protocols_matrix_all_pass():
    results = check_protocols()
    # clean proofs at two scopes per protocol + one run per mutant
    assert len(results) == 4 + len(SLOT_MUTANTS) + len(EPOCH_MUTANTS)
    for r in results:
        assert r.passed, f"{r.label}: expected {r.expect}, got {r.outcome}"
    cleans = [r for r in results if r.mutant is None]
    assert all(r.exploration.ok for r in cleans)
    mutants = [r for r in results if r.mutant is not None]
    assert all(not r.exploration.ok for r in mutants)
    assert all(r.exploration.trace for r in mutants)


def test_model_result_labels_are_informative():
    results = check_protocols()
    labels = {r.label for r in results}
    assert any("slot_ring" in x and "mutant=" not in x for x in labels)
    assert any("mutant=skip_wait" in x for x in labels)


# -- dynamic-half selfcheck ---------------------------------------------------


def test_sanitizer_selfcheck_is_clean():
    assert sanitizer_selfcheck() == []


def test_sanitizer_selfcheck_restores_prior_tsan_state():
    was = sanitize.enabled()
    sanitizer_selfcheck()
    assert sanitize.enabled() == was
