"""Communication-graph deadlock detector, validated against the
runtime behavior of the Fig. 5 programs on both backends."""

import pytest

from repro.dad import Block, CartesianTemplate, Cyclic, DistArrayDescriptor
from repro.dca.engine import DeliveryPolicy
from repro.dca.fig5 import run_fig5
from repro.errors import DeadlockError, SpmdError
from repro.schedule.builder import build_region_schedule
from repro.verify.commgraph import (
    CommProgram,
    assert_deadlock_free,
    fig5_model,
    prmi_batch_deadlock_model,
    prmi_pipeline_model,
    prmi_serving_model,
    transfer_model,
    would_deadlock,
)


def test_fig5_eager_flagged_as_collective_order_mismatch():
    diag = would_deadlock(fig5_model(DeliveryPolicy.EAGER))
    assert diag is not None
    assert diag.kind == "collective-order mismatch"
    # The dump uses the runtime watchdog's "{job} rank {r}" key format
    # over exactly the processes that can block forever.
    assert set(diag.blocked) == {
        "provider rank 0", "callers rank 0", "callers rank 1",
        "callers rank 2"}
    assert diag.cycles, "a wait-for cycle through the provider must exist"
    assert any("provider rank 0" in cyc for cyc in diag.cycles)


def test_fig5_barrier_is_deadlock_free():
    assert would_deadlock(fig5_model(DeliveryPolicy.BARRIER)) is None
    assert_deadlock_free(fig5_model(DeliveryPolicy.BARRIER))


def test_diagnosis_to_error_matches_runtime_dump_format():
    diag = would_deadlock(fig5_model(DeliveryPolicy.EAGER))
    err = diag.to_error()
    assert isinstance(err, DeadlockError)
    assert set(err.blocked) == set(diag.blocked)
    assert all(" rank " in key for key in err.blocked)
    assert "collective-order mismatch" in str(err)


@pytest.mark.parametrize("backend", ["threads", "procs"])
def test_static_verdicts_match_runtime_fig5(backend, monkeypatch):
    """The detector's per-policy verdicts agree with actually running
    the paper's Fig. 5 scenario under each backend."""
    monkeypatch.setenv("REPRO_BACKEND", backend)
    assert would_deadlock(fig5_model(DeliveryPolicy.EAGER)) is not None
    with pytest.raises(SpmdError) as exc:
        run_fig5(DeliveryPolicy.EAGER)
    assert any(isinstance(e, DeadlockError)
               for e in exc.value.failures.values())

    assert would_deadlock(fig5_model(DeliveryPolicy.BARRIER)) is None
    out = run_fig5(DeliveryPolicy.BARRIER)
    assert out["timeline"] == ["call2", "call1"]


def test_transfer_models_are_deadlock_free():
    def desc(axis):
        return DistArrayDescriptor(CartesianTemplate([axis]))

    for src, dst in [(desc(Block(32, 4)), desc(Block(32, 3))),
                     (desc(Block(30, 3)), desc(Cyclic(30, 2)))]:
        sched = build_region_schedule(src, dst)
        assert would_deadlock(transfer_model(sched)) is None


def test_receive_cycle_detected():
    prog = CommProgram()
    a = prog.proc("left", 0)
    b = prog.proc("right", 0)
    prog.recv(a, b)
    prog.send(a, b)
    prog.recv(b, a)
    prog.send(b, a)
    diag = would_deadlock(prog)
    assert diag is not None
    assert diag.kind == "receive cycle"
    assert set(diag.blocked) == {"left rank 0", "right rank 0"}
    assert sorted(map(sorted, diag.cycles)) == [
        ["left rank 0", "right rank 0"]]
    with pytest.raises(DeadlockError):
        assert_deadlock_free(prog)


def test_consistent_exchange_passes():
    prog = CommProgram()
    a = prog.proc("left", 0)
    b = prog.proc("right", 0)
    prog.channel_pair(a, b, tag=1)
    prog.channel_pair(b, a, tag=2)
    assert would_deadlock(prog) is None


def test_barrier_order_mismatch_detected():
    # a passes "alpha" then "beta"; b does them in the opposite order —
    # the classic collective-order mismatch.
    from repro.verify.commgraph import BarrierOp

    prog = CommProgram()
    a, b = prog.procs("job", 2)
    alpha = BarrierOp((a, b), "alpha")
    beta = BarrierOp((a, b), "beta")
    prog.add(a, alpha)
    prog.add(a, beta)
    prog.add(b, beta)
    prog.add(b, alpha)
    diag = would_deadlock(prog)
    assert diag is not None
    assert diag.kind == "collective-order mismatch"
    assert "alpha" in diag.blocked["job rank 0"]
    assert "beta" in diag.blocked["job rank 1"]


def test_tag_mismatch_is_a_deadlock():
    prog = CommProgram()
    a = prog.proc("left", 0)
    b = prog.proc("right", 0)
    prog.send(a, b, tag=7)
    prog.recv(b, a, tag=8)
    diag = would_deadlock(prog)
    assert diag is not None
    assert "tag=8" in diag.blocked["right rank 0"]


def test_nondeterministic_commitment_explored():
    """A provider with two pending headers deadlocks only on one
    commitment choice — the detector must still find it."""
    prog = fig5_model(DeliveryPolicy.EAGER)
    # Sanity: under EAGER both call headers can be in flight at the
    # start, so a lucky runtime interleaving completes; the static
    # check reports the unlucky one.
    assert would_deadlock(prog) is not None


# -- one-sided (RMA) epoch model ---------------------------------------------

def test_rma_channel_model_clean_and_misuse():
    from repro.verify.commgraph import rma_channel_model

    assert would_deadlock(rma_channel_model(steps=4)) is None
    diag = would_deadlock(rma_channel_model(misuse=True))
    assert diag is not None
    assert diag.kind == "epoch-order mismatch (one-sided)"
    assert "rma_put" in diag.blocked["prod rank 0"]
    assert any("prod rank 0" in cyc and "cons rank 0" in cyc
               for cyc in diag.cycles)


def test_epoch_violations_structural_rules():
    prog = CommProgram()
    w = prog.proc("prod", 0)
    o = prog.proc("cons", 0)
    win = prog.window(o, "field")
    prog.put(w, win)
    prog.put(w, win)
    prog.epoch_open(win)
    prog.read(win)                    # inside the open epoch: torn
    prog.fence(win, (w,))
    violations = prog.epoch_violations()
    assert len(violations) == 2
    assert any("write outside an open epoch" in v for v in violations)
    assert any("torn read" in v for v in violations)
    # well-ordered program: no violations
    from repro.verify.commgraph import rma_channel_model
    assert rma_channel_model(steps=3).epoch_violations() == []


def test_rma_epoch_misuse_static_matches_live_procs():
    """The static epoch rule and the runtime watchdog must agree: a
    producer that pushes more epochs than the consumer ever opens is
    (a) flagged before launch and (b) aborted by the watchdog with an
    rma_put blocked-state dump when actually run."""
    import numpy as np
    from repro.dad import DistributedArray
    from repro.highlevel import Coupler
    from repro.simmpi import run_coupled
    from repro.simmpi.intercomm import default_nameservice

    # static: two puts against a single opened epoch
    prog = CommProgram()
    src = prog.proc("prod", 0)
    dst = prog.proc("cons", 0)
    win = prog.window(dst, "field")
    prog.put(src, win)
    prog.put(src, win)
    prog.epoch_open(win)
    prog.fence(win, (src,))
    prog.read(win)
    diag = would_deadlock(prog)
    assert diag is not None
    assert "rma_put" in diag.blocked["prod rank 0"]
    assert prog.epoch_violations()    # surplus put flagged structurally

    # live: same shape on real processes — push twice, pull once
    src_desc = DistArrayDescriptor(CartesianTemplate([Block(64, 1)]))
    dst_desc = DistArrayDescriptor(CartesianTemplate([Block(64, 1)]))

    def producer(comm):
        coupler = Coupler("rma-misuse", default_nameservice)
        da = DistributedArray.from_global(src_desc, 0, np.arange(64.0))
        chan = coupler.open(comm, "source", da, one_sided=True)
        chan.push()
        chan.push()                   # no matching pull: never licensed

    def consumer(comm):
        coupler = Coupler("rma-misuse", default_nameservice)
        chan = coupler.open(comm, "destination", dst_desc, one_sided=True)
        chan.pull()
        chan.close()

    with pytest.raises(SpmdError) as ei:
        run_coupled([("prod", 1, producer, ()), ("cons", 1, consumer, ())],
                    deadlock_timeout=3.0, backend="procs")
    assert any("rma_put" in str(e) for e in ei.value.failures.values())


# -- PRMI serving-tier models -------------------------------------------------

def test_prmi_batched_serving_model_is_deadlock_free():
    """One reply frame per request frame + flush-without-recv: every
    interleaving of the shipped batched protocol completes."""
    assert_deadlock_free(prmi_serving_model(callers=3, flushes=2))


def test_prmi_pipelined_model_is_deadlock_free():
    """Deferred return receives drained in FIFO submission order."""
    assert_deadlock_free(prmi_pipeline_model(depth=4))


def test_prmi_batch_without_deadline_deadlocks():
    """A server that withholds replies to fill a reply batch, against a
    caller blocked on its first future before flushing again: the wait
    cycle the flush deadline exists to rule out."""
    diag = would_deadlock(prmi_batch_deadlock_model())
    assert diag is not None
    assert diag.kind == "receive cycle"
    assert any({"caller rank 0", "server rank 0"} <= set(c)
               for c in diag.cycles)
