"""Ownership lint pack: each rule fires on a minimal violation, stays
quiet on the idiomatic counterpart, and the shipped source is clean."""

import pathlib
import textwrap

from repro.verify.lint import lint_paths, lint_source

SRC = pathlib.Path(__file__).resolve().parents[2] / "src"


def lint(code: str, relpath: str = "mod.py"):
    return lint_source(textwrap.dedent(code), path=relpath, relpath=relpath)


# -- V101: use after move ----------------------------------------------------

def test_v101_use_after_move():
    hits = lint("""
        def send_twice(comm, buf):
            comm.send(payload.OwnedBuffer(buf), 0, 1)
            return buf.sum()
    """)
    assert [h.rule for h in hits] == ["V101"]
    assert "moved into an OwnedBuffer" in hits[0].message


def test_v101_rebinding_clears_the_move():
    hits = lint("""
        def resend(comm, buf):
            comm.send(payload.OwnedBuffer(buf), 0, 1)
            buf = fresh()
            return buf.sum()
    """)
    assert hits == []


def test_v101_plain_move_is_clean():
    hits = lint("""
        def wire(pp, flat):
            buf = pp.gather(flat)
            return payload.OwnedBuffer(buf)
    """)
    assert hits == []


# -- V102: escaped marker ----------------------------------------------------

def test_v102_marker_stored_on_attribute():
    hits = lint("""
        def stash(self, view):
            self.pending = payload.Borrowed(view)
    """)
    assert [h.rule for h in hits] == ["V102"]


def test_v102_marker_pushed_into_container():
    hits = lint("""
        def queue_up(out, view):
            out.append(Borrowed(view))
    """)
    assert [h.rule for h in hits] == ["V102"]


def test_v102_local_and_returned_markers_are_fine():
    hits = lint("""
        def wire(pp, flat):
            buf = pp.gather(flat)
            if pp.idx is None:
                return payload.Borrowed(buf)
            wire = payload.OwnedBuffer(buf)
            return wire
    """)
    assert hits == []


# -- V103: Raw in the procs backend ------------------------------------------

def test_v103_raw_flagged_only_in_procs_modules():
    code = """
        def ship(handle):
            return payload.Raw(handle)
    """
    assert lint(code, "src/repro/simmpi/procs.py") != []
    assert lint(code, "src/repro/simmpi/shm.py") != []
    assert lint(code, "src/repro/simmpi/transport.py") == []


# -- V104: polling sleep loop ------------------------------------------------

def test_v104_sleep_loop_flagged():
    hits = lint("""
        import time
        def wait_for(flag):
            while not flag.is_set():
                time.sleep(0.01)
    """)
    assert [h.rule for h in hits] == ["V104"]


def test_v104_straight_line_sleep_allowed():
    hits = lint("""
        import time
        def stagger(s):
            time.sleep(s)
    """)
    assert hits == []


# -- pragmas and the shipped tree -------------------------------------------

def test_allow_pragma_suppresses_named_rule():
    hits = lint("""
        import time
        def poll(flag):
            while not flag.is_set():
                time.sleep(0.01)  # verify: allow(V104)
    """)
    assert hits == []


def test_shipped_source_tree_is_clean():
    assert lint_paths([SRC]) == []


# -- V105: one-sided put outside an exposure epoch ---------------------------

def test_v105_unguarded_window_put_flagged():
    hits = lint("""
        def step(rwin, values):
            rwin.put(values)
    """)
    assert [h.rule for h in hits] == ["V105"]
    assert "exposure epoch" in hits[0].message


def test_v105_guarded_put_clean():
    hits = lint("""
        def step(self, rwin, values, epoch):
            rwin.wait_open(epoch)
            rwin.put(values)

        def owner_side(self, values):
            self._win.epoch_open()
            self._win.put(values)
    """)
    assert hits == []


def test_v105_queue_put_not_a_window():
    hits = lint("""
        def pump(q, results, broker_q, item):
            q.put(item)
            results.put(item)
            broker_q.put(item)
    """)
    assert hits == []


def test_v105_allow_pragma():
    hits = lint("""
        def replay(rwin, values):
            rwin.put(values)  # verify: allow(V105)
    """)
    assert hits == []


# -- V106: per-pair allocation without a pool loan ---------------------------

def test_v106_alloc_in_pair_loop():
    hits = lint("""
        def pack_all(plan):
            for pp in plan.pairs:
                buf = np.empty(pp.element_count, np.float64)
                fill(buf, pp)
    """)
    assert [h.rule for h in hits] == ["V106"]
    assert "pool loan" in hits[0].message


def test_v106_fires_on_pair_named_iterable():
    hits = lint("""
        def stage(schedule):
            for src, dst in schedule.rank_pairs():
                out = np.zeros(count_for(src, dst))
    """)
    assert [h.rule for h in hits] == ["V106"]


def test_v106_pool_loan_in_body_is_clean():
    hits = lint("""
        def pack_all(plan, pool):
            for pp in plan.pairs:
                buf, release = pool.loan(pp.key, pp.element_count, pp.dtype)
                fill(buf, pp)
    """)
    assert hits == []


def test_v106_constant_size_alloc_is_clean():
    hits = lint("""
        def placeholders(plan):
            for pair in plan.pairs:
                sentinel = np.empty(0, np.float64)
    """)
    assert hits == []


def test_v106_nonpair_loop_is_clean():
    hits = lint("""
        def chunked(items):
            for item in items:
                buf = np.empty(item.size)
    """)
    assert hits == []


def test_v106_pragma_opts_out():
    hits = lint("""
        def pack_once(plan):
            for pp in plan.pairs:
                buf = np.empty(pp.element_count)  # verify: allow(V106)
    """)
    assert hits == []


# -- V107: per-invocation pickle in a loop -----------------------------------

def test_v107_pickle_dumps_in_loop():
    hits = lint("""
        import pickle
        def ship_all(comm, requests):
            for req in requests:
                comm.send(pickle.dumps(req), 0, 1)
    """)
    assert [h.rule for h in hits] == ["V107"]
    assert "frame" in hits[0].message


def test_v107_bare_dumps_in_while_loop():
    hits = lint("""
        from pickle import dumps
        def pump(comm, queue):
            while queue:
                comm.send(dumps(queue.pop()), 0, 1)
    """)
    assert [h.rule for h in hits] == ["V107"]


def test_v107_single_dumps_outside_loop_is_clean():
    hits = lint("""
        import pickle
        def ship_frame(comm, batch):
            comm.send(pickle.dumps(batch), 0, 1)
    """)
    assert hits == []


def test_v107_frame_codec_module_is_exempt():
    code = """
        import pickle
        def encode(entries):
            for e in entries:
                pickle.dumps(e)
    """
    assert lint(code, "src/repro/prmi/frames.py") == []
    assert [h.rule for h in lint(code, "src/repro/prmi/serving.py")] == \
        ["V107"]


def test_v107_pragma_opts_out():
    hits = lint("""
        import pickle
        def legacy(comm, reqs):
            for r in reqs:
                comm.send(pickle.dumps(r), 0, 1)  # verify: allow(V107)
    """)
    assert hits == []


# -- V108: raw shared-segment field access -----------------------------------

def test_v108_raw_flag_indexing_outside_accessor_layer():
    hits = lint("""
        def fast_release(pool, slot):
            pool._flags[slot] = 0
    """, "src/repro/simmpi/procs.py")
    assert [h.rule for h in hits] == ["V108"]
    assert "_flags" in hits[0].message


def test_v108_raw_done_read_outside_accessor_layer():
    hits = lint("""
        def peek(seg, w):
            return seg._done[w]
    """, "src/repro/schedule/executor.py")
    assert [h.rule for h in hits] == ["V108"]


def test_v108_accessor_modules_are_exempt():
    code = """
        def release(self, slot):
            self._flags[slot] = _FREE
    """
    assert lint(code, "src/repro/simmpi/shm.py") == []
    assert lint(code, "src/repro/simmpi/sanitize.py") == []


def test_v108_unrelated_subscripts_are_clean():
    hits = lint("""
        def ok(self, table, i):
            self.cache[i] = table[i]
            return self.rows[i]
    """)
    assert hits == []


def test_v108_pragma_opts_out():
    hits = lint("""
        def probe(pool, slot):
            return pool._flags[slot]  # verify: allow(V108)
    """, "src/repro/simmpi/procs.py")
    assert hits == []


# -- V109: flag transition without a paired accessor -------------------------

def test_v109_flag_store_outside_accessor_verbs():
    hits = lint("""
        def shortcut(flags, slot):
            flags[slot] = _BUSY
    """)
    assert [h.rule for h in hits] == ["V109"]
    assert "no paired release/acquire" in hits[0].message


def test_v109_state_constant_store_fires():
    hits = lint("""
        def finish(self, endpoint):
            self.table[endpoint] = STATE_FINISHED
    """)
    assert [h.rule for h in hits] == ["V109"]


def test_v109_accessor_verbs_are_exempt():
    hits = lint("""
        def release(self, slot):
            self.flags[slot] = _FREE
    """)
    assert hits == []


def test_v109_caller_of_accessor_is_exempt():
    hits = lint("""
        def teardown(self, slot):
            self.flags[slot] = _FREE
            self.pool.release(slot)
    """)
    assert hits == []


def test_v109_nonflag_store_is_clean():
    hits = lint("""
        def zero(self, slot):
            self.flags[slot] = 0
    """)
    assert hits == []


def test_v109_pragma_opts_out():
    hits = lint("""
        def init(self):
            self.flags[:] = _FREE  # verify: allow(V109)
    """)
    assert hits == []
