"""REPRO_VERIFY runtime hook: verifies once per (schedule, side, rank),
costs nothing when disabled, and surfaces plan corruption at the
executor boundary."""

import numpy as np
import pytest

from repro.dad import Block, CartesianTemplate, DistArrayDescriptor
from repro.dad.darray import DistributedArray
from repro.errors import VerificationError
from repro.schedule.builder import build_region_schedule
from repro.schedule.executor import execute_intra
from repro.schedule.indexplan import PairPlan, RankPlan
from repro.simmpi import run_spmd
from repro.verify import hook


@pytest.fixture(autouse=True)
def reset_hook():
    hook.VERIFY_STATS.reset()
    was = hook.verify_enabled()
    yield
    hook.set_verify(was)
    hook.VERIFY_STATS.reset()


def _pair():
    src = DistArrayDescriptor(CartesianTemplate([Block(24, 3)]))
    dst = DistArrayDescriptor(CartesianTemplate([Block(24, 4)]))
    return src, dst


def _run_transfer(schedule, src, dst, nranks):
    def body(comm):
        a = DistributedArray.from_global(
            src, comm.rank, np.arange(24, dtype=np.float64)) \
            if comm.rank < src.nranks else None
        b = DistributedArray.allocate(dst, comm.rank) \
            if comm.rank < dst.nranks else None
        execute_intra(schedule, comm,
                      src_array=a, dst_array=b,
                      src_ranks=list(range(src.nranks)),
                      dst_ranks=list(range(dst.nranks)))
    run_spmd(nranks, body)


def test_disabled_hook_does_no_work():
    hook.set_verify(False)
    src, dst = _pair()
    sched = build_region_schedule(src, dst)
    _run_transfer(sched, src, dst, 4)
    assert hook.VERIFY_STATS.snapshot() == {}
    assert not hasattr(sched, "_verified_sides")


def test_enabled_hook_verifies_each_side_once():
    hook.set_verify(True)
    src, dst = _pair()
    sched = build_region_schedule(src, dst)
    _run_transfer(sched, src, dst, 4)
    first = hook.VERIFY_STATS.snapshot()
    # 3 send ranks + 4 recv ranks proved exactly once.
    assert first["rank_checks"] == src.nranks + dst.nranks
    _run_transfer(sched, src, dst, 4)
    second = hook.VERIFY_STATS.snapshot()
    assert second["rank_checks"] == first["rank_checks"]
    assert second["cache_hits"] > 0


def test_enabled_hook_rejects_corrupted_plan():
    hook.set_verify(True)
    src, dst = _pair()
    sched = build_region_schedule(src, dst)
    plan = sched.send_plan(0, src.local_regions(0))
    pp = plan.pairs[0]
    sched._plans[("send", 0)] = RankPlan(
        (PairPlan(pp.peer, pp.size, pp.lo + 1, None),) + plan.pairs[1:])
    from repro.errors import SpmdError
    with pytest.raises(SpmdError) as exc:
        _run_transfer(sched, src, dst, 4)
    assert any(isinstance(e, VerificationError)
               for e in exc.value.failures.values())


def test_env_var_controls_default(monkeypatch):
    import importlib

    monkeypatch.setenv("REPRO_VERIFY", "1")
    importlib.reload(hook)
    try:
        assert hook.verify_enabled()
        monkeypatch.setenv("REPRO_VERIFY", "0")
        importlib.reload(hook)
        assert not hook.verify_enabled()
    finally:
        monkeypatch.delenv("REPRO_VERIFY", raising=False)
        importlib.reload(hook)
