"""Schedule verifier: proofs pass on correct schedules, and every
property violation is detected on deliberately corrupted ones."""

import numpy as np
import pytest

from repro.dad import (
    Block,
    BlockCyclic,
    CartesianTemplate,
    Cyclic,
    DistArrayDescriptor,
    ExplicitTemplate,
    GeneralizedBlock,
)
from repro.dad.template import block_template
from repro.errors import VerificationError
from repro.linearize import DenseLinearization
from repro.schedule.builder import (
    build_linear_schedule,
    build_region_schedule,
)
from repro.schedule.indexplan import PairPlan, RankPlan
from repro.schedule.plan import CommSchedule, TransferItem
from repro.util.regions import Region
from repro.verify.schedule import (
    verify_against_oracle,
    verify_linear_schedule,
    verify_rank_plans,
    verify_schedule,
)


def cart(*axes):
    return DistArrayDescriptor(CartesianTemplate(list(axes)))


PAIRS = {
    "block": (cart(Block(40, 4)), cart(Block(40, 5))),
    "cyclic": (cart(Cyclic(36, 3)), cart(Block(36, 4))),
    "block-cyclic": (
        cart(BlockCyclic(48, 4, 4)), cart(Cyclic(48, 3))),
    "generalized-block": (
        cart(GeneralizedBlock(30, [4, 16, 10])), cart(Block(30, 3))),
    "explicit": (
        DistArrayDescriptor(ExplicitTemplate((6, 8), [
            (0, Region((0, 0), (4, 5))),
            (1, Region((0, 5), (4, 8))),
            (2, Region((4, 0), (6, 8))),
        ])),
        DistArrayDescriptor(block_template((6, 8), (2, 2)))),
}


@pytest.mark.parametrize("kind", sorted(PAIRS))
def test_every_builder_kind_proves_against_oracle(kind):
    src, dst = PAIRS[kind]
    sched = build_region_schedule(src, dst)
    proof = verify_against_oracle(sched, src, dst)
    assert proof.elements == np.prod(src.shape)
    assert any("oracle" in c for c in proof.checks)
    assert any("completeness" in c for c in proof.checks)


@pytest.mark.parametrize("kind", sorted(PAIRS))
def test_sweep_builder_proves_too(kind):
    src, dst = PAIRS[kind]
    sched = build_region_schedule(src, dst, force_general=True)
    verify_against_oracle(sched, src, dst)


def _block_pair():
    return cart(Block(24, 3)), cart(Block(24, 4))


def test_dropped_item_fails_completeness():
    src, dst = _block_pair()
    good = build_region_schedule(src, dst)
    broken = CommSchedule(good.items[:-1], good.src_nranks, good.dst_nranks)
    with pytest.raises(VerificationError, match="completeness"):
        verify_schedule(broken, src, dst)


def test_duplicated_item_fails_disjointness():
    src, dst = _block_pair()
    good = build_region_schedule(src, dst)
    broken = CommSchedule(good.items + [good.items[0]],
                          good.src_nranks, good.dst_nranks)
    with pytest.raises(VerificationError, match="disjointness"):
        verify_schedule(broken, src, dst)


def test_misrouted_item_fails_ownership():
    src, dst = _block_pair()
    good = build_region_schedule(src, dst)
    it = good.items[0]
    rerouted = [TransferItem((it.src + 1) % good.src_nranks, it.dst,
                             it.region)] + good.items[1:]
    with pytest.raises(VerificationError, match="ownership"):
        verify_schedule(CommSchedule(rerouted, good.src_nranks,
                                     good.dst_nranks), src, dst)


def test_all_failures_reported_together():
    src, dst = _block_pair()
    good = build_region_schedule(src, dst)
    it = good.items[0]
    broken = CommSchedule(
        [TransferItem((it.src + 1) % good.src_nranks, it.dst, it.region),
         it] + good.items[1:],
        good.src_nranks, good.dst_nranks)
    with pytest.raises(VerificationError) as exc:
        verify_schedule(broken, src, dst)
    text = str(exc.value)
    assert "ownership" in text and "disjointness" in text


def test_tampered_fast_path_plan_is_caught():
    """A plan whose slice claim points at the wrong offset must fail the
    plan-consistency proof even though coverage stays intact."""
    src, dst = _block_pair()
    sched = build_region_schedule(src, dst)
    plan = sched.send_plan(0, src.local_regions(0))
    pp = plan.pairs[0]
    assert pp.contiguous
    sched._plans[("send", 0)] = RankPlan(
        (PairPlan(pp.peer, pp.size, pp.lo + 1, None),) + plan.pairs[1:])
    with pytest.raises(VerificationError, match="fallback gather"):
        verify_rank_plans(sched, "send", 0, src.local_regions(0))
    with pytest.raises(VerificationError):
        verify_schedule(sched, src, dst)


def test_shape_mismatch_rejected():
    src = cart(Block(24, 3))
    dst = cart(Block(25, 3))
    sched = build_region_schedule(src, src)
    with pytest.raises(VerificationError, match="shapes differ"):
        verify_schedule(sched, src, dst)


def test_linear_schedule_proof_and_corruption():
    src, dst = cart(Block(30, 3)), cart(Cyclic(30, 2))
    src_lin, dst_lin = DenseLinearization(src), DenseLinearization(dst)
    sched = build_linear_schedule(src_lin, dst_lin)
    proof = verify_linear_schedule(sched, src_lin, dst_lin)
    assert proof.elements == 30
    broken = type(sched)(sched.items[:-1], sched.src_nranks,
                         sched.dst_nranks)
    with pytest.raises(VerificationError, match="completeness"):
        verify_linear_schedule(broken, src_lin, dst_lin)


def test_verification_error_pickles_with_failures():
    import pickle

    err = VerificationError("bad schedule", ["completeness: 3 missing"])
    back = pickle.loads(pickle.dumps(err))
    assert back.failures == err.failures
    assert "bad schedule" in str(back)


# -- collective round plans ---------------------------------------------------

def _coll_pair():
    """A fan-out pair whose 256-byte rounds must chunk (pair streams
    larger than the 32-element cap)."""
    return cart(Cyclic(360, 3)), cart(Block(360, 4))


def _tamper(sched, rounds, *, itemsize=8, round_bytes=256):
    """Replace the memoized collective plan with a corrupted one so the
    verifier re-derives its proof from the tampered rounds."""
    from repro.schedule.collplan import CollectivePlan

    sched._coll_plans[(itemsize, round_bytes)] = CollectivePlan(
        [list(r) for r in rounds], itemsize=itemsize,
        round_bytes=round_bytes, src_nranks=sched.src_nranks,
        dst_nranks=sched.dst_nranks)


@pytest.mark.parametrize("kind", sorted(PAIRS))
def test_collective_plan_proves_on_every_builder_kind(kind):
    from repro.verify.schedule import verify_collective_plan

    src, dst = PAIRS[kind]
    sched = build_region_schedule(src, dst)
    proof = verify_collective_plan(sched, src, dst, round_bytes=64)
    assert any("chunk tiling" in c for c in proof.checks)
    assert any("round byte conservation" in c for c in proof.checks)
    assert any("memory bound" in c for c in proof.checks)


def test_collective_plan_chunks_when_streams_exceed_cap():
    from repro.verify.schedule import verify_collective_plan

    src, dst = _coll_pair()
    sched = build_region_schedule(src, dst)
    coll = sched.collective_plan(8, 256)
    assert coll.nrounds > 1  # the cap actually forced chunking
    verify_collective_plan(sched, src, dst, round_bytes=256)


def test_collective_dropped_chunk_fails_conservation():
    from repro.verify.schedule import verify_collective_plan

    src, dst = _coll_pair()
    sched = build_region_schedule(src, dst)
    good = sched.collective_plan(8, 256)
    rounds = [list(r) for r in good.rounds]
    rounds[0] = rounds[0][1:]  # lose one chunk
    _tamper(sched, rounds)
    with pytest.raises(VerificationError) as exc:
        verify_collective_plan(sched, src, dst, round_bytes=256)
    assert any("conservation" in f for f in exc.value.failures)
    assert any("do not tile" in f for f in exc.value.failures)


def test_collective_duplicated_chunk_fails_tiling():
    from repro.verify.schedule import verify_collective_plan

    src, dst = _coll_pair()
    sched = build_region_schedule(src, dst)
    good = sched.collective_plan(8, 256)
    rounds = [list(r) for r in good.rounds]
    rounds[-1] = rounds[-1] + [rounds[0][0]]  # re-ship an early chunk
    _tamper(sched, rounds)
    with pytest.raises(VerificationError) as exc:
        verify_collective_plan(sched, src, dst, round_bytes=256)
    assert any("do not tile" in f for f in exc.value.failures)


def test_collective_cap_violation_detected():
    from repro.schedule.collplan import RoundChunk
    from repro.verify.schedule import verify_collective_plan

    src, dst = _coll_pair()
    sched = build_region_schedule(src, dst)
    good = sched.collective_plan(8, 256)
    # fuse each pair's chunked stream into one oversized chunk in round 0
    fused = {}
    for r in good.rounds:
        for c in r:
            lo, hi = fused.get((c.src, c.dst), (c.lo, c.hi))
            fused[(c.src, c.dst)] = (min(lo, c.lo), max(hi, c.hi))
    rounds = [[RoundChunk(s, d, lo, hi)
               for (s, d), (lo, hi) in sorted(fused.items())]]
    _tamper(sched, rounds)
    with pytest.raises(VerificationError) as exc:
        verify_collective_plan(sched, src, dst, round_bytes=256)
    assert any("cap is" in f for f in exc.value.failures)


def test_collective_misbooked_load_table_detected():
    from repro.verify.schedule import verify_collective_plan

    src, dst = _coll_pair()
    sched = build_region_schedule(src, dst)
    coll = sched.collective_plan(8, 256)
    some_src = next(iter(coll._send_bytes[0]))
    coll._send_bytes[0][some_src] += 8  # cook the books, keep the chunks
    with pytest.raises(VerificationError) as exc:
        verify_collective_plan(sched, src, dst, round_bytes=256)
    assert any("books" in f or "advertised" in f
               for f in exc.value.failures)
