"""M×N component tests: registration, connections, dataReady protocol."""

import numpy as np
import pytest

from repro.dad import AccessMode, DistArrayDescriptor, DistributedArray
from repro.dad.template import block_template
from repro.errors import ConnectionError_, RegistrationError, SpmdError
from repro.mxn import ConnectionKind, ConnectionSpec, MxNComponent
from repro.simmpi import NameService, run_coupled, run_spmd

SHAPE = (8, 6)
G = np.arange(48.0).reshape(SHAPE)


def make_sides(m, n):
    src_desc = DistArrayDescriptor(block_template(SHAPE, (m, 1)), G.dtype)
    dst_desc = DistArrayDescriptor(block_template(SHAPE, (1, n)), G.dtype)
    return src_desc, dst_desc


class TestRegistration:
    def test_register_and_query(self):
        def main(comm):
            desc = DistArrayDescriptor(block_template(SHAPE, (2, 1)), G.dtype)
            mxn = MxNComponent(comm)
            da = DistributedArray.from_global(desc, comm.rank, G)
            mxn.register("temperature", da, AccessMode.READ)
            assert mxn.field_names() == ["temperature"]
            assert mxn.descriptor("temperature").shape == SHAPE
            return True

        assert all(run_spmd(2, main))

    def test_duplicate_rejected(self):
        def main(comm):
            desc = DistArrayDescriptor(block_template(SHAPE, (1, 1)), G.dtype)
            mxn = MxNComponent(comm)
            da = DistributedArray.allocate(desc, 0)
            mxn.register("f", da)
            with pytest.raises(RegistrationError):
                mxn.register("f", da)
            return True

        assert all(run_spmd(1, main))

    def test_wrong_rank_storage_rejected(self):
        def main(comm):
            desc = DistArrayDescriptor(block_template(SHAPE, (2, 1)), G.dtype)
            mxn = MxNComponent(comm)
            da = DistributedArray.allocate(desc, 1 - comm.rank)
            with pytest.raises(RegistrationError):
                mxn.register("f", da)
            return True

        assert all(run_spmd(2, main))

    def test_unregister(self):
        def main(comm):
            desc = DistArrayDescriptor(block_template(SHAPE, (1, 1)), G.dtype)
            mxn = MxNComponent(comm)
            mxn.register("f", DistributedArray.allocate(desc, 0))
            mxn.unregister("f")
            assert mxn.field_names() == []
            with pytest.raises(RegistrationError):
                mxn.unregister("f")
            return True

        assert all(run_spmd(1, main))


def run_transfer(m, n, kind=ConnectionKind.ONE_SHOT, period=1, cycles=1,
                 src_mode=AccessMode.READ, dst_mode=AccessMode.WRITE):
    src_desc, dst_desc = make_sides(m, n)
    ns = NameService()

    def source(comm):
        inter = ns.accept("mxn", comm)
        mxn = MxNComponent(comm)
        da = DistributedArray.from_global(src_desc, comm.rank, G)
        mxn.register("field", da, src_mode)
        conn = mxn.connect(inter, "source", "field", kind, period)
        fired = []
        for c in range(cycles):
            # evolve the data each cycle so transfers are distinguishable
            for _, arr in da.iter_patches():
                arr += 0 if c == 0 else 1000
            fired.append(conn.data_ready())
        return fired, comm.counters.snapshot()

    def dest(comm):
        inter = ns.connect("mxn", comm)
        mxn = MxNComponent(comm)
        da = DistributedArray.allocate(dst_desc, comm.rank)
        mxn.register("field", da, dst_mode)
        conn = mxn.connect(inter, "destination", "field", kind, period)
        snapshots = []
        for _c in range(cycles):
            if conn.data_ready():
                snapshots.append(
                    {r: a.copy() for r, a in da.iter_patches()})
        return da, snapshots

    out = run_coupled([("src", m, source, ()), ("dst", n, dest, ())])
    return out


class TestOneShot:
    @pytest.mark.parametrize("m,n", [(2, 3), (4, 2), (1, 4), (3, 1)])
    def test_transfer_correct(self, m, n):
        out = run_transfer(m, n)
        parts = [r[0] for r in out["dst"]]
        np.testing.assert_array_equal(DistributedArray.assemble(parts), G)

    def test_one_shot_cannot_repeat(self):
        with pytest.raises(SpmdError):
            run_transfer(2, 2, cycles=2)

    def test_no_barriers_used(self):
        """§4.1: 'no additional synchronization barriers are required'."""
        out = run_transfer(3, 2)
        src_counters = out["src"][0][1]
        assert src_counters.get("barriers", 0) == 0


class TestPersistent:
    def test_periodic_fires_on_period(self):
        out = run_transfer(2, 2, kind=ConnectionKind.PERSISTENT,
                           period=3, cycles=7)
        fired = out["src"][0][0]
        assert fired == [True, False, False, True, False, False, True]

    def test_updates_propagate(self):
        out = run_transfer(2, 2, kind=ConnectionKind.PERSISTENT,
                           period=1, cycles=3)
        _, snapshots = out["dst"][0]
        assert len(snapshots) == 3
        # source added 1000 per cycle after the first
        first = next(iter(snapshots[0].values()))
        last = next(iter(snapshots[2].values()))
        np.testing.assert_array_equal(last, first + 2000)


class TestAccessModes:
    def test_read_only_field_cannot_be_destination(self):
        with pytest.raises(SpmdError) as exc_info:
            run_transfer(1, 1, dst_mode=AccessMode.READ)
        assert any(isinstance(e, ConnectionError_)
                   for e in exc_info.value.failures.values())

    def test_write_only_field_cannot_be_source(self):
        with pytest.raises(SpmdError):
            run_transfer(1, 1, src_mode=AccessMode.WRITE)


class TestThirdParty:
    def test_spec_built_without_either_side(self):
        """A third party builds the connection from descriptors alone."""
        m, n = 2, 3
        src_desc, dst_desc = make_sides(m, n)
        spec = ConnectionSpec(src_desc, dst_desc,
                              ConnectionKind.ONE_SHOT, connection_id=7)
        ns = NameService()

        def source(comm):
            inter = ns.accept("tp", comm)
            mxn = MxNComponent(comm)
            mxn.register("f", DistributedArray.from_global(
                src_desc, comm.rank, G))
            conn = mxn.connect_with_spec(inter, "source", "f", spec)
            conn.data_ready()
            return True

        def dest(comm):
            inter = ns.connect("tp", comm)
            mxn = MxNComponent(comm)
            da = DistributedArray.allocate(dst_desc, comm.rank)
            mxn.register("f", da)
            conn = mxn.connect_with_spec(inter, "destination", "f", spec)
            conn.data_ready()
            return da

        out = run_coupled([("src", m, source, ()), ("dst", n, dest, ())])
        np.testing.assert_array_equal(
            DistributedArray.assemble(out["dst"]), G)

    def test_spec_mismatch_rejected(self):
        src_desc, dst_desc = make_sides(1, 1)
        other_desc = DistArrayDescriptor(
            block_template(SHAPE, (1, 1)), np.float32)
        spec = ConnectionSpec(other_desc, dst_desc)
        ns = NameService()

        def source(comm):
            inter = ns.accept("mm", comm)
            mxn = MxNComponent(comm)
            mxn.register("f", DistributedArray.from_global(
                src_desc, comm.rank, G))
            with pytest.raises(ConnectionError_):
                mxn.connect_with_spec(inter, "source", "f", spec)
            return True

        def dest(comm):
            ns.connect("mm", comm)
            return True

        out = run_coupled([("src", 1, source, ()), ("dst", 1, dest, ())])
        assert all(out["src"])

    def test_spec_validates_parameters(self):
        src_desc, dst_desc = make_sides(1, 1)
        with pytest.raises(ConnectionError_):
            ConnectionSpec(src_desc, dst_desc, period=0)
        bad_desc = DistArrayDescriptor(block_template((3, 3), (1, 1)))
        with pytest.raises(ConnectionError_):
            ConnectionSpec(src_desc, bad_desc)


def test_connection_parameter_mismatch_detected():
    src_desc, dst_desc = make_sides(1, 1)
    ns = NameService()

    def source(comm):
        inter = ns.accept("pm", comm)
        mxn = MxNComponent(comm)
        mxn.register("f", DistributedArray.from_global(src_desc, 0, G))
        with pytest.raises(ConnectionError_):
            mxn.connect(inter, "source", "f", ConnectionKind.ONE_SHOT)
        return True

    def dest(comm):
        inter = ns.connect("pm", comm)
        mxn = MxNComponent(comm)
        mxn.register("f", DistributedArray.allocate(dst_desc, 0))
        try:
            mxn.connect(inter, "destination", "f",
                        ConnectionKind.PERSISTENT, period=5)
        except ConnectionError_:
            pass
        return True

    out = run_coupled([("src", 1, source, ()), ("dst", 1, dest, ())])
    assert all(out["src"]) and all(out["dst"])
