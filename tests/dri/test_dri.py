"""DRI-1.0 model tests: types, datasets, staged reorganization."""

import numpy as np
import pytest

from repro.dri import (
    BLOCK,
    BLOCK_CYCLIC,
    DRIDataset,
    DRIReorg,
    DRI_TYPES,
    dri_dtype,
)
from repro.dri.dataset import COLLAPSED, Partition
from repro.errors import ReproError, ScheduleError
from repro.simmpi import run_spmd


class TestTypes:
    def test_standard_types_present(self):
        """The paper's list: 12 standard types."""
        expected = {"float", "double", "complex", "double_complex",
                    "integer", "short", "unsigned_short", "long",
                    "unsigned_long", "char", "unsigned_char", "byte"}
        assert set(DRI_TYPES) == expected

    def test_dtype_mapping(self):
        assert dri_dtype("double") == np.float64
        assert dri_dtype("COMPLEX") == np.complex64
        assert dri_dtype("byte") == np.uint8

    def test_unknown_type(self):
        with pytest.raises(ReproError):
            dri_dtype("quaternion")


class TestDataset:
    def test_max_three_dims(self):
        DRIDataset((4, 4, 4), [BLOCK(2), BLOCK(2), COLLAPSED])
        with pytest.raises(ReproError):
            DRIDataset((2, 2, 2, 2), [BLOCK(1)] * 4)

    def test_partition_validation(self):
        with pytest.raises(ReproError):
            Partition("diagonal")
        with pytest.raises(ReproError):
            DRIDataset((4,), [BLOCK(2), BLOCK(2)])

    def test_local_buffer_size(self):
        ds = DRIDataset((8, 4), [BLOCK(2), COLLAPSED])
        assert ds.local_buffer_size(0) == 16
        assert ds.nranks == 2

    def test_layout_order_views(self):
        """C and F local layouts store the same patch differently."""
        g = np.arange(12.0).reshape(3, 4)
        for order in ("C", "F"):
            ds = DRIDataset((3, 4), [COLLAPSED, COLLAPSED],
                            layout_order=order)
            buf = ds.allocate_local(0)
            ds.fill_local_from_global(0, buf, g)
            if order == "C":
                np.testing.assert_array_equal(buf, g.reshape(-1))
            else:
                np.testing.assert_array_equal(buf, g.reshape(-1, order="F"))
            # roundtrip through patch views
            out = np.zeros_like(g)
            ds.scatter_local_to_global(0, buf, out)
            np.testing.assert_array_equal(out, g)

    def test_block_cyclic_multiple_patches(self):
        ds = DRIDataset((8,), [BLOCK_CYCLIC(2, 2)])
        views = ds.patch_views(0, ds.allocate_local(0))
        assert len(views) == 2  # blocks [0,2) and [4,6)

    def test_buffer_size_checked(self):
        ds = DRIDataset((4,), [BLOCK(2)])
        from repro.errors import DistributionError
        with pytest.raises(DistributionError):
            ds.patch_views(0, np.zeros(5))


class TestReorg:
    def _roundtrip(self, src_ds, dst_ds, g):
        plan = DRIReorg(src_ds, dst_ds)
        n = max(src_ds.nranks, dst_ds.nranks)

        def main(comm):
            me = comm.rank
            sendbuf = None
            if me < src_ds.nranks:
                sendbuf = src_ds.allocate_local(me)
                src_ds.fill_local_from_global(me, sendbuf, g)
            recvbuf = (dst_ds.allocate_local(me)
                       if me < dst_ds.nranks else None)
            handle = plan.begin(comm, sendbuf, recvbuf)
            # the standard's loop: put/get until complete
            handle.run_to_completion()
            assert handle.complete()
            return recvbuf

        results = run_spmd(n, main)
        out = np.zeros_like(g)
        for r, buf in enumerate(results):
            if buf is not None:
                dst_ds.scatter_local_to_global(r, buf, out)
        return out

    def test_block_to_block_cyclic(self):
        g = np.arange(64.0).reshape(8, 8)
        src = DRIDataset((8, 8), [BLOCK(2), COLLAPSED])
        dst = DRIDataset((8, 8), [BLOCK_CYCLIC(4, 1), COLLAPSED])
        np.testing.assert_array_equal(self._roundtrip(src, dst, g), g)

    def test_mixed_layout_orders(self):
        """C-ordered source to F-ordered destination."""
        g = np.arange(24.0).reshape(4, 6)
        src = DRIDataset((4, 6), [BLOCK(2), COLLAPSED], layout_order="C")
        dst = DRIDataset((4, 6), [COLLAPSED, BLOCK(3)], layout_order="F")
        np.testing.assert_array_equal(self._roundtrip(src, dst, g), g)

    def test_3d_typed(self):
        rng = np.random.default_rng(0)
        g = rng.integers(0, 100, size=(4, 4, 4)).astype(np.int32)
        src = DRIDataset((4, 4, 4), [BLOCK(2), BLOCK(2), COLLAPSED],
                         dtype_name="integer")
        dst = DRIDataset((4, 4, 4), [COLLAPSED, COLLAPSED, BLOCK(2)],
                         dtype_name="integer")
        out = self._roundtrip(src, dst, g)
        assert out.dtype == np.int32
        np.testing.assert_array_equal(out, g)

    def test_complex_type(self):
        g = (np.arange(16.0) + 1j * np.arange(16.0)).reshape(4, 4) \
            .astype(np.complex64)
        src = DRIDataset((4, 4), [BLOCK(2), COLLAPSED], "complex")
        dst = DRIDataset((4, 4), [COLLAPSED, BLOCK(2)], "complex")
        np.testing.assert_array_equal(self._roundtrip(src, dst, g), g)

    def test_staged_progress_counts(self):
        src = DRIDataset((8,), [BLOCK(2)])
        dst = DRIDataset((8,), [BLOCK_CYCLIC(2, 1)])
        plan = DRIReorg(src, dst)

        def main(comm):
            me = comm.rank
            sendbuf = src.allocate_local(me)
            src.fill_local_from_global(me, sendbuf, np.arange(8.0))
            recvbuf = dst.allocate_local(me)
            handle = plan.begin(comm, sendbuf, recvbuf)
            steps = 0
            assert not handle.complete()
            while not handle.complete():
                moved = handle.put() or handle.get()
                steps += 1
                assert steps < 100
            # one staged call per fragment in each direction
            assert handle.puts_done == len(plan.schedule.sends_from(me))
            assert handle.gets_done == len(plan.schedule.recvs_at(me))
            return True

        assert all(run_spmd(2, main))

    def test_type_mismatch_rejected(self):
        src = DRIDataset((4,), [BLOCK(2)], "float")
        dst = DRIDataset((4,), [BLOCK(2)], "double")
        with pytest.raises(ReproError):
            DRIReorg(src, dst)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ScheduleError):
            DRIReorg(DRIDataset((4,), [BLOCK(2)]),
                     DRIDataset((5,), [BLOCK(2)]))
