"""Property-based tests for GlobalSegMap and gsmap-schedule transfers."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.mct import AttrVect, GlobalSegMap, Rearranger
from repro.mct.router import build_gsmap_schedule
from repro.simmpi import run_spmd


@st.composite
def gsmaps(draw, gsize=None, nranks=None):
    g = gsize if gsize is not None else draw(st.integers(1, 40))
    n = nranks if nranks is not None else draw(st.integers(1, 4))
    owners = draw(st.lists(st.integers(0, n - 1), min_size=g, max_size=g))
    return GlobalSegMap.from_owners(owners, nranks=n)


@given(gsmaps())
def test_partition_invariant(gsmap):
    total = sum(gsmap.local_size(pe) for pe in range(gsmap.nranks))
    assert total == gsmap.gsize
    covered = np.zeros(gsmap.gsize, dtype=int)
    for pe in range(gsmap.nranks):
        covered[gsmap.global_indices(pe)] += 1
    assert np.all(covered == 1)


@given(gsmaps())
def test_local_offset_consistency(gsmap):
    for pe in range(gsmap.nranks):
        gidx = gsmap.global_indices(pe)
        for local, g in enumerate(gidx):
            assert gsmap.local_offset(pe, int(g)) == local


@given(st.data())
def test_schedule_covers_everything(data):
    gsize = data.draw(st.integers(1, 30))
    src = data.draw(gsmaps(gsize=gsize))
    dst = data.draw(gsmaps(gsize=gsize))
    sched = build_gsmap_schedule(src, dst)
    assert sched.element_count == gsize
    covered = np.zeros(gsize, dtype=int)
    for item in sched.items:
        covered[item.run.lo:item.run.hi] += 1
    assert np.all(covered == 1)


@settings(max_examples=15, deadline=None)
@given(st.data())
def test_rearrange_roundtrip_random_gsmaps(data):
    """Property: rearranging src->dst->src reproduces the original
    AttrVect for random segmented decompositions."""
    gsize = data.draw(st.integers(2, 24))
    nranks = data.draw(st.integers(1, 3))
    src = data.draw(gsmaps(gsize=gsize, nranks=nranks))
    dst = data.draw(gsmaps(gsize=gsize, nranks=nranks))
    fwd = Rearranger(src, dst)
    back = Rearranger(dst, src)

    def main(comm):
        gidx = src.global_indices(comm.rank)
        av0 = AttrVect.from_arrays({
            "a": gidx.astype(float) * 2 + 1,
            "b": np.sin(gidx.astype(float)),
        })
        av1 = AttrVect(["a", "b"], dst.local_size(comm.rank))
        fwd.rearrange(comm, av0, av1)
        av2 = AttrVect(["a", "b"], src.local_size(comm.rank))
        back.rearrange(comm, av1, av2)
        np.testing.assert_array_equal(av2.data, av0.data)
        # forward result holds the right values at the right places
        dst_gidx = dst.global_indices(comm.rank)
        np.testing.assert_array_equal(
            av1["a"], dst_gidx.astype(float) * 2 + 1)
        return True

    assert all(run_spmd(nranks, main))
