"""GeneralGrid, Accumulator, merge, and integral facility tests."""

import numpy as np
import pytest

from repro.errors import MCTError
from repro.mct import (
    Accumulator,
    AttrVect,
    GeneralGrid,
    global_average,
    global_integral,
    merge,
)
from repro.simmpi import run_spmd


class TestGeneralGrid:
    def _grid(self):
        return GeneralGrid(
            coords={"lat": [0.0, 10.0, 20.0, 30.0],
                    "lon": [5.0, 5.0, 5.0, 5.0]},
            weights={"area": [1.0, 2.0, 3.0, 4.0]},
            masks={"ocean": [1, 0, 1, 0]},
        )

    def test_basic_queries(self):
        g = self._grid()
        assert g.npoints == 4
        assert g.ndim == 2
        assert g.dims == ["lat", "lon"]
        assert g.coordinates(2) == (20.0, 5.0)

    def test_masked_weight(self):
        g = self._grid()
        np.testing.assert_array_equal(
            g.masked_weight("area", "ocean"), [1.0, 0.0, 3.0, 0.0])

    def test_active_points(self):
        np.testing.assert_array_equal(
            self._grid().active_points("ocean"), [0, 2])

    def test_unstructured_any_dim(self):
        g = GeneralGrid(coords={"x": [0.0], "y": [1.0], "z": [2.0]})
        assert g.ndim == 3

    def test_validation(self):
        with pytest.raises(MCTError):
            GeneralGrid(coords={})
        with pytest.raises(MCTError):
            GeneralGrid(coords={"x": [0.0, 1.0]}, weights={"w": [1.0]})
        with pytest.raises(MCTError):
            self._grid().weight("volume")


class TestAccumulator:
    def test_averaging(self):
        acc = Accumulator(["t"], 3)
        for k in range(4):
            av = AttrVect.from_arrays({"t": np.full(3, float(k))})
            acc.accumulate(av)
        np.testing.assert_array_equal(acc.value()["t"], np.full(3, 1.5))
        assert acc.steps == 4

    def test_sum_action(self):
        acc = Accumulator(["flux"], 2, actions={"flux": "sum"})
        for _ in range(3):
            acc.accumulate(AttrVect.from_arrays({"flux": [1.0, 2.0]}))
        np.testing.assert_array_equal(acc.value()["flux"], [3.0, 6.0])

    def test_mixed_actions(self):
        acc = Accumulator(["t", "flux"], 1,
                          actions={"flux": "sum"})
        acc.accumulate(AttrVect.from_arrays({"t": [4.0], "flux": [4.0]}))
        acc.accumulate(AttrVect.from_arrays({"t": [6.0], "flux": [6.0]}))
        out = acc.value()
        assert out["t"][0] == 5.0       # averaged
        assert out["flux"][0] == 10.0   # summed

    def test_reset(self):
        acc = Accumulator(["t"], 1)
        acc.accumulate(AttrVect.from_arrays({"t": [1.0]}))
        acc.reset()
        assert acc.steps == 0
        with pytest.raises(MCTError):
            acc.value()

    def test_shape_mismatch(self):
        acc = Accumulator(["t"], 2)
        with pytest.raises(MCTError):
            acc.accumulate(AttrVect.from_arrays({"t": [1.0]}))

    def test_bad_action(self):
        with pytest.raises(MCTError):
            Accumulator(["t"], 1, actions={"t": "median"})


class TestMerge:
    def test_weighted_blend(self):
        land = AttrVect.from_arrays({"t": [10.0, 10.0]})
        ocean = AttrVect.from_arrays({"t": [20.0, 20.0]})
        out = merge([(land, np.array([0.25, 1.0])),
                     (ocean, np.array([0.75, 0.0]))])
        np.testing.assert_array_equal(out["t"], [17.5, 10.0])

    def test_zero_total_weight_gives_zero(self):
        a = AttrVect.from_arrays({"t": [5.0]})
        out = merge([(a, np.array([0.0]))])
        assert out["t"][0] == 0.0

    def test_land_ocean_ice_blend(self):
        """The paper's example: blending land, ocean, and sea ice for an
        atmosphere model."""
        n = 4
        land = AttrVect.from_arrays({"t": np.full(n, 290.0)})
        ocean = AttrVect.from_arrays({"t": np.full(n, 280.0)})
        ice = AttrVect.from_arrays({"t": np.full(n, 260.0)})
        land_f = np.array([1.0, 0.0, 0.0, 0.3])
        ice_f = np.array([0.0, 0.0, 0.5, 0.0])
        ocean_f = 1.0 - land_f - ice_f
        out = merge([(land, land_f), (ocean, ocean_f), (ice, ice_f)])
        np.testing.assert_allclose(
            out["t"], [290.0, 280.0, 270.0, 283.0])

    def test_negative_weight_rejected(self):
        a = AttrVect.from_arrays({"t": [1.0]})
        with pytest.raises(MCTError):
            merge([(a, np.array([-1.0]))])

    def test_size_mismatch(self):
        a = AttrVect.from_arrays({"t": [1.0]})
        b = AttrVect.from_arrays({"t": [1.0, 2.0]})
        with pytest.raises(MCTError):
            merge([(a, np.ones(1)), (b, np.ones(2))])


class TestIntegrals:
    def test_global_integral_parallel(self):
        def main(comm):
            av = AttrVect.from_arrays(
                {"f": np.full(3, float(comm.rank + 1))})
            w = np.ones(3)
            return global_integral(comm, av, w)

        results = run_spmd(2, main)
        # ranks contribute 3*1 and 3*2
        assert all(r == {"f": 9.0} for r in results)

    def test_global_average_weighted(self):
        def main(comm):
            av = AttrVect.from_arrays({"f": [10.0, 20.0]})
            w = np.array([1.0, 3.0])
            return global_average(comm, av, w)

        results = run_spmd(2, main)
        assert all(r["f"] == pytest.approx(17.5) for r in results)

    def test_zero_weight_raises(self):
        def main(comm):
            av = AttrVect.from_arrays({"f": [1.0]})
            with pytest.raises(MCTError):
                global_average(comm, av, np.zeros(1))
            return True

        assert all(run_spmd(1, main))

    def test_weight_shape_checked(self):
        def main(comm):
            av = AttrVect.from_arrays({"f": [1.0, 2.0]})
            with pytest.raises(MCTError):
                global_integral(comm, av, np.ones(3))
            return True

        assert all(run_spmd(1, main))
