"""Sparse-matrix interpolation tests: parallel SpMM halo exchange."""

import numpy as np
import pytest

from repro.errors import MCTError
from repro.mct import (
    AttrVect,
    GlobalSegMap,
    InterpolationScheduler,
    SparseMatrix,
)
from repro.simmpi import run_spmd


def linear_interp_matrix(n_src, n_dst):
    """Global COO for 1-D linear interpolation src -> dst grids on [0,1]."""
    rows, cols, vals = [], [], []
    xs = np.linspace(0.0, 1.0, n_src)
    xd = np.linspace(0.0, 1.0, n_dst)
    for i, x in enumerate(xd):
        j = min(int(x * (n_src - 1)), n_src - 2)
        t = (x - xs[j]) / (xs[j + 1] - xs[j])
        rows += [i, i]
        cols += [j, j + 1]
        vals += [1.0 - t, t]
    return np.array(rows), np.array(cols), np.array(vals)


def run_interp(nprocs, n_src, n_dst, fused=True, fieldmaker=None):
    rows, cols, vals = linear_interp_matrix(n_src, n_dst)

    def main(comm):
        src_gsmap = GlobalSegMap.block(n_src, comm.size)
        dst_gsmap = GlobalSegMap.block(n_dst, comm.size)
        pe = comm.rank
        mine = np.isin(rows, dst_gsmap.global_indices(pe))
        matrix = SparseMatrix(n_dst, n_src, rows[mine], cols[mine],
                              vals[mine], dst_gsmap, pe)
        sched = InterpolationScheduler(comm, matrix, src_gsmap)
        gidx = src_gsmap.global_indices(pe)
        xs = np.linspace(0.0, 1.0, n_src)[gidx]
        fields = fieldmaker(xs) if fieldmaker else {
            "f": 2 * xs + 1, "g": -xs}
        x_av = AttrVect.from_arrays(fields)
        y_av = sched.apply(comm, x_av, fused=fused)
        return dst_gsmap.global_indices(pe), y_av

    return run_spmd(nprocs, main)


@pytest.mark.parametrize("nprocs", [1, 2, 3])
def test_linear_function_interpolated_exactly(nprocs):
    """Linear interpolation reproduces affine fields exactly."""
    n_src, n_dst = 16, 29
    results = run_interp(nprocs, n_src, n_dst)
    xd = np.linspace(0.0, 1.0, n_dst)
    for gidx, y_av in results:
        np.testing.assert_allclose(y_av["f"], 2 * xd[gidx] + 1, atol=1e-12)
        np.testing.assert_allclose(y_av["g"], -xd[gidx], atol=1e-12)


def test_fused_matches_per_field():
    a = run_interp(2, 10, 17, fused=True)
    b = run_interp(2, 10, 17, fused=False)
    for (_, ya), (_, yb) in zip(a, b):
        np.testing.assert_array_equal(ya.data, yb.data)


def test_matrix_row_ownership_enforced():
    def main(comm):
        gsmap = GlobalSegMap.block(4, 2)
        # rank 0 owns rows 0-1; row 3 is foreign
        with pytest.raises(MCTError):
            SparseMatrix(4, 4, [3], [0], [1.0], gsmap, pe=0)
        return True

    assert all(run_spmd(1, main))


def test_matrix_bounds_checked():
    gsmap = GlobalSegMap.block(4, 1)
    with pytest.raises(MCTError):
        SparseMatrix(4, 4, [0], [9], [1.0], gsmap, pe=0)
    with pytest.raises(MCTError):
        SparseMatrix(4, 4, [9], [0], [1.0], gsmap, pe=0)


def test_scheduler_validates_gsmap():
    def main(comm):
        dst = GlobalSegMap.block(4, 1)
        m = SparseMatrix(4, 8, [0], [0], [1.0], dst, pe=0)
        wrong = GlobalSegMap.block(5, 1)
        with pytest.raises(MCTError):
            InterpolationScheduler(comm, m, wrong)
        return True

    assert all(run_spmd(1, main))


def test_conservation_of_sums():
    """A row-stochastic averaging matrix conserves weighted integrals."""
    n_src, n_dst = 12, 6

    def main(comm):
        src_gsmap = GlobalSegMap.block(n_src, comm.size)
        dst_gsmap = GlobalSegMap.block(n_dst, comm.size)
        pe = comm.rank
        # dst cell i averages src cells 2i and 2i+1
        rows, cols, vals = [], [], []
        for i in dst_gsmap.global_indices(pe):
            rows += [i, i]
            cols += [2 * i, 2 * i + 1]
            vals += [0.5, 0.5]
        matrix = SparseMatrix(n_dst, n_src, rows, cols, vals, dst_gsmap, pe)
        sched = InterpolationScheduler(comm, matrix, src_gsmap)
        gidx = src_gsmap.global_indices(pe)
        x_av = AttrVect.from_arrays({"flux": gidx.astype(float)})
        y_av = sched.apply(comm, x_av)
        from repro.mct import paired_integrals
        # src weight 1, dst weight 2 (each dst cell covers two src cells)
        pairs = paired_integrals(
            comm, x_av, np.ones(x_av.lsize),
            y_av, 2 * np.ones(y_av.lsize))
        return pairs["flux"]

    for src_int, dst_int in run_spmd(2, main):
        assert src_int == pytest.approx(dst_int)
