"""GlobalSegMap and AttrVect unit tests."""

import numpy as np
import pytest

from repro.errors import MCTError
from repro.mct import AttrVect, GlobalSegMap, Segment


class TestGlobalSegMap:
    def test_block_constructor(self):
        g = GlobalSegMap.block(10, 3)
        assert g.local_size(0) == 4
        assert g.local_size(2) == 2
        assert g.owner_of(9) == 2

    def test_cyclic_constructor(self):
        g = GlobalSegMap.cyclic(7, 2, block=2)
        # blocks [0,2) p0, [2,4) p1, [4,6) p0, [6,7) p1
        assert g.local_size(0) == 4
        assert g.local_size(1) == 3
        assert g.owner_of(5) == 0

    def test_from_owners_compresses_runs(self):
        g = GlobalSegMap.from_owners([0, 0, 1, 1, 1, 0])
        assert len(g.segments) == 3
        assert g.local_size(0) == 3

    def test_partition_validated(self):
        with pytest.raises(MCTError):
            GlobalSegMap(4, [Segment(0, 3, 0), Segment(2, 2, 1)])  # overlap
        with pytest.raises(MCTError):
            GlobalSegMap(4, [Segment(0, 3, 0)])  # gap

    def test_global_indices_order(self):
        g = GlobalSegMap.cyclic(6, 2)
        np.testing.assert_array_equal(g.global_indices(0), [0, 2, 4])
        np.testing.assert_array_equal(g.global_indices(1), [1, 3, 5])

    def test_local_offset(self):
        g = GlobalSegMap.cyclic(6, 2)
        assert g.local_offset(0, 4) == 2
        assert g.local_offset(1, 1) == 0
        with pytest.raises(MCTError):
            g.local_offset(0, 1)

    def test_runs_coalesce(self):
        g = GlobalSegMap(6, [Segment(0, 3, 0), Segment(3, 3, 0)])
        assert len(g.runs(0)) == 1
        assert g.runs(0)[0].length == 6

    def test_bad_pe(self):
        with pytest.raises(MCTError):
            GlobalSegMap.block(4, 2).segments_of(5)


class TestAttrVect:
    def test_field_views(self):
        av = AttrVect(["t", "u"], 4)
        av["t"] = [1, 2, 3, 4]
        view = av["t"]
        view[0] = 99  # views allow in-place update
        assert av.data[0, 0] == 99
        assert av["u"].sum() == 0

    def test_from_arrays(self):
        av = AttrVect.from_arrays({"a": [1.0, 2.0], "b": [3.0, 4.0]})
        assert av.lsize == 2
        np.testing.assert_array_equal(av["b"], [3.0, 4.0])

    def test_from_arrays_length_mismatch(self):
        with pytest.raises(MCTError):
            AttrVect.from_arrays({"a": [1.0], "b": [1.0, 2.0]})

    def test_copy_independent(self):
        av = AttrVect.from_arrays({"a": [1.0, 2.0]})
        cp = av.copy()
        cp["a"] = [9.0, 9.0]
        np.testing.assert_array_equal(av["a"], [1.0, 2.0])

    def test_subset(self):
        av = AttrVect.from_arrays({"a": [1.0], "b": [2.0], "c": [3.0]})
        sub = av.subset(["c", "a"])
        assert sub.fields == ["c", "a"]
        np.testing.assert_array_equal(sub.data, [[3.0, 1.0]])

    def test_duplicate_fields_rejected(self):
        with pytest.raises(MCTError):
            AttrVect(["a", "a"], 2)

    def test_set_wrong_shape(self):
        av = AttrVect(["a"], 3)
        with pytest.raises(MCTError):
            av["a"] = [1.0, 2.0]

    def test_unknown_field(self):
        av = AttrVect(["a"], 1)
        with pytest.raises(MCTError):
            av["zz"]
