"""MCTWorld, Router, and Rearranger tests over the simulated runtime."""

import numpy as np
import pytest

from repro.errors import MCTError
from repro.mct import AttrVect, GlobalSegMap, MCTWorld, Rearranger, Router
from repro.simmpi import run_spmd


def test_mct_world_registry():
    def main(comm):
        model = "atm" if comm.rank < 2 else "ocn"
        world = MCTWorld(comm, model)
        return (world.models(), world.ranks_of("atm"),
                world.ranks_of("ocn"), world.model_comm.size,
                world.my_model_rank)

    results = run_spmd(5, main)
    for r, (models, atm, ocn, msize, _mrank) in enumerate(results):
        assert models == ["atm", "ocn"]
        assert atm == [0, 1]
        assert ocn == [2, 3, 4]
        assert msize == (2 if r < 2 else 3)
    assert [r[4] for r in results] == [0, 1, 0, 1, 2]


def test_router_transfer_multi_field():
    gsize = 12

    def main(comm):
        model = "atm" if comm.rank < 2 else "ocn"
        world = MCTWorld(comm, model)
        src_gsmap = GlobalSegMap.block(gsize, 2)
        dst_gsmap = GlobalSegMap.cyclic(gsize, 3)
        router = Router(world, "atm", "ocn", src_gsmap, dst_gsmap)
        if model == "atm":
            pe = world.my_model_rank
            gidx = src_gsmap.global_indices(pe)
            av = AttrVect.from_arrays({
                "t": gidx.astype(float),
                "u": gidx.astype(float) * 10,
            })
            router.transfer(av_send=av)
            return None
        pe = world.my_model_rank
        av = AttrVect(["t", "u"], dst_gsmap.local_size(pe))
        router.transfer(av_recv=av)
        return (dst_gsmap.global_indices(pe), av)

    results = run_spmd(5, main)
    for out in results[2:]:
        gidx, av = out
        np.testing.assert_array_equal(av["t"], gidx.astype(float))
        np.testing.assert_array_equal(av["u"], gidx.astype(float) * 10)


def test_router_unfused_same_result_more_messages():
    gsize = 8

    def main(comm, fused):
        model = "a" if comm.rank == 0 else "b"
        world = MCTWorld(comm, model)
        src = GlobalSegMap.block(gsize, 1)
        dst = GlobalSegMap.block(gsize, 1)
        router = Router(world, "a", "b", src, dst)
        if model == "a":
            av = AttrVect.from_arrays({
                "x": np.arange(gsize, dtype=float),
                "y": np.ones(gsize),
                "z": np.zeros(gsize)})
            router.transfer(av_send=av, fused=fused)
            return comm.counters.snapshot().get("msgs", 0)
        av = AttrVect(["x", "y", "z"], gsize)
        router.transfer(av_recv=av, fused=fused)
        return av

    fused_out = run_spmd(2, main, True)
    unfused_out = run_spmd(2, main, False)
    np.testing.assert_array_equal(fused_out[1].data, unfused_out[1].data)
    # counters are job-global; the unfused run sends 3x the data messages


def test_unfused_still_coalesces_runs_per_pair():
    """``fused=False`` only unfuses fields: message count is
    pairs x nfields, NOT runs x nfields — runs stay coalesced into one
    buffer per rank pair either way."""
    gsize = 12
    nfields = 3

    def main(comm, fused):
        model = "a" if comm.rank == 0 else "b"
        world = MCTWorld(comm, model)
        src = GlobalSegMap.block(gsize, 1)
        dst = GlobalSegMap.cyclic(gsize, 2)  # 6 runs to each dst rank
        router = Router(world, "a", "b", src, dst)
        if model == "a":
            before = comm.counters.snapshot().get("msgs", 0)
            av = AttrVect.from_arrays({
                "x": np.arange(gsize, dtype=float),
                "y": np.ones(gsize),
                "z": np.zeros(gsize)})
            router.transfer(av_send=av, fused=fused)
            return comm.counters.snapshot().get("msgs", 0) - before
        av = AttrVect(["x", "y", "z"], dst.local_size(world.my_model_rank))
        router.transfer(av_recv=av, fused=fused)
        return av

    pairs = 2  # one source rank feeding two destination ranks
    assert run_spmd(3, main, True)[0] == pairs
    assert run_spmd(3, main, False)[0] == pairs * nfields
    fused_out = run_spmd(3, main, True)
    unfused_out = run_spmd(3, main, False)
    for f, u in zip(fused_out[1:], unfused_out[1:]):
        np.testing.assert_array_equal(f.data, u.data)


def test_router_validates_sizes():
    def main(comm):
        model = "a" if comm.rank == 0 else "b"
        world = MCTWorld(comm, model)
        src = GlobalSegMap.block(8, 2)  # wrong: model 'a' has 1 rank
        dst = GlobalSegMap.block(8, 1)
        with pytest.raises(MCTError):
            Router(world, "a", "b", src, dst)
        return True

    assert all(run_spmd(2, main))


def test_rearranger_roundtrip():
    gsize = 10

    def main(comm):
        block = GlobalSegMap.block(gsize, comm.size)
        cyc = GlobalSegMap.cyclic(gsize, comm.size)
        r_fwd = Rearranger(block, cyc)
        r_back = Rearranger(cyc, block)
        gidx = block.global_indices(comm.rank)
        av0 = AttrVect.from_arrays({"f": gidx.astype(float) + 0.5})
        av1 = AttrVect(["f"], cyc.local_size(comm.rank))
        r_fwd.rearrange(comm, av0, av1)
        # verify cyclic placement
        np.testing.assert_array_equal(
            av1["f"], cyc.global_indices(comm.rank).astype(float) + 0.5)
        av2 = AttrVect(["f"], block.local_size(comm.rank))
        r_back.rearrange(comm, av1, av2)
        np.testing.assert_array_equal(av2["f"], av0["f"])
        return True

    assert all(run_spmd(3, main))


def test_rearranger_field_mismatch():
    def main(comm):
        g = GlobalSegMap.block(4, 1)
        r = Rearranger(g, g)
        with pytest.raises(MCTError):
            r.rearrange(comm, AttrVect(["a"], 4), AttrVect(["b"], 4))
        return True

    assert all(run_spmd(1, main))
