"""Property-based tests: ownership is always an exact partition."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.dad.axis import (
    Block,
    BlockCyclic,
    Collapsed,
    Cyclic,
    GeneralizedBlock,
    Implicit,
)
from repro.dad.template import CartesianTemplate, ExplicitTemplate
from repro.util.regions import Region


@st.composite
def axis_dists(draw, max_extent=30):
    extent = draw(st.integers(1, max_extent))
    kind = draw(st.sampled_from(
        ["collapsed", "block", "cyclic", "block_cyclic", "genblock",
         "implicit"]))
    if kind == "collapsed":
        return Collapsed(extent)
    nprocs = draw(st.integers(1, min(4, extent)))
    if kind == "block":
        return Block(extent, nprocs)
    if kind == "cyclic":
        return Cyclic(extent, nprocs)
    if kind == "block_cyclic":
        block = draw(st.integers(1, extent))
        return BlockCyclic(extent, nprocs, block)
    if kind == "genblock":
        cuts = sorted(draw(st.lists(
            st.integers(0, extent), min_size=nprocs - 1,
            max_size=nprocs - 1)))
        bounds = [0] + cuts + [extent]
        sizes = [b - a for a, b in zip(bounds, bounds[1:])]
        return GeneralizedBlock(extent, sizes)
    owners = draw(st.lists(st.integers(0, nprocs - 1),
                           min_size=extent, max_size=extent))
    return Implicit(owners, nprocs=nprocs)


@st.composite
def cartesian_templates(draw):
    ndim = draw(st.integers(1, 3))
    return CartesianTemplate([draw(axis_dists()) for _ in range(ndim)])


@given(axis_dists())
def test_axis_partition_property(dist):
    dist.validate_partition()


@given(axis_dists())
def test_axis_owner_agrees_with_intervals(dist):
    step = max(1, dist.extent // 10)
    for i in range(0, dist.extent, step):
        p = dist.owner(i)
        assert any(a <= i < b for a, b in dist.intervals(p))


@settings(max_examples=50, deadline=None)
@given(cartesian_templates())
def test_template_ownership_partitions(template):
    seen = np.zeros(template.shape, dtype=np.int32)
    for _, region in template.all_owner_regions():
        seen[region.to_slices()] += 1
    assert np.all(seen == 1)


@settings(max_examples=50, deadline=None)
@given(cartesian_templates())
def test_owner_of_matches_owner_regions(template):
    rng = np.random.default_rng(0)
    for _ in range(5):
        point = tuple(int(rng.integers(0, s)) for s in template.shape)
        rank = template.owner_of(point)
        assert template.owner_regions(rank).contains_point(point)


@st.composite
def explicit_templates(draw):
    """Random explicit tilings built by recursive axis splits."""
    ndim = draw(st.integers(1, 2))
    shape = tuple(draw(st.integers(2, 10)) for _ in range(ndim))
    regions = [Region.from_shape(shape)]
    for _ in range(draw(st.integers(0, 4))):
        idx = draw(st.integers(0, len(regions) - 1))
        reg = regions[idx]
        axis = draw(st.integers(0, ndim - 1))
        if reg.hi[axis] - reg.lo[axis] < 2:
            continue
        cut = draw(st.integers(reg.lo[axis] + 1, reg.hi[axis] - 1))
        lo1, hi1 = list(reg.lo), list(reg.hi)
        lo2, hi2 = list(reg.lo), list(reg.hi)
        hi1[axis] = cut
        lo2[axis] = cut
        regions[idx:idx + 1] = [
            Region(tuple(lo1), tuple(hi1)),
            Region(tuple(lo2), tuple(hi2)),
        ]
    nranks = draw(st.integers(1, 4))
    patches = [(draw(st.integers(0, nranks - 1)), r) for r in regions]
    return ExplicitTemplate(shape, patches, nranks=nranks)


@settings(max_examples=50, deadline=None)
@given(explicit_templates())
def test_explicit_template_partitions(template):
    seen = np.zeros(template.shape, dtype=np.int32)
    for _, region in template.all_owner_regions():
        seen[region.to_slices()] += 1
    assert np.all(seen == 1)
    template.validate()
