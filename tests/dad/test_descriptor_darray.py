"""Descriptor and distributed-array storage tests."""

import numpy as np
import pytest

from repro.errors import AlignmentError, DistributionError
from repro.dad import (
    AccessMode,
    BlockCyclic,
    CartesianTemplate,
    DistArrayDescriptor,
    DistributedArray,
)
from repro.dad.template import ExplicitTemplate, block_template
from repro.util.regions import Region


@pytest.fixture
def desc2d():
    return DistArrayDescriptor(block_template((6, 4), (2, 2)),
                               np.float64, name="field")


class TestDescriptor:
    def test_queries(self, desc2d):
        assert desc2d.shape == (6, 4)
        assert desc2d.nranks == 4
        assert desc2d.local_volume(0) == 6
        assert desc2d.owner_of((5, 3)) == 3

    def test_access_modes(self):
        assert AccessMode.READWRITE.allows_read()
        assert AccessMode.READWRITE.allows_write()
        assert AccessMode.READ.allows_read()
        assert not AccessMode.READ.allows_write()
        assert not AccessMode.WRITE.allows_read()

    def test_alignment_check(self, desc2d):
        desc2d.check_alignment((6, 4))
        with pytest.raises(AlignmentError):
            desc2d.check_alignment((6, 5))

    def test_cache_key_includes_dtype(self):
        t = block_template((4,), (2,))
        a = DistArrayDescriptor(t, np.float64)
        b = DistArrayDescriptor(t, np.float32)
        assert a.cache_key() != b.cache_key()

    def test_descriptor_nbytes(self, desc2d):
        assert desc2d.descriptor_nbytes() == desc2d.descriptor_entries() * 8


class TestDistributedArray:
    def test_allocate_zeros(self, desc2d):
        da = DistributedArray.allocate(desc2d, rank=1)
        assert da.local_volume == 6
        for _, arr in da.iter_patches():
            assert arr.dtype == np.float64
            assert not arr.any()

    def test_from_global_and_assemble_roundtrip(self, desc2d):
        g = np.arange(24.0).reshape(6, 4)
        parts = [DistributedArray.from_global(desc2d, r, g)
                 for r in range(4)]
        out = DistributedArray.assemble(parts)
        np.testing.assert_array_equal(out, g)

    def test_from_global_block_cyclic(self):
        t = CartesianTemplate([BlockCyclic(8, 2, 2), BlockCyclic(6, 3, 1)])
        desc = DistArrayDescriptor(t, np.int64)
        g = np.arange(48).reshape(8, 6)
        parts = [DistributedArray.from_global(desc, r, g)
                 for r in range(t.nranks)]
        np.testing.assert_array_equal(DistributedArray.assemble(parts), g)

    def test_from_function(self, desc2d):
        da = DistributedArray.from_function(
            desc2d, rank=3, fn=lambda i, j: 10 * i + j)
        # rank 3 owns rows 3..5, cols 2..3
        assert da.get((5, 3)) == 53.0
        assert da.get((3, 2)) == 32.0

    def test_get_set_ownership(self, desc2d):
        da = DistributedArray.allocate(desc2d, rank=0)
        da.set((1, 1), 42.0)
        assert da.get((1, 1)) == 42.0
        with pytest.raises(DistributionError):
            da.get((5, 3))  # owned by rank 3

    def test_local_view_is_view(self, desc2d):
        da = DistributedArray.allocate(desc2d, rank=0)
        v = da.local_view(Region((0, 0), (2, 2)))
        v[:] = 5.0
        assert da.get((0, 0)) == 5.0
        assert da.get((1, 1)) == 5.0

    def test_local_view_must_be_owned(self, desc2d):
        da = DistributedArray.allocate(desc2d, rank=0)
        with pytest.raises(DistributionError):
            da.local_view(Region((0, 0), (6, 4)))  # spans multiple ranks

    def test_patch_shape_mismatch_rejected(self, desc2d):
        region = next(iter(desc2d.local_regions(0)))
        with pytest.raises(AlignmentError):
            DistributedArray(desc2d, 0, {region: np.zeros((1, 1))})

    def test_wrong_patch_set_rejected(self, desc2d):
        with pytest.raises(AlignmentError):
            DistributedArray(desc2d, 0, {})

    def test_fill(self, desc2d):
        da = DistributedArray.allocate(desc2d, rank=2)
        da.fill(7.0)
        assert all(np.all(a == 7.0) for _, a in da.iter_patches())

    def test_explicit_template_storage(self):
        t = ExplicitTemplate((4, 4), [
            (0, Region((0, 0), (2, 4))),
            (1, Region((2, 0), (4, 4))),
        ])
        desc = DistArrayDescriptor(t, np.float32)
        g = np.random.default_rng(1).random((4, 4), dtype=np.float32)
        parts = [DistributedArray.from_global(desc, r, g) for r in range(2)]
        np.testing.assert_array_equal(DistributedArray.assemble(parts), g)

    def test_from_global_is_isolated(self, desc2d):
        """Local patches must be copies: in-place updates to the local
        storage must never leak into the caller's global array."""
        g = np.zeros((6, 4))
        da = DistributedArray.from_global(desc2d, 0, g)
        for _, arr in da.iter_patches():
            arr += 99.0
        assert g.sum() == 0.0

    def test_dtype_conversion_on_fill(self, desc2d):
        g = np.arange(24).reshape(6, 4)  # int64 input, float64 descriptor
        da = DistributedArray.from_global(desc2d, 0, g)
        for _, arr in da.iter_patches():
            assert arr.dtype == np.float64


class TestConverters:
    def test_2n_vs_n2_counts(self):
        from repro.dad.converters import ConverterRegistry, DARepresentation

        packages = [f"pkg{i}" for i in range(5)]
        direct = ConverterRegistry()
        for a in packages:
            for b in packages:
                if a != b:
                    direct.register_direct(a, b, lambda p: p)
        hub = ConverterRegistry()
        t = block_template((4,), (2,))
        for name in packages:
            hub.register_package(
                name,
                to_dad=lambda p, t=t: DistArrayDescriptor(t),
                from_dad=lambda d: d)
        assert direct.direct_converter_count == 5 * 4       # N(N-1)
        assert hub.hub_converter_count == 2 * 5             # 2N

    def test_convert_prefers_direct(self):
        from repro.dad.converters import ConverterRegistry, DARepresentation

        reg = ConverterRegistry()
        reg.register_direct("a", "b", lambda p: p + 1)
        out = reg.convert(DARepresentation("a", 1), "b")
        assert out.payload == 2
        assert reg.hops_executed == 1

    def test_convert_falls_back_to_hub(self):
        from repro.dad.converters import ConverterRegistry, DARepresentation

        reg = ConverterRegistry()
        t = block_template((4,), (2,))
        reg.register_package("a", lambda p: DistArrayDescriptor(t),
                             lambda d: "from-dad")
        reg.register_package("b", lambda p: DistArrayDescriptor(t),
                             lambda d: "via-hub")
        out = reg.convert(DARepresentation("a", None), "b")
        assert out.payload == "via-hub"
        assert reg.hops_executed == 2

    def test_identity_conversion_free(self):
        from repro.dad.converters import ConverterRegistry, DARepresentation

        reg = ConverterRegistry()
        rep = DARepresentation("a", 5)
        assert reg.convert(rep, "a") is rep
        assert reg.hops_executed == 0


def test_pickle_drops_the_region_memo():
    """The per-rank region memo never crosses the wire: on the threads
    backend sibling ranks fill it concurrently while rank 0 pickles the
    shared descriptor for the handshake, and serializing a dict under
    mutation raises RuntimeError.  The copy must still answer layout
    queries identically (rebuilding its own memo)."""
    import pickle

    desc = DistArrayDescriptor(block_template((6, 4), (2, 2)), np.float64,
                               name="field")
    for r in range(desc.nranks):
        desc.local_regions(r)
    assert desc._region_cache
    clone = pickle.loads(pickle.dumps(desc))
    assert clone._region_cache == {}
    for r in range(desc.nranks):
        assert list(clone.local_regions(r)) == list(desc.local_regions(r))
    assert clone.cache_key() == desc.cache_key()
