"""Template tests: Cartesian composition and explicit patch templates."""

import numpy as np
import pytest

from repro.errors import DistributionError
from repro.dad.axis import Block, BlockCyclic, Collapsed, Cyclic, GeneralizedBlock
from repro.dad.template import CartesianTemplate, ExplicitTemplate, block_template
from repro.util.regions import Region


class TestCartesianTemplate:
    def test_2d_block_block(self):
        t = block_template((8, 6), (2, 3))
        assert t.nranks == 6
        assert t.grid == (2, 3)
        regions = list(t.owner_regions(0))
        assert regions == [Region((0, 0), (4, 2))]
        # rank 5 = coords (1, 2)
        assert list(t.owner_regions(5)) == [Region((4, 4), (8, 6))]

    def test_owner_of(self):
        t = block_template((8, 6), (2, 3))
        assert t.owner_of((0, 0)) == 0
        assert t.owner_of((7, 5)) == 5
        assert t.owner_of((3, 4)) == 2  # coords (0, 2)

    def test_fig1_8_and_27(self):
        """The paper's Fig. 1 decompositions: 8 = 2x2x2, 27 = 3x3x3."""
        shape = (12, 12, 12)
        m_side = block_template(shape, (2, 2, 2))
        n_side = block_template(shape, (3, 3, 3))
        assert m_side.nranks == 8
        assert n_side.nranks == 27
        m_side.validate()
        n_side.validate()

    def test_mixed_axis_types(self):
        t = CartesianTemplate([
            Block(10, 2),
            Cyclic(6, 3),
            Collapsed(4),
        ])
        assert t.nranks == 6
        assert t.shape == (10, 6, 4)
        t.validate()
        # rank 1 = grid coords (0, 1, 0): rows 0..5, cyclic cols 1,4
        regions = list(t.owner_regions(1))
        assert Region((0, 1, 0), (5, 2, 4)) in regions
        assert Region((0, 4, 0), (5, 5, 4)) in regions

    def test_block_cyclic_multiple_regions_per_rank(self):
        t = CartesianTemplate([BlockCyclic(8, 2, 2), BlockCyclic(8, 2, 2)])
        regions = t.owner_regions(0)
        assert len(regions) == 4  # 2 row-block-groups x 2 col-block-groups
        t.validate()

    def test_generalized_block_axis(self):
        t = CartesianTemplate([GeneralizedBlock(10, [7, 3]), Block(4, 2)])
        t.validate()
        assert t.local_volume(0) == 7 * 2

    def test_validate_covers_all(self):
        for grid in [(1, 1), (2, 2), (4, 1)]:
            block_template((7, 5), grid).validate()

    def test_proc_coords_roundtrip(self):
        t = block_template((4, 4, 4), (2, 3, 2))
        for r in range(t.nranks):
            assert t.proc_rank(t.proc_coords(r)) == r

    def test_cache_key_equality(self):
        a = block_template((8, 8), (2, 2))
        b = block_template((8, 8), (2, 2))
        c = block_template((8, 8), (4, 1))
        assert a.cache_key() == b.cache_key()
        assert a.cache_key() != c.cache_key()

    def test_cache_key_distinguishes_block_sizes(self):
        a = CartesianTemplate([BlockCyclic(12, 2, 2)])
        b = CartesianTemplate([BlockCyclic(12, 2, 3)])
        assert a.cache_key() != b.cache_key()

    def test_empty_axes_rejected(self):
        with pytest.raises(DistributionError):
            CartesianTemplate([])


class TestExplicitTemplate:
    def test_arbitrary_patches(self):
        t = ExplicitTemplate((4, 4), [
            (0, Region((0, 0), (2, 4))),
            (1, Region((2, 0), (4, 2))),
            (2, Region((2, 2), (4, 4))),
        ])
        assert t.nranks == 3
        assert t.owner_of((1, 3)) == 0
        assert t.owner_of((3, 1)) == 1
        assert t.owner_of((3, 3)) == 2
        t.validate()

    def test_multiple_patches_per_rank(self):
        t = ExplicitTemplate((4, 2), [
            (0, Region((0, 0), (1, 2))),
            (1, Region((1, 0), (3, 2))),
            (0, Region((3, 0), (4, 2))),
        ])
        assert t.owner_regions(0).volume == 4
        assert len(t.owner_regions(0)) == 2

    def test_overlap_rejected(self):
        with pytest.raises(DistributionError):
            ExplicitTemplate((4,), [
                (0, Region((0,), (3,))),
                (1, Region((2,), (4,))),
            ])

    def test_gap_rejected(self):
        with pytest.raises(DistributionError):
            ExplicitTemplate((4,), [(0, Region((0,), (3,)))])

    def test_nranks_can_exceed_patch_owners(self):
        t = ExplicitTemplate((2,), [(0, Region((0,), (2,)))], nranks=4)
        assert t.nranks == 4
        assert t.owner_regions(3).volume == 0

    def test_descriptor_entries_scale_with_patches(self):
        patches = [(i, Region((i,), (i + 1,))) for i in range(8)]
        t = ExplicitTemplate((8,), patches)
        assert t.descriptor_entries() == 8 * 3  # lo+hi+rank per 1-D patch

    def test_point_outside_template(self):
        t = ExplicitTemplate((2,), [(0, Region((0,), (2,)))])
        with pytest.raises(DistributionError):
            t.owner_of((5,))


def test_block_template_rank_mismatch():
    with pytest.raises(DistributionError):
        block_template((4, 4), (2,))


def test_all_owner_regions_partition():
    t = CartesianTemplate([BlockCyclic(9, 2, 2), GeneralizedBlock(5, [2, 3])])
    seen = np.zeros(t.shape, dtype=int)
    for _, region in t.all_owner_regions():
        seen[region.to_slices()] += 1
    assert np.all(seen == 1)
