"""Per-axis distribution tests (paper §2.2.2 distribution types)."""

import numpy as np
import pytest

from repro.errors import DistributionError
from repro.dad.axis import (
    Block,
    BlockCyclic,
    Collapsed,
    Cyclic,
    GeneralizedBlock,
    Implicit,
)


class TestCollapsed:
    def test_single_owner(self):
        d = Collapsed(10)
        assert d.nprocs == 1
        assert all(d.owner(i) == 0 for i in range(10))
        assert d.intervals(0) == [(0, 10)]
        assert d.local_size(0) == 10

    def test_descriptor_is_constant_size(self):
        assert Collapsed(10).descriptor_entries() == Collapsed(10**6).descriptor_entries()


class TestBlock:
    def test_even_division(self):
        d = Block(12, 3)
        assert d.intervals(0) == [(0, 4)]
        assert d.intervals(1) == [(4, 8)]
        assert d.intervals(2) == [(8, 12)]

    def test_uneven_division_hpf_ceiling(self):
        d = Block(10, 3)  # ceil(10/3)=4 -> 4,4,2
        assert [d.local_size(p) for p in range(3)] == [4, 4, 2]

    def test_more_procs_than_elements(self):
        d = Block(2, 4)  # block=1 -> 1,1,0,0
        assert [d.local_size(p) for p in range(4)] == [1, 1, 0, 0]
        d.validate_partition()

    def test_owner_matches_intervals(self):
        d = Block(17, 4)
        for i in range(17):
            p = d.owner(i)
            assert any(a <= i < b for a, b in d.intervals(p))

    def test_out_of_range(self):
        with pytest.raises(DistributionError):
            Block(10, 2).owner(10)
        with pytest.raises(DistributionError):
            Block(10, 2).intervals(2)


class TestBlockCyclic:
    def test_cyclic_round_robin(self):
        d = Cyclic(7, 3)
        assert [d.owner(i) for i in range(7)] == [0, 1, 2, 0, 1, 2, 0]
        assert d.intervals(0) == [(0, 1), (3, 4), (6, 7)]

    def test_block_cyclic_blocks(self):
        d = BlockCyclic(10, 2, block=3)
        # blocks: [0,3)->p0 [3,6)->p1 [6,9)->p0 [9,10)->p1
        assert d.intervals(0) == [(0, 3), (6, 9)]
        assert d.intervals(1) == [(3, 6), (9, 10)]

    def test_degenerate_to_block(self):
        bc = BlockCyclic(12, 3, block=4)
        b = Block(12, 3)
        for p in range(3):
            assert bc.intervals(p) == b.intervals(p)

    def test_partition_valid(self):
        for n, p, k in [(20, 3, 2), (7, 7, 1), (13, 2, 5)]:
            BlockCyclic(n, p, k).validate_partition()

    def test_bad_block_size(self):
        with pytest.raises(DistributionError):
            BlockCyclic(10, 2, block=0)


class TestGeneralizedBlock:
    def test_varying_sizes(self):
        d = GeneralizedBlock(10, [2, 5, 3])
        assert d.intervals(0) == [(0, 2)]
        assert d.intervals(1) == [(2, 7)]
        assert d.intervals(2) == [(7, 10)]
        assert d.owner(6) == 1
        assert d.owner(7) == 2

    def test_zero_sized_block(self):
        d = GeneralizedBlock(5, [0, 5])
        assert d.intervals(0) == []
        assert d.owner(0) == 1
        d.validate_partition()

    def test_sizes_must_sum(self):
        with pytest.raises(DistributionError):
            GeneralizedBlock(10, [3, 3])

    def test_descriptor_scales_with_procs(self):
        assert GeneralizedBlock(100, [25] * 4).descriptor_entries() == 5


class TestImplicit:
    def test_arbitrary_owner_map(self):
        d = Implicit([0, 2, 2, 1, 0, 1])
        assert d.nprocs == 3
        assert d.owner(1) == 2
        assert d.intervals(0) == [(0, 1), (4, 5)]
        assert d.intervals(2) == [(1, 3)]
        d.validate_partition()

    def test_run_compression(self):
        d = Implicit([1, 1, 1, 0, 0, 1, 1])
        assert d.intervals(1) == [(0, 3), (5, 7)]
        assert d.intervals(0) == [(3, 5)]

    def test_descriptor_one_entry_per_element(self):
        assert Implicit([0] * 50, nprocs=1).descriptor_entries() == 50

    def test_invalid_owner_value(self):
        with pytest.raises(DistributionError):
            Implicit([0, 3], nprocs=2)

    def test_empty_proc(self):
        d = Implicit([0, 0], nprocs=3)
        assert d.intervals(2) == []
        assert d.local_size(2) == 0


@pytest.mark.parametrize("dist", [
    Collapsed(13),
    Block(13, 4),
    Cyclic(13, 4),
    BlockCyclic(13, 4, 3),
    GeneralizedBlock(13, [1, 6, 0, 6]),
    Implicit(np.arange(13) % 4, nprocs=4),
])
def test_partition_invariant(dist):
    """Every distribution type must partition the axis exactly once."""
    dist.validate_partition()
    total = sum(dist.local_size(p) for p in range(dist.nprocs))
    assert total == dist.extent


@pytest.mark.parametrize("dist", [
    Block(29, 5),
    BlockCyclic(29, 5, 2),
    GeneralizedBlock(29, [5, 10, 0, 7, 7]),
    Implicit((np.arange(29) * 7) % 5, nprocs=5),
])
def test_owner_consistent_with_intervals(dist):
    for i in range(dist.extent):
        p = dist.owner(i)
        assert any(a <= i < b for a, b in dist.intervals(p)), (i, p)
