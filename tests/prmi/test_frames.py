"""Batch frame codec: property-based round-trip plus wire-level guards.

The codec's contract is byte identity: any entry structure the PRMI
layer ships — nested containers, every native dtype, 0-d and empty
arrays, fire-and-forget sequence numbers — must decode to an equal
structure with dtypes preserved (equality via the same ``_args_equal``
the endpoints use to verify simple-argument consistency, which is
dtype-strict)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.prmi.endpoint import _args_equal
from repro.prmi.frames import FrameError, decode_frame, encode_frame
from repro.prmi.serving import NOREPLY_SEQ

_DTYPES = [np.float64, np.float32, np.int64, np.int32, np.uint8, np.bool_]


@st.composite
def arrays(draw):
    dtype = draw(st.sampled_from(_DTYPES))
    shape = draw(st.lists(st.integers(0, 4), min_size=0, max_size=3))
    n = int(np.prod(shape)) if shape else 1
    data = draw(st.lists(st.integers(0, 100), min_size=n, max_size=n))
    return np.array(data, dtype=dtype).reshape(shape)


scalars = st.one_of(
    st.integers(-2**40, 2**40),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    st.text(max_size=8),
    st.booleans(),
    st.none(),
    st.binary(max_size=16),
)

payloads = st.recursive(
    st.one_of(scalars, arrays()),
    lambda inner: st.one_of(
        st.lists(inner, max_size=3),
        st.tuples(inner, inner),
        st.dictionaries(st.text(max_size=5), inner, max_size=3),
    ),
    max_leaves=8,
)

entries_strategy = st.lists(
    st.tuples(st.one_of(st.integers(0, 2**31), st.just(NOREPLY_SEQ)),
              st.text(min_size=1, max_size=12),
              payloads),
    min_size=0, max_size=6,
)


@settings(max_examples=60, deadline=None)
@given(entries_strategy)
def test_roundtrip(entries):
    decoded = decode_frame(encode_frame(entries))
    assert len(decoded) == len(entries)
    for (seq, name, payload), (dseq, dname, dpayload) in zip(entries,
                                                             decoded):
        assert dseq == seq
        assert dname == name
        assert _args_equal(dpayload, payload)


@settings(max_examples=30, deadline=None)
@given(arrays())
def test_dtype_and_shape_survive(arr):
    """dtype preservation is load-bearing: np.array_equal alone would
    call a float32/float64 round-trip corruption a success."""
    [(_, _, out)] = decode_frame(encode_frame([(0, "m", {"v": arr})]))
    got = out["v"]
    assert got.dtype == arr.dtype
    assert got.shape == arr.shape
    assert np.array_equal(got, arr)


def test_zero_dim_and_empty_arrays():
    z = np.array(3.5)
    e = np.zeros((0, 4), dtype=np.int32)
    decoded = decode_frame(encode_frame([(1, "m", (z, e))]))
    (zz, ee) = decoded[0][2]
    assert zz.shape == () and float(zz) == 3.5
    assert ee.shape == (0, 4) and ee.dtype == np.int32


def test_object_arrays_ride_the_header():
    arr = np.array([{"a": 1}, None], dtype=object)
    [(_, _, out)] = decode_frame(encode_frame([(0, "m", arr)]))
    assert out.dtype == object and out[0] == {"a": 1} and out[1] is None


def test_one_header_pickle_per_frame(monkeypatch):
    """The codec's entire point: batching N requests costs one pickle,
    not N (lint rule V107 enforces the same property statically)."""
    import pickle as _pickle

    calls = []
    real = _pickle.dumps

    def counting(obj, *a, **k):
        calls.append(obj)
        return real(obj, *a, **k)

    monkeypatch.setattr("repro.prmi.frames.pickle.dumps", counting)
    encode_frame([(i, "m", {"x": np.arange(i + 1)}) for i in range(16)])
    assert len(calls) == 1


def test_truncated_frame_raises():
    frame = encode_frame([(0, "m", np.arange(32, dtype=np.float64))])
    with pytest.raises(FrameError):
        decode_frame(frame[: len(frame) // 2])
    with pytest.raises(FrameError):
        decode_frame(np.zeros(4, dtype=np.uint8))


def test_decode_is_zero_copy():
    arr = np.arange(64, dtype=np.float64)
    frame = encode_frame([(0, "m", arr)])
    [(_, _, view)] = decode_frame(frame)
    assert view.base is not None  # a view into the frame, not a copy
    assert np.shares_memory(view, frame)
