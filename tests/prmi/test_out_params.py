"""Out/inout parameter tests: results flow back as declared."""

import pytest

from repro.cca.sidl import arg, method, port
from repro.errors import PRMIError, SpmdError
from repro.prmi import CalleeEndpoint, CallerEndpoint
from repro.simmpi import NameService, run_coupled

PORT = port(
    "OutPort",
    method("divide", arg("a"), arg("b"),
           arg("quotient", mode="out"), arg("remainder", mode="out")),
    method("normalize", arg("vec", mode="inout"), returns=False),
    method("broken_out", arg("x", mode="out")),
)


class Impl:
    def divide(self, a, b):
        return {"return": True, "quotient": a // b, "remainder": a % b}

    def normalize(self, vec):
        total = sum(vec)
        return {"vec": [v / total for v in vec]}

    def broken_out(self, **kwargs):
        return 42  # violates the contract: must be a dict


def run_one(caller_fn, serve_count=1, m=2, n=1):
    ns = NameService()

    def caller(comm):
        inter = ns.connect("op", comm)
        ep = CallerEndpoint(comm, inter, PORT)
        return caller_fn(ep, comm)

    def callee(comm):
        inter = ns.accept("op", comm)
        ep = CalleeEndpoint(comm, inter, PORT, Impl())
        for _ in range(serve_count):
            ep.serve_one()
        return True

    return run_coupled([("callee", n, callee, ()), ("caller", m, caller, ())])


def test_out_params_returned_as_dict():
    def caller_fn(ep, comm):
        return ep.invoke("divide", a=17, b=5)

    out = run_one(caller_fn)
    for result in out["caller"]:
        assert result == {"return": True, "quotient": 3, "remainder": 2}


def test_inout_without_return():
    def caller_fn(ep, comm):
        return ep.invoke("normalize", vec=[1.0, 3.0])

    out = run_one(caller_fn)
    for result in out["caller"]:
        assert result == {"vec": [0.25, 0.75]}


def test_contract_violation_detected():
    def caller_fn(ep, comm):
        ep.invoke("broken_out")

    with pytest.raises(SpmdError) as exc_info:
        run_one(caller_fn)
    assert any(isinstance(e, PRMIError)
               for e in exc_info.value.failures.values())


def test_parallel_out_rejected_at_declaration_time():
    """Parallel out args are rejected when the method is serviced."""
    P2 = port("P2", method("bad", arg("f", mode="out", kind="parallel")))

    class Impl2:
        def bad(self):
            return {"return": None, "f": None}

    ns = NameService()

    def caller(comm):
        inter = ns.connect("p2", comm)
        ep = CallerEndpoint(comm, inter, P2)
        ep.invoke("bad")

    def callee(comm):
        inter = ns.accept("p2", comm)
        ep = CalleeEndpoint(comm, inter, P2, Impl2())
        ep.serve_one()

    with pytest.raises(SpmdError) as exc_info:
        run_coupled([("callee", 1, callee, ()), ("caller", 1, caller, ())])
    assert any(isinstance(e, PRMIError)
               for e in exc_info.value.failures.values())


def test_out_params_via_independent_call():
    IND = port("Ind", method("divide", arg("a"), arg("b"),
                             arg("quotient", mode="out"),
                             arg("remainder", mode="out"),
                             invocation="independent"))
    ns = NameService()

    def caller(comm):
        inter = ns.connect("ind", comm)
        ep = CallerEndpoint(comm, inter, IND)
        return ep.invoke_independent("divide", 0, a=10, b=3)

    def callee(comm):
        inter = ns.accept("ind", comm)
        ep = CalleeEndpoint(comm, inter, IND, Impl())
        ep.serve_independent()
        return True

    out = run_coupled([("callee", 1, callee, ()), ("caller", 1, caller, ())])
    assert out["caller"][0] == {"return": True, "quotient": 3,
                                "remainder": 1}
