"""Collective PRMI tests: M×N invocation with ghost bookkeeping."""

import pytest

from repro.cca.sidl import arg, method, port
from repro.errors import SpmdError
from repro.prmi import CalleeEndpoint, CallerEndpoint
from repro.simmpi import NameService, run_coupled

CALC_PORT = port(
    "CalcPort",
    method("double_it", arg("x")),
    method("rank_echo"),
    method("notify", arg("msg"), oneway=True, returns=False),
)


class CalcImpl:
    def __init__(self, comm):
        self.comm = comm
        self.notifications = []

    def double_it(self, x):
        return 2 * x

    def rank_echo(self):
        return self.comm.rank

    def notify(self, msg):
        self.notifications.append(msg)
        return None


def run_mxn(m, n, caller_fn, callee_fn):
    ns = NameService()

    def caller(comm):
        inter = ns.connect("port", comm)
        ep = CallerEndpoint(comm, inter, CALC_PORT)
        return caller_fn(ep, comm)

    def callee(comm):
        inter = ns.accept("port", comm)
        impl = CalcImpl(comm)
        ep = CalleeEndpoint(comm, inter, CALC_PORT, impl)
        return callee_fn(ep, comm, impl)

    return run_coupled([
        ("callee", n, callee, ()),
        ("caller", m, caller, ()),
    ])


@pytest.mark.parametrize("m,n", [(2, 2), (1, 3), (3, 1), (2, 5), (5, 2)])
def test_collective_call_all_shapes(m, n):
    """§4.2: works 'regardless of the different numbers of processes with
    which each component may be instantiated'."""
    def caller_fn(ep, comm):
        return ep.invoke("double_it", x=21)

    def callee_fn(ep, comm, impl):
        ep.serve_one()
        return ep.stats

    out = run_mxn(m, n, caller_fn, callee_fn)
    # "all callers will receive a return value"
    assert out["caller"] == [42] * m


def test_ghost_invocations_when_n_exceeds_m():
    def caller_fn(ep, comm):
        ep.invoke("double_it", x=1)
        return ep.stats.ghost_invocations

    def callee_fn(ep, comm, impl):
        ep.serve_one()
        return ep.stats.merged_invocations

    out = run_mxn(2, 5, caller_fn, callee_fn)
    # 5 callees served by 2 callers: fan-outs of 3 and 2 -> 2 + 1 ghosts
    assert sum(out["caller"]) == 3
    assert sum(out["callee"]) == 0


def test_merged_invocations_and_ghost_returns_when_m_exceeds_n():
    def caller_fn(ep, comm):
        return ep.invoke("rank_echo")

    def callee_fn(ep, comm, impl):
        ep.serve_one()
        return (ep.stats.merged_invocations, ep.stats.ghost_returns)

    out = run_mxn(5, 2, caller_fn, callee_fn)
    # callee 0 merges callers {0,2,4} (2 ghosts in, 2 ghost returns)
    merged = [r[0] for r in out["callee"]]
    ghosts = [r[1] for r in out["callee"]]
    assert sum(merged) == 3  # 5 invocations merged into 2 services
    assert sum(ghosts) == 3  # 5 returns from 2 services
    # every caller got the return from callee (rank % 2)
    assert out["caller"] == [0, 1, 0, 1, 0]


def test_consecutive_calls_preserve_order():
    def caller_fn(ep, comm):
        return [ep.invoke("double_it", x=i) for i in range(5)]

    def callee_fn(ep, comm, impl):
        return [ep.serve_one() for _ in range(5)]

    out = run_mxn(3, 2, caller_fn, callee_fn)
    assert all(r == [0, 2, 4, 6, 8] for r in out["caller"])


def test_oneway_does_not_block():
    """One-way methods: 'the calling component continues execution
    immediately' — the caller finishes even before the callee serves."""
    import threading
    served = threading.Event()

    def caller_fn(ep, comm):
        ep.invoke("notify", msg=f"hello")
        # no recv happened; we return before the callee even starts
        return served.is_set()

    def callee_fn(ep, comm, impl):
        # deliberately delay servicing until callers have returned
        import time
        time.sleep(0.3)
        served.set()
        ep.serve_one()
        return impl.notifications

    out = run_mxn(2, 1, caller_fn, callee_fn)
    assert out["caller"] == [False, False]
    assert out["callee"][0] == ["hello"]


def test_wrong_arguments_rejected():
    def caller_fn(ep, comm):
        from repro.errors import PRMIError
        with pytest.raises(PRMIError):
            ep.invoke("double_it", y=1)
        ep.invoke("double_it", x=1)  # keep protocol in sync
        return True

    def callee_fn(ep, comm, impl):
        ep.serve_one()
        return True

    out = run_mxn(1, 1, caller_fn, callee_fn)
    assert out["caller"] == [True]


def test_simple_arg_verification_catches_divergence():
    ns = NameService()

    def caller(comm):
        inter = ns.connect("port", comm)
        ep = CallerEndpoint(comm, inter, CALC_PORT, verify_simple=True)
        ep.invoke("double_it", x=comm.rank)  # diverging simple arg!

    def callee(comm):
        inter = ns.accept("port", comm)
        ep = CalleeEndpoint(comm, inter, CALC_PORT, CalcImpl(comm))
        ep.serve_one()

    with pytest.raises(SpmdError) as exc_info:
        run_coupled([("callee", 1, callee, ()), ("caller", 2, caller, ())],
                    deadlock_timeout=2.0)
    from repro.errors import SimpleArgumentMismatch
    assert any(isinstance(e, SimpleArgumentMismatch)
               for e in exc_info.value.failures.values())


def test_independent_invocation():
    IND_PORT = port("Ind", method("poke", arg("v"), invocation="independent"))

    ns = NameService()

    class Impl:
        def __init__(self):
            self.pokes = []

        def poke(self, v):
            self.pokes.append(v)
            return v + 100

    def caller(comm):
        inter = ns.connect("ind", comm)
        ep = CallerEndpoint(comm, inter, IND_PORT)
        # each caller rank pokes callee rank (rank % 2) independently
        return ep.invoke_independent("poke", comm.rank % 2, v=comm.rank)

    def callee(comm):
        inter = ns.accept("ind", comm)
        impl = Impl()
        ep = CalleeEndpoint(comm, inter, IND_PORT, impl)
        # callee 0 serves callers 0 and 2; callee 1 serves caller 1
        count = 2 if comm.rank == 0 else 1
        for _ in range(count):
            ep.serve_independent()
        return sorted(impl.pokes)

    out = run_coupled([("callee", 2, callee, ()), ("caller", 3, caller, ())])
    assert out["caller"] == [100, 101, 102]
    assert out["callee"][0] == [0, 2]
    assert out["callee"][1] == [1]


def test_independent_call_on_collective_method_rejected():
    def caller_fn(ep, comm):
        from repro.errors import PRMIError
        with pytest.raises(PRMIError):
            ep.invoke_independent("double_it", 0, x=1)
        ep.invoke("double_it", x=1)
        return True

    def callee_fn(ep, comm, impl):
        ep.serve_one()
        return True

    run_mxn(1, 1, caller_fn, callee_fn)
