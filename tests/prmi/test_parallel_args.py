"""Parallel-argument PRMI tests: both callee-layout strategies."""

import numpy as np
import pytest

from repro.cca.sidl import arg, method, port
from repro.dad import DistArrayDescriptor, DistributedArray
from repro.dad.template import block_template
from repro.errors import SpmdError
from repro.prmi import CalleeEndpoint, CallerEndpoint, ParallelArg
from repro.simmpi import NameService, run_coupled

FIELD_PORT = port(
    "FieldPort",
    method("norm", arg("field", kind="parallel")),
    method("scale_info", arg("factor"), arg("field", kind="parallel")),
    method("two_fields", arg("a", kind="parallel"), arg("b", kind="parallel")),
)

SHAPE = (8, 6)
G = np.arange(48.0).reshape(SHAPE)


def coupled(m, n, caller_fn, callee_factory):
    ns = NameService()

    def caller(comm):
        inter = ns.connect("fp", comm)
        ep = CallerEndpoint(comm, inter, FIELD_PORT)
        src_desc = DistArrayDescriptor(block_template(SHAPE, (m, 1)), G.dtype)
        field = DistributedArray.from_global(src_desc, comm.rank, G)
        return caller_fn(ep, comm, field)

    def callee(comm):
        inter = ns.accept("fp", comm)
        impl, setup = callee_factory(comm)
        ep = CalleeEndpoint(comm, inter, FIELD_PORT, impl)
        setup(ep)
        ep.serve_one()
        return impl.result

    return run_coupled([("callee", n, callee, ()), ("caller", m, caller, ())])


def test_preregistered_layout_strategy():
    """Paper strategy 1: 'specify the layout using a special framework
    service before the call is received'."""
    n = 3
    layout = DistArrayDescriptor(block_template(SHAPE, (1, n)), G.dtype)

    class Impl:
        def __init__(self, comm):
            self.comm = comm
            self.result = None

        def norm(self, field):
            # field arrives as a ready DistributedArray in MY layout
            assert isinstance(field, DistributedArray)
            local = sum(float((a ** 2).sum())
                        for _, a in field.iter_patches())
            self.result = self.comm.allreduce(local, op="sum")
            return self.result

    def factory(comm):
        impl = Impl(comm)
        return impl, lambda ep: ep.set_param_layout("norm", "field", layout)

    out = coupled(2, n, lambda ep, comm, f: ep.invoke(
        "norm", field=ParallelArg(f)), factory)
    expected = float((G ** 2).sum())
    assert all(r == pytest.approx(expected) for r in out["caller"])
    assert all(r == pytest.approx(expected) for r in out["callee"])


def test_lazy_materialization_strategy():
    """Paper strategy 2: 'delay the actual transfer of data until the
    provides side has specified its layout'."""
    n = 2

    class Impl:
        def __init__(self, comm):
            self.comm = comm
            self.result = None

        def norm(self, field):
            from repro.prmi import LazyParallelArg
            assert isinstance(field, LazyParallelArg)
            assert not field.materialized
            layout = DistArrayDescriptor(
                block_template(SHAPE, (n, 1)), G.dtype)
            da = field.materialize(layout)
            local = sum(float(a.sum()) for _, a in da.iter_patches())
            self.result = self.comm.allreduce(local, op="sum")
            return self.result

    def factory(comm):
        return Impl(comm), lambda ep: None

    out = coupled(3, n, lambda ep, comm, f: ep.invoke(
        "norm", field=ParallelArg(f)), factory)
    assert all(r == pytest.approx(G.sum()) for r in out["caller"])


def test_mixed_simple_and_parallel_args():
    n = 2
    layout = DistArrayDescriptor(block_template(SHAPE, (1, n)), G.dtype)

    class Impl:
        def __init__(self, comm):
            self.comm = comm
            self.result = None

        def scale_info(self, factor, field):
            local = sum(float(a.sum()) for _, a in field.iter_patches())
            self.result = factor * self.comm.allreduce(local, op="sum")
            return self.result

    def factory(comm):
        impl = Impl(comm)
        return impl, lambda ep: ep.set_param_layout(
            "scale_info", "field", layout)

    out = coupled(2, n, lambda ep, comm, f: ep.invoke(
        "scale_info", factor=0.5, field=ParallelArg(f)), factory)
    assert all(r == pytest.approx(0.5 * G.sum()) for r in out["caller"])


def test_two_parallel_args_in_order():
    n = 2
    layout = DistArrayDescriptor(block_template(SHAPE, (n, 1)), G.dtype)

    class Impl:
        def __init__(self, comm):
            self.comm = comm
            self.result = None

        def two_fields(self, a, b):
            da = a.materialize(layout)
            db = b.materialize(layout)
            local = sum(float(x.sum()) for _, x in da.iter_patches())
            local += sum(float(x.sum()) for _, x in db.iter_patches())
            self.result = self.comm.allreduce(local, op="sum")
            return self.result

    def factory(comm):
        return Impl(comm), lambda ep: None

    out = coupled(2, n, lambda ep, comm, f: ep.invoke(
        "two_fields", a=ParallelArg(f), b=ParallelArg(f)), factory)
    assert all(r == pytest.approx(2 * G.sum()) for r in out["caller"])


def test_out_of_order_materialization_rejected():
    n = 1
    layout = DistArrayDescriptor(block_template(SHAPE, (1, 1)), G.dtype)

    class Impl:
        def __init__(self, comm):
            self.comm = comm
            self.result = None

        def two_fields(self, a, b):
            b.materialize(layout)  # wrong order: b before a

    def factory(comm):
        return Impl(comm), lambda ep: None

    with pytest.raises(SpmdError) as exc_info:
        coupled(1, n, lambda ep, comm, f: ep.invoke(
            "two_fields", a=ParallelArg(f), b=ParallelArg(f)), factory)
    from repro.errors import PRMIError
    assert any(isinstance(e, PRMIError)
               for e in exc_info.value.failures.values())


def test_unmaterialized_parallel_arg_rejected():
    class Impl:
        def __init__(self, comm):
            self.comm = comm
            self.result = None

        def norm(self, field):
            return 0.0  # never materializes -> protocol violation

    def factory(comm):
        return Impl(comm), lambda ep: None

    with pytest.raises(SpmdError):
        coupled(1, 1, lambda ep, comm, f: ep.invoke(
            "norm", field=ParallelArg(f)), factory)


def test_unwrapped_parallel_arg_rejected():
    ns = NameService()

    def caller(comm):
        inter = ns.connect("fp", comm)
        ep = CallerEndpoint(comm, inter, FIELD_PORT)
        from repro.errors import PRMIError
        with pytest.raises(PRMIError):
            ep.invoke("norm", field=np.zeros(4))  # not a ParallelArg
        return True

    def callee(comm):
        ns.accept("fp", comm)
        return True

    out = run_coupled([("callee", 1, callee, ()), ("caller", 1, caller, ())])
    assert out["caller"] == [True]
