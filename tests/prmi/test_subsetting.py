"""SCIRun2 sub-setting mechanism tests (§4.2).

"If the needs of a component change at run-time and the choice of
processes participating in a call needs to be modified, then a
sub-setting mechanism is engaged to allow greater flexibility."
"""

import numpy as np
import pytest

from repro.cca.sidl import arg, method, port
from repro.dad import DistArrayDescriptor, DistributedArray
from repro.dad.template import block_template
from repro.errors import PRMIError
from repro.prmi import CalleeEndpoint, CallerEndpoint, ParallelArg
from repro.simmpi import NameService, run_coupled

PORT = port(
    "SubsetPort",
    method("echo_m", arg("x")),
    method("norm", arg("field", kind="parallel")),
)


class Impl:
    def __init__(self, comm):
        self.comm = comm

    def echo_m(self, x):
        return x

    def norm(self, field):
        local = sum(float(a.sum()) for _, a in field.iter_patches())
        return self.comm.allreduce(local, op="sum")


def run_subset_scenario(caller_fn, callee_fn, m=4, n=2):
    ns = NameService()

    def caller(comm):
        inter = ns.connect("sp", comm)
        ep = CallerEndpoint(comm, inter, PORT)
        return caller_fn(ep, comm)

    def callee(comm):
        inter = ns.accept("sp", comm)
        ep = CalleeEndpoint(comm, inter, PORT, Impl(comm))
        return callee_fn(ep, comm)

    return run_coupled([("callee", n, callee, ()), ("caller", m, caller, ())])


def test_subset_collective_call():
    """Only ranks {1, 3} of a 4-rank cohort participate after the
    sub-setting mechanism is engaged."""
    def caller_fn(ep, comm):
        full = ep.invoke("echo_m", x="full")
        sub_ep = ep.engage_subset([1, 3])
        result = sub_ep.invoke("echo_m", x="subset")
        return (full, result, sub_ep.caller_rank)

    def callee_fn(ep, comm):
        first = ep.serve_one()
        assert ep.m == 4
        ranks = ep.accept_subset()
        assert ranks == [1, 3]
        assert ep.m == 2
        second = ep.serve_one()
        return (first, second)

    out = run_subset_scenario(caller_fn, callee_fn)
    # every cohort rank got the full-call return
    assert [r[0] for r in out["caller"]] == ["full"] * 4
    # only the subset got the second return; others got None (no-op)
    assert [r[1] for r in out["caller"]] == [None, "subset", None, "subset"]
    # effective caller ranks inside the subset
    assert [r[2] for r in out["caller"]] == [None, 0, None, 1]
    assert out["callee"] == [("echo_m", "echo_m")] * 2


def test_subset_with_parallel_argument():
    """A parallel argument redistributed from a 2-rank subset of a
    4-rank cohort to a 2-rank callee."""
    shape = (8,)
    g = np.arange(8.0)
    sub_ranks = [0, 2]
    src_desc = DistArrayDescriptor(block_template(shape, (2,)))
    layout = DistArrayDescriptor(block_template(shape, (2,)))

    def caller_fn(ep, comm):
        sub_ep = ep.engage_subset(sub_ranks)
        if sub_ep.caller_rank is None:
            return None  # subset out: no data, no call
        field = DistributedArray.from_global(
            src_desc, sub_ep.caller_rank, g)
        return sub_ep.invoke("norm", field=ParallelArg(field))

    def callee_fn(ep, comm):
        ep.set_param_layout("norm", "field", layout)
        ep.accept_subset()
        ep.serve_one()
        return True

    out = run_subset_scenario(caller_fn, callee_fn, m=4, n=2)
    assert out["caller"][0] == pytest.approx(g.sum())
    assert out["caller"][2] == pytest.approx(g.sum())
    assert out["caller"][1] is None and out["caller"][3] is None


def test_subset_ghost_bookkeeping():
    """Subset of 2 callers against 5 callees: ghosts follow M'=2."""
    def caller_fn(ep, comm):
        sub_ep = ep.engage_subset([0, 1])
        sub_ep.invoke("echo_m", x=1)
        return sub_ep.stats.ghost_invocations

    def callee_fn(ep, comm):
        ep.accept_subset()
        ep.serve_one()
        return True

    out = run_subset_scenario(caller_fn, callee_fn, m=3, n=5)
    # callers 0,1 fan out to 5 callees: 3 + 2 -> 3 ghosts total
    assert sum(g for g in out["caller"] if g) == 3


def test_invalid_subset_rejected():
    def caller_fn(ep, comm):
        with pytest.raises(PRMIError):
            ep.engage_subset([7])
        with pytest.raises(PRMIError):
            ep.engage_subset([])
        return True

    def callee_fn(ep, comm):
        return True

    out = run_subset_scenario(caller_fn, callee_fn, m=2, n=1)
    assert all(out["caller"])
