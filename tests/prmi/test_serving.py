"""The high-throughput serving tier, end to end on both backends.

Rank functions are module-level (the procs backend pickles them), and
each scenario runs a real caller cohort with an
:class:`~repro.prmi.serving.InvocationPipeline` against a callee cohort
blocked in :class:`~repro.prmi.serving.ServerLoop`.
"""

import numpy as np
import pytest

from repro.cca.sidl import arg, method, port
from repro.errors import ServerOverloaded, SimpleArgumentMismatch
from repro.prmi import (
    Batched,
    CachedRead,
    CalleeEndpoint,
    CallerEndpoint,
    InvocationPipeline,
    PolicyTable,
    ServerLoop,
    Sync,
)
from repro.prmi.endpoint import _args_equal
from repro.simmpi import NameService, run_coupled
from repro.simmpi.intercomm import default_nameservice

BACKENDS = ["threads", "procs"]

PORT = port(
    "ServePort",
    method("echo_m", arg("x")),
    method("add", arg("a"), arg("b"), invocation="independent"),
    method("scale", arg("v"), invocation="independent"),
    method("get_config", arg("key"), invocation="independent"),
    method("note", arg("msg"), oneway=True, returns=False,
           invocation="independent"),
)


class ServeImpl:
    def __init__(self, comm):
        self.comm = comm
        self.notes = []

    def echo_m(self, x):
        return x

    def add(self, a, b):
        return a + b

    def scale(self, v):
        return v * 2.0

    def get_config(self, key):
        return {"key": key, "rank": self.comm.rank}

    def note(self, msg):
        self.notes.append(msg)


def _callee(comm, service, queue_max=None):
    inter = default_nameservice.accept(service, comm)
    ep = CalleeEndpoint(comm, inter, PORT, ServeImpl(comm))
    loop = ServerLoop(ep, queue_max=queue_max)
    tallies = loop.serve_forever()
    tallies["subset_engagements"] = ep.stats.subset_engagements
    return tallies


def _pipeline(comm, service, **kw):
    inter = default_nameservice.connect(service, comm)
    ep = CallerEndpoint(comm, inter, PORT)
    return InvocationPipeline(ep, **kw)


# -- batched + one-way interleave, identity vs unbatched ---------------------

def _interleave_caller(comm, service, n):
    table = PolicyTable(default=Batched(batch_max=4, delay_us=10**7))
    pipe = _pipeline(comm, service, policies=table, inflight_max=256)
    callee = comm.rank % n
    futs = []
    for i in range(10):
        futs.append(pipe.submit("add", callee, a=i, b=comm.rank))
        if i % 3 == 0:
            pipe.submit("note", callee, msg=f"r{comm.rank}i{i}")
    vec = np.arange(6, dtype=np.float32)
    arr_fut = pipe.submit("scale", callee, v=vec)
    coll = pipe.invoke_collective("echo_m", x=comm.rank * 0 + 7)
    batched = [f.result() for f in futs]
    batched_arr = arr_fut.result()
    # The same requests again, unbatched (sync per-request frames), and
    # through the classic per-message independent path the loop also
    # serves: all three executions must agree exactly.
    sync_pipe_results = []
    sync_table = PolicyTable(default=Sync())
    pipe.policies = sync_table
    for i in range(10):
        sync_pipe_results.append(
            pipe.submit("add", callee, a=i, b=comm.rank).result())
    unbatched = [pipe.caller.invoke_independent("add", callee,
                                                a=i, b=comm.rank)
                 for i in range(10)]
    unbatched_arr = pipe.caller.invoke_independent("scale", callee, v=vec)
    pipe.close()
    return (batched, sync_pipe_results, unbatched, coll.result(),
            _args_equal(batched_arr, unbatched_arr),
            batched_arr.dtype.str)


@pytest.mark.parametrize("backend", BACKENDS,
                         ids=[f"backend-{b}" for b in BACKENDS])
def test_batched_oneway_interleave_matches_unbatched(backend):
    m = n = 2
    out = run_coupled([
        ("callee", n, _callee, ("serve-interleave",)),
        ("caller", m, _interleave_caller, ("serve-interleave", n)),
    ], backend=backend)
    for rank, (batched, sync_r, unbatched, coll, arr_eq, dt) in \
            enumerate(out["caller"]):
        expected = [i + rank for i in range(10)]
        assert batched == expected
        assert sync_r == expected
        assert unbatched == expected
        assert coll == 7
        assert arr_eq          # byte identity incl. dtype (float32 in)
        assert dt == np.dtype(np.float32).str
    for tallies in out["callee"]:
        assert tallies["overloads"] == 0
        assert tallies["errors"] == 0
        # one-way notes rode the frames: requests > replied invocations
        assert tallies["requests"] >= 11


# -- subset engagement mid-pipeline ------------------------------------------

def _subset_caller(comm, service, n):
    table = PolicyTable(default=Batched(batch_max=8, delay_us=10**7))
    pipe = _pipeline(comm, service, policies=table)
    before = pipe.invoke_collective("echo_m", x=1)
    futs = [pipe.submit("add", comm.rank % n, a=i, b=0) for i in range(4)]
    pipe.engage_subset([0, 2])
    after = pipe.invoke_collective("echo_m", x=2)
    late = [pipe.submit("add", comm.rank % n, a=i, b=10) for i in range(3)]
    got = ([f.result() for f in futs], before.result(), after.result(),
           [f.result() for f in late])
    pipe.close()
    return got


@pytest.mark.parametrize("backend", BACKENDS,
                         ids=[f"backend-{b}" for b in BACKENDS])
def test_subset_engaged_mid_pipeline(backend):
    m, n = 3, 2
    out = run_coupled([
        ("callee", n, _callee, ("serve-subset",)),
        ("caller", m, _subset_caller, ("serve-subset", n)),
    ], backend=backend)
    for rank, (futs, before, after, late) in enumerate(out["caller"]):
        assert futs == [0, 1, 2, 3]
        assert before == 1
        # rank 1 is subset out: its post-subset collective is a no-op,
        # but independent submissions still flow.
        assert after == (2 if rank in (0, 2) else None)
        assert late == [10, 11, 12]
    for tallies in out["callee"]:
        assert tallies["subsets"] == 1
        assert tallies["subset_engagements"] == 1
        assert tallies["collective"] == 2


# -- queue-overflow admission control ----------------------------------------

def _overflow_caller(comm, service):
    table = PolicyTable(default=Batched(batch_max=64, delay_us=10**7))
    pipe = _pipeline(comm, service, policies=table)
    futs = [pipe.submit("add", 0, a=i, b=0) for i in range(8)]
    pipe.flush()
    ok, refused = [], 0
    for f in futs:
        try:
            ok.append(f.result())
        except ServerOverloaded:
            refused += 1
    pipe.close()
    return ok, refused


@pytest.mark.parametrize("backend", BACKENDS,
                         ids=[f"backend-{b}" for b in BACKENDS])
def test_server_queue_overflow_refuses_excess(backend):
    out = run_coupled([
        ("callee", 1, _callee, ("serve-overflow", 3)),
        ("caller", 1, _overflow_caller, ("serve-overflow",)),
    ], backend=backend)
    ok, refused = out["caller"][0]
    # FIFO admission: the first queue_max requests succeed, the rest
    # are refused with ServerOverloaded — nothing is silently dropped.
    assert ok == [0, 1, 2]
    assert refused == 5
    assert out["callee"][0]["overloads"] == 5


# -- caller-side in-flight window --------------------------------------------

def _inflight_raise_caller(comm, service):
    table = PolicyTable(default=Batched(batch_max=64, delay_us=10**7))
    pipe = _pipeline(comm, service, policies=table, inflight_max=3,
                     overflow="raise")
    futs = [pipe.submit("add", 0, a=i, b=0) for i in range(3)]
    try:
        pipe.submit("add", 0, a=99, b=0)
        raised = False
    except ServerOverloaded:
        raised = True
    vals = [f.result() for f in futs]
    pipe.close()
    return raised, vals


def _inflight_block_caller(comm, service):
    table = PolicyTable(default=Batched(batch_max=2, delay_us=10**7))
    pipe = _pipeline(comm, service, policies=table, inflight_max=4,
                     overflow="block")
    futs = [pipe.submit("add", 0, a=i, b=0) for i in range(12)]
    vals = [f.result() for f in futs]
    pipe.close()
    return vals


def test_inflight_cap_raise_policy():
    out = run_coupled([
        ("callee", 1, _callee, ("serve-inflight-raise",)),
        ("caller", 1, _inflight_raise_caller, ("serve-inflight-raise",)),
    ])
    raised, vals = out["caller"][0]
    assert raised and vals == [0, 1, 2]


def test_inflight_cap_block_policy_makes_progress():
    out = run_coupled([
        ("callee", 1, _callee, ("serve-inflight-block",)),
        ("caller", 1, _inflight_block_caller, ("serve-inflight-block",)),
    ])
    assert out["caller"][0] == list(range(12))


# -- cached-read policy -------------------------------------------------------

def _cached_caller(comm, service):
    cache = CachedRead()
    table = PolicyTable(get_config=cache)
    pipe = _pipeline(comm, service, policies=table)
    a = pipe.submit("get_config", 0, key="alpha").result()
    b = pipe.submit("get_config", 0, key="alpha").result()   # cache hit
    c = pipe.submit("get_config", 0, key="beta").result()
    cache.invalidate("get_config")
    d = pipe.submit("get_config", 0, key="alpha").result()   # refetched
    pipe.close()
    return a, b, c, d


def test_cached_read_hits_skip_the_wire():
    out = run_coupled([
        ("callee", 1, _callee, ("serve-cached",)),
        ("caller", 1, _cached_caller, ("serve-cached",)),
    ])
    a, b, c, d = out["caller"][0]
    assert a == b == d == {"key": "alpha", "rank": 0}
    assert c == {"key": "beta", "rank": 0}
    # 4 results, but only 3 requests crossed the wire.
    assert out["callee"][0]["requests"] == 3


# -- _args_equal dtype regression --------------------------------------------

def test_args_equal_is_dtype_strict():
    """np.array_equal alone calls float32/float64 twins equal; the
    cohorts would then build byte-incompatible schedules from
    'consistent' simple args."""
    a32 = np.arange(3, dtype=np.float32)
    a64 = np.arange(3, dtype=np.float64)
    assert bool(np.array_equal(a32, a64))     # why the check must exist
    assert not _args_equal(a32, a64)
    assert _args_equal(a32, a32.copy())
    assert not _args_equal({"x": a32}, {"x": a64})
    assert _args_equal([a64, 1], (a64, 1))


def _dtype_mismatch_caller(comm, service):
    inter = default_nameservice.connect(service, comm)
    ep = CallerEndpoint(comm, inter, PORT, verify_simple=True)
    dtype = np.float32 if comm.rank == 0 else np.float64
    try:
        ep.invoke("echo_m", x=np.arange(3, dtype=dtype))
        return "no error"
    except SimpleArgumentMismatch:
        return "mismatch"


def _dtype_mismatch_callee(comm, service):
    inter = default_nameservice.accept(service, comm)
    CalleeEndpoint(comm, inter, PORT, ServeImpl(comm))
    return "served"


def test_verify_simple_catches_dtype_divergence():
    out = run_coupled([
        ("callee", 1, _dtype_mismatch_callee, ("serve-dtype",)),
        ("caller", 2, _dtype_mismatch_caller, ("serve-dtype",)),
    ])
    assert set(out["caller"]) == {"mismatch"}
