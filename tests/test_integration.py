"""Cross-subsystem integration tests: multiple connections, multiple
fields, and failure injection."""

import numpy as np
import pytest

from repro.dad import AccessMode, DistArrayDescriptor, DistributedArray
from repro.dad.template import block_template
from repro.errors import DeadlockError, SpmdError
from repro.icomm import (
    CoordinationSpec,
    Exporter,
    Importer,
    MatchRule,
    Matching,
)
from repro.mxn import ConnectionKind, ConnectionSpec, MxNComponent
from repro.simmpi import NameService, run_coupled


class TestMultipleConnections:
    def test_two_fields_two_connections_one_pair(self):
        """One component pair moving two different fields through two
        simultaneous M×N connections (distinct connection ids)."""
        shape = (8, 8)
        src_t = DistArrayDescriptor(block_template(shape, (2, 1)))
        dst_t = DistArrayDescriptor(block_template(shape, (1, 2)))
        g_t = np.arange(64.0).reshape(shape)
        g_p = np.arange(64.0).reshape(shape) * -1.0
        spec_t = ConnectionSpec(src_t, dst_t, ConnectionKind.PERSISTENT,
                                period=1, connection_id=1)
        spec_p = ConnectionSpec(src_t, dst_t, ConnectionKind.PERSISTENT,
                                period=1, connection_id=2)
        ns = NameService()

        def left(comm):
            inter = ns.accept("multi", comm)
            mxn = MxNComponent(comm)
            mxn.register("temp", DistributedArray.from_global(
                src_t, comm.rank, g_t), AccessMode.READ)
            mxn.register("pres", DistributedArray.from_global(
                src_t, comm.rank, g_p), AccessMode.READ)
            c1 = mxn.connect_with_spec(inter, "source", "temp", spec_t)
            c2 = mxn.connect_with_spec(inter, "source", "pres", spec_p)
            for _ in range(2):
                # interleave the two channels' cycles
                c1.data_ready()
                c2.data_ready()
            return True

        def right(comm):
            inter = ns.connect("multi", comm)
            mxn = MxNComponent(comm)
            da_t = DistributedArray.allocate(dst_t, comm.rank)
            da_p = DistributedArray.allocate(dst_t, comm.rank)
            mxn.register("temp", da_t, AccessMode.WRITE)
            mxn.register("pres", da_p, AccessMode.WRITE)
            c1 = mxn.connect_with_spec(inter, "destination", "temp", spec_t)
            c2 = mxn.connect_with_spec(inter, "destination", "pres", spec_p)
            for _ in range(2):
                c1.data_ready()
                c2.data_ready()
            return da_t, da_p

        out = run_coupled([("left", 2, left, ()), ("right", 2, right, ())])
        np.testing.assert_array_equal(
            DistributedArray.assemble([r[0] for r in out["right"]]), g_t)
        np.testing.assert_array_equal(
            DistributedArray.assemble([r[1] for r in out["right"]]), g_p)

    def test_icomm_two_fields_different_rules(self):
        """One exporter/importer pair, two fields, two matching rules."""
        shape = (6,)
        src = DistArrayDescriptor(block_template(shape, (2,)))
        dst = DistArrayDescriptor(block_template(shape, (2,)))
        fields = {"fast": (src, dst), "slow": (src, dst)}
        spec = CoordinationSpec([
            MatchRule("fast", Matching.EXACT),
            MatchRule("slow", Matching.REGULAR, interval=3),
        ])
        ns = NameService()

        def producer(comm):
            inter = ns.accept("if", comm)
            exp = Exporter(comm, inter, spec, fields, total_imports=2)
            for ts in range(7):
                snap = DistributedArray.from_function(
                    src, comm.rank, lambda i, ts=ts: float(ts) + 0 * i)
                exp.export("fast", ts, snap)
                exp.export("slow", ts, snap)
            exp.finalize()
            return exp.transfers

        def consumer(comm):
            inter = ns.connect("if", comm)
            imp = Importer(comm, inter, spec, fields)
            da1 = DistributedArray.allocate(dst, comm.rank)
            m1 = imp.import_("fast", 5, da1)
            da2 = DistributedArray.allocate(dst, comm.rank)
            m2 = imp.import_("slow", 5, da2)
            return (m1, float(da1.get((0,)) if comm.rank == 0 else -1),
                    m2, float(da2.get((0,)) if comm.rank == 0 else -1))

        out = run_coupled([("producer", 2, producer, ()),
                           ("consumer", 2, consumer, ())])
        m1, v1, m2, v2 = out["consumer"][0]
        assert (m1, v1) == (5, 5.0)     # EXACT hit
        assert (m2, v2) == (3, 3.0)     # REGULAR/3 snapped down


class TestFailureInjection:
    def test_crash_mid_transfer_unblocks_peer(self):
        """A producer that dies mid-protocol must not hang the consumer:
        the watchdog aborts the coupled run with diagnostics."""
        shape = (8,)
        src = DistArrayDescriptor(block_template(shape, (2,)))
        dst = DistArrayDescriptor(block_template(shape, (2,)))
        ns = NameService()

        def producer(comm):
            inter = ns.accept("crash", comm)
            if comm.rank == 1:
                raise RuntimeError("simulated node failure")
            # rank 0 sends its part; rank 1 never does
            from repro.schedule import build_region_schedule, execute_inter
            sched = build_region_schedule(src, dst)
            da = DistributedArray.allocate(src, comm.rank)
            execute_inter(sched, inter, "src", da)
            return True

        def consumer(comm):
            from repro.schedule import build_region_schedule, execute_inter
            inter = ns.connect("crash", comm)
            sched = build_region_schedule(src, dst)
            da = DistributedArray.allocate(dst, comm.rank)
            execute_inter(sched, inter, "dst", da)  # rank 1's data never comes
            return True

        with pytest.raises(SpmdError) as exc_info:
            run_coupled([("producer", 2, producer, ()),
                         ("consumer", 2, consumer, ())],
                        deadlock_timeout=1.0)
        failures = exc_info.value.failures
        kinds = {type(e) for e in failures.values()}
        assert RuntimeError in kinds          # the injected fault
        assert DeadlockError in kinds         # the stranded peers

    def test_mismatched_connection_counts_detected(self):
        """Consumer expects two transfers, producer sends one: the
        second receive can never complete and is diagnosed."""
        shape = (4,)
        desc = DistArrayDescriptor(block_template(shape, (1,)))
        ns = NameService()

        def producer(comm):
            from repro.schedule import build_region_schedule, execute_inter
            inter = ns.accept("mm", comm)
            sched = build_region_schedule(desc, desc)
            da = DistributedArray.allocate(desc, comm.rank)
            execute_inter(sched, inter, "src", da)   # only one transfer
            return True

        def consumer(comm):
            from repro.schedule import build_region_schedule, execute_inter
            inter = ns.connect("mm", comm)
            sched = build_region_schedule(desc, desc)
            da = DistributedArray.allocate(desc, comm.rank)
            execute_inter(sched, inter, "dst", da)
            execute_inter(sched, inter, "dst", da)   # never satisfied
            return True

        with pytest.raises(SpmdError):
            run_coupled([("producer", 1, producer, ()),
                         ("consumer", 1, consumer, ())],
                        deadlock_timeout=1.0)

    def test_watchdog_reports_blocked_state(self):
        """DeadlockError carries a usable dump of who waited for what."""
        ns = NameService()

        def a(comm):
            inter = ns.accept("dump", comm)
            inter.recv(source=0, tag=777)

        def b(comm):
            ns.connect("dump", comm)

        with pytest.raises(SpmdError) as exc_info:
            run_coupled([("a", 1, a, ()), ("b", 1, b, ())],
                        deadlock_timeout=0.5)
        err = next(e for e in exc_info.value.failures.values()
                   if isinstance(e, DeadlockError))
        assert "tag=777" in str(err.blocked) or "tag=777" in str(err)
