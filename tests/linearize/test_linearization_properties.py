"""Property-based tests: linearization partitions and roundtrips."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.dad import (
    Block,
    BlockCyclic,
    CartesianTemplate,
    Collapsed,
    Cyclic,
    DistArrayDescriptor,
    DistributedArray,
)
from repro.linearize import DenseLinearization
from repro.schedule import build_linear_schedule


@st.composite
def dense_descriptors(draw):
    ndim = draw(st.integers(1, 3))
    axes = []
    for _ in range(ndim):
        extent = draw(st.integers(1, 10))
        kind = draw(st.sampled_from(["collapsed", "block", "cyclic",
                                     "block_cyclic"]))
        if kind == "collapsed":
            axes.append(Collapsed(extent))
        else:
            nprocs = draw(st.integers(1, min(3, extent)))
            if kind == "block":
                axes.append(Block(extent, nprocs))
            elif kind == "cyclic":
                axes.append(Cyclic(extent, nprocs))
            else:
                axes.append(BlockCyclic(extent, nprocs,
                                        draw(st.integers(1, extent))))
    return DistArrayDescriptor(CartesianTemplate(axes))


@settings(max_examples=40, deadline=None)
@given(dense_descriptors())
def test_runs_partition_linear_space(desc):
    DenseLinearization(desc).validate_partition()


@settings(max_examples=40, deadline=None)
@given(dense_descriptors(), st.integers(0, 2 ** 31 - 1))
def test_extract_matches_global_flat_order(desc, seed):
    """Extracting every owned run and placing it at its linear offset
    reconstructs the row-major flattening of the global array."""
    lin = DenseLinearization(desc)
    g = np.asarray(
        np.random.default_rng(seed).integers(0, 100, size=desc.shape),
        dtype=np.float64)
    flat = np.full(lin.total, np.nan)
    for rank in range(desc.nranks):
        da = DistributedArray.from_global(desc, rank, g)
        for run in lin.runs(rank):
            flat[run.lo:run.hi] = lin.extract(rank, run, da)
    np.testing.assert_array_equal(flat, g.reshape(-1))


@settings(max_examples=40, deadline=None)
@given(dense_descriptors())
def test_inject_roundtrips_extract(desc):
    lin = DenseLinearization(desc)
    g = np.arange(float(np.prod(desc.shape))).reshape(desc.shape)
    for rank in range(desc.nranks):
        src = DistributedArray.from_global(desc, rank, g)
        dst = DistributedArray.allocate(desc, rank)
        for run in lin.runs(rank):
            lin.inject(rank, run, lin.extract(rank, run, src), dst)
        for (r1, a1), (r2, a2) in zip(src.iter_patches(),
                                      dst.iter_patches()):
            assert r1 == r2
            np.testing.assert_array_equal(a1, a2)


@settings(max_examples=30, deadline=None)
@given(st.data())
def test_linear_schedule_between_random_descriptors(data):
    """Any two linearizations of the same shape produce a complete,
    non-overlapping linear schedule."""
    src_desc = data.draw(dense_descriptors())
    # destination over the same shape, different decomposition
    dst_axes = []
    for extent in src_desc.shape:
        nprocs = data.draw(st.integers(1, min(3, extent)))
        dst_axes.append(Block(extent, nprocs))
    dst_desc = DistArrayDescriptor(CartesianTemplate(dst_axes))
    src_lin = DenseLinearization(src_desc)
    dst_lin = DenseLinearization(dst_desc)
    sched = build_linear_schedule(src_lin, dst_lin)
    sched.validate(src_lin, dst_lin)
    assert sched.element_count == src_lin.total
