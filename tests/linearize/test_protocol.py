"""Receiver-driven transfer protocol tests (Indiana MPI-IO M×N device)."""

import numpy as np

from repro.dad import DistArrayDescriptor, DistributedArray
from repro.dad.template import block_template
from repro.linearize import DenseLinearization, receiver_driven_transfer
from repro.simmpi import NameService, run_coupled


def _transfer(src_grid, dst_grid, shape, g):
    src_desc = DistArrayDescriptor(block_template(shape, src_grid), g.dtype)
    dst_desc = DistArrayDescriptor(block_template(shape, dst_grid), g.dtype)
    src_lin = DenseLinearization(src_desc)
    dst_lin = DenseLinearization(dst_desc)
    ns = NameService()

    def sender(comm):
        inter = ns.accept("rdt", comm)
        da = DistributedArray.from_global(src_desc, comm.rank, g)
        return receiver_driven_transfer(inter, "send", src_lin, da)

    def receiver(comm):
        inter = ns.connect("rdt", comm)
        da = DistributedArray.allocate(dst_desc, comm.rank)
        moved = receiver_driven_transfer(inter, "recv", dst_lin, da)
        comm.barrier()  # all receivers done before sampling job counters
        return da, moved, comm.counters.snapshot()

    out = run_coupled([
        ("send", src_desc.nranks, sender, ()),
        ("recv", dst_desc.nranks, receiver, ()),
    ])
    parts = [r[0] for r in out["recv"]]
    return (DistributedArray.assemble(parts), out["send"],
            [r[1] for r in out["recv"]], out["recv"][0][2])


def test_no_schedule_required_correct_result():
    g = np.arange(48.0).reshape(8, 6)
    out, sent, received, _ = _transfer((2, 1), (1, 3), (8, 6), g)
    np.testing.assert_array_equal(out, g)
    assert sum(sent) == 48
    assert sum(received) == 48


def test_m_not_equal_n():
    g = np.arange(27.0).reshape(3, 9)
    out, _, _, _ = _transfer((3, 1), (1, 2), (3, 9), g)
    np.testing.assert_array_equal(out, g)


def test_repeated_transfers_stay_in_step():
    """Regression: with multiple receivers, a fast receiver's next-round
    request must not be answered out of the current round's data (the
    sender serves one request per receiver per round)."""
    steps = 6
    src_desc = DistArrayDescriptor(
        block_template((8, 6), (2, 1)), np.float64)
    dst_desc = DistArrayDescriptor(
        block_template((8, 6), (1, 2)), np.float64)
    src_lin = DenseLinearization(src_desc)
    dst_lin = DenseLinearization(dst_desc)
    ns = NameService()

    def sender(comm):
        inter = ns.accept("seq", comm)
        for step in range(steps):
            da = DistributedArray.from_function(
                src_desc, comm.rank, lambda i, j, s=step: float(s) + 0 * i)
            receiver_driven_transfer(inter, "send", src_lin, da)
        return True

    def receiver(comm):
        inter = ns.connect("seq", comm)
        seen = []
        for _ in range(steps):
            da = DistributedArray.allocate(dst_desc, comm.rank)
            receiver_driven_transfer(inter, "recv", dst_lin, da)
            vals = np.concatenate(
                [a.reshape(-1) for _, a in da.iter_patches()])
            assert len(set(vals.tolist())) == 1  # one coherent step
            seen.append(float(vals[0]))
        return seen

    out = run_coupled([("send", 2, sender, ()), ("recv", 2, receiver, ())])
    for seen in out["recv"]:
        assert seen == [float(s) for s in range(steps)]


def test_request_overhead_messages():
    """Every receiver asks every sender: R*S request + R*S reply envelopes
    on top of the data (the 'small communication overhead')."""
    g = np.arange(16.0).reshape(4, 4)
    _, _, _, recv_counters = _transfer((2, 1), (2, 1), (4, 4), g)
    # 2 receivers x 2 senders requests
    assert recv_counters["inter_msgs"] >= 4
