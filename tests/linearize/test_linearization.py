"""Dense linearization tests: runs, extraction, injection."""

import numpy as np
import pytest

from repro.dad import (
    BlockCyclic,
    CartesianTemplate,
    Cyclic,
    DistArrayDescriptor,
    DistributedArray,
)
from repro.dad.template import block_template
from repro.errors import DistributionError
from repro.linearize import DenseLinearization, Run
from repro.linearize.linearization import coalesce_runs


class TestRun:
    def test_intersect(self):
        assert Run(0, 5).intersect(Run(3, 8)) == Run(3, 5)
        assert Run(0, 3).intersect(Run(3, 8)) is None

    def test_invalid(self):
        with pytest.raises(DistributionError):
            Run(5, 2)

    def test_coalesce(self):
        runs = [Run(5, 7), Run(0, 2), Run(2, 5), Run(9, 10)]
        assert coalesce_runs(runs) == [Run(0, 7), Run(9, 10)]

    def test_coalesce_empty(self):
        assert coalesce_runs([]) == []


class TestDenseLinearizationRuns:
    def test_1d_block(self):
        desc = DistArrayDescriptor(block_template((10,), (2,)))
        lin = DenseLinearization(desc)
        assert lin.total == 10
        assert lin.runs(0) == [Run(0, 5)]
        assert lin.runs(1) == [Run(5, 10)]

    def test_2d_row_block_single_run(self):
        """Row-wise blocks of a C-ordered array are contiguous."""
        desc = DistArrayDescriptor(block_template((4, 6), (2, 1)))
        lin = DenseLinearization(desc)
        assert lin.runs(0) == [Run(0, 12)]
        assert lin.runs(1) == [Run(12, 24)]

    def test_2d_col_block_run_per_row(self):
        """Column-wise blocks fragment into one run per row."""
        desc = DistArrayDescriptor(block_template((4, 6), (1, 2)))
        lin = DenseLinearization(desc)
        assert lin.runs(0) == [Run(0, 3), Run(6, 9), Run(12, 15), Run(18, 21)]
        assert len(lin.runs(1)) == 4

    def test_cyclic_fragments_fully(self):
        desc = DistArrayDescriptor(
            CartesianTemplate([Cyclic(8, 2)]))
        lin = DenseLinearization(desc)
        assert len(lin.runs(0)) == 4  # every other element

    def test_partition_property(self):
        for template in [
            block_template((6, 6), (2, 3)),
            CartesianTemplate([BlockCyclic(9, 2, 2), Cyclic(5, 3)]),
        ]:
            lin = DenseLinearization(DistArrayDescriptor(template))
            lin.validate_partition()

    def test_descriptor_entries_reflect_fragmentation(self):
        compact = DenseLinearization(
            DistArrayDescriptor(block_template((16, 16), (4, 1))))
        fragmented = DenseLinearization(
            DistArrayDescriptor(block_template((16, 16), (1, 4))))
        assert compact.descriptor_entries() < fragmented.descriptor_entries()


class TestExtractInject:
    def _make(self, template, rank, fill):
        desc = DistArrayDescriptor(template, np.float64)
        g = np.asarray(fill, dtype=np.float64)
        da = DistributedArray.from_global(desc, rank, g)
        return DenseLinearization(desc), da

    def test_extract_matches_global_flat(self):
        g = np.arange(24.0).reshape(4, 6)
        t = block_template((4, 6), (2, 2))
        for rank in range(4):
            lin, da = self._make(t, rank, g)
            for run in lin.runs(rank):
                np.testing.assert_array_equal(
                    lin.extract(rank, run, da),
                    g.reshape(-1)[run.lo:run.hi])

    def test_extract_sub_run(self):
        g = np.arange(24.0).reshape(4, 6)
        t = block_template((4, 6), (2, 1))
        lin, da = self._make(t, 0, g)
        # rank 0 owns linear [0, 12); ask for an interior slice
        np.testing.assert_array_equal(
            lin.extract(0, Run(3, 9), da), g.reshape(-1)[3:9])

    def test_inject_roundtrip(self):
        g = np.arange(36.0).reshape(6, 6)
        t = CartesianTemplate([BlockCyclic(6, 2, 2), BlockCyclic(6, 3, 1)])
        desc = DistArrayDescriptor(t, np.float64)
        lin = DenseLinearization(desc)
        for rank in range(t.nranks):
            da = DistributedArray.allocate(desc, rank)
            for run in lin.runs(rank):
                lin.inject(rank, run, g.reshape(-1)[run.lo:run.hi], da)
            src = DistributedArray.from_global(desc, rank, g)
            for (r1, a1), (r2, a2) in zip(da.iter_patches(),
                                          src.iter_patches()):
                assert r1 == r2
                np.testing.assert_array_equal(a1, a2)

    def test_extract_unowned_raises(self):
        g = np.zeros((4, 4))
        t = block_template((4, 4), (2, 1))
        lin, da = self._make(t, 0, g)
        from repro.errors import ScheduleError
        with pytest.raises(ScheduleError):
            lin.extract(0, Run(0, 16), da)  # rank 0 owns only [0, 8)
