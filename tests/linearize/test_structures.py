"""Graph/tree linearization tests."""

import networkx as nx
import numpy as np
import pytest

from repro.errors import DistributionError
from repro.linearize import GraphLinearization, Run, TreeLinearization


@pytest.fixture
def path_graph():
    return nx.path_graph(8)


class TestGraphLinearization:
    def test_bfs_order_positions(self, path_graph):
        owners = {n: n % 2 for n in path_graph}
        lin = GraphLinearization(path_graph, owners)
        assert lin.total == 8
        # path graph BFS from node 0 is 0..7 in order
        assert [lin.order[i] for i in range(8)] == list(range(8))

    def test_runs_compress_contiguous_ownership(self, path_graph):
        owners = {n: 0 if n < 4 else 1 for n in path_graph}
        lin = GraphLinearization(path_graph, owners)
        assert lin.runs(0) == [Run(0, 4)]
        assert lin.runs(1) == [Run(4, 8)]

    def test_runs_fragment_interleaved_ownership(self, path_graph):
        owners = {n: n % 2 for n in path_graph}
        lin = GraphLinearization(path_graph, owners)
        assert len(lin.runs(0)) == 4

    def test_extract_inject_roundtrip(self, path_graph):
        owners = {n: 0 if n < 5 else 1 for n in path_graph}
        lin = GraphLinearization(path_graph, owners)
        values = {n: float(n * 10) for n in path_graph}
        store0 = lin.make_storage(0, values)
        out = lin.extract(0, Run(2, 5), store0)
        np.testing.assert_array_equal(out, [20.0, 30.0, 40.0])
        lin.inject(0, Run(0, 2), np.array([5.0, 6.0]), store0)
        assert store0[0] == 5.0 and store0[1] == 6.0

    def test_extract_unowned_node_raises(self, path_graph):
        owners = {n: 0 if n < 5 else 1 for n in path_graph}
        lin = GraphLinearization(path_graph, owners)
        store1 = lin.make_storage(1)
        from repro.errors import ScheduleError
        with pytest.raises(ScheduleError):
            lin.extract(1, Run(0, 2), store1)

    def test_owner_map_must_cover_graph(self, path_graph):
        with pytest.raises(DistributionError):
            GraphLinearization(path_graph, {0: 0})

    def test_custom_order(self, path_graph):
        order = list(reversed(range(8)))
        owners = {n: 0 for n in path_graph}
        lin = GraphLinearization(path_graph, owners, order=order)
        assert lin.position[7] == 0

    def test_bad_order_rejected(self, path_graph):
        with pytest.raises(DistributionError):
            GraphLinearization(path_graph, {n: 0 for n in path_graph},
                               order=[0, 1])

    def test_partition_validates(self, path_graph):
        owners = {n: n % 3 for n in path_graph}
        GraphLinearization(path_graph, owners).validate_partition()


class TestTreeLinearization:
    def _tree(self):
        t = nx.Graph()
        t.add_edges_from([(0, 1), (0, 2), (1, 3), (1, 4), (2, 5)])
        return t

    def test_preorder_contiguous_subtrees(self):
        tree = self._tree()
        owners = {n: 0 for n in tree}
        lin = TreeLinearization(tree, 0, owners)
        run = lin.subtree_run(1)
        # subtree {1,3,4} occupies a contiguous interval
        assert run.length == 3
        nodes = {lin.order[p] for p in range(run.lo, run.hi)}
        assert nodes == {1, 3, 4}

    def test_subtree_ownership_gives_single_run(self):
        tree = self._tree()
        lin0 = TreeLinearization(tree, 0, {n: 0 for n in tree})
        sub = lin0.subtree_run(1)
        owners = {n: (1 if lin0.position[n] in range(sub.lo, sub.hi) else 0)
                  for n in tree}
        lin = TreeLinearization(tree, 0, owners)
        assert len(lin.runs(1)) == 1

    def test_non_tree_rejected(self):
        g = nx.cycle_graph(4)
        with pytest.raises(DistributionError):
            TreeLinearization(g, 0, {n: 0 for n in g})
