"""Smoke tests: every shipped example runs to completion and verifies
its own assertions."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).parent.parent / "examples").glob("*.py"))


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(script):
    proc = subprocess.run(
        [sys.executable, str(script)], capture_output=True, text=True,
        timeout=180)
    assert proc.returncode == 0, (
        f"{script.name} failed:\n{proc.stdout}\n{proc.stderr}")
    assert proc.stdout.strip(), f"{script.name} produced no output"
