"""Publish/subscribe (XChangemxn model) tests: dynamic membership and
in-flight transformation."""

import numpy as np
import pytest

from repro.dad import DistArrayDescriptor, DistributedArray
from repro.dad.template import block_template
from repro.pipeline import UnitConversion
from repro.pubsub import Publisher, Subscriber, SubscriptionBoard
from repro.simmpi import NameService, run_coupled

SHAPE = (8, 6)


def descs(m, n):
    return (DistArrayDescriptor(block_template(SHAPE, (m, 1))),
            DistArrayDescriptor(block_template(SHAPE, (1, n))))


def stamped(desc, rank, k):
    return DistributedArray.from_function(
        desc, rank, lambda i, j, k=k: 100.0 * k + 10 * i + j)


def test_single_subscriber_stream():
    src_desc, dst_desc = descs(2, 2)
    ns, board = NameService(), SubscriptionBoard()
    steps = 3

    def publisher(comm):
        pub = Publisher(comm, ns, board, "temp", src_desc)
        # wait for the subscriber to register before the first publish
        import time
        while pub.comm.rank == 0 and not board.active("temp"):
            time.sleep(0.01)
        comm.barrier()
        served = [pub.publish(stamped(src_desc, comm.rank, k))
                  for k in range(steps)]
        pub.close()
        return served

    def subscriber(comm):
        sub = Subscriber(comm, ns, board, "temp", dst_desc)
        frames = []
        while True:
            da = sub.receive()
            if da is None:
                break
            frames.append(da)
        return frames

    out = run_coupled([("pub", 2, publisher, ()), ("sub", 2, subscriber, ())])
    assert out["pub"][0] == [1, 1, 1]
    frames0 = out["sub"][0]
    assert len(frames0) == steps
    for k in range(steps):
        parts = [out["sub"][r][k] for r in range(2)]
        expected = np.fromfunction(
            lambda i, j, k=k: 100.0 * k + 10 * i + j, SHAPE)
        np.testing.assert_array_equal(
            DistributedArray.assemble(parts), expected)


def test_dynamic_arrival_mid_stream():
    """A subscriber that joins between publishes starts receiving at the
    next publish — 'dynamic arrivals ... of components'."""
    src_desc, dst_desc = descs(1, 1)
    ns, board = NameService(), SubscriptionBoard()

    def publisher(comm):
        pub = Publisher(comm, ns, board, "t", src_desc)
        import time
        counts = []
        for k in range(6):
            # give the late subscriber a moment to register before k=3
            time.sleep(0.05)
            counts.append(pub.publish(stamped(src_desc, comm.rank, k)))
        pub.close()
        return counts

    def late_subscriber(comm):
        import time
        time.sleep(0.12)  # join mid-stream
        sub = Subscriber(comm, ns, board, "t", dst_desc)
        first = sub.receive()
        rest = []
        while True:
            da = sub.receive()
            if da is None:
                break
            rest.append(da)
        # the first frame we see is whatever publish came after we joined
        first_stamp = float(first.get((0, 0))) // 100
        return first_stamp, 1 + len(rest)

    out = run_coupled([("pub", 1, publisher, ()),
                       ("sub", 1, late_subscriber, ())])
    counts = out["pub"][0]
    first_stamp, received = out["sub"][0]
    assert counts[0] == 0            # nobody listening at the start
    assert counts[-1] == 1           # somebody listening at the end
    assert received == sum(counts)   # got every publish after joining
    assert first_stamp == counts.index(1)


def test_graceful_departure():
    """'dynamic ... departures of components': a leaver drains cleanly
    and the publisher keeps serving the remaining subscriber."""
    src_desc, dst_desc = descs(1, 1)
    ns, board = NameService(), SubscriptionBoard()

    def publisher(comm):
        pub = Publisher(comm, ns, board, "t", src_desc)
        import time
        while not len(board.active("t")) == 2:
            time.sleep(0.01)
        counts = []
        for k in range(4):
            counts.append(pub.publish(stamped(src_desc, comm.rank, k)))
            time.sleep(0.05)
        pub.close()
        return counts

    def leaver(comm):
        sub = Subscriber(comm, ns, board, "t", dst_desc)
        got = sub.receive()
        assert got is not None
        sub.leave()   # drains whatever remains, ends on bye
        return sub.received

    def stayer(comm):
        sub = Subscriber(comm, ns, board, "t", dst_desc)
        frames = 0
        while sub.receive() is not None:
            frames += 1
        return frames

    out = run_coupled([
        ("pub", 1, publisher, ()),
        ("leaver", 1, leaver, ()),
        ("stayer", 1, stayer, ()),
    ])
    assert out["stayer"][0] == 4          # stayer saw every publish
    assert out["leaver"][0] >= 1          # leaver saw at least its first
    assert out["pub"][0][0] == 2          # both were there at the start


def test_in_flight_transformation_per_subscriber():
    """Two subscribers to the same topic, one plain, one with a unit
    conversion applied in flight."""
    src_desc, dst_desc = descs(2, 1)
    ns, board = NameService(), SubscriptionBoard()

    def publisher(comm):
        pub = Publisher(comm, ns, board, "temp", src_desc)
        import time
        while comm.rank == 0 and len(board.active("temp")) < 2:
            time.sleep(0.01)
        comm.barrier()
        da = DistributedArray.from_function(
            src_desc, comm.rank, lambda i, j: 20.0 + 0 * i)
        pub.publish(da)
        # in-flight transform must not mutate the publisher's data
        assert all(np.all(a == 20.0) for _, a in da.iter_patches())
        pub.close()
        return True

    def celsius_sub(comm):
        sub = Subscriber(comm, ns, board, "temp", dst_desc)
        da = sub.receive()
        while sub.receive() is not None:
            pass
        return float(da.get((0, 0)))

    def kelvin_sub(comm):
        sub = Subscriber(comm, ns, board, "temp", dst_desc,
                         transform=UnitConversion("celsius", "kelvin"))
        da = sub.receive()
        while sub.receive() is not None:
            pass
        return float(da.get((0, 0)))

    out = run_coupled([
        ("pub", 2, publisher, ()),
        ("c", 1, celsius_sub, ()),
        ("k", 1, kelvin_sub, ()),
    ])
    assert out["c"][0] == pytest.approx(20.0)
    assert out["k"][0] == pytest.approx(293.15)


def test_subscribers_with_different_layouts():
    src_desc, _ = descs(2, 1)
    layout_a = DistArrayDescriptor(block_template(SHAPE, (1, 3)))
    layout_b = DistArrayDescriptor(block_template(SHAPE, (2, 2)))
    g = np.arange(48.0).reshape(SHAPE)
    ns, board = NameService(), SubscriptionBoard()

    def publisher(comm):
        pub = Publisher(comm, ns, board, "f", src_desc)
        import time
        while comm.rank == 0 and len(board.active("f")) < 2:
            time.sleep(0.01)
        comm.barrier()
        pub.publish(DistributedArray.from_global(src_desc, comm.rank, g))
        pub.close()
        return True

    def make_sub(layout):
        def body(comm):
            sub = Subscriber(comm, ns, board, "f", layout)
            da = sub.receive()
            while sub.receive() is not None:
                pass
            return da
        return body

    out = run_coupled([
        ("pub", 2, publisher, ()),
        ("a", 3, make_sub(layout_a), ()),
        ("b", 4, make_sub(layout_b), ()),
    ])
    np.testing.assert_array_equal(DistributedArray.assemble(out["a"]), g)
    np.testing.assert_array_equal(DistributedArray.assemble(out["b"]), g)
