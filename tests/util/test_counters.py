"""Instrumentation counter tests."""

import threading

from repro.util.counters import Counters


def test_basic_accounting():
    c = Counters()
    c.add("msgs")
    c.add("msgs", 4)
    c.add("bytes", 100)
    assert c.get("msgs") == 5
    assert c.get("bytes") == 100
    assert c.get("missing") == 0


def test_snapshot_is_copy():
    c = Counters()
    c.add("x")
    snap = c.snapshot()
    c.add("x")
    assert snap == {"x": 1}
    assert c.get("x") == 2


def test_reset():
    c = Counters()
    c.add("x", 7)
    c.reset()
    assert c.snapshot() == {}


def test_thread_safety():
    c = Counters()
    n, per = 8, 1000

    def worker():
        for _ in range(per):
            c.add("hits")

    threads = [threading.Thread(target=worker) for _ in range(n)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert c.get("hits") == n * per
