"""Instrumentation counter tests."""

import threading

from repro.util.counters import Counters


def test_basic_accounting():
    c = Counters()
    c.add("msgs")
    c.add("msgs", 4)
    c.add("bytes", 100)
    assert c.get("msgs") == 5
    assert c.get("bytes") == 100
    assert c.get("missing") == 0


def test_snapshot_is_copy():
    c = Counters()
    c.add("x")
    snap = c.snapshot()
    c.add("x")
    assert snap == {"x": 1}
    assert c.get("x") == 2


def test_reset():
    c = Counters()
    c.add("x", 7)
    c.reset()
    assert c.snapshot() == {}


def test_thread_safety():
    c = Counters()
    n, per = 8, 1000

    def worker():
        for _ in range(per):
            c.add("hits")

    threads = [threading.Thread(target=worker) for _ in range(n)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert c.get("hits") == n * per


def test_gauge_add_tracks_level_and_peak():
    c = Counters()
    c.gauge_add("resident_bytes", 100)
    c.gauge_add("resident_bytes", 50)
    assert c.get("resident_bytes") == 150
    assert c.get("peak_resident_bytes") == 150
    c.gauge_add("resident_bytes", -150)
    assert c.get("resident_bytes") == 0
    # the high-water mark survives the release
    assert c.get("peak_resident_bytes") == 150
    c.gauge_add("resident_bytes", 20)
    assert c.get("peak_resident_bytes") == 150  # lower levels never lower it


def test_gauge_reset_zeroes_level_and_peak():
    c = Counters()
    c.gauge_add("pool_bytes", 64)
    c.reset()
    assert c.get("pool_bytes") == 0
    assert c.get("peak_pool_bytes") == 0


def test_gauge_thread_safety_peak_never_stale():
    c = Counters()
    n, per, amount = 8, 500, 16

    def worker():
        for _ in range(per):
            c.gauge_add("g", amount)
            c.gauge_add("g", -amount)

    threads = [threading.Thread(target=worker) for _ in range(n)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert c.get("g") == 0
    peak = c.get("peak_g")
    assert amount <= peak <= n * amount


def test_buffer_pool_moves_memory_gauges():
    import numpy as np

    from repro.schedule.bufpool import BufferPool
    from repro.util.counters import TRANSPORT_STATS

    TRANSPORT_STATS.reset()
    pool = BufferPool()
    buf, release = pool.loan("k", 32, np.dtype(np.float64))
    nbytes = buf.nbytes
    assert TRANSPORT_STATS.get("pool_bytes") == nbytes
    assert TRANSPORT_STATS.get("resident_bytes") == nbytes
    release()
    assert TRANSPORT_STATS.get("pool_bytes") == 0
    assert TRANSPORT_STATS.get("resident_bytes") == 0
    # peaks persist as the section's high-water mark
    assert TRANSPORT_STATS.get("peak_pool_bytes") == nbytes
    assert TRANSPORT_STATS.get("peak_resident_bytes") == nbytes
    TRANSPORT_STATS.reset()
