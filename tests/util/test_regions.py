"""Unit tests for N-dimensional region algebra."""

import numpy as np
import pytest

from repro.errors import DistributionError
from repro.util.regions import Region, RegionList, tile_check


class TestRegionBasics:
    def test_shape_and_volume(self):
        r = Region((1, 2), (4, 7))
        assert r.shape == (3, 5)
        assert r.volume == 15
        assert r.ndim == 2
        assert not r.empty

    def test_empty_region(self):
        r = Region((3, 0), (3, 5))
        assert r.empty
        assert r.volume == 0

    def test_from_shape(self):
        r = Region.from_shape((4, 5, 6))
        assert r.lo == (0, 0, 0)
        assert r.hi == (4, 5, 6)

    def test_from_slices(self):
        r = Region.from_slices((slice(1, 3), slice(None)), (5, 7))
        assert r == Region((1, 0), (3, 7))

    def test_from_slices_rejects_step(self):
        with pytest.raises(DistributionError):
            Region.from_slices((slice(0, 4, 2),), (5,))

    def test_invalid_bounds(self):
        with pytest.raises(DistributionError):
            Region((3,), (1,))

    def test_rank_mismatch(self):
        with pytest.raises(DistributionError):
            Region((0, 0), (1,))

    def test_hashable(self):
        assert len({Region((0,), (3,)), Region((0,), (3,))}) == 1


class TestRegionAlgebra:
    def test_intersection(self):
        a = Region((0, 0), (4, 4))
        b = Region((2, 1), (6, 3))
        assert a.intersect(b) == Region((2, 1), (4, 3))

    def test_disjoint_intersection(self):
        a = Region((0,), (4,))
        b = Region((4,), (8,))
        assert a.intersect(b) is None

    def test_intersection_commutes(self):
        a = Region((0, 3), (5, 9))
        b = Region((2, 0), (7, 5))
        assert a.intersect(b) == b.intersect(a)

    def test_contains(self):
        outer = Region((0, 0), (10, 10))
        inner = Region((2, 3), (5, 7))
        assert outer.contains(inner)
        assert not inner.contains(outer)

    def test_contains_point(self):
        r = Region((1, 1), (3, 3))
        assert r.contains_point((1, 2))
        assert not r.contains_point((3, 2))  # hi is exclusive

    def test_shift_and_relative(self):
        r = Region((5, 5), (8, 9))
        origin = Region((5, 5), (10, 10))
        local = r.relative_to(origin)
        assert local == Region((0, 0), (3, 4))
        assert local.shift((5, 5)) == r

    def test_relative_to_requires_containment(self):
        with pytest.raises(DistributionError):
            Region((0,), (5,)).relative_to(Region((1,), (4,)))

    def test_subtract_no_overlap(self):
        a = Region((0,), (4,))
        assert a.subtract(Region((5,), (8,))) == [a]

    def test_subtract_full_cover(self):
        a = Region((2,), (4,))
        assert a.subtract(Region((0,), (8,))) == []

    def test_subtract_partial_2d(self):
        a = Region((0, 0), (4, 4))
        hole = Region((1, 1), (3, 3))
        pieces = a.subtract(hole)
        assert sum(p.volume for p in pieces) == a.volume - hole.volume
        # pieces must be disjoint from the hole and from each other
        for p in pieces:
            assert p.intersect(hole) is None
        RegionList(pieces)  # validates disjointness

    def test_corners(self):
        r = Region((0, 0), (2, 3))
        assert set(r.corners()) == {(0, 0), (0, 2), (1, 0), (1, 2)}


class TestRegionNumpyInterop:
    def test_view_is_view(self):
        arr = np.zeros((6, 6))
        r = Region((1, 2), (3, 5))
        v = r.view(arr)
        v[:] = 7
        assert arr[1:3, 2:5].sum() == 7 * r.volume
        assert arr.sum() == 7 * r.volume

    def test_view_with_origin(self):
        # array holds the data of region [10:16, 10:16)
        arr = np.arange(36.0).reshape(6, 6)
        origin = Region((10, 10), (16, 16))
        r = Region((11, 12), (13, 15))
        v = r.view(arr, origin)
        assert v.shape == (2, 3)
        np.testing.assert_array_equal(v, arr[1:3, 2:5])

    def test_to_slices(self):
        r = Region((1, 0), (4, 2))
        assert r.to_slices() == (slice(1, 4), slice(0, 2))


class TestRegionList:
    def test_rejects_overlap(self):
        with pytest.raises(DistributionError):
            RegionList([Region((0,), (5,)), Region((3,), (8,))])

    def test_drops_empty(self):
        rl = RegionList([Region((0,), (0,)), Region((0,), (2,))])
        assert len(rl) == 1

    def test_volume(self):
        rl = RegionList([Region((0,), (2,)), Region((5,), (9,))])
        assert rl.volume == 6

    def test_covers_exact(self):
        rl = RegionList([Region((0, 0), (2, 4)), Region((2, 0), (4, 4))])
        assert rl.covers(Region((0, 0), (4, 4)))

    def test_covers_with_gap(self):
        rl = RegionList([Region((0, 0), (2, 4)), Region((3, 0), (4, 4))])
        assert not rl.covers(Region((0, 0), (4, 4)))

    def test_intersect_region(self):
        rl = RegionList([Region((0,), (4,)), Region((6,), (10,))])
        out = rl.intersect_region(Region((2,), (8,)))
        assert out.volume == 4

    def test_intersect_lists(self):
        a = RegionList([Region((0, 0), (4, 4))])
        b = RegionList([Region((2, 2), (6, 6))])
        assert a.intersect(b).volume == 4

    def test_contains_point(self):
        rl = RegionList([Region((0,), (2,)), Region((4,), (6,))])
        assert rl.contains_point((5,))
        assert not rl.contains_point((3,))


class TestTileCheck:
    def test_valid_tiling(self):
        t = Region((0, 0), (4, 4))
        tile_check([Region((0, 0), (4, 2)), Region((0, 2), (4, 4))], t)

    def test_gap_detected(self):
        t = Region((0, 0), (4, 4))
        with pytest.raises(DistributionError):
            tile_check([Region((0, 0), (4, 2))], t)

    def test_overlap_detected(self):
        t = Region((0,), (4,))
        with pytest.raises(DistributionError):
            tile_check([Region((0,), (3,)), Region((2,), (4,))], t)
