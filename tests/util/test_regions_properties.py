"""Property-based tests for the region algebra (hypothesis)."""

from hypothesis import given, strategies as st

from repro.util.regions import Region, RegionList


@st.composite
def regions(draw, ndim=None, max_coord=20):
    nd = ndim if ndim is not None else draw(st.integers(1, 3))
    lo, hi = [], []
    for _ in range(nd):
        a = draw(st.integers(0, max_coord - 1))
        b = draw(st.integers(a + 1, max_coord))
        lo.append(a)
        hi.append(b)
    return Region(tuple(lo), tuple(hi))


@st.composite
def region_pairs(draw, max_coord=20):
    nd = draw(st.integers(1, 3))
    return (draw(regions(ndim=nd, max_coord=max_coord)),
            draw(regions(ndim=nd, max_coord=max_coord)))


@given(region_pairs())
def test_intersection_commutative(pair):
    a, b = pair
    assert a.intersect(b) == b.intersect(a)


@given(region_pairs())
def test_intersection_contained_in_both(pair):
    a, b = pair
    inter = a.intersect(b)
    if inter is not None:
        assert a.contains(inter)
        assert b.contains(inter)
        assert inter.volume > 0


@given(regions())
def test_self_intersection_identity(r):
    assert r.intersect(r) == r


@given(region_pairs())
def test_subtract_partitions_volume(pair):
    a, b = pair
    pieces = a.subtract(b)
    inter = a.intersect(b)
    inter_vol = inter.volume if inter is not None else 0
    assert sum(p.volume for p in pieces) == a.volume - inter_vol
    # Pieces are disjoint from b and from each other, and inside a.
    for p in pieces:
        assert p.intersect(b) is None
        assert a.contains(p)
    RegionList(pieces)


@given(region_pairs())
def test_subtract_then_union_covers(pair):
    a, b = pair
    pieces = a.subtract(b)
    inter = a.intersect(b)
    parts = pieces + ([inter] if inter is not None else [])
    assert RegionList(parts).covers(a)


@given(regions(), st.integers(-5, 5), st.integers(-5, 5), st.integers(-5, 5))
def test_shift_roundtrip(r, dx, dy, dz):
    offset = (dx, dy, dz)[: r.ndim]
    back = tuple(-o for o in offset)
    assert r.shift(offset).shift(back) == r


@given(regions())
def test_volume_matches_shape(r):
    v = 1
    for s in r.shape:
        v *= s
    assert r.volume == v
