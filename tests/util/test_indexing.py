"""Unit + property tests for flat-index helpers."""

import numpy as np
from hypothesis import given, strategies as st

from repro.util.indexing import (
    region_flat_indices,
    row_major_coords,
    row_major_offset,
    row_major_strides,
    shape_volume,
)
from repro.util.regions import Region


def test_shape_volume():
    assert shape_volume((3, 4, 5)) == 60
    assert shape_volume(()) == 1


def test_row_major_strides():
    assert row_major_strides((3, 4, 5)) == (20, 5, 1)


def test_offset_matches_numpy():
    shape = (3, 4, 5)
    arr = np.arange(shape_volume(shape)).reshape(shape)
    for coords in [(0, 0, 0), (1, 2, 3), (2, 3, 4)]:
        assert row_major_offset(coords, shape) == arr[coords]


@given(st.lists(st.integers(1, 6), min_size=1, max_size=4))
def test_offset_coords_roundtrip(shape):
    shape = tuple(shape)
    n = shape_volume(shape)
    for off in range(0, n, max(1, n // 7)):
        coords = row_major_coords(off, shape)
        assert row_major_offset(coords, shape) == off
        assert all(0 <= c < s for c, s in zip(coords, shape))


def test_region_flat_indices_matches_numpy():
    shape = (4, 5, 6)
    arr = np.arange(shape_volume(shape)).reshape(shape)
    region = Region((1, 0, 2), (3, 4, 5))
    idx = region_flat_indices(region, shape)
    np.testing.assert_array_equal(
        arr.reshape(-1)[idx], arr[1:3, 0:4, 2:5].reshape(-1))


def test_region_flat_indices_full_array():
    shape = (3, 3)
    region = Region.from_shape(shape)
    np.testing.assert_array_equal(
        region_flat_indices(region, shape), np.arange(9))
