"""Repo-wide fixtures.

One autouse fixture resets every process-wide counter family around
each test, so absolute-value assertions cannot bleed between tests
under xdist or reordering — shared here instead of being duplicated
per test package.
"""

import pytest

from repro.schedule.indexplan import PLAN_STATS
from repro.util.counters import RACE_STATS, TRANSPORT_STATS
from repro.verify.hook import VERIFY_STATS


def _reset_all():
    TRANSPORT_STATS.reset()
    PLAN_STATS.reset()
    VERIFY_STATS.reset()
    RACE_STATS.reset()


@pytest.fixture(autouse=True)
def transport_stats():
    """Reset the transport, plan-compilation, and verification counters
    around every test.  Yields the transport counters for convenience."""
    _reset_all()
    yield TRANSPORT_STATS
    _reset_all()
