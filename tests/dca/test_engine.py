"""DCA invocation engine tests: participation, parallel data, stubs."""

import numpy as np
import pytest

from repro.cca.sidl import arg, method, port
from repro.dca import (
    DCABuffer,
    DCACallerPort,
    DCAParallelArg,
    DCAServerPort,
    DeliveryPolicy,
    generate_stubs,
)
from repro.errors import PRMIError
from repro.simmpi import NameService, run_coupled

SUM_PORT = port(
    "SumPort",
    method("add", arg("x")),
    method("accumulate", arg("data", kind="parallel")),
    method("fire", arg("event"), oneway=True, returns=False),
)


def coupled_sum(m, n, caller_fn, impl_factory, serve_count=1,
                policy=DeliveryPolicy.BARRIER):
    ns = NameService()
    impls = {}

    def caller(comm):
        inter = ns.connect("sum", comm)
        cp = DCACallerPort(comm, inter, SUM_PORT, policy=policy)
        return caller_fn(cp, comm)

    def callee(comm):
        inter = ns.accept("sum", comm)
        impl = impl_factory(comm)
        impls[comm.rank] = impl
        sp = DCAServerPort(comm, inter, SUM_PORT, impl)
        sp.serve(serve_count)
        return impl

    out = run_coupled([("callee", n, callee, ()), ("caller", m, caller, ())])
    return out


class SimpleImpl:
    def __init__(self, comm):
        self.comm = comm
        self.events = []

    def add(self, x):
        return x + 1

    def accumulate(self, data):
        assert isinstance(data, DCABuffer)
        local = float(data.data.sum())
        return self.comm.allreduce(local, op="sum")

    def fire(self, event):
        self.events.append(event)


def test_full_participation_call():
    out = coupled_sum(3, 1, lambda cp, comm: cp.invoke("add", x=41),
                      SimpleImpl)
    assert out["caller"] == [42, 42, 42]


def test_subset_participation():
    def caller_fn(cp, comm):
        sub = comm.create_subcomm([0, 2])
        if comm.rank in (0, 2):
            return cp.invoke("add", pcomm=sub, x=1)
        return None

    out = coupled_sum(3, 1, caller_fn, SimpleImpl)
    assert out["caller"] == [2, None, 2]


def test_parallel_data_alltoallv_shape():
    """Each caller sends per-callee chunks; callees see concatenation in
    participant order."""
    m, n = 3, 2

    def caller_fn(cp, comm):
        # caller r sends chunk [r*10 + j] to callee j
        buf = np.array([comm.rank * 10 + j for j in range(n)], dtype=float)
        pa = DCAParallelArg(buf, counts=[1] * n)
        return cp.invoke("accumulate", data=pa)

    class Impl:
        def __init__(self, comm):
            self.comm = comm
            self.seen = None

        def accumulate(self, data):
            self.seen = data
            local = float(data.data.sum())
            return self.comm.allreduce(local, op="sum")

    out = coupled_sum(m, n, caller_fn, Impl)
    total = sum(r * 10 + j for r in range(m) for j in range(n))
    assert out["caller"] == [pytest.approx(total)] * m
    # callee 0 saw chunks [0, 10, 20] in caller order
    impl0 = out["callee"][0]
    np.testing.assert_array_equal(impl0.seen.data, [0.0, 10.0, 20.0])
    assert impl0.seen.counts == [1, 1, 1]
    np.testing.assert_array_equal(impl0.seen.chunk_from(1), [10.0])


def test_varying_counts_and_displs():
    m, n = 2, 2

    def caller_fn(cp, comm):
        buf = np.arange(6, dtype=float) + 100 * comm.rank
        pa = DCAParallelArg(buf, counts=[2, 4], displs=[0, 2])
        return cp.invoke("accumulate", data=pa)

    class Impl:
        def __init__(self, comm):
            self.comm = comm
            self.counts = None

        def accumulate(self, data):
            self.counts = data.counts
            return self.comm.allreduce(float(data.data.sum()), op="sum")

    out = coupled_sum(m, n, caller_fn, Impl)
    expected = float(np.arange(6).sum() + np.arange(6).sum() + 100 * 6)
    assert out["caller"][0] == pytest.approx(expected)
    assert out["callee"][0].counts == [2, 2]
    assert out["callee"][1].counts == [4, 4]


def test_oneway_fire_and_forget():
    def caller_fn(cp, comm):
        cp.invoke("fire", event=f"e{comm.rank}")
        return "done"

    out = coupled_sum(2, 1, caller_fn, SimpleImpl)
    assert out["caller"] == ["done", "done"]
    assert out["callee"][0].events == ["e0"]  # simple args come from header


def test_counts_must_match_remote_size():
    def caller_fn(cp, comm):
        pa = DCAParallelArg(np.zeros(3), counts=[1, 1, 1])  # 3 != n=1
        with pytest.raises(PRMIError):
            cp.invoke("accumulate", data=pa)
        cp.invoke("add", x=0)  # keep server protocol in sync
        return True

    out = coupled_sum(1, 1, caller_fn, SimpleImpl)
    assert out["caller"] == [True]


def test_unwrapped_parallel_arg_rejected():
    def caller_fn(cp, comm):
        with pytest.raises(PRMIError):
            cp.invoke("accumulate", data=np.zeros(2))
        cp.invoke("add", x=0)
        return True

    coupled_sum(1, 1, caller_fn, SimpleImpl)


def test_chunk_bounds_validated():
    with pytest.raises(PRMIError):
        DCAParallelArg(np.zeros(3), counts=[2, 2])


def test_stub_generation():
    ns = NameService()

    def caller(comm):
        inter = ns.connect("stub", comm)
        cp = DCACallerPort(comm, inter, SUM_PORT)
        stub = generate_stubs(cp)
        assert callable(stub.add)
        return stub.add(None, x=9)

    def callee(comm):
        inter = ns.accept("stub", comm)
        sp = DCAServerPort(comm, inter, SUM_PORT, SimpleImpl(comm))
        sp.serve_one()
        return True

    out = run_coupled([("callee", 1, callee, ()), ("caller", 2, caller, ())])
    assert out["caller"] == [10, 10]


def test_barrier_policy_counts_barriers():
    def caller_fn(cp, comm):
        cp.invoke("add", x=1)
        cp.invoke("add", x=2)
        return cp.barriers_inserted

    out = coupled_sum(2, 1, caller_fn, SimpleImpl, serve_count=2,
                      policy=DeliveryPolicy.BARRIER)
    assert out["caller"] == [2, 2]

    out = coupled_sum(2, 1, caller_fn, SimpleImpl, serve_count=2,
                      policy=DeliveryPolicy.EAGER)
    assert out["caller"] == [0, 0]
