"""DCAApplication orchestration tests: declarative multi-component apps."""

import numpy as np
import pytest

from repro.cca.sidl import arg, method, port
from repro.dca import DCAApplication, DCAParallelArg
from repro.errors import PortError

CALC_PORT = port("Calc", method("scale", arg("x")))
SINK_PORT = port("Sink", method("push", arg("data", kind="parallel")))


class CalcImpl:
    def __init__(self, comm):
        self.comm = comm

    def scale(self, x):
        return x * self.comm.size


def test_two_component_app():
    app = DCAApplication()

    def driver_main(comm, ports):
        return ports["calc"].invoke("scale", x=7)

    def server_main(comm, ports):
        ports["calc_svc"].serve_one()
        return "served"

    app.add_component("driver", 2, driver_main,
                      uses={"calc": CALC_PORT})
    app.add_component("server", 3, server_main,
                      provides={"calc_svc": (CALC_PORT, CalcImpl)})
    app.connect("driver", "calc", "server", "calc_svc")
    out = app.run()
    assert out["driver"] == [21, 21]
    assert out["server"] == ["served"] * 3


def test_three_component_chain():
    """A -> B -> C invocation chain across three jobs."""
    app = DCAApplication()

    class ForwardImpl:
        def __init__(self, comm, ports_holder):
            self.comm = comm
            self.ports_holder = ports_holder

        def scale(self, x):
            inner = self.ports_holder["next"].invoke("scale", x=x)
            return inner + 1

    def a_main(comm, ports):
        return ports["out"].invoke("scale", x=5)

    def b_main(comm, ports):
        # B both provides (to A) and uses (C); wire the impl to the port
        ports["svc"].impl.ports_holder = ports
        ports["svc"].serve_one()
        return True

    def c_main(comm, ports):
        ports["svc"].serve_one()
        return True

    app.add_component("A", 1, a_main, uses={"out": CALC_PORT})
    app.add_component(
        "B", 1, b_main, uses={"next": CALC_PORT},
        provides={"svc": (CALC_PORT,
                          lambda comm: ForwardImpl(comm, {}))})
    app.add_component("C", 2, c_main,
                      provides={"svc": (CALC_PORT, CalcImpl)})
    app.connect("A", "out", "B", "svc")
    app.connect("B", "next", "C", "svc")
    out = app.run()
    assert out["A"] == [11]  # 5 * |C| + 1


def test_parallel_data_through_app():
    app = DCAApplication()
    received = {}

    class SinkImpl:
        def __init__(self, comm):
            self.comm = comm

        def push(self, data):
            total = self.comm.allreduce(float(data.data.sum()), op="sum")
            received[self.comm.rank] = data.counts
            return total

    def producer_main(comm, ports):
        buf = np.full(4, float(comm.rank + 1))
        pa = DCAParallelArg(buf, counts=[2, 2])
        return ports["sink"].invoke("push", data=pa)

    def sink_main(comm, ports):
        ports["sink_svc"].serve_one()
        return True

    app.add_component("producer", 3, producer_main,
                      uses={"sink": SINK_PORT})
    app.add_component("sink", 2, sink_main,
                      provides={"sink_svc": (SINK_PORT, SinkImpl)})
    app.connect("producer", "sink", "sink", "sink_svc")
    out = app.run()
    # 3 producers x 4 elems each: sum = 4*(1+2+3) = 24
    assert out["producer"] == [24.0] * 3
    assert received[0] == [2, 2, 2]


def test_validation_errors():
    app = DCAApplication()
    app.add_component("a", 1, lambda comm, ports: None,
                      uses={"p": CALC_PORT})
    with pytest.raises(PortError):
        app.add_component("a", 1, lambda comm, ports: None)
    with pytest.raises(PortError):
        app.connect("a", "p", "ghost", "q")
    with pytest.raises(PortError):
        app.connect("a", "ghost_port", "a", "p")
    app.add_component("b", 1, lambda comm, ports: None,
                      provides={"q": (SINK_PORT, lambda comm: None)})
    with pytest.raises(PortError):
        app.connect("a", "p", "b", "q")  # type mismatch


def test_concurrent_go_bodies():
    """All component mains start concurrently (§4.3 Go port semantics)."""
    import threading
    started = threading.Barrier(2 + 3, timeout=5.0)

    app = DCAApplication()

    def main_a(comm, ports):
        started.wait()  # would time out if components ran sequentially
        return "a"

    def main_b(comm, ports):
        started.wait()
        return "b"

    app.add_component("a", 2, main_a)
    app.add_component("b", 3, main_b)
    out = app.run()
    assert out["a"] == ["a"] * 2 and out["b"] == ["b"] * 3
