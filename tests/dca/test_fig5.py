"""Figure 5 reproduction: the PRMI synchronization problem.

"The solution is to delay PRMI delivery until all processes are ready."
"""

import pytest

from repro.dca import DeliveryPolicy
from repro.dca.fig5 import run_fig5
from repro.errors import DeadlockError, SpmdError


def test_barrier_policy_completes():
    out = run_fig5(DeliveryPolicy.BARRIER)
    # call 2 is serviced first (its participants are ready first), then
    # call 1 once process 0's barrier releases.
    assert out["timeline"] == ["call2", "call1"]
    assert out["callers"][0] == ["r1:a"]
    assert out["callers"][1] == ["r2:b", "r1:a"]
    assert out["callers"][2] == ["r2:b", "r1:a"]


def test_eager_policy_deadlocks():
    """Without the barrier, the provider commits to call 1 at t1 and can
    never receive processes 2 and 3's call-2 bodies — deadlock, detected
    by the watchdog rather than hanging."""
    with pytest.raises(SpmdError) as exc_info:
        run_fig5(DeliveryPolicy.EAGER)
    assert any(isinstance(e, DeadlockError)
               for e in exc_info.value.failures.values())


def test_eager_without_intersection_is_fine():
    """§4.3: 'the problem ... disappears if process 1 participates in the
    second call' — full participation needs no barrier."""
    import time
    from repro.cca.sidl import arg, method, port
    from repro.dca import DCACallerPort, DCAServerPort
    from repro.simmpi import NameService, run_coupled

    PORT = port("P", method("f", arg("x")), method("g", arg("x")))
    ns = NameService()

    class Impl:
        def __init__(self):
            self.order = []

        def f(self, x):
            self.order.append("f")
            return x

        def g(self, x):
            self.order.append("g")
            return x

    def provider(comm):
        inter = ns.accept("p", comm)
        sp = DCAServerPort(comm, inter, PORT, Impl())
        sp.serve(2)
        return sp.impl.order

    def callers(comm):
        inter = ns.connect("p", comm)
        cp = DCACallerPort(comm, inter, PORT, policy=DeliveryPolicy.EAGER)
        if comm.rank == 0:
            time.sleep(0.05)  # skew arrival; full participation still safe
        r1 = cp.invoke("g", x=1)
        r2 = cp.invoke("f", x=2)
        return (r1, r2)

    out = run_coupled([("provider", 1, provider, ()),
                       ("callers", 3, callers, ())])
    assert out["provider"][0] == ["g", "f"]
    assert out["callers"] == [(1, 2)] * 3
