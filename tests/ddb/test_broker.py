"""Distributed Data Broker tests: brokered cross-resolution coupling."""

import numpy as np
import pytest

from repro.dad import DistArrayDescriptor, DistributedArray
from repro.dad.template import block_template
from repro.ddb import DataBroker, regrid_matrix
from repro.errors import ReproError, SpmdError
from repro.simmpi import NameService, run_coupled


class TestRegridMatrix:
    def test_coarsening_conserves_mean(self):
        rows, cols, vals = regrid_matrix(8, 4)
        import scipy.sparse as sp
        R = sp.coo_matrix((vals, (rows, cols)), shape=(4, 8)).tocsr()
        x = np.arange(8.0)
        y = R @ x
        # conservative averaging preserves the global mean
        assert y.mean() == pytest.approx(x.mean())
        np.testing.assert_allclose(y, [0.5, 2.5, 4.5, 6.5])

    def test_refinement_exact_on_linear(self):
        rows, cols, vals = regrid_matrix(8, 16)
        import scipy.sparse as sp
        R = sp.coo_matrix((vals, (rows, cols)), shape=(16, 8)).tocsr()
        xs = (np.arange(8) + 0.5) / 8
        y = R @ (3 * xs + 1)
        xd = (np.arange(16) + 0.5) / 16
        interior = (xd >= xs[0]) & (xd <= xs[-1])
        np.testing.assert_allclose(y[interior], (3 * xd + 1)[interior])

    def test_identity_resolution(self):
        rows, cols, vals = regrid_matrix(4, 4)
        assert np.all(rows == cols)
        np.testing.assert_allclose(vals, 1.0)

    def test_validation(self):
        with pytest.raises(ReproError):
            regrid_matrix(1, 4)


def run_brokered(producer_res, consumer_res, m, n, requests=1,
                 consumers=None):
    """One producer offering a linear profile; consumers at their own
    resolution."""
    ns = NameService()
    broker = DataBroker(ns)
    src_desc = DistArrayDescriptor(block_template((producer_res,), (m,)))
    xs = (np.arange(producer_res) + 0.5) / producer_res
    profile = 3.0 * xs + 1.0

    def producer(comm):
        da = DistributedArray.from_global(src_desc, comm.rank, profile)
        broker.offer(comm, "sst", da)
        return broker.serve(comm, "sst", da, requests=requests)

    def consumer(comm):
        import time
        while comm.rank == 0 and "sst" not in broker.offered_fields():
            time.sleep(0.01)
        comm.barrier()
        values, gsmap = broker.request(comm, "sst", consumer_res)
        assert values.shape[0] == gsmap.local_size(comm.rank)
        return values, gsmap.global_indices(comm.rank)

    jobs = [("producer", m, producer, ())]
    for name, nranks in (consumers or [("consumer", n)]):
        jobs.append((name, nranks, consumer, ()))
    return run_coupled(jobs), profile


class TestBrokeredCoupling:
    def test_same_resolution(self):
        out, profile = run_brokered(16, 16, m=2, n=3)
        got = np.zeros(16)
        for values, gidx in out["consumer"]:
            got[gidx] = values
        np.testing.assert_allclose(got, profile)

    def test_coarsening(self):
        out, profile = run_brokered(32, 8, m=2, n=2)
        got = np.zeros(8)
        for values, gidx in out["consumer"]:
            got[gidx] = values
        # conservative coarsening of a linear profile stays linear with
        # the same mean
        assert got.mean() == pytest.approx(profile.mean())
        xd = (np.arange(8) + 0.5) / 8
        np.testing.assert_allclose(got, 3.0 * xd + 1.0, rtol=1e-12)

    def test_refinement(self):
        out, profile = run_brokered(8, 32, m=3, n=2)
        got = np.zeros(32)
        for values, gidx in out["consumer"]:
            got[gidx] = values
        xs = (np.arange(8) + 0.5) / 8
        xd = (np.arange(32) + 0.5) / 32
        interior = (xd >= xs[0]) & (xd <= xs[-1])
        np.testing.assert_allclose(got[interior],
                                   (3.0 * xd + 1.0)[interior])

    def test_two_consumers_different_resolutions(self):
        """'coupling codes with different grid resolutions' — two
        consumers, one coarser and one finer than the producer."""
        ns = NameService()
        broker = DataBroker(ns)
        res = 16
        src_desc = DistArrayDescriptor(block_template((res,), (2,)))
        xs = (np.arange(res) + 0.5) / res
        profile = 2.0 * xs

        def producer(comm):
            da = DistributedArray.from_global(src_desc, comm.rank, profile)
            broker.offer(comm, "flux", da)
            return broker.serve(comm, "flux", da, requests=2)

        def make_consumer(my_res):
            def body(comm):
                import time
                while comm.rank == 0 and \
                        "flux" not in broker.offered_fields():
                    time.sleep(0.01)
                comm.barrier()
                values, gsmap = broker.request(comm, "flux", my_res)
                local_sum = float(values.sum())
                return comm.allreduce(local_sum, op="sum") / my_res
            return body

        out = run_coupled([
            ("producer", 2, producer, ()),
            ("coarse", 2, make_consumer(4), ()),
            ("fine", 3, make_consumer(64), ()),
        ])
        # both consumers see (approximately) the producer's mean
        assert out["coarse"][0] == pytest.approx(profile.mean())
        assert out["fine"][0] == pytest.approx(profile.mean(), rel=1e-2)

    def test_unknown_field_raises(self):
        ns = NameService()
        broker = DataBroker(ns)

        def consumer(comm):
            broker.request(comm, "ghost", 8)

        with pytest.raises(SpmdError) as exc_info:
            run_coupled([("consumer", 1, consumer, ())],
                        deadlock_timeout=1.0)
        assert any(isinstance(e, ReproError)
                   for e in exc_info.value.failures.values())

    def test_duplicate_offer_rejected(self):
        ns = NameService()
        broker = DataBroker(ns)
        desc = DistArrayDescriptor(block_template((8,), (1,)))

        def producer(comm):
            da = DistributedArray.allocate(desc, comm.rank)
            broker.offer(comm, "x", da)
            with pytest.raises(ReproError):
                broker.offer(comm, "x", da)
            return True

        out = run_coupled([("producer", 1, producer, ())])
        assert all(out["producer"])
