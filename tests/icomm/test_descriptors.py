"""InterComm descriptor storage-class tests (replicated vs partitioned)."""

import numpy as np
import pytest

from repro.dad.template import block_template
from repro.errors import DistributionError
from repro.icomm import ICBlockDescriptor, ICExplicitDescriptor
from repro.util.regions import Region


class TestBlockDescriptor:
    def test_from_template(self):
        d = ICBlockDescriptor.from_template(block_template((8, 8), (2, 2)))
        assert d.nranks == 4
        assert d.storage == "replicated"

    def test_replicated_entries_same_everywhere(self):
        d = ICBlockDescriptor.from_template(block_template((100, 100), (2, 2)))
        entries = [d.per_rank_entries(r) for r in range(4)]
        assert len(set(entries)) == 1
        # 4 patches x (lo+hi per 2 axes + rank) = 4 x 5
        assert entries[0] == 20

    def test_entries_independent_of_element_count(self):
        small = ICBlockDescriptor.from_template(block_template((8, 8), (2, 2)))
        large = ICBlockDescriptor.from_template(
            block_template((800, 800), (2, 2)))
        assert small.per_rank_entries(0) == large.per_rank_entries(0)

    def test_explicit_patches(self):
        d = ICBlockDescriptor((4, 4), [
            (0, Region((0, 0), (2, 4))),
            (1, Region((2, 0), (4, 4))),
        ])
        assert d.descriptor().local_volume(0) == 8


class TestExplicitDescriptor:
    def test_partitioned_entries_match_ownership(self):
        owners = np.array([0, 1, 1, 0, 2, 2, 2, 0])
        d = ICExplicitDescriptor(owners)
        assert d.storage == "partitioned"
        assert d.per_rank_entries(0) == 3
        assert d.per_rank_entries(1) == 2
        assert d.per_rank_entries(2) == 3
        # partitioned total equals element count
        assert sum(d.per_rank_entries(r) for r in range(3)) == 8

    def test_entries_scale_with_elements(self):
        small = ICExplicitDescriptor(np.arange(10) % 2)
        large = ICExplicitDescriptor(np.arange(1000) % 2)
        assert large.per_rank_entries(0) > small.per_rank_entries(0)

    def test_descriptor_usable_for_schedules(self):
        from repro.schedule import build_region_schedule

        owners = np.array([0, 1, 0, 1, 0, 1])
        src = ICExplicitDescriptor(owners).descriptor()
        dst = ICBlockDescriptor.from_template(
            block_template((6,), (2,))).descriptor()
        sched = build_region_schedule(src, dst)
        sched.validate(src, dst)

    def test_bad_rank(self):
        d = ICExplicitDescriptor([0, 0, 1])
        with pytest.raises(DistributionError):
            d.per_rank_entries(5)
