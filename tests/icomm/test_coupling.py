"""End-to-end InterComm export/import coupling tests."""

import numpy as np
import pytest

from repro.dad import DistArrayDescriptor, DistributedArray
from repro.dad.template import block_template
from repro.errors import CoordinationError, SpmdError
from repro.icomm import (
    CoordinationSpec,
    Exporter,
    Importer,
    MatchRule,
    Matching,
)
from repro.simmpi import NameService, run_coupled

SHAPE = (6, 4)


def field_pair(m, n, dtype=np.float64):
    src = DistArrayDescriptor(block_template(SHAPE, (m, 1)), dtype)
    dst = DistArrayDescriptor(block_template(SHAPE, (1, n)), dtype)
    return src, dst


def run_scenario(m, n, spec, exporter_body, importer_body,
                 total_imports=None):
    src_desc, dst_desc = field_pair(m, n)
    fields = {"flux": (src_desc, dst_desc)}
    ns = NameService()

    def prog_a(comm):
        inter = ns.accept("ic", comm)
        exp = Exporter(comm, inter, spec, fields,
                       total_imports=total_imports)
        return exporter_body(exp, comm, src_desc)

    def prog_b(comm):
        inter = ns.connect("ic", comm)
        imp = Importer(comm, inter, spec, fields)
        return importer_body(imp, comm, dst_desc)

    return run_coupled([("A", m, prog_a, ()), ("B", n, prog_b, ())])


def stamped(desc, rank, ts):
    return DistributedArray.from_function(
        desc, rank, lambda i, j: 100 * ts + 10 * i + j)


def test_exact_matching_transfer():
    spec = CoordinationSpec([MatchRule("flux", Matching.EXACT)])

    def exporter_body(exp, comm, desc):
        for ts in range(4):
            exp.export("flux", ts, stamped(desc, comm.rank, ts))
        exp.finalize()
        return exp.transfers

    def importer_body(imp, comm, desc):
        da = DistributedArray.allocate(desc, comm.rank)
        matched = imp.import_("flux", 2, da)
        return matched, da

    out = run_scenario(2, 2, spec, exporter_body, importer_body,
                       total_imports=1)
    matched = [r[0] for r in out["B"]]
    assert matched == [2, 2]
    assembled = DistributedArray.assemble([r[1] for r in out["B"]])
    expected = np.fromfunction(lambda i, j: 200 + 10 * i + j, SHAPE)
    np.testing.assert_array_equal(assembled, expected)


def test_glb_matching_takes_most_recent_lower():
    spec = CoordinationSpec(
        [MatchRule("flux", Matching.GREATEST_LOWER_BOUND)])

    def exporter_body(exp, comm, desc):
        for ts in (0, 4, 8, 12):
            exp.export("flux", ts, stamped(desc, comm.rank, ts))
        exp.finalize()
        return exp.transfers

    def importer_body(imp, comm, desc):
        da = DistributedArray.allocate(desc, comm.rank)
        return imp.import_("flux", 6, da)

    out = run_scenario(2, 1, spec, exporter_body, importer_body,
                       total_imports=1)
    assert out["B"] == [4]


def test_regular_matching_interval():
    spec = CoordinationSpec(
        [MatchRule("flux", Matching.REGULAR, interval=5)])

    def exporter_body(exp, comm, desc):
        # exports every step, but only multiples of 5 are eligible
        for ts in range(11):
            exp.export("flux", ts, stamped(desc, comm.rank, ts))
        exp.finalize()
        return exp.transfers

    def importer_body(imp, comm, desc):
        da = DistributedArray.allocate(desc, comm.rank)
        return imp.import_("flux", 7, da)  # -> floor(7/5)*5 = 5

    out = run_scenario(1, 2, spec, exporter_body, importer_body,
                       total_imports=1)
    assert out["B"] == [5, 5]


def test_multiple_imports_same_export():
    spec = CoordinationSpec(
        [MatchRule("flux", Matching.GREATEST_LOWER_BOUND)])

    def exporter_body(exp, comm, desc):
        exp.export("flux", 0, stamped(desc, comm.rank, 0))
        exp.export("flux", 10, stamped(desc, comm.rank, 10))
        exp.finalize()
        return exp.transfers

    def importer_body(imp, comm, desc):
        da = DistributedArray.allocate(desc, comm.rank)
        m1 = imp.import_("flux", 3, da)
        m2 = imp.import_("flux", 5, da)
        return (m1, m2)

    out = run_scenario(1, 1, spec, exporter_body, importer_body,
                       total_imports=2)
    assert out["B"] == [(0, 0)]
    assert out["A"] == [2]  # two transfers of the same snapshot


def test_import_blocks_until_export_arrives():
    """Importer asks for a future timestamp; transfer completes once the
    exporter reaches it."""
    spec = CoordinationSpec([MatchRule("flux", Matching.EXACT)])

    def exporter_body(exp, comm, desc):
        import time
        for ts in range(5):
            time.sleep(0.02)
            exp.export("flux", ts, stamped(desc, comm.rank, ts))
        exp.finalize()
        return exp.transfers

    def importer_body(imp, comm, desc):
        da = DistributedArray.allocate(desc, comm.rank)
        return imp.import_("flux", 4, da)  # requested before it exists

    out = run_scenario(2, 2, spec, exporter_body, importer_body,
                       total_imports=1)
    assert out["B"] == [4, 4]


def test_unmatchable_import_raises_on_importer():
    spec = CoordinationSpec([MatchRule("flux", Matching.EXACT)])

    def exporter_body(exp, comm, desc):
        exp.export("flux", 0, stamped(desc, comm.rank, 0))
        exp.export("flux", 2, stamped(desc, comm.rank, 2))
        exp.finalize()
        return True

    def importer_body(imp, comm, desc):
        da = DistributedArray.allocate(desc, comm.rank)
        imp.import_("flux", 1, da)  # never exported

    with pytest.raises(SpmdError) as exc_info:
        run_scenario(1, 1, spec, exporter_body, importer_body,
                     total_imports=1)
    assert any(isinstance(e, CoordinationError)
               for e in exc_info.value.failures.values())


def test_history_eviction():
    spec = CoordinationSpec([MatchRule("flux", Matching.EXACT)],
                            history=2)

    def exporter_body(exp, comm, desc):
        for ts in range(5):
            exp.export("flux", ts, stamped(desc, comm.rank, ts))
        exp.finalize()
        return True

    def importer_body(imp, comm, desc):
        import time
        time.sleep(0.2)  # let the exporter run ahead and evict ts=0
        da = DistributedArray.allocate(desc, comm.rank)
        imp.import_("flux", 0, da)

    with pytest.raises(SpmdError):
        run_scenario(1, 1, spec, exporter_body, importer_body,
                     total_imports=1)


def test_unknown_field_raises():
    spec = CoordinationSpec([MatchRule("flux")])

    def exporter_body(exp, comm, desc):
        with pytest.raises(CoordinationError):
            exp.export("ghost", 0, stamped(desc, comm.rank, 0))
        exp.finalize()
        return True

    def importer_body(imp, comm, desc):
        da = DistributedArray.allocate(desc, comm.rank)
        with pytest.raises(CoordinationError):
            imp.import_("ghost", 0, da)
        return True

    out = run_scenario(1, 1, spec, exporter_body, importer_body,
                       total_imports=0)
    assert out["A"] == [True] and out["B"] == [True]
