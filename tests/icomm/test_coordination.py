"""Matching-rule unit tests."""

import pytest

from repro.errors import CoordinationError
from repro.icomm import CoordinationSpec, MatchRule, Matching


class TestExact:
    def test_match_present(self):
        r = MatchRule("f", Matching.EXACT)
        assert r.resolve(5, [3, 5, 7], 7, False) == 5

    def test_wait_for_future(self):
        r = MatchRule("f", Matching.EXACT)
        assert r.resolve(9, [3, 5], 5, False) is None

    def test_missed_raises(self):
        r = MatchRule("f", Matching.EXACT)
        with pytest.raises(CoordinationError):
            r.resolve(4, [3, 5], 5, False)  # stream already passed 4

    def test_stream_done_raises(self):
        r = MatchRule("f", Matching.EXACT)
        with pytest.raises(CoordinationError):
            r.resolve(9, [3, 5], 5, True)


class TestGLB:
    def test_glb_decided_once_stream_passes(self):
        r = MatchRule("f", Matching.GREATEST_LOWER_BOUND)
        assert r.resolve(6, [2, 4, 8], 8, False) == 4

    def test_glb_waits_until_certain(self):
        r = MatchRule("f", Matching.GREATEST_LOWER_BOUND)
        # latest export has not passed the import ts: a closer export
        # may still come, so the decision must wait
        assert r.resolve(6, [2, 4, 6], 6, False) is None
        assert r.resolve(7, [2, 4, 6], 6, False) is None

    def test_glb_at_stream_end(self):
        r = MatchRule("f", Matching.GREATEST_LOWER_BOUND)
        assert r.resolve(7, [2, 4, 6], 6, True) == 6

    def test_glb_nothing_below_raises_at_end(self):
        r = MatchRule("f", Matching.GREATEST_LOWER_BOUND)
        with pytest.raises(CoordinationError):
            r.resolve(1, [2, 4], 4, True)


class TestRegular:
    def test_eligibility(self):
        r = MatchRule("f", Matching.REGULAR, interval=3)
        assert r.eligible(6)
        assert not r.eligible(7)

    def test_floor_matching(self):
        r = MatchRule("f", Matching.REGULAR, interval=3)
        assert r.resolve(7, [0, 3, 6], 7, False) == 6

    def test_wait_for_target(self):
        r = MatchRule("f", Matching.REGULAR, interval=3)
        assert r.resolve(8, [0, 3], 5, False) is None

    def test_missing_target_raises(self):
        r = MatchRule("f", Matching.REGULAR, interval=3)
        with pytest.raises(CoordinationError):
            r.resolve(7, [0, 3], 9, False)  # 6 skipped

    def test_bad_interval(self):
        with pytest.raises(CoordinationError):
            MatchRule("f", Matching.REGULAR, interval=0)


class TestSpec:
    def test_rule_lookup(self):
        spec = CoordinationSpec([MatchRule("a"), MatchRule("b")])
        assert spec.rule("a").field == "a"
        assert spec.fields() == ["a", "b"]

    def test_duplicate_rule_rejected(self):
        with pytest.raises(CoordinationError):
            CoordinationSpec([MatchRule("a"), MatchRule("a")])

    def test_missing_rule(self):
        with pytest.raises(CoordinationError):
            CoordinationSpec().rule("ghost")

    def test_history_validation(self):
        with pytest.raises(CoordinationError):
            CoordinationSpec(history=0)
