"""Filter unit tests."""

import numpy as np
import pytest

from repro.errors import ReproError
from repro.pipeline import (
    AffineFilter,
    ClampFilter,
    FunctionFilter,
    TemporalBlendFilter,
    UnitConversion,
)


class TestAffine:
    def test_apply(self):
        f = AffineFilter(2.0, 1.0)
        np.testing.assert_array_equal(
            f.apply(np.array([0.0, 1.0, 2.0])), [1.0, 3.0, 5.0])

    def test_apply_in_place(self):
        f = AffineFilter(3.0, -1.0)
        arr = np.array([1.0, 2.0])
        out = f.apply(arr, out=arr)
        assert out is arr
        np.testing.assert_array_equal(arr, [2.0, 5.0])

    def test_compose_closed_form(self):
        f1 = AffineFilter(2.0, 1.0)     # 2x + 1
        f2 = AffineFilter(3.0, -2.0)    # 3y - 2
        composed = f1.compose(f2)       # 3(2x+1) - 2 = 6x + 1
        assert isinstance(composed, AffineFilter)
        assert (composed.scale, composed.offset) == (6.0, 1.0)
        x = np.array([0.5, -1.0, 4.0])
        np.testing.assert_allclose(composed.apply(x), f2.apply(f1.apply(x)))

    def test_compose_with_non_affine(self):
        assert AffineFilter(2.0).compose(ClampFilter(lo=0.0)) is None


class TestUnitConversion:
    def test_celsius_to_kelvin(self):
        f = UnitConversion("celsius", "kelvin")
        np.testing.assert_allclose(f.apply(np.array([0.0, 100.0])),
                                   [273.15, 373.15])

    def test_roundtrip(self):
        fwd = UnitConversion("celsius", "fahrenheit")
        back = UnitConversion("fahrenheit", "celsius")
        x = np.array([-40.0, 0.0, 37.0])
        np.testing.assert_allclose(back.apply(fwd.apply(x)), x)

    def test_identity(self):
        f = UnitConversion("m", "m")
        assert (f.scale, f.offset) == (1.0, 0.0)

    def test_unknown_pair(self):
        with pytest.raises(ReproError):
            UnitConversion("furlongs", "parsecs")

    def test_conversions_compose(self):
        c2k = UnitConversion("celsius", "kelvin")
        pa2bar = AffineFilter(2.0)
        combined = c2k.compose(pa2bar)
        assert isinstance(combined, AffineFilter)


class TestClamp:
    def test_both_bounds(self):
        f = ClampFilter(0.0, 1.0)
        np.testing.assert_array_equal(
            f.apply(np.array([-1.0, 0.5, 2.0])), [0.0, 0.5, 1.0])

    def test_single_bound(self):
        f = ClampFilter(lo=0.0)
        np.testing.assert_array_equal(
            f.apply(np.array([-5.0, 5.0])), [0.0, 5.0])

    def test_needs_a_bound(self):
        with pytest.raises(ReproError):
            ClampFilter()


class TestFunctionFilter:
    def test_apply(self):
        f = FunctionFilter(np.sqrt, "sqrt")
        np.testing.assert_array_equal(f.apply(np.array([4.0, 9.0])),
                                      [2.0, 3.0])

    def test_out(self):
        f = FunctionFilter(lambda x: x * 2)
        buf = np.zeros(2)
        f.apply(np.array([1.0, 2.0]), out=buf)
        np.testing.assert_array_equal(buf, [2.0, 4.0])


class TestTemporalBlend:
    def test_first_sample_passthrough(self):
        f = TemporalBlendFilter(0.5)
        np.testing.assert_array_equal(f.apply(np.array([4.0])), [4.0])

    def test_blend(self):
        f = TemporalBlendFilter(0.25)
        f.apply(np.array([0.0, 0.0]))
        out = f.apply(np.array([8.0, 4.0]))
        np.testing.assert_array_equal(out, [2.0, 1.0])

    def test_reset(self):
        f = TemporalBlendFilter(0.5)
        f.apply(np.array([10.0]))
        f.reset()
        np.testing.assert_array_equal(f.apply(np.array([2.0])), [2.0])

    def test_weight_validation(self):
        with pytest.raises(ReproError):
            TemporalBlendFilter(1.5)
