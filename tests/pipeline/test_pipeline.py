"""Pipeline execution and super-component fusion tests."""

import numpy as np
import pytest

from repro.dad import DistArrayDescriptor, DistributedArray
from repro.dad.template import block_template
from repro.errors import ScheduleError
from repro.pipeline import (
    AffineFilter,
    ClampFilter,
    FilterStage,
    Pipeline,
    PipelineMetrics,
    RedistributeStage,
    UnitConversion,
)
from repro.simmpi import run_spmd

SHAPE = (12, 8)


def descs():
    a = DistArrayDescriptor(block_template(SHAPE, (2, 1)), np.float64)
    b = DistArrayDescriptor(block_template(SHAPE, (1, 3)), np.float64)
    c = DistArrayDescriptor(block_template(SHAPE, (3, 2)), np.float64)
    return a, b, c


def run_pipeline(pipeline, g, *, fused=False):
    runner = pipeline.fuse() if fused else pipeline
    n = max(pipeline.max_nranks, runner.max_nranks)
    metrics_box = {}

    def main(comm):
        src = (DistributedArray.from_global(
            pipeline.src_descriptor, comm.rank, g)
            if comm.rank < pipeline.src_descriptor.nranks else None)
        metrics = PipelineMetrics()
        out = runner.run(comm, src, metrics)
        metrics_box[comm.rank] = metrics
        return out

    parts = [p for p in run_spmd(n, main) if p is not None]
    return DistributedArray.assemble(parts), metrics_box[0]


class TestNaiveExecution:
    def test_redistribute_only(self):
        a, b, _ = descs()
        g = np.arange(96.0).reshape(SHAPE)
        out, metrics = run_pipeline(
            Pipeline(a, [RedistributeStage(b)]), g)
        np.testing.assert_array_equal(out, g)
        assert metrics.schedules_executed == 1

    def test_filter_only(self):
        a, _, _ = descs()
        g = np.arange(96.0).reshape(SHAPE)
        out, _ = run_pipeline(
            Pipeline(a, [FilterStage(AffineFilter(2.0, 1.0))]), g)
        np.testing.assert_array_equal(out, 2 * g + 1)

    def test_mixed_chain(self):
        a, b, c = descs()
        g = np.linspace(-50.0, 150.0, 96).reshape(SHAPE)
        pipe = Pipeline(a, [
            FilterStage(UnitConversion("celsius", "kelvin")),
            RedistributeStage(b),
            FilterStage(ClampFilter(lo=273.15)),   # freeze floor
            RedistributeStage(c),
        ])
        out, metrics = run_pipeline(pipe, g)
        expected = np.clip(g + 273.15, 273.15, None)
        np.testing.assert_allclose(out, expected)
        assert metrics.schedules_executed == 2
        assert metrics.filter_passes == 2

    def test_output_descriptor(self):
        a, b, c = descs()
        pipe = Pipeline(a, [RedistributeStage(b), RedistributeStage(c)])
        assert pipe.output_descriptor is c

    def test_shape_mismatch_rejected(self):
        a, _, _ = descs()
        bad = DistArrayDescriptor(block_template((5, 5), (1, 1)))
        with pytest.raises(ScheduleError):
            Pipeline(a, [RedistributeStage(bad)])

    def test_insufficient_ranks(self):
        a, b, _ = descs()
        pipe = Pipeline(a, [RedistributeStage(b)])

        def main(comm):
            with pytest.raises(ScheduleError):
                pipe.run(comm, None)
            return True

        assert all(run_spmd(1, main))


class TestFusion:
    def test_fused_matches_naive(self):
        a, b, c = descs()
        g = np.linspace(-10.0, 10.0, 96).reshape(SHAPE)
        pipe = Pipeline(a, [
            FilterStage(AffineFilter(2.0, 0.0)),
            RedistributeStage(b),
            FilterStage(AffineFilter(1.0, 5.0)),
            RedistributeStage(c),
            FilterStage(ClampFilter(hi=20.0)),
        ])
        naive_out, naive_m = run_pipeline(pipe, g)
        fused_out, fused_m = run_pipeline(pipe, g, fused=True)
        np.testing.assert_allclose(fused_out, naive_out)
        # Super-component: one schedule instead of two, fewer passes.
        assert naive_m.schedules_executed == 2
        assert fused_m.schedules_executed == 1
        assert fused_m.elements_moved < naive_m.elements_moved
        assert fused_m.arrays_allocated < naive_m.arrays_allocated

    def test_affine_filters_compose(self):
        a, _, _ = descs()
        pipe = Pipeline(a, [
            FilterStage(AffineFilter(2.0, 1.0)),
            FilterStage(AffineFilter(3.0, 0.0)),
            FilterStage(AffineFilter(1.0, -1.0)),
        ])
        fused = pipe.fuse()
        assert len(fused.filters) == 1     # 3 affine filters -> 1
        g = np.arange(96.0).reshape(SHAPE)
        out, _ = run_pipeline(pipe, g, fused=True)
        np.testing.assert_allclose(out, 3 * (2 * g + 1) - 1)

    def test_non_composable_filters_kept_in_order(self):
        a, _, _ = descs()
        pipe = Pipeline(a, [
            FilterStage(AffineFilter(-1.0, 0.0)),   # negate
            FilterStage(ClampFilter(lo=0.0)),       # then clamp
        ])
        fused = pipe.fuse()
        assert len(fused.filters) == 2
        g = np.linspace(-3.0, 3.0, 96).reshape(SHAPE)
        out, _ = run_pipeline(pipe, g, fused=True)
        np.testing.assert_allclose(out, np.clip(-g, 0.0, None))

    def test_identity_fusion_moves_nothing(self):
        a, b, _ = descs()
        # a -> b -> a : fused pipeline recognizes no net redistribution
        pipe = Pipeline(a, [RedistributeStage(b), RedistributeStage(a)])
        fused = pipe.fuse()
        g = np.arange(96.0).reshape(SHAPE)
        out, metrics = run_pipeline(pipe, g, fused=True)
        np.testing.assert_array_equal(out, g)
        assert metrics.schedules_executed == 0
        assert metrics.elements_moved == 0

    def test_redistributions_collapse(self):
        a, b, c = descs()
        pipe = Pipeline(a, [
            RedistributeStage(b),
            RedistributeStage(c),
            RedistributeStage(b),
            RedistributeStage(c),
        ])
        g = np.arange(96.0).reshape(SHAPE)
        naive_out, naive_m = run_pipeline(pipe, g)
        fused_out, fused_m = run_pipeline(pipe, g, fused=True)
        np.testing.assert_array_equal(naive_out, fused_out)
        assert naive_m.elements_moved == 4 * g.size
        assert fused_m.elements_moved == g.size
