"""Direct-connected framework tests: components, ports, cohorts."""

import pytest

from repro.cca import Component, DirectFramework, GO_PORT
from repro.cca.framework import GO_PORT_TYPE
from repro.cca.sidl import arg, method, port
from repro.errors import PortError
from repro.simmpi import run_spmd

INTEGRATOR_PORT = port("IntegratorPort", method("integrate", arg("lo"), arg("hi")))
FUNCTION_PORT = port("FunctionPort", method("evaluate", arg("x")))


class FunctionComponent(Component):
    """Provides f(x) = x^2."""

    def set_services(self, services):
        super().set_services(services)
        services.add_provides_port("function", FUNCTION_PORT, self)

    def evaluate(self, x):
        return x * x


class IntegratorComponent(Component):
    """Midpoint-rule integrator using a FunctionPort."""

    def set_services(self, services):
        super().set_services(services)
        services.add_provides_port("integrator", INTEGRATOR_PORT, self)
        services.register_uses_port("function", FUNCTION_PORT)

    def integrate(self, lo, hi, steps=100):
        f = self.services.get_port("function")
        h = (hi - lo) / steps
        return sum(f.evaluate(lo + (i + 0.5) * h) for i in range(steps)) * h


class DriverComponent(Component):
    def set_services(self, services):
        super().set_services(services)
        services.add_provides_port(GO_PORT, GO_PORT_TYPE, self)
        services.register_uses_port("integrator", INTEGRATOR_PORT)

    def go(self):
        return self.services.get_port("integrator").integrate(0.0, 1.0)


def build_app(fw):
    fw.create_component("func", FunctionComponent)
    fw.create_component("integ", IntegratorComponent)
    fw.create_component("driver", DriverComponent)
    fw.connect("integ", "function", "func", "function")
    fw.connect("driver", "integrator", "integ", "integrator")


class TestDirectFramework:
    def test_wiring_and_go(self):
        fw = DirectFramework()
        build_app(fw)
        result = fw.run_go("driver")
        assert result == pytest.approx(1.0 / 3.0, rel=1e-3)

    def test_run_all_go(self):
        fw = DirectFramework()
        build_app(fw)
        results = fw.run_all_go()
        assert set(results) == {"driver"}

    def test_port_invocation_is_direct_reference(self):
        fw = DirectFramework()
        build_app(fw)
        bound = fw._services["integ"].get_port("function")
        func = fw.component("func")
        assert bound.evaluate(3) == func.evaluate(3) == 9

    def test_unconnected_uses_port_raises(self):
        fw = DirectFramework()
        fw.create_component("integ", IntegratorComponent)
        with pytest.raises(PortError):
            fw.component("integ").integrate(0, 1)

    def test_type_mismatch_rejected(self):
        fw = DirectFramework()
        fw.create_component("func", FunctionComponent)
        fw.create_component("integ", IntegratorComponent)
        with pytest.raises(PortError):
            fw.connect("integ", "function", "func", "nonexistent")

    def test_interface_restriction(self):
        """A bound port only exposes the declared interface."""
        fw = DirectFramework()
        build_app(fw)
        bound = fw._services["integ"].get_port("function")
        with pytest.raises(PortError):
            bound.integrate  # not part of FunctionPort

    def test_duplicate_instance_rejected(self):
        fw = DirectFramework()
        fw.create_component("func", FunctionComponent)
        with pytest.raises(PortError):
            fw.create_component("func", FunctionComponent)

    def test_destroy_component(self):
        fw = DirectFramework()
        fw.create_component("func", FunctionComponent)
        fw.destroy_component("func")
        assert fw.component_names() == []

    def test_disconnect(self):
        fw = DirectFramework()
        build_app(fw)
        fw.disconnect("integ", "function")
        with pytest.raises(PortError):
            fw._services["integ"].get_port("function")


class ParallelSumComponent(Component):
    """A parallel component: cohort instances sum-reduce over their comm."""

    PORT = port("SumPort", method("global_sum", arg("local_value")))

    def set_services(self, services):
        super().set_services(services)
        services.add_provides_port("sum", self.PORT, self)

    def global_sum(self, local_value):
        return self.services.comm.allreduce(local_value, op="sum")


def test_cohort_spmd_component():
    """One component instantiated on every rank of an SPMD job — the
    paper's parallel component / cohort notion."""
    def main(comm):
        fw = DirectFramework(comm)
        fw.create_component("summer", ParallelSumComponent)

        class User(Component):
            def set_services(self, services):
                super().set_services(services)
                services.register_uses_port("sum", ParallelSumComponent.PORT)

        fw.create_component("user", User)
        fw.connect("user", "sum", "summer", "sum")
        bound = fw._services["user"].get_port("sum")
        return bound.global_sum(comm.rank + 1)

    results = run_spmd(4, main)
    assert results == [10, 10, 10, 10]


def test_framework_service_injection():
    fw = DirectFramework()
    fw.register_framework_service("mxn", object())
    fw.create_component("func", FunctionComponent)
    svc = fw._services["func"].get_framework_service("mxn")
    assert svc is not None
    with pytest.raises(PortError):
        fw._services["func"].get_framework_service("nope")
