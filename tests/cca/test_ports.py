"""Port-object unit tests: validation and connection mechanics."""

import pytest

from repro.cca.ports import BoundPort, ProvidesPort, UsesPort
from repro.cca.sidl import arg, method, port
from repro.errors import PortError

CALC = port("Calc", method("add", arg("x")), method("sub", arg("x")))
OTHER = port("Other", method("noop"))


class CalcImpl:
    def add(self, x):
        return x + 1

    def sub(self, x):
        return x - 1


class TestProvidesPort:
    def test_valid_impl(self):
        p = ProvidesPort(CALC, CalcImpl())
        assert p.port_type is CALC

    def test_missing_method_rejected(self):
        class Partial:
            def add(self, x):
                return x

        with pytest.raises(PortError):
            ProvidesPort(CALC, Partial())

    def test_non_callable_member_rejected(self):
        class Shadow:
            add = 5
            sub = 6

        with pytest.raises(PortError):
            ProvidesPort(CALC, Shadow())


class TestUsesPort:
    def test_connect_and_invoke(self):
        uses = UsesPort(CALC)
        assert not uses.connected
        uses.connect(ProvidesPort(CALC, CalcImpl()))
        assert uses.connected
        assert uses.get().add(x=1) == 2

    def test_type_name_mismatch(self):
        uses = UsesPort(OTHER)
        with pytest.raises(PortError):
            uses.connect(ProvidesPort(CALC, CalcImpl()))

    def test_unconnected_get_raises(self):
        with pytest.raises(PortError):
            UsesPort(CALC).get()

    def test_disconnect(self):
        uses = UsesPort(CALC)
        uses.connect(ProvidesPort(CALC, CalcImpl()))
        uses.disconnect()
        assert not uses.connected

    def test_proxy_connection(self):
        class Proxy:
            def add(self, x):
                return "remote"

        uses = UsesPort(CALC)
        uses.connect_proxy(Proxy())
        assert uses.get().add(x=0) == "remote"


class TestBoundPort:
    def test_interface_restriction(self):
        class Wide(CalcImpl):
            def secret(self):
                return "hidden"

        bound = BoundPort(CALC, Wide())
        assert bound.add(x=1) == 2
        with pytest.raises(PortError):
            bound.secret

    def test_port_type_accessor(self):
        bound = BoundPort(CALC, CalcImpl())
        assert bound.port_type.name == "Calc"
