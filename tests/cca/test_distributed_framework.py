"""Distributed framework tests: RMI ports between coupled jobs (Fig. 2)."""

import pytest

from repro.cca import Component
from repro.cca.distributed import DistributedFramework
from repro.cca.sidl import arg, method, port
from repro.errors import PRMIError
from repro.simmpi import NameService, run_coupled

SOLVER_PORT = port(
    "SolverPort",
    method("solve", arg("rhs")),
    method("poke", arg("v"), invocation="independent"),
    method("log", arg("msg"), oneway=True, returns=False),
)


class SolverComponent(Component):
    def __init__(self):
        self.logged = []

    def set_services(self, services):
        super().set_services(services)
        services.add_provides_port("solver", SOLVER_PORT, self)

    def solve(self, rhs):
        # SPMD implementation: each cohort instance scales and reduces
        comm = self.services.comm
        return comm.allreduce(rhs * (comm.rank + 1), op="sum")

    def poke(self, v):
        return v * 10

    def log(self, msg):
        self.logged.append(msg)


class ClientComponent(Component):
    def set_services(self, services):
        super().set_services(services)
        services.register_uses_port("solver", SOLVER_PORT)

    def run(self):
        solver = self.services.get_port("solver")
        return solver.solve(rhs=2.0)


def test_distributed_port_invocation():
    ns = NameService()

    def server_job(comm):
        fw = DistributedFramework(comm, ns)
        fw.create_component("solver", SolverComponent)
        endpoint = fw.serve_connection("solver", "solver", "svc")
        endpoint.serve_one()
        return True

    def client_job(comm):
        fw = DistributedFramework(comm, ns)
        client = fw.create_component("client", ClientComponent)
        fw.connect_remote("client", "solver", "svc")
        return client.run()

    out = run_coupled([
        ("server", 3, server_job, ()),
        ("client", 2, client_job, ()),
    ])
    # server cohort of 3: sum over ranks of 2*(r+1) = 2+4+6
    assert out["client"] == [12.0, 12.0]


def test_independent_method_via_proxy():
    ns = NameService()

    def server_job(comm):
        fw = DistributedFramework(comm, ns)
        fw.create_component("solver", SolverComponent)
        ep = fw.serve_connection("solver", "solver", "svc")
        if comm.rank == 1:
            ep.serve_independent()
        return True

    def client_job(comm):
        fw = DistributedFramework(comm, ns)
        fw.create_component("client", ClientComponent)
        fw.connect_remote("client", "solver", "svc")
        proxy = fw._services["client"].get_port("solver")
        if comm.rank == 0:
            return proxy.poke(_callee=1, v=7)
        return None

    out = run_coupled([
        ("server", 2, server_job, ()),
        ("client", 1, client_job, ()),
    ])
    assert out["client"] == [70]


def test_collective_method_rejects_callee_kwarg():
    ns = NameService()

    def server_job(comm):
        fw = DistributedFramework(comm, ns)
        fw.create_component("solver", SolverComponent)
        ep = fw.serve_connection("solver", "solver", "svc")
        ep.serve_one()
        return True

    def client_job(comm):
        fw = DistributedFramework(comm, ns)
        fw.create_component("client", ClientComponent)
        fw.connect_remote("client", "solver", "svc")
        proxy = fw._services["client"].get_port("solver")
        with pytest.raises(PRMIError):
            proxy.solve(_callee=0, rhs=1.0)
        return proxy.solve(rhs=1.0)

    out = run_coupled([
        ("server", 1, server_job, ()),
        ("client", 1, client_job, ()),
    ])
    assert out["client"] == [1.0]


def test_oneway_log_via_proxy():
    ns = NameService()

    def server_job(comm):
        fw = DistributedFramework(comm, ns)
        solver = fw.create_component("solver", SolverComponent)
        ep = fw.serve_connection("solver", "solver", "svc")
        ep.serve_one()
        return solver.logged

    def client_job(comm):
        fw = DistributedFramework(comm, ns)
        fw.create_component("client", ClientComponent)
        fw.connect_remote("client", "solver", "svc")
        proxy = fw._services["client"].get_port("solver")
        assert proxy.log(msg="checkpoint") is None
        return True

    out = run_coupled([
        ("server", 1, server_job, ()),
        ("client", 1, client_job, ()),
    ])
    assert out["server"] == [["checkpoint"]]


def test_three_components_distributed():
    """Fig. 2's right side: three components, each its own process set,
    chained through RMI ports."""
    DOUBLE_PORT = port("DoublePort", method("double", arg("x")))

    class Doubler(Component):
        def set_services(self, services):
            super().set_services(services)
            services.add_provides_port("double", DOUBLE_PORT, self)

        def double(self, x):
            return 2 * x

    class Middle(Component):
        def set_services(self, services):
            super().set_services(services)
            services.add_provides_port("double", DOUBLE_PORT, self)
            services.register_uses_port("next", DOUBLE_PORT)

        def double(self, x):
            # forwards through the next component, then doubles again
            inner = self.services.get_port("next").double(x=x)
            return 2 * inner

    ns = NameService()

    def comp1(comm):
        fw = DistributedFramework(comm, ns)
        fw.create_component("c1", Middle)
        fw.connect_remote("c1", "next", "c2svc")
        ep = fw.serve_connection("c1", "double", "c1svc")
        ep.serve_one()
        return True

    def comp2(comm):
        fw = DistributedFramework(comm, ns)
        fw.create_component("c2", Doubler)
        ep = fw.serve_connection("c2", "double", "c2svc")
        ep.serve_one()
        return True

    def driver(comm):
        fw = DistributedFramework(comm, ns)
        fw.create_component("drv", ClientComponent)
        fw._services["drv"].register_uses_port("chain", DOUBLE_PORT)
        fw.connect_remote("drv", "chain", "c1svc")
        return fw._services["drv"].get_port("chain").double(x=5)

    out = run_coupled([
        ("c2", 2, comp2, ()),
        ("c1", 2, comp1, ()),
        ("driver", 1, driver, ()),
    ])
    assert out["driver"] == [20]
