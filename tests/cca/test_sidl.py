"""SIDL-lite interface declaration tests."""

import pytest

from repro.cca.sidl import MethodSpec, Param, PortType, arg, method, port
from repro.errors import OneWayReturnError, PRMIError


class TestParam:
    def test_defaults(self):
        p = Param("x")
        assert (p.mode, p.kind) == ("in", "simple")

    def test_bad_mode(self):
        with pytest.raises(PRMIError):
            Param("x", mode="sideways")

    def test_bad_kind(self):
        with pytest.raises(PRMIError):
            Param("x", kind="quantum")


class TestMethodSpec:
    def test_param_classification(self):
        m = method("solve",
                   arg("tol"), arg("field", kind="parallel"),
                   arg("result", mode="out"))
        assert [p.name for p in m.in_params] == ["tol", "field"]
        assert [p.name for p in m.out_params] == ["result"]
        assert [p.name for p in m.parallel_params] == ["field"]

    def test_inout_in_both(self):
        m = method("f", arg("x", mode="inout"))
        assert m.in_params == m.out_params

    def test_oneway_cannot_return(self):
        with pytest.raises(OneWayReturnError):
            method("notify", oneway=True, returns=True)

    def test_oneway_cannot_have_out_args(self):
        with pytest.raises(OneWayReturnError):
            method("notify", arg("x", mode="out"),
                   oneway=True, returns=False)

    def test_valid_oneway(self):
        m = method("notify", arg("event"), oneway=True, returns=False)
        assert m.oneway and not m.returns

    def test_bad_invocation(self):
        with pytest.raises(PRMIError):
            method("f", invocation="simultaneous")


class TestPortType:
    def test_lookup(self):
        pt = port("Solver", method("solve", arg("tol")))
        assert pt.method("solve").name == "solve"
        assert pt.has_method("solve")
        assert not pt.has_method("destroy")

    def test_missing_method(self):
        pt = port("Solver")
        with pytest.raises(PRMIError):
            pt.method("solve")

    def test_duplicate_methods_rejected(self):
        with pytest.raises(PRMIError):
            port("P", method("f"), method("f"))
