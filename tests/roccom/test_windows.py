"""Roccom window registry tests: data/function sharing by permission."""

import numpy as np
import pytest

from repro.dad import DistArrayDescriptor, DistributedArray
from repro.dad.template import block_template
from repro.errors import PermissionError_, WindowError
from repro.roccom import Access, Roccom, Window
from repro.simmpi import run_spmd


def make_window(owner="rocflu", rank=0, nranks=1):
    desc = DistArrayDescriptor(block_template((8,), (nranks,)))
    w = Window("fluid_surface", owner)
    da = DistributedArray.from_global(desc, rank, np.arange(8.0))
    w.add_pane("pressure", da)
    w.add_function("max_pressure",
                   lambda: max(float(a.max())
                               for _, a in da.iter_patches()))
    return w


class TestWindow:
    def test_panes_and_functions(self):
        w = make_window()
        assert w.pane_names() == ["pressure"]
        assert w.function_names() == ["max_pressure"]
        assert w.function("max_pressure")() == 7.0

    def test_duplicates_rejected(self):
        w = make_window()
        with pytest.raises(WindowError):
            w.add_pane("pressure", w.pane("pressure"))
        with pytest.raises(WindowError):
            w.add_function("max_pressure", lambda: 0)

    def test_unknown_members(self):
        w = make_window()
        with pytest.raises(WindowError):
            w.pane("temperature")
        with pytest.raises(WindowError):
            w.function("min_pressure")


class TestRegistryPermissions:
    def _setup(self):
        reg = Roccom()
        reg.register(make_window())
        return reg

    def test_owner_has_full_access(self):
        reg = self._setup()
        h = reg.get_window("rocflu", "fluid_surface")
        np.testing.assert_array_equal(h.read("pressure"), np.arange(8.0))
        h.write("pressure", np.zeros(8))
        assert h.call("max_pressure") == 0.0

    def test_no_grant_no_access(self):
        reg = self._setup()
        with pytest.raises(PermissionError_):
            reg.get_window("rocsolid", "fluid_surface")

    def test_read_only_grant(self):
        reg = self._setup()
        reg.grant("rocflu", "fluid_surface", "rocsolid", Access.READ)
        h = reg.get_window("rocsolid", "fluid_surface")
        assert h.read("pressure")[3] == 3.0
        with pytest.raises(PermissionError_):
            h.write("pressure", np.zeros(8))
        with pytest.raises(PermissionError_):
            h.call("max_pressure")

    def test_call_grant(self):
        reg = self._setup()
        reg.grant("rocflu", "fluid_surface", "rocburn",
                  Access.CALL | Access.READ)
        h = reg.get_window("rocburn", "fluid_surface")
        assert h.call("max_pressure") == 7.0

    def test_only_owner_grants(self):
        reg = self._setup()
        with pytest.raises(PermissionError_):
            reg.grant("rocsolid", "fluid_surface", "rocsolid", Access.FULL)

    def test_revoke(self):
        reg = self._setup()
        reg.grant("rocflu", "fluid_surface", "rocsolid", Access.READ)
        reg.revoke("rocflu", "fluid_surface", "rocsolid")
        with pytest.raises(PermissionError_):
            reg.get_window("rocsolid", "fluid_surface")

    def test_write_visible_to_owner(self):
        """Shared-window updates reach the owner — the coupling path."""
        reg = self._setup()
        reg.grant("rocflu", "fluid_surface", "rocsolid", Access.WRITE)
        h = reg.get_window("rocsolid", "fluid_surface")
        h.write("pressure", np.full(8, 42.0))
        owner = reg.get_window("rocflu", "fluid_surface")
        assert owner.call("max_pressure") == 42.0

    def test_unregister_owner_only(self):
        reg = self._setup()
        with pytest.raises(PermissionError_):
            reg.unregister("rocsolid", "fluid_surface")
        reg.unregister("rocflu", "fluid_surface")
        assert reg.window_names() == []

    def test_duplicate_registration(self):
        reg = self._setup()
        with pytest.raises(WindowError):
            reg.register(make_window())


def test_spmd_window_sharing():
    """Windows in an SPMD job: each rank's instance shares its local
    pane; module functions can reduce over the cohort."""
    def main(comm):
        desc = DistArrayDescriptor(block_template((8,), (comm.size,)))
        da = DistributedArray.from_global(desc, comm.rank, np.arange(8.0))
        reg = Roccom()
        w = Window("surf", "fluid")
        w.add_pane("p", da)
        w.add_function(
            "global_sum",
            lambda: comm.allreduce(
                sum(float(a.sum()) for _, a in da.iter_patches()),
                op="sum"))
        reg.register(w)
        reg.grant("fluid", "surf", "solid", Access.CALL)
        handle = reg.get_window("solid", "surf")
        return handle.call("global_sum")

    results = run_spmd(2, main)
    assert results == [28.0, 28.0]
