"""Baseline comparators for the paper's scalability claims.

The paper's §3 scalability criterion: "communications between the
components is not serialized through a single data management process".
These baselines *are* the serialized designs, so the benchmarks can show
the shape of the win.
"""

from repro.baselines.serial_gather import redistribute_via_root
from repro.baselines.elementwise import redistribute_elementwise

__all__ = ["redistribute_via_root", "redistribute_elementwise"]
