"""Element-at-a-time redistribution: the no-schedule, no-aggregation
baseline.

Each destination element is looked up (owner query on both templates)
and shipped as its own message.  This is what "structureless" data
movement costs when nothing batches contiguous elements — the far end
of the descriptor-compactness spectrum in experiment E7/E8.
"""

from __future__ import annotations

from repro.errors import ScheduleError
from repro.dad.darray import DistributedArray
from repro.dad.descriptor import DistArrayDescriptor
from repro.simmpi.communicator import Communicator
from repro.util.indexing import row_major_coords, shape_volume

ELEMENT_TAG = 82


def redistribute_elementwise(comm: Communicator,
                             src_desc: DistArrayDescriptor,
                             dst_desc: DistArrayDescriptor,
                             *, src_array: DistributedArray | None = None,
                             dst_array: DistributedArray | None = None,
                             src_ranks=None, dst_ranks=None) -> int:
    """Move every element as an individual message.

    Same call shape as :func:`repro.schedule.execute_intra`.  Returns
    elements received at this rank.
    """
    if src_desc.shape != dst_desc.shape:
        raise ScheduleError(
            f"shape mismatch: {src_desc.shape} vs {dst_desc.shape}")
    src_ranks = list(src_ranks if src_ranks is not None
                     else range(src_desc.nranks))
    dst_ranks = list(dst_ranks if dst_ranks is not None
                     else range(dst_desc.nranks))
    me = comm.rank
    total = shape_volume(src_desc.shape)

    if me in src_ranks:
        if src_array is None:
            raise ScheduleError(f"rank {me} is a source but has no src_array")
        s = src_ranks.index(me)
        for flat in range(total):
            point = row_major_coords(flat, src_desc.shape)
            if src_desc.owner_of(point) != s:
                continue
            dst = dst_desc.owner_of(point)
            comm.send((flat, src_array.get(point)),
                      dst_ranks[dst], ELEMENT_TAG)

    received = 0
    if me in dst_ranks:
        if dst_array is None:
            raise ScheduleError(
                f"rank {me} is a destination but has no dst_array")
        d = dst_ranks.index(me)
        expected = dst_desc.local_volume(d)
        for _ in range(expected):
            flat, value = comm.recv(tag=ELEMENT_TAG)
            point = row_major_coords(flat, dst_desc.shape)
            dst_array.set(point, value)
            received += 1
    return received
