"""Gather-to-root redistribution: the serialized anti-pattern.

All source data funnels through one manager rank, which reassembles the
global array and deals out each destination rank's patches.  Correct,
simple — and everything the M×N schedule approach exists to avoid: the
manager's memory holds the whole array and every byte crosses its link
twice.  Experiment E8 measures bytes-through-hottest-rank against the
pairwise schedule executor.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ScheduleError
from repro.dad.darray import DistributedArray
from repro.dad.descriptor import DistArrayDescriptor
from repro.simmpi.communicator import Communicator

GATHER_TAG = 80
DEAL_TAG = 81


def redistribute_via_root(comm: Communicator,
                          src_desc: DistArrayDescriptor,
                          dst_desc: DistArrayDescriptor,
                          *, src_array: DistributedArray | None = None,
                          dst_array: DistributedArray | None = None,
                          src_ranks=None, dst_ranks=None,
                          root: int = 0) -> int:
    """Redistribute by funnelling everything through ``root``.

    Same call shape as :func:`repro.schedule.execute_intra`.  Returns
    the number of elements received at this rank's destination side.
    """
    if src_desc.shape != dst_desc.shape:
        raise ScheduleError(
            f"shape mismatch: {src_desc.shape} vs {dst_desc.shape}")
    src_ranks = list(src_ranks if src_ranks is not None
                     else range(src_desc.nranks))
    dst_ranks = list(dst_ranks if dst_ranks is not None
                     else range(dst_desc.nranks))
    me = comm.rank

    # Phase 1: sources ship every patch to the manager.
    if me in src_ranks:
        if src_array is None:
            raise ScheduleError(f"rank {me} is a source but has no src_array")
        for region, arr in src_array.iter_patches():
            comm.send((region.lo, region.hi, arr), root, GATHER_TAG)

    # Phase 2: the manager assembles the global array and deals patches.
    if me == root:
        global_arr = np.zeros(src_desc.shape, dtype=src_desc.dtype)
        expected = sum(len(src_desc.local_regions(r))
                       for r in range(src_desc.nranks))
        for _ in range(expected):
            lo, hi, data = comm.recv(tag=GATHER_TAG)
            global_arr[tuple(slice(a, b) for a, b in zip(lo, hi))] = data
        for d, comm_rank in enumerate(dst_ranks):
            for region in dst_desc.local_regions(d):
                comm.send(global_arr[region.to_slices()],
                          comm_rank, DEAL_TAG)

    # Phase 3: destinations collect their patches.
    received = 0
    if me in dst_ranks:
        if dst_array is None:
            raise ScheduleError(
                f"rank {me} is a destination but has no dst_array")
        d = dst_ranks.index(me)
        for region in dst_desc.local_regions(d):
            data = comm.recv(source=root, tag=DEAL_TAG)
            dst_array.local_view(region)[...] = np.asarray(data)
            received += region.volume
    return received
