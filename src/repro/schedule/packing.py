"""Message coalescing: pack/unpack per-pair region groups.

The paper's schedule executors move one message per transfer region.
When a (src, dst) rank pair exchanges many regions — the normal case
for cyclic and block-cyclic templates, whose ownership fragments into
one region per block — the per-message overhead dominates.  Following
the message-combining argument of the redistribution literature, the
packed execution path flattens every region a pair exchanges into one
contiguous buffer, so the wire carries exactly one message per
communicating rank pair regardless of how fragmented the templates are.

The region order inside a packed buffer is the schedule's wire order
(ascending region ``lo`` within the pair), which
:meth:`~repro.schedule.plan.CommSchedule.send_groups` and
:meth:`~repro.schedule.plan.CommSchedule.recv_groups` both precompute —
sender and receiver agree on layout without any metadata exchange.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import ScheduleError
from repro.dad.darray import DistributedArray
from repro.util.counters import TRANSPORT_STATS
from repro.util.regions import Region

__all__ = ["pack_regions", "unpack_regions", "region_offsets"]


def region_offsets(regions: Sequence[Region]) -> np.ndarray:
    """Flattened element offset of each region in a packed buffer, with
    the total volume appended (an ``np.int64`` array of length
    ``len(regions) + 1``, so downstream slicing never re-converts)."""
    offsets = np.zeros(len(regions) + 1, dtype=np.int64)
    np.cumsum([r.volume for r in regions], out=offsets[1:])
    return offsets


def pack_regions(array: DistributedArray, regions: Sequence[Region],
                 offsets: Sequence[int] | None = None) -> np.ndarray:
    """Copy ``regions`` of ``array`` into one contiguous 1-D buffer.

    ``offsets`` (as from :func:`region_offsets`, or precomputed on the
    schedule) lets the buffer be allocated once and filled by slice
    assignment instead of concatenation.
    """
    if offsets is None:
        offsets = region_offsets(regions)
    out = np.empty(offsets[-1], dtype=array.descriptor.dtype)
    for r, lo, hi in zip(regions, offsets, offsets[1:]):
        out[lo:hi] = array.local_view(r).reshape(-1)
    # Account the staging copy like the plan path does, so copies-per-
    # byte comparisons between the two pack paths stay apples-to-apples.
    TRANSPORT_STATS.add("bytes_copied", out.nbytes)
    TRANSPORT_STATS.add("alloc_bytes", out.nbytes)
    return out


def unpack_regions(array: DistributedArray, regions: Sequence[Region],
                   buffer: np.ndarray,
                   offsets: Sequence[int] | None = None) -> int:
    """Scatter a packed ``buffer`` back into ``regions`` of ``array``.

    Returns the number of elements written.  Raises
    :class:`~repro.errors.ScheduleError` when the buffer length does not
    match the regions' total volume (a packed/unpacked protocol
    mismatch between sender and receiver).
    """
    if offsets is None:
        offsets = region_offsets(regions)
    buffer = np.asarray(buffer).reshape(-1)
    if buffer.size != offsets[-1]:
        raise ScheduleError(
            f"packed buffer holds {buffer.size} elements, regions expect "
            f"{offsets[-1]} — sender and receiver disagree on packing")
    for r, lo, hi in zip(regions, offsets, offsets[1:]):
        array.local_view(r)[...] = buffer[lo:hi].reshape(r.shape)
    TRANSPORT_STATS.add("bytes_copied", buffer.nbytes)
    return int(offsets[-1])
