"""Communication schedules (paper §2.3).

"A communication schedule for distributed arrays specifies the
destination process of each of the data elements in the source array and
their locations in the destination processes.  This schedule is computed
prior to the transfer operation, and can be reused in consecutive
transfers, and even for different arrays as long as they conform to the
same distribution template."

Two schedule families are provided:

* region schedules (:func:`build_region_schedule`) computed from DAD
  pairs — the CUMULVS/PAWS/InterComm approach, with a fast path for
  pure block templates, and
* linear schedules (:func:`build_linear_schedule`) computed from
  linearization pairs — the Meta-Chaos approach, which also couples
  non-array structures.

Schedules are plain data; :mod:`repro.schedule.executor` moves the bytes
over an intra- or inter-communicator using buffered point-to-point
sends, so "actual transfers can be carried out fully in parallel".
"""

from repro.schedule.plan import CommSchedule, LinearSchedule, TransferItem, LinearItem
from repro.schedule.indexplan import (
    PLAN_STATS,
    LocalIndexer,
    PairPlan,
    RankPlan,
    compile_pair,
    compile_pair_plans,
    compile_rank_plan,
)
from repro.schedule.builder import (
    GLOBAL_CACHE,
    ScheduleCache,
    resolve_cache_max,
    build_allpairs_schedule,
    build_block_schedule,
    build_linear_schedule,
    build_region_schedule,
    build_structured_schedule,
    build_sweep_schedule,
)
from repro.schedule.bufpool import BufferPool
from repro.schedule.delta import (
    DeltaSchedule,
    compile_delta,
    warm_start_plans,
)
from repro.schedule.collplan import (
    CollectivePlan,
    CollectiveReceiver,
    CollectiveSender,
    RoundChunk,
    execute_collective_intra,
    plan_collective_rounds,
)
from repro.schedule.costmodel import (
    CostEstimate,
    choose_planner,
    estimate,
    resolve_planner,
    resolve_round_bytes,
)
from repro.schedule.executor import (
    PersistentReceiver,
    PersistentSender,
    execute_inter,
    execute_intra,
    execute_linear_inter,
)
from repro.schedule.packing import (
    pack_regions,
    region_offsets,
    unpack_regions,
)

__all__ = [
    "CommSchedule",
    "LinearSchedule",
    "TransferItem",
    "LinearItem",
    "ScheduleCache",
    "GLOBAL_CACHE",
    "resolve_cache_max",
    "DeltaSchedule",
    "compile_delta",
    "warm_start_plans",
    "build_region_schedule",
    "build_allpairs_schedule",
    "build_block_schedule",
    "build_structured_schedule",
    "build_sweep_schedule",
    "build_linear_schedule",
    "execute_intra",
    "execute_inter",
    "execute_linear_inter",
    "BufferPool",
    "PersistentSender",
    "PersistentReceiver",
    "CollectivePlan",
    "CollectiveSender",
    "CollectiveReceiver",
    "RoundChunk",
    "plan_collective_rounds",
    "execute_collective_intra",
    "CostEstimate",
    "estimate",
    "choose_planner",
    "resolve_planner",
    "resolve_round_bytes",
    "pack_regions",
    "unpack_regions",
    "region_offsets",
    "PLAN_STATS",
    "LocalIndexer",
    "PairPlan",
    "RankPlan",
    "compile_pair",
    "compile_rank_plan",
    "compile_pair_plans",
]
