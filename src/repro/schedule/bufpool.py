"""Pooled transfer buffers for persistent-channel steady state.

A persistent schedule sends the same pair plans every step, so the pack
buffers it needs have the same sizes every step — allocating them anew
per step (and leaving the old ones to the garbage collector) is pure
overhead.  A :class:`BufferPool` recycles them: a buffer is *loaned*
against a key identifying its pair plan, shipped as an
:class:`~repro.simmpi.payload.OwnedBuffer` whose release callback
returns it to the pool the moment the transport has consumed it
(direct delivery into a preposted destination), and reused on the next
step.  In steady state — every loan released before the next step
needs it — the pool performs **zero allocations**, which
``stats["allocations"]`` lets tests and the CI regression gate assert.

A loan whose buffer is still outstanding (e.g. the receiver was not
preposted, so the buffer itself became the delivered message and now
belongs to the receiver) simply allocates a fresh buffer — graceful
degradation, visible in the counters, never a correctness hazard.
"""

from __future__ import annotations

import threading
from typing import Callable, Hashable

import numpy as np

from repro.util.counters import Counters, TRANSPORT_STATS

__all__ = ["BufferPool"]


class BufferPool:
    """Thread-safe free-lists of staging buffers, keyed by pair plan.

    ``stats`` counters:

    * ``loans`` — total loan calls,
    * ``reuses`` — loans satisfied from a free-list,
    * ``allocations`` / ``allocated_bytes`` — fresh buffers created,
    * ``releases`` — buffers returned by the transport,
    * ``mismatch_discards`` — pooled buffers dropped because their
      shape/dtype no longer matched the key's request (only possible if
      a key is reused across differently-shaped plans).
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._free: dict[Hashable, list[np.ndarray]] = {}
        self.stats = Counters()

    def loan(self, key: Hashable, size: int, dtype,
             ) -> tuple[np.ndarray, Callable[[], None]]:
        """A 1-D buffer of ``size`` elements and its release callback.

        The caller fills the buffer and ships it as an
        :class:`~repro.simmpi.payload.OwnedBuffer` with this release;
        the transport fires the release exactly once when the buffer's
        contents have been consumed without keeping the buffer.
        """
        dtype = np.dtype(dtype)
        self.stats.add("loans")
        buf = None
        with self._lock:
            free = self._free.get(key)
            while free:
                cand = free.pop()
                if cand.size == size and cand.dtype == dtype:
                    buf = cand
                    break
                self.stats.add("mismatch_discards")
        if buf is None:
            buf = np.empty(size, dtype)
            self.stats.add("allocations")
            self.stats.add("allocated_bytes", buf.nbytes)
        else:
            self.stats.add("reuses")
        TRANSPORT_STATS.gauge_add("pool_bytes", buf.nbytes)
        TRANSPORT_STATS.gauge_add("resident_bytes", buf.nbytes)

        def release(buf=buf, key=key):
            TRANSPORT_STATS.gauge_add("pool_bytes", -buf.nbytes)
            TRANSPORT_STATS.gauge_add("resident_bytes", -buf.nbytes)
            with self._lock:
                self._free.setdefault(key, []).append(buf)
            self.stats.add("releases")

        return buf, release

    def pooled_buffers(self) -> int:
        """Buffers currently sitting in free-lists (idle, reusable)."""
        with self._lock:
            return sum(len(v) for v in self._free.values())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"BufferPool({self.pooled_buffers()} pooled, "
                f"stats={self.stats.snapshot()!r})")
