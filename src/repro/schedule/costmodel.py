"""Planner selection: point-to-point vs memory-bounded collective.

The packed p2p executors are latency-optimal (one message per pair, no
round synchronization) but their peak transfer memory is the **sum of
all pair buffers** — on a buffered transport every packed buffer can be
queued at once.  The collective planner (:mod:`repro.schedule.collplan`)
caps peak residency at O(round buffer) per rank, at the price of one
barrier/ack handshake per round.  This module holds the *static* cost
model that picks between them per (schedule, itemsize, world size):

* ``p2p``: peak resident bytes ≈ total wire bytes of the transfer
  (every pair's packed buffer simultaneously loaned + queued in the
  worst case) — the O(pairs) term;
* ``collective``: peak resident bytes ≤
  :meth:`~repro.schedule.collplan.CollectivePlan.resident_ceiling`,
  i.e. twice the sum over sources of their largest single-round send
  load — the O(local shard + round buffer) term;
* ``auto`` picks ``collective`` exactly when the p2p estimate exceeds
  the memory ceiling *and* the collective ceiling actually improves on
  it, else ``p2p`` (small transfers keep the latency-optimal path).

Both sides of a coupled handshake evaluate the model independently, so
every input is deterministic: the schedule (already agreed via the
descriptor handshake), the dtype itemsize, and two knobs read from the
environment at decision time — ``REPRO_ROUND_BYTES`` (per-rank
per-round cap, default 64 KiB) and ``REPRO_MEM_CEILING`` (resident
bytes above which ``auto`` switches, default 1 MiB).  The planner
itself is forced with ``REPRO_PLANNER={p2p,collective,auto}`` or the
``planner=`` argument on :meth:`repro.highlevel.Coupler.open` (explicit
argument wins over the environment; the default is ``p2p``).
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from repro.errors import ScheduleError

__all__ = [
    "PLANNERS",
    "DEFAULT_ROUND_BYTES",
    "DEFAULT_MEM_CEILING",
    "CostEstimate",
    "resolve_planner",
    "resolve_round_bytes",
    "resolve_mem_ceiling",
    "estimate",
    "choose_planner",
]

PLANNERS = ("p2p", "collective", "auto")

#: Per-rank, per-round byte cap for collective round plans (64 KiB —
#: large enough that pack/copy dominates round overhead, small enough
#: that a handful of rounds cover typical shards).
DEFAULT_ROUND_BYTES = 1 << 16

#: Resident-byte threshold above which ``auto`` abandons p2p (1 MiB).
DEFAULT_MEM_CEILING = 1 << 20


def resolve_planner(planner: str | None = None) -> str:
    """The effective planner name: explicit argument beats
    ``REPRO_PLANNER`` beats the ``p2p`` default."""
    if planner is None:
        planner = os.environ.get("REPRO_PLANNER", "p2p")
    planner = planner.lower()
    if planner not in PLANNERS:
        raise ScheduleError(
            f"unknown planner {planner!r}: expected one of {PLANNERS}")
    return planner


def resolve_round_bytes(round_bytes: int | None = None) -> int:
    """The effective per-rank per-round cap (argument, then
    ``REPRO_ROUND_BYTES``, then the default)."""
    if round_bytes is None:
        round_bytes = int(os.environ.get("REPRO_ROUND_BYTES",
                                         DEFAULT_ROUND_BYTES))
    round_bytes = int(round_bytes)
    if round_bytes <= 0:
        raise ScheduleError(f"round_bytes must be positive, got "
                            f"{round_bytes}")
    return round_bytes


def resolve_mem_ceiling(mem_ceiling: int | None = None) -> int:
    """The effective auto-switch threshold (argument, then
    ``REPRO_MEM_CEILING``, then the default)."""
    if mem_ceiling is None:
        mem_ceiling = int(os.environ.get("REPRO_MEM_CEILING",
                                         DEFAULT_MEM_CEILING))
    mem_ceiling = int(mem_ceiling)
    if mem_ceiling <= 0:
        raise ScheduleError(f"mem_ceiling must be positive, got "
                            f"{mem_ceiling}")
    return mem_ceiling


@dataclass(frozen=True, slots=True)
class CostEstimate:
    """The model's static view of one transfer under both planners."""

    pair_count: int
    total_bytes: int        # wire bytes of one full transfer
    p2p_peak_bytes: int     # worst-case resident bytes under p2p
    coll_peak_bytes: int    # static resident ceiling under collective
    nrounds: int            # rounds the collective plan needs
    chosen: str             # "p2p" or "collective"

    @property
    def savings_ratio(self) -> float:
        """How much smaller the collective ceiling is (>1 means the
        collective plan is the tighter bound)."""
        if self.coll_peak_bytes == 0:
            return float("inf") if self.p2p_peak_bytes else 1.0
        return self.p2p_peak_bytes / self.coll_peak_bytes


def estimate(schedule, itemsize: int, *, round_bytes: int | None = None,
             mem_ceiling: int | None = None) -> CostEstimate:
    """Evaluate both planners for ``schedule`` at ``itemsize`` and pick
    one under the ``auto`` rule.  Pure: depends only on the schedule,
    the itemsize, and the resolved knobs, so all ranks and both coupled
    sides agree without communicating."""
    round_bytes = resolve_round_bytes(round_bytes)
    mem_ceiling = resolve_mem_ceiling(mem_ceiling)
    itemsize = int(itemsize)
    coll = schedule.collective_plan(itemsize, round_bytes)
    total = schedule.element_count * itemsize
    # Buffered-transport worst case: every pair's packed buffer loaned
    # and queued at once (the A7/A9 one-shot shape).
    p2p_peak = 2 * total
    coll_peak = coll.resident_ceiling()
    chosen = "collective" if (p2p_peak > mem_ceiling
                              and coll_peak < p2p_peak) else "p2p"
    return CostEstimate(pair_count=schedule.pair_count,
                        total_bytes=total,
                        p2p_peak_bytes=p2p_peak,
                        coll_peak_bytes=coll_peak,
                        nrounds=coll.nrounds,
                        chosen=chosen)


def choose_planner(schedule, itemsize: int, *,
                   planner: str | None = None,
                   round_bytes: int | None = None,
                   mem_ceiling: int | None = None) -> str:
    """Resolve ``planner`` to a concrete execution strategy ("p2p" or
    "collective"), running the cost model when it is ``auto``."""
    planner = resolve_planner(planner)
    if planner != "auto":
        return planner
    return estimate(schedule, itemsize, round_bytes=round_bytes,
                    mem_ceiling=mem_ceiling).chosen
