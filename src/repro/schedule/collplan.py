"""Memory-bounded collective round plans for redistribution schedules.

The packed executors (:mod:`repro.schedule.executor`) ship one coalesced
message per communicating (src, dst) rank pair.  That minimizes message
count, but on a buffered transport every pair's buffer can be in flight
at once, so peak transfer memory grows **O(pairs)** — at large fan-out
it blows past any fixed ceiling.  Following Rink et al.'s
memory-efficient redistribution-through-collectives construction (arXiv
2112.01075), this module rewrites a compiled :class:`~repro.schedule.
plan.CommSchedule`/:class:`~repro.schedule.plan.LinearSchedule` into a
short sequence of ``alltoallv`` **rounds** with a *statically provable*
peak-bytes-resident bound:

* every pair's wire-order element range is split into chunks of at most
  ``round_bytes`` bytes (:class:`RoundChunk` — pure data: ``(src, dst,
  lo, hi)`` offsets into the pair's packed stream, realized at execution
  time by :meth:`~repro.schedule.indexplan.PairPlan.sub` sub-plans of
  the schedule's cached gather/scatter plans);
* chunks are assigned to rounds by a deterministic first-fit under a
  per-rank, per-round cap of ``round_bytes`` sent *and* received, so
  within any round no rank stages more than one round buffer each way;
* rounds are executed one at a time (a tree barrier between rounds
  intra-job; a per-round acknowledgement handshake across an
  intercommunicator), so at most one round's bytes are ever in flight.

Peak resident transfer memory is therefore bounded by **O(local shard +
round buffer)** per rank — independent of the pair count — and
:meth:`CollectivePlan.resident_ceiling` computes the exact process-wide
bound the A10 benchmark gates in CI.  Whether a given transfer *should*
pay the extra round synchronization is the cost model's call
(:mod:`repro.schedule.costmodel`, ``REPRO_PLANNER={p2p,collective,
auto}``).

Plans are pure functions of (schedule groups, itemsize, round_bytes);
:meth:`CommSchedule.collective_plan` memoizes them on the schedule next
to the index plans, so both sides of a coupled run (and every rank of
an SPMD job) derive the identical round structure with no negotiation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ScheduleError
from repro.schedule.bufpool import BufferPool
from repro.simmpi import payload

__all__ = [
    "RoundChunk",
    "CollectivePlan",
    "plan_collective_rounds",
    "execute_collective_intra",
    "CollectiveSender",
    "CollectiveReceiver",
]

#: Tag offset of the round-acknowledgement stream relative to the data
#: tag (both are scoped by the channel's intercommunicator context).
ACK_TAG_OFFSET = 1


@dataclass(frozen=True, slots=True)
class RoundChunk:
    """Elements ``[lo, hi)`` of pair (src, dst)'s wire-order stream,
    shipped in one round."""

    src: int
    dst: int
    lo: int
    hi: int

    @property
    def size(self) -> int:
        return self.hi - self.lo


class CollectivePlan:
    """A schedule decomposed into capped ``alltoallv`` rounds.

    Pure data plus derived load tables; the proofs in
    :func:`repro.verify.schedule.verify_collective_plan` and the
    executors below consume it.  ``rounds[r]`` holds that round's chunks
    sorted by ``(src, dst, lo)``.
    """

    def __init__(self, rounds: list[list[RoundChunk]], *,
                 itemsize: int, round_bytes: int,
                 src_nranks: int, dst_nranks: int):
        self.rounds: tuple[tuple[RoundChunk, ...], ...] = tuple(
            tuple(sorted(r, key=lambda c: (c.src, c.dst, c.lo)))
            for r in rounds)
        self.itemsize = int(itemsize)
        self.round_bytes = int(round_bytes)
        self.src_nranks = src_nranks
        self.dst_nranks = dst_nranks
        # per-round per-rank byte loads (the static bound's evidence)
        self._send_bytes: list[dict[int, int]] = []
        self._recv_bytes: list[dict[int, int]] = []
        for chunks in self.rounds:
            sb: dict[int, int] = {}
            rb: dict[int, int] = {}
            for c in chunks:
                nb = c.size * self.itemsize
                sb[c.src] = sb.get(c.src, 0) + nb
                rb[c.dst] = rb.get(c.dst, 0) + nb
            self._send_bytes.append(sb)
            self._recv_bytes.append(rb)

    # -- shape -------------------------------------------------------------

    @property
    def nrounds(self) -> int:
        return len(self.rounds)

    @property
    def chunk_count(self) -> int:
        return sum(len(r) for r in self.rounds)

    @property
    def element_count(self) -> int:
        return sum(c.size for r in self.rounds for c in r)

    @property
    def nbytes(self) -> int:
        return self.element_count * self.itemsize

    # -- static memory bound -------------------------------------------------

    @property
    def peak_send_bytes(self) -> int:
        """Largest per-rank send load of any round (≤ ``round_bytes``
        whenever a single element fits one round)."""
        return max((b for sb in self._send_bytes for b in sb.values()),
                   default=0)

    @property
    def peak_recv_bytes(self) -> int:
        """Largest per-rank receive load of any round."""
        return max((b for rb in self._recv_bytes for b in rb.values()),
                   default=0)

    def send_bytes(self, rnd: int, src: int) -> int:
        return self._send_bytes[rnd].get(src, 0)

    def recv_bytes(self, rnd: int, dst: int) -> int:
        return self._recv_bytes[rnd].get(dst, 0)

    def inflight_bound(self) -> int:
        """Process-wide bound on bytes simultaneously in flight: every
        source rank holds at most its largest single round's send load
        (round r+1 is not packed until round r is acknowledged/
        barriered)."""
        peaks: dict[int, int] = {}
        for sb in self._send_bytes:
            for src, b in sb.items():
                if b > peaks.get(src, 0):
                    peaks[src] = b
        return sum(peaks.values())

    def resident_ceiling(self) -> int:
        """Static ceiling on gauge-counted resident transfer bytes for
        one execution of this plan (process-wide; all rank threads of
        the threads backend included).

        At any instant each source holds at most one round's send load,
        counted at most twice by the conservative gauges (once on loan
        from the pool, once queued in the destination mailbox until
        consumed) — hence ``2 * inflight_bound()``.  Protocol messages
        (acks, barrier tokens) are byte-counted by the caller's slack,
        not here.
        """
        return 2 * self.inflight_bound()

    # -- per-rank views (executor queries) -----------------------------------

    def sends_in(self, rnd: int, src: int) -> list[RoundChunk]:
        """Round ``rnd``'s chunks sent by schedule source rank ``src``,
        in (dst, lo) order."""
        return [c for c in self.rounds[rnd] if c.src == src]

    def recvs_in(self, rnd: int, dst: int) -> list[RoundChunk]:
        """Round ``rnd``'s chunks received by schedule destination rank
        ``dst``, in (src, lo) order."""
        return sorted((c for c in self.rounds[rnd] if c.dst == dst),
                      key=lambda c: (c.src, c.lo))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"CollectivePlan({self.nrounds} rounds, "
                f"{self.chunk_count} chunks, "
                f"peak {self.peak_send_bytes}B send / "
                f"{self.peak_recv_bytes}B recv per rank-round)")


def plan_collective_rounds(schedule, *, itemsize: int,
                           round_bytes: int) -> CollectivePlan:
    """Decompose ``schedule`` into capped collective rounds.

    Works on any schedule exposing ``send_groups(src)`` /
    ``src_nranks`` / ``dst_nranks`` (both :class:`~repro.schedule.plan.
    CommSchedule` and :class:`~repro.schedule.plan.LinearSchedule`).
    Deterministic: pairs are visited in (src, dst) order and chunks
    first-fit into the earliest round whose source and destination caps
    both still hold, never earlier than the pair's previous chunk —
    every caller derives the same plan with no communication.
    """
    itemsize = int(itemsize)
    round_bytes = int(round_bytes)
    if itemsize <= 0 or round_bytes <= 0:
        raise ScheduleError(
            f"itemsize ({itemsize}) and round_bytes ({round_bytes}) "
            f"must be positive")
    # Cap in elements; a single element larger than round_bytes still
    # moves (one element per rank per round — the bound degrades to one
    # item, never breaks).
    cap = max(1, round_bytes // itemsize)
    rounds: list[list[RoundChunk]] = []
    send_load: list[dict[int, int]] = []
    recv_load: list[dict[int, int]] = []
    for src in range(schedule.src_nranks):
        for dst, _items, offsets in schedule.send_groups(src):
            size = int(offsets[-1])
            pos = 0
            nxt = 0  # chunks of one pair stay in wire order across rounds
            while pos < size:
                n = min(cap, size - pos)
                r = nxt
                while True:
                    if r == len(rounds):
                        rounds.append([])
                        send_load.append({})
                        recv_load.append({})
                    if (send_load[r].get(src, 0) + n <= cap
                            and recv_load[r].get(dst, 0) + n <= cap):
                        break
                    r += 1
                rounds[r].append(RoundChunk(src, dst, pos, pos + n))
                send_load[r][src] = send_load[r].get(src, 0) + n
                recv_load[r][dst] = recv_load[r].get(dst, 0) + n
                nxt = r + 1
                pos += n
    return CollectivePlan(rounds, itemsize=itemsize,
                          round_bytes=round_bytes,
                          src_nranks=schedule.src_nranks,
                          dst_nranks=schedule.dst_nranks)


# -- intra-job execution: alltoallv rounds over the tree collectives ---------

def _send_segments(plan, coll: CollectivePlan, rnd: int, s: int,
                   order_of) -> list[tuple[int, object, int, int]]:
    """Round ``rnd``'s send segments for source rank ``s``:
    ``(dst, sub_plan, lo, hi)`` sorted by the caller-supplied wire order
    of the destination (comm rank intra-job, peer rank inter-job)."""
    pairs = {pp.peer: pp for pp in plan.pairs}
    segs = [(c.dst, pairs[c.dst].sub(c.lo, c.hi), c.lo, c.hi)
            for c in coll.sends_in(rnd, s)]
    segs.sort(key=lambda t: (order_of(t[0]), t[2]))
    return segs


def _recv_segments(plan, coll: CollectivePlan, rnd: int, d: int,
                   order_of) -> list[tuple[int, object, int, int]]:
    """Round ``rnd``'s receive segments for destination rank ``d``,
    sorted to match the concatenation order of the round's arrivals."""
    pairs = {pp.peer: pp for pp in plan.pairs}
    segs = [(c.src, pairs[c.src].sub(c.lo, c.hi), c.lo, c.hi)
            for c in coll.recvs_in(rnd, d)]
    segs.sort(key=lambda t: (order_of(t[0]), t[2]))
    return segs


def execute_collective_intra(schedule, comm, coll: CollectivePlan,
                             *, src_array, dst_array,
                             src_ranks, dst_ranks, pool=None) -> int:
    """Run a collective round plan inside one communicator.

    Collective over **all** ranks of ``comm``: every rank calls
    ``alltoallv`` (with statically known counts — no count-exchange
    round trip) plus a tree ``barrier`` once per round, so rounds are
    globally synchronized and at most one round's bytes are in flight.
    Round send buffers are loaned from ``pool`` (sized per round, so a
    replayed schedule reuses them with zero steady-state allocations).
    Returns the number of elements this rank received.
    """
    src_pos = {rank: i for i, rank in enumerate(src_ranks)}
    dst_pos = {rank: i for i, rank in enumerate(dst_ranks)}
    me = comm.rank
    pool = pool if pool is not None else BufferPool()
    dtype = None
    send_plan = recv_plan = None
    s = src_pos.get(me)
    d = dst_pos.get(me)
    if s is not None:
        if src_array is None:
            raise ScheduleError(f"rank {me} is a source but has no src_array")
        dtype = np.dtype(src_array.descriptor.dtype)
        send_plan = schedule.send_plan(
            s, src_array.descriptor.local_regions(s))
    if d is not None:
        if dst_array is None:
            raise ScheduleError(
                f"rank {me} is a destination but has no dst_array")
        dtype = np.dtype(dst_array.descriptor.dtype)
        recv_plan = schedule.recv_plan(
            d, dst_array.descriptor.local_regions(d))
    if dtype is None and coll.nrounds:
        raise ScheduleError(
            f"rank {me} joins collective-planner execution with neither "
            f"a source nor a destination array — it cannot size the "
            f"round buffers (every comm rank must hold one side)")

    received = 0
    for rnd in range(coll.nrounds):
        sendcounts = [0] * comm.size
        # pack in destination comm-rank order (alltoallv's sdispls order)
        segs = (_send_segments(send_plan, coll, rnd, s,
                               lambda i: dst_ranks[i])
                if s is not None else [])
        total = sum(hi - lo for _, _, lo, hi in segs)
        if total:
            buf, release = pool.loan(("collsend", me, rnd), total, dtype)
        else:
            buf, release = np.empty(0, dtype=dtype), (lambda: None)
        flat = src_array.flat_local() if s is not None else None
        off = 0
        for dst, sub, lo, hi in segs:
            n = hi - lo
            sub.gather_into(flat, buf[off:off + n])
            sendcounts[dst_ranks[dst]] += n
            off += n
        recvcounts = [0] * comm.size
        if d is not None:
            for c in coll.recvs_in(rnd, d):
                recvcounts[src_ranks[c.src]] += c.size
        arrived = comm.alltoallv(buf[:total], sendcounts,
                                 recvcounts=recvcounts)
        release()
        if d is not None and arrived.size:
            rflat = dst_array.flat_local()
            rsegs = _recv_segments(recv_plan, coll, rnd, d,
                                   lambda i: src_ranks[i])
            off = 0
            for _src, sub, lo, hi in rsegs:
                n = hi - lo
                received += sub.scatter(rflat, arrived[off:off + n])
                off += n
        # round barrier: no rank starts packing round r+1 until every
        # rank has drained round r — the static bound's lockstep.
        comm.barrier()
    return received


# -- inter-job execution: persistent round engines ----------------------------

class CollectiveSender:
    """Source half of a memory-bounded persistent channel.

    Per round, packs this rank's chunks into one pooled buffer per
    destination (realized by cached :meth:`~repro.schedule.indexplan.
    PairPlan.sub` sub-plans), ships each as an :class:`~repro.simmpi.
    payload.OwnedBuffer` (move semantics — the receiver's preposted sink
    scatters it straight into final storage and the release returns the
    buffer to the pool), and **waits for the receivers' round
    acknowledgements before packing the next round** — the in-flight
    bound that makes :meth:`CollectivePlan.resident_ceiling` hold.

    Note the coupling this buys its bound with (same trade as the RMA
    tier): a push does not return until the consumer has pulled the
    step's rounds, so two programs that each push before pulling a
    reverse channel must keep that channel point-to-point.
    """

    def __init__(self, schedule, coll: CollectivePlan, inter, array,
                 *, tag: int, rank: int | None = None,
                 peer_map: list[int] | None = None,
                 pool: BufferPool | None = None):
        me = rank if rank is not None else inter.rank
        self._inter = inter
        self._tag = tag
        self._ack_tag = tag + ACK_TAG_OFFSET
        self._peer_map = peer_map
        self._me = me
        self._array = array
        self._coll = coll
        self._dtype = np.dtype(array.descriptor.dtype)
        self.pool = pool if pool is not None else BufferPool()
        plan = schedule.send_plan(me, array.descriptor.local_regions(me))
        # per round: [(dst, [(sub_plan, lo, hi), ...], total_elems)]
        self._round_sends: list[list[tuple[int, list, int]]] = []
        for rnd in range(coll.nrounds):
            segs = _send_segments(plan, coll, rnd, me,
                                  lambda i: self._peer(i))
            by_dst: dict[int, list] = {}
            for dst, sub, lo, hi in segs:
                by_dst.setdefault(dst, []).append((sub, lo, hi))
            self._round_sends.append(
                [(dst, subs, sum(hi - lo for _, lo, hi in subs))
                 for dst, subs in sorted(by_dst.items(),
                                         key=lambda kv: self._peer(kv[0]))])
        self._awaiting: list[int] = []

    def _peer(self, r: int) -> int:
        return self._peer_map[r] if self._peer_map is not None else r

    def _wait_acks(self) -> None:
        awaiting, self._awaiting = self._awaiting, []
        for dst in awaiting:
            self._inter.recv(source=self._peer(dst), tag=self._ack_tag)

    def send_round(self, rnd: int) -> int:
        """Pack and post round ``rnd``'s messages (after draining the
        previous round's acknowledgements); returns elements sent."""
        self._wait_acks()
        flat = self._array.flat_local()
        moved = 0
        for dst, subs, total in self._round_sends[rnd]:
            buf, release = self.pool.loan(
                ("collsend", self._me, rnd, dst), total, self._dtype)
            off = 0
            for sub, lo, hi in subs:
                n = hi - lo
                sub.gather_into(flat, buf[off:off + n])
                off += n
            self._inter.send(payload.OwnedBuffer(buf, release=release),
                             dest=self._peer(dst), tag=self._tag)
            self._awaiting.append(dst)
            moved += total
        return moved

    def finish(self) -> None:
        """Drain the final round's acknowledgements — the step's memory
        is fully released when this returns."""
        self._wait_acks()

    def step(self) -> int:
        """Send one full snapshot: every round, ack-synchronized."""
        moved = 0
        for rnd in range(self._coll.nrounds):
            moved += self.send_round(rnd)
        self.finish()
        return moved

    def close(self) -> None:
        """No persistent resources beyond the pool; kept for engine
        interface symmetry."""
        self._awaiting = []


class CollectiveReceiver:
    """Destination half of a memory-bounded persistent channel.

    Per round, preposts one recv-into-destination slot per source (the
    sink scatters the round buffer through the pair's sub-plans straight
    into the array's consolidated base — no staging copy), waits for all
    of them, then acknowledges each source so it may pack the next
    round."""

    def __init__(self, schedule, coll: CollectivePlan, inter, array,
                 *, tag: int, rank: int | None = None,
                 peer_map: list[int] | None = None):
        me = rank if rank is not None else inter.rank
        self._inter = inter
        self._tag = tag
        self._ack_tag = tag + ACK_TAG_OFFSET
        self._peer_map = peer_map
        self._me = me
        self._array = array
        self._coll = coll
        plan = schedule.recv_plan(me, array.descriptor.local_regions(me))
        # per round: [(src, [(sub_plan, lo, hi), ...], total_elems)]
        self._round_recvs: list[list[tuple[int, list, int]]] = []
        for rnd in range(coll.nrounds):
            segs = _recv_segments(plan, coll, rnd, me,
                                  lambda i: self._peer(i))
            by_src: dict[int, list] = {}
            for src, sub, lo, hi in segs:
                by_src.setdefault(src, []).append((sub, lo, hi))
            self._round_recvs.append(
                [(src, subs, sum(hi - lo for _, lo, hi in subs))
                 for src, subs in sorted(by_src.items(),
                                         key=lambda kv: self._peer(kv[0]))])

    def _peer(self, r: int) -> int:
        return self._peer_map[r] if self._peer_map is not None else r

    def _sink(self, subs, total):
        flat = self._array.flat_local()

        def sink(values) -> int:
            vals = np.asarray(values).reshape(-1)
            if vals.size != total:
                raise ScheduleError(
                    f"round buffer holds {vals.size} elements, plan "
                    f"expects {total}")
            off = 0
            done = 0
            for sub, lo, hi in subs:
                n = hi - lo
                done += sub.scatter(flat, vals[off:off + n])
                off += n
            return done

        return sink

    def recv_round(self, rnd: int) -> int:
        """Prepost, complete, and acknowledge round ``rnd``; returns
        elements received."""
        slots = [
            (src, self._inter.prepost_recv(self._sink(subs, total),
                                           source=self._peer(src),
                                           tag=self._tag))
            for src, subs, total in self._round_recvs[rnd]]
        received = 0
        for src, slot in slots:
            received += slot.wait()
            self._inter.send(None, dest=self._peer(src), tag=self._ack_tag)
        return received

    def step(self) -> int:
        """Receive one full snapshot: every round, in order."""
        return sum(self.recv_round(rnd)
                   for rnd in range(self._coll.nrounds))

    def close(self) -> None:
        """Kept for engine interface symmetry."""
