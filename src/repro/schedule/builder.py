"""Schedule construction: descriptor intersection, fast paths, caching.

The general builder intersects every source ownership region with every
destination ownership region.  For the ubiquitous pure-block case a
closed-form fast path enumerates only the overlapping blocks, which the
ablation benchmark compares against the general path.

:class:`ScheduleCache` implements the reuse the paper calls out:
schedules are keyed by the *template pair*, so transferring a second
array with the same decomposition (or the same array again) skips the
build entirely.
"""

from __future__ import annotations

from itertools import product
from typing import Callable

from repro.errors import ScheduleError
from repro.dad.axis import Block
from repro.dad.descriptor import DistArrayDescriptor
from repro.dad.template import CartesianTemplate
from repro.linearize.linearization import Linearization, Run
from repro.schedule.plan import (
    CommSchedule,
    LinearItem,
    LinearSchedule,
    TransferItem,
)
from repro.util.regions import Region


def build_region_schedule(src: DistArrayDescriptor,
                          dst: DistArrayDescriptor,
                          *, force_general: bool = False) -> CommSchedule:
    """Build the communication schedule moving ``src``'s data into
    ``dst``'s decomposition.

    Dispatches to the block fast path when both sides are pure block
    templates (unless ``force_general``); otherwise runs the general
    all-pairs region intersection.
    """
    if src.shape != dst.shape:
        raise ScheduleError(
            f"cannot build schedule between shapes {src.shape} and "
            f"{dst.shape}")
    if not force_general and _is_pure_block(src) and _is_pure_block(dst):
        return build_block_schedule(src, dst)
    items: list[TransferItem] = []
    dst_regions = [(r, reg) for r in range(dst.nranks)
                   for reg in dst.local_regions(r)]
    for s in range(src.nranks):
        for sreg in src.local_regions(s):
            for d, dreg in dst_regions:
                inter = sreg.intersect(dreg)
                if inter is not None:
                    items.append(TransferItem(s, d, inter))
    return CommSchedule(items, src.nranks, dst.nranks)


def _is_pure_block(desc: DistArrayDescriptor) -> bool:
    t = desc.template
    return (isinstance(t, CartesianTemplate)
            and all(type(a) is Block for a in t.axes))


def build_block_schedule(src: DistArrayDescriptor,
                         dst: DistArrayDescriptor) -> CommSchedule:
    """Closed-form schedule for pure block × pure block templates.

    For each destination rank's block, the overlapping source blocks per
    axis are ``[lo // bs, (hi - 1) // bs]`` — no search over ranks, so
    the build cost is proportional to the number of actual transfers.
    """
    st = src.template
    dt = dst.template
    if not (_is_pure_block(src) and _is_pure_block(dst)):
        raise ScheduleError("block fast path requires pure block templates")
    assert isinstance(st, CartesianTemplate) and isinstance(dt, CartesianTemplate)
    items: list[TransferItem] = []
    for d in range(dt.nranks):
        for dreg in dt.owner_regions(d):
            # Per axis, the source process-coordinate range overlapping dreg.
            axis_ranges = []
            for ax, (lo, hi) in enumerate(zip(dreg.lo, dreg.hi)):
                bs = st.axes[ax].block
                axis_ranges.append(range(lo // bs, (hi - 1) // bs + 1))
            for coords in product(*axis_ranges):
                s = st.proc_rank(coords)
                sreg_lo = tuple(c * st.axes[ax].block
                                for ax, c in enumerate(coords))
                sreg_hi = tuple(
                    min((c + 1) * st.axes[ax].block, st.shape[ax])
                    for ax, c in enumerate(coords))
                inter = Region(sreg_lo, sreg_hi).intersect(dreg)
                if inter is not None:
                    items.append(TransferItem(s, d, inter))
    return CommSchedule(items, src.nranks, dst.nranks)


def build_linear_schedule(src: Linearization,
                          dst: Linearization) -> LinearSchedule:
    """Intersect two linearizations' run lists by a sorted merge sweep.

    Cost is O((Rs + Rd) log) in the total number of runs, independent of
    element count — but the number of runs itself is what a
    "structureless" representation inflates (experiment E7).
    """
    if src.total != dst.total:
        raise ScheduleError(
            f"linear spaces differ: {src.total} vs {dst.total}")
    src_runs = sorted(
        ((run.lo, run.hi, r) for r in range(src.nranks)
         for run in src.runs(r)))
    dst_runs = sorted(
        ((run.lo, run.hi, r) for r in range(dst.nranks)
         for run in dst.runs(r)))
    items: list[LinearItem] = []
    i = j = 0
    while i < len(src_runs) and j < len(dst_runs):
        slo, shi, s = src_runs[i]
        dlo, dhi, d = dst_runs[j]
        lo, hi = max(slo, dlo), min(shi, dhi)
        if hi > lo:
            items.append(LinearItem(s, d, Run(lo, hi)))
        if shi <= dhi:
            i += 1
        if dhi <= shi:
            j += 1
    return LinearSchedule(items, src.nranks, dst.nranks)


class ScheduleCache:
    """Template-pair keyed schedule cache with hit statistics.

    Implements §2.3's reuse: "can be reused in consecutive transfers,
    and even for different arrays as long as they conform to the same
    distribution template".
    """

    def __init__(self, builder: Callable[..., CommSchedule] = build_region_schedule):
        self._builder = builder
        self._cache: dict[tuple, CommSchedule] = {}
        self.hits = 0
        self.misses = 0

    def get(self, src: DistArrayDescriptor,
            dst: DistArrayDescriptor, **kwargs) -> CommSchedule:
        key = (src.cache_key(), dst.cache_key())
        if key in self._cache:
            self.hits += 1
            return self._cache[key]
        self.misses += 1
        schedule = self._builder(src, dst, **kwargs)
        self._cache[key] = schedule
        return schedule

    def __len__(self) -> int:
        return len(self._cache)

    def clear(self) -> None:
        self._cache.clear()
        self.hits = self.misses = 0
