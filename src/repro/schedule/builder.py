"""Schedule construction: descriptor intersection, fast paths, caching.

Three general-purpose engines build region schedules, ordered from most
to least structure-aware:

* :func:`build_structured_schedule` — closed-form enumeration for
  Cartesian templates whose axes are Block / Cyclic / BlockCyclic /
  Collapsed / GeneralizedBlock.  For every ownership region of the
  unstructured side, the overlapping pieces of the structured side are
  computed by per-axis index arithmetic, so the build cost is
  proportional to the number of actual transfers.
* :func:`build_sweep_schedule` — a sorted-interval sweep along the
  first axis (the N-dimensional generalization of the merge sweep in
  :func:`build_linear_schedule`) that enumerates only the region pairs
  whose leading intervals overlap, then clips all surviving candidates
  in one vectorized NumPy pass (:func:`repro.util.regions.intersect_boxes`).
  Cost is O((S + D) log(S + D) + overlaps) instead of O(S·D).
* :func:`build_allpairs_schedule` — the original all-pairs loop, kept
  only as the baseline the scaling benchmark measures against.

:func:`build_region_schedule` dispatches: structured when either side
qualifies, sweep otherwise, all-pairs never (unless asked explicitly).

:class:`ScheduleCache` implements the reuse the paper calls out:
schedules are keyed by the *template pair* (plus the builder options),
so transferring a second array with the same decomposition (or the same
array again) skips the build entirely.
"""

from __future__ import annotations

import heapq
import os
import threading
from collections import OrderedDict
from itertools import product
from typing import Callable, Iterator, Sequence

import numpy as np

from repro.errors import ScheduleError
from repro.dad.axis import (
    AxisDistribution,
    Block,
    BlockCyclic,
    Collapsed,
    GeneralizedBlock,
)
from repro.dad.descriptor import DistArrayDescriptor
from repro.dad.template import CartesianTemplate
from repro.linearize.linearization import Linearization, Run
from repro.schedule.plan import (
    CommSchedule,
    LinearItem,
    LinearSchedule,
    TransferItem,
)
from repro.util.regions import Region, intersect_boxes


def build_region_schedule(src: DistArrayDescriptor,
                          dst: DistArrayDescriptor,
                          *, force_general: bool = False) -> CommSchedule:
    """Build the communication schedule moving ``src``'s data into
    ``dst``'s decomposition.

    Dispatches to the closed-form structured fast path when either side
    is a Cartesian template of structured axes (unless
    ``force_general``); otherwise — and when ``force_general`` is set —
    runs the general sweep-line builder.  All engines produce
    element-identical schedules.
    """
    if src.shape != dst.shape:
        raise ScheduleError(
            f"cannot build schedule between shapes {src.shape} and "
            f"{dst.shape}")
    if not force_general and (_is_structured(src) or _is_structured(dst)):
        return build_structured_schedule(src, dst)
    return build_sweep_schedule(src, dst)


# -- structured fast path -----------------------------------------------------

#: Axis types whose ownership pieces over an interval have a closed form.
#: Cyclic is a BlockCyclic subclass and needs no separate entry.
_STRUCTURED_AXES = (Block, BlockCyclic, Collapsed, GeneralizedBlock)


def _is_structured(desc: DistArrayDescriptor) -> bool:
    t = desc.template
    return (isinstance(t, CartesianTemplate)
            and all(isinstance(a, _STRUCTURED_AXES) for a in t.axes))


def _is_pure_block(desc: DistArrayDescriptor) -> bool:
    t = desc.template
    return (isinstance(t, CartesianTemplate)
            and all(type(a) is Block for a in t.axes))


def _axis_pieces(axis: AxisDistribution, lo: int,
                 hi: int) -> list[tuple[int, int, int]]:
    """Owned pieces of ``[lo, hi)`` as ``(proc, piece_lo, piece_hi)``.

    Closed-form per axis type: no search over processes, only over the
    blocks actually overlapping the query interval, so the total work is
    proportional to the number of pieces returned.
    """
    if isinstance(axis, Collapsed):
        return [(0, lo, hi)]
    if isinstance(axis, Block):
        b = axis.block
        return [(c, max(lo, c * b), min(hi, (c + 1) * b))
                for c in range(lo // b, (hi - 1) // b + 1)]
    if isinstance(axis, BlockCyclic):  # includes Cyclic
        b, p = axis.block, axis.nprocs
        return [(k % p, max(lo, k * b), min(hi, (k + 1) * b))
                for k in range(lo // b, (hi - 1) // b + 1)]
    if isinstance(axis, GeneralizedBlock):
        bounds = np.concatenate(([0], np.cumsum(axis.sizes)))
        first = int(np.searchsorted(bounds, lo, side="right") - 1)
        out = []
        for c in range(max(first, 0), axis.nprocs):
            plo, phi = int(bounds[c]), int(bounds[c + 1])
            if plo >= hi:
                break
            if phi > plo:
                out.append((c, max(lo, plo), min(hi, phi)))
        return out
    raise ScheduleError(
        f"axis type {type(axis).__name__} has no structured fast path")


def _structured_overlaps(template: CartesianTemplate,
                         region: Region) -> Iterator[tuple[int, Region]]:
    """(rank, piece) for every ownership piece of ``template`` that
    overlaps ``region``; pieces are already clipped to ``region``."""
    per_axis = [_axis_pieces(ax, lo, hi)
                for ax, lo, hi in zip(template.axes, region.lo, region.hi)]
    for combo in product(*per_axis):
        coords = tuple(c for c, _, _ in combo)
        yield (template.proc_rank(coords),
               Region(tuple(a for _, a, _ in combo),
                      tuple(b for _, _, b in combo)))


def build_structured_schedule(src: DistArrayDescriptor,
                              dst: DistArrayDescriptor) -> CommSchedule:
    """Closed-form schedule when at least one side is a Cartesian
    template of structured axes (Block / Cyclic / BlockCyclic /
    Collapsed / GeneralizedBlock).

    The unstructured (or destination, when both qualify) side's
    ownership regions are enumerated and the structured side's
    overlapping pieces computed per axis by index arithmetic — the
    Sudarsan–Ribbens interval-algebra fast path, generalized beyond pure
    Block.
    """
    items: list[TransferItem] = []
    if _is_structured(src):
        st = src.template
        assert isinstance(st, CartesianTemplate)
        for d in range(dst.nranks):
            for dreg in dst.local_regions(d):
                for s, piece in _structured_overlaps(st, dreg):
                    items.append(TransferItem(s, d, piece))
    elif _is_structured(dst):
        dt = dst.template
        assert isinstance(dt, CartesianTemplate)
        for s in range(src.nranks):
            for sreg in src.local_regions(s):
                for d, piece in _structured_overlaps(dt, sreg):
                    items.append(TransferItem(s, d, piece))
    else:
        raise ScheduleError(
            "structured fast path requires a Cartesian template with "
            "Block/Cyclic/BlockCyclic/Collapsed/GeneralizedBlock axes "
            "on at least one side")
    return CommSchedule(items, src.nranks, dst.nranks)


def build_block_schedule(src: DistArrayDescriptor,
                         dst: DistArrayDescriptor) -> CommSchedule:
    """Closed-form schedule for pure block × pure block templates.

    Retained as the historical entry point; delegates to the structured
    engine, which covers this case exactly.
    """
    if not (_is_pure_block(src) and _is_pure_block(dst)):
        raise ScheduleError("block fast path requires pure block templates")
    return build_structured_schedule(src, dst)


# -- sweep-line general builder ----------------------------------------------

def _overlap_pairs_1d(a_iv: Sequence[tuple[int, int]],
                      b_iv: Sequence[tuple[int, int]],
                      ) -> list[tuple[int, int]]:
    """Index pairs ``(i, j)`` with ``a_iv[i]`` overlapping ``b_iv[j]``.

    Sorted-event sweep with min-heap active sets pruned by interval end:
    every iteration of the inner loops either retires an interval or
    emits an output pair, so the cost is O(n log n + pairs).
    """
    events = sorted(
        [(lo, 0, i, hi) for i, (lo, hi) in enumerate(a_iv) if hi > lo]
        + [(lo, 1, j, hi) for j, (lo, hi) in enumerate(b_iv) if hi > lo])
    active_a: list[tuple[int, int]] = []  # (hi, index) min-heaps
    active_b: list[tuple[int, int]] = []
    pairs: list[tuple[int, int]] = []
    for lo, side, idx, hi in events:
        if side == 0:
            while active_b and active_b[0][0] <= lo:
                heapq.heappop(active_b)
            pairs.extend((idx, j) for _, j in active_b)
            heapq.heappush(active_a, (hi, idx))
        else:
            while active_a and active_a[0][0] <= lo:
                heapq.heappop(active_a)
            pairs.extend((i, idx) for _, i in active_a)
            heapq.heappush(active_b, (hi, idx))
    return pairs


def build_sweep_schedule(src: DistArrayDescriptor,
                         dst: DistArrayDescriptor) -> CommSchedule:
    """General builder: axis-0 sweep plus vectorized N-D clipping.

    Works for *any* descriptor pair (explicit patches, implicit owner
    maps, mixed Cartesian axes).  The sweep over the leading axis
    discards the vast majority of the S·D region pairs an all-pairs scan
    would test; the survivors are intersected on all axes in one NumPy
    call and only non-empty intersections materialize as transfers.
    """
    if src.shape != dst.shape:
        raise ScheduleError(
            f"cannot build schedule between shapes {src.shape} and "
            f"{dst.shape}")
    src_owner = [(r, reg) for r in range(src.nranks)
                 for reg in src.local_regions(r)]
    dst_owner = [(r, reg) for r in range(dst.nranks)
                 for reg in dst.local_regions(r)]
    if not src_owner or not dst_owner:
        return CommSchedule([], src.nranks, dst.nranks)
    pairs = _overlap_pairs_1d(
        [(reg.lo[0], reg.hi[0]) for _, reg in src_owner],
        [(reg.lo[0], reg.hi[0]) for _, reg in dst_owner])
    if not pairs:
        return CommSchedule([], src.nranks, dst.nranks)
    pair_arr = np.asarray(pairs, dtype=np.intp)
    s_lo = np.asarray([reg.lo for _, reg in src_owner], dtype=np.int64)
    s_hi = np.asarray([reg.hi for _, reg in src_owner], dtype=np.int64)
    d_lo = np.asarray([reg.lo for _, reg in dst_owner], dtype=np.int64)
    d_hi = np.asarray([reg.hi for _, reg in dst_owner], dtype=np.int64)
    si, di = pair_arr[:, 0], pair_arr[:, 1]
    lo, hi, keep = intersect_boxes(s_lo[si], s_hi[si], d_lo[di], d_hi[di])
    items = [
        TransferItem(src_owner[s][0], dst_owner[d][0],
                     Region(tuple(int(x) for x in l),
                            tuple(int(x) for x in h)))
        for s, d, l, h in zip(si[keep].tolist(), di[keep].tolist(),
                              lo[keep], hi[keep])
    ]
    return CommSchedule(items, src.nranks, dst.nranks)


def build_allpairs_schedule(src: DistArrayDescriptor,
                            dst: DistArrayDescriptor) -> CommSchedule:
    """The original O(S·D) all-pairs intersection, kept as the baseline
    the scaling benchmark (and regression tests) compare against."""
    if src.shape != dst.shape:
        raise ScheduleError(
            f"cannot build schedule between shapes {src.shape} and "
            f"{dst.shape}")
    items: list[TransferItem] = []
    dst_regions = [(r, reg) for r in range(dst.nranks)
                   for reg in dst.local_regions(r)]
    for s in range(src.nranks):
        for sreg in src.local_regions(s):
            for d, dreg in dst_regions:
                inter = sreg.intersect(dreg)
                if inter is not None:
                    items.append(TransferItem(s, d, inter))
    return CommSchedule(items, src.nranks, dst.nranks)


def build_linear_schedule(src: Linearization,
                          dst: Linearization) -> LinearSchedule:
    """Intersect two linearizations' run lists by a sorted merge sweep.

    Cost is O((Rs + Rd) log) in the total number of runs, independent of
    element count — but the number of runs itself is what a
    "structureless" representation inflates (experiment E7).
    """
    if src.total != dst.total:
        raise ScheduleError(
            f"linear spaces differ: {src.total} vs {dst.total}")
    src_runs = sorted(
        ((run.lo, run.hi, r) for r in range(src.nranks)
         for run in src.runs(r)))
    dst_runs = sorted(
        ((run.lo, run.hi, r) for r in range(dst.nranks)
         for run in dst.runs(r)))
    items: list[LinearItem] = []
    i = j = 0
    while i < len(src_runs) and j < len(dst_runs):
        slo, shi, s = src_runs[i]
        dlo, dhi, d = dst_runs[j]
        lo, hi = max(slo, dlo), min(shi, dhi)
        if hi > lo:
            items.append(LinearItem(s, d, Run(lo, hi)))
        if shi <= dhi:
            i += 1
        if dhi <= shi:
            j += 1
    return LinearSchedule(items, src.nranks, dst.nranks)


#: Default LRU bound for :class:`ScheduleCache`.  One entry pins a
#: schedule plus its compiled plans (O(items) each); 512 distinct
#: template pairs is far beyond any single coupling but small enough
#: that a long-lived multi-tenant process cannot grow without limit.
DEFAULT_SCHEDULE_CACHE_MAX = 512


def resolve_cache_max(max_entries: int | None = None) -> int:
    """Resolve the schedule-cache LRU bound: explicit argument, else the
    ``REPRO_SCHEDULE_CACHE_MAX`` environment variable, else
    :data:`DEFAULT_SCHEDULE_CACHE_MAX`.  ``0`` disables eviction
    (unbounded); negative values are rejected."""
    if max_entries is None:
        raw = os.environ.get("REPRO_SCHEDULE_CACHE_MAX")
        max_entries = DEFAULT_SCHEDULE_CACHE_MAX if raw is None else raw
    try:
        max_entries = int(max_entries)
    except (TypeError, ValueError):
        raise ScheduleError(
            f"REPRO_SCHEDULE_CACHE_MAX must be an integer, got "
            f"{max_entries!r}") from None
    if max_entries < 0:
        raise ScheduleError(
            f"REPRO_SCHEDULE_CACHE_MAX must be >= 0 (0 = unbounded), got "
            f"{max_entries}")
    return max_entries


class ScheduleCache:
    """Template-pair keyed, LRU-bounded schedule cache with statistics.

    Implements §2.3's reuse: "can be reused in consecutive transfers,
    and even for different arrays as long as they conform to the same
    distribution template".  Builder options participate in the key:
    ``get(src, dst, force_general=True)`` never returns a fast-path
    schedule cached by a plain ``get(src, dst)``.  So does the
    execution ``planner`` (which the builder never sees): a schedule
    carries memoized per-planner state — collective round plans, index
    plans sized for round packing — so a ``planner="collective"`` entry
    must never alias a ``planner="p2p"`` one compiled for the same
    template pair.

    Two behaviors beyond plain memoization:

    * **Bounded.**  At most :func:`resolve_cache_max` entries are
      retained (``max_entries`` argument, else the
      ``REPRO_SCHEDULE_CACHE_MAX`` env knob, resolved per insert so the
      knob is live); least-recently-*used* entries are evicted and
      counted in ``evictions``.
    * **Warm starts.**  On a miss whose key shares one descriptor side
      with a cached entry (the elastic-resize signature: same source
      template, new destination), the freshly built schedule is seeded
      with every compiled :class:`~repro.schedule.indexplan.PairPlan`
      of the sibling that is provably still valid — see
      :func:`repro.schedule.delta.warm_start_plans`.  ``REDIST_STATS``
      counts ``pairs_reused`` / ``pairs_recompiled``.

    All operations hold one lock, so threads-backend ranks sharing the
    process-global cache serialize on build and never duplicate work.
    """

    def __init__(self, builder: Callable[..., CommSchedule] = build_region_schedule,
                 *, max_entries: int | None = None, warm_start: bool = True):
        self._builder = builder
        self._lock = threading.Lock()
        # key -> (schedule, src_desc, dst_desc); descriptors are kept so
        # warm starts can check per-rank ownership against the sibling.
        self._cache: "OrderedDict[tuple, tuple[CommSchedule, DistArrayDescriptor, DistArrayDescriptor]]" = OrderedDict()
        self._max_entries = max_entries
        self._warm_start = warm_start
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    @property
    def max_entries(self) -> int:
        """The currently effective LRU bound (0 = unbounded)."""
        return resolve_cache_max(self._max_entries)

    def get(self, src: DistArrayDescriptor,
            dst: DistArrayDescriptor, *, planner: str | None = None,
            **kwargs) -> CommSchedule:
        key = (src.cache_key(), dst.cache_key(), planner,
               tuple(sorted(kwargs.items())))
        with self._lock:
            entry = self._cache.get(key)
            if entry is not None:
                self.hits += 1
                self._cache.move_to_end(key)
                return entry[0]
            self.misses += 1
            schedule = self._builder(src, dst, **kwargs)
            if self._warm_start:
                sibling = self._find_sibling(key)
                if sibling is not None:
                    from repro.schedule.delta import warm_start_plans
                    old_sched, old_src, old_dst = sibling
                    warm_start_plans(schedule, old_sched,
                                     src, dst, old_src, old_dst)
            self._cache[key] = (schedule, src, dst)
            limit = self.max_entries
            if limit:
                while len(self._cache) > limit:
                    self._cache.popitem(last=False)
                    self.evictions += 1
            return schedule

    def _find_sibling(self, key: tuple):
        """Most-recently-used cached entry sharing a descriptor side
        (and all builder options) with ``key``.  Either side of the
        sibling may match either side of the key — compiled plans are
        side-agnostic (pure functions of layout + wire regions), and
        an elastic resize chain alternates sides: the (d8→d10) entry is
        the artifact source for a (d10→d12) miss."""
        src_key, dst_key, planner, opts = key
        for other, entry in reversed(self._cache.items()):
            o_src, o_dst, o_planner, o_opts = other
            if (o_planner, o_opts) != (planner, opts):
                continue
            if src_key in (o_src, o_dst) or dst_key in (o_src, o_dst):
                return entry
        return None

    def delta_sibling(self, src: DistArrayDescriptor,
                      dst: DistArrayDescriptor, *,
                      planner: str | None = None, **kwargs):
        """Most-recently-used cached entry sharing a descriptor side
        with ``(src, dst)`` whose schedule already carries a compiled
        delta split — the artifact source for warm-starting a fresh
        delta's *migration* plans (:func:`repro.schedule.delta.
        compile_delta`).  Returns the sibling's
        :class:`~repro.schedule.delta.DeltaSchedule` or ``None``."""
        if not self._warm_start:
            return None
        key = (src.cache_key(), dst.cache_key(), planner,
               tuple(sorted(kwargs.items())))
        src_key, dst_key, planner_k, opts = key
        with self._lock:
            for other, entry in reversed(self._cache.items()):
                if other == key:
                    continue
                o_src, o_dst, o_planner, o_opts = other
                if (o_planner, o_opts) != (planner_k, opts):
                    continue
                if src_key in (o_src, o_dst) or dst_key in (o_src, o_dst):
                    delta = getattr(entry[0], "_delta_split", None)
                    if delta is not None:
                        return delta
        return None

    def stats(self) -> dict[str, int]:
        with self._lock:
            return {"hits": self.hits, "misses": self.misses,
                    "evictions": self.evictions, "entries": len(self._cache)}

    def __len__(self) -> int:
        return len(self._cache)

    def clear(self) -> None:
        with self._lock:
            self._cache.clear()
            self.hits = self.misses = self.evictions = 0


#: The process-wide schedule cache: the high-level coupling API
#: (:mod:`repro.highlevel`), :class:`~repro.dri.reorg.DRIReorg` and
#: :func:`repro.highlevel.reconfigure` all share it, so a reorg over a
#: template pair the coupler already compiled — or a resize back to a
#: previously seen decomposition — is a cache hit, not a rebuild.
GLOBAL_CACHE = ScheduleCache()
