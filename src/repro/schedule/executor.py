"""Schedule execution: moving the bytes a schedule describes.

Transfers decompose into independent point-to-point messages (the
paper's §4.1 protocol): sends are posted first (buffered, so they never
block), then receives complete in per-source FIFO order.  No barrier is
required on either side — experiment E9 counts exactly that.

By default execution is *packed* (message coalescing): every
communicating (src, dst) rank pair exchanges one contiguous buffer
holding all of its regions, so the message count equals the pair count
rather than the region count.  ``packed=False`` restores the historical
one-message-per-region wire protocol; both sides of a transfer must use
the same setting.

Three deployment shapes are supported:

* :func:`execute_intra` — source and destination cohorts live in one
  SPMD job (self-redistribution, transposes, in-job M×N),
* :func:`execute_inter` — two coupled jobs joined by an
  intercommunicator (the Fig. 3 paired-component case),
* :func:`execute_linear_inter` — same, but driven by a linearization
  schedule so non-array structures can participate.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import ScheduleError
from repro.dad.darray import DistributedArray
from repro.linearize.linearization import Linearization
from repro.schedule.packing import pack_regions, unpack_regions
from repro.schedule.plan import CommSchedule, LinearSchedule
from repro.simmpi.communicator import Communicator
from repro.simmpi.intercomm import Intercommunicator

#: Default tag for schedule-driven data messages.
TRANSFER_TAG = 64


def execute_intra(schedule: CommSchedule, comm: Communicator,
                  *, src_array: DistributedArray | None = None,
                  dst_array: DistributedArray | None = None,
                  src_ranks: Sequence[int] | None = None,
                  dst_ranks: Sequence[int] | None = None,
                  tag: int = TRANSFER_TAG, packed: bool = True) -> int:
    """Run ``schedule`` inside one communicator.

    ``src_ranks[i]`` is the comm rank playing source-template rank ``i``
    (default: identity); likewise ``dst_ranks``.  A rank may appear on
    both sides (e.g. an in-place transpose over the same cohort).  Every
    participating rank must call this collectively with the same
    schedule (and the same ``packed`` setting).  Returns the number of
    elements this rank received.
    """
    src_ranks = list(src_ranks if src_ranks is not None
                     else range(schedule.src_nranks))
    dst_ranks = list(dst_ranks if dst_ranks is not None
                     else range(schedule.dst_nranks))
    if len(src_ranks) != schedule.src_nranks:
        raise ScheduleError(
            f"need {schedule.src_nranks} source ranks, got {len(src_ranks)}")
    if len(dst_ranks) != schedule.dst_nranks:
        raise ScheduleError(
            f"need {schedule.dst_nranks} dest ranks, got {len(dst_ranks)}")
    src_pos = {rank: i for i, rank in enumerate(src_ranks)}
    dst_pos = {rank: i for i, rank in enumerate(dst_ranks)}

    me = comm.rank
    # Post all sends first (buffered -> nonblocking).
    if me in src_pos:
        if src_array is None:
            raise ScheduleError(f"rank {me} is a source but has no src_array")
        s = src_pos[me]
        if packed:
            for d, regions, offsets in schedule.send_groups(s):
                comm.send(pack_regions(src_array, regions, offsets),
                          dst_ranks[d], tag)
        else:
            for d, region in schedule.sends_from(s):
                comm.send(src_array.local_view(region), dst_ranks[d], tag)
    received = 0
    if me in dst_pos:
        if dst_array is None:
            raise ScheduleError(f"rank {me} is a destination but has no dst_array")
        d = dst_pos[me]
        if packed:
            for s, regions, offsets in schedule.recv_groups(d):
                data = comm.recv(source=src_ranks[s], tag=tag)
                received += unpack_regions(dst_array, regions, data, offsets)
        else:
            for s, region in schedule.recvs_at(d):
                data = comm.recv(source=src_ranks[s], tag=tag)
                dst_array.local_view(region)[...] = np.asarray(data).reshape(
                    region.shape)
                received += region.volume
    return received


def execute_inter(schedule: CommSchedule, inter: Intercommunicator,
                  side: str, array: DistributedArray,
                  *, tag: int = TRANSFER_TAG, rank: int | None = None,
                  peer_map: list[int] | None = None,
                  packed: bool = True) -> int:
    """Run ``schedule`` across an intercommunicator.

    ``side`` is ``"src"`` or ``"dst"``; schedule ranks equal each side's
    local ranks by default.  ``rank`` overrides this side's schedule
    rank (e.g. PRMI sub-setting, where effective caller ranks differ
    from cohort ranks); ``peer_map`` translates the *peer* side's
    schedule ranks to actual remote ranks for the same reason.  Both
    jobs must agree on ``packed``.  Returns elements sent (src side) or
    received (dst).
    """
    me = rank if rank is not None else inter.rank

    def peer(r: int) -> int:
        return peer_map[r] if peer_map is not None else r

    if side == "src":
        moved = 0
        if packed:
            for d, regions, offsets in schedule.send_groups(me):
                inter.send(pack_regions(array, regions, offsets),
                           dest=peer(d), tag=tag)
                moved += offsets[-1]
        else:
            for d, region in schedule.sends_from(me):
                inter.send(array.local_view(region), dest=peer(d), tag=tag)
                moved += region.volume
        return moved
    if side == "dst":
        received = 0
        if packed:
            for s, regions, offsets in schedule.recv_groups(me):
                data = inter.recv(source=peer(s), tag=tag)
                received += unpack_regions(array, regions, data, offsets)
        else:
            for s, region in schedule.recvs_at(me):
                data = inter.recv(source=peer(s), tag=tag)
                array.local_view(region)[...] = np.asarray(data).reshape(
                    region.shape)
                received += region.volume
        return received
    raise ValueError(f"side must be 'src' or 'dst', got {side!r}")


def execute_linear_inter(schedule: LinearSchedule, inter: Intercommunicator,
                         side: str, lin: Linearization, storage,
                         *, tag: int = TRANSFER_TAG) -> int:
    """Run a linearization schedule across an intercommunicator.

    ``storage`` is whatever local form ``lin`` extracts from / injects
    into (a :class:`DistributedArray`, a graph-value dict, ...).
    """
    me = inter.rank
    if side == "src":
        moved = 0
        for d, run in schedule.sends_from(me):
            inter.send(lin.extract(me, run, storage), dest=d, tag=tag)
            moved += run.length
        return moved
    if side == "dst":
        received = 0
        for s, run in schedule.recvs_at(me):
            values = inter.recv(source=s, tag=tag)
            lin.inject(me, run, np.asarray(values), storage)
            received += run.length
        return received
    raise ValueError(f"side must be 'src' or 'dst', got {side!r}")
