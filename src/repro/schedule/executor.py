"""Schedule execution: moving the bytes a schedule describes.

Transfers decompose into independent point-to-point messages (the
paper's §4.1 protocol): sends are posted first (buffered, so they never
block), then receives complete in per-source FIFO order.  No barrier is
required on either side — experiment E9 counts exactly that.

By default execution is *packed* (message coalescing): every
communicating (src, dst) rank pair exchanges one contiguous buffer
holding all of its regions, so the message count equals the pair count
rather than the region count.  ``packed=False`` restores the historical
one-message-per-region wire protocol; both sides of a transfer must use
the same setting.

The packed copy phase runs on **compiled index plans**
(:mod:`repro.schedule.indexplan`) and the **zero-copy transport**
(:mod:`repro.simmpi.payload`):

* slice-like pairs (contiguous or strided) send a
  :class:`~repro.simmpi.payload.Borrowed` view of local storage — the
  transport consumes it synchronously, writing straight into a
  preposted destination when one is armed;
* index-array pairs send the freshly gathered buffer as an
  :class:`~repro.simmpi.payload.OwnedBuffer` (move semantics — the
  defensive send copy is skipped because the buffer has no other owner);
* the receive side is **pipelined**: packed receives complete in
  *arrival* order (iprobe sweep, blocking on the oldest pair only when
  nothing is ready), so a destination scatters pair k while pair k+1 is
  still in flight instead of serializing on plan order.

Persistent channels go further: :class:`PersistentSender` packs through
a :class:`~repro.schedule.bufpool.BufferPool` (zero steady-state
allocations) and :class:`PersistentReceiver` preposts every pair's
scatter as a recv-into-destination sink, so a steady-state step moves
each byte exactly once — the A7 benchmark and the CI copies-per-byte
gate measure precisely this path.

Three deployment shapes are supported:

* :func:`execute_intra` — source and destination cohorts live in one
  SPMD job (self-redistribution, transposes, in-job M×N),
* :func:`execute_inter` — two coupled jobs joined by an
  intercommunicator (the Fig. 3 paired-component case),
* :func:`execute_linear_inter` — same, but driven by a linearization
  schedule so non-array structures can participate.
"""

from __future__ import annotations

import os
from typing import Sequence

import numpy as np

from repro.errors import ScheduleError
from repro.dad.darray import DistributedArray
from repro.linearize.linearization import Linearization
from repro.schedule.costmodel import (choose_planner, resolve_planner,
                                      resolve_round_bytes)
from repro.schedule.bufpool import BufferPool
from repro.schedule.plan import CommSchedule, LinearSchedule
from repro.simmpi import payload
from repro.simmpi import sanitize as _san
from repro.simmpi.communicator import Communicator
from repro.simmpi.intercomm import Intercommunicator
from repro.util.counters import TRANSPORT_STATS
from repro.verify.hook import maybe_verify_side

#: Default tag for schedule-driven data messages.
TRANSFER_TAG = 64

#: Execution modes of the persistent engines.
MODES = ("two_sided", "rma")


def resolve_mode(mode: str | None, inter: Intercommunicator) -> str:
    """Normalize a persistent-engine mode selection.

    Explicit argument > ``REPRO_RMA=1`` environment > two-sided.  RMA
    needs ranks that can attach each other's shared windows; on a
    transport that cannot (the threads backend) the engines fall back
    to two-sided transparently (counted as ``rma_fallbacks``).  Both
    jobs of a coupled run resolve identically: the backend is
    domain-wide and the environment is inherited across fork, so the
    only way to diverge is passing *different explicit modes* on the
    two sides — which the RMA bootstrap handshake then rejects.
    """
    if mode is None:
        mode = "rma" if os.environ.get("REPRO_RMA") == "1" else "two_sided"
    if mode not in MODES:
        raise ValueError(f"unknown persistent mode {mode!r}; "
                         f"expected one of {MODES}")
    if mode == "rma" and not inter.local_comm.job.transport.rma_capable:
        TRANSPORT_STATS.add("rma_fallbacks")
        return "two_sided"
    return mode


def _wire_payload(pp, flat: np.ndarray):
    """The transport marker for one pair's packed send buffer.

    Slice-like pairs lend their live view (Borrowed: consumed
    synchronously, never aliased); index pairs move the freshly
    gathered buffer (OwnedBuffer: no other owner exists).
    """
    buf = pp.gather(flat)
    if pp.idx is None:
        return payload.Borrowed(buf)
    return payload.OwnedBuffer(buf)


def _scatter_arrivals(pairs, flat, recv_from, probe_from) -> int:
    """Scatter packed pair buffers in *arrival* order.

    Sweeps the pending pairs with iprobe and consumes whichever peer's
    message is already there; blocks on the oldest pending pair only
    when none is — pipelining the unpack against in-flight deliveries
    without busy-waiting.
    """
    pending = list(pairs)
    received = 0
    while pending:
        pp = next((p for p in pending if probe_from(p.peer)), pending[0])
        received += pp.scatter(flat, recv_from(pp.peer))
        pending.remove(pp)
    return received


def execute_intra(schedule: CommSchedule, comm: Communicator,
                  *, src_array: DistributedArray | None = None,
                  dst_array: DistributedArray | None = None,
                  src_ranks: Sequence[int] | None = None,
                  dst_ranks: Sequence[int] | None = None,
                  tag: int = TRANSFER_TAG, packed: bool = True,
                  planner: str | None = None,
                  round_bytes: int | None = None) -> int:
    """Run ``schedule`` inside one communicator.

    ``src_ranks[i]`` is the comm rank playing source-template rank ``i``
    (default: identity); likewise ``dst_ranks``.  A rank may appear on
    both sides (e.g. an in-place transpose over the same cohort).  Every
    participating rank must call this collectively with the same
    schedule (and the same ``packed`` setting).  Returns the number of
    elements this rank received.

    ``planner`` selects the execution strategy (explicit argument >
    ``REPRO_PLANNER`` > ``p2p``): ``p2p`` is the packed point-to-point
    path below; ``collective`` rewrites the transfer into
    memory-bounded ``alltoallv`` rounds (:mod:`repro.schedule.
    collplan`, round cap ``round_bytes``/``REPRO_ROUND_BYTES``);
    ``auto`` consults the cost model.  The collective path is always
    packed and ignores ``packed=False``; every rank of ``comm`` must
    then hold at least one side's array (the rounds are collective over
    the whole communicator).
    """
    src_ranks = list(src_ranks if src_ranks is not None
                     else range(schedule.src_nranks))
    dst_ranks = list(dst_ranks if dst_ranks is not None
                     else range(schedule.dst_nranks))
    if len(src_ranks) != schedule.src_nranks:
        raise ScheduleError(
            f"need {schedule.src_nranks} source ranks, got {len(src_ranks)}")
    if len(dst_ranks) != schedule.dst_nranks:
        raise ScheduleError(
            f"need {schedule.dst_nranks} dest ranks, got {len(dst_ranks)}")
    planner = resolve_planner(planner)
    if planner != "p2p":
        arr = src_array if src_array is not None else dst_array
        if arr is None:
            raise ScheduleError(
                f"rank {comm.rank} resolves planner {planner!r} but holds "
                f"neither array — collective rounds need every comm rank "
                f"on at least one side")
        itemsize = np.dtype(arr.descriptor.dtype).itemsize
        rb = resolve_round_bytes(round_bytes)
        if choose_planner(schedule, itemsize,
                                    planner=planner,
                                    round_bytes=rb) == "collective":
            from repro.schedule.collplan import execute_collective_intra
            coll = schedule.collective_plan(itemsize, rb)
            return execute_collective_intra(
                schedule, comm, coll, src_array=src_array,
                dst_array=dst_array, src_ranks=src_ranks,
                dst_ranks=dst_ranks)
    src_pos = {rank: i for i, rank in enumerate(src_ranks)}
    dst_pos = {rank: i for i, rank in enumerate(dst_ranks)}

    me = comm.rank
    # Post all sends first (buffered -> nonblocking).
    if me in src_pos:
        if src_array is None:
            raise ScheduleError(f"rank {me} is a source but has no src_array")
        s = src_pos[me]
        if packed:
            maybe_verify_side(schedule, "send", s, src_array.descriptor)
            plan = schedule.send_plan(
                s, src_array.descriptor.local_regions(s))
            flat = src_array.flat_local()
            for pp in plan.pairs:
                comm.send(_wire_payload(pp, flat), dst_ranks[pp.peer], tag)
        else:
            for d, region in schedule.sends_from(s):
                comm.send(src_array.local_view(region), dst_ranks[d], tag)
    received = 0
    if me in dst_pos:
        if dst_array is None:
            raise ScheduleError(f"rank {me} is a destination but has no dst_array")
        d = dst_pos[me]
        if packed:
            maybe_verify_side(schedule, "recv", d, dst_array.descriptor)
            plan = schedule.recv_plan(
                d, dst_array.descriptor.local_regions(d))
            flat = dst_array.flat_local()
            received += _scatter_arrivals(
                plan.pairs, flat,
                lambda peer: comm.recv(source=src_ranks[peer], tag=tag),
                lambda peer: comm.iprobe(source=src_ranks[peer],
                                         tag=tag) is not None)
        else:
            for s, region in schedule.recvs_at(d):
                data = comm.recv(source=src_ranks[s], tag=tag)
                dst_array.local_view(region)[...] = np.asarray(data).reshape(
                    region.shape)
                received += region.volume
    return received


def execute_inter(schedule: CommSchedule, inter: Intercommunicator,
                  side: str, array: DistributedArray,
                  *, tag: int = TRANSFER_TAG, rank: int | None = None,
                  peer_map: list[int] | None = None,
                  packed: bool = True,
                  planner: str | None = None,
                  round_bytes: int | None = None) -> int:
    """Run ``schedule`` across an intercommunicator.

    ``side`` is ``"src"`` or ``"dst"``; schedule ranks equal each side's
    local ranks by default.  ``rank`` overrides this side's schedule
    rank (e.g. PRMI sub-setting, where effective caller ranks differ
    from cohort ranks); ``peer_map`` translates the *peer* side's
    schedule ranks to actual remote ranks for the same reason.  Both
    jobs must agree on ``packed``.  Returns elements sent (src side) or
    received (dst).

    ``planner`` (explicit > ``REPRO_PLANNER`` > ``p2p``): under
    ``collective`` (or ``auto`` deciding so) the transfer runs as
    memory-bounded acknowledged rounds via one-step
    :class:`~repro.schedule.collplan.CollectiveSender`/
    :class:`~repro.schedule.collplan.CollectiveReceiver` engines.  The
    ack handshake makes the send side block until the peer consumes
    each round, so both jobs must drive the transfer concurrently
    (their own threads/processes); a single-threaded harness must drive
    the engines' ``send_round``/``recv_round`` directly instead.  The
    cost model is a pure function of (schedule, dtype, environment), so
    both sides resolve identically without negotiating.
    """
    me = rank if rank is not None else inter.rank
    planner = resolve_planner(planner)
    if planner != "p2p":
        itemsize = np.dtype(array.descriptor.dtype).itemsize
        rb = resolve_round_bytes(round_bytes)
        if choose_planner(schedule, itemsize,
                                    planner=planner,
                                    round_bytes=rb) == "collective":
            from repro.schedule.collplan import (CollectiveReceiver,
                                                 CollectiveSender)
            coll = schedule.collective_plan(itemsize, rb)
            if side == "src":
                return CollectiveSender(schedule, coll, inter, array,
                                        tag=tag, rank=rank,
                                        peer_map=peer_map).step()
            if side == "dst":
                return CollectiveReceiver(schedule, coll, inter, array,
                                          tag=tag, rank=rank,
                                          peer_map=peer_map).step()
            raise ValueError(f"side must be 'src' or 'dst', got {side!r}")

    def peer(r: int) -> int:
        return peer_map[r] if peer_map is not None else r

    if side == "src":
        moved = 0
        if packed:
            maybe_verify_side(schedule, "send", me, array.descriptor)
            plan = schedule.send_plan(me, array.descriptor.local_regions(me))
            flat = array.flat_local()
            for pp in plan.pairs:
                inter.send(_wire_payload(pp, flat), dest=peer(pp.peer),
                           tag=tag)
                moved += pp.size
        else:
            for d, region in schedule.sends_from(me):
                inter.send(array.local_view(region), dest=peer(d), tag=tag)
                moved += region.volume
        return moved
    if side == "dst":
        received = 0
        if packed:
            maybe_verify_side(schedule, "recv", me, array.descriptor)
            plan = schedule.recv_plan(me, array.descriptor.local_regions(me))
            flat = array.flat_local()
            received += _scatter_arrivals(
                plan.pairs, flat,
                lambda p: inter.recv(source=peer(p), tag=tag),
                lambda p: inter.iprobe(source=peer(p), tag=tag) is not None)
        else:
            for s, region in schedule.recvs_at(me):
                data = inter.recv(source=peer(s), tag=tag)
                array.local_view(region)[...] = np.asarray(data).reshape(
                    region.shape)
                received += region.volume
        return received
    raise ValueError(f"side must be 'src' or 'dst', got {side!r}")


def execute_linear_inter(schedule: LinearSchedule, inter: Intercommunicator,
                         side: str, lin: Linearization, storage,
                         *, tag: int = TRANSFER_TAG) -> int:
    """Run a linearization schedule across an intercommunicator.

    ``storage`` is whatever local form ``lin`` extracts from / injects
    into (a :class:`DistributedArray`, a graph-value dict, ...).

    The wire carries **one packed buffer per communicating rank pair**
    (all of the pair's runs in ascending-``lo`` order), mirroring the
    packed region path.  When ``lin`` supports flat indexing
    (:meth:`~repro.linearize.linearization.Linearization.flat_storage`),
    the local copy phase runs on a compiled index plan cached on the
    schedule — one ``take``/fancy assignment per pair; otherwise the
    pair's buffer is assembled/consumed run by run via
    ``extract``/``inject``.  Either side may fall back independently —
    the wire format is identical.
    """
    me = inter.rank
    if side == "src":
        moved = 0
        flat = lin.flat_storage(me, storage)
        if flat is not None:
            plan = schedule.send_plan(
                me, lambda run: lin.run_indices(me, run))
            for pp in plan.pairs:
                inter.send(_wire_payload(pp, flat), dest=pp.peer, tag=tag)
                moved += pp.size
        else:
            for d, runs, offsets in schedule.send_groups(me):
                buf = np.concatenate(
                    [np.asarray(lin.extract(me, run, storage)).reshape(-1)
                     for run in runs]) if runs else np.empty(0, dtype=lin.dtype)
                # np.concatenate always yields a fresh contiguous buffer
                # with no other owner, so it moves rather than copies.
                inter.send(payload.OwnedBuffer(buf), dest=d, tag=tag)
                moved += int(offsets[-1])
        return moved
    if side == "dst":
        received = 0
        flat = lin.flat_storage(me, storage)
        if flat is not None:
            plan = schedule.recv_plan(
                me, lambda run: lin.run_indices(me, run))
            received += _scatter_arrivals(
                plan.pairs, flat,
                lambda p: inter.recv(source=p, tag=tag),
                lambda p: inter.iprobe(source=p, tag=tag) is not None)
        else:
            for s, runs, offsets in schedule.recv_groups(me):
                values = np.asarray(inter.recv(source=s, tag=tag)).reshape(-1)
                if values.size != offsets[-1]:
                    raise ScheduleError(
                        f"packed linear buffer holds {values.size} elements,"
                        f" runs expect {int(offsets[-1])}")
                for run, lo, hi in zip(runs, offsets, offsets[1:]):
                    lin.inject(me, run, values[lo:hi], storage)
                received += int(offsets[-1])
        return received
    raise ValueError(f"side must be 'src' or 'dst', got {side!r}")


# -- persistent-channel engines ---------------------------------------------

class PersistentSender:
    """Source half of a persistent channel over an intercommunicator.

    Compiles the send plan once and, on every :meth:`step`, ships each
    pair with the cheapest safe semantics: slice-like pairs lend a live
    view (Borrowed — written straight into the peer's preposted
    destination when armed), index pairs pack into a pooled staging
    buffer shipped with move semantics (OwnedBuffer) whose release
    returns the buffer to the pool.  In steady state the pool performs
    zero allocations; ``pool.stats`` proves it.

    ``mode="rma"`` (or ``REPRO_RMA=1``) selects the **one-sided tier**
    on an RMA-capable transport (procs backend): construction receives
    one :class:`~repro.simmpi.rma.WindowHandle` per pair from the peer
    and attaches its window; each step then waits for the peer's
    exposure epoch, scatters the pair's bytes *directly into the remote
    window* (a single cross-process copy on the slice fast paths — no
    slot ring, no envelope, no matching) and commits.  On transports
    without RMA support the mode falls back to two-sided transparently.
    """

    def __init__(self, schedule: CommSchedule, inter: Intercommunicator,
                 array: DistributedArray, *, tag: int = TRANSFER_TAG,
                 rank: int | None = None,
                 peer_map: list[int] | None = None,
                 pool: BufferPool | None = None,
                 mode: str | None = None):
        me = rank if rank is not None else inter.rank
        self._inter = inter
        self._tag = tag
        self._peer_map = peer_map
        self._me = me
        self._array = array
        self._dtype = np.dtype(array.descriptor.dtype)
        # Verification happens at engine construction — never in step()
        # — so the steady-state path carries zero hook overhead.
        maybe_verify_side(schedule, "send", me, array.descriptor)
        self._plan = schedule.send_plan(
            me, array.descriptor.local_regions(me))
        self.pool = pool if pool is not None else BufferPool()
        self.mode = resolve_mode(mode, inter)
        self._rwins: list | None = None
        self._epoch = 0
        if self.mode == "rma" and self._plan.pairs:
            from repro.simmpi import rma
            mailbox = inter._my_mailbox()
            # Bootstrap: one WindowHandle per pair, shipped by the
            # receiver over the ordinary two-sided channel.  The data
            # tag is free for this — in RMA mode no data message ever
            # travels on it again.
            self._rwins = [
                rma.RemoteWindow(
                    rma.check_handle(
                        inter.recv(source=self._peer(pp.peer),
                                   tag=self._tag),
                        pp.size),
                    mailbox)
                for pp in self._plan.pairs]

    def _peer(self, r: int) -> int:
        return self._peer_map[r] if self._peer_map is not None else r

    def step(self) -> int:
        """Send the current local array contents; returns elements sent."""
        if self.mode == "rma":
            return self._step_rma()
        flat = self._array.flat_local()
        moved = 0
        for pp in self._plan.pairs:
            if pp.idx is None:
                wire = payload.Borrowed(pp.gather(flat))
            else:
                buf, release = self.pool.loan(
                    ("send", self._me, pp.peer), pp.size, self._dtype)
                pp.gather_into(flat, buf)
                wire = payload.OwnedBuffer(buf, release=release)
            self._inter.send(wire, dest=self._peer(pp.peer), tag=self._tag)
            moved += pp.size
        return moved

    def _step_rma(self) -> int:
        """One one-sided step: wait for each peer's exposure epoch, put
        straight into its window, commit.  Slice pairs go view -> remote
        scatter (one copy, zero staging); index pairs gather into a
        pooled buffer first (zero steady-state allocations)."""
        self._epoch += 1
        flat = self._array.flat_local()
        moved = 0
        for pp, rwin in zip(self._plan.pairs, self._rwins or ()):
            rwin.wait_open(self._epoch)
            if pp.idx is None:
                moved += rwin.put(pp.gather(flat))
            else:
                buf, release = self.pool.loan(
                    ("send", self._me, pp.peer), pp.size, self._dtype)
                pp.gather_into(flat, buf)
                moved += rwin.put(buf)
                release()
            rwin.commit(self._epoch)
        return moved

    def close(self) -> None:
        """Detach any attached remote windows (the engine is done)."""
        for rwin in self._rwins or ():
            rwin.close()
        self._rwins = []


class PersistentReceiver:
    """Destination half of a persistent channel over an intercommunicator.

    :meth:`arm` preposts one recv-into-destination slot per pair — the
    sink is the pair plan's scatter against the destination array's
    consolidated ``flat_local()`` base, so matching sends write their
    bytes straight into final storage with no staging buffer.
    :meth:`complete` blocks until all armed slots have fired.
    :meth:`step` is ``arm`` (if not already armed) + ``complete``:
    arming happens *inside* the blocking receive call, so a producer
    running ahead of the consumer falls back to snapshot buffering and
    the consumer's view of its own array never changes outside a pull.

    ``mode="rma"`` (or ``REPRO_RMA=1``) selects the **one-sided tier**
    on an RMA-capable transport (procs backend): construction exposes
    the destination array's consolidated base as an RMA window
    (:class:`~repro.simmpi.rma.ExposedWindow`), *rebases* the array into
    the window payload so remote puts land in final storage, and ships
    each sender its :class:`~repro.simmpi.rma.WindowHandle` (segment
    name + this pair's scatter plan).  :meth:`arm` then opens an
    exposure epoch and :meth:`complete` fences it — one fence amortized
    over all pairs replaces per-message rendezvous.
    """

    def __init__(self, schedule: CommSchedule, inter: Intercommunicator,
                 array: DistributedArray, *, tag: int = TRANSFER_TAG,
                 rank: int | None = None,
                 peer_map: list[int] | None = None,
                 mode: str | None = None):
        me = rank if rank is not None else inter.rank
        self._inter = inter
        self._tag = tag
        self._peer_map = peer_map
        self._array = array
        maybe_verify_side(schedule, "recv", me, array.descriptor)
        self._plan = schedule.recv_plan(
            me, array.descriptor.local_regions(me))
        self._slots: list | None = None
        self.mode = resolve_mode(mode, inter)
        self._win = None
        self._rma_armed = False
        if self.mode == "rma" and self._plan.pairs:
            from repro.simmpi import rma
            flat = array.flat_local()
            self._win = rma.ExposedWindow(
                flat.nbytes, flat.dtype, len(self._plan.pairs),
                inter._my_mailbox())
            array.rebase(self._win.buffer)
            for i, pp in enumerate(self._plan.pairs):
                self._inter.send(self._win.handle(i, pp),
                                 dest=self._peer(pp.peer), tag=self._tag)

    def _peer(self, r: int) -> int:
        return self._peer_map[r] if self._peer_map is not None else r

    def _sink(self, pp):
        flat = self._array.flat_local()
        return lambda values: pp.scatter(flat, values)

    def arm(self) -> None:
        """Prepost every pair's recv-into-destination slot.  Queued
        messages are consumed immediately (FIFO-safe); later sends
        write straight into the destination array.

        In RMA mode this opens the next exposure epoch instead: from
        here until :meth:`complete`'s fence returns, senders may write
        into the window (= the destination array's storage)."""
        if self.mode == "rma":
            if not self._rma_armed:
                if self._win is not None:
                    self._win.epoch_open()
                self._rma_armed = True
            return
        if self._slots is not None:
            return
        self._slots = [
            self._inter.prepost_recv(self._sink(pp),
                                     source=self._peer(pp.peer),
                                     tag=self._tag)
            for pp in self._plan.pairs]

    def complete(self, *, timeout: float | None = None) -> int:
        """Block until all armed slots have fired; returns elements
        received.  Arms first if needed.

        In RMA mode: fence the open epoch — block until every writer
        has committed its puts for this step.  After the fence the
        destination array holds the step's data (it *is* the window)."""
        if self.mode == "rma":
            self.arm()
            self._rma_armed = False
            if self._win is not None:
                self._win.fence(timeout=timeout)
                if _san.ACTIVE is not None:
                    # The destination array is handed back to the caller
                    # here — the seqlock read site of the epoch protocol.
                    self._win.check_read()
            return self._plan.element_count
        self.arm()
        slots, self._slots = self._slots, None
        return sum(slot.wait(timeout) for slot in slots)

    def step(self) -> int:
        """One pull: arm (unless pre-armed) and complete."""
        return self.complete()

    def close(self) -> None:
        """Tear down the exposed window, if any (the engine is done).

        The destination array is first evacuated back onto a private
        heap buffer (a :meth:`~repro.dad.darray.DistributedArray.rebase`
        with the last fenced contents), so after ``close`` it is an
        ordinary array again — no remote writes can reach it and its
        lifetime no longer pins the window mapping."""
        if self._win is not None:
            win, self._win = self._win, None
            flat = self._array.flat_local()
            self._array.rebase(np.empty(flat.size, dtype=flat.dtype))
            win.close()
