"""Schedule execution: moving the bytes a schedule describes.

Transfers decompose into independent point-to-point messages (the
paper's §4.1 protocol): sends are posted first (buffered, so they never
block), then receives complete in per-source FIFO order.  No barrier is
required on either side — experiment E9 counts exactly that.

By default execution is *packed* (message coalescing): every
communicating (src, dst) rank pair exchanges one contiguous buffer
holding all of its regions, so the message count equals the pair count
rather than the region count.  ``packed=False`` restores the historical
one-message-per-region wire protocol; both sides of a transfer must use
the same setting.

The packed copy phase runs on **compiled index plans**
(:mod:`repro.schedule.indexplan`): the first packed execution against a
schedule compiles one flat ``int64`` gather/scatter index array per
rank pair (cached on the schedule), after which every pack is a single
``flat_local.take(idx)`` and every unpack a single
``flat_local[idx] = buf`` — or a pure slice when the pair's regions are
contiguous in local storage (zero-copy view on send).  The wire bytes
and their order are identical to the region-loop pack
(:func:`repro.schedule.packing.pack_regions`), which is kept as the
reference path.

Three deployment shapes are supported:

* :func:`execute_intra` — source and destination cohorts live in one
  SPMD job (self-redistribution, transposes, in-job M×N),
* :func:`execute_inter` — two coupled jobs joined by an
  intercommunicator (the Fig. 3 paired-component case),
* :func:`execute_linear_inter` — same, but driven by a linearization
  schedule so non-array structures can participate.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import ScheduleError
from repro.dad.darray import DistributedArray
from repro.linearize.linearization import Linearization
from repro.schedule.plan import CommSchedule, LinearSchedule
from repro.simmpi.communicator import Communicator
from repro.simmpi.intercomm import Intercommunicator

#: Default tag for schedule-driven data messages.
TRANSFER_TAG = 64


def execute_intra(schedule: CommSchedule, comm: Communicator,
                  *, src_array: DistributedArray | None = None,
                  dst_array: DistributedArray | None = None,
                  src_ranks: Sequence[int] | None = None,
                  dst_ranks: Sequence[int] | None = None,
                  tag: int = TRANSFER_TAG, packed: bool = True) -> int:
    """Run ``schedule`` inside one communicator.

    ``src_ranks[i]`` is the comm rank playing source-template rank ``i``
    (default: identity); likewise ``dst_ranks``.  A rank may appear on
    both sides (e.g. an in-place transpose over the same cohort).  Every
    participating rank must call this collectively with the same
    schedule (and the same ``packed`` setting).  Returns the number of
    elements this rank received.
    """
    src_ranks = list(src_ranks if src_ranks is not None
                     else range(schedule.src_nranks))
    dst_ranks = list(dst_ranks if dst_ranks is not None
                     else range(schedule.dst_nranks))
    if len(src_ranks) != schedule.src_nranks:
        raise ScheduleError(
            f"need {schedule.src_nranks} source ranks, got {len(src_ranks)}")
    if len(dst_ranks) != schedule.dst_nranks:
        raise ScheduleError(
            f"need {schedule.dst_nranks} dest ranks, got {len(dst_ranks)}")
    src_pos = {rank: i for i, rank in enumerate(src_ranks)}
    dst_pos = {rank: i for i, rank in enumerate(dst_ranks)}

    me = comm.rank
    # Post all sends first (buffered -> nonblocking).
    if me in src_pos:
        if src_array is None:
            raise ScheduleError(f"rank {me} is a source but has no src_array")
        s = src_pos[me]
        if packed:
            plan = schedule.send_plan(
                s, src_array.descriptor.local_regions(s))
            flat = src_array.flat_local()
            for pp in plan.pairs:
                comm.send(pp.gather(flat), dst_ranks[pp.peer], tag)
        else:
            for d, region in schedule.sends_from(s):
                comm.send(src_array.local_view(region), dst_ranks[d], tag)
    received = 0
    if me in dst_pos:
        if dst_array is None:
            raise ScheduleError(f"rank {me} is a destination but has no dst_array")
        d = dst_pos[me]
        if packed:
            plan = schedule.recv_plan(
                d, dst_array.descriptor.local_regions(d))
            flat = dst_array.flat_local()
            for pp in plan.pairs:
                data = comm.recv(source=src_ranks[pp.peer], tag=tag)
                received += pp.scatter(flat, data)
        else:
            for s, region in schedule.recvs_at(d):
                data = comm.recv(source=src_ranks[s], tag=tag)
                dst_array.local_view(region)[...] = np.asarray(data).reshape(
                    region.shape)
                received += region.volume
    return received


def execute_inter(schedule: CommSchedule, inter: Intercommunicator,
                  side: str, array: DistributedArray,
                  *, tag: int = TRANSFER_TAG, rank: int | None = None,
                  peer_map: list[int] | None = None,
                  packed: bool = True) -> int:
    """Run ``schedule`` across an intercommunicator.

    ``side`` is ``"src"`` or ``"dst"``; schedule ranks equal each side's
    local ranks by default.  ``rank`` overrides this side's schedule
    rank (e.g. PRMI sub-setting, where effective caller ranks differ
    from cohort ranks); ``peer_map`` translates the *peer* side's
    schedule ranks to actual remote ranks for the same reason.  Both
    jobs must agree on ``packed``.  Returns elements sent (src side) or
    received (dst).
    """
    me = rank if rank is not None else inter.rank

    def peer(r: int) -> int:
        return peer_map[r] if peer_map is not None else r

    if side == "src":
        moved = 0
        if packed:
            plan = schedule.send_plan(me, array.descriptor.local_regions(me))
            flat = array.flat_local()
            for pp in plan.pairs:
                inter.send(pp.gather(flat), dest=peer(pp.peer), tag=tag)
                moved += pp.size
        else:
            for d, region in schedule.sends_from(me):
                inter.send(array.local_view(region), dest=peer(d), tag=tag)
                moved += region.volume
        return moved
    if side == "dst":
        received = 0
        if packed:
            plan = schedule.recv_plan(me, array.descriptor.local_regions(me))
            flat = array.flat_local()
            for pp in plan.pairs:
                data = inter.recv(source=peer(pp.peer), tag=tag)
                received += pp.scatter(flat, data)
        else:
            for s, region in schedule.recvs_at(me):
                data = inter.recv(source=peer(s), tag=tag)
                array.local_view(region)[...] = np.asarray(data).reshape(
                    region.shape)
                received += region.volume
        return received
    raise ValueError(f"side must be 'src' or 'dst', got {side!r}")


def execute_linear_inter(schedule: LinearSchedule, inter: Intercommunicator,
                         side: str, lin: Linearization, storage,
                         *, tag: int = TRANSFER_TAG) -> int:
    """Run a linearization schedule across an intercommunicator.

    ``storage`` is whatever local form ``lin`` extracts from / injects
    into (a :class:`DistributedArray`, a graph-value dict, ...).

    The wire carries **one packed buffer per communicating rank pair**
    (all of the pair's runs in ascending-``lo`` order), mirroring the
    packed region path.  When ``lin`` supports flat indexing
    (:meth:`~repro.linearize.linearization.Linearization.flat_storage`),
    the local copy phase runs on a compiled index plan cached on the
    schedule — one ``take``/fancy assignment per pair; otherwise the
    pair's buffer is assembled/consumed run by run via
    ``extract``/``inject``.  Either side may fall back independently —
    the wire format is identical.
    """
    me = inter.rank
    if side == "src":
        moved = 0
        flat = lin.flat_storage(me, storage)
        if flat is not None:
            plan = schedule.send_plan(
                me, lambda run: lin.run_indices(me, run))
            for pp in plan.pairs:
                inter.send(pp.gather(flat), dest=pp.peer, tag=tag)
                moved += pp.size
        else:
            for d, runs, offsets in schedule.send_groups(me):
                buf = np.concatenate(
                    [np.asarray(lin.extract(me, run, storage)).reshape(-1)
                     for run in runs]) if runs else np.empty(0)
                inter.send(buf, dest=d, tag=tag)
                moved += int(offsets[-1])
        return moved
    if side == "dst":
        received = 0
        flat = lin.flat_storage(me, storage)
        if flat is not None:
            plan = schedule.recv_plan(
                me, lambda run: lin.run_indices(me, run))
            for pp in plan.pairs:
                values = inter.recv(source=pp.peer, tag=tag)
                received += pp.scatter(flat, values)
        else:
            for s, runs, offsets in schedule.recv_groups(me):
                values = np.asarray(inter.recv(source=s, tag=tag)).reshape(-1)
                if values.size != offsets[-1]:
                    raise ScheduleError(
                        f"packed linear buffer holds {values.size} elements,"
                        f" runs expect {int(offsets[-1])}")
                for run, lo, hi in zip(runs, offsets, offsets[1:]):
                    lin.inject(me, run, values[lo:hi], storage)
                received += int(offsets[-1])
        return received
    raise ValueError(f"side must be 'src' or 'dst', got {side!r}")
