"""Compiled gather/scatter index plans for schedule data movement.

PR 1 minimized *message counts* (one packed buffer per communicating
rank pair); this layer minimizes the cost of producing and consuming
those buffers.  The region-loop pack/unpack path walks a pair's regions
one by one, paying a Python-level ``local_view`` (a linear scan over the
rank's patches) plus a small NumPy copy per region — for fragmented
templates (cyclic, block-cyclic) that per-region overhead dominates the
whole transfer.

A :class:`PairPlan` compiles everything a (src, dst) rank pair exchanges
into one flat ``np.int64`` element-index array into the rank's row-major
local buffer (:meth:`~repro.dad.darray.DistributedArray.flat_local`), so
the copy phase of a transfer collapses to a single vectorized call per
pair::

    buf = flat_local.take(plan.idx)      # gather (send side)
    flat_local[plan.idx] = buf           # scatter (receive side)

with a **contiguity fast path**: when a pair's regions flatten to one
ascending unit-stride range, the index array is dropped entirely and the
plan carries a ``[lo, lo + size)`` slice — gather then returns a
zero-copy *view* of local storage and scatter is one slice assignment.
A **strided fast path** generalizes this: indices forming any ascending
arithmetic progression (the signature of cyclic ownership, where every
peer takes every k-th owned element) compress to ``(lo, size, step)``
and gather/scatter become strided-slice operations — still a zero-copy
view on the send side, which is what lets persistent channels deliver
cyclic pairs straight into the destination's ``flat_local()`` base with
a single copy per byte.

Plans are pure functions of (schedule groups, owner patch layout), so
they are compiled once and cached on the schedule next to
``send_groups``/``recv_groups`` — repeated transfers over a reused
schedule (the paper's persistent-channel case) pay compilation once.
``PLAN_STATS`` counts compilations so tests can pin that down.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.errors import ScheduleError
from repro.util.counters import Counters, TRANSPORT_STATS
from repro.util.indexing import region_flat_indices, row_major_strides
from repro.util.regions import Region

__all__ = [
    "PairPlan",
    "RankPlan",
    "PLAN_STATS",
    "LocalIndexer",
    "compile_pair",
    "compile_rank_plan",
    "compile_pair_plans",
    "plan_from_indices",
]

#: Compilation counters: ``rank_plans`` increments once per compiled
#: per-rank plan, ``pair_plans`` once per (src, dst) pair inside it.
#: Regression tests assert these do not grow under repeated transfers
#: over a cached schedule.
PLAN_STATS = Counters()


@dataclass(frozen=True, slots=True)
class PairPlan:
    """One rank pair's compiled copy phase.

    ``idx`` holds flat element indices into the owning rank's local
    buffer, in wire order.  ``idx is None`` is the slice fast path: the
    pair's elements are exactly ``flat_local[lo:lo + size*step:step]`` —
    unit ``step`` is the classic contiguous case, ``step > 1`` the
    strided (arithmetic-progression) case that cyclic templates produce.
    """

    peer: int
    size: int
    lo: int
    idx: np.ndarray | None
    step: int = 1

    @property
    def contiguous(self) -> bool:
        """Unit-stride slice: the gather view is itself contiguous."""
        return self.idx is None and self.step == 1

    @property
    def strided(self) -> bool:
        """Non-unit-stride slice (cyclic signature): still a zero-copy
        view on gather, still a single slice assignment on scatter."""
        return self.idx is None and self.step > 1

    @property
    def selector(self):
        """The NumPy selector addressing this pair's elements in the
        owning rank's flat local buffer — a slice on the fast paths,
        the index array otherwise.  Safe for any consumer that indexes
        a dimension with it (e.g. 2-D AttrVect row selection)."""
        if self.idx is None:
            return slice(self.lo, self.lo + self.size * self.step, self.step)
        return self.idx

    def gather(self, flat_local: np.ndarray) -> np.ndarray:
        """This pair's packed send buffer (a zero-copy view on the slice
        fast paths, a fresh gathered buffer otherwise)."""
        if self.idx is None:
            return flat_local[self.selector]
        out = flat_local.take(self.idx)
        TRANSPORT_STATS.add("bytes_copied", out.nbytes)
        TRANSPORT_STATS.add("alloc_bytes", out.nbytes)
        return out

    def gather_into(self, flat_local: np.ndarray, out: np.ndarray) -> np.ndarray:
        """Gather this pair's elements into a caller-provided (pooled)
        buffer — the zero-allocation steady-state pack."""
        if out.size != self.size:
            raise ScheduleError(
                f"staging buffer holds {out.size} elements, plan expects "
                f"{self.size}")
        if self.idx is None:
            np.copyto(out, flat_local[self.selector])
        else:
            flat_local.take(self.idx, out=out)
        TRANSPORT_STATS.add("bytes_copied", out.nbytes)
        return out

    def sub(self, lo: int, hi: int) -> "PairPlan":
        """The sub-plan addressing wire-order elements ``[lo, hi)`` of
        this pair — the collective planner's chunking primitive.  Slice
        fast paths stay slices (an arithmetic progression restricted to
        a contiguous index range is still one); index-array pairs
        re-detect progressions on the restricted range.  Does not count
        as a fresh compilation in ``PLAN_STATS``."""
        if not (0 <= lo <= hi <= self.size):
            raise ScheduleError(
                f"sub-plan range [{lo}, {hi}) outside pair of size "
                f"{self.size}")
        if self.idx is None:
            return PairPlan(self.peer, hi - lo, self.lo + lo * self.step,
                            None, self.step)
        return plan_from_indices(self.peer, self.idx[lo:hi])

    def scatter(self, flat_local: np.ndarray, values) -> int:
        """Write a packed buffer back into local storage; returns the
        element count."""
        values = np.asarray(values).reshape(-1)
        if values.size != self.size:
            raise ScheduleError(
                f"packed buffer holds {values.size} elements, plan expects "
                f"{self.size} — sender and receiver disagree on packing")
        if self.idx is None:
            flat_local[self.selector] = values
        else:
            flat_local[self.idx] = values
        TRANSPORT_STATS.add("bytes_copied", values.nbytes)
        return self.size


@dataclass(frozen=True, slots=True)
class RankPlan:
    """All of one rank's compiled pair plans for one schedule side."""

    pairs: tuple[PairPlan, ...]

    @property
    def contiguous_pairs(self) -> int:
        """How many pairs hit the contiguity fast path."""
        return sum(1 for p in self.pairs if p.contiguous)

    @property
    def element_count(self) -> int:
        return sum(p.size for p in self.pairs)


def plan_from_indices(peer: int, idx: np.ndarray) -> PairPlan:
    """Wrap a flat index array as a :class:`PairPlan`, detecting the
    slice fast paths: ascending unit-stride indices (contiguous) and
    any other ascending arithmetic progression (strided — the cyclic
    signature)."""
    idx = np.ascontiguousarray(idx, dtype=np.int64)
    size = int(idx.size)
    if size == 0:
        return PairPlan(peer, 0, 0, None)
    if size == 1:
        return PairPlan(peer, size, int(idx[0]), None)
    d = np.diff(idx)
    step = int(d[0])
    if step >= 1 and bool((d == step).all()):
        return PairPlan(peer, size, int(idx[0]), None, step)
    return PairPlan(peer, size, 0, idx)


class LocalIndexer:
    """Flat row-major indices of global regions inside one rank's local
    storage.

    The local buffer layout is the one :class:`~repro.dad.darray.
    DistributedArray` guarantees: owned patches sorted by ``region.lo``,
    each flattened row-major, concatenated.  Lookup of a transfer
    region's containing patch uses an exact-match dict (the common case
    for fragmented templates, whose transfer regions coincide with
    patches), a last-hit cache (the common case for block templates,
    where one patch serves many regions), and a containment scan as the
    general fallback.
    """

    def __init__(self, owned_regions: Sequence[Region]):
        patches = sorted(owned_regions, key=lambda r: r.lo)
        offsets = np.zeros(len(patches) + 1, dtype=np.int64)
        np.cumsum([r.volume for r in patches], out=offsets[1:])
        self._patches = patches
        self._offsets = offsets
        self._exact = {r: i for i, r in enumerate(patches)}
        self._last: int | None = None

    def _find_patch(self, region: Region) -> int:
        i = self._exact.get(region)
        if i is not None:
            return i
        if self._last is not None and \
                self._patches[self._last].contains(region):
            return self._last
        for i, patch in enumerate(self._patches):
            if patch.contains(region):
                self._last = i
                return i
        raise ScheduleError(
            f"transfer region {region} not contained in any owned patch")

    def region_indices(self, region: Region) -> np.ndarray:
        """Flat local indices of ``region``'s elements, in the region's
        row-major order."""
        i = self._find_patch(region)
        patch = self._patches[i]
        local = region.relative_to(patch)
        idx = region_flat_indices(local, patch.shape)
        idx += self._offsets[i]
        return idx

    def region_run(self, region: Region) -> tuple[int, int] | None:
        """``(lo, size)`` when ``region`` flattens to one contiguous
        local range, else ``None`` — an O(ndim) closed-form check that
        avoids materializing the index array for the common case."""
        i = self._find_patch(region)
        patch = self._patches[i]
        shape = patch.shape
        # Contiguous iff every axis before the first partial axis spans
        # one index, i.e. all fragmentation lives in the trailing
        # full-width tail plus at most one leading partial axis.
        seen_partial = False
        for d in range(len(shape) - 1, -1, -1):
            span = region.hi[d] - region.lo[d]
            if seen_partial and span != 1:
                return None
            if span != shape[d]:
                seen_partial = True
        local = region.relative_to(patch)
        strides = row_major_strides(shape)
        lo = int(self._offsets[i]) + sum(
            l * s for l, s in zip(local.lo, strides))
        return lo, region.volume


def compile_pair(indexer: LocalIndexer, peer: int,
                 regions: Sequence[Region]) -> PairPlan:
    """Compile one (src, dst) pair's wire-order regions against a rank's
    patch layout.  The plan is a pure function of (regions, layout): two
    calls with equal region lists over an equal layout yield
    byte-identical plans — the soundness basis for the delta compiler's
    verbatim plan reuse (:mod:`repro.schedule.delta`)."""
    runs = [indexer.region_run(r) for r in regions]
    if all(r is not None for r in runs):
        # All regions individually contiguous: the pair is a single
        # slice iff the runs chain end-to-start.
        chained = all(runs[k][0] + runs[k][1] == runs[k + 1][0]
                      for k in range(len(runs) - 1))
        if chained:
            lo = runs[0][0] if runs else 0
            size = sum(n for _, n in runs)
            PLAN_STATS.add("pair_plans")
            return PairPlan(peer, size, lo, None)
        idx = np.concatenate(
            [np.arange(lo, lo + n, dtype=np.int64) for lo, n in runs]) \
            if runs else np.empty(0, dtype=np.int64)
    else:
        parts = [indexer.region_indices(r) for r in regions]
        idx = np.concatenate(parts) if parts else \
            np.empty(0, dtype=np.int64)
    PLAN_STATS.add("pair_plans")
    return plan_from_indices(peer, idx)


def compile_rank_plan(groups: Sequence[tuple[int, Sequence[Region], object]],
                      owned_regions: Sequence[Region]) -> RankPlan:
    """Compile one rank's per-pair groups against its patch layout.

    ``groups`` is the schedule's ``send_groups``/``recv_groups`` output:
    ``(peer, regions, offsets)`` with regions in wire order.  The index
    order inside each compiled pair matches the region-loop pack order
    exactly, so plan-based and loop-based buffers are byte-identical.
    """
    indexer = LocalIndexer(owned_regions)
    pairs = [compile_pair(indexer, peer, regions)
             for peer, regions, _offsets in groups]
    PLAN_STATS.add("rank_plans")
    return RankPlan(tuple(pairs))


def compile_pair_plans(groups: Sequence[tuple[int, Sequence, object]],
                       indices_of: Callable[[object], np.ndarray]) -> RankPlan:
    """Generic plan compiler: ``indices_of(item)`` yields each group
    item's flat local indices (linearization runs, AttrVect rows, ...).
    """
    pairs: list[PairPlan] = []
    for peer, items, _offsets in groups:
        parts = [np.asarray(indices_of(it), dtype=np.int64) for it in items]
        idx = np.concatenate(parts) if parts else np.empty(0, dtype=np.int64)
        pairs.append(plan_from_indices(peer, idx))
        PLAN_STATS.add("pair_plans")
    PLAN_STATS.add("rank_plans")
    return RankPlan(tuple(pairs))
