"""Delta-schedule compilation: resize a live decomposition by moving
only the bytes whose owner actually changed.

A full rebuild of an M×N coupling after a resize (m → m′ ranks) pays
three costs the paper's static couplings never see: rebuilding the
region schedule from scratch, recompiling every per-rank index plan,
and shipping *every* byte of the array over the wire — even though for
modest resizes most (src, dst) ownership pairs are unchanged.  This
module diffs the two decompositions at the region level and splits the
result into the only two things a live resize actually needs:

* a **migration schedule** — a :class:`~repro.schedule.plan.
  CommSchedule` containing exactly the transfer items whose source and
  destination ranks differ.  These are the only wire bytes.  The
  migration schedule is a plain schedule: the persistent/collective
  executors replay it unchanged, and the cost model picks the tier.
* **kept items** — regions that stay on their rank but may land at a
  different offset in the rank's consolidated local buffer (the patch
  layout follows ownership).  They become per-rank *local move plans*:
  one gather :class:`~repro.schedule.indexplan.PairPlan` over the old
  layout and one scatter plan over the new layout, compiled with the
  same machinery as wire plans, so a repack is one vectorized
  gather/scatter (and zero copies on the double-slice fast path).
  Ranks whose ownership is completely unchanged (*identity ranks*,
  detected via :meth:`~repro.dad.descriptor.DistArrayDescriptor.
  ownership_key`) skip even the repack and keep their buffer.

The diff itself is free: :func:`~repro.schedule.builder.
build_region_schedule` already computes the exact region-level
intersection of the two templates — items with ``src == dst`` *are*
the unchanged intersection, items with ``src != dst`` the delta.
Splitting is a single O(items) pass, memoized on the full schedule so
a cached schedule yields a cached delta.

:func:`warm_start_plans` carries compiled artifacts across a resize:
when the :class:`~repro.schedule.builder.ScheduleCache` misses on a
key that shares one descriptor side with a cached entry, every
:class:`PairPlan` of the sibling whose owner layout and wire regions
are unchanged is installed verbatim on the new schedule (a plan is a
pure function of both — see :func:`~repro.schedule.indexplan.
compile_pair`), and only the changed pairs are recompiled.
``REDIST_STATS`` counts ``pairs_reused`` / ``pairs_recompiled``.
"""

from __future__ import annotations

import threading

import numpy as np

from repro.errors import ScheduleError
from repro.dad.descriptor import DistArrayDescriptor
from repro.schedule.builder import build_region_schedule
from repro.schedule.indexplan import (
    LocalIndexer,
    PairPlan,
    RankPlan,
    compile_pair,
)
from repro.schedule.plan import CommSchedule, TransferItem
from repro.util.counters import REDIST_STATS
from repro.util.regions import Region

__all__ = [
    "DeltaSchedule",
    "compile_delta",
    "warm_start_plans",
]

_SPLIT_LOCK = threading.Lock()


class DeltaSchedule:
    """The compiled diff between two decompositions of one array.

    Pure data, like every schedule: a function of the descriptor pair
    only, so it caches under the same key as the full schedule and
    replays against any conforming array.  ``migration`` deliberately
    does *not* tile the destination — never call ``validate`` on it;
    the equivalence proof lives in
    :func:`repro.verify.schedule.verify_delta_equivalence`.
    """

    def __init__(self, old_desc: DistArrayDescriptor,
                 new_desc: DistArrayDescriptor,
                 migration: CommSchedule,
                 kept_items: list[TransferItem]):
        self.old_desc = old_desc
        self.new_desc = new_desc
        self.migration = migration
        self.kept_items = kept_items
        kept_by_rank: dict[int, list[Region]] = {}
        for it in kept_items:
            kept_by_rank.setdefault(it.dst, []).append(it.region)
        # Wire order (ascending lo) per rank, matching the full
        # schedule's recv order so the local repack and a full
        # redistribute write elements identically.
        for regions in kept_by_rank.values():
            regions.sort(key=lambda r: r.lo)
        self.kept_by_rank = kept_by_rank
        common = min(old_desc.nranks, new_desc.nranks)
        #: Ranks whose ownership (and hence local patch layout) is
        #: byte-identical across the resize — no wire traffic, no
        #: repack, buffer kept as-is.
        self.identity_ranks = frozenset(
            r for r in range(common)
            if old_desc.ownership_key(r) == new_desc.ownership_key(r))
        self._local_plans: dict[int, tuple[PairPlan, PairPlan] | None] = {}

    # -- byte accounting ---------------------------------------------------

    @property
    def moved_elements(self) -> int:
        """Elements whose owner changed — the only wire traffic."""
        return self.migration.element_count

    @property
    def kept_elements(self) -> int:
        """Elements that stay on their rank (repacked or untouched)."""
        return sum(it.region.volume for it in self.kept_items)

    def migrated_bytes(self) -> int:
        return self.moved_elements * self.old_desc.dtype.itemsize

    def kept_bytes(self) -> int:
        return self.kept_elements * self.old_desc.dtype.itemsize

    # -- local repack ------------------------------------------------------

    def local_plan(self, rank: int) -> tuple[PairPlan, PairPlan] | None:
        """The compiled (gather, scatter) pair repacking ``rank``'s kept
        elements from its old flat layout into its new one, or ``None``
        when the rank keeps nothing — or keeps *everything in place*
        (identity rank).  Memoized: a resize replayed over many arrays
        (or many reps of a benchmark) compiles the repack once."""
        if rank in self._local_plans:
            return self._local_plans[rank]
        regions = self.kept_by_rank.get(rank)
        if not regions or rank in self.identity_ranks:
            plans = None
        else:
            old_ix = LocalIndexer(list(self.old_desc.local_regions(rank)))
            new_ix = LocalIndexer(list(self.new_desc.local_regions(rank)))
            plans = (compile_pair(old_ix, rank, regions),
                     compile_pair(new_ix, rank, regions))
        self._local_plans[rank] = plans
        return plans

    def apply_local(self, rank: int, old_flat: np.ndarray,
                    new_flat: np.ndarray) -> int:
        """Repack ``rank``'s kept elements; returns the element count
        moved locally (0 for identity ranks and ranks keeping nothing).
        """
        plans = self.local_plan(rank)
        if plans is None:
            return 0
        gather, scatter = plans
        scatter.scatter(new_flat, gather.gather(old_flat))
        return gather.size

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"DeltaSchedule({self.old_desc.nranks}->"
                f"{self.new_desc.nranks} ranks, "
                f"moved={self.moved_elements} kept={self.kept_elements} "
                f"identity={sorted(self.identity_ranks)})")


def compile_delta(old_desc: DistArrayDescriptor,
                  new_desc: DistArrayDescriptor,
                  *, cache=None, full: CommSchedule | None = None,
                  ) -> DeltaSchedule:
    """Diff two decompositions into a :class:`DeltaSchedule`.

    The full old→new schedule is fetched through ``cache`` (a
    :class:`~repro.schedule.builder.ScheduleCache`) when given — which
    is what makes a *repeated* resize a pure cache hit — or built
    directly otherwise; ``full`` short-circuits both.  The split is
    memoized on the full schedule object, so delta compilation is paid
    once per cached schedule.
    """
    if old_desc.shape != new_desc.shape:
        raise ScheduleError(
            f"cannot resize between shapes {old_desc.shape} and "
            f"{new_desc.shape}")
    if old_desc.dtype != new_desc.dtype:
        raise ScheduleError(
            f"cannot resize between dtypes {old_desc.dtype} and "
            f"{new_desc.dtype}")
    if full is None:
        if cache is not None:
            full = cache.get(old_desc, new_desc)
        else:
            full = build_region_schedule(old_desc, new_desc)
    # One split (and one warm start) per schedule object, even when
    # threads-backend ranks race through a shared cache.
    with _SPLIT_LOCK:
        delta = getattr(full, "_delta_split", None)
        if delta is not None:
            return delta
        moved: list[TransferItem] = []
        kept: list[TransferItem] = []
        for it in full.items:
            (kept if it.src == it.dst else moved).append(it)
        migration = CommSchedule(moved, full.src_nranks, full.dst_nranks)
        delta = DeltaSchedule(old_desc, new_desc, migration, kept)
        if cache is not None and moved:
            # Live-resize warm start: only the *migration* schedule's
            # plans get compiled in the reconfigure path (the cached
            # full schedule stays item-only), so seed them from the
            # nearest sibling resize's migration — a resize back (B→A
            # after A→B) reuses every pair verbatim, the items merely
            # reversed.
            sibling = cache.delta_sibling(old_desc, new_desc)
            if sibling is not None:
                warm_start_plans(migration, sibling.migration,
                                 old_desc, new_desc,
                                 sibling.old_desc, sibling.new_desc)
        full._delta_split = delta
    return delta


def warm_start_plans(new_sched: CommSchedule, old_sched: CommSchedule,
                     src_desc: DistArrayDescriptor,
                     dst_desc: DistArrayDescriptor,
                     old_src_desc: DistArrayDescriptor,
                     old_dst_desc: DistArrayDescriptor,
                     ) -> tuple[int, int]:
    """Seed ``new_sched`` with every compiled plan of ``old_sched``
    that is provably still valid; returns ``(reused, recompiled)`` pair
    counts (also accumulated into ``REDIST_STATS``).

    Reuse test, per (side, rank): the rank's owner layout under the new
    schedule must equal its layout under one of the old schedule's
    sides (:meth:`~repro.dad.descriptor.DistArrayDescriptor.
    ownership_key`), and a pair transfers only if its peer and wire
    region list match exactly — under both conditions
    :func:`~repro.schedule.indexplan.compile_pair` is a pure function
    that would reproduce the old plan bit-for-bit, so copying it is
    sound.  A plan may cross sides (an old *recv* plan seeding a new
    *send* rank): gather and scatter address the same flat index set,
    and only layout + regions determine it — this is what carries
    artifacts down an elastic chain, where a resize's source side was
    the previous resize's destination.  Only ranks the old schedule
    actually compiled are considered, and a rank with no reusable pair
    is left lazy (no eager compilation for fully-changed ranks).
    """
    reused = recompiled = 0
    new_sides = (
        ("send", src_desc, new_sched.src_nranks),
        ("recv", dst_desc, new_sched.dst_nranks),
    )
    old_sides = (
        ("send", old_src_desc, old_sched.src_nranks),
        ("recv", old_dst_desc, old_sched.dst_nranks),
    )
    for side, desc, nranks in new_sides:
        # Prefer the old side with the identical descriptor key (its
        # fingerprints match for every rank); fall back to the other.
        candidates = sorted(
            old_sides,
            key=lambda o: o[1].cache_key() != desc.cache_key())
        for rank in range(nranks):
            groups = (new_sched.send_groups(rank) if side == "send"
                      else new_sched.recv_groups(rank))
            if not groups:
                continue
            seeded = False
            for old_side, old_desc, old_nranks in candidates:
                if seeded or rank >= old_nranks:
                    continue
                old_plan = old_sched.plan_if_compiled(old_side, rank)
                if old_plan is None:
                    continue
                if desc.ownership_key(rank) != old_desc.ownership_key(rank):
                    continue  # layout changed: old indices are meaningless
                old_groups = (old_sched.send_groups(rank)
                              if old_side == "send"
                              else old_sched.recv_groups(rank))
                old_by_peer: dict[int, tuple[list, PairPlan]] = {
                    peer: (regions, plan)
                    for (peer, regions, _off), plan
                    in zip(old_groups, old_plan.pairs)}
                matches: list[PairPlan | None] = []
                for peer, regions, _off in groups:
                    hit = old_by_peer.get(peer)
                    matches.append(hit[1] if hit is not None
                                   and hit[0] == regions else None)
                n_hit = sum(m is not None for m in matches)
                if n_hit == 0:
                    continue
                indexer: LocalIndexer | None = None
                pairs: list[PairPlan] = []
                for m, (peer, regions, _off) in zip(matches, groups):
                    if m is not None:
                        pairs.append(m)
                        continue
                    if indexer is None:
                        indexer = LocalIndexer(
                            list(desc.local_regions(rank)))
                    pairs.append(compile_pair(indexer, peer, regions))
                new_sched.seed_plan(side, rank, RankPlan(tuple(pairs)))
                reused += n_hit
                recompiled += len(pairs) - n_hit
                seeded = True
    if reused or recompiled:
        REDIST_STATS.add("pairs_reused", reused)
        REDIST_STATS.add("pairs_recompiled", recompiled)
    return reused, recompiled
