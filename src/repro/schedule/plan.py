"""Schedule data structures.

A schedule is pure data — (source rank, destination rank, what-to-move)
triples in a deterministic order — so it can be computed once, cached,
shipped to a third party, or replayed against any array conforming to
the same templates.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ScheduleError
from repro.dad.descriptor import DistArrayDescriptor
from repro.linearize.linearization import Linearization, Run
from repro.schedule.indexplan import RankPlan, compile_pair_plans, compile_rank_plan
from repro.util.regions import Region, RegionList


@dataclass(frozen=True, slots=True)
class TransferItem:
    """Move ``region`` (global coordinates) from src rank to dst rank."""

    src: int
    dst: int
    region: Region


@dataclass(frozen=True, slots=True)
class LinearItem:
    """Move linear interval ``run`` from src rank to dst rank."""

    src: int
    dst: int
    run: Run


def _group_by_peer(pairs: list[tuple[int, "Region"]], volume_of,
                   ) -> list[tuple[int, list, np.ndarray]]:
    """Group an ordered (peer, item) list into per-peer runs.

    Returns ``(peer, items, offsets)`` tuples where ``offsets`` is the
    flattened element offset of each item inside the coalesced buffer,
    with the total volume appended (an ``np.int64`` cumsum, so
    downstream slicing never re-converts) — precomputed once so packed
    execution never rescans volumes.
    """
    grouped: list[tuple[int, list]] = []
    for peer, item in pairs:
        if not grouped or grouped[-1][0] != peer:
            grouped.append((peer, []))
        grouped[-1][1].append(item)
    groups: list[tuple[int, list, np.ndarray]] = []
    for peer, items in grouped:
        offsets = np.zeros(len(items) + 1, dtype=np.int64)
        np.cumsum([volume_of(it) for it in items], out=offsets[1:])
        groups.append((peer, items, offsets))
    return groups


class CommSchedule:
    """A region-based communication schedule between two templates.

    Per-rank send/receive views and per-(src, dst)-pair coalescing
    groups are indexed once at construction, so the executor's queries
    are O(per-rank items) instead of O(total items) rescans.
    """

    def __init__(self, items: list[TransferItem], src_nranks: int,
                 dst_nranks: int):
        self.items = sorted(
            items, key=lambda it: (it.src, it.dst, it.region.lo))
        self.src_nranks = src_nranks
        self.dst_nranks = dst_nranks
        sends: list[list[tuple[int, Region]]] = [[] for _ in range(src_nranks)]
        recvs: list[list[tuple[int, Region]]] = [[] for _ in range(dst_nranks)]
        for it in self.items:
            # items are (src, dst, lo)-sorted, so each send list arrives
            # ordered by (dst, lo) already.
            sends[it.src].append((it.dst, it.region))
            recvs[it.dst].append((it.src, it.region))
        for lst in recvs:
            lst.sort(key=lambda t: (t[0], t[1].lo))
        self._sends = sends
        self._recvs = recvs
        vol = lambda region: region.volume  # noqa: E731
        self._send_groups = [_group_by_peer(lst, vol) for lst in sends]
        self._recv_groups = [_group_by_peer(lst, vol) for lst in recvs]
        #: compiled index plans, keyed ("send"/"recv", rank) — see
        #: send_plan/recv_plan.
        self._plans: dict[tuple[str, int], "RankPlan"] = {}
        #: memoized collective round plans, keyed (itemsize, round_bytes)
        self._coll_plans: dict[tuple[int, int], object] = {}

    # -- per-rank views -------------------------------------------------------

    def sends_from(self, src: int) -> list[tuple[int, Region]]:
        """(dst, region) pairs rank ``src`` must send, in wire order."""
        if not (0 <= src < self.src_nranks):
            return []
        return list(self._sends[src])

    def recvs_at(self, dst: int) -> list[tuple[int, Region]]:
        """(src, region) pairs rank ``dst`` must receive.

        Ordered by (src, region) — the same relative order per source as
        :meth:`sends_from` produces, so FIFO matching lines up.
        """
        if not (0 <= dst < self.dst_nranks):
            return []
        return list(self._recvs[dst])

    # -- per-pair coalescing groups ------------------------------------------

    def send_groups(self, src: int) -> list[tuple[int, list[Region], np.ndarray]]:
        """Per-destination coalescing groups for rank ``src``:
        ``(dst, regions, offsets)`` with regions in wire order and
        ``offsets`` the flattened ``np.int64`` element offsets (total
        appended).  Callers must not mutate the returned lists."""
        if not (0 <= src < self.src_nranks):
            return []
        return self._send_groups[src]

    def recv_groups(self, dst: int) -> list[tuple[int, list[Region], np.ndarray]]:
        """Per-source coalescing groups for rank ``dst``; region order
        matches the sender's :meth:`send_groups` order, so one packed
        buffer per pair unpacks positionally."""
        if not (0 <= dst < self.dst_nranks):
            return []
        return self._recv_groups[dst]

    # -- compiled index plans ------------------------------------------------

    def send_plan(self, src: int, owned_regions) -> "RankPlan":
        """Compiled gather plan for schedule rank ``src``: one flat
        index array (or contiguous slice) per destination, addressing
        the rank's consolidated local buffer.  ``owned_regions`` is the
        rank's patch layout (``descriptor.local_regions(src)``); plans
        are compiled on first use and cached for the schedule's
        lifetime, which is sound because every array replayed against
        this schedule conforms to the same template."""
        return self._plan("send", src, self._send_groups[src], owned_regions)

    def recv_plan(self, dst: int, owned_regions) -> "RankPlan":
        """Compiled scatter plan for schedule rank ``dst`` (see
        :meth:`send_plan`)."""
        return self._plan("recv", dst, self._recv_groups[dst], owned_regions)

    def _plan(self, side: str, rank: int, groups, owned_regions) -> "RankPlan":
        key = (side, rank)
        plan = self._plans.get(key)
        if plan is None:
            plan = compile_rank_plan(groups, list(owned_regions))
            self._plans[key] = plan
        return plan

    def plan_if_compiled(self, side: str, rank: int) -> "RankPlan | None":
        """The cached compiled plan for ``(side, rank)``, or ``None`` if
        it was never compiled — the delta compiler's probe for artifacts
        worth carrying across a resize (no compilation is triggered)."""
        return self._plans.get((side, rank))

    def seed_plan(self, side: str, rank: int, plan: "RankPlan") -> None:
        """Install a precompiled :class:`~repro.schedule.indexplan.
        RankPlan` for ``(side, rank)`` — the warm-start path of
        :func:`repro.schedule.delta.warm_start_plans`.  The caller owns
        the soundness argument: the plan must equal what
        :meth:`send_plan`/:meth:`recv_plan` would compile (same wire
        regions over the same patch layout)."""
        if side not in ("send", "recv"):
            raise ScheduleError(f"unknown schedule side {side!r}")
        self._plans[(side, rank)] = plan

    def collective_plan(self, itemsize: int, round_bytes: int):
        """The memory-bounded round decomposition of this schedule (see
        :func:`repro.schedule.collplan.plan_collective_rounds`), memoized
        per (itemsize, round_bytes) next to the index plans — sound
        because the decomposition depends only on the schedule's pair
        sizes."""
        key = (int(itemsize), int(round_bytes))
        plan = self._coll_plans.get(key)
        if plan is None:
            from repro.schedule.collplan import plan_collective_rounds
            plan = plan_collective_rounds(self, itemsize=key[0],
                                          round_bytes=key[1])
            self._coll_plans[key] = plan
        return plan

    # -- persistent-channel engines ------------------------------------------

    def persistent_sender(self, inter, array, **kw):
        """A :class:`~repro.schedule.executor.PersistentSender` bound to
        this schedule: pooled pack buffers + move/borrow-semantics
        sends, one :meth:`~repro.schedule.executor.PersistentSender.
        step` per transfer.  Keyword arguments pass through (``tag``,
        ``rank``, ``peer_map``, ``pool``)."""
        from repro.schedule.executor import PersistentSender
        return PersistentSender(self, inter, array, **kw)

    def persistent_receiver(self, inter, array, **kw):
        """A :class:`~repro.schedule.executor.PersistentReceiver` bound
        to this schedule: preposted recv-into-destination slots writing
        straight into ``array``'s consolidated local base (``tag``,
        ``rank``, ``peer_map`` pass through)."""
        from repro.schedule.executor import PersistentReceiver
        return PersistentReceiver(self, inter, array, **kw)

    @property
    def pair_count(self) -> int:
        """Number of communicating (src, dst) rank pairs — the packed
        executors' message count."""
        return sum(len(g) for g in self._send_groups)

    # -- metrics -----------------------------------------------------------------

    @property
    def message_count(self) -> int:
        return len(self.items)

    @property
    def element_count(self) -> int:
        return sum(it.region.volume for it in self.items)

    def nbytes(self, dtype: np.dtype | str = np.float64) -> int:
        return self.element_count * np.dtype(dtype).itemsize

    def entries(self) -> int:
        """Bookkeeping size of the schedule itself."""
        ndim = self.items[0].region.ndim if self.items else 0
        return len(self.items) * (2 + 2 * ndim)

    # -- validation ---------------------------------------------------------------

    def validate(self, src_desc: DistArrayDescriptor,
                 dst_desc: DistArrayDescriptor) -> None:
        """Check schedule completeness and consistency:

        * every item's region is owned by its src on the source side and
          by its dst on the destination side,
        * per destination rank, the received regions exactly tile that
          rank's ownership (every destination element written once).
        """
        if src_desc.shape != dst_desc.shape:
            raise ScheduleError(
                f"template shapes differ: {src_desc.shape} vs {dst_desc.shape}")
        for it in self.items:
            if not src_desc.local_regions(it.src).intersect_region(
                    it.region).volume == it.region.volume:
                raise ScheduleError(
                    f"item {it}: region not owned by source rank {it.src}")
            if not dst_desc.local_regions(it.dst).intersect_region(
                    it.region).volume == it.region.volume:
                raise ScheduleError(
                    f"item {it}: region not owned by dest rank {it.dst}")
        for dst in range(self.dst_nranks):
            incoming = [r for _, r in self.recvs_at(dst)]
            owned = dst_desc.local_regions(dst)
            got = sum(r.volume for r in incoming)
            if got != owned.volume:
                raise ScheduleError(
                    f"dest rank {dst} receives {got} elements but owns "
                    f"{owned.volume}")
            RegionList(incoming)  # disjointness

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"CommSchedule({self.message_count} messages, "
                f"{self.element_count} elements, "
                f"{self.src_nranks}x{self.dst_nranks})")


class LinearSchedule:
    """A linearization-based schedule: runs moved between rank pairs."""

    def __init__(self, items: list[LinearItem], src_nranks: int,
                 dst_nranks: int):
        self.items = sorted(items, key=lambda it: (it.src, it.dst, it.run.lo))
        self.src_nranks = src_nranks
        self.dst_nranks = dst_nranks
        sends: list[list[tuple[int, Run]]] = [[] for _ in range(src_nranks)]
        recvs: list[list[tuple[int, Run]]] = [[] for _ in range(dst_nranks)]
        for it in self.items:
            sends[it.src].append((it.dst, it.run))
            recvs[it.dst].append((it.src, it.run))
        for lst in recvs:
            lst.sort(key=lambda t: (t[0], t[1].lo))
        self._sends = sends
        self._recvs = recvs
        length = lambda run: run.length  # noqa: E731
        self._send_groups = [_group_by_peer(lst, length) for lst in sends]
        self._recv_groups = [_group_by_peer(lst, length) for lst in recvs]
        self._plans: dict[tuple[str, int], RankPlan] = {}
        self._coll_plans: dict[tuple[int, int], object] = {}

    def sends_from(self, src: int) -> list[tuple[int, Run]]:
        if not (0 <= src < self.src_nranks):
            return []
        return list(self._sends[src])

    def recvs_at(self, dst: int) -> list[tuple[int, Run]]:
        if not (0 <= dst < self.dst_nranks):
            return []
        return list(self._recvs[dst])

    # -- per-pair coalescing groups ------------------------------------------

    def send_groups(self, src: int) -> list[tuple[int, list[Run], np.ndarray]]:
        """Per-destination coalescing groups for rank ``src``:
        ``(dst, runs, offsets)`` with runs in wire order (ascending
        ``lo``) and ``offsets`` the ``np.int64`` element offsets of each
        run in the pair's packed buffer (total appended)."""
        if not (0 <= src < self.src_nranks):
            return []
        return self._send_groups[src]

    def recv_groups(self, dst: int) -> list[tuple[int, list[Run], np.ndarray]]:
        """Per-source coalescing groups for rank ``dst``; run order
        matches the sender's :meth:`send_groups` order."""
        if not (0 <= dst < self.dst_nranks):
            return []
        return self._recv_groups[dst]

    @property
    def pair_count(self) -> int:
        """Number of communicating (src, dst) rank pairs — the coalesced
        executors' message count."""
        return sum(len(g) for g in self._send_groups)

    # -- compiled index plans ------------------------------------------------

    def send_plan(self, src: int, indices_of) -> RankPlan:
        """Compiled gather plan for rank ``src``: ``indices_of(run)``
        maps each run to its flat indices in the rank's local storage
        (e.g. AttrVect rows, linearization storage positions).  Compiled
        once per rank and cached for the schedule's lifetime — every
        caller of one schedule instance must therefore supply an
        equivalent ``indices_of`` mapping."""
        return self._lin_plan("send", src, self._send_groups[src], indices_of)

    def recv_plan(self, dst: int, indices_of) -> RankPlan:
        """Compiled scatter plan for rank ``dst`` (see :meth:`send_plan`)."""
        return self._lin_plan("recv", dst, self._recv_groups[dst], indices_of)

    def _lin_plan(self, side: str, rank: int, groups, indices_of) -> RankPlan:
        key = (side, rank)
        plan = self._plans.get(key)
        if plan is None:
            plan = compile_pair_plans(groups, indices_of)
            self._plans[key] = plan
        return plan

    def collective_plan(self, itemsize: int, round_bytes: int):
        """Memory-bounded round decomposition (see
        :meth:`CommSchedule.collective_plan`)."""
        key = (int(itemsize), int(round_bytes))
        plan = self._coll_plans.get(key)
        if plan is None:
            from repro.schedule.collplan import plan_collective_rounds
            plan = plan_collective_rounds(self, itemsize=key[0],
                                          round_bytes=key[1])
            self._coll_plans[key] = plan
        return plan

    @property
    def message_count(self) -> int:
        return len(self.items)

    @property
    def element_count(self) -> int:
        return sum(it.run.length for it in self.items)

    def entries(self) -> int:
        return len(self.items) * 4

    def validate(self, src_lin: Linearization, dst_lin: Linearization) -> None:
        """Every destination position covered exactly once by items that
        the source side actually owns."""
        if src_lin.total != dst_lin.total:
            raise ScheduleError(
                f"linear spaces differ: {src_lin.total} vs {dst_lin.total}")
        marks = np.zeros(dst_lin.total, dtype=np.int32)
        for it in self.items:
            owned = any(r.intersect(it.run) is not None and
                        r.lo <= it.run.lo and it.run.hi <= r.hi
                        for r in src_lin.runs(it.src))
            if not owned:
                raise ScheduleError(
                    f"item {it}: run not owned by source rank {it.src}")
            marks[it.run.lo:it.run.hi] += 1
        if not np.all(marks == 1):
            bad = int(np.flatnonzero(marks != 1)[0])
            raise ScheduleError(
                f"linear position {bad} transferred {int(marks[bad])} times")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"LinearSchedule({self.message_count} runs, "
                f"{self.element_count} elements)")
