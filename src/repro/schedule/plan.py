"""Schedule data structures.

A schedule is pure data — (source rank, destination rank, what-to-move)
triples in a deterministic order — so it can be computed once, cached,
shipped to a third party, or replayed against any array conforming to
the same templates.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ScheduleError
from repro.dad.descriptor import DistArrayDescriptor
from repro.linearize.linearization import Linearization, Run
from repro.util.regions import Region, RegionList


@dataclass(frozen=True, slots=True)
class TransferItem:
    """Move ``region`` (global coordinates) from src rank to dst rank."""

    src: int
    dst: int
    region: Region


@dataclass(frozen=True, slots=True)
class LinearItem:
    """Move linear interval ``run`` from src rank to dst rank."""

    src: int
    dst: int
    run: Run


class CommSchedule:
    """A region-based communication schedule between two templates."""

    def __init__(self, items: list[TransferItem], src_nranks: int,
                 dst_nranks: int):
        self.items = sorted(
            items, key=lambda it: (it.src, it.dst, it.region.lo))
        self.src_nranks = src_nranks
        self.dst_nranks = dst_nranks

    # -- per-rank views -------------------------------------------------------

    def sends_from(self, src: int) -> list[tuple[int, Region]]:
        """(dst, region) pairs rank ``src`` must send, in wire order."""
        return [(it.dst, it.region) for it in self.items if it.src == src]

    def recvs_at(self, dst: int) -> list[tuple[int, Region]]:
        """(src, region) pairs rank ``dst`` must receive.

        Ordered by (src, region) — the same relative order per source as
        :meth:`sends_from` produces, so FIFO matching lines up.
        """
        return sorted(
            ((it.src, it.region) for it in self.items if it.dst == dst),
            key=lambda t: (t[0], t[1].lo))

    # -- metrics -----------------------------------------------------------------

    @property
    def message_count(self) -> int:
        return len(self.items)

    @property
    def element_count(self) -> int:
        return sum(it.region.volume for it in self.items)

    def nbytes(self, dtype: np.dtype | str = np.float64) -> int:
        return self.element_count * np.dtype(dtype).itemsize

    def entries(self) -> int:
        """Bookkeeping size of the schedule itself."""
        ndim = self.items[0].region.ndim if self.items else 0
        return len(self.items) * (2 + 2 * ndim)

    # -- validation ---------------------------------------------------------------

    def validate(self, src_desc: DistArrayDescriptor,
                 dst_desc: DistArrayDescriptor) -> None:
        """Check schedule completeness and consistency:

        * every item's region is owned by its src on the source side and
          by its dst on the destination side,
        * per destination rank, the received regions exactly tile that
          rank's ownership (every destination element written once).
        """
        if src_desc.shape != dst_desc.shape:
            raise ScheduleError(
                f"template shapes differ: {src_desc.shape} vs {dst_desc.shape}")
        for it in self.items:
            if not src_desc.local_regions(it.src).intersect_region(
                    it.region).volume == it.region.volume:
                raise ScheduleError(
                    f"item {it}: region not owned by source rank {it.src}")
            if not dst_desc.local_regions(it.dst).intersect_region(
                    it.region).volume == it.region.volume:
                raise ScheduleError(
                    f"item {it}: region not owned by dest rank {it.dst}")
        for dst in range(self.dst_nranks):
            incoming = [r for _, r in self.recvs_at(dst)]
            owned = dst_desc.local_regions(dst)
            got = sum(r.volume for r in incoming)
            if got != owned.volume:
                raise ScheduleError(
                    f"dest rank {dst} receives {got} elements but owns "
                    f"{owned.volume}")
            RegionList(incoming)  # disjointness

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"CommSchedule({self.message_count} messages, "
                f"{self.element_count} elements, "
                f"{self.src_nranks}x{self.dst_nranks})")


class LinearSchedule:
    """A linearization-based schedule: runs moved between rank pairs."""

    def __init__(self, items: list[LinearItem], src_nranks: int,
                 dst_nranks: int):
        self.items = sorted(items, key=lambda it: (it.src, it.dst, it.run.lo))
        self.src_nranks = src_nranks
        self.dst_nranks = dst_nranks

    def sends_from(self, src: int) -> list[tuple[int, Run]]:
        return [(it.dst, it.run) for it in self.items if it.src == src]

    def recvs_at(self, dst: int) -> list[tuple[int, Run]]:
        return sorted(((it.src, it.run) for it in self.items if it.dst == dst),
                      key=lambda t: (t[0], t[1].lo))

    @property
    def message_count(self) -> int:
        return len(self.items)

    @property
    def element_count(self) -> int:
        return sum(it.run.length for it in self.items)

    def entries(self) -> int:
        return len(self.items) * 4

    def validate(self, src_lin: Linearization, dst_lin: Linearization) -> None:
        """Every destination position covered exactly once by items that
        the source side actually owns."""
        if src_lin.total != dst_lin.total:
            raise ScheduleError(
                f"linear spaces differ: {src_lin.total} vs {dst_lin.total}")
        marks = np.zeros(dst_lin.total, dtype=np.int32)
        for it in self.items:
            owned = any(r.intersect(it.run) is not None and
                        r.lo <= it.run.lo and it.run.hi <= r.hi
                        for r in src_lin.runs(it.src))
            if not owned:
                raise ScheduleError(
                    f"item {it}: run not owned by source rank {it.src}")
            marks[it.run.lo:it.run.hi] += 1
        if not np.all(marks == 1):
            bad = int(np.flatnonzero(marks != 1)[0])
            raise ScheduleError(
                f"linear position {bad} transferred {int(marks[bad])} times")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"LinearSchedule({self.message_count} runs, "
                f"{self.element_count} elements)")
