"""Uses/provides ports (paper §2.1).

"A provides port is a public interface that a component implements,
that can be referenced and used by other components.  A uses port is a
connection end point that can be attached to a provides port of the
same type.  Once connected, the uses port becomes a reference to the
provides port and the component can make method invocations on it."

In a direct-connected framework the reference is the provider's
implementation object itself ("a refined form of library call"); in a
distributed framework it is an RMI proxy.  Both satisfy the same
calling convention: attribute access returns a callable.
"""

from __future__ import annotations

from typing import Any

from repro.errors import PortError
from repro.cca.sidl import PortType


class ProvidesPort:
    """A provided interface: a port type plus the implementing object."""

    def __init__(self, port_type: PortType, impl: Any):
        for m in port_type.methods:
            if not callable(getattr(impl, m.name, None)):
                raise PortError(
                    f"implementation {type(impl).__name__} lacks method "
                    f"{m.name!r} of port type {port_type.name!r}")
        self.port_type = port_type
        self.impl = impl


class BoundPort:
    """What a component gets back from ``get_port``: a type-checked view
    of the provider restricted to the declared interface."""

    def __init__(self, port_type: PortType, target: Any):
        self._port_type = port_type
        self._target = target

    @property
    def port_type(self) -> PortType:
        return self._port_type

    def __getattr__(self, name: str):
        if not self._port_type.has_method(name):
            raise PortError(
                f"port type {self._port_type.name!r} has no method {name!r}")
        return getattr(self._target, name)


class UsesPort:
    """A connection end point; unusable until connected."""

    def __init__(self, port_type: PortType):
        self.port_type = port_type
        self._bound: BoundPort | None = None

    def connect(self, provides: ProvidesPort) -> None:
        if provides.port_type.name != self.port_type.name:
            raise PortError(
                f"type mismatch: uses port of type {self.port_type.name!r} "
                f"cannot attach to provides port {provides.port_type.name!r}")
        self._bound = BoundPort(self.port_type, provides.impl)

    def connect_proxy(self, proxy: Any) -> None:
        """Attach an RMI proxy (distributed frameworks)."""
        self._bound = BoundPort(self.port_type, proxy)

    def disconnect(self) -> None:
        self._bound = None

    @property
    def connected(self) -> bool:
        return self._bound is not None

    def get(self) -> BoundPort:
        if self._bound is None:
            raise PortError(
                f"uses port of type {self.port_type.name!r} is not connected")
        return self._bound
