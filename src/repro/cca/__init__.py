"""CCA component model (paper §2.1).

Components, uses/provides ports, and two framework flavours:

* :class:`DirectFramework` — all components of a process share the
  address space; a cohort of identical instances across an SPMD job
  forms a *parallel component*; port invocation is a function call.
* :class:`DistributedFramework` (``repro.cca.distributed``) — each
  component owns its own set of processes; ports become parallel remote
  method invocations through :mod:`repro.prmi`.

Interfaces are declared with a SIDL-lite declarative layer
(:mod:`repro.cca.sidl`) carrying the PRMI attributes the paper's systems
need: ``collective``/``independent`` invocation, ``oneway`` methods, and
``simple``/``parallel`` argument kinds.
"""

from repro.cca.sidl import MethodSpec, Param, PortType
from repro.cca.ports import ProvidesPort, UsesPort
from repro.cca.component import Component, Services
from repro.cca.framework import DirectFramework, GO_PORT

__all__ = [
    "MethodSpec",
    "Param",
    "PortType",
    "ProvidesPort",
    "UsesPort",
    "Component",
    "Services",
    "DirectFramework",
    "GO_PORT",
]
