"""Components and the Services object (CCA spec shape).

A component interacts with its framework exclusively through the
:class:`Services` handle passed to :meth:`Component.set_services` —
registering the ports it provides, declaring the ports it uses, and
fetching connected ports at run time.
"""

from __future__ import annotations

from typing import Any, TYPE_CHECKING

from repro.errors import PortError
from repro.cca.ports import BoundPort, ProvidesPort, UsesPort
from repro.cca.sidl import PortType

if TYPE_CHECKING:  # pragma: no cover
    from repro.simmpi.communicator import Communicator


class Services:
    """Framework services handed to one component instance."""

    def __init__(self, instance_name: str, comm: "Communicator | None" = None):
        self.instance_name = instance_name
        #: The cohort communicator (None for a purely serial component).
        self.comm = comm
        self._provides: dict[str, ProvidesPort] = {}
        self._uses: dict[str, UsesPort] = {}
        #: framework-level services (e.g. M×N) keyed by service name
        self._framework_services: dict[str, Any] = {}

    # -- provides side ------------------------------------------------------

    def add_provides_port(self, name: str, port_type: PortType,
                          impl: Any) -> None:
        if name in self._provides:
            raise PortError(f"provides port {name!r} already registered")
        self._provides[name] = ProvidesPort(port_type, impl)

    def get_provides_port(self, name: str) -> ProvidesPort:
        try:
            return self._provides[name]
        except KeyError:
            raise PortError(
                f"component {self.instance_name!r} provides no port "
                f"{name!r}") from None

    def provided_port_names(self) -> list[str]:
        return sorted(self._provides)

    # -- uses side --------------------------------------------------------------

    def register_uses_port(self, name: str, port_type: PortType) -> None:
        if name in self._uses:
            raise PortError(f"uses port {name!r} already registered")
        self._uses[name] = UsesPort(port_type)

    def uses_port(self, name: str) -> UsesPort:
        try:
            return self._uses[name]
        except KeyError:
            raise PortError(
                f"component {self.instance_name!r} registered no uses port "
                f"{name!r}") from None

    def get_port(self, name: str) -> BoundPort:
        """Fetch a connected uses port for invocation."""
        return self.uses_port(name).get()

    def release_port(self, name: str) -> None:
        """CCA convention: signal the component is done with the port."""
        self.uses_port(name)

    # -- framework services --------------------------------------------------------

    def register_framework_service(self, name: str, service: Any) -> None:
        self._framework_services[name] = service

    def get_framework_service(self, name: str) -> Any:
        try:
            return self._framework_services[name]
        except KeyError:
            raise PortError(f"no framework service {name!r}") from None


class Component:
    """Base class for CCA components.

    Subclasses override :meth:`set_services` to register their ports.
    One instance exists per process the component spans; the set of
    instances across a cohort communicator is the *parallel component*.
    """

    def set_services(self, services: Services) -> None:
        """Called by the framework right after instantiation."""
        self.services = services
