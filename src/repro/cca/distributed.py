"""The distributed framework (paper §2.1, Fig. 2 right).

"Components in a distributed framework each run in different sets of
processes which may be distributed across multiple machines.  In this
case, port invocations become a refined form of Remote Method
Invocation ... All inter-component communication in distributed
frameworks is M×N."

Each parallel component runs in its own SPMD job with one
:class:`DistributedFramework` instance per rank.  Uses ports attach to
:class:`RemotePortProxy` objects that marshal invocations through the
PRMI engine; provides ports are serviced by PRMI callee endpoints.  To
the application code the interfaces are identical to the
direct-connected case — "to an application user there is no difference
in the interfaces".
"""

from __future__ import annotations

from typing import Any, Type

from repro.errors import PortError, PRMIError
from repro.cca.component import Component
from repro.cca.framework import DirectFramework
from repro.prmi.endpoint import CalleeEndpoint, CallerEndpoint
from repro.simmpi.communicator import Communicator
from repro.simmpi.intercomm import NameService


class RemotePortProxy:
    """Caller-side stand-in for a remote provides port.

    Collective methods are called directly (``proxy.solve(x=1)``);
    independent methods additionally take the target rank as the
    ``_callee`` keyword (``proxy.poke(_callee=2, v=5)``).
    """

    def __init__(self, endpoint: CallerEndpoint):
        self._endpoint = endpoint

    def __getattr__(self, name: str):
        spec = self._endpoint.port_type.method(name)

        def call(_callee: int | None = None, **kwargs: Any) -> Any:
            if spec.invocation == "independent":
                if _callee is None:
                    raise PRMIError(
                        f"independent method {name!r} needs _callee=<rank>")
                return self._endpoint.invoke_independent(
                    name, _callee, **kwargs)
            if _callee is not None:
                raise PRMIError(
                    f"collective method {name!r} takes no _callee")
            return self._endpoint.invoke(name, **kwargs)

        call.__name__ = name
        return call


class DistributedFramework(DirectFramework):
    """Per-rank framework for one parallel component of a distributed
    application.

    Extends the direct framework (local components still connect
    directly) with remote connection endpoints over a name service.
    """

    def __init__(self, comm: Communicator, nameservice: NameService,
                 *, name: str = "distributed",
                 verify_simple: bool = False):
        super().__init__(comm, name=name)
        self.nameservice = nameservice
        self.verify_simple = verify_simple
        self._servers: dict[str, CalleeEndpoint] = {}

    # -- remote wiring ----------------------------------------------------

    def serve_connection(self, provider: str, provides_port: str,
                         service_name: str) -> CalleeEndpoint:
        """Publish ``provider``'s provides port under ``service_name``.

        Collective over the cohort; blocks until a peer framework calls
        :meth:`connect_remote` with the same name.  Returns the callee
        endpoint whose ``serve_one()`` services invocations.
        """
        provides = self._services_for(provider).get_provides_port(
            provides_port)
        inter = self.nameservice.accept(service_name, self.comm)
        endpoint = CalleeEndpoint(self.comm, inter, provides.port_type,
                                  provides.impl,
                                  verify_simple=self.verify_simple)
        self._servers[service_name] = endpoint
        return endpoint

    def connect_remote(self, user: str, uses_port: str,
                       service_name: str) -> CallerEndpoint:
        """Attach ``user``'s uses port to a remote provides port.

        Collective over the cohort; pairs with the provider's
        :meth:`serve_connection`.  After this, ``get_port`` on the user
        side returns an RMI proxy with the declared interface.
        """
        uses = self._services_for(user).uses_port(uses_port)
        inter = self.nameservice.connect(service_name, self.comm)
        endpoint = CallerEndpoint(self.comm, inter, uses.port_type,
                                  verify_simple=self.verify_simple)
        uses.connect_proxy(RemotePortProxy(endpoint))
        return endpoint

    def server(self, service_name: str) -> CalleeEndpoint:
        try:
            return self._servers[service_name]
        except KeyError:
            raise PortError(
                f"no served connection {service_name!r}") from None
