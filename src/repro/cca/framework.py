"""The direct-connected framework (paper §2.1, Fig. 2 left).

"In direct-connected frameworks, all components in one process live in
the same address space and a port invocation then looks like a refined
form of library call."  The framework object itself is SPMD: every rank
of the job instantiates it and performs the same create/connect calls,
so a created component's instances across the job form its cohort.
"""

from __future__ import annotations

from typing import Any, Type

from repro.errors import PortError
from repro.cca.component import Component, Services
from repro.cca.sidl import MethodSpec, PortType

#: Name of the conventional Go port (the component "main").
GO_PORT = "go"

#: The standard Go port type: a single collective ``go()`` method.
GO_PORT_TYPE = PortType("gov.cca.ports.GoPort",
                        (MethodSpec("go", (), returns=True),))


class DirectFramework:
    """Per-rank framework instance managing co-located components."""

    def __init__(self, comm=None, *, name: str = "direct"):
        #: Cohort communicator shared by the framework's components
        #: (None for single-process use).
        self.comm = comm
        self.name = name
        self._components: dict[str, Component] = {}
        self._services: dict[str, Services] = {}
        self._framework_services: dict[str, Any] = {}

    # -- lifecycle --------------------------------------------------------

    def create_component(self, instance_name: str,
                         component_class: Type[Component],
                         *args: Any, **kwargs: Any) -> Component:
        """Instantiate a component and hand it its Services object."""
        if instance_name in self._components:
            raise PortError(
                f"component instance {instance_name!r} already exists")
        comp = component_class(*args, **kwargs)
        services = Services(instance_name, self.comm)
        for sname, svc in self._framework_services.items():
            services.register_framework_service(sname, svc)
        comp.set_services(services)
        self._components[instance_name] = comp
        self._services[instance_name] = services
        return comp

    def destroy_component(self, instance_name: str) -> None:
        if instance_name not in self._components:
            raise PortError(f"no component instance {instance_name!r}")
        del self._components[instance_name]
        del self._services[instance_name]

    def component(self, instance_name: str) -> Component:
        try:
            return self._components[instance_name]
        except KeyError:
            raise PortError(
                f"no component instance {instance_name!r}") from None

    def component_names(self) -> list[str]:
        return sorted(self._components)

    # -- wiring ---------------------------------------------------------------

    def connect(self, user: str, uses_port: str,
                provider: str, provides_port: str) -> None:
        """Attach ``user``'s uses port to ``provider``'s provides port.

        Direct connection: after this, ``get_port`` on the user side
        returns a type-checked view of the provider's implementation —
        a plain function call at invocation time.
        """
        user_services = self._services_for(user)
        provider_services = self._services_for(provider)
        provides = provider_services.get_provides_port(provides_port)
        user_services.uses_port(uses_port).connect(provides)

    def disconnect(self, user: str, uses_port: str) -> None:
        self._services_for(user).uses_port(uses_port).disconnect()

    def _services_for(self, instance_name: str) -> Services:
        try:
            return self._services[instance_name]
        except KeyError:
            raise PortError(
                f"no component instance {instance_name!r}") from None

    # -- framework services (e.g. the M×N service) ----------------------------

    def register_framework_service(self, name: str, service: Any) -> None:
        self._framework_services[name] = service
        for services in self._services.values():
            services.register_framework_service(name, service)

    # -- Go ports -----------------------------------------------------------------

    def run_go(self, instance_name: str) -> Any:
        """Invoke a component's Go port — "the component equivalent of
        the 'main' function" (§4.3 footnote)."""
        services = self._services_for(instance_name)
        go = services.get_provides_port(GO_PORT)
        return go.impl.go()

    def run_all_go(self) -> dict[str, Any]:
        """Start every component that provides a Go port (DCA §4.3:
        "all CCA Go ports are called at startup time")."""
        results = {}
        for name in self.component_names():
            services = self._services[name]
            if GO_PORT in services.provided_port_names():
                results[name] = self.run_go(name)
        return results
