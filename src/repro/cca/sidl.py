"""SIDL-lite: declarative port interface definitions.

The paper's systems hang their PRMI semantics off IDL annotations: the
SCIRun2 SIDL extension marks methods ``independent`` or ``collective``
and adds a distributed-array parameter type (§4.2); DCA's stub generator
reads ``parallel`` argument keywords and appends a participation
communicator (§4.3); CORBA-style ``oneway`` methods come from §2.4.
This module is the Python stand-in for that IDL layer: pure declarative
data that stub generators and dispatchers consume.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import OneWayReturnError, PRMIError


@dataclass(frozen=True)
class Param:
    """One method parameter.

    ``mode``: ``in`` (caller -> callee), ``out`` (callee -> caller) or
    ``inout``.  ``kind``: ``simple`` (same value on every calling rank)
    or ``parallel`` (a decomposed data structure that the framework must
    gather/redistribute — §2.4).
    """

    name: str
    mode: str = "in"
    kind: str = "simple"

    def __post_init__(self) -> None:
        if self.mode not in ("in", "out", "inout"):
            raise PRMIError(f"param {self.name!r}: bad mode {self.mode!r}")
        if self.kind not in ("simple", "parallel"):
            raise PRMIError(f"param {self.name!r}: bad kind {self.kind!r}")


@dataclass(frozen=True)
class MethodSpec:
    """One port method with its PRMI attributes.

    ``invocation``: ``collective`` (all participating caller ranks call
    together; the framework groups the calls into one logical
    invocation) or ``independent`` (one caller rank to one callee rank).
    ``oneway``: the caller continues immediately; no return value and no
    out arguments are allowed (§2.4).
    """

    name: str
    params: tuple[Param, ...] = ()
    returns: bool = True
    invocation: str = "collective"
    oneway: bool = False

    def __post_init__(self) -> None:
        if self.invocation not in ("collective", "independent"):
            raise PRMIError(
                f"method {self.name!r}: bad invocation {self.invocation!r}")
        if self.oneway:
            if self.returns:
                raise OneWayReturnError(
                    f"one-way method {self.name!r} must not return a value")
            if any(p.mode in ("out", "inout") for p in self.params):
                raise OneWayReturnError(
                    f"one-way method {self.name!r} must not have out args")

    @property
    def in_params(self) -> tuple[Param, ...]:
        return tuple(p for p in self.params if p.mode in ("in", "inout"))

    @property
    def out_params(self) -> tuple[Param, ...]:
        return tuple(p for p in self.params if p.mode in ("out", "inout"))

    @property
    def parallel_params(self) -> tuple[Param, ...]:
        return tuple(p for p in self.params if p.kind == "parallel")


@dataclass(frozen=True)
class PortType:
    """A named port interface: a set of method specs."""

    name: str
    methods: tuple[MethodSpec, ...] = ()

    def __post_init__(self) -> None:
        names = [m.name for m in self.methods]
        if len(names) != len(set(names)):
            raise PRMIError(f"port {self.name!r} has duplicate method names")

    def method(self, name: str) -> MethodSpec:
        for m in self.methods:
            if m.name == name:
                return m
        raise PRMIError(f"port {self.name!r} has no method {name!r}")

    def has_method(self, name: str) -> bool:
        return any(m.name == name for m in self.methods)


def port(name: str, *methods: MethodSpec) -> PortType:
    """Concise PortType constructor."""
    return PortType(name, tuple(methods))


def method(name: str, *params: Param, returns: bool = True,
           invocation: str = "collective", oneway: bool = False) -> MethodSpec:
    """Concise MethodSpec constructor."""
    return MethodSpec(name, tuple(params), returns=returns,
                      invocation=invocation, oneway=oneway)


def arg(name: str, mode: str = "in", kind: str = "simple") -> Param:
    """Concise Param constructor."""
    return Param(name, mode, kind)
