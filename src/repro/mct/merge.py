"""Merging state and flux data from multiple sources.

"A facility for merging of state and flux data from multiple sources
for use by a particular model (e.g., blending of land, ocean, and sea
ice data for use by an atmosphere model)."

Each source contributes with a per-point weight (typically a masked
area fraction); the merge normalizes by the total weight at each point.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import MCTError
from repro.mct.attrvect import AttrVect


def merge(sources: Sequence[tuple[AttrVect, np.ndarray]],
          *, fields: Sequence[str] | None = None) -> AttrVect:
    """Weighted, per-point blend of several AttrVects.

    Parameters
    ----------
    sources:
        ``(av, weight)`` pairs over the same point set; ``weight`` is a
        per-point non-negative array (e.g. land fraction).
    fields:
        Fields to merge (default: the first source's fields; every
        source must provide them).

    Points where the total weight is zero get the value 0.
    """
    if not sources:
        raise MCTError("merge needs at least one source")
    lsize = sources[0][0].lsize
    names = list(fields) if fields is not None else list(sources[0][0].fields)
    out = AttrVect(names, lsize)
    total_w = np.zeros(lsize)
    for av, w in sources:
        w = np.asarray(w, dtype=np.float64)
        if av.lsize != lsize or w.shape != (lsize,):
            raise MCTError(
                f"source sizes differ: av {av.lsize}, weight {w.shape}, "
                f"expected {lsize}")
        if np.any(w < 0):
            raise MCTError("merge weights must be non-negative")
        for name in names:
            out[name] = out[name] + w * av[name]
        total_w += w
    nz = total_w > 0
    for name in names:
        vals = out[name]
        vals[nz] /= total_w[nz]
        vals[~nz] = 0.0
        out[name] = vals
    return out
