"""Router: MCT's inter-model communication scheduler.

Built once from the source and destination GlobalSegMaps (schedule
reuse), a Router moves an AttrVect between two models living on
disjoint rank sets of the world communicator.  All fields of a transfer
unit travel in one message (columns of the AttrVect matrix) — the
multi-field idiom; ``fused=False`` ships field-by-field for the E13
ablation.
"""

from __future__ import annotations

import numpy as np

from repro.errors import MCTError
from repro.mct.attrvect import AttrVect
from repro.mct.gsmap import GlobalSegMap
from repro.mct.registry import MCTWorld
from repro.schedule.builder import build_linear_schedule
from repro.schedule.plan import LinearSchedule

ROUTER_TAG = 160


class _GsmapLinearization:
    """Adapter: a GlobalSegMap as a linearization (runs provider)."""

    def __init__(self, gsmap: GlobalSegMap):
        self.gsmap = gsmap
        self.nranks = gsmap.nranks

    @property
    def total(self) -> int:
        return self.gsmap.gsize

    def runs(self, rank: int):
        return self.gsmap.runs(rank)


def build_gsmap_schedule(src: GlobalSegMap,
                         dst: GlobalSegMap) -> LinearSchedule:
    """Linear schedule between two segmented decompositions."""
    if src.gsize != dst.gsize:
        raise MCTError(
            f"GlobalSegMap sizes differ: {src.gsize} vs {dst.gsize}")
    return build_linear_schedule(_GsmapLinearization(src),
                                 _GsmapLinearization(dst))


def _run_view(av: AttrVect, gsmap: GlobalSegMap, pe: int, run) -> np.ndarray:
    """View of the AttrVect rows holding global interval ``run``.

    Valid because local storage order follows segments sorted by global
    start, so a (sub-)run of coalesced adjacent segments is contiguous
    locally.
    """
    off = gsmap.local_offset(pe, run.lo)
    return av.data[off:off + run.length, :]


class Router:
    """Inter-model transfer scheduler over an MCTWorld."""

    def __init__(self, world: MCTWorld, src_model: str, dst_model: str,
                 src_gsmap: GlobalSegMap, dst_gsmap: GlobalSegMap):
        if src_gsmap.nranks != world.size_of(src_model):
            raise MCTError(
                f"source GlobalSegMap has {src_gsmap.nranks} ranks but "
                f"model {src_model!r} has {world.size_of(src_model)}")
        if dst_gsmap.nranks != world.size_of(dst_model):
            raise MCTError(
                f"dest GlobalSegMap has {dst_gsmap.nranks} ranks but "
                f"model {dst_model!r} has {world.size_of(dst_model)}")
        self.world = world
        self.src_model = src_model
        self.dst_model = dst_model
        self.src_gsmap = src_gsmap
        self.dst_gsmap = dst_gsmap
        self.schedule = build_gsmap_schedule(src_gsmap, dst_gsmap)
        self._src_ranks = world.ranks_of(src_model)
        self._dst_ranks = world.ranks_of(dst_model)

    def transfer(self, av_send: AttrVect | None = None,
                 av_recv: AttrVect | None = None, *,
                 fused: bool = True, tag: int = ROUTER_TAG) -> int:
        """Move data per the schedule; collective over both models.

        Source ranks pass ``av_send``; destination ranks pass
        ``av_recv``.  A rank in neither model passes nothing and the
        call is a no-op there.  Returns elements moved at this rank.
        """
        comm = self.world.world
        me = comm.rank
        moved = 0
        if me in self._src_ranks:
            if av_send is None:
                raise MCTError(f"rank {me} is in {self.src_model!r} but "
                               f"passed no send AttrVect")
            s = self._src_ranks.index(me)
            if av_send.lsize != self.src_gsmap.local_size(s):
                raise MCTError(
                    f"send AttrVect lsize {av_send.lsize} != gsmap local "
                    f"size {self.src_gsmap.local_size(s)}")
            for d, run in self.schedule.sends_from(s):
                block = _run_view(av_send, self.src_gsmap, s, run)
                if fused:
                    comm.send(block, self._dst_ranks[d], tag)
                else:
                    for col in range(block.shape[1]):
                        comm.send(block[:, col].copy(),
                                  self._dst_ranks[d], tag)
                moved += run.length
        if me in self._dst_ranks:
            if av_recv is None:
                raise MCTError(f"rank {me} is in {self.dst_model!r} but "
                               f"passed no recv AttrVect")
            d = self._dst_ranks.index(me)
            if av_recv.lsize != self.dst_gsmap.local_size(d):
                raise MCTError(
                    f"recv AttrVect lsize {av_recv.lsize} != gsmap local "
                    f"size {self.dst_gsmap.local_size(d)}")
            for s, run in self.schedule.recvs_at(d):
                view = _run_view(av_recv, self.dst_gsmap, d, run)
                if fused:
                    view[:] = comm.recv(source=self._src_ranks[s], tag=tag)
                else:
                    for col in range(view.shape[1]):
                        view[:, col] = comm.recv(
                            source=self._src_ranks[s], tag=tag)
                moved += run.length
        return moved

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"Router({self.src_model}->{self.dst_model}, "
                f"{self.schedule.message_count} runs)")
