"""Router: MCT's inter-model communication scheduler.

Built once from the source and destination GlobalSegMaps (schedule
reuse), a Router moves an AttrVect between two models living on
disjoint rank sets of the world communicator.

The transfer runs on **compiled row-index plans**: at first use the
Router turns each (src, dst) rank pair's runs into one flat row-index
array over the AttrVect's local storage (cached on the schedule), so
every pair exchanges exactly **one message** carrying a single 2-D
``(rows, nfields)`` block — all of the pair's runs coalesced in
ascending global order, all fields fused as AttrVect columns.  When a
pair's runs are adjacent in local storage the plan degenerates to a
slice and the send block is a zero-copy view.

``fused=False`` (the E13 ablation) now *only* controls field fusion: it
ships one 1-D per-field message per rank pair (``nfields`` messages per
pair) instead of the single 2-D block, but runs stay coalesced per pair
either way — the historical one-message-per-run-per-field protocol is
gone.
"""

from __future__ import annotations

import numpy as np

from repro.errors import MCTError
from repro.mct.attrvect import AttrVect
from repro.mct.gsmap import GlobalSegMap
from repro.mct.registry import MCTWorld
from repro.schedule.builder import build_linear_schedule
from repro.schedule.plan import LinearSchedule
from repro.simmpi import payload

ROUTER_TAG = 160


class _GsmapLinearization:
    """Adapter: a GlobalSegMap as a linearization (runs provider)."""

    def __init__(self, gsmap: GlobalSegMap):
        self.gsmap = gsmap
        self.nranks = gsmap.nranks

    @property
    def total(self) -> int:
        return self.gsmap.gsize

    def runs(self, rank: int):
        return self.gsmap.runs(rank)


def build_gsmap_schedule(src: GlobalSegMap,
                         dst: GlobalSegMap) -> LinearSchedule:
    """Linear schedule between two segmented decompositions."""
    if src.gsize != dst.gsize:
        raise MCTError(
            f"GlobalSegMap sizes differ: {src.gsize} vs {dst.gsize}")
    return build_linear_schedule(_GsmapLinearization(src),
                                 _GsmapLinearization(dst))


def _run_row_indices(gsmap: GlobalSegMap, pe: int, run) -> np.ndarray:
    """Local AttrVect row indices of global interval ``run`` on ``pe``.

    A single ascending range: local storage order follows segments
    sorted by global start, so a (sub-)run of coalesced adjacent
    segments is contiguous locally.
    """
    off = gsmap.local_offset(pe, run.lo)
    return np.arange(off, off + run.length, dtype=np.int64)


def _pair_rows(plan_pair, av: AttrVect) -> np.ndarray:
    """The AttrVect rows a compiled pair plan addresses — a zero-copy
    view on the slice fast paths (contiguous or strided), a fancy-gather
    otherwise."""
    return av.data[plan_pair.selector, :]


def _pair_wire(plan_pair, av: AttrVect):
    """Transport marker for one pair's fused 2-D block: slice-like pairs
    lend their live view (consumed synchronously by the send), gathered
    blocks move (the fresh fancy-index result has no other owner)."""
    block = _pair_rows(plan_pair, av)
    if plan_pair.idx is None:
        return payload.Borrowed(block)
    return payload.OwnedBuffer(block)


class Router:
    """Inter-model transfer scheduler over an MCTWorld."""

    def __init__(self, world: MCTWorld, src_model: str, dst_model: str,
                 src_gsmap: GlobalSegMap, dst_gsmap: GlobalSegMap):
        if src_gsmap.nranks != world.size_of(src_model):
            raise MCTError(
                f"source GlobalSegMap has {src_gsmap.nranks} ranks but "
                f"model {src_model!r} has {world.size_of(src_model)}")
        if dst_gsmap.nranks != world.size_of(dst_model):
            raise MCTError(
                f"dest GlobalSegMap has {dst_gsmap.nranks} ranks but "
                f"model {dst_model!r} has {world.size_of(dst_model)}")
        self.world = world
        self.src_model = src_model
        self.dst_model = dst_model
        self.src_gsmap = src_gsmap
        self.dst_gsmap = dst_gsmap
        self.schedule = build_gsmap_schedule(src_gsmap, dst_gsmap)
        self._src_ranks = world.ranks_of(src_model)
        self._dst_ranks = world.ranks_of(dst_model)

    def transfer(self, av_send: AttrVect | None = None,
                 av_recv: AttrVect | None = None, *,
                 fused: bool = True, tag: int = ROUTER_TAG) -> int:
        """Move data per the schedule; collective over both models.

        Source ranks pass ``av_send``; destination ranks pass
        ``av_recv``.  A rank in neither model passes nothing and the
        call is a no-op there.  Runs are always coalesced to one block
        per (src, dst) rank pair; ``fused`` only controls whether the
        block's fields travel together (one 2-D message) or one field
        per message.  Both models must agree on ``fused``.  Returns
        elements moved at this rank.
        """
        comm = self.world.world
        me = comm.rank
        moved = 0
        if me in self._src_ranks:
            if av_send is None:
                raise MCTError(f"rank {me} is in {self.src_model!r} but "
                               f"passed no send AttrVect")
            s = self._src_ranks.index(me)
            if av_send.lsize != self.src_gsmap.local_size(s):
                raise MCTError(
                    f"send AttrVect lsize {av_send.lsize} != gsmap local "
                    f"size {self.src_gsmap.local_size(s)}")
            gsmap = self.src_gsmap
            plan = self.schedule.send_plan(
                s, lambda run: _run_row_indices(gsmap, s, run))
            for pp in plan.pairs:
                if fused:
                    comm.send(_pair_wire(pp, av_send),
                              self._dst_ranks[pp.peer], tag)
                else:
                    block = _pair_rows(pp, av_send)
                    for col in range(block.shape[1]):
                        comm.send(np.ascontiguousarray(block[:, col]),
                                  self._dst_ranks[pp.peer], tag)
                moved += pp.size
        if me in self._dst_ranks:
            if av_recv is None:
                raise MCTError(f"rank {me} is in {self.dst_model!r} but "
                               f"passed no recv AttrVect")
            d = self._dst_ranks.index(me)
            if av_recv.lsize != self.dst_gsmap.local_size(d):
                raise MCTError(
                    f"recv AttrVect lsize {av_recv.lsize} != gsmap local "
                    f"size {self.dst_gsmap.local_size(d)}")
            gsmap = self.dst_gsmap
            plan = self.schedule.recv_plan(
                d, lambda run: _run_row_indices(gsmap, d, run))
            for pp in plan.pairs:
                rows = pp.selector
                if fused:
                    av_recv.data[rows, :] = comm.recv(
                        source=self._src_ranks[pp.peer], tag=tag)
                else:
                    for col in range(av_recv.nfields):
                        av_recv.data[rows, col] = comm.recv(
                            source=self._src_ranks[pp.peer], tag=tag)
                moved += pp.size
        return moved

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"Router({self.src_model}->{self.dst_model}, "
                f"{self.schedule.message_count} runs)")
