"""Spatial integrals, averages, and paired conservation checks.

"Spatial integral and averaging facilities that include paired
integrals and averages for use in conservation of global flux integrals
in inter-grid interpolation."
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import MCTError
from repro.mct.attrvect import AttrVect
from repro.simmpi.communicator import Communicator


def _check(av: AttrVect, weights: np.ndarray) -> np.ndarray:
    w = np.asarray(weights, dtype=np.float64)
    if w.shape != (av.lsize,):
        raise MCTError(
            f"weights shape {w.shape} != AttrVect lsize {av.lsize}")
    return w


def global_integral(comm: Communicator, av: AttrVect,
                    weights: np.ndarray,
                    fields: Sequence[str] | None = None) -> dict[str, float]:
    """Weighted global integral ∑ w·f per field (allreduce over comm)."""
    w = _check(av, weights)
    names = list(fields) if fields is not None else list(av.fields)
    local = np.array([float(np.dot(w, av[name])) for name in names])
    total = comm.allreduce(local, op="sum")
    return dict(zip(names, np.atleast_1d(total).tolist()))


def global_average(comm: Communicator, av: AttrVect,
                   weights: np.ndarray,
                   fields: Sequence[str] | None = None) -> dict[str, float]:
    """Weighted global average per field."""
    w = _check(av, weights)
    integrals = global_integral(comm, av, w, fields)
    total_w = comm.allreduce(float(w.sum()), op="sum")
    if total_w == 0:
        raise MCTError("total weight is zero")
    return {name: value / total_w for name, value in integrals.items()}


def paired_integrals(comm: Communicator,
                     av_src: AttrVect, weights_src: np.ndarray,
                     av_dst: AttrVect, weights_dst: np.ndarray,
                     fields: Sequence[str] | None = None
                     ) -> dict[str, tuple[float, float]]:
    """Source and destination integrals of the same fields, for flux
    conservation checks around an interpolation.

    Both AttrVects must be visible from ``comm`` (the coupler's
    communicator).  Returns ``{field: (src_integral, dst_integral)}`` —
    conservative regridding keeps the pair equal.
    """
    src = global_integral(comm, av_src, weights_src, fields)
    dst = global_integral(comm, av_dst, weights_dst, fields)
    return {name: (src[name], dst[name]) for name in src}
