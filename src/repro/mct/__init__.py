"""MCT — the Model Coupling Toolkit model (paper §4.5).

MCT "extends MPI to ease implementation of parallel coupling between
MPI-based parallel applications" and "internally implements M×N
capabilities at a higher level than the other CCA projects".  This
package provides Python equivalents of every object/service the paper
lists:

* :class:`MCTWorld` — "a lightweight model registry that defines the
  MPI processes on which a module resides";
* :class:`AttrVect` — "a multi-field data storage object that is the
  common currency modules use in data exchange";
* :class:`GlobalSegMap` — "domain decomposition descriptors";
* :class:`Router` / :class:`Rearranger` — "communications schedulers for
  intermodule parallel data transfer and intra-module parallel data
  redistribution";
* :class:`SparseMatrix` — "distributed sparse matrix elements and
  communication schedulers used in performing interpolation as parallel
  sparse matrix-vector multiplication in a multi-field, cache-friendly
  fashion";
* :class:`GeneralGrid` — "physical grids ... of arbitrary dimension and
  unstructured grids ... supporting masking of grid elements";
* :class:`Accumulator` — "registers for time averaging and accumulation
  of field data";
* :func:`merge` — "merging of state and flux data from multiple
  sources";
* :mod:`repro.mct.integrals` — "spatial integral and averaging
  facilities ... paired integrals ... for use in conservation of global
  flux integrals".
"""

from repro.mct.registry import MCTWorld
from repro.mct.gsmap import GlobalSegMap, Segment
from repro.mct.attrvect import AttrVect
from repro.mct.router import Router
from repro.mct.rearranger import Rearranger
from repro.mct.sparsematrix import InterpolationScheduler, SparseMatrix
from repro.mct.grid import GeneralGrid
from repro.mct.accumulator import Accumulator
from repro.mct.merge import merge
from repro.mct.integrals import (
    global_average,
    global_integral,
    paired_integrals,
)

__all__ = [
    "MCTWorld",
    "GlobalSegMap",
    "Segment",
    "AttrVect",
    "Router",
    "Rearranger",
    "SparseMatrix",
    "InterpolationScheduler",
    "GeneralGrid",
    "Accumulator",
    "merge",
    "global_average",
    "global_integral",
    "paired_integrals",
]
