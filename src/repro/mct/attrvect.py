"""AttrVect: MCT's multi-field data storage object.

"A multi-field data storage object that is the common currency modules
use in data exchange."  Storage is one dense (npoints × nfields)
float64 matrix, so transfers and interpolation can operate on all
fields at once — the cache-friendly layout behind experiment E13.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

import numpy as np

from repro.errors import MCTError


class AttrVect:
    """Named real-valued fields over a set of local points."""

    def __init__(self, fields: Sequence[str], lsize: int):
        names = list(fields)
        if len(names) != len(set(names)):
            raise MCTError(f"duplicate field names in {names}")
        if not names:
            raise MCTError("AttrVect needs at least one field")
        if lsize < 0:
            raise MCTError(f"negative local size {lsize}")
        self.fields = names
        self._index = {name: i for i, name in enumerate(names)}
        #: (npoints, nfields) storage — fields are columns.
        self.data = np.zeros((lsize, len(names)), dtype=np.float64)

    # -- constructors ----------------------------------------------------------

    @classmethod
    def from_arrays(cls, arrays: Mapping[str, np.ndarray]) -> "AttrVect":
        names = list(arrays)
        lengths = {len(np.asarray(a)) for a in arrays.values()}
        if len(lengths) > 1:
            raise MCTError(f"field lengths differ: {sorted(lengths)}")
        av = cls(names, lengths.pop() if lengths else 0)
        for name, arr in arrays.items():
            av[name] = np.asarray(arr, dtype=np.float64)
        return av

    def copy(self) -> "AttrVect":
        out = AttrVect(self.fields, self.lsize)
        out.data[:] = self.data
        return out

    def zeros_like(self, lsize: int | None = None) -> "AttrVect":
        return AttrVect(self.fields, self.lsize if lsize is None else lsize)

    # -- accessors ----------------------------------------------------------------

    @property
    def lsize(self) -> int:
        return self.data.shape[0]

    @property
    def nfields(self) -> int:
        return self.data.shape[1]

    def field_index(self, name: str) -> int:
        try:
            return self._index[name]
        except KeyError:
            raise MCTError(f"no field {name!r}; have {self.fields}") from None

    def __getitem__(self, name: str) -> np.ndarray:
        """View (not copy) of one field's values."""
        return self.data[:, self.field_index(name)]

    def __setitem__(self, name: str, values) -> None:
        values = np.asarray(values, dtype=np.float64)
        if values.shape != (self.lsize,):
            raise MCTError(
                f"field {name!r}: expected shape ({self.lsize},), got "
                f"{values.shape}")
        self.data[:, self.field_index(name)] = values

    def subset(self, names: Iterable[str]) -> "AttrVect":
        """A copy restricted to ``names`` (shared point set)."""
        names = list(names)
        out = AttrVect(names, self.lsize)
        for n in names:
            out[n] = self[n]
        return out

    def same_fields(self, other: "AttrVect") -> bool:
        return self.fields == other.fields

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"AttrVect({self.fields}, lsize={self.lsize})"
