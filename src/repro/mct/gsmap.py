"""GlobalSegMap: MCT's domain decomposition descriptor.

A decomposition of a 1-D global index space ``[0, gsize)`` into
contiguous segments, each owned by one model-local rank.  Local storage
order is segments sorted by global start — the mapping every
:class:`~repro.mct.attrvect.AttrVect` relies on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from repro.errors import MCTError
from repro.linearize.linearization import Run, coalesce_runs


@dataclass(frozen=True, slots=True)
class Segment:
    """One contiguous chunk: global ``[gstart, gstart + length)`` on
    model-local rank ``pe``."""

    gstart: int
    length: int
    pe: int

    def __post_init__(self) -> None:
        if self.length < 0 or self.gstart < 0 or self.pe < 0:
            raise MCTError(f"invalid segment {self}")

    @property
    def gend(self) -> int:
        return self.gstart + self.length


class GlobalSegMap:
    """Segmented decomposition of a global index space."""

    def __init__(self, gsize: int, segments: Iterable[Segment],
                 nranks: int | None = None):
        self.gsize = int(gsize)
        self.segments = sorted(segments, key=lambda s: (s.gstart, s.pe))
        if not self.segments and self.gsize:
            raise MCTError("non-empty index space needs segments")
        max_pe = max((s.pe for s in self.segments), default=0)
        self.nranks = int(nranks) if nranks is not None else max_pe + 1
        if max_pe >= self.nranks:
            raise MCTError(
                f"segment pe {max_pe} out of range for {self.nranks} ranks")
        self._validate_partition()

    def _validate_partition(self) -> None:
        marks = np.zeros(self.gsize, dtype=np.int8)
        for s in self.segments:
            if s.gend > self.gsize:
                raise MCTError(f"segment {s} exceeds gsize {self.gsize}")
            marks[s.gstart:s.gend] += 1
        if self.gsize and not np.all(marks == 1):
            bad = int(np.flatnonzero(marks != 1)[0])
            raise MCTError(
                f"global index {bad} covered {int(marks[bad])} times")

    # -- constructors ---------------------------------------------------------

    @classmethod
    def block(cls, gsize: int, nranks: int) -> "GlobalSegMap":
        """Even contiguous blocks, one per rank."""
        size = -(-gsize // nranks)
        segments = []
        for pe in range(nranks):
            lo = min(pe * size, gsize)
            hi = min(lo + size, gsize)
            if hi > lo:
                segments.append(Segment(lo, hi - lo, pe))
        return cls(gsize, segments, nranks)

    @classmethod
    def cyclic(cls, gsize: int, nranks: int, block: int = 1) -> "GlobalSegMap":
        """Round-robin blocks (stress case: many small segments)."""
        segments = []
        pos = 0
        b = 0
        while pos < gsize:
            length = min(block, gsize - pos)
            segments.append(Segment(pos, length, b % nranks))
            pos += length
            b += 1
        return cls(gsize, segments, nranks)

    @classmethod
    def from_owners(cls, owners: Sequence[int],
                    nranks: int | None = None) -> "GlobalSegMap":
        """Build from a per-element owner array, compressing runs."""
        owners_arr = np.asarray(owners, dtype=np.int64)
        segments = []
        if owners_arr.size:
            change = np.flatnonzero(np.diff(owners_arr)) + 1
            starts = np.concatenate(([0], change))
            ends = np.concatenate((change, [owners_arr.size]))
            for a, b in zip(starts, ends):
                segments.append(Segment(int(a), int(b - a),
                                        int(owners_arr[a])))
        return cls(len(owners_arr), segments, nranks)

    # -- queries -----------------------------------------------------------------

    def segments_of(self, pe: int) -> list[Segment]:
        """Segments of ``pe``, in local storage order (by gstart)."""
        self._check_pe(pe)
        return [s for s in self.segments if s.pe == pe]

    def local_size(self, pe: int) -> int:
        return sum(s.length for s in self.segments_of(pe))

    def owner_of(self, gindex: int) -> int:
        if not (0 <= gindex < self.gsize):
            raise MCTError(f"global index {gindex} out of range")
        for s in self.segments:
            if s.gstart <= gindex < s.gend:
                return s.pe
        raise MCTError(f"global index {gindex} unowned")  # pragma: no cover

    def global_indices(self, pe: int) -> np.ndarray:
        """Global indices of ``pe``'s points, in local storage order."""
        segs = self.segments_of(pe)
        if not segs:
            return np.empty(0, dtype=np.int64)
        return np.concatenate(
            [np.arange(s.gstart, s.gend, dtype=np.int64) for s in segs])

    def local_offset(self, pe: int, gindex: int) -> int:
        """Local storage offset of ``gindex`` on ``pe``."""
        off = 0
        for s in self.segments_of(pe):
            if s.gstart <= gindex < s.gend:
                return off + (gindex - s.gstart)
            off += s.length
        raise MCTError(f"global index {gindex} not on pe {pe}")

    def runs(self, pe: int) -> list[Run]:
        """Owned index intervals as linearization runs (schedule input)."""
        return coalesce_runs(
            [Run(s.gstart, s.gend) for s in self.segments_of(pe)])

    def _check_pe(self, pe: int) -> None:
        if not (0 <= pe < self.nranks):
            raise MCTError(
                f"pe {pe} out of range for {self.nranks}-rank GlobalSegMap")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"GlobalSegMap(gsize={self.gsize}, "
                f"{len(self.segments)} segments, {self.nranks} ranks)")
