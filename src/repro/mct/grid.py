"""GeneralGrid: physical grid descriptions with masks and weights.

"A data object for describing physical grids capable of supporting
grids of arbitrary dimension and unstructured grids, and ... capable of
supporting masking of grid elements (e.g., land/ocean mask)."

A grid is point-based (so unstructured meshes are just point lists):
per-point real coordinate fields, real weight fields (cell areas /
quadrature weights), and integer mask fields.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from repro.errors import MCTError


class GeneralGrid:
    """Local piece of a (possibly unstructured) physical grid."""

    def __init__(self, coords: Mapping[str, Sequence[float]],
                 weights: Mapping[str, Sequence[float]] | None = None,
                 masks: Mapping[str, Sequence[int]] | None = None):
        if not coords:
            raise MCTError("grid needs at least one coordinate field")
        self.coords = {k: np.asarray(v, dtype=np.float64)
                       for k, v in coords.items()}
        lengths = {v.shape for v in self.coords.values()}
        if len(lengths) != 1 or len(next(iter(lengths))) != 1:
            raise MCTError("coordinate fields must be equal-length 1-D")
        self.npoints = next(iter(self.coords.values())).shape[0]
        self.weights = {k: self._field(v, np.float64)
                        for k, v in (weights or {}).items()}
        self.masks = {k: self._field(v, np.int64)
                      for k, v in (masks or {}).items()}

    def _field(self, values, dtype) -> np.ndarray:
        arr = np.asarray(values, dtype=dtype)
        if arr.shape != (self.npoints,):
            raise MCTError(
                f"grid field shape {arr.shape} != ({self.npoints},)")
        return arr

    @property
    def dims(self) -> list[str]:
        return sorted(self.coords)

    @property
    def ndim(self) -> int:
        return len(self.coords)

    def coordinates(self, point: int) -> tuple[float, ...]:
        return tuple(self.coords[d][point] for d in self.dims)

    def weight(self, name: str) -> np.ndarray:
        try:
            return self.weights[name]
        except KeyError:
            raise MCTError(f"no weight field {name!r}") from None

    def mask(self, name: str) -> np.ndarray:
        try:
            return self.masks[name]
        except KeyError:
            raise MCTError(f"no mask field {name!r}") from None

    def masked_weight(self, weight: str, mask: str) -> np.ndarray:
        """Weights with masked-out (mask == 0) points zeroed — the form
        integrals and merges consume."""
        return self.weight(weight) * (self.mask(mask) != 0)

    def active_points(self, mask: str) -> np.ndarray:
        """Indices of unmasked points."""
        return np.flatnonzero(self.mask(mask) != 0)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"GeneralGrid({self.dims}, npoints={self.npoints}, "
                f"weights={sorted(self.weights)}, masks={sorted(self.masks)})")
