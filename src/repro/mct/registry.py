"""MCTWorld: the model registry.

"A lightweight model registry that defines the MPI processes on which a
module resides, and a process ID look-up table that obviates the need
for inter-communicators between concurrently executing modules."

Models are rank subsets of one world communicator (MCT's concurrent
coupling layout); the registry is built collectively and then answers
model→ranks lookups locally.
"""

from __future__ import annotations

from repro.errors import MCTError
from repro.simmpi.communicator import Communicator


class MCTWorld:
    """Process registry for a multi-model coupled application."""

    def __init__(self, world: Communicator, my_model: str):
        self.world = world
        self.my_model = my_model
        pairs = world.allgather((my_model, world.rank))
        self._ranks: dict[str, list[int]] = {}
        for model, rank in pairs:
            self._ranks.setdefault(model, []).append(rank)
        for ranks in self._ranks.values():
            ranks.sort()
        # Per-model communicator (split by model name order).
        names = sorted(self._ranks)
        self.model_comm = world.split(color=names.index(my_model),
                                      key=world.rank)

    def models(self) -> list[str]:
        return sorted(self._ranks)

    def ranks_of(self, model: str) -> list[int]:
        """World ranks hosting ``model`` — the process ID look-up table."""
        try:
            return list(self._ranks[model])
        except KeyError:
            raise MCTError(f"no model {model!r} registered") from None

    def root_of(self, model: str) -> int:
        return self.ranks_of(model)[0]

    def size_of(self, model: str) -> int:
        return len(self.ranks_of(model))

    @property
    def my_ranks(self) -> list[int]:
        return self.ranks_of(self.my_model)

    @property
    def my_model_rank(self) -> int:
        return self.model_comm.rank

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        parts = ", ".join(f"{m}:{len(r)}" for m, r in sorted(self._ranks.items()))
        return f"MCTWorld({parts})"
