"""Distributed sparse-matrix interpolation.

"A class encapsulating distributed sparse matrix elements and
communication schedulers used in performing interpolation as parallel
sparse matrix-vector multiplication in a multi-field, cache-friendly
fashion."

The matrix is distributed by row (rows follow the destination
decomposition).  A scheduler is built once per (matrix, source
decomposition) pair: it exchanges which source points each rank needs,
precomputes local offsets on both ends, and then every
:meth:`SparseMatrix.apply` is a halo exchange plus one local SpMM over
*all* fields at once.  ``fused=False`` degrades to per-field messages
and matvecs for the E13 ablation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from repro.errors import MCTError
from repro.mct.attrvect import AttrVect
from repro.mct.gsmap import GlobalSegMap
from repro.simmpi.communicator import Communicator

HALO_TAG = 162


class SparseMatrix:
    """Row-distributed sparse interpolation matrix.

    Parameters
    ----------
    nrows, ncols:
        Global matrix shape (destination points × source points).
    rows, cols, vals:
        COO triplets for the rows owned by this rank under
        ``row_gsmap`` (global indices).
    row_gsmap:
        Destination decomposition; this rank's rows must be owned by
        ``pe``.
    pe:
        This rank's index in the row decomposition.
    """

    def __init__(self, nrows: int, ncols: int, rows, cols, vals,
                 row_gsmap: GlobalSegMap, pe: int):
        rows = np.asarray(rows, dtype=np.int64)
        cols = np.asarray(cols, dtype=np.int64)
        vals = np.asarray(vals, dtype=np.float64)
        if not (rows.shape == cols.shape == vals.shape):
            raise MCTError("rows/cols/vals must have identical shapes")
        if rows.size and (rows.min() < 0 or rows.max() >= nrows):
            raise MCTError("row index out of range")
        if cols.size and (cols.min() < 0 or cols.max() >= ncols):
            raise MCTError("column index out of range")
        self.nrows = int(nrows)
        self.ncols = int(ncols)
        self.row_gsmap = row_gsmap
        self.pe = pe

        my_rows = row_gsmap.global_indices(pe)
        row_local = {int(g): i for i, g in enumerate(my_rows)}
        try:
            lrows = np.array([row_local[int(r)] for r in rows],
                             dtype=np.int64)
        except KeyError as exc:
            raise MCTError(
                f"matrix element row {exc} is not owned by pe {pe}") from None

        #: distinct source points this rank's rows reference
        self.needed_cols = np.unique(cols) if cols.size else \
            np.empty(0, dtype=np.int64)
        col_local = {int(c): i for i, c in enumerate(self.needed_cols)}
        lcols = np.array([col_local[int(c)] for c in cols], dtype=np.int64)
        self.local = sp.csr_matrix(
            (vals, (lrows, lcols)),
            shape=(len(my_rows), len(self.needed_cols)))
        self.nnz_local = int(vals.size)


def _rows_selector(idx: np.ndarray):
    """Compile a row-index array into its cheapest selector: a slice
    when the indices are one ascending unit-stride range (slice-gather
    is a zero-copy view on read), else the array itself."""
    if idx.size and (idx.size == 1 or bool((np.diff(idx) == 1).all())):
        return slice(int(idx[0]), int(idx[0]) + int(idx.size))
    return idx


@dataclass
class _HaloPlan:
    #: per peer rank: local x offsets to SEND (their needs from me)
    send_offsets: list[np.ndarray]
    #: per peer rank: rows of the assembled halo buffer to FILL on recv
    recv_positions: list[np.ndarray]
    halo_size: int
    #: compiled selectors (slice fast path where contiguous)
    send_sel: list = None
    recv_sel: list = None

    def __post_init__(self) -> None:
        if self.send_sel is None:
            self.send_sel = [_rows_selector(o) for o in self.send_offsets]
        if self.recv_sel is None:
            self.recv_sel = [_rows_selector(p) for p in self.recv_positions]


class InterpolationScheduler:
    """The communication schedule for one (matrix, source gsmap) pair.

    Building it is collective (one alltoall of needs); applying it is
    pure point-to-point.
    """

    def __init__(self, comm: Communicator, matrix: SparseMatrix,
                 x_gsmap: GlobalSegMap):
        if x_gsmap.gsize != matrix.ncols:
            raise MCTError(
                f"source gsmap size {x_gsmap.gsize} != matrix ncols "
                f"{matrix.ncols}")
        if x_gsmap.nranks != comm.size:
            raise MCTError(
                f"source gsmap ranks {x_gsmap.nranks} != comm size "
                f"{comm.size}")
        self.matrix = matrix
        self.x_gsmap = x_gsmap
        me = comm.rank

        # Which owner holds each needed source point?
        needs_by_owner: list[list[int]] = [[] for _ in range(comm.size)]
        positions_by_owner: list[list[int]] = [[] for _ in range(comm.size)]
        for pos, c in enumerate(matrix.needed_cols):
            owner = x_gsmap.owner_of(int(c))
            needs_by_owner[owner].append(int(c))
            positions_by_owner[owner].append(pos)

        # One alltoall tells every owner what to serve.
        serves = comm.alltoall(needs_by_owner)

        send_offsets = []
        for cols in serves:
            send_offsets.append(np.array(
                [x_gsmap.local_offset(me, c) for c in cols],
                dtype=np.int64))
        recv_positions = [np.array(p, dtype=np.int64)
                          for p in positions_by_owner]
        self.plan = _HaloPlan(send_offsets, recv_positions,
                              len(matrix.needed_cols))

    def apply(self, comm: Communicator, x_av: AttrVect,
              y_av: AttrVect | None = None, *,
              fused: bool = True, tag: int = HALO_TAG) -> AttrVect:
        """y = A·x over every field; collective over ``comm``.

        ``x_av`` follows the source decomposition; the result follows
        the matrix's row decomposition.  Pass ``y_av`` to reuse storage.
        """
        matrix = self.matrix
        me = comm.rank
        if x_av.lsize != self.x_gsmap.local_size(me):
            raise MCTError(
                f"x AttrVect lsize {x_av.lsize} != source local size "
                f"{self.x_gsmap.local_size(me)}")
        nfields = x_av.nfields
        if y_av is None:
            y_av = AttrVect(x_av.fields, matrix.local.shape[0])
        elif y_av.lsize != matrix.local.shape[0] or \
                not y_av.same_fields(x_av):
            raise MCTError("y AttrVect does not match matrix rows/fields")

        # Halo exchange: serve peers' needs, then assemble my halo.
        # Each peer gets one multi-field (rows, nfields) block; compiled
        # selectors make the gather a zero-copy slice view whenever a
        # peer's needs are contiguous in local storage.
        plan = self.plan
        halo = np.empty((plan.halo_size, nfields), dtype=np.float64)
        for r in range(comm.size):
            if r == me or plan.send_offsets[r].size == 0:
                continue
            block = x_av.data[plan.send_sel[r], :]
            if fused:
                comm.send(block, r, tag)
            else:
                for k in range(nfields):
                    comm.send(np.ascontiguousarray(block[:, k]), r, tag)
        if plan.recv_positions[me].size:
            halo[plan.recv_sel[me], :] = x_av.data[plan.send_sel[me], :]
        for r in range(comm.size):
            if r == me or plan.recv_positions[r].size == 0:
                continue
            if fused:
                halo[plan.recv_sel[r], :] = comm.recv(source=r, tag=tag)
            else:
                for k in range(nfields):
                    halo[plan.recv_sel[r], k] = comm.recv(source=r, tag=tag)

        # One SpMM covers every field when fused (cache-friendly);
        # otherwise one SpMV per field.
        if fused:
            y_av.data[:] = matrix.local @ halo
        else:
            for k in range(nfields):
                y_av.data[:, k] = matrix.local @ halo[:, k]
        return y_av
