"""Accumulator: time averaging and accumulation registers.

"Registers for time averaging and accumulation of field data for use in
coupling concurrently executing components that do not share a common
time-step, or are coupled at a frequency of multiple time-steps."
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import MCTError
from repro.mct.attrvect import AttrVect


class Accumulator:
    """Running per-field sums with step counting.

    ``actions`` picks, per field, whether :meth:`value` reports the
    accumulated **sum** (flux-like fields) or the time **average**
    (state-like fields).  Default is averaging.
    """

    def __init__(self, fields: Sequence[str], lsize: int,
                 actions: dict[str, str] | None = None):
        self.register = AttrVect(fields, lsize)
        self.steps = 0
        self.actions = {name: "average" for name in self.register.fields}
        for name, action in (actions or {}).items():
            if name not in self.actions:
                raise MCTError(f"unknown field {name!r}")
            if action not in ("average", "sum"):
                raise MCTError(
                    f"action must be 'average' or 'sum', got {action!r}")
            self.actions[name] = action

    def accumulate(self, av: AttrVect) -> None:
        """Add one time sample."""
        if av.fields != self.register.fields or \
                av.lsize != self.register.lsize:
            raise MCTError(
                f"sample does not match register "
                f"({av.fields}/{av.lsize} vs "
                f"{self.register.fields}/{self.register.lsize})")
        self.register.data += av.data
        self.steps += 1

    def value(self) -> AttrVect:
        """The accumulated result (sum or average per field's action)."""
        if self.steps == 0:
            raise MCTError("accumulator is empty")
        out = self.register.copy()
        for name in out.fields:
            if self.actions[name] == "average":
                out[name] = out[name] / self.steps
        return out

    def reset(self) -> None:
        self.register.data[:] = 0.0
        self.steps = 0
