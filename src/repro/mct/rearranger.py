"""Rearranger: intra-model parallel data redistribution.

The same schedule machinery as the :class:`~repro.mct.router.Router`,
but both decompositions live on one model's communicator — every rank
is (potentially) both a source and a destination.  Like the Router, the
transfer runs on compiled row-index plans: one multi-field 2-D block
per communicating rank pair, with zero-copy slice views when a pair's
runs are adjacent in local storage.
"""

from __future__ import annotations

from repro.errors import MCTError
from repro.mct.attrvect import AttrVect
from repro.mct.gsmap import GlobalSegMap
from repro.mct.router import _pair_wire, _run_row_indices, build_gsmap_schedule
from repro.simmpi.communicator import Communicator

REARRANGE_TAG = 161


class Rearranger:
    """Intra-model redistribution between two GlobalSegMaps."""

    def __init__(self, src_gsmap: GlobalSegMap, dst_gsmap: GlobalSegMap):
        if src_gsmap.nranks != dst_gsmap.nranks:
            raise MCTError(
                f"rearranger needs equal rank counts, got "
                f"{src_gsmap.nranks} and {dst_gsmap.nranks}")
        self.src_gsmap = src_gsmap
        self.dst_gsmap = dst_gsmap
        self.schedule = build_gsmap_schedule(src_gsmap, dst_gsmap)

    def rearrange(self, comm: Communicator, av_src: AttrVect,
                  av_dst: AttrVect, *, tag: int = REARRANGE_TAG) -> int:
        """Collective: move ``av_src`` (src decomposition) into
        ``av_dst`` (dst decomposition).  One message per communicating
        rank pair, all fields fused.  Returns elements received."""
        if comm.size != self.src_gsmap.nranks:
            raise MCTError(
                f"communicator size {comm.size} != GlobalSegMap ranks "
                f"{self.src_gsmap.nranks}")
        if not av_src.same_fields(av_dst):
            raise MCTError(
                f"field lists differ: {av_src.fields} vs {av_dst.fields}")
        me = comm.rank
        src_gsmap, dst_gsmap = self.src_gsmap, self.dst_gsmap
        send_plan = self.schedule.send_plan(
            me, lambda run: _run_row_indices(src_gsmap, me, run))
        for pp in send_plan.pairs:
            comm.send(_pair_wire(pp, av_src), pp.peer, tag)
        received = 0
        recv_plan = self.schedule.recv_plan(
            me, lambda run: _run_row_indices(dst_gsmap, me, run))
        for pp in recv_plan.pairs:
            av_dst.data[pp.selector, :] = comm.recv(source=pp.peer, tag=tag)
            received += pp.size
        return received
