"""Rearranger: intra-model parallel data redistribution.

The same schedule machinery as the :class:`~repro.mct.router.Router`,
but both decompositions live on one model's communicator — every rank
is (potentially) both a source and a destination.
"""

from __future__ import annotations

from repro.errors import MCTError
from repro.mct.attrvect import AttrVect
from repro.mct.gsmap import GlobalSegMap
from repro.mct.router import _run_view, build_gsmap_schedule
from repro.simmpi.communicator import Communicator

REARRANGE_TAG = 161


class Rearranger:
    """Intra-model redistribution between two GlobalSegMaps."""

    def __init__(self, src_gsmap: GlobalSegMap, dst_gsmap: GlobalSegMap):
        if src_gsmap.nranks != dst_gsmap.nranks:
            raise MCTError(
                f"rearranger needs equal rank counts, got "
                f"{src_gsmap.nranks} and {dst_gsmap.nranks}")
        self.src_gsmap = src_gsmap
        self.dst_gsmap = dst_gsmap
        self.schedule = build_gsmap_schedule(src_gsmap, dst_gsmap)

    def rearrange(self, comm: Communicator, av_src: AttrVect,
                  av_dst: AttrVect, *, tag: int = REARRANGE_TAG) -> int:
        """Collective: move ``av_src`` (src decomposition) into
        ``av_dst`` (dst decomposition).  Returns elements received."""
        if comm.size != self.src_gsmap.nranks:
            raise MCTError(
                f"communicator size {comm.size} != GlobalSegMap ranks "
                f"{self.src_gsmap.nranks}")
        if not av_src.same_fields(av_dst):
            raise MCTError(
                f"field lists differ: {av_src.fields} vs {av_dst.fields}")
        me = comm.rank
        for d, run in self.schedule.sends_from(me):
            comm.send(_run_view(av_src, self.src_gsmap, me, run), d, tag)
        received = 0
        for s, run in self.schedule.recvs_at(me):
            view = _run_view(av_dst, self.dst_gsmap, me, run)
            view[:] = comm.recv(source=s, tag=tag)
            received += run.length
        return received
