"""Bounded model checking of the lock-free shared-memory protocols.

The procs backend's data plane rests on two tiny lock-free protocols
(:mod:`repro.simmpi.shm`): the **slot ring** — senders acquire a FREE
slot, fill it, publish the index over the control queue, the receiving
pump consumes and releases it — and the **seqlock window** — an owner
opens exposure epochs that license remote puts, writers commit, the
owner fences and reads.  :mod:`repro.simmpi.sanitize` checks these
disciplines *dynamically* (on real executions, ``REPRO_TSAN=1``); this
module is the *static* half of the proof obligation: each protocol is
extracted into an explicit-state model and the commgraph search engine
(:func:`repro.verify.commgraph.explore_states`) exhaustively explores
every interleaving at a bounded scope (2–3 writers, ring depth 2, two
epochs), proving

* **no lost wakeups** — every interleaving of the shipped protocol
  runs to completion (no reachable stuck state),
* **no ABA slot reuse** — a consumer never reads a slot generation the
  ring has moved past,
* **no unexposed-epoch puts / torn reads** — writes land only inside
  an open exposure epoch and owner reads only after its fence.

The proof is only as good as the model, so every property ships with a
**seeded-bug mutant** — a one-transition corruption of the protocol
(skip the BUSY check, release before the read, skip ``wait_open``, …)
— and :func:`check_protocols` asserts each mutant *fires*: the search
returns a violation of the expected class (or a stuck state), with a
transition-by-transition counterexample witness.  A model in which the
bugs of interest are invisible would pass the clean proofs vacuously;
the mutant matrix rules that out.

:func:`sanitizer_selfcheck` closes the loop on the dynamic half: it
drives the :class:`~repro.simmpi.sanitize.Sanitizer` hooks directly
through one clean protocol round (expecting zero reports) and through
each seeded corruption (expecting exactly the report class the model
checker predicts), without touching real shared memory.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.simmpi import sanitize
from repro.verify.commgraph import Exploration, explore_states

__all__ = [
    "ModelResult",
    "SLOT_MUTANTS",
    "EPOCH_MUTANTS",
    "slot_ring_model",
    "epoch_model",
    "check_protocols",
    "sanitizer_selfcheck",
]

#: Seeded slot-ring bugs and the outcome each must produce.
SLOT_MUTANTS = {
    "acquire_skips_busy": "violation:" + sanitize.UNSYNC_WRITE,
    "release_before_consume": "violation:" + sanitize.SLOT_REUSE,
    "skip_release": "stuck",
}

#: Seeded epoch-protocol bugs and the outcome each must produce.
EPOCH_MUTANTS = {
    "skip_wait": "violation:" + sanitize.UNSYNC_WRITE,
    "read_before_fence": "violation:" + sanitize.TORN_READ,
    "skip_commit": "stuck",
}


@dataclass
class ModelResult:
    """One model run: a clean proof or a mutant-fires demonstration."""

    model: str                 #: ``slot_ring`` or ``epoch``
    scope: str                 #: bound description, e.g. ``W=2 D=2 M=3``
    mutant: Optional[str]      #: seeded bug, ``None`` for the shipped protocol
    expect: str                #: ``clean`` / ``stuck`` / ``violation:<kind>``
    exploration: Exploration

    @property
    def outcome(self) -> str:
        ex = self.exploration
        if ex.violation is not None:
            return "violation:" + ex.message.split(":", 1)[0]
        if ex.stuck is not None:
            return "stuck"
        return "clean"

    @property
    def passed(self) -> bool:
        return self.outcome == self.expect

    @property
    def label(self) -> str:
        return f"{self.model}[{self.scope}]" + (
            f" mutant={self.mutant}" if self.mutant else "")


def slot_ring_model(writers: int = 2, depth: int = 2, messages: int = 2,
                    mutant: Optional[str] = None) -> Exploration:
    """Explicit-state model of the :class:`~repro.simmpi.shm.SegmentPool`
    slot ring: ``writers`` senders each pushing ``messages`` payloads
    through one consumer's ring of ``depth`` slots.

    State: per-slot FREE/BUSY flags and generation counters, the FIFO
    control queue of published ``(slot, generation)`` pairs, each
    writer's ``(remaining, held-slot)`` and the consumer's
    ``(consumed, in-flight read)``.  Transitions mirror the runtime
    verbs — acquire (lowest FREE slot, flip BUSY, bump generation),
    publish (enqueue), pop, read (generation must match) and release
    (flag back to FREE).  A transition that breaks the discipline
    carries an error tag the safety check reports; see
    :data:`SLOT_MUTANTS` for the seeded corruptions.
    """
    if mutant is not None and mutant not in SLOT_MUTANTS:
        raise ValueError(f"unknown slot-ring mutant {mutant!r}")
    total = writers * messages
    init = (
        (0,) * depth,                     # flags: 0 FREE / 1 BUSY
        (0,) * depth,                     # per-slot generation
        (),                               # control queue of (slot, gen)
        ((messages, -1),) * writers,      # writer (remaining, held slot)
        0,                                # messages consumed
        (-1, -1),                         # consumer in-flight (slot, gen)
        "",                               # safety-violation tag
    )

    def successors(state):
        flags, gens, queue, ws, consumed, reading, err = state
        out = []
        for w, (remaining, held) in enumerate(ws):
            if held < 0 and remaining > 0:
                if mutant == "acquire_skips_busy":
                    # the corrupted scan ignores the BUSY flag, so it
                    # claims the lowest slot unconditionally
                    candidates = [0]
                else:
                    candidates = [s for s in range(depth) if flags[s] == 0][:1]
                for s in candidates:
                    nerr = err
                    if any(h == s for _, h in ws) or (
                            flags[s] != 0 and mutant == "acquire_skips_busy"):
                        nerr = (f"{sanitize.UNSYNC_WRITE}: writer {w} "
                                f"acquires slot {s} while it is still "
                                f"held — two actors filling one payload "
                                f"slot")
                    nflags = tuple(1 if i == s else f
                                   for i, f in enumerate(flags))
                    ngens = tuple(g + 1 if i == s else g
                                  for i, g in enumerate(gens))
                    nws = tuple((r, s) if i == w else (r, h)
                                for i, (r, h) in enumerate(ws))
                    out.append((f"writer {w}: acquire(slot={s})",
                                (nflags, ngens, queue, nws, consumed,
                                 reading, nerr)))
            elif held >= 0:
                nws = tuple((r - 1, -1) if i == w else (r, h)
                            for i, (r, h) in enumerate(ws))
                out.append((f"writer {w}: publish(slot={held}, "
                            f"gen={gens[held]})",
                            (flags, gens, queue + ((held, gens[held]),),
                             nws, consumed, reading, err)))
        if reading[0] < 0 and queue:
            slot, gen = queue[0]
            nflags = flags
            if mutant == "release_before_consume":
                # the corrupted pump frees the slot before reading it
                nflags = tuple(0 if i == slot else f
                               for i, f in enumerate(flags))
            out.append((f"consumer: pop(slot={slot}, gen={gen})",
                        (nflags, gens, queue[1:], ws, consumed,
                         (slot, gen), err)))
        elif reading[0] >= 0:
            slot, gen = reading
            nerr = err
            if gens[slot] != gen:
                nerr = (f"{sanitize.SLOT_REUSE}: consumer reads slot "
                        f"{slot} at generation {gens[slot]} but the "
                        f"control message published generation {gen} — "
                        f"ABA reuse, torn payload")
            nflags = flags if mutant == "skip_release" else tuple(
                0 if i == slot else f for i, f in enumerate(flags))
            out.append((f"consumer: read+release(slot={slot})",
                        (nflags, gens, queue, ws, consumed + 1,
                         (-1, -1), nerr)))
        return out

    def is_final(state):
        _, _, queue, ws, consumed, reading, _ = state
        return (consumed == total and not queue and reading[0] < 0
                and all(r == 0 and h < 0 for r, h in ws))

    return explore_states(init, successors, is_final,
                          check=lambda state: state[-1])


def epoch_model(writers: int = 2, epochs: int = 2,
                mutant: Optional[str] = None) -> Exploration:
    """Explicit-state model of the :class:`~repro.simmpi.rma` epoch
    seqlock: one owner opening/fencing/reading ``epochs`` exposure
    epochs over ``writers`` remote writers doing wait/put/commit.

    The owner's fence is enabled only once ``min(done) >= k`` and a
    writer's put only after its wait observed ``epoch >= k`` — exactly
    the runtime spins.  Safety: a put with ``epoch < k`` is an
    unexposed-epoch write; an owner read with ``min(done) < epoch`` is
    a torn seqlock read.  See :data:`EPOCH_MUTANTS`.
    """
    if mutant is not None and mutant not in EPOCH_MUTANTS:
        raise ValueError(f"unknown epoch mutant {mutant!r}")
    owner_ops = []
    for k in range(1, epochs + 1):
        owner_ops.append(("open", k))
        if mutant != "read_before_fence":
            owner_ops.append(("fence", k))
        owner_ops.append(("read", k))
    writer_ops = []
    for k in range(1, epochs + 1):
        if mutant != "skip_wait":
            writer_ops.append(("wait", k))
        writer_ops.append(("put", k))
        if mutant != "skip_commit":
            writer_ops.append(("commit", k))

    init = (0, (0,) * writers, 0, (0,) * writers, "")

    def successors(state):
        epoch, done, opc, wpcs, err = state
        out = []
        if opc < len(owner_ops):
            kind, k = owner_ops[opc]
            if kind == "open":
                out.append((f"owner: epoch_open({k})",
                            (k, done, opc + 1, wpcs, err)))
            elif kind == "fence":
                if min(done) >= k:
                    out.append((f"owner: fence({k})",
                                (epoch, done, opc + 1, wpcs, err)))
            else:  # read
                nerr = err
                if min(done) < epoch:
                    nerr = (f"{sanitize.TORN_READ}: owner reads "
                            f"generation {k} with min(done)="
                            f"{min(done)} < epoch {epoch} — writers "
                            f"may still be scattering")
                out.append((f"owner: read({k})",
                            (epoch, done, opc + 1, wpcs, nerr)))
        for w in range(writers):
            pc = wpcs[w]
            if pc >= len(writer_ops):
                continue
            kind, k = writer_ops[pc]
            adv = tuple(pc + 1 if i == w else c for i, c in enumerate(wpcs))
            if kind == "wait":
                if epoch >= k:
                    out.append((f"writer {w}: wait_open({k})",
                                (epoch, done, opc, adv, err)))
            elif kind == "put":
                nerr = err
                if epoch < k:
                    nerr = (f"{sanitize.UNSYNC_WRITE}: writer {w} put "
                            f"lands in unexposed epoch {k} (window "
                            f"exposes epoch {epoch}) — wait_open "
                            f"skipped")
                out.append((f"writer {w}: put({k})",
                            (epoch, done, opc, adv, nerr)))
            else:  # commit
                ndone = tuple(k if i == w else d for i, d in enumerate(done))
                out.append((f"writer {w}: commit({k})",
                            (epoch, ndone, opc, adv, err)))
        return out

    def is_final(state):
        _, _, opc, wpcs, _ = state
        return (opc == len(owner_ops)
                and all(pc == len(writer_ops) for pc in wpcs))

    return explore_states(init, successors, is_final,
                          check=lambda state: state[-1])


#: Clean-proof scopes (the ISSUE's bounded scope: 2–3 writers, depth 2).
_SLOT_SCOPES = ((2, 2, 3), (3, 2, 2))
_EPOCH_SCOPES = ((2, 2), (3, 2))


def check_protocols() -> list[ModelResult]:
    """The full matrix: clean proofs at every bounded scope plus one
    fires-as-expected run per seeded mutant.  ``all(r.passed ...)`` is
    the theorem."""
    out: list[ModelResult] = []
    for w, d, m in _SLOT_SCOPES:
        out.append(ModelResult(
            "slot_ring", f"W={w} D={d} M={m}", None, "clean",
            slot_ring_model(w, d, m)))
    for w, e in _EPOCH_SCOPES:
        out.append(ModelResult(
            "epoch", f"W={w} E={e}", None, "clean", epoch_model(w, e)))
    for mutant, expect in SLOT_MUTANTS.items():
        out.append(ModelResult(
            "slot_ring", "W=2 D=2 M=2", mutant, expect,
            slot_ring_model(2, 2, 2, mutant=mutant)))
    for mutant, expect in EPOCH_MUTANTS.items():
        out.append(ModelResult(
            "epoch", "W=2 E=2", mutant, expect,
            epoch_model(2, 2, mutant=mutant)))
    return out


# -- dynamic-half self-check ----------------------------------------------


class _FakePool:
    """Just the shadow plane the sanitizer's slot hooks touch."""

    def __init__(self, nslots: int = 2):
        self._tsan_holder = [0] * nslots
        self._tsan_gen = [0] * nslots


class _FakeSeg:
    """Just the epoch/done header surface the window hooks read."""

    def __init__(self, nwriters: int = 1):
        self.name = "selfcheck"
        self.nwriters = nwriters
        self._epoch = 0
        self._done_ctrs = [0] * nwriters

    def epoch(self) -> int:
        return self._epoch

    def set_epoch(self, k: int) -> None:
        self._epoch = k

    def done(self, w: int) -> int:
        return self._done_ctrs[w]

    def set_done(self, w: int, k: int) -> None:
        self._done_ctrs[w] = k

    def min_done(self) -> int:
        return min(self._done_ctrs)


def sanitizer_selfcheck() -> list[str]:
    """Drive the live sanitizer hooks through one clean protocol round
    and each seeded corruption; returns failure descriptions (empty =
    the dynamic checks agree with the model checker).

    Runs against in-process fakes of the shadow plane and the window
    header, so it needs no shared memory and is safe anywhere
    ``verify race`` runs.
    """
    failures: list[str] = []
    was = sanitize.set_tsan(True)
    san = sanitize.ACTIVE
    assert san is not None
    san.clear()

    def expect(label: str, kinds: list[str]) -> None:
        got = [r.kind for r in san.race_reports]
        if got != kinds:
            failures.append(f"{label}: expected reports {kinds}, got {got}")
        san.clear()

    try:
        # clean slot round: acquire -> publish -> consume -> release
        pool = _FakePool()
        san.slot_acquired(pool, 0)
        token = san.slot_publish(pool, 0)
        san.slot_consume(pool, 0, token)
        san.slot_released(pool, 0)
        # clean epoch round: open -> wait -> put -> commit -> fence -> read
        seg = _FakeSeg()
        san.win_open(seg, 1)
        seg.set_epoch(1)
        san.win_wait_open(seg, 1)
        san.win_put(seg, 0)
        san.win_commit(seg, 0, 1)
        seg.set_done(0, 1)
        san.win_fence(seg, 1)
        san.win_read(seg)
        expect("clean protocol round", [])

        # seeded: acquire of a still-held slot (acquire_skips_busy)
        pool = _FakePool()
        san.slot_acquired(pool, 0)
        san.slot_acquired(pool, 0)
        expect("slot reuse on acquire", [sanitize.SLOT_REUSE])

        # seeded: consume after the ring moved on (release_before_consume)
        pool = _FakePool()
        san.slot_acquired(pool, 0)
        token = san.slot_publish(pool, 0)
        san.slot_released(pool, 0)
        san.slot_acquired(pool, 0)     # re-acquire bumps the generation
        san.slot_consume(pool, 0, token)
        expect("ABA consume", [sanitize.SLOT_REUSE])

        # seeded: publish without holding (unsynchronized write)
        pool = _FakePool()
        san.slot_publish(pool, 0)
        expect("publish without acquire", [sanitize.UNSYNC_WRITE])

        # seeded: put into an unexposed epoch (skip_wait)
        seg = _FakeSeg()
        san.win_put(seg, 0)
        expect("unexposed-epoch put", [sanitize.UNSYNC_WRITE])

        # seeded: owner read inside an open epoch (read_before_fence)
        seg = _FakeSeg()
        san.win_open(seg, 1)
        seg.set_epoch(1)
        san.win_read(seg)
        expect("torn seqlock read", [sanitize.TORN_READ])
    finally:
        san.clear()
        sanitize.set_tsan(was)
    return failures
