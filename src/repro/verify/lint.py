"""Ownership lint pack: AST checks for the transport contract.

The zero-copy transport (:mod:`repro.simmpi.payload`) is an ownership
*protocol*, not a type system — Walker et al.'s point that transmission
policy should be checkable as a property of the code, not of a
particular run.  These rules enforce the PR-3/PR-4 contract statically
over ``src/``:

* **V101 — use after move.**  Wrapping an array in ``OwnedBuffer(buf)``
  transfers ownership to the transport; any later load of ``buf`` in
  the same function (without an intervening rebinding) races the
  consumer and, under ``REPRO_TRANSPORT_DEBUG=1``, reads poisoned
  bytes.
* **V102 — escaped Borrowed/OwnedBuffer marker.**  A payload marker is
  consumed synchronously inside the ``send`` it is passed to.  Storing
  one on an attribute, into a subscript, or into a container
  (``.append``/``.add``/``.insert``/``.extend``) keeps a lent view (or
  a moved buffer) alive past its consumption scope.  Returning a
  freshly built marker is fine — that is how ``_wire_payload`` hands
  one to the send call.
* **V103 — Raw payload in the procs backend.**  ``Raw`` wraps
  process-local handles whose identity cannot survive a fork; modules
  implementing the forked-process backend must never construct one.
* **V104 — polling sleep loop.**  ``time.sleep`` inside a ``for``/
  ``while`` body is a busy-wait; the transport is event-driven
  (condition variables, preposted slots) and polling loops defeat both
  latency and the deadlock watchdog's blocked-state accounting.
* **V105 — put into an unexposed window.**  A one-sided ``.put(...)``
  on a window-ish receiver (``rwin``, ``self._win``, ``window`` …)
  with no epoch guard (``wait_open``/``epoch_open``/``fence``) earlier
  in the same function writes remote memory outside any exposure
  epoch — the racing-write bug the :mod:`repro.simmpi.rma` protocol
  exists to prevent, and the static twin of
  :meth:`~repro.verify.commgraph.CommProgram.epoch_violations`.
  Heuristic by name on purpose: queue ``.put`` receivers (``q``,
  ``results``, ``broker_q``) never look like windows.
* **V107 — per-invocation pickling outside the batch encoder.**
  ``pickle.dumps`` inside a ``for``/``while`` body serializes once per
  iteration — exactly the per-message overhead the batch frame codec
  (:mod:`repro.prmi.frames`) exists to amortize: one header pickle per
  *frame*, arrays packed as raw aligned bytes.  The codec module itself
  is exempt (it is the one place a loop may legitimately feed the
  single frame pickle).
* **V108 — raw shared-segment field access.**  The lock-free shared
  segments (slot-ring flags, window epoch/done counters, watchdog
  fields, the sanitizer shadow plane) are only safe through the
  accessor layer in :mod:`repro.simmpi.shm`, where every transition
  carries its ordering discipline (and its ``REPRO_TSAN`` hook).
  Indexing one of those fields anywhere else bypasses both.
* **V109 — flag transition without a paired accessor.**  Storing a
  FREE/BUSY or lifecycle flag constant into a subscript outside the
  named accessor verbs (``acquire``/``release``/``set_blocked``/…)
  flips protocol state with no release/acquire edge in scope — the
  exact write the happens-before sanitizer exists to catch at runtime,
  caught here at lint time.
* **V106 — per-pair allocation without a pool loan.**  A size-dependent
  array allocation (``np.empty``/``zeros``/``ones``/``full``) inside a
  loop over communication pairs (``for pp in plan.pairs``,
  ``for pair in ...``) allocates O(pairs) buffers per transfer — the
  exact footprint the :class:`~repro.schedule.bufpool.BufferPool` and
  the collective round planner exist to avoid.  Loops that loan from a
  pool (any ``.loan(...)`` call in the loop body) are exempt, as are
  constant-size allocations (empty placeholders).

A line can opt out with a ``# verify: allow(V10x)`` pragma naming the
rule.  :func:`lint_paths` walks files or directories and returns
:class:`LintViolation` records; the CLI (``python -m repro.verify lint
src/``) renders them and exits nonzero, which is the CI wiring.
"""

from __future__ import annotations

import ast
import pathlib
import re
from dataclasses import dataclass
from typing import Iterable, Iterator

__all__ = ["LintViolation", "lint_source", "lint_paths", "RULES"]

#: Rule id -> one-line description (the CLI's legend).
RULES = {
    "V101": "OwnedBuffer payload used after its buffer was moved",
    "V102": "Borrowed/OwnedBuffer marker stored past its consumption scope",
    "V103": "Raw payload constructed in a procs-backend module",
    "V104": "time.sleep polling loop in transport code",
    "V105": "one-sided put into a window with no epoch guard in scope",
    "V106": "per-pair allocation in a pair loop without a pool loan",
    "V107": "per-invocation pickle.dumps in a loop outside the frame codec",
    "V108": "raw shared-segment field access outside the accessor layer",
    "V109": "flag transition with no paired release/acquire accessor in scope",
}

#: The batch frame codec — the one module allowed to pickle in a loop
#: context (it pickles once per frame, not per request).
FRAME_CODEC_MODULES = ("prmi/frames.py",)

#: Epoch verbs that license a later ``.put`` in the same function.
_EPOCH_GUARDS = {"wait_open", "epoch_open", "fence"}

#: Receiver-name fragment marking a ``.put`` target as an RMA window.
_WINDOW_NAME_RE = re.compile(r"win", re.IGNORECASE)

#: Modules implementing the forked-process backend (V103 scope).
PROCS_BACKEND_MODULES = ("simmpi/procs.py", "simmpi/shm.py")

#: Shared-segment field names whose raw indexing is confined to the
#: accessor layer (V108 scope): slot-ring flags, window seqlock
#: counters, watchdog fields and the sanitizer shadow plane.
SHARED_SEGMENT_FIELDS = {
    "_flags", "_epoch", "_done", "_descs", "_abort", "_reason",
    "_tsan_holder", "_tsan_gen", "progress", "state",
}

#: The accessor layer: the only modules allowed to index shared fields.
ACCESSOR_MODULES = ("simmpi/shm.py", "simmpi/sanitize.py")

#: FREE/BUSY and lifecycle flag constants whose stores V109 polices.
_FLAG_CONSTANTS = {"_FREE", "_BUSY", "STATE_RUNNING", "STATE_BLOCKED",
                   "STATE_FINISHED"}

#: Accessor verbs that pair a flag transition with its release/acquire
#: edge (the ``REPRO_TSAN`` hooks live inside these).
_FLAG_ACCESSORS = {"acquire", "release", "set_blocked", "set_finished",
                   "set_abort", "slot_acquired", "slot_released"}

_ALLOW_RE = re.compile(r"#\s*verify:\s*allow\(([A-Z0-9, ]+)\)")

_CONTAINER_SINKS = {"append", "add", "insert", "extend", "appendleft"}


@dataclass(frozen=True)
class LintViolation:
    """One rule hit: where, which rule, and what the code did."""

    path: str
    line: int
    rule: str
    message: str

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: {self.rule} {self.message}"


def _call_name(node: ast.AST) -> str | None:
    """The trailing identifier of a call target: ``OwnedBuffer(...)``
    and ``payload.OwnedBuffer(...)`` both yield ``"OwnedBuffer"``."""
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Name):
            return func.id
        if isinstance(func, ast.Attribute):
            return func.attr
    return None


def _marker_calls(tree: ast.AST, names: set[str]) -> Iterator[ast.Call]:
    for node in ast.walk(tree):
        if isinstance(node, ast.Call) and _call_name(node) in names:
            yield node


def _allowed_lines(source: str) -> dict[int, set[str]]:
    allowed: dict[int, set[str]] = {}
    for i, line in enumerate(source.splitlines(), start=1):
        m = _ALLOW_RE.search(line)
        if m:
            allowed[i] = {r.strip() for r in m.group(1).split(",")}
    return allowed


def _check_use_after_move(func: ast.AST) -> Iterator[tuple[int, str]]:
    """V101 inside one function body, by line-ordered dataflow
    approximation: a name passed positionally to ``OwnedBuffer`` is
    *moved*; a later load without an intervening store is a violation."""
    moves: dict[str, int] = {}
    events: list[tuple[int, str, str]] = []
    for node in ast.walk(func):
        if isinstance(node, ast.Call) and _call_name(node) == "OwnedBuffer":
            if node.args and isinstance(node.args[0], ast.Name):
                events.append((node.lineno, "move", node.args[0].id))
        elif isinstance(node, ast.Name):
            kind = ("load" if isinstance(node.ctx, ast.Load) else "store")
            events.append((node.lineno, kind, node.id))
    for line, kind, name in sorted(events):
        if kind == "move":
            moves[name] = line
        elif kind == "store":
            moves.pop(name, None)
        elif name in moves and line > moves[name]:
            yield (line, f"{name!r} was moved into an OwnedBuffer on line "
                         f"{moves[name]} and read again here")
            del moves[name]


def _check_escaped_marker(tree: ast.AST) -> Iterator[tuple[int, str]]:
    """V102: marker expressions assigned to attributes/subscripts or
    pushed into containers."""
    markers = {"Borrowed", "OwnedBuffer"}

    def is_marker(node: ast.AST) -> bool:
        return _call_name(node) in markers

    for node in ast.walk(tree):
        if isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            value = node.value
            if value is None:
                continue
            parts = (value.elts if isinstance(value, (ast.Tuple, ast.List))
                     else [value])
            if not any(is_marker(p) for p in parts):
                continue
            targets = (node.targets if isinstance(node, ast.Assign)
                       else [node.target])
            for t in targets:
                tparts = (t.elts if isinstance(t, (ast.Tuple, ast.List))
                          else [t])
                for tp in tparts:
                    if isinstance(tp, (ast.Attribute, ast.Subscript)):
                        name = _call_name(next(
                            p for p in parts if is_marker(p)))
                        yield (node.lineno,
                               f"{name} marker stored on "
                               f"{'an attribute' if isinstance(tp, ast.Attribute) else 'a subscript'}"
                               f" — markers must be consumed synchronously"
                               f" by the send they are passed to")
        elif isinstance(node, ast.Call):
            func = node.func
            if (isinstance(func, ast.Attribute)
                    and func.attr in _CONTAINER_SINKS
                    and any(is_marker(a) for a in node.args)):
                name = _call_name(next(a for a in node.args if is_marker(a)))
                yield (node.lineno,
                       f"{name} marker pushed into a container via "
                       f".{func.attr}() — markers must not outlive the "
                       f"send call")


def _check_raw_in_procs(tree: ast.AST, relpath: str,
                        ) -> Iterator[tuple[int, str]]:
    """V103: Raw construction inside the forked-process backend."""
    if not any(relpath.endswith(m) for m in PROCS_BACKEND_MODULES):
        return
    for call in _marker_calls(tree, {"Raw"}):
        yield (call.lineno,
               "Raw payload constructed in a procs-backend module — "
               "process-local handles cannot cross a fork boundary")


def _check_sleep_loops(tree: ast.AST) -> Iterator[tuple[int, str]]:
    """V104: ``time.sleep``/``sleep`` calls lexically inside a loop."""
    loops = [n for n in ast.walk(tree) if isinstance(n, (ast.For, ast.While))]
    for loop in loops:
        for node in ast.walk(loop):
            if isinstance(node, ast.Call):
                name = _call_name(node)
                func = node.func
                qualified = (isinstance(func, ast.Attribute)
                             and isinstance(func.value, ast.Name)
                             and func.value.id == "time")
                if name == "sleep" and (qualified
                                        or isinstance(func, ast.Name)):
                    yield (node.lineno,
                           "time.sleep inside a loop is a polling "
                           "busy-wait — use condition variables or "
                           "preposted receive slots")


def _receiver_name(node: ast.AST) -> str | None:
    """Trailing identifier of a method-call receiver: ``rwin.put`` ->
    ``rwin``, ``self._win.put`` -> ``_win``, ``wins[i].put`` -> ``wins``."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Subscript):
        return _receiver_name(node.value)
    return None


def _check_unexposed_put(func: ast.AST) -> Iterator[tuple[int, str]]:
    """V105 inside one function body: a ``.put`` whose receiver name
    looks like a window, with no epoch guard call on any earlier line
    of the same function."""
    guard_lines: list[int] = []
    puts: list[tuple[int, str]] = []
    for node in ast.walk(func):
        if not (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)):
            continue
        if node.func.attr in _EPOCH_GUARDS:
            guard_lines.append(node.lineno)
        elif node.func.attr == "put":
            recv = _receiver_name(node.func.value)
            if recv and _WINDOW_NAME_RE.search(recv):
                puts.append((node.lineno, recv))
    for line, recv in sorted(puts):
        if not any(g <= line for g in guard_lines):
            yield (line,
                   f"{recv!r}.put() with no wait_open/epoch_open/fence "
                   f"earlier in this function — one-sided write outside "
                   f"an exposure epoch")


def _check_loop_pickle(tree: ast.AST, relpath: str,
                       ) -> Iterator[tuple[int, str]]:
    """V107: ``pickle.dumps(...)`` (or bare ``dumps(...)``) lexically
    inside a loop body, outside :data:`FRAME_CODEC_MODULES`."""
    if any(relpath.endswith(m) for m in FRAME_CODEC_MODULES):
        return
    for loop in ast.walk(tree):
        if not isinstance(loop, (ast.For, ast.While)):
            continue
        for node in ast.walk(loop):
            if not isinstance(node, ast.Call):
                continue
            name = _call_name(node)
            func = node.func
            qualified = (isinstance(func, ast.Attribute)
                         and isinstance(func.value, ast.Name)
                         and func.value.id == "pickle")
            if name == "dumps" and (qualified or isinstance(func, ast.Name)):
                yield (node.lineno,
                       "pickle.dumps inside a loop serializes per "
                       "iteration — coalesce into one batch frame "
                       "(repro.prmi.frames) and pickle once per frame")


#: Allocation callables whose result is a fresh per-iteration buffer.
_ALLOC_NAMES = {"empty", "zeros", "ones", "full"}

#: Loop-variable / iterable name fragment marking a pair loop.
_PAIR_NAME_RE = re.compile(r"pair", re.IGNORECASE)


def _names_in(node: ast.AST) -> Iterator[str]:
    for n in ast.walk(node):
        if isinstance(n, ast.Name):
            yield n.id
        elif isinstance(n, ast.Attribute):
            yield n.attr


def _is_pair_loop(loop: ast.For) -> bool:
    """A ``for`` loop whose target or iterable names communication
    pairs: ``for pp in plan.pairs``, ``for pair in ...``,
    ``for s, d in pairs``."""
    if any(_PAIR_NAME_RE.search(name) or name == "pp"
           for name in _names_in(loop.target)):
        return True
    return any(_PAIR_NAME_RE.search(name)
               for name in _names_in(loop.iter))


def _check_pair_loop_alloc(tree: ast.AST) -> Iterator[tuple[int, str]]:
    """V106: size-dependent allocation inside a pair loop whose body
    never loans from a pool."""
    for loop in ast.walk(tree):
        if not (isinstance(loop, ast.For) and _is_pair_loop(loop)):
            continue
        body = ast.Module(body=loop.body, type_ignores=[])
        calls = [n for n in ast.walk(body) if isinstance(n, ast.Call)]
        if any(isinstance(c.func, ast.Attribute) and c.func.attr == "loan"
               for c in calls):
            continue
        for call in calls:
            if _call_name(call) not in _ALLOC_NAMES:
                continue
            # Constant-size allocations (e.g. np.empty(0, ...)) are
            # placeholders, not per-pair staging buffers.
            if call.args and isinstance(call.args[0], ast.Constant):
                continue
            yield (call.lineno,
                   f"{_call_name(call)}() allocates per pair inside a "
                   f"pair loop with no pool loan — O(pairs) transfer "
                   f"footprint; loan the buffer from a BufferPool")


def _check_raw_shared_access(tree: ast.AST, relpath: str,
                             ) -> Iterator[tuple[int, str]]:
    """V108: subscript of a shared-segment field outside the accessor
    modules (:data:`ACCESSOR_MODULES`)."""
    if any(relpath.endswith(m) for m in ACCESSOR_MODULES):
        return
    for node in ast.walk(tree):
        if (isinstance(node, ast.Subscript)
                and isinstance(node.value, ast.Attribute)
                and node.value.attr in SHARED_SEGMENT_FIELDS):
            yield (node.lineno,
                   f"raw indexing of shared-segment field "
                   f"{node.value.attr!r} outside the accessor layer — "
                   f"go through the repro.simmpi.shm accessors so the "
                   f"ordering discipline (and its REPRO_TSAN hook) "
                   f"applies")


def _check_unpaired_flag_store(func: ast.FunctionDef,
                               ) -> Iterator[tuple[int, str]]:
    """V109 inside one function body: a flag-constant store into a
    subscript, in a function that is not itself an accessor verb and
    never calls one."""
    if func.name in _FLAG_ACCESSORS:
        return
    called: set[str] = set()
    for node in ast.walk(func):
        if isinstance(node, ast.Call):
            name = _call_name(node)
            if name:
                called.add(name)
    if called & _FLAG_ACCESSORS:
        return
    for node in ast.walk(func):
        if not isinstance(node, ast.Assign):
            continue
        value = node.value
        vname = (value.id if isinstance(value, ast.Name)
                 else value.attr if isinstance(value, ast.Attribute)
                 else None)
        if vname in _FLAG_CONSTANTS and any(
                isinstance(t, ast.Subscript) for t in node.targets):
            yield (node.lineno,
                   f"{vname} stored into protocol state outside the "
                   f"accessor verbs ({', '.join(sorted(_FLAG_ACCESSORS))})"
                   f" — flag transition with no paired release/acquire "
                   f"edge in scope")


def lint_source(source: str, path: str = "<string>",
                relpath: str | None = None) -> list[LintViolation]:
    """Run every rule over one module's source text."""
    tree = ast.parse(source, filename=path)
    allowed = _allowed_lines(source)
    relpath = relpath if relpath is not None else path
    hits: list[tuple[int, str, str]] = []

    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            hits.extend((ln, "V101", msg)
                        for ln, msg in _check_use_after_move(node))
            hits.extend((ln, "V105", msg)
                        for ln, msg in _check_unexposed_put(node))
            hits.extend((ln, "V109", msg)
                        for ln, msg in _check_unpaired_flag_store(node))
    hits.extend((ln, "V102", msg)
                for ln, msg in _check_escaped_marker(tree))
    hits.extend((ln, "V103", msg)
                for ln, msg in _check_raw_in_procs(tree, relpath))
    hits.extend((ln, "V104", msg)
                for ln, msg in _check_sleep_loops(tree))
    hits.extend((ln, "V106", msg)
                for ln, msg in _check_pair_loop_alloc(tree))
    hits.extend((ln, "V107", msg)
                for ln, msg in _check_loop_pickle(tree, relpath))
    hits.extend((ln, "V108", msg)
                for ln, msg in _check_raw_shared_access(tree, relpath))

    out = []
    for line, rule, message in sorted(hits):
        if rule in allowed.get(line, ()):
            continue
        out.append(LintViolation(path, line, rule, message))
    return out


def lint_paths(paths: Iterable[str | pathlib.Path]) -> list[LintViolation]:
    """Lint every ``.py`` file under the given files/directories."""
    files: list[pathlib.Path] = []
    for p in paths:
        p = pathlib.Path(p)
        if p.is_dir():
            files.extend(sorted(p.rglob("*.py")))
        else:
            files.append(p)
    violations: list[LintViolation] = []
    for f in files:
        violations.extend(
            lint_source(f.read_text(), path=str(f),
                        relpath=str(f.as_posix())))
    return violations
