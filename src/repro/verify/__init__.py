"""Static analysis for the repro middleware (paper-hazard proofs).

Three analyzers, one CLI (``python -m repro.verify``):

* :mod:`repro.verify.schedule` — offline proofs that a redistribution
  schedule moves every element exactly once, conserves bytes, and that
  every compiled fast path matches the fallback gather; plus the
  all-pairs-oracle routing gate for the fast-path builders.
* :mod:`repro.verify.commgraph` — pre-launch deadlock detection over
  static communication programs (wait-for cycles, collective-order
  mismatches), reporting in the runtime watchdog's blocked-rank dump
  format.
* :mod:`repro.verify.race` — bounded explicit-state model checks of
  the lock-free slot-ring and epoch seqlock protocols (clean proofs at
  bounded scope plus a seeded-mutant matrix), sharing the commgraph
  search engine; the static half of the ``REPRO_TSAN`` race-sanitizer
  proof obligation (:mod:`repro.simmpi.sanitize` is the dynamic half).
* :mod:`repro.verify.lint` — AST enforcement of the zero-copy
  transport's ownership contract over ``src/``.

:mod:`repro.verify.hook` wires the schedule proofs into the executors
as ``REPRO_VERIFY=1`` runtime assertions with zero steady-state cost.

Exports resolve lazily (PEP 562): the executors import
:mod:`repro.verify.hook` during :mod:`repro.schedule` initialization,
and :mod:`repro.verify.schedule` imports the builders back — laziness
keeps that cycle open.
"""

_EXPORTS = {
    "VERIFY_STATS": "hook",
    "maybe_verify_side": "hook",
    "set_verify": "hook",
    "verify_enabled": "hook",
    "ScheduleProof": "schedule",
    "verify_schedule": "schedule",
    "verify_against_oracle": "schedule",
    "verify_collective_plan": "schedule",
    "verify_delta_equivalence": "schedule",
    "verify_linear_schedule": "schedule",
    "verify_rank_plans": "schedule",
    "CommProgram": "commgraph",
    "Diagnosis": "commgraph",
    "Exploration": "commgraph",
    "explore_states": "commgraph",
    "would_deadlock": "commgraph",
    "assert_deadlock_free": "commgraph",
    "transfer_model": "commgraph",
    "fig5_model": "commgraph",
    "ModelResult": "race",
    "slot_ring_model": "race",
    "epoch_model": "race",
    "check_protocols": "race",
    "sanitizer_selfcheck": "race",
    "LintViolation": "lint",
    "lint_paths": "lint",
    "lint_source": "lint",
}

__all__ = sorted(_EXPORTS)


def __getattr__(name):
    module = _EXPORTS.get(name)
    if module is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib
    mod = importlib.import_module(f"{__name__}.{module}")
    value = getattr(mod, name)
    globals()[name] = value
    return value


def __dir__():
    return sorted(set(globals()) | set(__all__))
