"""Runtime verification hook (``REPRO_VERIFY=1``).

The executors call :func:`maybe_verify_side` at *plan-binding* points —
one-shot ``execute_intra``/``execute_inter`` entry and persistent-engine
construction — never inside a steady-state ``step``.  When verification
is disabled (the default) the hook is a single module-global boolean
test; when enabled, each (schedule, side, rank) triple is proved once
against the fallback gather (:func:`repro.verify.schedule.
verify_rank_plans`) and cached on the schedule object, so even an
enabled long-running transfer loop verifies exactly once.

The A7 steady-state benchmark records that the disabled hook adds zero
per-step work (``verify_hook`` section of ``BENCH_schedule.json``).
"""

from __future__ import annotations

import os

from repro.util.counters import Counters

__all__ = ["verify_enabled", "set_verify", "maybe_verify_side",
           "VERIFY_STATS"]

#: Hook counters: ``rank_checks`` increments once per proved
#: (schedule, side, rank) triple, ``cache_hits`` when a triple was
#: already proved, ``hook_calls`` on every enabled hook entry.  The A7
#: benchmark asserts none of these grow during steady-state stepping.
VERIFY_STATS = Counters()

_enabled = os.environ.get("REPRO_VERIFY", "0") not in ("", "0")


def verify_enabled() -> bool:
    """Whether the runtime assertion hook is active."""
    return _enabled


def set_verify(on: bool) -> None:
    """Programmatically toggle the hook (tests, benchmarks)."""
    global _enabled
    _enabled = bool(on)


def maybe_verify_side(schedule, side: str, rank: int, descriptor) -> None:
    """Prove ``schedule``'s compiled ``side`` plan for ``rank`` against
    the fallback gather — once per triple, and only under
    ``REPRO_VERIFY=1``.  Raises :class:`~repro.errors.
    VerificationError` on any fast-path/index mismatch."""
    if not _enabled:
        return
    VERIFY_STATS.add("hook_calls")
    done = getattr(schedule, "_verified_sides", None)
    if done is None:
        done = set()
        schedule._verified_sides = done
    key = (side, rank)
    if key in done:
        VERIFY_STATS.add("cache_hits")
        return
    from repro.verify.schedule import verify_rank_plans
    verify_rank_plans(schedule, side, rank, descriptor.local_regions(rank))
    done.add(key)
    VERIFY_STATS.add("rank_checks")
