"""``python -m repro.verify`` — the static-analysis CLI and CI gate.

Subcommands::

    schedule    prove every builder kind against the all-pairs oracle
    commgraph   deadlock-check the Fig. 5 programs and shipping models
    race        bounded model checks of the slot-ring and epoch
                protocols (clean proofs + seeded-mutant matrix) plus
                the live race-sanitizer self-check
    lint        run the ownership lint pack (default target: src/)
    all         everything above

Each subcommand exits nonzero on any failed proof, unexpected verdict,
or lint violation, so the CI steps are plain invocations.
"""

from __future__ import annotations

import argparse
import sys

from repro.errors import VerificationError


def _schedule_cases():
    from repro.dad import (
        Block,
        BlockCyclic,
        CartesianTemplate,
        Collapsed,
        Cyclic,
        DistArrayDescriptor,
        ExplicitTemplate,
        GeneralizedBlock,
    )
    from repro.dad.template import block_template
    from repro.util.regions import Region

    def cart(*axes):
        return DistArrayDescriptor(CartesianTemplate(list(axes)))

    explicit = DistArrayDescriptor(ExplicitTemplate((8, 12), [
        (0, Region((0, 0), (5, 7))),
        (1, Region((0, 7), (5, 12))),
        (2, Region((5, 0), (8, 12))),
    ]))
    return [
        ("block", cart(Block(64, 4)), cart(Block(64, 6))),
        ("block-2d",
         DistArrayDescriptor(block_template((12, 18), (2, 2))),
         DistArrayDescriptor(block_template((12, 18), (3, 2)))),
        ("cyclic", cart(Cyclic(48, 3)), cart(Block(48, 4))),
        ("cyclic-rev", cart(Block(48, 4)), cart(Cyclic(48, 3))),
        ("block-cyclic", cart(BlockCyclic(60, 4, 5)),
         cart(BlockCyclic(60, 3, 4))),
        ("generalized-block", cart(GeneralizedBlock(40, [5, 15, 20])),
         cart(Block(40, 4))),
        ("mixed-2d", cart(Block(10, 2), Cyclic(12, 3)),
         cart(Cyclic(10, 2), Block(12, 2))),
        ("collapsed", cart(Collapsed(9), Block(16, 4)),
         cart(Block(9, 3), Collapsed(16))),
        ("explicit", explicit,
         DistArrayDescriptor(block_template((8, 12), (2, 2)))),
    ]


def _delta_cases():
    from repro.dad import (
        Block,
        BlockCyclic,
        CartesianTemplate,
        Cyclic,
        DistArrayDescriptor,
        GeneralizedBlock,
    )

    def cart(*axes):
        return DistArrayDescriptor(CartesianTemplate(list(axes)))

    return [
        ("block 8->10", cart(Block(64, 8)), cart(Block(64, 10))),
        ("block 10->8 (shrink)", cart(Block(64, 10)), cart(Block(64, 8))),
        ("cyclic 8->10", cart(Cyclic(80, 8)), cart(Cyclic(80, 10))),
        ("block-cyclic 8->10", cart(BlockCyclic(96, 8, 4)),
         cart(BlockCyclic(96, 10, 4))),
        ("gb tail-split 8->10", cart(GeneralizedBlock(80, [10] * 8)),
         cart(GeneralizedBlock(80, [10] * 7 + [4, 3, 3]))),
        ("same-size blk->cyc", cart(Block(48, 6)), cart(Cyclic(48, 6))),
    ]


def cmd_schedule(_args) -> int:
    from repro.schedule.builder import build_region_schedule
    from repro.verify.schedule import (verify_against_oracle,
                                       verify_collective_plan)

    failures = 0
    print("schedule proofs (fast-path builders vs all-pairs oracle)")
    print(f"{'case':<18} {'builder':<10} {'items':>6} {'pairs':>6} "
          f"{'fast':>5} {'elems':>7}  verdict")
    for name, src, dst in _schedule_cases():
        for builder, force in (("fast-path", False), ("sweep", True)):
            sched = build_region_schedule(src, dst, force_general=force)
            try:
                proof = verify_against_oracle(sched, src, dst)
                verdict = "proved"
            except VerificationError as exc:
                failures += 1
                verdict = f"FAILED: {exc}"
                proof = None
            items = len(sched.items)
            pairs = proof.pairs if proof else 0
            fast = proof.fastpath_pairs if proof else 0
            elems = proof.elements if proof else 0
            print(f"{name:<18} {builder:<10} {items:>6} {pairs:>6} "
                  f"{fast:>5} {elems:>7}  {verdict}")
        # Collective round plan: byte conservation, chunk tiling and
        # the per-round memory bound on top of the full oracle proof
        # (small cap so every case actually chunks into rounds).
        sched = build_region_schedule(src, dst)
        try:
            proof = verify_collective_plan(sched, src, dst,
                                           round_bytes=256)
            coll = sched.collective_plan(8, 256)
            verdict = (f"proved ({coll.nrounds} rounds, "
                       f"ceiling {coll.resident_ceiling()}B)")
            elems = proof.elements
        except VerificationError as exc:
            failures += 1
            verdict = f"FAILED: {exc}"
            elems = 0
        print(f"{name:<18} {'collective':<10} {len(sched.items):>6} "
              f"{sched.pair_count:>6} {'-':>5} {elems:>7}  {verdict}")
    checks = ("completeness, disjointness, ownership, conservation, "
              "plan consistency, oracle routing; collective rows add "
              "chunk tiling, round byte conservation, memory bound")
    print(f"checks per case: {checks}")

    # Delta-vs-full equivalence: delta schedule ∘ old ownership must
    # reproduce the full rebuild exactly, over grow / shrink /
    # same-size resizes of every structured template kind, plus a
    # warm-start soundness proof — a coupling schedule is fully
    # compiled, its destination side is resized through the cache, and
    # every plan of the warm-started schedule (verbatim-reused pairs
    # included) is re-proved against the fallback gather.
    from repro.dad import DistArrayDescriptor
    from repro.dad.template import block_template
    from repro.schedule.builder import ScheduleCache
    from repro.schedule.delta import compile_delta
    from repro.util.counters import REDIST_STATS
    from repro.verify.schedule import (verify_delta_equivalence,
                                       verify_schedule)

    print()
    print("delta-schedule proofs (resize m->m' vs full rebuild)")
    print(f"{'case':<22} {'moved':>7} {'kept':>7} {'ident':>5} "
          f"{'reused':>6} {'recomp':>6}  verdict")
    for name, old, new in _delta_cases():
        try:
            delta = compile_delta(old, new)
            verify_delta_equivalence(old, new, delta=delta)
            src0 = DistArrayDescriptor(
                block_template(old.shape, (4,) * len(old.shape)))
            cache = ScheduleCache()
            s1 = cache.get(src0, old)
            for r in range(src0.nranks):
                s1.send_plan(r, src0.local_regions(r))
            for r in range(old.nranks):
                s1.recv_plan(r, old.local_regions(r))
            before = REDIST_STATS.snapshot()
            warm = cache.get(src0, new)
            after = REDIST_STATS.snapshot()
            reused = (after.get("pairs_reused", 0)
                      - before.get("pairs_reused", 0))
            recompiled = (after.get("pairs_recompiled", 0)
                          - before.get("pairs_recompiled", 0))
            verify_schedule(warm, src0, new)
            verdict = "proved"
        except VerificationError as exc:
            failures += 1
            verdict = f"FAILED: {exc}"
            delta = None
            reused = recompiled = 0
        moved = delta.moved_elements if delta else 0
        kept = delta.kept_elements if delta else 0
        ident = len(delta.identity_ranks) if delta else 0
        print(f"{name:<22} {moved:>7} {kept:>7} {ident:>5} "
              f"{reused:>6} {recompiled:>6}  {verdict}")
    print("checks per delta case: partition, minimality, identity "
          "ranks, local repack consistency, warm-started plan "
          "consistency (reused pairs re-proved)")
    print("schedule: " + ("FAIL" if failures else "OK"))
    return 1 if failures else 0


def _commgraph_cases():
    from repro.dad import Block, CartesianTemplate, Cyclic, \
        DistArrayDescriptor
    from repro.dca.engine import DeliveryPolicy
    from repro.schedule.builder import build_region_schedule
    from repro.verify.commgraph import (
        CommProgram,
        fig5_model,
        prmi_batch_deadlock_model,
        prmi_pipeline_model,
        prmi_serving_model,
        rma_channel_model,
        transfer_model,
    )

    def desc(axis):
        return DistArrayDescriptor(CartesianTemplate([axis]))

    quickstart = build_region_schedule(desc(Block(64, 4)), desc(Block(64, 6)))
    cyclic = build_region_schedule(desc(Block(48, 4)), desc(Cyclic(48, 3)))

    # A coupled Channel exchange scripted in a consistent order: both
    # jobs push before pulling, so every receive has a send in flight.
    exchange = CommProgram()
    left = exchange.procs("left", 2)
    right = exchange.procs("right", 2)
    for a, b in zip(left, right):
        exchange.send(a, b, tag=151)
        exchange.send(b, a, tag=152)
        exchange.recv(b, a, tag=151)
        exchange.recv(a, b, tag=152)

    # The same exchange scripted pull-before-push on both sides: the
    # classic head-to-head receive cycle a static check must flag.
    head_to_head = CommProgram()
    lp = head_to_head.proc("left", 0)
    rp = head_to_head.proc("right", 0)
    head_to_head.recv(lp, rp, tag=151)
    head_to_head.send(lp, rp, tag=152)
    head_to_head.recv(rp, lp, tag=152)
    head_to_head.send(rp, lp, tag=151)

    return [
        ("fig5-eager", fig5_model(DeliveryPolicy.EAGER), True),
        ("fig5-barrier", fig5_model(DeliveryPolicy.BARRIER), False),
        ("transfer-quickstart", transfer_model(quickstart), False),
        ("transfer-cyclic", transfer_model(cyclic), False),
        ("coupler-exchange", exchange, False),
        ("pull-before-push", head_to_head, True),
        # One-sided tier: a well-ordered RMA channel is clean; the
        # put-before-token misuse trips the epoch cycle the runtime
        # watchdog would report as rma_put/recv stalls (see
        # tests/simmpi/test_procs_backend.py for the live twin).
        ("rma-channel", rma_channel_model(steps=3), False),
        ("rma-epoch-misuse", rma_channel_model(misuse=True), True),
        # Serving tier: the shipped batched / pipelined protocols are
        # clean; withholding replies to batch them (no deadline) against
        # a caller blocked on its first future is the cycle the flush
        # deadline and one-reply-frame-per-request-frame rule prevent.
        ("prmi-batched-serving", prmi_serving_model(callers=3), False),
        ("prmi-pipelined", prmi_pipeline_model(depth=4), False),
        ("prmi-batch-no-deadline", prmi_batch_deadlock_model(), True),
    ]


def _epoch_cases():
    from repro.verify.commgraph import CommProgram, rma_channel_model

    # Structurally broken one-sided programs: more puts than the owner
    # ever licenses, and a read inside the open epoch (torn read).
    unexposed = CommProgram()
    w = unexposed.proc("prod", 0)
    o = unexposed.proc("cons", 0)
    win = unexposed.window(o, "field")
    unexposed.put(w, win)

    torn = CommProgram()
    w2 = torn.proc("prod", 0)
    o2 = torn.proc("cons", 0)
    win2 = torn.window(o2, "field")
    torn.epoch_open(win2)
    torn.read(win2)
    torn.fence(win2, (w2,))
    torn.put(w2, win2)

    return [
        ("rma-channel", rma_channel_model(steps=3), 0),
        ("rma-unexposed-put", unexposed, 1),
        ("rma-torn-read", torn, 1),
    ]


def cmd_commgraph(_args) -> int:
    from repro.verify.commgraph import would_deadlock

    failures = 0
    print("communication-graph deadlock analysis")
    for name, program, expect_deadlock in _commgraph_cases():
        diag = would_deadlock(program)
        got = diag is not None
        ok = got == expect_deadlock
        if not ok:
            failures += 1
        verdict = ("would deadlock" if got else "deadlock-free")
        expected = ("deadlock" if expect_deadlock else "clean")
        print(f"  {name:<22} {verdict:<16} (expected {expected})"
              + ("" if ok else "  MISMATCH"))
        if diag is not None and expect_deadlock:
            for key in sorted(diag.blocked):
                print(f"      {key}: {diag.blocked[key]}")
            for cyc in diag.cycles:
                print("      wait cycle: " + " -> ".join(cyc + cyc[:1]))
            print(f"      kind: {diag.kind}")
    print("epoch-consistency (structural, one-sided tier)")
    for name, program, expect in _epoch_cases():
        violations = program.epoch_violations()
        ok = len(violations) == expect
        if not ok:
            failures += 1
        print(f"  {name:<22} {len(violations)} violation(s) "
              f"(expected {expect})" + ("" if ok else "  MISMATCH"))
        for v in violations:
            print(f"      {v}")
    print("commgraph: " + ("FAIL" if failures else "OK"))
    return 1 if failures else 0


def cmd_race(_args) -> int:
    from repro.verify.race import check_protocols, sanitizer_selfcheck

    failures = 0
    print("race protocol proofs (bounded explicit-state model checks)")
    print(f"  {'model':<42} {'states':>7} {'expect':>38} verdict")
    for r in check_protocols():
        if not r.passed:
            failures += 1
        print(f"  {r.label:<42} {r.exploration.states:>7} "
              f"{r.expect:>38} "
              + ("proved" if r.passed else f"FAILED (got {r.outcome})"))
        if r.mutant and r.passed and r.exploration.trace:
            # the counterexample witness: the interleaving that trips
            # the seeded bug, straight from the search's parent map
            last = r.exploration.trace[-1]
            print(f"      witness ({len(r.exploration.trace)} steps, "
                  f"last: {last})")
        if not r.passed and not r.exploration.ok:
            print(r.exploration.witness())
    print("  properties: no lost wakeups (every interleaving "
          "completes), no ABA slot reuse, no unexposed-epoch puts, "
          "no torn seqlock reads")
    selfcheck = sanitizer_selfcheck()
    for msg in selfcheck:
        failures += 1
        print(f"  sanitizer selfcheck MISMATCH: {msg}")
    print(f"  sanitizer selfcheck (live hooks, clean round + 5 seeded "
          f"corruptions): " + ("OK" if not selfcheck else "FAIL"))
    print("race: " + ("FAIL" if failures else "OK"))
    return 1 if failures else 0


def cmd_lint(args) -> int:
    from repro.verify.lint import RULES, lint_paths

    paths = args.paths or ["src/"]
    violations = lint_paths(paths)
    for v in violations:
        print(v)
    print(f"lint: {len(violations)} violation(s) over {', '.join(paths)} "
          f"({len(RULES)} rules)")
    return 1 if violations else 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.verify",
        description="static schedule proofs, deadlock detection, and "
                    "the ownership lint pack")
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("schedule", help="prove builders against the oracle")
    sub.add_parser("commgraph", help="deadlock-check communication models")
    sub.add_parser("race", help="model-check the lock-free shared-memory "
                   "protocols and self-check the race sanitizer")
    lint = sub.add_parser("lint", help="run the ownership lint pack")
    lint.add_argument("paths", nargs="*", help="files or directories "
                      "(default: src/)")
    sub.add_parser("all", help="run every analyzer")
    args = parser.parse_args(argv)

    if args.command == "schedule":
        return cmd_schedule(args)
    if args.command == "commgraph":
        return cmd_commgraph(args)
    if args.command == "race":
        return cmd_race(args)
    if args.command == "lint":
        return cmd_lint(args)
    rc = cmd_schedule(args)
    rc |= cmd_commgraph(args)
    rc |= cmd_race(args)
    args.paths = []
    rc |= cmd_lint(args)
    return rc


if __name__ == "__main__":
    sys.exit(main())
