"""Static communication-graph deadlock detection.

The runtime watchdog (:mod:`repro.simmpi.runner`) diagnoses a deadlock
*after* it forms: every unfinished rank blocked in a receive with no
delivery in flight.  This module finds the same states *before launch*
by abstract execution of a small communication program model:

* each process is a straight-line sequence of communication operations
  (:class:`SendOp`, :class:`RecvOp`, :class:`BarrierOp`,
  :class:`CallOp`, :class:`ServeOp`),
* sends are buffered and never block (the §4.1 transfer protocol the
  executors implement), receives block on their matching send, barriers
  block on every member, collective PRMI calls block on the serial
  provider servicing them, and an uncommitted provider
  nondeterministically commits to any call whose header has arrived
  (the lowest-rank participant having reached the call — exactly DCA's
  commitment point),
* the checker explores *every* commitment interleaving (bounded DFS
  with state memoization; programs are finite and loop-free, so the
  space is small), reporting the first reachable stuck state.

On a stuck state the wait-for graph over processes is extracted, its
cycles named via :func:`networkx.simple_cycles`, and the diagnosis is
rendered in the exact blocked-rank dump format
:class:`~repro.errors.DeadlockError` uses at runtime — keys are
``"{job} rank {r}"`` strings — so a pre-launch report reads like the
post-mortem it prevents.

:func:`fig5_model` rebuilds the paper's Figure 5 programs
(:mod:`repro.dca.fig5`) under either delivery policy;
:func:`transfer_model` reconstructs the wait-for structure of a
schedule-driven transfer (one buffered send plus one blocking receive
per communicating rank pair, exactly what the packed executors post);
:meth:`CommProgram.channel_pair` models a ``Channel.push``/``pull``
exchange so coupled Coupler scripts can be checked for pull-before-push
cycles.

The one-sided execution tier (:mod:`repro.simmpi.rma`) adds epoch
synchronization: :class:`EpochOpenOp` (owner licenses remote writes),
:class:`PutOp` (a writer's wait-for-epoch + scatter + commit — blocks
until the owner has opened enough epochs), :class:`FenceOp` (the owner
blocks until every writer committed the current epoch) and
:class:`ReadOp` (the owner consumes its array — local, but subject to
the structural epoch-consistency rule).  :meth:`CommProgram.
epoch_violations` checks that rule statically: no put can target a
window whose owner never opens an epoch (or opens fewer epochs than the
writer puts), and no read may sit inside an open epoch (between
``epoch_open`` and its ``fence`` — exactly the torn-read window the
seqlock protocol exists to close).  :func:`rma_channel_model` builds
the one-sided analogue of ``channel_pair`` so epoch-misuse deadlocks —
e.g. two programs that each push before pulling the reverse channel —
are caught before launch, mirroring the runtime watchdog's
``rma_put``/``rma_fence`` blocked dumps.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, NamedTuple, Optional

import networkx as nx

from repro.errors import DeadlockError
from repro.schedule.plan import CommSchedule

__all__ = [
    "Proc",
    "Window",
    "CommProgram",
    "Diagnosis",
    "Exploration",
    "explore_states",
    "would_deadlock",
    "assert_deadlock_free",
    "transfer_model",
    "fig5_model",
    "rma_channel_model",
    "prmi_serving_model",
    "prmi_pipeline_model",
    "prmi_batch_deadlock_model",
]


@dataclass
class Exploration:
    """Outcome of one :func:`explore_states` search.

    Exactly one of three shapes: *clean* (``ok``), *stuck* (a reachable
    state with no enabled transition that is not final — a deadlock),
    or *violation* (a reachable state the ``check`` predicate rejected,
    with its explanation in ``message``).  ``trace`` is the transition
    labels from the initial state to the offending one — a witness
    schedule, printable as a counterexample.
    """

    stuck: Any = None
    violation: Any = None
    message: str = ""
    trace: list = field(default_factory=list)
    states: int = 0

    @property
    def ok(self) -> bool:
        return self.stuck is None and self.violation is None

    def witness(self) -> str:
        """The counterexample schedule, one transition per line."""
        return "\n".join(f"  {i + 1}. {lbl}"
                         for i, lbl in enumerate(self.trace))


def explore_states(init, successors: Callable[[Any], Iterable[tuple]],
                   is_final: Callable[[Any], bool], *,
                   check: Optional[Callable[[Any], str]] = None,
                   max_states: int = 1_000_000) -> Exploration:
    """Memoized explicit-state DFS over a hashable state space.

    The engine behind both :meth:`CommProgram.analyze` (deadlock
    search) and the :mod:`repro.verify.race` protocol models (safety
    search).  ``successors(state)`` yields ``(label, next_state)``
    transitions; ``is_final(state)`` says whether a successor-less
    state is an accepting terminal rather than a deadlock;
    ``check(state)``, if given, returns a non-empty explanation string
    for states violating a safety property.  The first stuck or
    violating state reached wins, with its transition trace
    reconstructed from the search's parent map.
    """
    seen: set = set()
    parent: dict = {init: (None, None)}
    stack = [init]
    visited = 0

    def trace(state) -> list:
        labels = []
        while True:
            prev, label = parent[state]
            if prev is None:
                return list(reversed(labels))
            labels.append(label)
            state = prev

    while stack:
        state = stack.pop()
        if state in seen:
            continue
        seen.add(state)
        visited += 1
        if visited > max_states:
            raise RuntimeError(
                f"explore_states: state space exceeds {max_states} states "
                f"— widen the bound or shrink the model scope")
        if check is not None:
            message = check(state)
            if message:
                return Exploration(violation=state, message=message,
                                   trace=trace(state), states=visited)
        succ = list(successors(state))
        if not succ:
            if not is_final(state):
                return Exploration(stuck=state, trace=trace(state),
                                   states=visited)
            continue
        for label, nxt in succ:
            if nxt not in parent:
                parent[nxt] = (state, label)
            stack.append(nxt)
    return Exploration(states=visited)


class Proc(NamedTuple):
    """One modeled process: a job name plus a rank inside it."""

    job: str
    rank: int

    @property
    def key(self) -> str:
        """The runner's blocked-dump key format."""
        return f"{self.job} rank {self.rank}"


@dataclass(frozen=True)
class SendOp:
    """Buffered point-to-point send — never blocks."""

    dest: Proc
    tag: int = 0


@dataclass(frozen=True)
class RecvOp:
    """Blocking point-to-point receive from a specific source."""

    source: Proc
    tag: int = 0


@dataclass(frozen=True, eq=False)
class BarrierOp:
    """A barrier over ``members`` — identity-keyed, so the *same*
    BarrierOp object must be appended to every member's program (two
    textually identical barriers are distinct collectives)."""

    members: tuple[Proc, ...]
    label: str = ""


@dataclass(frozen=True, eq=False)
class CallOp:
    """One collective PRMI invocation instance — identity-keyed like
    :class:`BarrierOp`: all participants share one object.  Blocks each
    participant until the provider has serviced the call."""

    method: str
    participants: tuple[Proc, ...]
    provider: Proc

    @property
    def header_rank(self) -> Proc:
        """DCA sends the request header from the lowest participant."""
        return min(self.participants)


@dataclass(frozen=True, eq=False)
class ServeOp:
    """The serial provider's ``serve_one()``: commit to one pending
    call (its header has arrived), then block until every participant
    reaches it."""


@dataclass(frozen=True)
class Window:
    """One rank's RMA window: the owner's exposed destination buffer
    (:class:`~repro.simmpi.shm.WindowSegment` in the runtime)."""

    owner: Proc
    label: str = "win"

    def __str__(self) -> str:
        return f"{self.label}@{self.owner.key}"


@dataclass(frozen=True)
class EpochOpenOp:
    """Owner opens the next exposure epoch — local, never blocks
    (``ExposedWindow.epoch_open``)."""

    window: Window


@dataclass(frozen=True)
class PutOp:
    """A writer's one-sided step: spin until the owner's epoch counter
    reaches this put's generation, scatter into the window, commit
    (``RemoteWindow.wait_open`` + ``put`` + ``commit``).  The writer's
    ``k``-th put on a window blocks until the owner has executed ``k``
    :class:`EpochOpenOp`\\ s on it."""

    window: Window


@dataclass(frozen=True)
class FenceOp:
    """Owner blocks until every writer has committed the current epoch
    (``ExposedWindow.fence``): its ``k``-th fence on a window needs
    every writer's put count on that window to have reached ``k``."""

    window: Window
    writers: tuple[Proc, ...]


@dataclass(frozen=True)
class ReadOp:
    """Owner consumes its destination array — local and non-blocking,
    recorded so :meth:`CommProgram.epoch_violations` can enforce the
    seqlock rule: reads only between ``fence(k)`` and
    ``epoch_open(k+1)``, never inside an open epoch."""

    window: Window


Op = object


class CommProgram:
    """A set of per-process communication programs to check."""

    def __init__(self):
        self._ops: dict[Proc, list] = {}

    # -- construction --------------------------------------------------------

    def proc(self, job: str, rank: int = 0) -> Proc:
        p = Proc(job, rank)
        self._ops.setdefault(p, [])
        return p

    def procs(self, job: str, nranks: int) -> list[Proc]:
        return [self.proc(job, r) for r in range(nranks)]

    def add(self, proc: Proc, op) -> None:
        self._ops.setdefault(proc, []).append(op)

    def send(self, frm: Proc, to: Proc, tag: int = 0) -> None:
        self.add(frm, SendOp(to, tag))

    def recv(self, at: Proc, frm: Proc, tag: int = 0) -> None:
        self.add(at, RecvOp(frm, tag))

    def barrier(self, members: Iterable[Proc], label: str = "") -> None:
        op = BarrierOp(tuple(members), label)
        for m in op.members:
            self.add(m, op)

    def call(self, method: str, participants: Iterable[Proc],
             provider: Proc) -> CallOp:
        op = CallOp(method, tuple(participants), provider)
        for p in op.participants:
            self.add(p, op)
        return op

    def serve(self, provider: Proc) -> None:
        self.add(provider, ServeOp())

    def transfer(self, schedule: CommSchedule, src_procs: list[Proc],
                 dst_procs: list[Proc], tag: int = 0) -> None:
        """Model one packed schedule execution: a buffered send per
        communicating (src, dst) pair posted first, then the receive
        side blocking per pair — the executors' §4.1 protocol."""
        for s in range(schedule.src_nranks):
            for d, _regions, _offs in schedule.send_groups(s):
                self.send(src_procs[s], dst_procs[d], tag)
        for d in range(schedule.dst_nranks):
            for s, _regions, _offs in schedule.recv_groups(d):
                self.recv(dst_procs[d], src_procs[s], tag)

    def channel_pair(self, src: Proc, dst: Proc, tag: int = 0) -> None:
        """Model one ``Channel.push``/``pull`` hop between two ranks:
        a buffered data send met by a blocking receive."""
        self.send(src, dst, tag)
        self.recv(dst, src, tag)

    # -- one-sided (RMA) construction ---------------------------------------

    def window(self, owner: Proc, label: str = "win") -> Window:
        return Window(owner, label)

    def epoch_open(self, win: Window) -> None:
        self.add(win.owner, EpochOpenOp(win))

    def put(self, writer: Proc, win: Window) -> None:
        self.add(writer, PutOp(win))

    def fence(self, win: Window, writers: Iterable[Proc]) -> None:
        self.add(win.owner, FenceOp(win, tuple(writers)))

    def read(self, win: Window) -> None:
        self.add(win.owner, ReadOp(win))

    def rma_channel(self, src: Proc, dst: Proc,
                    label: str = "win") -> Window:
        """Model one one-sided ``push``/``pull`` step pair: the consumer
        opens an exposure epoch and fences (``pull``), the producer
        puts (``push``).  Returns the window so multi-step or
        multi-writer programs can keep appending to it."""
        win = self.window(dst, label)
        self.epoch_open(win)
        self.fence(win, (src,))
        self.put(src, win)
        return win

    # -- structural epoch-consistency ---------------------------------------

    def epoch_violations(self) -> list[str]:
        """Static epoch-consistency violations, independent of
        interleaving:

        * a put targeting a window whose owner opens fewer exposure
          epochs than the writer issues puts (the surplus puts can
          never be licensed — writes outside any open epoch);
        * a read positioned inside an open epoch (after ``epoch_open``,
          before the matching ``fence``) — the torn-read window.
        """
        out: list[str] = []
        opens: dict[Window, int] = {}
        for p, plist in self._ops.items():
            for op in plist:
                if isinstance(op, EpochOpenOp):
                    opens[op.window] = opens.get(op.window, 0) + 1
        for p, plist in sorted(self._ops.items()):
            puts: dict[Window, int] = {}
            for op in plist:
                if isinstance(op, PutOp):
                    puts[op.window] = puts.get(op.window, 0) + 1
            for win, nputs in sorted(puts.items(), key=lambda kv: str(kv[0])):
                nopen = opens.get(win, 0)
                if nputs > nopen:
                    out.append(
                        f"{p.key}: {nputs} put(s) into {win} but its owner "
                        f"opens only {nopen} exposure epoch(s) — "
                        f"write outside an open epoch")
        for p, plist in sorted(self._ops.items()):
            depth: dict[Window, int] = {}
            for i, op in enumerate(plist):
                if isinstance(op, EpochOpenOp):
                    depth[op.window] = depth.get(op.window, 0) + 1
                elif isinstance(op, FenceOp):
                    depth[op.window] = max(0, depth.get(op.window, 0) - 1)
                elif isinstance(op, ReadOp):
                    if depth.get(op.window, 0) > 0:
                        out.append(
                            f"{p.key}: read of {op.window} at op {i} is "
                            f"inside an open exposure epoch (no fence "
                            f"yet) — torn read")
        return out

    # -- abstract execution --------------------------------------------------

    def _explore(self):
        """Search all provider-commitment interleavings on the shared
        :func:`explore_states` engine; returns the first reachable
        stuck (deadlocked) state or ``None``."""
        procs = sorted(self._ops)
        ops = {p: tuple(self._ops[p]) for p in procs}
        n = {p: len(ops[p]) for p in procs}
        # Channel state is a tuple of consumed-message counters per
        # (sender, receiver, tag); sends are derivable from pcs so only
        # consumption needs tracking.
        init = (tuple(0 for _ in procs), (), frozenset())

        def successors(state):
            pcs_t, commits_t, done = state
            pcs = dict(zip(procs, pcs_t))
            commits = dict(commits_t)

            def sent(frm, to, tag):
                return sum(1 for k in range(pcs[frm])
                           if isinstance(ops[frm][k], SendOp)
                           and ops[frm][k].dest == to
                           and ops[frm][k].tag == tag)

            def executed(q, kind, win):
                return sum(1 for k in range(pcs[q])
                           if isinstance(ops[q][k], kind)
                           and ops[q][k].window == win)

            consumed: dict[tuple, int] = {}
            for p in procs:
                for k in range(pcs[p]):
                    op = ops[p][k]
                    if isinstance(op, RecvOp):
                        key = (op.source, p, op.tag)
                        consumed[key] = consumed.get(key, 0) + 1

            out = []

            def advance(label, moves, new_commits=None, new_done=None):
                np_pcs = dict(pcs)
                for p in moves:
                    np_pcs[p] += 1
                out.append((label, (
                    tuple(np_pcs[p] for p in procs),
                    tuple(sorted((new_commits if new_commits is not None
                                  else commits).items())),
                    new_done if new_done is not None else done)))

            for p in procs:
                if pcs[p] >= n[p]:
                    continue
                op = ops[p][pcs[p]]
                label = f"{p.key}: {type(op).__name__}"
                if isinstance(op, SendOp):
                    advance(label, [p])
                elif isinstance(op, RecvOp):
                    key = (op.source, p, op.tag)
                    if sent(*key) > consumed.get(key, 0):
                        advance(label, [p])
                elif isinstance(op, BarrierOp):
                    if all(pcs[m] < n[m] and ops[m][pcs[m]] is op
                           for m in op.members):
                        if p == min(op.members):
                            advance(label, list(op.members))
                elif isinstance(op, (EpochOpenOp, ReadOp)):
                    advance(label, [p])
                elif isinstance(op, PutOp):
                    # the writer's k-th put needs the owner's k-th
                    # exposure epoch open (RemoteWindow.wait_open)
                    k = executed(p, PutOp, op.window) + 1
                    if executed(op.window.owner, EpochOpenOp,
                                op.window) >= k:
                        advance(label, [p])
                elif isinstance(op, FenceOp):
                    # the owner's k-th fence needs every writer's k-th
                    # commit (ExposedWindow.fence on min(done))
                    k = executed(p, FenceOp, op.window) + 1
                    if all(executed(w, PutOp, op.window) >= k
                           for w in op.writers):
                        advance(label, [p])
                elif isinstance(op, CallOp):
                    if id(op) in done:
                        advance(label, [p])
                elif isinstance(op, ServeOp):
                    committed = commits.get(p)
                    if committed is None:
                        for c in self._pending_calls(p, ops, n, pcs, done):
                            nc = dict(commits)
                            nc[p] = c
                            advance(f"{p.key}: commit {c.method!r}",
                                    [], new_commits=nc)
                    else:
                        c = committed
                        if all(pcs[q] < n[q] and ops[q][pcs[q]] is c
                               for q in c.participants):
                            nc = dict(commits)
                            del nc[p]
                            advance(f"{p.key}: serve {c.method!r}",
                                    [p], new_commits=nc,
                                    new_done=done | {id(c)})
            return out

        def is_final(state):
            return all(pc >= n[p] for p, pc in zip(procs, state[0]))

        result = explore_states(init, successors, is_final)
        if result.ok:
            return None
        pcs_t, commits_t, done = result.stuck
        pcs = dict(zip(procs, pcs_t))
        commits = dict(commits_t)
        consumed: dict[tuple, int] = {}
        for p in procs:
            for k in range(pcs[p]):
                op = ops[p][k]
                if isinstance(op, RecvOp):
                    key = (op.source, p, op.tag)
                    consumed[key] = consumed.get(key, 0) + 1
        return pcs, commits, done, ops, n, consumed

    def _pending_calls(self, provider, ops, n, pcs, done):
        """Call instances whose header has arrived at ``provider``: the
        lowest-rank participant is blocked at the call and it has not
        been serviced yet."""
        pending = []
        seen_ids = set()
        for p, plist in ops.items():
            for k in range(pcs[p], n[p]):
                op = plist[k]
                if (isinstance(op, CallOp) and op.provider == provider
                        and id(op) not in done and id(op) not in seen_ids):
                    seen_ids.add(id(op))
                    h = op.header_rank
                    if pcs[h] < n[h] and ops[h][pcs[h]] is op:
                        pending.append(op)
        return pending

    def analyze(self) -> "Diagnosis | None":
        """Return a :class:`Diagnosis` for the first reachable deadlock,
        or ``None`` when every interleaving runs to completion."""
        stuck = self._explore()
        if stuck is None:
            return None
        pcs, commits, done, ops, n, consumed = stuck
        blocked: dict[str, str] = {}
        graph = nx.DiGraph()
        collective_wait = False
        rma_wait = False

        def executed(q, kind, win):
            return sum(1 for k in range(pcs[q])
                       if isinstance(ops[q][k], kind)
                       and ops[q][k].window == win)

        for p in sorted(pcs):
            if pcs[p] >= n[p]:
                continue
            op = ops[p][pcs[p]]
            graph.add_node(p.key)
            if isinstance(op, PutOp):
                rma_wait = True
                k = executed(p, PutOp, op.window) + 1
                blocked[p.key] = (
                    f"rma_put(window={op.window}, epoch={k}) awaiting "
                    f"exposure by {op.window.owner.key}")
                graph.add_edge(p.key, op.window.owner.key)
            elif isinstance(op, FenceOp):
                rma_wait = True
                k = executed(p, FenceOp, op.window) + 1
                waiting = [w for w in op.writers
                           if executed(w, PutOp, op.window) < k]
                blocked[p.key] = (
                    f"rma_fence(window={op.window}, epoch={k}) awaiting "
                    f"commits from "
                    + ", ".join(w.key for w in waiting))
                for w in waiting:
                    graph.add_edge(p.key, w.key)
            elif isinstance(op, RecvOp):
                blocked[p.key] = (
                    f"recv(source={op.source.key}, tag={op.tag}) "
                    f"with no matching send in flight")
                graph.add_edge(p.key, op.source.key)
            elif isinstance(op, BarrierOp):
                collective_wait = True
                waiting = [m for m in op.members
                           if not (pcs[m] < n[m] and ops[m][pcs[m]] is op)]
                blocked[p.key] = (
                    f"barrier({op.label or len(op.members)}) waiting for "
                    + ", ".join(m.key for m in waiting))
                for m in waiting:
                    graph.add_edge(p.key, m.key)
            elif isinstance(op, CallOp):
                collective_wait = True
                blocked[p.key] = (
                    f"collective call {op.method!r} awaiting service by "
                    f"{op.provider.key}")
                graph.add_edge(p.key, op.provider.key)
            elif isinstance(op, ServeOp):
                collective_wait = True
                committed = commits.get(p)
                if committed is not None:
                    waiting = [q for q in committed.participants
                               if not (pcs[q] < n[q]
                                       and ops[q][pcs[q]] is committed)]
                    blocked[p.key] = (
                        f"serving {committed.method!r}, waiting for "
                        f"participants "
                        + ", ".join(q.key for q in waiting))
                    for q in waiting:
                        graph.add_edge(p.key, q.key)
                else:
                    heads = [c.header_rank for c in self._all_calls(p, ops)
                             if id(c) not in done]
                    blocked[p.key] = (
                        "serve_one() with no call header in flight")
                    for h in heads:
                        graph.add_edge(p.key, h.key)
        cycles = [c for c in nx.simple_cycles(graph)]
        return Diagnosis(blocked=blocked, cycles=cycles,
                         collective=collective_wait, rma=rma_wait)

    def _all_calls(self, provider, ops):
        out, seen = [], set()
        for plist in ops.values():
            for op in plist:
                if (isinstance(op, CallOp) and op.provider == provider
                        and id(op) not in seen):
                    seen.add(id(op))
                    out.append(op)
        return out


@dataclass
class Diagnosis:
    """A would-deadlock report in the runtime watchdog's dump format."""

    blocked: dict[str, str]
    cycles: list[list[str]] = field(default_factory=list)
    collective: bool = False
    rma: bool = False

    @property
    def kind(self) -> str:
        if self.collective:
            return "collective-order mismatch"
        if self.rma:
            return "epoch-order mismatch (one-sided)"
        return "receive cycle"

    def to_error(self) -> DeadlockError:
        """The exact exception the runtime watchdog would raise, built
        before launch."""
        lines = [f"static analysis: {self.kind} — "
                 f"{len(self.blocked)} process(es) can block forever"]
        for key in sorted(self.blocked):
            lines.append(f"  {key}: {self.blocked[key]}")
        for cyc in self.cycles:
            lines.append("  wait cycle: " + " -> ".join(cyc + cyc[:1]))
        return DeadlockError("\n".join(lines), blocked=self.blocked)


def would_deadlock(program: CommProgram) -> Diagnosis | None:
    """Analyze ``program``; a :class:`Diagnosis` if any interleaving
    deadlocks, ``None`` if all complete."""
    return program.analyze()


def assert_deadlock_free(program: CommProgram) -> None:
    """Raise the pre-launch :class:`~repro.errors.DeadlockError` if any
    interleaving of ``program`` deadlocks."""
    diag = program.analyze()
    if diag is not None:
        raise diag.to_error()


def transfer_model(schedule: CommSchedule, src_job: str = "src",
                   dst_job: str = "dst") -> CommProgram:
    """The communication program of one coupled schedule execution."""
    prog = CommProgram()
    src = prog.procs(src_job, schedule.src_nranks)
    dst = prog.procs(dst_job, schedule.dst_nranks)
    prog.transfer(schedule, src, dst)
    return prog


def fig5_model(policy) -> CommProgram:
    """The paper's Figure 5 programs (:mod:`repro.dca.fig5`) under a
    :class:`~repro.dca.engine.DeliveryPolicy`.

    One serial provider serving two collective calls; caller 0 makes
    call 1 only, callers 1 and 2 make call 2 (just the two of them)
    first and then call 1.  Under EAGER delivery the provider may
    commit to call 1 while callers 1–2 are still inside call 2 —
    deadlock; under BARRIER a barrier over each call's participants
    precedes delivery, which removes the bad commitment.
    """
    from repro.dca.engine import DeliveryPolicy

    prog = CommProgram()
    provider = prog.proc("provider", 0)
    c0, c1, c2 = prog.procs("callers", 3)
    prog.serve(provider)
    prog.serve(provider)
    barrier = policy == DeliveryPolicy.BARRIER
    call1 = CallOp("collective_call_1", (c0, c1, c2), provider)
    call2 = CallOp("collective_call_2", (c1, c2), provider)
    if barrier:
        prog.barrier((c1, c2), label="call2")
    for p in (c1, c2):
        prog.add(p, call2)
    if barrier:
        prog.barrier((c0, c1, c2), label="call1")
    for p in (c0, c1, c2):
        prog.add(p, call1)
    return prog


def rma_channel_model(steps: int = 1, *,
                      misuse: bool = False) -> CommProgram:
    """One producer/consumer pair on a one-sided persistent channel.

    ``misuse=False``: ``steps`` well-ordered push/pull step pairs — the
    consumer opens each exposure epoch, the producer's put lands, the
    fence closes it, the consumer reads.  Deadlock-free.

    ``misuse=True``: the epoch-misuse pattern the runtime watchdog
    dumps as ``rma_put``/``recv`` stalls — the producer pushes and
    *then* sends a side-band token, while the consumer insists on the
    token *before* its pull.  The put spins for an exposure epoch the
    consumer will only open after receiving a token that is sequenced
    after the put: a cross-layer wait cycle no message reordering can
    break.  This is exactly the documented RMA lockstep caveat
    (:class:`~repro.highlevel.Channel`): an RMA push blocks until the
    consumer's matching pull epoch.
    """
    prog = CommProgram()
    src = prog.proc("prod", 0)
    dst = prog.proc("cons", 0)
    win = prog.window(dst, "field")
    if misuse:
        prog.put(src, win)
        prog.send(src, dst, tag=1)
        prog.recv(dst, src, tag=1)
        prog.epoch_open(win)
        prog.fence(win, (src,))
        prog.read(win)
        return prog
    for _ in range(steps):
        prog.epoch_open(win)
        prog.fence(win, (src,))
        prog.read(win)
        prog.put(src, win)
    return prog


# -- PRMI serving-tier models (repro.prmi.serving) ---------------------------

#: Tags standing in for the framed request / reply streams
#: (``frame_tag(REQUEST_STREAM)`` / ``frame_tag(REPLY_STREAM)``).
_REQ = 1
_REP = 2


def prmi_serving_model(callers: int = 2,
                       flushes: int = 2) -> CommProgram:
    """The batched serving protocol of
    :class:`~repro.prmi.serving.InvocationPipeline` against a
    :class:`~repro.prmi.serving.ServerLoop`.

    Each caller ships ``flushes`` request frames up front (flush
    triggers never wait on replies — buffered sends), the server
    answers each ingress frame with exactly one reply frame, and the
    callers resolve their futures afterwards.  Deadlock-free for every
    interleaving: the one-reply-frame-per-request-frame rule means no
    reply a caller awaits can be gated on traffic that caller has not
    already sent.
    """
    prog = CommProgram()
    server = prog.proc("server", 0)
    cs = prog.procs("callers", callers)
    for c in cs:
        for _ in range(flushes):
            prog.send(c, server, _REQ)
    for c in cs:
        for _ in range(flushes):
            prog.recv(server, c, _REQ)
            prog.send(server, c, _REP)
    for c in cs:
        for _ in range(flushes):
            prog.recv(c, server, _REP)
    return prog


def prmi_pipeline_model(depth: int = 3) -> CommProgram:
    """Pipelined collective invocation: the caller ships ``depth``
    invocation headers back-to-back (futures defer the return receive),
    then drains the returns in FIFO order; the callee services and
    answers them in arrival order.  Deadlock-free because returns
    travel on a per-source FIFO stream and the caller resolves futures
    in submission order — the protocol
    :meth:`~repro.prmi.serving.InvocationPipeline.invoke_collective`
    implements."""
    prog = CommProgram()
    caller = prog.proc("caller", 0)
    callee = prog.proc("callee", 0)
    for _ in range(depth):
        prog.send(caller, callee, _REQ)
    for _ in range(depth):
        prog.recv(callee, caller, _REQ)
        prog.send(callee, caller, _REP)
    for _ in range(depth):
        prog.recv(caller, callee, _REP)
    return prog


def prmi_batch_deadlock_model() -> CommProgram:
    """The hazard the flush deadline and per-frame replies exist to
    prevent: a server that holds replies until it has accumulated a
    *second* ingress frame (reply batching with no deadline), facing a
    caller that blocks on its first future before flushing again.

    The caller awaits a reply gated on a frame it has not sent; the
    server awaits a frame gated on the reply it is withholding — a
    wait cycle no reordering breaks.  The shipped protocol rules this
    out twice over: every request frame gets its reply frame
    immediately, and a pending batch can always flush on ``delay_us``
    without waiting on any receive."""
    prog = CommProgram()
    server = prog.proc("server", 0)
    caller = prog.proc("caller", 0)
    prog.send(caller, server, _REQ)
    prog.recv(caller, server, _REP)   # future.result() before next flush
    prog.send(caller, server, _REQ)
    prog.recv(server, caller, _REQ)
    prog.recv(server, caller, _REQ)   # waits to fill its reply batch
    prog.send(server, caller, _REP)
    prog.send(server, caller, _REP)
    return prog
